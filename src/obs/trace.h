// Per-query span tracing (ISSUE 5): where one CloudTalk query's time goes.
//
// A TraceContext rides through CloudTalkServer::Answer and records one span
// per lifecycle phase — parse, lint, compile, sample, probe (with one child
// per contacted host), bind, reserve — each with wall-clock start/duration
// and string attributes (probe fan-out, SearchCounters, binding mode). The
// finished Trace travels back to the client in QueryReply::trace, renders
// as an indented tree (`ctstat --trace`) or JSON (`ctstat --json`), and the
// *stable* renderings (durations normalised out) are what the golden
// snapshot tests diff, the same way examples/queries/opt/expected_report.txt
// pins the optimiser report.
//
// Tracing follows the same switches as the metrics registry: compiled out
// entirely under CLOUDTALK_OBS=OFF, and skipped at runtime when
// obs::SetRuntimeEnabled(false) — in both cases a query's trace is simply
// empty. Contexts are single-threaded by design (one per in-flight query);
// the registry, not the trace, is the cross-thread aggregation point.
#ifndef CLOUDTALK_SRC_OBS_TRACE_H_
#define CLOUDTALK_SRC_OBS_TRACE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"

namespace cloudtalk {
namespace obs {

// Span names are short literals ("parse", "probe.host"), so they live in an
// inline buffer: TraceSpan is trivially copyable and recording a span is a
// plain memcpy with no heap traffic, which the <5% overhead budget
// (bench_obs_overhead) depends on. Longer names are truncated.
struct TraceSpan {
  static constexpr size_t kMaxName = 23;

  int id = -1;
  int parent = -1;      // -1 for the root span.
  double start = 0;     // Seconds since the trace epoch.
  double duration = 0;  // Seconds; 0 until closed.
  bool closed = false;
  uint8_t name_len = 0;
  char name_buf[kMaxName] = {};

  std::string_view name() const { return std::string_view(name_buf, name_len); }
  void set_name(std::string_view n) {
    name_len = static_cast<uint8_t>(std::min(n.size(), kMaxName));
    std::memcpy(name_buf, n.data(), name_len);
  }
};

// One attribute, linked to its span by id. The text lives in
// Trace::attr_data as a "key=value" slice: recording an attribute is one
// memcpy into a pre-reserved arena plus a 12-byte index entry — no
// per-attribute heap allocation, which is what keeps the tracer inside the
// <5% overhead budget (bench_obs_overhead). Keys must not contain '='
// (every call site uses literal keys).
struct TraceAttr {
  int span = -1;
  uint32_t offset = 0;  // Into Trace::attr_data.
  uint32_t size = 0;
};

// A finished trace: spans in creation order, span 0 the root (when any);
// attrs in recording order (per-span order is recording order too).
struct Trace {
  std::vector<TraceSpan> spans;
  std::vector<TraceAttr> attrs;
  std::string attr_data;

  bool empty() const { return spans.empty(); }

  // The "key=value" text of one attribute.
  std::string_view AttrText(const TraceAttr& attr) const {
    return std::string_view(attr_data).substr(attr.offset, attr.size);
  }

  // Cold-path convenience: a span's attributes in recording order.
  std::vector<std::pair<std::string, std::string>> AttrsOf(int id) const;
};

class TraceContext {
 public:
  // Opens the root span. Disabled (records nothing) when observability is
  // compiled out or runtime-disabled at construction time.
  explicit TraceContext(std::string_view root_name);

  bool enabled() const { return enabled_; }

  // Opens a child of the innermost open span; returns its id (-1 when
  // disabled). Spans must be closed innermost-first (the Scoped helper
  // guarantees it).
  int Open(std::string_view name);
  void Close(int id);

  // Closes `prev` and opens its sibling in one step, sharing a single clock
  // reading — the new span starts exactly where the previous one ends. This
  // is how the query pipeline's back-to-back phases (parse→lint,
  // sample→probe, bind→reserve) avoid paying two clock reads per boundary.
  int Transition(int prev, std::string_view name);

  // Opens a span stamped with the context's most recent clock reading
  // instead of taking a new one. For spans that begin immediately after the
  // previous reading (the phase right after the trace opens, or right after
  // the preceding phase closed) the saved clock read is free accuracy-wise:
  // nothing measurable happened in between.
  int OpenFollowing(std::string_view name);

  // Records an already-closed, zero-duration child of the innermost open
  // span, with its attributes attached in one shot. This is the cheap path
  // for high-fan-out children: no clock read at all — the event is stamped
  // with the context's most recent timestamp (its enclosing span's open
  // time at the latest). The probe scatter-gather emits one event per
  // contacted host, where the batched gather makes individual wall times
  // meaningless anyway.
  int Event(std::string_view name,
            std::initializer_list<std::pair<std::string_view, std::string_view>> attrs);

  // Attaches an attribute to an open span (no-op for id < 0).
  void Attr(int id, std::string_view key, std::string_view value);
  void Attr(int id, std::string_view key, int64_t value);
  void Attr(int id, std::string_view key, double value);

  // Closes every still-open span (root included) and returns the trace.
  // The context is spent afterwards.
  Trace Finish();

  // RAII span: closes on scope exit.
  class Scoped {
   public:
    Scoped(TraceContext* ctx, std::string_view name) : ctx_(ctx), id_(ctx->Open(name)) {}
    ~Scoped() { ctx_->Close(id_); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;
    int id() const { return id_; }

   private:
    TraceContext* ctx_;
    int id_;
  };

 private:
  double Now();
  int OpenAt(std::string_view name, double start);
  void CloseAt(int id, double now);  // `id` must be in range and open.
  void AppendAttr(int id, std::string_view key, std::string_view value);

  bool enabled_ = false;
  double last_time_ = 0;  // Most recent Now() reading; events reuse it.
  std::chrono::steady_clock::time_point epoch_;
  std::vector<TraceSpan> spans_;
  std::vector<TraceAttr> attrs_;
  std::string attr_data_;
  std::vector<int> open_stack_;
};

// Indented-tree rendering:
//   answer (123.4us)
//     parse (12.3us) vars=3
// `stable` replaces every duration with "-" so the output is byte-stable
// across runs (the golden-trace snapshot format).
std::string FormatTrace(const Trace& trace, bool stable = false);

// {"spans": [{"id": 0, "parent": -1, "name": ..., "start_us": ...,
//  "duration_us": ..., "attrs": {...}} ...]}; `stable` zeroes the times.
std::string TraceToJson(const Trace& trace, bool stable = false);

}  // namespace obs
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_OBS_TRACE_H_
