#include "src/obs/trace.h"

#include <charconv>
#include <cstdio>
#include <sstream>

namespace cloudtalk {
namespace obs {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatMicros(double seconds) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  return buf;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> Trace::AttrsOf(int id) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const TraceAttr& attr : attrs) {
    if (attr.span == id) {
      const std::string_view kv = AttrText(attr);
      const size_t eq = kv.find('=');
      out.emplace_back(std::string(kv.substr(0, eq)),
                       eq == std::string_view::npos ? std::string() : std::string(kv.substr(eq + 1)));
    }
  }
  return out;
}

TraceContext::TraceContext(std::string_view root_name) {
  enabled_ = kObsEnabled && RuntimeEnabled();
  if (!enabled_) {
    return;
  }
  epoch_ = std::chrono::steady_clock::now();
  spans_.reserve(32);
  attrs_.reserve(64);
  attr_data_.reserve(1024);
  open_stack_.reserve(8);
  TraceSpan root;
  root.id = 0;
  root.parent = -1;
  root.set_name(root_name);
  root.start = 0;
  spans_.push_back(root);
  open_stack_.push_back(0);
}

double TraceContext::Now() {
  last_time_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch_).count();
  return last_time_;
}

int TraceContext::OpenAt(std::string_view name, double start) {
  TraceSpan span;
  span.id = static_cast<int>(spans_.size());
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.set_name(name);
  span.start = start;
  spans_.push_back(span);
  open_stack_.push_back(span.id);
  return span.id;
}

int TraceContext::Open(std::string_view name) {
  if (!enabled_) {
    return -1;
  }
  return OpenAt(name, Now());
}

int TraceContext::OpenFollowing(std::string_view name) {
  if (!enabled_) {
    return -1;
  }
  return OpenAt(name, last_time_);
}

int TraceContext::Transition(int prev, std::string_view name) {
  if (!enabled_) {
    return -1;
  }
  const double now = Now();
  if (prev >= 0 && prev < static_cast<int>(spans_.size()) && !spans_[prev].closed) {
    CloseAt(prev, now);
  }
  return OpenAt(name, now);
}

int TraceContext::Event(
    std::string_view name,
    std::initializer_list<std::pair<std::string_view, std::string_view>> attrs) {
  if (!enabled_) {
    return -1;
  }
  TraceSpan span;
  span.id = static_cast<int>(spans_.size());
  span.parent = open_stack_.empty() ? -1 : open_stack_.back();
  span.set_name(name);
  span.start = last_time_;  // No clock read: stamped with the latest reading.
  span.duration = 0;
  span.closed = true;
  for (const auto& [key, value] : attrs) {
    AppendAttr(span.id, key, value);
  }
  spans_.push_back(span);
  return span.id;
}

void TraceContext::AppendAttr(int id, std::string_view key, std::string_view value) {
  const size_t offset = attr_data_.size();
  attr_data_.append(key);
  attr_data_.push_back('=');
  attr_data_.append(value);
  attrs_.push_back(TraceAttr{id, static_cast<uint32_t>(offset),
                             static_cast<uint32_t>(attr_data_.size() - offset)});
}

void TraceContext::Close(int id) {
  if (!enabled_ || id < 0 || id >= static_cast<int>(spans_.size()) || spans_[id].closed) {
    return;
  }
  CloseAt(id, Now());
}

void TraceContext::CloseAt(int id, double now) {
  TraceSpan& span = spans_[id];
  span.duration = now - span.start;
  span.closed = true;
  // Innermost-first discipline: pop through (and including) this span, so a
  // missed Close of a descendant cannot wedge the stack.
  while (!open_stack_.empty()) {
    const int top = open_stack_.back();
    open_stack_.pop_back();
    if (top == id) {
      break;
    }
    if (!spans_[top].closed) {
      spans_[top].duration = now - spans_[top].start;
      spans_[top].closed = true;
    }
  }
}

void TraceContext::Attr(int id, std::string_view key, std::string_view value) {
  if (!enabled_ || id < 0 || id >= static_cast<int>(spans_.size())) {
    return;
  }
  AppendAttr(id, key, value);
}

void TraceContext::Attr(int id, std::string_view key, int64_t value) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  Attr(id, key, std::string_view(buf, static_cast<size_t>(end - buf)));
}

void TraceContext::Attr(int id, std::string_view key, double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", value);
  Attr(id, key, std::string_view(buf));
}

Trace TraceContext::Finish() {
  Trace trace;
  if (!enabled_) {
    return trace;
  }
  if (!open_stack_.empty()) {
    const double now = Now();
    while (!open_stack_.empty()) {
      const int top = open_stack_.back();
      open_stack_.pop_back();
      if (!spans_[top].closed) {
        spans_[top].duration = now - spans_[top].start;
        spans_[top].closed = true;
      }
    }
  }
  trace.spans = std::move(spans_);
  trace.attrs = std::move(attrs_);
  trace.attr_data = std::move(attr_data_);
  spans_.clear();
  attrs_.clear();
  attr_data_.clear();
  enabled_ = false;
  return trace;
}

std::string FormatTrace(const Trace& trace, bool stable) {
  // Children in creation order, which is also sibling time order (spans are
  // opened sequentially on one thread).
  std::vector<std::vector<int>> children(trace.spans.size());
  std::vector<int> roots;
  for (const TraceSpan& span : trace.spans) {
    if (span.parent < 0) {
      roots.push_back(span.id);
    } else {
      children[span.parent].push_back(span.id);
    }
  }
  std::ostringstream os;
  // Iterative DFS keeps deep traces safe.
  std::vector<std::pair<int, int>> stack;  // (span id, depth)
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const TraceSpan& span = trace.spans[id];
    os << std::string(static_cast<size_t>(depth) * 2, ' ') << span.name() << " (";
    os << (stable ? "-" : FormatMicros(span.duration)) << ")";
    for (const TraceAttr& attr : trace.attrs) {
      if (attr.span == id) {
        os << " " << trace.AttrText(attr);
      }
    }
    os << "\n";
    for (auto it = children[id].rbegin(); it != children[id].rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return os.str();
}

std::string TraceToJson(const Trace& trace, bool stable) {
  std::ostringstream os;
  os << "{\"spans\": [";
  for (size_t i = 0; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    if (i > 0) {
      os << ", ";
    }
    os << "{\"id\": " << span.id << ", \"parent\": " << span.parent << ", \"name\": \""
       << JsonEscape(span.name()) << "\"";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.1f", stable ? 0.0 : span.start * 1e6);
    os << ", \"start_us\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.1f", stable ? 0.0 : span.duration * 1e6);
    os << ", \"duration_us\": " << buf;
    const auto attrs = trace.AttrsOf(span.id);
    if (!attrs.empty()) {
      os << ", \"attrs\": {";
      for (size_t a = 0; a < attrs.size(); ++a) {
        if (a > 0) {
          os << ", ";
        }
        os << "\"" << JsonEscape(attrs[a].first) << "\": \"" << JsonEscape(attrs[a].second)
           << "\"";
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace obs
}  // namespace cloudtalk
