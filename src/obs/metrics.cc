#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cloudtalk {
namespace obs {

namespace {

std::atomic<bool> g_runtime_enabled{true};

// Shared JSON string escaping (same subset the other renderers in the repo
// escape: quotes, backslashes, control characters).
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Shortest round-trip double rendering (Prometheus accepts plain floats).
std::string FormatDouble(double v) {
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

constexpr HistogramSpec kSeconds{1e-6, 2.0, 36};   // 1us .. ~34s.
constexpr HistogramSpec kRtt{1e-6, 2.0, 24};       // 1us .. ~8s.
constexpr HistogramSpec kFanout{1.0, 2.0, 16};     // 1 .. 32768 hosts.

}  // namespace

bool RuntimeEnabled() { return g_runtime_enabled.load(std::memory_order_relaxed); }
void SetRuntimeEnabled(bool enabled) {
  g_runtime_enabled.store(enabled, std::memory_order_relaxed);
}

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

const std::vector<MetricInfo>& MetricCatalog() {
  static const std::vector<MetricInfo> catalog = {
      // ---- M1xx: CloudTalk server (query lifecycle) ----
      {"M100", MetricType::kCounter, "server", "cloudtalk_server_queries",
       "Queries received by CloudTalkServer::Answer (answered or rejected)", "", {}},
      {"M101", MetricType::kCounter, "server", "cloudtalk_server_query_errors",
       "Queries rejected with a diagnostic or evaluation error", "", {}},
      {"M102", MetricType::kHistogram, "server", "cloudtalk_server_answer_seconds",
       "End-to-end Answer() wall time", "", kSeconds},
      {"M103", MetricType::kHistogram, "server", "cloudtalk_server_probe_fanout",
       "Hosts contacted by one query's probe scatter-gather", "", kFanout},
      {"M104", MetricType::kCounter, "server", "cloudtalk_server_reservations",
       "Endpoints pseudo-reserved for answered queries", "", {}},
      {"M105", MetricType::kCounter, "server", "cloudtalk_server_exhaustive_queries",
       "Queries answered by exhaustive/packet-level evaluation", "", {}},
      {"M106", MetricType::kCounter, "server", "cloudtalk_server_sampled_pools",
       "Candidate pools shrunk by Section 4.3 sampling", "", {}},
      {"M107", MetricType::kCounter, "server", "cloudtalk_server_quotes",
       "Quote() pricing requests", "", {}},
      {"M108", MetricType::kCounter, "server", "cloudtalk_server_bound_checks",
       "Admission bound analyses computed over the gathered status snapshot", "", {}},
      {"M109", MetricType::kCounter, "server", "cloudtalk_server_bound_rejections",
       "Queries rejected before search: a group's sound lower bound exceeds its deadline",
       "", {}},
      {"M110", MetricType::kCounter, "server", "cloudtalk_server_canon_lookups",
       "Canonical answer-cache lookups (cache enabled and the query was cacheable)", "", {}},
      {"M111", MetricType::kCounter, "server", "cloudtalk_server_canon_hits",
       "Queries answered from the canonical answer cache", "", {}},
      {"M112", MetricType::kCounter, "server", "cloudtalk_server_canon_invalidations",
       "Answer-cache invalidation events that discarded at least one cached answer", "", {}},
      {"M113", MetricType::kCounter, "server", "cloudtalk_server_scope_probe_skips",
       "Hosts not probed because the static footprint analysis proved no evaluation "
       "engine reads their status", "", {}},
      {"M114", MetricType::kCounter, "server", "cloudtalk_server_sharded_queries",
       "Queries routed through the ShardedServer front end", "", {}},
      {"M115", MetricType::kCounter, "server", "cloudtalk_server_shard_probe_batches",
       "Per-shard probe batches issued by the hierarchical status aggregator", "", {}},
      {"M116", MetricType::kHistogram, "server", "cloudtalk_server_shard_fanout",
       "Hosts contacted by one shard's slice of a probe scatter-gather", "", kFanout},
      {"M117", MetricType::kCounter, "server", "cloudtalk_server_reserve_prepares",
       "Two-phase reserve leases requested from owning shards", "", {}},
      {"M118", MetricType::kCounter, "server", "cloudtalk_server_reserve_aborts",
       "Two-phase reserves aborted (a shard failed to prepare before the lease deadline)",
       "", {}},
      // ---- M2xx: probing and status transports ----
      {"M200", MetricType::kHistogram, "probe", "cloudtalk_probe_rtt_seconds",
       "Ping RTT measured by probing::NetworkProber, per target host", "host", kRtt},
      {"M201", MetricType::kCounter, "probe", "cloudtalk_probe_requests",
       "Status probe requests sent", "", {}},
      {"M202", MetricType::kCounter, "probe", "cloudtalk_probe_replies",
       "Status probe replies accepted", "", {}},
      {"M203", MetricType::kCounter, "probe", "cloudtalk_probe_timeouts",
       "Probe targets that missed the gather deadline", "", {}},
      {"M204", MetricType::kCounter, "probe", "cloudtalk_probe_short_reads",
       "Reply datagrams dropped for a truncated or oversized payload", "", {}},
      {"M205", MetricType::kCounter, "probe", "cloudtalk_probe_late_replies",
       "Replies that arrived after their probe round had closed", "", {}},
      {"M206", MetricType::kCounter, "probe", "cloudtalk_probe_bytes_sent",
       "Probe request bytes on the wire", "", {}},
      {"M207", MetricType::kCounter, "probe", "cloudtalk_probe_bytes_received",
       "Probe reply bytes on the wire", "", {}},
      // ---- M3xx: fluid simulation ----
      {"M300", MetricType::kCounter, "fluidsim", "cloudtalk_fluidsim_events",
       "Timed events fired by the simulation loop", "", {}},
      {"M301", MetricType::kCounter, "fluidsim", "cloudtalk_fluidsim_waterfill_rounds",
       "Water-filling iterations inside max-min rate recomputation", "", {}},
      {"M302", MetricType::kCounter, "fluidsim", "cloudtalk_fluidsim_recomputes",
       "Max-min rate recomputations", "", {}},
      {"M303", MetricType::kCounter, "fluidsim", "cloudtalk_fluidsim_groups",
       "Elastic flow groups admitted", "", {}},
      {"M304", MetricType::kCounter, "fluidsim", "cloudtalk_fluidsim_delta_hits",
       "Water-filling components reused bitwise from the delta cache", "", {}},
      {"M305", MetricType::kCounter, "fluidsim", "cloudtalk_fluidsim_cold_solves",
       "Water-filling components solved cold (dirty or cache mismatch)", "", {}},
      {"M306", MetricType::kHistogram, "fluidsim", "cloudtalk_fluidsim_dirty_chain_groups",
       "Flow groups per cold-solved component (dirty bottleneck-chain length)", "", kFanout},
      // ---- M4xx: shared worker pool ----
      {"M400", MetricType::kGauge, "pool", "cloudtalk_pool_queue_depth",
       "Helper tasks waiting in the shared worker-pool queue", "", {}},
      {"M401", MetricType::kCounter, "pool", "cloudtalk_pool_steals",
       "Shards executed by pool worker threads", "", {}},
      {"M402", MetricType::kCounter, "pool", "cloudtalk_pool_participations",
       "Shards executed by the thread that called Run()", "", {}},
      {"M403", MetricType::kCounter, "pool", "cloudtalk_pool_batches",
       "Run() batches submitted to the pool", "", {}},
      // ---- M5xx: HDFS / MapReduce harness ----
      {"M500", MetricType::kCounter, "jobs", "cloudtalk_hdfs_blocks_written",
       "HDFS blocks whose replica pipeline completed", "", {}},
      {"M501", MetricType::kCounter, "jobs", "cloudtalk_hdfs_blocks_read",
       "HDFS blocks streamed to a reader", "", {}},
      {"M502", MetricType::kCounter, "jobs", "cloudtalk_mapred_maps_scheduled",
       "Map tasks assigned to a tracker", "", {}},
      {"M503", MetricType::kCounter, "jobs", "cloudtalk_mapred_reduces_scheduled",
       "Reduce tasks assigned to a tracker (including speculative copies)", "", {}},
      {"M504", MetricType::kCounter, "jobs", "cloudtalk_mapred_speculations",
       "Speculative reduce re-executions launched", "", {}},
      {"M505", MetricType::kCounter, "jobs", "cloudtalk_mapred_heartbeats",
       "Task-tracker heartbeats processed by the JobTracker", "", {}},
  };
  return catalog;
}

const MetricInfo* FindMetric(std::string_view code) {
  for (const MetricInfo& info : MetricCatalog()) {
    if (code == info.code) {
      return &info;
    }
  }
  return nullptr;
}

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(const HistogramSpec& spec)
    : spec_(spec), buckets_(static_cast<size_t>(spec.buckets)) {}

void Histogram::Observe(double v) {
  // Find the first bucket whose upper bound covers v. The loop is short
  // (<= spec.buckets comparisons against a geometric series) and typical
  // values land early; no locks, no floating-point log.
  double bound = spec_.base;
  int index = -1;
  for (int i = 0; i < spec_.buckets; ++i, bound *= spec_.growth) {
    if (v <= bound) {
      index = i;
      break;
    }
  }
  if (index >= 0) {
    buckets_[index].fetch_add(1, std::memory_order_relaxed);
  } else {
    inf_.fetch_add(1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

int64_t Histogram::CumulativeCount(int bucket) const {
  int64_t total = 0;
  const int limit = std::min(bucket, spec_.buckets - 1);
  for (int i = 0; i <= limit; ++i) {
    total += buckets_[i].load(std::memory_order_relaxed);
  }
  if (bucket >= spec_.buckets) {
    total += inf_.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::UpperBound(int bucket) const {
  double bound = spec_.base;
  for (int i = 0; i < bucket; ++i) {
    bound *= spec_.growth;
  }
  return bound;
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  inf_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry::Registry() {
  const std::vector<MetricInfo>& catalog = MetricCatalog();
  families_.resize(catalog.size());
  for (size_t i = 0; i < catalog.size(); ++i) {
    Family& family = families_[i];
    family.info = &catalog[i];
    switch (family.info->type) {
      case MetricType::kCounter:
        family.counter = std::make_unique<Counter>();
        break;
      case MetricType::kGauge:
        family.gauge = std::make_unique<Gauge>();
        break;
      case MetricType::kHistogram:
        family.histogram = std::make_unique<Histogram>(family.info->hist);
        break;
    }
  }
}

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // Leaked: outlives all users.
  return *registry;
}

Registry::Family* Registry::FindFamily(std::string_view code, MetricType type) {
  for (Family& family : families_) {
    if (code == family.info->code) {
      if (family.info->type != type) {
        std::fprintf(stderr, "obs: metric %s is a %s, not a %s\n", family.info->code,
                     MetricTypeName(family.info->type), MetricTypeName(type));
        std::abort();
      }
      return &family;
    }
  }
  std::fprintf(stderr, "obs: unregistered metric code '%.*s'\n",
               static_cast<int>(code.size()), code.data());
  std::abort();
}

Counter* Registry::counter(std::string_view code) {
  return FindFamily(code, MetricType::kCounter)->counter.get();
}

Gauge* Registry::gauge(std::string_view code) {
  return FindFamily(code, MetricType::kGauge)->gauge.get();
}

Histogram* Registry::histogram(std::string_view code) {
  return FindFamily(code, MetricType::kHistogram)->histogram.get();
}

Counter* Registry::counter(std::string_view code, std::string_view label_value) {
  Family* family = FindFamily(code, MetricType::kCounter);
  std::lock_guard<std::mutex> lock(children_mutex_);
  auto it = family->counter_children.find(label_value);
  if (it == family->counter_children.end()) {
    it = family->counter_children
             .emplace(std::string(label_value), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* Registry::histogram(std::string_view code, std::string_view label_value) {
  Family* family = FindFamily(code, MetricType::kHistogram);
  std::lock_guard<std::mutex> lock(children_mutex_);
  auto it = family->histogram_children.find(label_value);
  if (it == family->histogram_children.end()) {
    it = family->histogram_children
             .emplace(std::string(label_value), std::make_unique<Histogram>(family->info->hist))
             .first;
  }
  return it->second.get();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(children_mutex_);
  for (Family& family : families_) {
    if (family.counter) {
      family.counter->Reset();
    }
    if (family.gauge) {
      family.gauge->Reset();
    }
    if (family.histogram) {
      family.histogram->Reset();
    }
    family.counter_children.clear();
    family.histogram_children.clear();
  }
}

namespace {

void RenderHistogramProm(std::ostringstream& os, const std::string& name,
                         const std::string& label_prefix, const Histogram& hist) {
  for (int i = 0; i < hist.spec().buckets; ++i) {
    os << name << "_bucket{" << label_prefix << "le=\"" << FormatDouble(hist.UpperBound(i))
       << "\"} " << hist.CumulativeCount(i) << "\n";
  }
  os << name << "_bucket{" << label_prefix << "le=\"+Inf\"} "
     << hist.CumulativeCount(hist.spec().buckets) << "\n";
  std::string bare = label_prefix;
  if (!bare.empty() && bare.back() == ',') {
    bare.pop_back();
  }
  const std::string braces = bare.empty() ? "" : "{" + bare + "}";
  os << name << "_sum" << braces << " " << FormatDouble(hist.sum()) << "\n";
  os << name << "_count" << braces << " " << hist.count() << "\n";
}

}  // namespace

std::string Registry::RenderPrometheus() const {
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(children_mutex_);
  for (const Family& family : families_) {
    const MetricInfo& info = *family.info;
    const std::string name =
        info.type == MetricType::kCounter ? std::string(info.name) + "_total" : info.name;
    os << "# HELP " << name << " " << info.help << " [" << info.code << "]\n";
    os << "# TYPE " << name << " " << MetricTypeName(info.type) << "\n";
    switch (info.type) {
      case MetricType::kCounter:
        os << name << " " << family.counter->value() << "\n";
        for (const auto& [value, child] : family.counter_children) {
          os << name << "{" << info.label << "=\"" << value << "\"} " << child->value()
             << "\n";
        }
        break;
      case MetricType::kGauge:
        os << name << " " << FormatDouble(family.gauge->value()) << "\n";
        break;
      case MetricType::kHistogram:
        if (family.histogram_children.empty() || family.histogram->count() > 0) {
          RenderHistogramProm(os, name, "", *family.histogram);
        }
        for (const auto& [value, child] : family.histogram_children) {
          RenderHistogramProm(os, name,
                              std::string(info.label) + "=\"" + value + "\",", *child);
        }
        break;
    }
  }
  return os.str();
}

std::string Registry::RenderJson(bool skip_zero) const {
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(children_mutex_);
  os << "{\"metrics\": [";
  bool first = true;
  auto emit_header = [&](const MetricInfo& info) {
    if (!first) {
      os << ", ";
    }
    first = false;
    os << "{\"code\": \"" << info.code << "\", \"name\": \"" << info.name
       << "\", \"type\": \"" << MetricTypeName(info.type) << "\"";
  };
  for (const Family& family : families_) {
    const MetricInfo& info = *family.info;
    switch (info.type) {
      case MetricType::kCounter: {
        if (family.counter->value() != 0 || !skip_zero) {
          emit_header(info);
          os << ", \"value\": " << family.counter->value() << "}";
        }
        for (const auto& [value, child] : family.counter_children) {
          if (child->value() == 0 && skip_zero) {
            continue;
          }
          emit_header(info);
          os << ", \"" << info.label << "\": \"" << JsonEscape(value)
             << "\", \"value\": " << child->value() << "}";
        }
        break;
      }
      case MetricType::kGauge:
        if (family.gauge->value() != 0 || !skip_zero) {
          emit_header(info);
          os << ", \"value\": " << FormatDouble(family.gauge->value()) << "}";
        }
        break;
      case MetricType::kHistogram: {
        auto emit_hist = [&](const Histogram& hist, const std::string& label_value) {
          if (hist.count() == 0 && skip_zero) {
            return;
          }
          emit_header(info);
          if (!label_value.empty()) {
            os << ", \"" << info.label << "\": \"" << JsonEscape(label_value) << "\"";
          }
          os << ", \"count\": " << hist.count() << ", \"sum\": " << FormatDouble(hist.sum())
             << "}";
        };
        emit_hist(*family.histogram, "");
        for (const auto& [value, child] : family.histogram_children) {
          emit_hist(*child, value);
        }
        break;
      }
    }
  }
  os << "]}";
  return os.str();
}

}  // namespace obs
}  // namespace cloudtalk
