// Lock-cheap metrics registry for the CloudTalk stack (ISSUE 5).
//
// The paper sells CloudTalk as a *service* and quantifies its per-query
// overhead (Section 5.5: probe fan-out and bytes, binding time); this
// registry is how the reproduction sees the same numbers on itself. Every
// metric has a stable M-code (M1xx server, M2xx probing/status transport,
// M3xx fluidsim, M4xx thread pool, M5xx hdfs/mapred) registered in
// `MetricCatalog()`, mirroring the D/I/L/W catalogues of src/check and
// src/lang: codes are never renumbered, only appended.
//
// Three instrument kinds:
//   Counter   - monotonically increasing int64 (atomic add).
//   Gauge     - last-write-wins double (queue depths, capacities).
//   Histogram - fixed log-scale buckets (upper bound base * growth^i), with
//               sum and count; renders as a native Prometheus histogram.
//
// Hot-path cost: one relaxed atomic load (the runtime kill switch) plus one
// atomic add; the CT_OBS_* macros cache the instrument pointer in a
// function-local static, so the name lookup happens once per call site.
// Labeled instruments (e.g. the per-host probe RTT histogram M200) live in
// a mutex-guarded per-metric map — fine for probe-rate call sites, not for
// per-event ones.
//
// Compile-out: configure with -DCLOUDTALK_OBS=OFF and every CT_OBS_* macro
// expands to a dead, type-checked-but-unevaluated expression (same pattern
// as CT_INVARIANT), and TraceContext records nothing. The runtime switch
// (`SetRuntimeEnabled`) exists so one binary can measure its own
// observability overhead (bench/bench_obs_overhead.cc).
#ifndef CLOUDTALK_SRC_OBS_METRICS_H_
#define CLOUDTALK_SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace cloudtalk {
namespace obs {

#if defined(CLOUDTALK_OBS) && CLOUDTALK_OBS
inline constexpr bool kObsEnabled = true;
#else
inline constexpr bool kObsEnabled = false;
#endif

// Process-wide runtime kill switch (default on). Checked with one relaxed
// load by every macro and by TraceContext construction; flipping it off
// approximates (from above) the cost of compiling observability out, which
// is what bench_obs_overhead measures.
bool RuntimeEnabled();
void SetRuntimeEnabled(bool enabled);

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

// Log-scale bucket layout: bucket i (0-based) holds values <= base *
// growth^i; values above the last bound land in the implicit +Inf bucket.
struct HistogramSpec {
  double base = 1e-6;  // Upper bound of the first bucket.
  double growth = 2.0;
  int buckets = 36;  // 1us .. ~34s with the defaults.
};

// Catalogue entry for a registered metric code. `name` is the Prometheus
// family name (snake_case, no suffix; renderers append _total etc.);
// `label` is the single optional label key ("" = unlabeled only).
struct MetricInfo {
  const char* code;       // "M100", ... (stable; see docs/OBSERVABILITY.md).
  MetricType type;
  const char* subsystem;  // "server", "probe", "fluidsim", "pool", "jobs".
  const char* name;
  const char* help;
  const char* label;      // Label key, or "" when the metric is unlabeled.
  HistogramSpec hist;     // Meaningful for histograms only.
};

// Every registered metric, ordered by code.
const std::vector<MetricInfo>& MetricCatalog();
// nullptr when `code` is not registered.
const MetricInfo* FindMetric(std::string_view code);

class Counter {
 public:
  void Inc() { value_.fetch_add(1, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec);

  void Observe(double v);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const HistogramSpec& spec() const { return spec_; }
  // Cumulative count of observations <= upper bound of bucket i; index
  // spec().buckets is the +Inf bucket (== count()).
  int64_t CumulativeCount(int bucket) const;
  // Upper bound of bucket i (base * growth^i).
  double UpperBound(int bucket) const;
  void Reset();

 private:
  HistogramSpec spec_;
  std::vector<std::atomic<int64_t>> buckets_;  // Per-bucket (non-cumulative).
  std::atomic<int64_t> inf_{0};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0};
};

// The registry: one instrument per (catalogue code, label value). Unlabeled
// instruments are created eagerly so lookups never allocate; labeled
// children are created on first use. `Instance()` is the process-wide
// registry every CT_OBS_* macro and renderer uses; separate instances exist
// only in tests.
class Registry {
 public:
  Registry();

  static Registry& Instance();

  // Aborts (programmer error) if `code` is unregistered or of another type.
  Counter* counter(std::string_view code);
  Gauge* gauge(std::string_view code);
  Histogram* histogram(std::string_view code);
  // Labeled children (the catalogue entry must declare a label key).
  Counter* counter(std::string_view code, std::string_view label_value);
  Histogram* histogram(std::string_view code, std::string_view label_value);

  // Zeroes every instrument and drops labeled children (tests, ctstat).
  void Reset();

  // Prometheus text exposition format, families ordered by M-code.
  std::string RenderPrometheus() const;
  // {"metrics": [{"code": ..., "name": ..., "value": ...} ...]} — histograms
  // carry count/sum/buckets. `skip_zero` drops never-touched instruments.
  std::string RenderJson(bool skip_zero = true) const;

 private:
  struct Family {
    const MetricInfo* info = nullptr;
    // Unlabeled instrument (exactly one of these is non-null, by type).
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    // Labeled children, keyed by label value (ordered for stable render).
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counter_children;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histogram_children;
  };

  Family* FindFamily(std::string_view code, MetricType type);

  std::vector<Family> families_;  // Catalogue order.
  mutable std::mutex children_mutex_;
};

}  // namespace obs
}  // namespace cloudtalk

// Instrumentation macros. `code` must be a string literal registered in
// MetricCatalog(); the instrument pointer is resolved once per call site.
// With CLOUDTALK_OBS=OFF everything expands to a dead expression: arguments
// are type-checked but never evaluated (the `false ?` arm), so call sites
// cannot rot while costing nothing.
#if defined(CLOUDTALK_OBS) && CLOUDTALK_OBS

#define CT_OBS_INC(code) CT_OBS_ADD(code, 1)

#define CT_OBS_ADD(code, n)                                                      \
  do {                                                                           \
    if (::cloudtalk::obs::RuntimeEnabled()) {                                    \
      static ::cloudtalk::obs::Counter* ct_obs_counter =                         \
          ::cloudtalk::obs::Registry::Instance().counter(code);                  \
      ct_obs_counter->Add(n);                                                    \
    }                                                                            \
  } while (0)

#define CT_OBS_GAUGE_SET(code, v)                                                \
  do {                                                                           \
    if (::cloudtalk::obs::RuntimeEnabled()) {                                    \
      static ::cloudtalk::obs::Gauge* ct_obs_gauge =                             \
          ::cloudtalk::obs::Registry::Instance().gauge(code);                    \
      ct_obs_gauge->Set(v);                                                      \
    }                                                                            \
  } while (0)

#define CT_OBS_GAUGE_ADD(code, v)                                                \
  do {                                                                           \
    if (::cloudtalk::obs::RuntimeEnabled()) {                                    \
      static ::cloudtalk::obs::Gauge* ct_obs_gauge =                             \
          ::cloudtalk::obs::Registry::Instance().gauge(code);                    \
      ct_obs_gauge->Add(v);                                                      \
    }                                                                            \
  } while (0)

#define CT_OBS_OBSERVE(code, v)                                                  \
  do {                                                                           \
    if (::cloudtalk::obs::RuntimeEnabled()) {                                    \
      static ::cloudtalk::obs::Histogram* ct_obs_hist =                          \
          ::cloudtalk::obs::Registry::Instance().histogram(code);                \
      ct_obs_hist->Observe(v);                                                   \
    }                                                                            \
  } while (0)

// Labeled variants: the child is looked up per call (label values vary).
#define CT_OBS_OBSERVE_L(code, label_value, v)                                   \
  do {                                                                           \
    if (::cloudtalk::obs::RuntimeEnabled()) {                                    \
      ::cloudtalk::obs::Registry::Instance().histogram(code, label_value)        \
          ->Observe(v);                                                          \
    }                                                                            \
  } while (0)

#define CT_OBS_INC_L(code, label_value)                                          \
  do {                                                                           \
    if (::cloudtalk::obs::RuntimeEnabled()) {                                    \
      ::cloudtalk::obs::Registry::Instance().counter(code, label_value)->Inc();  \
    }                                                                            \
  } while (0)

#else  // !CLOUDTALK_OBS

#define CT_OBS_INC(code) ((void)0)
#define CT_OBS_ADD(code, n) (false ? ((void)(n)) : (void)0)
#define CT_OBS_GAUGE_SET(code, v) (false ? ((void)(v)) : (void)0)
#define CT_OBS_GAUGE_ADD(code, v) (false ? ((void)(v)) : (void)0)
#define CT_OBS_OBSERVE(code, v) (false ? ((void)(v)) : (void)0)
#define CT_OBS_OBSERVE_L(code, label_value, v) \
  (false ? ((void)(label_value), (void)(v)) : (void)0)
#define CT_OBS_INC_L(code, label_value) (false ? ((void)(label_value)) : (void)0)

#endif  // CLOUDTALK_OBS

#endif  // CLOUDTALK_SRC_OBS_METRICS_H_
