// Whole-stack invariant checking for the CloudTalk core.
//
// The paper's Section 4 argument (all contention forms at access links and
// disks, and the max-min allocator is conservative on every step) is only as
// trustworthy as the simulator and the HDFS/MapReduce state machines that
// execute it. This library gives those layers the same systematic-diagnostic
// treatment ctlint gave the query language: `CT_INVARIANT` states a property
// the code relies on, and a violation produces a structured report — stable
// rule code, file:line, the failed condition, and a key/value dump of the
// violating state — rendered clang-style or as JSON (mirroring the
// `Diagnostic` shape in src/lang/diagnostics.h).
//
// Checks are compiled in only under the `CLOUDTALK_INVARIANTS` CMake option
// (default ON in Debug and in the CI sanitizer/fuzz jobs, OFF in Release);
// when off, every macro expands to an unevaluated no-op so release builds
// pay nothing. What a fired invariant *does* is a process-wide policy —
// abort (default), log-and-continue (the `tools/ctcheck` fuzzer and bench
// sweeps), or throw (tests) — configurable via `ServerConfig` or directly
// with `SetViolationPolicy`.
//
// The invariant catalogue (codes I1xx fluidsim, I2xx hdfs, I3xx mapred,
// L4xx locking, D000 generic debug check, D5xx differential properties such
// as the D500 optimisation byte-identity contract) lives in
// `InvariantCatalog()` and is documented with its paper justification in
// DESIGN.md, "Invariants".
#ifndef CLOUDTALK_SRC_CHECK_CHECK_H_
#define CLOUDTALK_SRC_CHECK_CHECK_H_

#include <cstdint>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cloudtalk {
namespace check {

#if defined(CLOUDTALK_INVARIANTS) && CLOUDTALK_INVARIANTS
inline constexpr bool kInvariantsEnabled = true;
#else
inline constexpr bool kInvariantsEnabled = false;
#endif

// What a fired invariant does after reporting. Process-wide; see
// ServerConfig::invariant_policy for the usual way to set it.
enum class OnViolation {
  kAbort,           // Print and std::abort() (debug default: fail loudly).
  kLogAndContinue,  // Report through the sink and keep running (fuzzer,
                    // benches that must survive a sweep).
  kThrow,           // Throw InvariantViolation (tests).
};

const char* OnViolationName(OnViolation policy);

// One fired invariant, with a structured dump of the violating state.
struct Violation {
  std::string code;       // "I102", "L401", ... (stable; see DESIGN.md).
  std::string condition;  // The stringified condition that failed.
  std::string file;
  int line = 0;
  std::string message;
  // Key/value dump attached with ViolationBuilder::With().
  std::vector<std::pair<std::string, std::string>> state;
};

// Catalogue entry for a registered invariant code.
struct InvariantInfo {
  const char* code;
  const char* subsystem;  // "fluidsim", "hdfs", "mapred", "lock", "check", "opt".
  const char* summary;
};

// Every registered invariant, ordered by code. Stable API like the lint
// rule registry: codes are never renumbered, only appended.
const std::vector<InvariantInfo>& InvariantCatalog();
// nullptr when `code` is not registered.
const InvariantInfo* FindInvariant(std::string_view code);

// Receives every violation before the policy acts. Installed sinks must be
// thread-safe: invariants fire from worker threads too.
class CheckSink {
 public:
  virtual ~CheckSink() = default;
  virtual void Report(const Violation& violation) = 0;
};

// Thread-safe sink that stores violations for later inspection (tests and
// the ctcheck fuzzer use it with OnViolation::kLogAndContinue).
class RecordingSink : public CheckSink {
 public:
  void Report(const Violation& violation) override;
  // Returns all recorded violations and clears the store.
  std::vector<Violation> TakeAll();
  int count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Violation> violations_;
};

// Policy and sink configuration. `SetCheckSink(nullptr)` restores the
// default sink (clang-style text to stderr). The sink is borrowed, not
// owned, and must outlive its installation.
void SetViolationPolicy(OnViolation policy);
OnViolation GetViolationPolicy();
void SetCheckSink(CheckSink* sink);

// Process-wide count of violations reported since start (or last reset).
int64_t ViolationCount();
void ResetViolationCountForTest();

// Thrown under OnViolation::kThrow. what() is the formatted report.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(Violation violation);
  const Violation& violation() const { return violation_; }

 private:
  Violation violation_;
};

// Central dispatch: counts, sinks, then applies the policy. The macros and
// the lock registry both report through here; calling it directly is how
// non-macro checkers (LockRegistry, ScopedAccessGuard) fire even in builds
// where the macros are compiled out.
void ReportViolation(Violation violation);

// clang-style text rendering:
//   file:line: invariant violation: <message> [I102 fluidsim]
//     condition: <condition>
//     state: key = value ...
std::string FormatViolation(const Violation& violation);
// {"code":..., "subsystem":..., "file":..., "line":..., "condition":...,
//  "message":..., "state":{...}}
std::string ViolationToJson(const Violation& violation);
// {"violations": N, "reports": [...]}
std::string ViolationsToJson(const std::vector<Violation>& violations);

namespace internal {

// Expression-shaped builder the macros expand to. The default-constructed
// (inactive) form is the held-condition path; the active form collects the
// state dump through With() and fires ReportViolation from its destructor
// at the end of the full expression.
class ViolationBuilder {
 public:
  ViolationBuilder() = default;
  ViolationBuilder(const char* code, const char* condition, const char* file, int line,
                   std::string message) {
    active_ = true;
    violation_.code = code;
    violation_.condition = condition;
    violation_.file = file;
    violation_.line = line;
    violation_.message = std::move(message);
  }
  ViolationBuilder(const ViolationBuilder&) = delete;
  ViolationBuilder& operator=(const ViolationBuilder&) = delete;

  // May throw under OnViolation::kThrow; never runs during unwinding
  // because the builder only lives inside the checking full-expression.
  ~ViolationBuilder() noexcept(false) {
    if (active_) {
      ReportViolation(std::move(violation_));
    }
  }

  template <typename T>
  ViolationBuilder& With(const char* key, const T& value) {
    if (active_) {
      std::ostringstream os;
      os << std::setprecision(15) << value;
      violation_.state.emplace_back(key, os.str());
    }
    return *this;
  }

 private:
  bool active_ = false;
  Violation violation_;
};

// Compiled-out stand-in: swallows the With() chain without evaluating the
// condition (the `false ?` arm keeps it type-checked but dead).
struct NullBuilder {
  template <typename T>
  NullBuilder& With(const char*, const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace check
}  // namespace cloudtalk

// CT_INVARIANT(condition, code, message): states a property of the system
// the surrounding code relies on. On failure, reports a Violation carrying
// `code` (which must be registered in InvariantCatalog()) and any state
// attached by chained .With("key", value) calls:
//
//   CT_INVARIANT(member.remaining >= 0, "I104", "negative residual bytes")
//       .With("group", group.id)
//       .With("remaining", member.remaining);
//
// Compiled out entirely (condition unevaluated) without CLOUDTALK_INVARIANTS.
#if defined(CLOUDTALK_INVARIANTS) && CLOUDTALK_INVARIANTS
#define CT_INVARIANT(condition, code, message)                                        \
  ((condition) ? ::cloudtalk::check::internal::ViolationBuilder()                     \
               : ::cloudtalk::check::internal::ViolationBuilder(code, #condition,     \
                                                                __FILE__, __LINE__,  \
                                                                message))
#else
#define CT_INVARIANT(condition, code, message)                                        \
  (false ? ((void)(condition), ::cloudtalk::check::internal::NullBuilder{})           \
         : ::cloudtalk::check::internal::NullBuilder{})
#endif

// CT_DCHECK(condition): a plain internal sanity check with no dedicated
// catalogue entry. Same build gating and policy handling as CT_INVARIANT.
#define CT_DCHECK(condition) CT_INVARIANT(condition, "D000", "debug check failed")

#endif  // CLOUDTALK_SRC_CHECK_CHECK_H_
