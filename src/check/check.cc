#include "src/check/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace cloudtalk {
namespace check {
namespace {

// Process-wide policy/sink state. Atomics rather than a mutex: violations
// can fire from worker threads while a test thread flips the policy, and
// the report path must never itself take a lock that user code might hold
// (the lock registry reports through here while a mutex is being acquired).
std::atomic<OnViolation> g_policy{OnViolation::kAbort};
std::atomic<CheckSink*> g_sink{nullptr};
std::atomic<int64_t> g_violation_count{0};

void AppendJsonString(std::string& out, std::string_view text) {
  out.push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

const char* OnViolationName(OnViolation policy) {
  switch (policy) {
    case OnViolation::kAbort:
      return "abort";
    case OnViolation::kLogAndContinue:
      return "log-and-continue";
    case OnViolation::kThrow:
      return "throw";
  }
  return "unknown";
}

const std::vector<InvariantInfo>& InvariantCatalog() {
  static const std::vector<InvariantInfo> kCatalog = {
      {"D000", "check", "generic CT_DCHECK internal sanity check"},
      {"D500", "opt",
       "exhaustive search with the static optimisation passes returns the same "
       "winning binding and bit-identical estimate as the unoptimised walk "
       "(checked differentially by ctcheck --diff-opt)"},
      {"D501", "fluidsim",
       "the incremental delta re-solve (checkpoint restore + dirty-component "
       "water-filling) returns the same winning binding and bit-identical "
       "estimate as a cold per-binding rebuild (checked differentially by "
       "ctcheck --diff-sim)"},
      {"D502", "bound",
       "bound soundness: every simulated binding's makespan lies inside the "
       "[LB, UB] interval lang::BoundAnalysis computes at the estimator's "
       "availability fraction (checked differentially by ctcheck "
       "--diff-bound)"},
      {"D503", "canon",
       "canonicalization soundness: canon is idempotent, equivalence-preserving "
       "mutations (renaming, reordering, respelling, dead clauses) leave the "
       "canonical bytes unchanged, and the canonical form is answered exactly "
       "like the original after mapping names back (checked differentially by "
       "ctcheck --diff-canon)"},
      {"D504", "scope",
       "footprint soundness: probing only the hosts the static scope analysis "
       "places in the footprint yields byte-identical answers to probing every "
       "sampled pool entry and literal endpoint, and queries with disjoint "
       "reservation footprints commute — either admission order yields "
       "byte-identical replies (checked differentially by ctcheck "
       "--diff-scope)"},
      {"D505", "shard",
       "sharded-deployment identity: a ShardedServer over 1, 2, or 4 shards — "
       "hierarchical probe aggregation, per-shard search slices merged by "
       "(makespan, odometer rank), two-phase cross-shard reservations — "
       "answers byte-identically to the single CloudTalkServer, for "
       "sequential queries and for disjoint queries admitted concurrently "
       "through the N-slot gate (checked differentially by ctcheck "
       "--diff-shard)"},
      {"I101", "fluidsim",
       "after max-min allocation every unfrozen flow group is bottlenecked at a "
       "saturated resource or pinned at its rate cap"},
      {"I102", "fluidsim",
       "allocated rates never consume more than a resource's capacity (within "
       "epsilon)"},
      {"I103", "fluidsim", "events are never scheduled before the current simulation time"},
      {"I104", "fluidsim", "residual (untransferred) bytes of a member never go negative"},
      {"I105", "fluidsim", "GroupTransferred is queried with a valid member index"},
      {"I106", "fluidsim", "simulation time never moves backwards between events"},
      {"I201", "hdfs", "a write pipeline has exactly `replication` stages"},
      {"I202", "hdfs", "all replicas in a write pipeline are distinct hosts"},
      {"I203", "hdfs", "a read is always served from a host that holds a replica"},
      {"I204", "hdfs",
       "block state transitions follow empty -> writing -> complete (installs may "
       "jump straight to complete)"},
      {"I205", "hdfs", "reads are only served from blocks in the complete state"},
      {"I301", "mapred", "a task attempt is never assigned to two trackers at once"},
      {"I302", "mapred", "speculative attempts are launched only for running tasks"},
      {"I303", "mapred", "per-tracker heartbeat times are monotonically non-decreasing"},
      {"I304", "mapred",
       "tracker slot counters match the number of running attempts placed on the "
       "tracker"},
      {"I305", "mapred", "a reducer's outstanding-fetch count never goes negative"},
      {"I401", "topology",
       "every pair of nodes in a constructed fabric is connected (the reverse "
       "BFS from the destination reaches the source)"},
      {"I402", "topology",
       "the ECMP shortest-path walk always finds a next hop strictly closer "
       "to the destination"},
      {"I403", "topology",
       "a synthesized cloud tenant exposes exactly the requested number of "
       "instances"},
      {"I404", "result", "Result<T>::value() is only called on a result holding a value"},
      {"I405", "result", "Result<T>::error() is only called on a failed result"},
      {"I406", "probing",
       "rack inference assigns every probed host a non-negative rack label"},
      {"I407", "harness",
       "a measurement sweep reports status for every host in the cluster"},
      {"I408", "scope",
       "every literal flow endpoint is inside the computed footprint (the bound "
       "analysis and the estimators read its status for every binding)"},
      {"I409", "server",
       "an admission-gate release always matches a scope that is still in "
       "flight"},
      {"I410", "shard",
       "the shard map is a total partition: every probe target and every "
       "reservation routes to exactly one owning shard, so no host is ever "
       "probed twice or double-reserved across shards"},
      {"I411", "shard",
       "a two-phase commit or abort always matches a lease the shard's "
       "reservation table still holds (never prepared, or already "
       "committed/aborted, fires)"},
      {"I412", "shard",
       "hierarchical probe aggregation merges a partition: the rolled-up "
       "status holds one report per answering target and never invents a "
       "host no shard probed"},
      {"L401", "lock",
       "no two locks are ever acquired in opposite orders by different threads "
       "(lock-order inversion)"},
      {"L402", "lock",
       "state protected by a ScopedAccessGuard is entered by one thread at a time "
       "(single-writer violation)"},
  };
  return kCatalog;
}

const InvariantInfo* FindInvariant(std::string_view code) {
  for (const InvariantInfo& info : InvariantCatalog()) {
    if (code == info.code) {
      return &info;
    }
  }
  return nullptr;
}

void RecordingSink::Report(const Violation& violation) {
  std::lock_guard<std::mutex> lock(mutex_);
  violations_.push_back(violation);
}

std::vector<Violation> RecordingSink::TakeAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Violation> out;
  out.swap(violations_);
  return out;
}

int RecordingSink::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(violations_.size());
}

void SetViolationPolicy(OnViolation policy) { g_policy.store(policy, std::memory_order_relaxed); }

OnViolation GetViolationPolicy() { return g_policy.load(std::memory_order_relaxed); }

void SetCheckSink(CheckSink* sink) { g_sink.store(sink, std::memory_order_release); }

int64_t ViolationCount() { return g_violation_count.load(std::memory_order_relaxed); }

void ResetViolationCountForTest() { g_violation_count.store(0, std::memory_order_relaxed); }

InvariantViolation::InvariantViolation(Violation violation)
    : std::runtime_error(FormatViolation(violation)), violation_(std::move(violation)) {}

void ReportViolation(Violation violation) {
  g_violation_count.fetch_add(1, std::memory_order_relaxed);
  if (CheckSink* sink = g_sink.load(std::memory_order_acquire)) {
    sink->Report(violation);
    if (GetViolationPolicy() == OnViolation::kLogAndContinue) {
      return;
    }
  }
  switch (GetViolationPolicy()) {
    case OnViolation::kThrow:
      throw InvariantViolation(std::move(violation));
    case OnViolation::kLogAndContinue:
      std::fputs(FormatViolation(violation).c_str(), stderr);
      return;
    case OnViolation::kAbort:
      std::fputs(FormatViolation(violation).c_str(), stderr);
      std::abort();
  }
}

std::string FormatViolation(const Violation& violation) {
  std::ostringstream os;
  const InvariantInfo* info = FindInvariant(violation.code);
  os << violation.file << ":" << violation.line << ": invariant violation: "
     << violation.message << " [" << violation.code;
  if (info != nullptr) {
    os << " " << info->subsystem;
  }
  os << "]\n";
  os << "  condition: " << violation.condition << "\n";
  for (const auto& [key, value] : violation.state) {
    os << "  " << key << " = " << value << "\n";
  }
  return os.str();
}

std::string ViolationToJson(const Violation& violation) {
  std::string out = "{\"code\":";
  AppendJsonString(out, violation.code);
  const InvariantInfo* info = FindInvariant(violation.code);
  out += ",\"subsystem\":";
  AppendJsonString(out, info != nullptr ? info->subsystem : "unknown");
  out += ",\"file\":";
  AppendJsonString(out, violation.file);
  out += ",\"line\":" + std::to_string(violation.line);
  out += ",\"condition\":";
  AppendJsonString(out, violation.condition);
  out += ",\"message\":";
  AppendJsonString(out, violation.message);
  out += ",\"state\":{";
  bool first = true;
  for (const auto& [key, value] : violation.state) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendJsonString(out, key);
    out.push_back(':');
    AppendJsonString(out, value);
  }
  out += "}}";
  return out;
}

std::string ViolationsToJson(const std::vector<Violation>& violations) {
  std::string out = "{\"violations\":" + std::to_string(violations.size());
  out += ",\"reports\":[";
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) {
      out.push_back(',');
    }
    out += ViolationToJson(violations[i]);
  }
  out += "]}";
  return out;
}

}  // namespace check
}  // namespace cloudtalk
