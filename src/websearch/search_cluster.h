// Web-search substrate (Section 5.4): a scatter-gather query tree in the
// packet-level simulator.
//
// Servers form a hierarchy: a frontend fans queries out to aggregators,
// each aggregator to its leaf index servers. Every leaf returns ~10 KB of
// results over TCP; the aggregator forwards the merged results to the
// frontend once all of its leaves answered. Query latency is dominated by
// TCP incast at the aggregation points — with a single aggregator facing
// 100 leaves the system collapses beyond a few tens of queries per second,
// which is Figure 11.
#ifndef CLOUDTALK_SRC_WEBSEARCH_SEARCH_CLUSTER_H_
#define CLOUDTALK_SRC_WEBSEARCH_SEARCH_CLUSTER_H_

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/packetsim/network.h"
#include "src/topology/topology.h"

namespace cloudtalk {

struct SearchParams {
  Bytes request_size = 200;          // Query fan-out message.
  Bytes leaf_response = 10 * kKB;    // Per-leaf results ("10KB", Section 5.4).
  Seconds leaf_compute = 5 * kMillisecond;  // Local index search time.
  packetsim::NetworkParams net;
};

struct SearchStats {
  std::vector<double> latencies;  // Completed query latencies (seconds).
  int issued = 0;
  int completed = 0;
  int64_t drops = 0;
  int64_t timeouts = 0;
};

// A deployment: where the frontend, aggregators and leaves live, and which
// leaves report to which aggregator.
struct SearchDeployment {
  NodeId frontend = kInvalidNode;
  std::vector<NodeId> aggregators;
  std::vector<std::vector<NodeId>> leaves_per_aggregator;
};

class SearchCluster {
 public:
  SearchCluster(const Topology* topo, SearchDeployment deployment, SearchParams params);

  // Issues queries at `qps` (Poisson arrivals) for `duration`, runs the
  // simulation to completion, and returns latency statistics.
  SearchStats RunLoad(double qps, Seconds duration, uint64_t seed = 1);

 private:
  const Topology* topo_;
  SearchDeployment deployment_;
  SearchParams params_;
};

// Deployment builders over a host list: one aggregator serving all leaves,
// or two aggregators splitting them (the Figure 10 architecture).
SearchDeployment SingleAggregatorDeployment(const std::vector<NodeId>& hosts,
                                            NodeId frontend, NodeId aggregator);
SearchDeployment TwoAggregatorDeployment(const std::vector<NodeId>& hosts, NodeId frontend,
                                         NodeId agg1, NodeId agg2);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_WEBSEARCH_SEARCH_CLUSTER_H_
