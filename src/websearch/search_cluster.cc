#include "src/websearch/search_cluster.h"

#include <algorithm>
#include <memory>

namespace cloudtalk {

namespace {

// Per-query bookkeeping shared by the event callbacks.
struct QueryState {
  Seconds issued = 0;
  int aggs_outstanding = 0;
  std::vector<int> leaves_outstanding;  // Per aggregator.
  bool done = false;
};

}  // namespace

SearchCluster::SearchCluster(const Topology* topo, SearchDeployment deployment,
                             SearchParams params)
    : topo_(topo), deployment_(std::move(deployment)), params_(params) {}

SearchStats SearchCluster::RunLoad(double qps, Seconds duration, uint64_t seed) {
  packetsim::PacketNetwork net(topo_, params_.net);
  Rng rng(seed);
  SearchStats stats;
  std::vector<std::unique_ptr<QueryState>> queries;

  const int num_aggs = static_cast<int>(deployment_.aggregators.size());

  // Issue one query: frontend -> aggs -> leaves (requests as datagrams),
  // leaves answer with TCP responses; each agg forwards once its leaves all
  // answered; query completes when every agg's merge lands at the frontend.
  auto issue = [&](Seconds at) {
    auto state = std::make_unique<QueryState>();
    QueryState* q = state.get();
    q->issued = at;
    q->aggs_outstanding = num_aggs;
    q->leaves_outstanding.resize(num_aggs);
    queries.push_back(std::move(state));
    stats.issued += 1;

    for (int a = 0; a < num_aggs; ++a) {
      const NodeId agg = deployment_.aggregators[a];
      const auto& leaves = deployment_.leaves_per_aggregator[a];
      q->leaves_outstanding[a] = static_cast<int>(leaves.size());
      // Frontend -> agg request, then agg -> leaves fan-out. Requests ride
      // TCP (Solr speaks HTTP): a dropped request packet is retransmitted
      // rather than silently lost in the fan-out burst.
      net.StartTcpFlow(deployment_.frontend, agg, params_.request_size, at,
                       [&net, this, q, a, agg, &leaves, &stats](packetsim::FlowId,
                                                                Seconds t_agg) {
        for (const NodeId leaf : leaves) {
          net.StartTcpFlow(agg, leaf, params_.request_size, t_agg,
                           [&net, this, q, a, agg, leaf, &stats](packetsim::FlowId,
                                                                 Seconds t_leaf) {
            // Leaf searches its shard, then streams results to the agg.
            const Seconds respond_at = t_leaf + params_.leaf_compute;
            net.StartTcpFlow(leaf, agg, params_.leaf_response, respond_at,
                             [&net, this, q, a, agg, &stats](packetsim::FlowId, Seconds t) {
              if (--q->leaves_outstanding[a] > 0) {
                return;
              }
              // All leaves answered: forward the merged results.
              const Bytes merged =
                  params_.leaf_response *
                  static_cast<double>(deployment_.leaves_per_aggregator[a].size());
              net.StartTcpFlow(agg, deployment_.frontend, merged, t,
                               [this, q, &stats, &net](packetsim::FlowId, Seconds t_done) {
                if (--q->aggs_outstanding > 0 || q->done) {
                  return;
                }
                q->done = true;
                stats.completed += 1;
                stats.latencies.push_back(t_done - q->issued);
                (void)net;
              });
            });
          });
        }
      });
    }
  };

  // Poisson arrivals.
  Seconds t = 0;
  while (t < duration) {
    issue(t);
    t += rng.Exponential(1.0 / qps);
  }
  net.RunUntilIdle(/*hard_deadline=*/duration + 120.0);
  stats.drops = net.total_drops();
  stats.timeouts = net.total_timeouts();
  return stats;
}

SearchDeployment SingleAggregatorDeployment(const std::vector<NodeId>& hosts, NodeId frontend,
                                            NodeId aggregator) {
  SearchDeployment deployment;
  deployment.frontend = frontend;
  deployment.aggregators = {aggregator};
  deployment.leaves_per_aggregator.emplace_back();
  for (NodeId h : hosts) {
    if (h != frontend && h != aggregator) {
      deployment.leaves_per_aggregator[0].push_back(h);
    }
  }
  return deployment;
}

SearchDeployment TwoAggregatorDeployment(const std::vector<NodeId>& hosts, NodeId frontend,
                                         NodeId agg1, NodeId agg2) {
  SearchDeployment deployment;
  deployment.frontend = frontend;
  deployment.aggregators = {agg1, agg2};
  deployment.leaves_per_aggregator.resize(2);
  std::vector<NodeId> leaves;
  for (NodeId h : hosts) {
    if (h != frontend && h != agg1 && h != agg2) {
      leaves.push_back(h);
    }
  }
  // "Servers addresses are sorted according to proximity. The first 50
  // servers go to the first aggregator, and the other 50 to the second."
  const size_t half = leaves.size() / 2;
  deployment.leaves_per_aggregator[0].assign(leaves.begin(), leaves.begin() + half);
  deployment.leaves_per_aggregator[1].assign(leaves.begin() + half, leaves.end());
  return deployment;
}

}  // namespace cloudtalk
