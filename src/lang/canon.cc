#include "src/lang/canon.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

namespace cloudtalk {
namespace lang {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, const void* data, size_t size) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

ExprPtr CloneExpr(const Expr& expr) { return expr.Clone(); }

FlowDef CloneFlow(const FlowDef& flow) {
  FlowDef clone;
  clone.name = flow.name;
  clone.explicit_name = flow.explicit_name;
  clone.src = flow.src;
  clone.dst = flow.dst;
  clone.span = flow.span;
  clone.src_span = flow.src_span;
  clone.dst_span = flow.dst_span;
  clone.attrs.reserve(flow.attrs.size());
  for (const AttrValue& av : flow.attrs) {
    clone.attrs.push_back(AttrValue{av.attr, CloneExpr(*av.value), av.span});
  }
  return clone;
}

Query CloneQuery(const Query& query) {
  Query clone;
  clone.variables = query.variables;
  clone.requirements = query.requirements;
  clone.options = query.options;
  clone.flows.reserve(query.flows.size());
  for (const FlowDef& flow : query.flows) {
    clone.flows.push_back(CloneFlow(flow));
  }
  return clone;
}

// Folds every maximal constant subexpression to one literal, mirroring
// EvalConstant() (so the compiled doubles are bit-identical to the unfolded
// evaluation: same operations in the same association order).
void FoldConstants(ExprPtr* expr) {
  if (IsConstantExpr(**expr)) {
    if ((*expr)->kind != Expr::Kind::kLiteral) {
      *expr = Expr::Literal(EvalConstant(**expr));
    }
    return;
  }
  if ((*expr)->kind == Expr::Kind::kBinary) {
    FoldConstants(&(*expr)->lhs);
    FoldConstants(&(*expr)->rhs);
  }
}

// Dead-clause elimination on one flow's attributes. Compilation reads
// start/end only when the whole expression is constant (analysis.cc), a
// `start 0` restates the default, and non-positive deadlines/rate limits
// are ignored (`deadline > 0` / `limit_bps > 0` guards). Rate expressions
// with references must stay: they drive chain grouping even though their
// value is never read.
void DropDeadAttrs(FlowDef* flow) {
  auto dead = [](const AttrValue& av) {
    switch (av.attr) {
      case Attr::kStart:
        return !IsConstantExpr(*av.value) || EvalConstant(*av.value) == 0;
      case Attr::kEnd:
        return !IsConstantExpr(*av.value) || EvalConstant(*av.value) <= 0;
      case Attr::kRate:
        return IsConstantExpr(*av.value) && EvalConstant(*av.value) <= 0;
      case Attr::kSize:
      case Attr::kTransfer:
        return false;
    }
    return false;
  };
  flow->attrs.erase(std::remove_if(flow->attrs.begin(), flow->attrs.end(), dead),
                    flow->attrs.end());
}

// The compiler's chain-group union-find (analysis.cc), reproduced over the
// working flows: rate/transfer references join flows into one group.
std::vector<int> ChainGroups(const Query& query) {
  std::unordered_map<std::string, int> index;
  for (size_t i = 0; i < query.flows.size(); ++i) {
    index[query.flows[i].name] = static_cast<int>(i);
  }
  const int n = static_cast<int>(query.flows.size());
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (int i = 0; i < n; ++i) {
    for (const AttrValue& av : query.flows[i].attrs) {
      if (av.attr != Attr::kRate && av.attr != Attr::kTransfer) {
        continue;
      }
      std::vector<std::pair<Attr, std::string>> refs;
      CollectFlowRefs(*av.value, &refs);
      for (const auto& [attr, name] : refs) {
        (void)attr;
        const auto it = index.find(name);
        if (it != index.end()) {
          parent[find(i)] = find(it->second);
        }
      }
    }
  }
  std::vector<int> group(n);
  for (int i = 0; i < n; ++i) {
    group[i] = find(i);
  }
  return group;
}

// Serializes an expression for the refinement signature. Literals render as
// the exact bit pattern (canonical and collision-free, unlike any decimal
// rendering); references render through `ref_key`, so the serialization is
// name-free.
void SerializeExpr(const Expr& expr,
                   const std::unordered_map<std::string, uint64_t>& ref_key,
                   std::string* out) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral: {
      uint64_t bits = 0;
      std::memcpy(&bits, &expr.literal, sizeof(bits));
      char buf[24];
      std::snprintf(buf, sizeof(buf), "L%016llx", static_cast<unsigned long long>(bits));
      out->append(buf);
      return;
    }
    case Expr::Kind::kRef: {
      const auto it = ref_key.find(expr.ref_flow);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "R%d@%016llx", static_cast<int>(expr.ref_attr),
                    static_cast<unsigned long long>(it != ref_key.end() ? it->second : 0));
      out->append(buf);
      return;
    }
    case Expr::Kind::kBinary:
      out->push_back('(');
      out->push_back(expr.op);
      SerializeExpr(*expr.lhs, ref_key, out);
      out->push_back(',');
      SerializeExpr(*expr.rhs, ref_key, out);
      out->push_back(')');
      return;
  }
}

void SerializeEndpoint(const Endpoint& e,
                       const std::unordered_map<std::string, int>& var_slot,
                       std::string* out) {
  switch (e.kind) {
    case Endpoint::Kind::kAddress:
      out->push_back('A');
      out->append(e.name);
      return;
    case Endpoint::Kind::kVariable: {
      const auto it = var_slot.find(e.name);
      out->push_back('V');
      out->append(std::to_string(it != var_slot.end() ? it->second : -1));
      return;
    }
    case Endpoint::Kind::kDisk:
      out->push_back('D');
      return;
    case Endpoint::Kind::kUnknown:
      out->push_back('U');
      return;
  }
}

// One refinement round's signature of a flow: endpoints (variables by
// declaration slot — declaration order is canonical), attributes in enum
// order with reference targets rendered through their previous-round keys,
// plus the sorted multiset of previous-round keys of the flows referencing
// this one (backward edges — forward serialization alone cannot separate
// two identical flows of which only one is referenced).
uint64_t FlowSignature(const FlowDef& flow,
                       const std::unordered_map<std::string, int>& var_slot,
                       const std::unordered_map<std::string, uint64_t>& ref_key,
                       std::vector<uint64_t> incoming) {
  std::string sig;
  SerializeEndpoint(flow.src, var_slot, &sig);
  sig.push_back('>');
  SerializeEndpoint(flow.dst, var_slot, &sig);
  for (const AttrValue& av : flow.attrs) {
    sig.push_back('|');
    sig.append(std::to_string(static_cast<int>(av.attr)));
    sig.push_back(':');
    SerializeExpr(*av.value, ref_key, &sig);
  }
  uint64_t h = FnvMix(kFnvOffset, sig.data(), sig.size());
  std::sort(incoming.begin(), incoming.end());
  for (const uint64_t k : incoming) {
    h = FnvMix(h, &k, sizeof(k));
  }
  return h;
}

}  // namespace

uint64_t ContentHash(std::string_view text) {
  return FnvMix(kFnvOffset, text.data(), text.size());
}

const std::string* CanonicalQuery::OriginalVariable(const std::string& canonical) const {
  for (const auto& [original, canon] : variable_map) {
    if (canon == canonical) {
      return &original;
    }
  }
  return nullptr;
}

const std::string* CanonicalQuery::OriginalFlow(const std::string& canonical) const {
  for (const auto& [original, canon] : flow_map) {
    if (canon == canonical) {
      return &original;
    }
  }
  return nullptr;
}

Result<CanonicalQuery> Canonicalize(const Query& query) {
  // ---- Validity guards: renaming is only sound over unambiguous names ----
  std::unordered_set<std::string> var_names;
  for (const VarDecl& decl : query.variables) {
    for (const std::string& name : decl.names) {
      if (!var_names.insert(name).second) {
        return Error{"cannot canonicalize: variable '" + name + "' declared twice"};
      }
    }
  }
  std::unordered_set<std::string> flow_names;
  for (const FlowDef& flow : query.flows) {
    if (!flow_names.insert(flow.name).second) {
      return Error{"cannot canonicalize: flow '" + flow.name + "' defined twice"};
    }
  }
  for (const FlowDef& flow : query.flows) {
    for (const AttrValue& av : flow.attrs) {
      std::vector<std::pair<Attr, std::string>> refs;
      CollectFlowRefs(*av.value, &refs);
      for (const auto& [attr, name] : refs) {
        (void)attr;
        if (flow_names.count(name) == 0) {
          return Error{"cannot canonicalize: flow '" + flow.name +
                       "' references undefined flow '" + name + "'"};
        }
      }
    }
  }

  Query canon = CloneQuery(query);

  // ---- Dead clauses and constant folding ----
  for (FlowDef& flow : canon.flows) {
    DropDeadAttrs(&flow);
    for (AttrValue& av : flow.attrs) {
      FoldConstants(&av.value);
    }
    std::sort(flow.attrs.begin(), flow.attrs.end(),
              [](const AttrValue& a, const AttrValue& b) {
                return static_cast<int>(a.attr) < static_cast<int>(b.attr);
              });
  }
  for (VarDecl& decl : canon.variables) {
    // Duplicate pool entries never add binding choices (the heuristic's
    // stable score sort and the exhaustive odometer both keep the first).
    std::vector<Endpoint> unique;
    for (const Endpoint& e : decl.values) {
      if (std::find(unique.begin(), unique.end(), e) == unique.end()) {
        unique.push_back(e);
      }
    }
    decl.values = std::move(unique);
    decl.value_spans.clear();
  }
  {
    // A later `requires` statement fully overwrites an earlier one for the
    // same variable (analysis.cc): keep only the last, then drop no-ops.
    std::unordered_set<std::string> seen;
    std::vector<Requirement> kept;
    for (auto it = canon.requirements.rbegin(); it != canon.requirements.rend(); ++it) {
      if (seen.insert(it->var).second) {
        kept.push_back(*it);
      }
    }
    std::reverse(kept.begin(), kept.end());
    canon.requirements = std::move(kept);
  }
  canon.requirements.erase(
      std::remove_if(canon.requirements.begin(), canon.requirements.end(),
                     [](const Requirement& req) {
                       return req.cpu_cores <= 0 && req.memory <= 0;
                     }),
      canon.requirements.end());

  // ---- Group-constraint normalization ----
  // Compilation folds every member's constant rate (and deadline) into one
  // per-group minimum, so where the constraint is written is unobservable.
  // Strip them before computing the flow order (two queries differing only
  // in constraint placement must order identically), remember the per-group
  // minima, and re-attach each to one canonical member afterwards.
  const std::vector<int> group_of = ChainGroups(canon);
  std::unordered_map<int, double> group_rate;   // Bytes/sec, as written.
  std::unordered_map<int, double> group_deadline;
  for (size_t i = 0; i < canon.flows.size(); ++i) {
    FlowDef& flow = canon.flows[i];
    auto strip = [&](Attr attr, std::unordered_map<int, double>* tightest) {
      for (auto it = flow.attrs.begin(); it != flow.attrs.end();) {
        if (it->attr == attr && IsConstantExpr(*it->value)) {
          const double value = EvalConstant(*it->value);
          auto [entry, inserted] = tightest->try_emplace(group_of[i], value);
          if (!inserted) {
            entry->second = std::min(entry->second, value);
          }
          it = flow.attrs.erase(it);
        } else {
          ++it;
        }
      }
    };
    strip(Attr::kRate, &group_rate);
    strip(Attr::kEnd, &group_deadline);
  }

  // ---- Canonical flow order: WL-style refinement over the ref graph ----
  const int n = static_cast<int>(canon.flows.size());
  std::unordered_map<std::string, int> var_slot;
  for (const VarDecl& decl : canon.variables) {
    for (const std::string& name : decl.names) {
      var_slot.emplace(name, static_cast<int>(var_slot.size()));
    }
  }
  std::unordered_map<std::string, int> flow_index;
  for (int i = 0; i < n; ++i) {
    flow_index[canon.flows[i].name] = i;
  }
  std::vector<std::vector<int>> incoming_of(n);  // referrer flow indices
  for (int i = 0; i < n; ++i) {
    for (const AttrValue& av : canon.flows[i].attrs) {
      std::vector<std::pair<Attr, std::string>> refs;
      CollectFlowRefs(*av.value, &refs);
      for (const auto& [attr, name] : refs) {
        (void)attr;
        const auto it = flow_index.find(name);
        if (it != flow_index.end()) {
          incoming_of[it->second].push_back(i);
        }
      }
    }
  }
  std::vector<uint64_t> key(n, 0);
  const int rounds = std::min(n, 64) + 1;
  for (int round = 0; round < rounds; ++round) {
    std::unordered_map<std::string, uint64_t> ref_key;
    for (int i = 0; i < n; ++i) {
      ref_key.emplace(canon.flows[i].name, key[i]);
    }
    std::vector<uint64_t> next(n);
    for (int i = 0; i < n; ++i) {
      std::vector<uint64_t> incoming;
      incoming.reserve(incoming_of[i].size());
      for (const int r : incoming_of[i]) {
        incoming.push_back(key[r]);
      }
      next[i] = FlowSignature(canon.flows[i], var_slot, ref_key, std::move(incoming));
    }
    key = std::move(next);
  }
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&key](int a, int b) { return key[a] < key[b]; });

  // Re-attach each group's tightest constraint to its first member (in
  // canonical order) lacking that attribute.
  auto attach = [&](const std::unordered_map<int, double>& tightest, Attr attr) {
    for (const auto& [group, value] : tightest) {
      for (const int i : order) {
        if (group_of[i] != group || canon.flows[i].FindAttr(attr) != nullptr) {
          continue;
        }
        std::vector<AttrValue>& attrs = canon.flows[i].attrs;
        attrs.push_back(AttrValue{attr, Expr::Literal(value), Span{}});
        std::sort(attrs.begin(), attrs.end(), [](const AttrValue& a, const AttrValue& b) {
          return static_cast<int>(a.attr) < static_cast<int>(b.attr);
        });
        break;
      }
    }
  };
  attach(group_rate, Attr::kRate);
  attach(group_deadline, Attr::kEnd);

  // ---- Alpha-renaming ----
  // Fresh names must not collide with address identifiers (an endpoint
  // token resolves to a variable only when one of that name is declared, so
  // renaming a variable onto an in-use address string would capture it).
  std::unordered_set<std::string> taken{"disk"};
  for (const VarDecl& decl : canon.variables) {
    for (const Endpoint& e : decl.values) {
      if (e.kind == Endpoint::Kind::kAddress) {
        taken.insert(e.name);
      }
    }
  }
  for (const FlowDef& flow : canon.flows) {
    for (const Endpoint* e : {&flow.src, &flow.dst}) {
      if (e->kind == Endpoint::Kind::kAddress) {
        taken.insert(e->name);
      }
    }
  }
  auto fresh = [&taken](const char* prefix, int* counter) {
    std::string name;
    do {
      name = prefix + std::to_string((*counter)++);
    } while (taken.count(name) > 0);
    return name;
  };

  CanonicalQuery result;
  std::unordered_map<std::string, std::string> var_rename;
  int var_counter = 0;
  for (const VarDecl& decl : canon.variables) {
    for (const std::string& name : decl.names) {
      const std::string canonical = fresh("v", &var_counter);
      var_rename.emplace(name, canonical);
      result.variable_map.emplace_back(name, canonical);
    }
  }

  // Referenced flows need stable names; unreferenced flow names are
  // unobservable and drop to the parser's positional auto-name.
  std::unordered_set<std::string> referenced;
  for (const FlowDef& flow : canon.flows) {
    for (const AttrValue& av : flow.attrs) {
      std::vector<std::pair<Attr, std::string>> refs;
      CollectFlowRefs(*av.value, &refs);
      for (const auto& [attr, name] : refs) {
        (void)attr;
        referenced.insert(name);
      }
    }
  }
  std::unordered_map<std::string, std::string> flow_rename;
  int flow_counter = 0;
  for (size_t pos = 0; pos < order.size(); ++pos) {
    FlowDef& flow = canon.flows[order[pos]];
    std::string canonical;
    if (referenced.count(flow.name) > 0) {
      canonical = fresh("f", &flow_counter);
      flow.explicit_name = true;
    } else {
      canonical = "_f" + std::to_string(pos + 1);
      flow.explicit_name = false;
    }
    flow_rename.emplace(flow.name, canonical);
    result.flow_map.emplace_back(flow.name, canonical);
  }
  // flow_map entries in original statement order (the certificate's
  // contract), regardless of the canonical order they were assigned in.
  std::sort(result.flow_map.begin(), result.flow_map.end(),
            [&flow_index](const auto& a, const auto& b) {
              return flow_index.at(a.first) < flow_index.at(b.first);
            });

  auto rename_expr = [&flow_rename](const ExprPtr& root) {
    // Iterative walk; expressions are tiny but avoid recursion-by-habit.
    std::vector<Expr*> stack{root.get()};
    while (!stack.empty()) {
      Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == Expr::Kind::kRef) {
        e->ref_flow = flow_rename.at(e->ref_flow);
      } else if (e->kind == Expr::Kind::kBinary) {
        stack.push_back(e->lhs.get());
        stack.push_back(e->rhs.get());
      }
    }
  };
  for (FlowDef& flow : canon.flows) {
    flow.name = flow_rename.at(flow.name);
    for (Endpoint* e : {&flow.src, &flow.dst}) {
      if (e->kind == Endpoint::Kind::kVariable) {
        e->name = var_rename.at(e->name);
      }
    }
    for (AttrValue& av : flow.attrs) {
      rename_expr(av.value);
    }
  }
  for (VarDecl& decl : canon.variables) {
    for (std::string& name : decl.names) {
      name = var_rename.at(name);
    }
  }
  for (Requirement& req : canon.requirements) {
    const auto it = var_rename.find(req.var);
    if (it != var_rename.end()) {
      req.var = it->second;
    }
  }

  // ---- Canonical statement order ----
  std::vector<FlowDef> ordered;
  ordered.reserve(canon.flows.size());
  for (const int i : order) {
    ordered.push_back(std::move(canon.flows[i]));
  }
  canon.flows = std::move(ordered);
  std::stable_sort(canon.requirements.begin(), canon.requirements.end(),
            [&var_slot, &var_rename](const Requirement& a, const Requirement& b) {
              auto slot = [&](const std::string& canonical_name) {
                // Requirements were renamed above; recover the slot via the
                // rename map (small maps, linear is fine).
                for (const auto& [original, canonical] : var_rename) {
                  if (canonical == canonical_name) {
                    const auto it = var_slot.find(original);
                    return it != var_slot.end() ? it->second : -1;
                  }
                }
                return -1;
              };
              return slot(a.var) < slot(b.var);
            });

  result.query = std::move(canon);
  result.text = result.query.ToString();
  result.hash = ContentHash(result.text);
  return result;
}

bool Equivalent(const Query& a, const Query& b) {
  const Result<CanonicalQuery> ca = Canonicalize(a);
  if (!ca.ok()) {
    return false;
  }
  const Result<CanonicalQuery> cb = Canonicalize(b);
  if (!cb.ok()) {
    return false;
  }
  return ca.value().text == cb.value().text;
}

}  // namespace lang
}  // namespace cloudtalk
