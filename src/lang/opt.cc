#include "src/lang/opt.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "src/lang/bound.h"

namespace cloudtalk {
namespace lang {

namespace {

// The engine's candidate sequence: address pool entries, declaration order.
std::vector<std::string> AddressCandidates(const VarComm& var) {
  std::vector<std::string> out;
  for (const Endpoint& value : var.pool) {
    if (value.kind == Endpoint::Kind::kAddress) {
      out.push_back(value.name);
    }
  }
  return out;
}

Span VarSpan(const CompiledQuery& query, const std::string& name) {
  const VarDecl* decl = query.query().FindVariable(name);
  if (decl == nullptr) {
    return Span{};
  }
  for (size_t i = 0; i < decl->names.size(); ++i) {
    if (decl->names[i] == name && i < decl->name_spans.size()) {
      return decl->name_spans[i];
    }
  }
  return decl->span;
}

Span FlowSpan(const CompiledQuery& query, const CompiledFlow& flow) {
  const FlowDef* def = query.query().FindFlow(flow.name);
  return def != nullptr ? def->span : Span{};
}

std::string FormatCount(double count) {
  char buf[32];
  if (count < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.0f", count);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", count);
  }
  return buf;
}

// Path-compressed union-find over [0, n).
struct UnionFind {
  std::vector<int32_t> parent;
  explicit UnionFind(size_t n) : parent(n) { std::iota(parent.begin(), parent.end(), 0); }
  int32_t Find(int32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(int32_t a, int32_t b) { parent[Find(a)] = Find(b); }
};

// Kuhn's augmenting-path maximum bipartite matching: variables on the left,
// interned candidate addresses on the right. Pools are tiny (tens), so the
// O(V * E) bound is irrelevant.
struct Matching {
  const std::vector<std::vector<int32_t>>* adj = nullptr;  // var -> address ids.
  std::vector<int32_t> match_of_addr;                      // address id -> var or -1.
  std::vector<char> visited;

  bool TryAugment(int32_t v) {
    for (const int32_t a : (*adj)[v]) {
      if (visited[a] != 0) {
        continue;
      }
      visited[a] = 1;
      if (match_of_addr[a] < 0 || TryAugment(match_of_addr[a])) {
        match_of_addr[a] = v;
        return true;
      }
    }
    return false;
  }

  // True when every variable in `vars` can be matched to a distinct address.
  bool Perfect(const std::vector<int32_t>& vars, size_t num_addresses) {
    match_of_addr.assign(num_addresses, -1);
    for (const int32_t v : vars) {
      visited.assign(num_addresses, 0);
      if (!TryAugment(v)) {
        return false;
      }
    }
    return true;
  }
};

// Everything the passes share.
struct PassContext {
  const CompiledQuery* query = nullptr;
  const StatusByAddress* status = nullptr;
  OptimizeParams params;
  std::vector<std::vector<std::string>> candidates;  // Per variable.
  // Interned candidate addresses (for matching and pool comparisons).
  std::unordered_map<std::string, int32_t> intern;
  int32_t InternId(const std::string& address) {
    return intern.emplace(address, static_cast<int32_t>(intern.size())).first->second;
  }
};

void Note(DiagnosticSink* sink, const char* code, Span span, std::string message,
          std::string hint = "") {
  if (sink != nullptr) {
    sink->Add({Severity::kNote, code, span, std::move(message), std::move(hint)});
  }
}

// Candidate ids a variable may legally bind to (post requirement pruning).
std::vector<std::vector<int32_t>> KeptAddressIds(const PassContext& ctx,
                                                 const PrunedSpace& plan,
                                                 PassContext* mutable_ctx) {
  std::vector<std::vector<int32_t>> adj(plan.kept.size());
  for (size_t v = 0; v < plan.kept.size(); ++v) {
    for (const int32_t c : plan.kept[v]) {
      adj[v].push_back(mutable_ctx->InternId(ctx.candidates[v][c]));
    }
  }
  return adj;
}

// ---- O100: domain pruning ----
void RunDomainPruning(PassContext* ctx, PrunedSpace* plan, DiagnosticSink* sink) {
  const auto& variables = ctx->query->variables();
  for (size_t v = 0; v < variables.size(); ++v) {
    const VarComm& var = variables[v];
    if (var.cpu_required <= 0 && var.mem_required <= 0) {
      continue;
    }
    std::vector<int32_t> kept;
    std::vector<std::string> dropped;
    for (size_t c = 0; c < ctx->candidates[v].size(); ++c) {
      const auto it = ctx->status->find(ctx->candidates[v][c]);
      if (it == ctx->status->end() || SatisfiesRequirements(var, it->second)) {
        kept.push_back(static_cast<int32_t>(c));
      } else {
        dropped.push_back(ctx->candidates[v][c]);
      }
    }
    if (dropped.empty()) {
      continue;
    }
    plan->kept[v] = std::move(kept);
    std::string list;
    for (const std::string& name : dropped) {
      list += (list.empty() ? "" : ", ") + name;
    }
    Note(sink, "O100", VarSpan(*ctx->query, var.name),
         "pruned " + std::to_string(dropped.size()) + " of " +
             std::to_string(ctx->candidates[v].size()) + " candidates of '" + var.name +
             "' that cannot satisfy its cpu/mem requirements (" + list + ")");
    if (plan->kept[v].empty()) {
      plan->infeasible = true;
      plan->infeasible_reason = "every candidate of '" + var.name +
                                "' fails its cpu/mem requirements";
      Note(sink, "O100", VarSpan(*ctx->query, var.name),
           "no candidate of '" + var.name + "' satisfies its requirements; the query has "
           "no legal binding");
    }
  }
  if (plan->infeasible || !ctx->params.distinct) {
    return;
  }
  // Pigeonhole: under distinctness every variable needs its own address.
  std::vector<std::vector<int32_t>> adj = KeptAddressIds(*ctx, *plan, ctx);
  std::vector<int32_t> vars(variables.size());
  std::iota(vars.begin(), vars.end(), 0);
  Matching matching;
  matching.adj = &adj;
  if (!matching.Perfect(vars, ctx->intern.size())) {
    plan->infeasible = true;
    plan->infeasible_reason =
        "distinctness pigeonhole: no assignment of distinct feasible candidates exists";
    Note(sink, "O100", Span{},
         std::to_string(variables.size()) +
             " variables cannot be bound to distinct feasible candidates (pigeonhole); "
             "the query has no legal binding",
         "grow a pool, relax a requirement, or use 'option allow_same'");
  }
}

// ---- O200: interchangeable variables ----
void RunInterchangeable(PassContext* ctx, PrunedSpace* plan, DiagnosticSink* sink) {
  const std::vector<std::vector<int32_t>> classes = InterchangeableClasses(*ctx->query);
  for (const std::vector<int32_t>& cls : classes) {
    for (size_t i = 1; i < cls.size(); ++i) {
      plan->orbit_prev[cls[i]] = cls[i - 1];
    }
    std::string names;
    for (const int32_t v : cls) {
      names += (names.empty() ? "" : ", ") + ctx->query->variables()[v].name;
    }
    double factorial = 1;
    for (size_t i = 2; i <= cls.size(); ++i) {
      factorial *= static_cast<double>(i);
    }
    Note(sink, "O200", VarSpan(*ctx->query, ctx->query->variables()[cls.front()].name),
         "variables " + names + " are interchangeable: any binding permuting them has an "
         "identical traffic pattern; enumerating ascending assignments only (~" +
             FormatCount(factorial) + "x fewer bindings)");
  }
}

// ---- O300: independent components / inert-variable pinning ----
void RunComponentSplit(PassContext* ctx, PrunedSpace* plan, DiagnosticSink* sink) {
  const auto& variables = ctx->query->variables();
  const auto& flows = ctx->query->flows();
  const size_t n = variables.size();
  if (n == 0) {
    return;
  }
  std::unordered_set<int32_t> dead(plan->dead_flows.begin(), plan->dead_flows.end());

  // Variables touching at least one live flow, connected when they share a
  // flow or a chain group.
  std::vector<char> live(n, 0);
  UnionFind comm(n);
  std::vector<int32_t> group_rep(ctx->query->groups().size(), -1);
  for (size_t f = 0; f < flows.size(); ++f) {
    if (dead.count(static_cast<int32_t>(f)) > 0) {
      continue;
    }
    std::vector<int32_t> touched;
    for (const Endpoint* e : {&flows[f].src, &flows[f].dst}) {
      if (e->kind != Endpoint::Kind::kVariable) {
        continue;
      }
      const int v = ctx->query->VariableIndex(e->name);
      if (v >= 0) {
        touched.push_back(v);
        live[v] = 1;
      }
    }
    for (size_t i = 1; i < touched.size(); ++i) {
      comm.Union(touched[0], touched[i]);
    }
    if (!touched.empty()) {
      int32_t& rep = group_rep[flows[f].group];
      if (rep < 0) {
        rep = touched[0];
      } else {
        comm.Union(rep, touched[0]);
      }
    }
  }
  std::unordered_map<int32_t, int32_t> component_ids;
  for (size_t v = 0; v < n; ++v) {
    if (live[v] == 0) {
      continue;
    }
    const int32_t root = comm.Find(static_cast<int32_t>(v));
    const int32_t id = component_ids.emplace(root, static_cast<int32_t>(component_ids.size()))
                           .first->second;
    plan->component_of[v] = id;
  }
  plan->components = static_cast<int>(component_ids.size());
  if (plan->components > 1) {
    Note(sink, "O300", Span{},
         "the communication graph splits into " + std::to_string(plan->components) +
             " independent components; their optima compose, but shared access links "
             "couple their completion times, so they are evaluated jointly (see "
             "DESIGN.md on floating-point separability)");
  }

  // Inert variables (no live flows) never affect the estimate; pin each to
  // its lexicographically-first legal candidate. Under distinctness this is
  // only byte-identical when the variable's choices cannot collide with an
  // enumerated variable's, so pin exactly the pool-sharing components made
  // entirely of inert variables.
  std::vector<std::vector<int32_t>> adj = KeptAddressIds(*ctx, *plan, ctx);
  std::vector<int32_t> pin_set;
  if (!ctx->params.distinct) {
    for (size_t v = 0; v < n; ++v) {
      if (live[v] == 0 && !plan->kept[v].empty()) {
        pin_set.push_back(static_cast<int32_t>(v));
      }
    }
  } else {
    UnionFind pools(n);
    std::unordered_map<int32_t, int32_t> owner;  // Address id -> first var seen.
    for (size_t v = 0; v < n; ++v) {
      for (const int32_t a : adj[v]) {
        const auto [it, inserted] = owner.emplace(a, static_cast<int32_t>(v));
        if (!inserted) {
          pools.Union(it->second, static_cast<int32_t>(v));
        }
      }
    }
    std::unordered_map<int32_t, bool> all_inert;
    for (size_t v = 0; v < n; ++v) {
      const int32_t root = pools.Find(static_cast<int32_t>(v));
      const auto [it, inserted] = all_inert.emplace(root, live[v] == 0);
      if (!inserted) {
        it->second = it->second && live[v] == 0;
      }
    }
    for (size_t v = 0; v < n; ++v) {
      if (all_inert[pools.Find(static_cast<int32_t>(v))] && !plan->kept[v].empty()) {
        pin_set.push_back(static_cast<int32_t>(v));
      }
    }
  }
  if (pin_set.empty()) {
    return;
  }
  // Greedy lexicographic assignment, keeping the rest of the pin set
  // completable (matching check) — exactly the choice the full walk's
  // first minimal-makespan binding makes for estimate-indifferent
  // variables.
  std::unordered_set<int32_t> taken;
  Matching matching;
  for (size_t i = 0; i < pin_set.size(); ++i) {
    const int32_t v = pin_set[i];
    const std::vector<int32_t> rest(pin_set.begin() + i + 1, pin_set.end());
    for (const int32_t c : plan->kept[v]) {
      const int32_t address_id = ctx->InternId(ctx->candidates[v][c]);
      if (ctx->params.distinct && taken.count(address_id) > 0) {
        continue;
      }
      // Tentatively take it and check the remaining pins still complete.
      bool feasible = true;
      if (ctx->params.distinct && !rest.empty()) {
        std::vector<std::vector<int32_t>> rest_adj(adj.size());
        for (const int32_t r : rest) {
          for (const int32_t a : adj[r]) {
            if (a != address_id && taken.count(a) == 0) {
              rest_adj[r].push_back(a);
            }
          }
        }
        matching.adj = &rest_adj;
        feasible = matching.Perfect(rest, ctx->intern.size());
      }
      if (!feasible) {
        continue;
      }
      plan->pinned[v] = c;
      if (ctx->params.distinct) {
        taken.insert(address_id);
      }
      break;
    }
    if (plan->pinned[v] >= 0) {
      Note(sink, "O300", VarSpan(*ctx->query, variables[v].name),
           "variable '" + variables[v].name +
               "' has no live flows; pinned to its first legal candidate '" +
               ctx->candidates[v][plan->pinned[v]] + "' instead of enumerating " +
               std::to_string(plan->kept[v].size()) + " candidates");
    }
  }
}

// ---- O400: dead flows and binding-independent groups ----
void RunDeadFlowFolding(PassContext* ctx, PrunedSpace* plan, DiagnosticSink* sink) {
  const auto& flows = ctx->query->flows();
  std::unordered_set<int32_t> dead;
  for (const int32_t f : DeadFlowIndices(*ctx->query)) {
    dead.insert(f);
    Note(sink, "O400", FlowSpan(*ctx->query, flows[f]),
         "flow '" + flows[f].name + "' has zero size: it transfers nothing and cannot "
         "affect any completion time; dropped from the binding signature");
  }
  // Binding-independent chain groups: no variable endpoint anywhere.
  std::vector<char> group_has_var(ctx->query->groups().size(), 0);
  for (const CompiledFlow& flow : flows) {
    if (flow.src.kind == Endpoint::Kind::kVariable ||
        flow.dst.kind == Endpoint::Kind::kVariable) {
      group_has_var[flow.group] = 1;
    }
  }
  for (size_t g = 0; g < group_has_var.size(); ++g) {
    if (group_has_var[g] != 0) {
      continue;
    }
    bool any = false;
    for (size_t f = 0; f < flows.size(); ++f) {
      if (flows[f].group == static_cast<int>(g) && dead.count(static_cast<int32_t>(f)) == 0) {
        dead.insert(static_cast<int32_t>(f));
        any = true;
      }
    }
    if (any) {
      Note(sink, "O400", Span{},
           "chain group " + std::to_string(g) + " references no variables: its traffic "
           "is identical under every binding; folded out of the binding signature "
           "(it still contributes its fixed makespan floor at evaluation time)");
    }
  }
  plan->dead_flows.assign(dead.begin(), dead.end());
  std::sort(plan->dead_flows.begin(), plan->dead_flows.end());
}

// ---- O500: branch-and-bound arming ----
void RunBoundPruning(PassContext* ctx, PrunedSpace* plan, DiagnosticSink* sink) {
  BoundOptions options;
  options.min_available_fraction = ctx->params.bound_fraction;
  options.distinct = ctx->params.distinct;
  const BoundAnalysis analysis = BoundAnalysis::Build(*ctx->query, *ctx->status, options);
  plan->bound_pruning = true;
  plan->bound_lb = analysis.query_bounds().lb;
  plan->bound_ub = analysis.query_bounds().ub;
  char lb[32], ub[32];
  std::snprintf(lb, sizeof(lb), "%.6g", plan->bound_lb);
  if (std::isfinite(plan->bound_ub)) {
    std::snprintf(ub, sizeof(ub), "%.6g", plan->bound_ub);
  } else {
    std::snprintf(ub, sizeof(ub), "inf");
  }
  Note(sink, "O500", Span{},
       std::string("sound makespan bounds: every binding completes within [") + lb + "s, " +
           ub + "s]; branch-and-bound pruning armed for the exhaustive walk (prefixes "
           "whose lower bound exceeds the incumbent best makespan are skipped)");
}

}  // namespace

bool SatisfiesRequirements(const VarComm& var, const StatusReport& report) {
  const bool cpu_short = report.cpu_cores_total > 0 && var.cpu_required > 0 &&
                         report.CpuFree() < var.cpu_required;
  const bool mem_short =
      report.mem_total > 0 && var.mem_required > 0 && report.MemFree() < var.mem_required;
  return !cpu_short && !mem_short;
}

std::vector<int32_t> DeadFlowIndices(const CompiledQuery& query) {
  std::vector<int32_t> dead;
  const auto& flows = query.flows();
  for (size_t f = 0; f < flows.size(); ++f) {
    if (flows[f].size <= 0) {
      dead.push_back(static_cast<int32_t>(f));
    }
  }
  return dead;
}

std::vector<std::vector<int32_t>> InterchangeableClasses(const CompiledQuery& query) {
  const auto& variables = query.variables();
  const size_t n = variables.size();
  std::vector<std::vector<int32_t>> out;
  if (n < 2) {
    return out;
  }
  std::unordered_set<int32_t> dead;
  for (const int32_t f : DeadFlowIndices(query)) {
    dead.insert(f);
  }
  std::vector<std::vector<std::string>> pools(n);
  for (size_t v = 0; v < n; ++v) {
    pools[v] = AddressCandidates(variables[v]);
  }

  // Symbolic flow tuples under a permutation of variable indices: variables
  // map to a high id range, fixed endpoints intern locally, and each
  // unknown occurrence keeps its own id (mirroring the engine's memo).
  std::unordered_map<std::string, int32_t> intern;
  const auto intern_id = [&intern](const std::string& address) {
    return intern.emplace(address, static_cast<int32_t>(intern.size())).first->second;
  };
  struct SymTuple {
    int32_t group, src, dst;
    double size, start;
    bool operator<(const SymTuple& o) const {
      if (group != o.group) return group < o.group;
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      if (size != o.size) return size < o.size;
      return start < o.start;
    }
    bool operator==(const SymTuple& o) const {
      return group == o.group && src == o.src && dst == o.dst && size == o.size &&
             start == o.start;
    }
  };
  constexpr int32_t kVarBase = 1 << 28;
  constexpr int32_t kDisk = -2;
  const auto tuples_under = [&](int32_t u, int32_t v) {
    // Swap u and v; u == v means the identity.
    std::vector<SymTuple> tuples;
    int32_t next_unknown = -10;
    const auto& flows = query.flows();
    for (size_t f = 0; f < flows.size(); ++f) {
      if (dead.count(static_cast<int32_t>(f)) > 0) {
        continue;
      }
      const auto key = [&](const Endpoint& e) -> int32_t {
        switch (e.kind) {
          case Endpoint::Kind::kAddress:
            return intern_id(e.name);
          case Endpoint::Kind::kVariable: {
            int32_t idx = query.VariableIndex(e.name);
            if (idx == u) {
              idx = v;
            } else if (idx == v) {
              idx = u;
            }
            return kVarBase + idx;  // idx may be -1 (unbindable): still stable.
          }
          case Endpoint::Kind::kDisk:
            return kDisk;
          case Endpoint::Kind::kUnknown:
          default:
            return next_unknown--;
        }
      };
      tuples.push_back({flows[f].group, key(flows[f].src), key(flows[f].dst), flows[f].size,
                        flows[f].start});
    }
    std::sort(tuples.begin(), tuples.end());
    return tuples;
  };

  const std::vector<SymTuple> identity = tuples_under(0, 0);
  UnionFind classes(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = u + 1; v < n; ++v) {
      if (pools[u] != pools[v]) {
        continue;
      }
      if (variables[u].cpu_required != variables[v].cpu_required ||
          variables[u].mem_required != variables[v].mem_required) {
        continue;
      }
      if (tuples_under(static_cast<int32_t>(u), static_cast<int32_t>(v)) == identity) {
        classes.Union(static_cast<int32_t>(u), static_cast<int32_t>(v));
      }
    }
  }
  std::unordered_map<int32_t, std::vector<int32_t>> by_root;
  for (size_t v = 0; v < n; ++v) {
    by_root[classes.Find(static_cast<int32_t>(v))].push_back(static_cast<int32_t>(v));
  }
  for (size_t v = 0; v < n; ++v) {
    auto it = by_root.find(classes.Find(static_cast<int32_t>(v)));
    if (it != by_root.end() && it->second.size() >= 2 && it->second.front() == static_cast<int32_t>(v)) {
      out.push_back(it->second);  // Already ascending: filled in index order.
    }
  }
  return out;
}

const std::vector<OptPass>& OptPasses() {
  static const std::vector<OptPass> kPasses = {
      {"O100", "domain-pruning",
       "drop pool endpoints that cannot satisfy cpu/mem requirements; detect "
       "distinctness pigeonhole infeasibility",
       kOptDomainPruning},
      {"O200", "interchangeable-variables",
       "enumerate only the canonical representative of each symmetric binding class",
       kOptInterchangeable},
      {"O300", "component-split",
       "count independent communication components and pin variables with no live flows",
       kOptComponentSplit},
      {"O400", "dead-flow-folding",
       "drop zero-size flows and binding-independent chain groups from the memo signature",
       kOptDeadFlowFolding},
      {"O500", "bound-pruning",
       "arm branch-and-bound pruning: skip odometer prefixes whose sound makespan lower "
       "bound exceeds the incumbent",
       kOptBoundPruning},
  };
  return kPasses;
}

PrunedSpace Optimize(const CompiledQuery& query, const StatusByAddress& status,
                     const OptimizeParams& params, DiagnosticSink* sink) {
  PassContext ctx;
  ctx.query = &query;
  ctx.status = &status;
  ctx.params = params;
  const size_t n = query.variables().size();
  ctx.candidates.resize(n);
  for (size_t v = 0; v < n; ++v) {
    ctx.candidates[v] = AddressCandidates(query.variables()[v]);
  }

  PrunedSpace plan;
  plan.kept.resize(n);
  for (size_t v = 0; v < n; ++v) {
    plan.kept[v].resize(ctx.candidates[v].size());
    std::iota(plan.kept[v].begin(), plan.kept[v].end(), 0);
  }
  plan.pinned.assign(n, -1);
  plan.orbit_prev.assign(n, -1);
  plan.component_of.assign(n, -1);

  constexpr double kCap = 1e18;
  // Capped kept/pinned product: the static binding space the current plan
  // leaves (0 once proven infeasible).
  const auto static_space = [&]() -> double {
    if (plan.infeasible) {
      return 0;
    }
    double space = n == 0 ? 0 : 1;
    for (size_t v = 0; v < n; ++v) {
      const double after = plan.pinned[v] >= 0 ? 1 : std::max<double>(1, plan.kept[v].size());
      space = std::min(kCap, space * after);
    }
    return space;
  };
  const auto run_timed = [&](const char* code, auto&& fn) {
    const double before = static_space();
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    PassStat stat;
    stat.code = code;
    stat.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    const double pruned = before - static_space();
    stat.pruned_bindings = pruned > 0 ? static_cast<int64_t>(std::min(pruned, 9e18)) : 0;
    plan.pass_stats.push_back(stat);
  };

  // O400 runs before O300 so component analysis sees the dead-flow set.
  if ((params.passes & kOptDeadFlowFolding) != 0) {
    run_timed("O400", [&] { RunDeadFlowFolding(&ctx, &plan, sink); });
  }
  if ((params.passes & kOptDomainPruning) != 0) {
    run_timed("O100", [&] { RunDomainPruning(&ctx, &plan, sink); });
  }
  if (!plan.infeasible && (params.passes & kOptInterchangeable) != 0) {
    run_timed("O200", [&] { RunInterchangeable(&ctx, &plan, sink); });
  }
  if (!plan.infeasible && (params.passes & kOptComponentSplit) != 0) {
    run_timed("O300", [&] { RunComponentSplit(&ctx, &plan, sink); });
  }
  if (!plan.infeasible && (params.passes & kOptBoundPruning) != 0) {
    run_timed("O500", [&] { RunBoundPruning(&ctx, &plan, sink); });
  }

  // A pinned variable's pool collapses to one candidate, so orbit
  // constraints over its (now meaningless) candidate indices would prune
  // the single remaining binding. Interchangeable variables share a pool,
  // hence a pool component, hence are pinned together — dropping their
  // whole chain is safe and loses nothing.
  for (size_t v = 0; v < n; ++v) {
    if (plan.pinned[v] >= 0 ||
        (plan.orbit_prev[v] >= 0 && plan.pinned[plan.orbit_prev[v]] >= 0)) {
      plan.orbit_prev[v] = -1;
    }
  }

  plan.space_before = n == 0 ? 0 : 1;
  for (size_t v = 0; v < n; ++v) {
    plan.space_before = std::min(
        kCap, plan.space_before * std::max<double>(1, ctx.candidates[v].size()));
  }
  plan.space_after = static_space();
  const double pruned = plan.space_before - plan.space_after;
  plan.bindings_pruned = pruned > 0 ? static_cast<int64_t>(std::min(pruned, 9e18)) : 0;
  return plan;
}

}  // namespace lang
}  // namespace cloudtalk
