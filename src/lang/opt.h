// Static query-optimisation passes for the CloudTalk exhaustive engine.
//
// ctlint (lint.h) tells an author what is *suspect* about a query; this
// library tells the engine what is *redundant* about its binding space. An
// OptPass analyses a CompiledQuery plus the status snapshot the evaluation
// will use and contributes to a PrunedSpace — a plan the exhaustive engine
// (src/core/exhaustive.h) consumes to skip bindings it can prove are
// illegal, symmetric, or irrelevant. Passes are registered in a static
// table (OptPasses()) with stable O-codes, and explain themselves through
// the shared DiagnosticSink as notes (rendered clang-style or JSON by
// tools/ctopt):
//
//   O100 domain-pruning        pool endpoints that can never satisfy the
//                              variable's cpu/mem requirements are dropped;
//                              distinctness pigeonhole infeasibility is
//                              detected up front (bipartite matching)
//   O200 interchangeable-vars  variables with identical pools, requirements
//                              and (symbolic) communication structure are
//                              enumerated orbit-canonically: only the
//                              ascending-index representative of each
//                              symmetric binding class is visited
//   O300 component-split       connected components of the variable
//                              communication graph are counted and inert
//                              variables (no live flows) are pinned to their
//                              lexicographically-first legal candidate
//   O400 dead-flow-folding     zero-size flows and binding-independent
//                              (literal-only) chain groups are dropped from
//                              the engine's memo signature
//   O500 bound-pruning         sound makespan lower bounds (src/lang/bound.h)
//                              arm branch-and-bound pruning in the engine:
//                              an odometer prefix whose lower bound strictly
//                              exceeds the incumbent makespan is skipped
//                              (SearchCounters::bound_prunes)
//
// The contract every pass obeys — and tests/opt_test.cc enforces
// differentially — is byte-identity: for any query and status, exhaustive
// search with the plan applied returns exactly the winning binding and
// Estimate the unoptimised walk would return under the PR 1 tie-break
// (lowest makespan, then lexicographically-first binding). Transforms that
// cannot meet that bar (e.g. evaluating components on isolated sub-queries:
// the fluid simulation advances *all* groups at every event, so splitting
// changes floating-point accumulation order) are deliberately limited to
// reporting; see DESIGN.md, "Static optimisation passes".
#ifndef CLOUDTALK_SRC_LANG_OPT_H_
#define CLOUDTALK_SRC_LANG_OPT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lang/analysis.h"
#include "src/lang/diagnostics.h"
#include "src/status/status.h"

namespace cloudtalk {

// Same alias as src/core/estimator.h (identical redeclaration is legal);
// lang cannot include core headers without inverting the layering.
using StatusByAddress = std::unordered_map<std::string, StatusReport>;

namespace lang {

// Pass selection bits, in registry order.
inline constexpr uint32_t kOptDomainPruning = 1u << 0;       // O100
inline constexpr uint32_t kOptInterchangeable = 1u << 1;     // O200
inline constexpr uint32_t kOptComponentSplit = 1u << 2;      // O300
inline constexpr uint32_t kOptDeadFlowFolding = 1u << 3;     // O400
inline constexpr uint32_t kOptBoundPruning = 1u << 4;        // O500
inline constexpr uint32_t kOptAllPasses =
    kOptDomainPruning | kOptInterchangeable | kOptComponentSplit | kOptDeadFlowFolding |
    kOptBoundPruning;

struct OptimizeParams {
  // Effective distinct-bindings semantics of the evaluation the plan is
  // for (ExhaustiveParams::distinct_bindings minus `option allow_same`).
  bool distinct = true;
  uint32_t passes = kOptAllPasses;
  // Availability fraction the O500 *report* computes its bounds with (the
  // engine rebuilds the analysis with the exact fraction its estimator
  // confesses via CompletionEstimator::BoundAvailabilityFraction, so this
  // only affects the note text and PrunedSpace::bound_lb/bound_ub).
  double bound_fraction = 0.1;
};

// Per executed pass: wall time and the static binding-space reduction it is
// responsible for (the capped kept/pinned product delta — orbit and
// branch-and-bound reductions are runtime counters, so O200/O500 report 0
// here and account through SearchCounters instead).
struct PassStat {
  const char* code = "";
  double wall_seconds = 0;
  int64_t pruned_bindings = 0;
};

// The plan. Candidate indices refer to the variable's *address candidates*:
// the subsequence of its pool with kind == kAddress, in declaration order —
// exactly the sequence the exhaustive engine enumerates.
struct PrunedSpace {
  // O100: no legal binding exists (empty pruned domain, or no perfect
  // matching of variables to distinct feasible candidates). The engine
  // reports the same error the unoptimised walk would reach exhaustively.
  bool infeasible = false;
  std::string infeasible_reason;

  // O100: per variable, the ascending candidate indices that survive
  // requirement pruning. Always safe to apply: the engine enforces
  // requirements as a legality constraint in both modes.
  std::vector<std::vector<int32_t>> kept;

  // O300: candidate index the variable is pinned to, or -1. Sound only for
  // estimators invariant under the engine's signature equivalence, so the
  // engine applies it under the same gate as the memo cache.
  std::vector<int32_t> pinned;

  // O200: index of the previous member of the variable's
  // interchangeability class, or -1. Enumeration constraint:
  //   choice[v] >= choice[orbit_prev[v]] + (distinct ? 1 : 0).
  // Same estimator gate as `pinned`.
  std::vector<int32_t> orbit_prev;

  // O400: flow indices (into query.flows()) excluded from the memo
  // signature: zero-size flows plus every flow of a binding-independent
  // chain group.
  std::vector<int32_t> dead_flows;

  // O300 reporting.
  int components = 0;
  std::vector<int32_t> component_of;  // Per variable; -1 for inert variables.

  // O500: arm the engine's branch-and-bound pruning (sound lower bounds on
  // odometer prefixes vs. the incumbent makespan; see src/lang/bound.h).
  // The engine honours this only when its estimator reports a non-negative
  // BoundAvailabilityFraction. bound_lb/bound_ub are the query-level bounds
  // at the fraction OptimizeParams::bound_fraction, for reporting.
  bool bound_pruning = false;
  double bound_lb = 0;
  double bound_ub = std::numeric_limits<double>::infinity();

  // Static accounting: bindings an unpruned odometer would enumerate vs.
  // the pruned/pinned one (capped products, ignoring distinctness and orbit
  // constraints), and their difference as the engine-visible counter.
  double space_before = 0;
  double space_after = 0;
  int64_t bindings_pruned = 0;

  // Per-pass wall time and static pruning attribution, in execution order.
  std::vector<PassStat> pass_stats;
};

struct OptPass {
  const char* code;     // "O100", ...
  const char* name;     // Kebab-case slug, e.g. "domain-pruning".
  const char* summary;  // One-line description for --passes / docs.
  uint32_t bit;         // Selection bit in OptimizeParams::passes.
};

// The registry, in pass-code order.
const std::vector<OptPass>& OptPasses();

// Runs the selected passes and returns the combined plan. Remarks (severity
// kNote, code = pass code) are added to `sink` when non-null. Never fails:
// a query the passes cannot reason about yields a no-op plan.
PrunedSpace Optimize(const CompiledQuery& query, const StatusByAddress& status,
                     const OptimizeParams& params = {}, DiagnosticSink* sink = nullptr);

// ---- Shared analyses (used by the passes, the engine, and ctlint) ----

// The Section 7 requirement predicate, exactly as the heuristic scores it
// (heuristic.cc): a zero total means "no information" and passes.
bool SatisfiesRequirements(const VarComm& var, const StatusReport& report);

// Flow indices whose resolved size is <= 0: such flows transfer nothing and
// are marked done on arrival by the fluid model (W071 / O400).
std::vector<int32_t> DeadFlowIndices(const CompiledQuery& query);

// Interchangeability classes of size >= 2: variables with identical pools,
// identical requirements, and a live-flow multiset invariant under swapping
// the pair (W070 / O200). Each class lists variable indices ascending.
std::vector<std::vector<int32_t>> InterchangeableClasses(const CompiledQuery& query);

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_OPT_H_
