#include "src/lang/lint.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/lang/bound.h"
#include "src/lang/canon.h"
#include "src/lang/opt.h"
#include "src/lang/scope.h"

namespace cloudtalk {
namespace lang {

namespace {

std::unordered_map<std::string, int> FlowNameIndex(const Query& query) {
  std::unordered_map<std::string, int> index;
  for (size_t i = 0; i < query.flows.size(); ++i) {
    index[query.flows[i].name] = static_cast<int>(i);
  }
  return index;
}

std::string FormatCount(double count) {
  char buf[32];
  if (count < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.0f", count);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2g", count);
  }
  return buf;
}

// Rates render with the language's own K/M/G suffixes so the message echoes
// what the query said (`rate 10M` comes back as "10M", not "1.04858e+07").
std::string FormatRate(double bytes_per_sec) {
  static constexpr struct {
    double scale;
    char suffix;
  } kUnits[] = {{1024.0 * 1024.0 * 1024.0, 'G'}, {1024.0 * 1024.0, 'M'}, {1024.0, 'K'}};
  char buf[32];
  for (const auto& unit : kUnits) {
    if (bytes_per_sec >= unit.scale) {
      std::snprintf(buf, sizeof(buf), "%.4g%c", bytes_per_sec / unit.scale, unit.suffix);
      return buf;
    }
  }
  std::snprintf(buf, sizeof(buf), "%.4g", bytes_per_sec);
  return buf;
}

// ---- W001: unused variable ----
void CheckUnusedVariable(const Query& query, DiagnosticSink* sink) {
  std::unordered_set<std::string> used;
  for (const FlowDef& flow : query.flows) {
    for (const Endpoint* e : {&flow.src, &flow.dst}) {
      if (e->kind == Endpoint::Kind::kVariable) {
        used.insert(e->name);
      }
    }
  }
  for (const VarDecl& decl : query.variables) {
    for (size_t i = 0; i < decl.names.size(); ++i) {
      if (used.count(decl.names[i]) > 0) {
        continue;
      }
      const Span span = i < decl.name_spans.size() ? decl.name_spans[i] : decl.span;
      sink->AddWarning("W001", span,
                       "variable '" + decl.names[i] + "' is declared but never used by a flow",
                       "remove the declaration or reference '" + decl.names[i] +
                           "' as a flow endpoint");
    }
  }
}

// ---- E010: empty pool ----
void CheckEmptyPool(const Query& query, DiagnosticSink* sink) {
  for (const VarDecl& decl : query.variables) {
    if (decl.values.empty() && !decl.names.empty()) {
      sink->AddError("E010", decl.span,
                     "variable pool of '" + decl.names.front() + "' is empty",
                     "add at least one candidate endpoint to the pool");
    }
  }
}

// ---- W011: duplicate pool entry ----
void CheckDuplicatePoolEntry(const Query& query, DiagnosticSink* sink) {
  for (const VarDecl& decl : query.variables) {
    for (size_t i = 0; i < decl.values.size(); ++i) {
      for (size_t j = 0; j < i; ++j) {
        if (decl.values[i] == decl.values[j]) {
          const Span span = i < decl.value_spans.size() ? decl.value_spans[i] : decl.span;
          sink->AddWarning("W011", span,
                           "duplicate pool entry '" + decl.values[i].ToString() + "'",
                           "duplicates never add binding choices; remove the repeat");
          break;
        }
      }
    }
  }
}

// ---- W020: self-flow ----
void CheckSelfFlow(const Query& query, DiagnosticSink* sink) {
  for (const FlowDef& flow : query.flows) {
    if (flow.src != flow.dst) {
      continue;
    }
    if (flow.src.kind == Endpoint::Kind::kAddress) {
      sink->AddWarning("W020", flow.dst_span.valid() ? flow.dst_span : flow.span,
                       "flow '" + flow.name + "' sends from '" + flow.src.name +
                           "' to itself",
                       "a flow between one endpoint never crosses the network; remove it "
                       "or fix an endpoint");
    } else if (flow.src.kind == Endpoint::Kind::kVariable) {
      sink->AddWarning("W020", flow.dst_span.valid() ? flow.dst_span : flow.span,
                       "flow '" + flow.name + "' uses variable '" + flow.src.name +
                           "' as both source and destination",
                       "a variable binds to a single endpoint, so this flow never crosses "
                       "the network; use two variables");
    }
  }
}

// Size-resolution dependencies of a flow: the flows referenced by its size
// expression, or (when it has no size) the first flow referenced by its
// transfer attribute — exactly what analysis.cc's SizeResolver follows.
std::vector<int> SizeDeps(const std::unordered_map<std::string, int>& index,
                          const FlowDef& flow) {
  std::vector<int> deps;
  std::vector<std::pair<Attr, std::string>> refs;
  const Expr* size = flow.FindAttr(Attr::kSize);
  if (size != nullptr) {
    CollectFlowRefs(*size, &refs);
  } else {
    const Expr* transfer = flow.FindAttr(Attr::kTransfer);
    if (transfer != nullptr) {
      CollectFlowRefs(*transfer, &refs);
      if (!refs.empty()) {
        refs.resize(1);  // Only the first transfer reference is followed.
      }
    }
  }
  for (const auto& [attr, name] : refs) {
    (void)attr;
    const auto it = index.find(name);
    if (it != index.end()) {
      deps.push_back(it->second);
    }
  }
  return deps;
}

// ---- E030: size-reference cycle ----
void CheckSizeReferenceCycle(const Query& query, DiagnosticSink* sink) {
  const std::unordered_map<std::string, int> index = FlowNameIndex(query);
  const int n = static_cast<int>(query.flows.size());
  // Iterative three-color DFS; `on_stack` recovers the cycle for the message.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  for (int start = 0; start < n; ++start) {
    if (color[start] != Color::kWhite) {
      continue;
    }
    std::vector<int> stack = {start};
    std::vector<int> path;
    while (!stack.empty()) {
      const int node = stack.back();
      if (color[node] == Color::kWhite) {
        color[node] = Color::kGray;
        path.push_back(node);
        for (const int dep : SizeDeps(index, query.flows[node])) {
          if (color[dep] == Color::kGray) {
            // Found a cycle: everything in `path` from `dep` onwards.
            std::string names;
            const auto from = std::find(path.begin(), path.end(), dep);
            for (auto it = from; it != path.end(); ++it) {
              names += query.flows[*it].name + " -> ";
            }
            names += query.flows[dep].name;
            const FlowDef& culprit = query.flows[dep];
            sink->AddError("E030", culprit.AttrSpan(Attr::kSize),
                           "cyclic size reference involving flow '" + culprit.name +
                               "' (" + names + ")",
                           "break the cycle by giving one flow a literal size");
          } else if (color[dep] == Color::kWhite) {
            stack.push_back(dep);
          }
        }
      } else {
        stack.pop_back();
        if (color[node] == Color::kGray) {
          color[node] = Color::kBlack;
          path.pop_back();
        }
      }
    }
  }
}

// Transfer-chain dependencies: every t()/other reference inside the
// transfer attribute, mirroring CompiledFlow::transfer_parents (self
// references included here — they deadlock too).
std::vector<int> TransferDeps(const std::unordered_map<std::string, int>& index,
                              const FlowDef& flow) {
  std::vector<int> deps;
  const Expr* transfer = flow.FindAttr(Attr::kTransfer);
  if (transfer == nullptr) {
    return deps;
  }
  std::vector<std::pair<Attr, std::string>> refs;
  CollectFlowRefs(*transfer, &refs);
  for (const auto& [attr, name] : refs) {
    (void)attr;
    const auto it = index.find(name);
    if (it != index.end()) {
      deps.push_back(it->second);
    }
  }
  return deps;
}

// ---- W040: unreachable flow (transfer chain can never start) ----
//
// The packet-level estimator starts a flow only when the flows its
// `transfer` attribute references have completed (store-and-forward). A
// cycle in that dependency graph means none of its members — nor anything
// downstream of them — can ever start.
void CheckUnreachableFlow(const Query& query, DiagnosticSink* sink) {
  const std::unordered_map<std::string, int> index = FlowNameIndex(query);
  const int n = static_cast<int>(query.flows.size());
  std::vector<std::vector<int>> deps(n);
  for (int i = 0; i < n; ++i) {
    deps[i] = TransferDeps(index, query.flows[i]);
  }
  // A flow is startable if all its deps are startable; propagate to a fixed
  // point (Kahn-style). Flows left unstartable sit on or behind a cycle.
  std::vector<bool> startable(n, false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      if (startable[i]) {
        continue;
      }
      bool ok = true;
      for (const int d : deps[i]) {
        if (d == i || !startable[d]) {
          ok = false;
          break;
        }
      }
      if (ok) {
        startable[i] = true;
        changed = true;
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (startable[i]) {
      continue;
    }
    const FlowDef& flow = query.flows[i];
    sink->AddWarning("W040", flow.AttrSpan(Attr::kTransfer),
                     "flow '" + flow.name +
                         "' can never start: its transfer chain waits on itself",
                     "break the dependency cycle by removing one transfer reference");
  }
}

// Chain groups reconstructed from rate/transfer references (the same
// union-find the compiler uses) without requiring a successful compile.
std::vector<int> ChainGroupOf(const Query& query) {
  const std::unordered_map<std::string, int> index = FlowNameIndex(query);
  const int n = static_cast<int>(query.flows.size());
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (int i = 0; i < n; ++i) {
    for (const AttrValue& av : query.flows[i].attrs) {
      if (av.attr != Attr::kRate && av.attr != Attr::kTransfer) {
        continue;
      }
      std::vector<std::pair<Attr, std::string>> refs;
      CollectFlowRefs(*av.value, &refs);
      for (const auto& [attr, name] : refs) {
        (void)attr;
        const auto it = index.find(name);
        if (it != index.end()) {
          parent[find(i)] = find(it->second);
        }
      }
    }
  }
  std::vector<int> group(n);
  for (int i = 0; i < n; ++i) {
    group[i] = find(i);
  }
  return group;
}

// ---- W050: contradictory rate chain ----
//
// Chained flows share a single rate; when two members carry different
// literal `rate` attributes the tighter one silently wins (analysis takes
// the min). Flag every looser rate.
void CheckContradictoryRateChain(const Query& query, DiagnosticSink* sink) {
  const std::vector<int> group = ChainGroupOf(query);
  struct LiteralRate {
    int flow = 0;
    double value = 0;  // Bytes per second, as written.
  };
  std::unordered_map<int, std::vector<LiteralRate>> by_group;
  for (size_t i = 0; i < query.flows.size(); ++i) {
    const Expr* rate = query.flows[i].FindAttr(Attr::kRate);
    if (rate == nullptr || !IsConstantExpr(*rate)) {
      continue;
    }
    const double value = EvalConstant(*rate);
    if (value > 0) {
      by_group[group[i]].push_back({static_cast<int>(i), value});
    }
  }
  for (const auto& [g, rates] : by_group) {
    (void)g;
    if (rates.size() < 2) {
      continue;
    }
    const auto tightest = std::min_element(
        rates.begin(), rates.end(),
        [](const LiteralRate& a, const LiteralRate& b) { return a.value < b.value; });
    for (const LiteralRate& rate : rates) {
      if (rate.value == tightest->value) {
        continue;
      }
      const FlowDef& flow = query.flows[rate.flow];
      const FlowDef& winner = query.flows[tightest->flow];
      sink->AddWarning("W050", flow.AttrSpan(Attr::kRate),
                       "rate " + FormatRate(rate.value) + " on flow '" + flow.name +
                           "' conflicts with tighter rate " + FormatRate(tightest->value) +
                           " on flow '" + winner.name + "' in the same chain group",
                       "chained flows share one rate and the tightest limit wins; keep "
                       "only the intended limit");
    }
  }
}

// ---- W090: duplicate constraint ----
//
// Two members of one chain group carrying the *identical* literal rate (or
// deadline) are redundant restatements: compilation takes the per-group
// minimum, so one of them adds nothing. W050 covers conflicting (unequal)
// rates; this rule covers exact duplicates, which W050 deliberately skips.
void CheckDuplicateConstraint(const Query& query, DiagnosticSink* sink) {
  const std::vector<int> group = ChainGroupOf(query);
  for (const Attr attr : {Attr::kRate, Attr::kEnd}) {
    // (group, value) -> first flow carrying it.
    std::unordered_map<int, std::vector<std::pair<double, int>>> first_by_group;
    for (size_t i = 0; i < query.flows.size(); ++i) {
      const Expr* value_expr = query.flows[i].FindAttr(attr);
      if (value_expr == nullptr || !IsConstantExpr(*value_expr)) {
        continue;
      }
      const double value = EvalConstant(*value_expr);
      if (value <= 0) {
        continue;  // Non-positive limits/deadlines are ignored by analysis.
      }
      std::vector<std::pair<double, int>>& seen = first_by_group[group[i]];
      const auto it = std::find_if(seen.begin(), seen.end(),
                                   [value](const auto& e) { return e.first == value; });
      if (it == seen.end()) {
        seen.emplace_back(value, static_cast<int>(i));
        continue;
      }
      const FlowDef& flow = query.flows[i];
      const FlowDef& original = query.flows[it->second];
      const std::string rendered = attr == Attr::kRate
                                       ? "rate " + FormatRate(value)
                                       : "end " + FormatCount(value) + "s";
      sink->AddWarning("W090", flow.AttrSpan(attr),
                       rendered + " on flow '" + flow.name +
                           "' duplicates the identical constraint on flow '" +
                           original.name + "' in the same chain group",
                       "chained flows share one " +
                           std::string(attr == Attr::kRate ? "rate limit" : "deadline") +
                           "; drop the restatement");
    }
  }
}

// ---- W091: subsumed constraint ----
//
// A looser literal deadline on a chain group member is subsumed by a
// tighter one elsewhere in the group (compilation keeps the minimum).
// The rate-attribute analogue is W050's territory; deadlines are covered
// here so the two rules never double-report.
void CheckSubsumedConstraint(const Query& query, DiagnosticSink* sink) {
  const std::vector<int> group = ChainGroupOf(query);
  struct LiteralEnd {
    int flow = 0;
    double value = 0;  // Seconds.
  };
  std::unordered_map<int, std::vector<LiteralEnd>> by_group;
  for (size_t i = 0; i < query.flows.size(); ++i) {
    const Expr* end = query.flows[i].FindAttr(Attr::kEnd);
    if (end == nullptr || !IsConstantExpr(*end)) {
      continue;
    }
    const double value = EvalConstant(*end);
    if (value > 0) {
      by_group[group[i]].push_back({static_cast<int>(i), value});
    }
  }
  for (const auto& [g, ends] : by_group) {
    (void)g;
    if (ends.size() < 2) {
      continue;
    }
    const auto tightest = std::min_element(
        ends.begin(), ends.end(),
        [](const LiteralEnd& a, const LiteralEnd& b) { return a.value < b.value; });
    for (const LiteralEnd& end : ends) {
      if (end.value == tightest->value) {
        continue;
      }
      const FlowDef& flow = query.flows[end.flow];
      const FlowDef& winner = query.flows[tightest->flow];
      sink->AddWarning("W091", flow.AttrSpan(Attr::kEnd),
                       "deadline " + FormatCount(end.value) + "s on flow '" + flow.name +
                           "' is subsumed by the tighter deadline " +
                           FormatCount(tightest->value) + "s on flow '" + winner.name +
                           "' in the same chain group",
                       "chained flows share one deadline and the earliest wins; drop "
                       "the looser constraint");
    }
  }
}

// ---- W092: equivalent to earlier query (batch mode) ----
//
// Registered so --rules and the documentation catalogue list the code; the
// actual check needs the whole input batch and lives in
// FindEquivalentQueries(), driven by the ctlint CLI.
void CheckEquivalentToEarlierQuery(const Query& query, DiagnosticSink* sink) {
  (void)query;
  (void)sink;
}

// ---- W060: search-space explosion ----
void CheckSearchSpaceExplosion(const Query& query, DiagnosticSink* sink) {
  if (!query.options.use_packet_simulator) {
    return;  // The heuristic scales linearly; only exhaustive search explodes.
  }
  const double bindings = EstimateBindingCount(query);
  if (bindings <= kSearchSpaceWarnThreshold) {
    return;
  }
  // Anchor at the declaration contributing the most combinations.
  const VarDecl* largest = nullptr;
  for (const VarDecl& decl : query.variables) {
    if (largest == nullptr ||
        decl.names.size() * decl.values.size() >
            largest->names.size() * largest->values.size()) {
      largest = &decl;
    }
  }
  const Span span = largest != nullptr ? largest->span : Span{};
  std::string hint;
  if (query.options.eval_threads == 0) {
    hint = "add 'option threads N' to shard the search, or drop 'option packet' to use "
           "the linear-time heuristic";
  } else {
    hint = "even sharded over " + std::to_string(query.options.eval_threads) +
           " threads this may take very long; consider the flow-level heuristic "
           "('option flow')";
  }
  sink->AddWarning("W060", span,
                   "exhaustive packet-level evaluation will enumerate about " +
                       FormatCount(bindings) + " candidate bindings",
                   hint);
}

// ---- W070: interchangeable variables ----
//
// Backed by the O200 analysis (opt.h): variables with identical pools,
// identical requirements, and swap-invariant communication structure yield
// symmetric bindings that differ only in variable naming. Only the
// exhaustive path enumerates them, so the rule is silent for heuristic
// queries, and silent when the query does not compile (compilation problems
// carry their own diagnostics).
void CheckInterchangeableVariables(const Query& query, DiagnosticSink* sink) {
  if (!query.options.use_packet_simulator) {
    return;
  }
  const Result<CompiledQuery> compiled = CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return;
  }
  const std::vector<VarComm>& vars = compiled.value().variables();
  for (const std::vector<int32_t>& cls : InterchangeableClasses(compiled.value())) {
    std::string names;
    for (size_t i = 0; i < cls.size(); ++i) {
      names += std::string(i ? ", '" : "'") + vars[cls[i]].name + "'";
    }
    const VarDecl* decl = query.FindVariable(vars[cls.front()].name);
    sink->AddWarning("W070", decl != nullptr ? decl->span : Span{},
                     "variables " + names +
                         " are interchangeable: swapping their bindings never changes "
                         "any completion time",
                     "keep 'option optimize' on (the default) so the search visits one "
                     "representative per symmetric binding class (pass O200)");
  }
}

// ---- W071: statically dead flow ----
//
// Backed by the O400 analysis (opt.h): a flow whose resolved size is zero
// transfers nothing — the fluid model completes it on arrival and no
// completion time can depend on it.
void CheckStaticallyDeadFlow(const Query& query, DiagnosticSink* sink) {
  const Result<CompiledQuery> compiled = CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return;
  }
  const std::vector<CompiledFlow>& flows = compiled.value().flows();
  for (const int32_t f : DeadFlowIndices(compiled.value())) {
    const CompiledFlow& flow = flows[f];
    Span span;
    if (flow.index >= 0 && flow.index < static_cast<int>(query.flows.size())) {
      span = query.flows[flow.index].AttrSpan(Attr::kSize);
    }
    sink->AddWarning("W071", span,
                     "flow '" + flow.name +
                         "' resolves to zero size: it transfers nothing and cannot "
                         "affect any completion time",
                     "give the flow a positive size, or remove it");
  }
}

// ---- E080 / W080 / W081: bound analysis vs deadlines and the objective ----
//
// Backed by src/lang/bound.h on an *empty* status snapshot: every host is
// modelled idle with unconstrained (1e15 Bps) resources — the most
// optimistic world the solver can see. A completion-time lower bound proved
// there holds under every real snapshot (contention only lowers
// availability), so E080 is a sound static infeasibility proof. The upper
// bounds W080/W081 read are idle-world ceilings and advisory: the messages
// say so.

std::string FormatSeconds(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", seconds);
  return buf;
}

// Diagnostic anchor for a chain group: the first member carrying `attr`
// (that attribute's span), else the group's first member (its flow span).
struct GroupAnchor {
  std::string flow;
  Span span;
};
GroupAnchor AnchorForGroup(const Query& query, const CompiledQuery& compiled, int g,
                           Attr attr) {
  GroupAnchor anchor;
  for (const int f : compiled.groups()[g].flow_indices) {
    const CompiledFlow& flow = compiled.flows()[f];
    const bool in_query =
        flow.index >= 0 && flow.index < static_cast<int>(query.flows.size());
    if (anchor.flow.empty()) {
      anchor.flow = flow.name;
      if (in_query) {
        anchor.span = query.flows[flow.index].span;
      }
    }
    if (in_query) {
      const Span span = query.flows[flow.index].AttrSpan(attr);
      if (span.valid()) {
        anchor.flow = flow.name;
        anchor.span = span;
        break;
      }
    }
  }
  return anchor;
}

// ---- E080: deadline-infeasible group ----
void CheckDeadlineInfeasibleGroup(const Query& query, DiagnosticSink* sink) {
  const Result<CompiledQuery> compiled = CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return;
  }
  const BoundAnalysis bounds = BoundAnalysis::Build(compiled.value(), StatusByAddress{});
  for (const GroupBound& gb : bounds.group_bounds()) {
    if (!gb.provably_infeasible) {
      continue;
    }
    const GroupAnchor anchor = AnchorForGroup(query, compiled.value(), gb.group, Attr::kEnd);
    sink->AddError("E080", anchor.span,
                   "chain group of flow '" + anchor.flow +
                       "' can never meet its deadline of " + FormatSeconds(gb.deadline) +
                       "s: even on idle hosts every binding needs at least " +
                       FormatSeconds(gb.interval.lb) + "s",
                   "raise the deadline, shrink the transfers, or loosen the rate limit");
  }
}

// ---- W080: trivially satisfied deadline ----
void CheckTriviallySatisfiedDeadline(const Query& query, DiagnosticSink* sink) {
  const Result<CompiledQuery> compiled = CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return;
  }
  const BoundAnalysis bounds = BoundAnalysis::Build(compiled.value(), StatusByAddress{});
  for (const GroupBound& gb : bounds.group_bounds()) {
    if (!gb.trivially_satisfied) {
      continue;
    }
    const GroupAnchor anchor = AnchorForGroup(query, compiled.value(), gb.group, Attr::kEnd);
    sink->AddWarning("W080", anchor.span,
                     "deadline of " + FormatSeconds(gb.deadline) +
                         "s on the chain group of flow '" + anchor.flow +
                         "' is trivially satisfied: on idle hosts no binding can take "
                         "longer than " +
                         FormatSeconds(gb.interval.ub) + "s",
                     "the deadline only bites under contention; tighten it if it is "
                     "meant to constrain placement");
  }
}

// ---- W081: dominated objective ----
//
// A binding-independent chain group (literal endpoints only) whose lower
// bound meets or exceeds every other group's upper bound pins the makespan:
// no placement choice can change when the slowest group finishes.
void CheckDominatedObjective(const Query& query, DiagnosticSink* sink) {
  if (query.variables.empty()) {
    return;
  }
  const Result<CompiledQuery> compiled = CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return;
  }
  const std::vector<CompiledGroup>& groups = compiled.value().groups();
  if (groups.size() < 2) {
    return;
  }
  std::vector<char> has_var(groups.size(), 0);
  for (const CompiledFlow& flow : compiled.value().flows()) {
    if (flow.src.kind == Endpoint::Kind::kVariable ||
        flow.dst.kind == Endpoint::Kind::kVariable) {
      has_var[flow.group] = 1;
    }
  }
  if (std::count(has_var.begin(), has_var.end(), 1) == 0) {
    return;  // No group depends on the binding; W001 covers unused variables.
  }
  const BoundAnalysis bounds = BoundAnalysis::Build(compiled.value(), StatusByAddress{});
  const std::vector<GroupBound>& gb = bounds.group_bounds();
  for (size_t g = 0; g < groups.size(); ++g) {
    const double lb = gb[g].interval.lb;
    if (has_var[g] != 0 || lb <= 0 || lb >= 1e17) {
      continue;
    }
    bool dominates = true;
    double slowest_other = 0;
    for (size_t h = 0; h < groups.size(); ++h) {
      if (h == g) {
        continue;
      }
      const double ub = gb[h].interval.ub;
      if (!(ub <= lb)) {
        dominates = false;
        break;
      }
      slowest_other = std::max(slowest_other, ub);
    }
    if (!dominates) {
      continue;
    }
    const GroupAnchor anchor =
        AnchorForGroup(query, compiled.value(), static_cast<int>(g), Attr::kSize);
    sink->AddWarning("W081", anchor.span,
                     "the makespan is pinned by the binding-independent chain group of "
                     "flow '" +
                         anchor.flow + "': it needs at least " + FormatSeconds(lb) +
                         "s while every other group finishes within " +
                         FormatSeconds(slowest_other) + "s under any binding",
                     "placement search cannot improve the completion time; revisit the "
                     "dominating flow's size or rate limit");
  }
}

// ---- W100: unused pool host ----
//
// A host listed in a pool whose every drawing variable is inert (no flows,
// no disk, no requirements) is provably outside the query footprint: no
// evaluation engine reads its status and the server never probes it
// (src/lang/scope.h).
void CheckUnusedPoolHost(const Query& query, DiagnosticSink* sink) {
  const Result<CompiledQuery> compiled = CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return;
  }
  const ScopeAnalysis scope = AnalyzeScope(compiled.value());
  if (scope.excluded.empty()) {
    return;
  }
  const std::unordered_set<std::string> excluded(scope.excluded.begin(), scope.excluded.end());
  std::unordered_set<std::string> reported;
  for (const VarDecl& decl : query.variables) {
    for (size_t i = 0; i < decl.values.size(); ++i) {
      const Endpoint& value = decl.values[i];
      if (value.kind != Endpoint::Kind::kAddress || excluded.count(value.name) == 0 ||
          !reported.insert(value.name).second) {
        continue;
      }
      const Span span = i < decl.value_spans.size() ? decl.value_spans[i] : decl.span;
      sink->AddWarning("W100", span,
                       "host '" + value.name +
                           "' is outside every query footprint: each variable drawing "
                           "from this pool is never used by a flow or requirement",
                       "the server will never probe it; remove the host or use the "
                       "variable in a flow");
    }
  }
}

// ---- W101: footprint exceeds pool ----
//
// A flow that pins a literal host which also sits in a pool makes the
// pool's effective footprint larger than the pool suggests: the binding
// search may place a variable on a host that already carries the pinned
// traffic. The one intentional shape is priority binding (Listing 1), where
// the literal is the single peer of the pool variable *on the same flow*;
// that pairing is exempt.
void CheckFootprintExceedsPool(const Query& query, DiagnosticSink* sink) {
  const Result<CompiledQuery> compiled = CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return;
  }
  // address -> variables whose pool contains it.
  std::unordered_map<std::string, std::vector<const VarComm*>> pooled;
  for (const VarComm& var : compiled.value().variables()) {
    for (const Endpoint& e : var.pool) {
      if (e.kind == Endpoint::Kind::kAddress) {
        pooled[e.name].push_back(&var);
      }
    }
  }
  if (pooled.empty()) {
    return;
  }
  for (const FlowDef& flow : query.flows) {
    struct Side {
      const Endpoint* literal;
      const Endpoint* other;
      const Span* span;
    };
    for (const Side& side : {Side{&flow.src, &flow.dst, &flow.src_span},
                             Side{&flow.dst, &flow.src, &flow.dst_span}}) {
      if (side.literal->kind != Endpoint::Kind::kAddress) {
        continue;
      }
      const auto it = pooled.find(side.literal->name);
      if (it == pooled.end()) {
        continue;
      }
      for (const VarComm* var : it->second) {
        // Priority binding: the literal is this very flow's peer of the
        // pool variable it belongs to.
        if (side.other->kind == Endpoint::Kind::kVariable && side.other->name == var->name) {
          continue;
        }
        sink->AddWarning("W101", *side.span,
                         "literal endpoint '" + side.literal->name +
                             "' is also a binding candidate of pool variable '" + var->name +
                             "': the flow's fixed footprint reaches into the pool",
                         "a binding may collide with the pinned traffic; remove the host "
                         "from the pool or address the variable instead");
        break;  // One finding per flow endpoint is enough.
      }
    }
  }
}

}  // namespace

double EstimateBindingCount(const Query& query) {
  constexpr double kCap = 1e18;
  double total = 1;
  for (const VarDecl& decl : query.variables) {
    const double p = static_cast<double>(decl.values.size());
    const size_t d = decl.names.size();
    if (p == 0) {
      continue;  // Empty pool is E010's problem, not W060's.
    }
    if (query.options.allow_same_binding || d > decl.values.size()) {
      // Shared bindings (or wrap-around when variables outnumber values):
      // every variable picks independently.
      for (size_t i = 0; i < d && total < kCap; ++i) {
        total *= p;
      }
    } else {
      // Distinct bindings: falling factorial p * (p-1) * ... * (p-d+1).
      for (size_t i = 0; i < d && total < kCap; ++i) {
        total *= p - static_cast<double>(i);
      }
    }
  }
  return std::min(total, kCap);
}

const std::vector<LintRule>& LintRules() {
  static const std::vector<LintRule> kRules = {
      {"W001", Severity::kWarning, "unused-variable",
       "declared variable never used as a flow endpoint", CheckUnusedVariable},
      {"E010", Severity::kError, "empty-pool", "variable pool has no candidate endpoints",
       CheckEmptyPool},
      {"W011", Severity::kWarning, "duplicate-pool-entry",
       "same endpoint listed more than once in a pool", CheckDuplicatePoolEntry},
      {"W020", Severity::kWarning, "self-flow",
       "flow source and destination are identical", CheckSelfFlow},
      {"E030", Severity::kError, "size-reference-cycle",
       "sz()/t() size resolution can never settle", CheckSizeReferenceCycle},
      {"W040", Severity::kWarning, "unreachable-flow",
       "transfer chain waits on itself and never starts", CheckUnreachableFlow},
      {"W050", Severity::kWarning, "contradictory-rate-chain",
       "two literal rates in one chain group; the tighter silently wins",
       CheckContradictoryRateChain},
      {"W060", Severity::kWarning, "search-space-explosion",
       "exhaustive binding count is intractably large", CheckSearchSpaceExplosion},
      {"W070", Severity::kWarning, "interchangeable-variables",
       "variables are symmetric; exhaustive search enumerates them redundantly",
       CheckInterchangeableVariables},
      {"W071", Severity::kWarning, "statically-dead-flow",
       "flow resolves to zero size and transfers nothing", CheckStaticallyDeadFlow},
      {"E080", Severity::kError, "deadline-infeasible-group",
       "no binding can meet the group's deadline, even on idle hosts",
       CheckDeadlineInfeasibleGroup},
      {"W080", Severity::kWarning, "trivially-satisfied-deadline",
       "every binding meets the deadline on idle hosts; it never constrains placement",
       CheckTriviallySatisfiedDeadline},
      {"W081", Severity::kWarning, "dominated-objective",
       "a binding-independent chain group pins the makespan; search cannot improve it",
       CheckDominatedObjective},
      {"W090", Severity::kWarning, "duplicate-constraint",
       "identical literal rate/deadline restated in one chain group",
       CheckDuplicateConstraint},
      {"W091", Severity::kWarning, "subsumed-constraint",
       "looser deadline subsumed by a tighter one in the same chain group",
       CheckSubsumedConstraint},
      {"W092", Severity::kWarning, "equivalent-to-earlier-query",
       "query is semantically equivalent to an earlier input (batch mode)",
       CheckEquivalentToEarlierQuery},
      {"W100", Severity::kWarning, "unused-pool-host",
       "pool host provably outside every query footprint; never probed",
       CheckUnusedPoolHost},
      {"W101", Severity::kWarning, "footprint-exceeds-pool",
       "literal flow endpoint doubles as a binding candidate of a pool variable",
       CheckFootprintExceedsPool},
  };
  return kRules;
}

std::vector<BatchEquivalence> FindEquivalentQueries(const std::vector<const Query*>& queries) {
  std::vector<BatchEquivalence> result(queries.size());
  std::unordered_map<std::string, int> first_by_text;
  for (size_t i = 0; i < queries.size(); ++i) {
    Result<CanonicalQuery> canon = Canonicalize(*queries[i]);
    if (!canon.ok()) {
      continue;  // Not renameable (duplicate names etc.); never matches.
    }
    result[i].hash = canon.value().hash;
    const auto [it, inserted] =
        first_by_text.try_emplace(canon.value().text, static_cast<int>(i));
    if (!inserted) {
      result[i].equivalent_to = it->second;
    }
  }
  return result;
}

void RunLint(const Query& query, DiagnosticSink* sink) {
  for (const LintRule& rule : LintRules()) {
    rule.check(query, sink);
  }
}

}  // namespace lang
}  // namespace cloudtalk
