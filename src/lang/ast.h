// Abstract syntax tree for the CloudTalk query language (paper Table 1).
//
// A query is a sequence of statements:
//   variable declarations   A = B = (vm1 vm2 vm3)
//   flow definitions        [name] src -> dst attr value ...
//
// Flow endpoints are literal addresses, variables, the local `disk`, or the
// wildcard 0.0.0.0 ("unknown source"). Attribute values are arithmetic
// expressions over numeric literals (with K/M/G suffixes) and references to
// other flows' attributes: st(f) e(f) sz(f) r(f) t(f).
#ifndef CLOUDTALK_SRC_LANG_AST_H_
#define CLOUDTALK_SRC_LANG_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/units.h"
#include "src/lang/span.h"

namespace cloudtalk {
namespace lang {

// The five flow attributes (Table 1): start/end in seconds relative to now,
// size/transfer in bytes, rate in bits per second.
enum class Attr { kStart, kEnd, kSize, kRate, kTransfer };

inline const char* AttrName(Attr attr) {
  switch (attr) {
    case Attr::kStart:
      return "start";
    case Attr::kEnd:
      return "end";
    case Attr::kSize:
      return "size";
    case Attr::kRate:
      return "rate";
    case Attr::kTransfer:
      return "transfer";
  }
  return "?";
}

// Reference selectors usable inside expressions (REF in Table 1).
inline const char* AttrRefName(Attr attr) {
  switch (attr) {
    case Attr::kStart:
      return "st";
    case Attr::kEnd:
      return "e";
    case Attr::kSize:
      return "sz";
    case Attr::kRate:
      return "r";
    case Attr::kTransfer:
      return "t";
  }
  return "?";
}

struct Endpoint {
  enum class Kind {
    kAddress,   // Literal server address/name, e.g. 10.0.0.3 or vm2.
    kVariable,  // Reference to a declared variable.
    kDisk,      // The local disk of the flow's other endpoint.
    kUnknown,   // 0.0.0.0, "unknown source" (Section 5.3 reduce query).
  };
  Kind kind = Kind::kAddress;
  std::string name;  // Address text or variable name; empty for disk/unknown.

  static Endpoint Address(std::string addr) { return {Kind::kAddress, std::move(addr)}; }
  static Endpoint Variable(std::string var) { return {Kind::kVariable, std::move(var)}; }
  static Endpoint Disk() { return {Kind::kDisk, ""}; }
  static Endpoint Unknown() { return {Kind::kUnknown, ""}; }

  bool operator==(const Endpoint& other) const {
    return kind == other.kind && name == other.name;
  }
  std::string ToString() const;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind { kLiteral, kRef, kBinary };
  Kind kind = Kind::kLiteral;

  // kLiteral: value already scaled (bytes for sizes, Bps for rates).
  double literal = 0;

  // kRef: attribute of another flow, looked up by flow name.
  Attr ref_attr = Attr::kSize;
  std::string ref_flow;

  // kBinary.
  char op = '+';
  ExprPtr lhs;
  ExprPtr rhs;

  // Source range of the token that introduced this node (the literal, the
  // reference selector, or the operator). Invalid for programmatically
  // constructed expressions.
  Span span;

  static ExprPtr Literal(double value);
  static ExprPtr Ref(Attr attr, std::string flow);
  static ExprPtr Binary(char op, ExprPtr lhs, ExprPtr rhs);
  ExprPtr Clone() const;
  std::string ToString() const;
};

// True when `expr` contains no flow references (literals and arithmetic
// only); such expressions fold to a constant with EvalConstant().
bool IsConstantExpr(const Expr& expr);
double EvalConstant(const Expr& expr);

// Appends every (attribute, flow-name) reference inside `expr`, in source
// order.
void CollectFlowRefs(const Expr& expr, std::vector<std::pair<Attr, std::string>>* out);

struct AttrValue {
  Attr attr;
  ExprPtr value;
  Span span;  // Position of the attribute keyword.
};

struct FlowDef {
  std::string name;  // Auto-named "_f<N>" when the query omits it.
  bool explicit_name = false;
  Endpoint src;
  Endpoint dst;
  std::vector<AttrValue> attrs;
  Span span;      // First token of the definition (the name or the source).
  Span src_span;  // Source endpoint token.
  Span dst_span;  // Destination endpoint token.

  const Expr* FindAttr(Attr attr) const;
  // Span of the given attribute's keyword; falls back to the flow span when
  // the attribute is absent.
  Span AttrSpan(Attr attr) const;
  std::string ToString() const;
};

struct VarDecl {
  std::vector<std::string> names;   // A = B = C = (...) declares three.
  std::vector<Endpoint> values;     // Pool of possible bindings.
  Span span;                        // First declared name.
  std::vector<Span> name_spans;     // One per entry of `names`.
  std::vector<Span> value_spans;    // One per entry of `values`.
};

// Scalar endpoint requirements (paper Section 7: "an endpoint may require
// some number of CPU cores, and a certain amount of memory"). Spelled
//   X requires cpu 4 mem 8G
// Candidates without enough free CPU/memory are ranked below all others.
struct Requirement {
  std::string var;
  double cpu_cores = 0;  // 0 = no constraint.
  Bytes memory = 0;      // 0 = no constraint.
  Span span;             // The variable name token.
};

// Evaluation options. The paper says clients choose the estimator and
// whether dynamic load data is used (Section 4) and can override the
// distinct-bindings default (Section 4.1) but gives no concrete syntax;
// this reproduction spells them as `option <word>` statements.
struct QueryOptions {
  bool use_packet_simulator = false;  // option packet / option flow
  bool use_dynamic_load = true;       // option dynamic / option static
  bool allow_same_binding = false;    // option allow_same
  // option noreserve: the client may not act on the recommendation (e.g. a
  // scheduler polling every heartbeat), so the server must not hold the
  // recommended endpoints. Reservations of other queries are still honoured.
  bool reserve = true;
  // option threads N: worker shards for exhaustive/packet evaluation.
  // 0 = not specified (the server's configured default applies).
  int eval_threads = 0;
  // option optimize / option no_optimize: static optimisation passes
  // (src/lang/opt) for exhaustive evaluation. Tri-state: 0 = not specified
  // (the server's configured default applies), 1 = on, -1 = off.
  int optimize = 0;
};

struct Query {
  std::vector<VarDecl> variables;
  std::vector<FlowDef> flows;
  std::vector<Requirement> requirements;
  QueryOptions options;

  const VarDecl* FindVariable(const std::string& name) const;
  const FlowDef* FindFlow(const std::string& name) const;
  std::string ToString() const;
};

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_AST_H_
