#include "src/lang/analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "src/fluidsim/fluid_simulation.h"

namespace cloudtalk {
namespace lang {

namespace {

// Union-find for chain grouping.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

// Resolves a flow's size, following sz() references (cycle => E030) and
// falling back to the transfer-referenced flow's size for chained flows.
// All failures are reported into the sink with source spans.
class SizeResolver {
 public:
  SizeResolver(const Query& query, std::unordered_map<std::string, int> name_to_index,
               DiagnosticSink* sink)
      : query_(query), name_to_index_(std::move(name_to_index)), sink_(sink) {
    states_.assign(query.flows.size(), State::kUnresolved);
    sizes_.assign(query.flows.size(), 0);
  }

  std::optional<Bytes> Resolve(int flow_index) {
    if (states_[flow_index] == State::kDone) {
      return sizes_[flow_index];
    }
    const FlowDef& flow = query_.flows[flow_index];
    if (states_[flow_index] == State::kInProgress) {
      sink_->AddError("E030", flow.AttrSpan(Attr::kSize),
                      "cyclic size reference involving flow '" + flow.name + "'",
                      "break the cycle by giving one flow a literal size");
      return std::nullopt;
    }
    states_[flow_index] = State::kInProgress;
    const Expr* size_expr = flow.FindAttr(Attr::kSize);
    std::optional<Bytes> result = [&]() -> std::optional<Bytes> {
      if (size_expr != nullptr) {
        return Eval(*size_expr, flow);
      }
      // No size: a chained flow inherits the size of the flow its transfer
      // attribute references (web-search query, Section 5.4).
      const Expr* transfer = flow.FindAttr(Attr::kTransfer);
      if (transfer != nullptr) {
        std::vector<std::pair<Attr, std::string>> refs;
        CollectFlowRefs(*transfer, &refs);
        if (!refs.empty()) {
          const auto it = name_to_index_.find(refs.front().second);
          if (it != name_to_index_.end()) {
            return Resolve(it->second);
          }
        }
      }
      sink_->AddError("E032", flow.span, "flow '" + flow.name + "' has no resolvable size",
                      "add a size attribute or a transfer reference to a sized flow");
      return std::nullopt;
    }();
    if (!result.has_value()) {
      return std::nullopt;
    }
    states_[flow_index] = State::kDone;
    sizes_[flow_index] = *result;
    return result;
  }

 private:
  std::optional<Bytes> Eval(const Expr& expr, const FlowDef& owner) {
    switch (expr.kind) {
      case Expr::Kind::kLiteral:
        return Bytes{expr.literal};
      case Expr::Kind::kRef: {
        if (expr.ref_attr != Attr::kSize && expr.ref_attr != Attr::kTransfer) {
          sink_->AddError(
              "E031", expr.span.valid() ? expr.span : owner.AttrSpan(Attr::kSize),
              "flow '" + owner.name +
                  "': only sz()/t() references are usable inside size expressions",
              "start, end, and rate are not known until evaluation time");
          return std::nullopt;
        }
        const auto it = name_to_index_.find(expr.ref_flow);
        if (it == name_to_index_.end()) {
          sink_->AddError("E003", expr.span.valid() ? expr.span : owner.span,
                          "undefined flow '" + expr.ref_flow + "'");
          return std::nullopt;
        }
        return Resolve(it->second);
      }
      case Expr::Kind::kBinary: {
        const std::optional<Bytes> l = Eval(*expr.lhs, owner);
        if (!l.has_value()) {
          return std::nullopt;
        }
        const std::optional<Bytes> r = Eval(*expr.rhs, owner);
        if (!r.has_value()) {
          return std::nullopt;
        }
        switch (expr.op) {
          case '+':
            return *l + *r;
          case '-':
            return *l - *r;
          case '*':
            return *l * *r;
          case '/':
            return *r != 0 ? *l / *r : 0;
        }
        sink_->AddError("E001", expr.span, "unknown operator");
        return std::nullopt;
      }
    }
    sink_->AddError("E001", expr.span, "bad expression");
    return std::nullopt;
  }

  enum class State { kUnresolved, kInProgress, kDone };
  const Query& query_;
  std::unordered_map<std::string, int> name_to_index_;
  DiagnosticSink* sink_;
  std::vector<State> states_;
  std::vector<Bytes> sizes_;
};

void AddUnique(std::vector<Endpoint>* endpoints, const Endpoint& e) {
  if (std::find(endpoints->begin(), endpoints->end(), e) == endpoints->end()) {
    endpoints->push_back(e);
  }
}

}  // namespace

std::optional<CompiledQuery> CompiledQuery::Compile(const Query& query,
                                                    DiagnosticSink* sink) {
  CompiledQuery compiled;
  compiled.query_ = &query;

  const int num_flows = static_cast<int>(query.flows.size());
  std::unordered_map<std::string, int> name_to_index;
  for (int i = 0; i < num_flows; ++i) {
    name_to_index[query.flows[i].name] = i;
  }

  // ---- Variables and their communication sets ----
  for (const VarDecl& decl : query.variables) {
    for (const std::string& name : decl.names) {
      VarComm comm;
      comm.name = name;
      comm.pool = decl.values;
      compiled.variables_.push_back(std::move(comm));
    }
  }
  for (const Requirement& req : query.requirements) {
    const int index = compiled.VariableIndex(req.var);
    if (index < 0) {
      sink->AddError("E003", req.span,
                     "requirement references undeclared variable '" + req.var + "'");
      return std::nullopt;
    }
    compiled.variables_[index].cpu_required = req.cpu_cores;
    compiled.variables_[index].mem_required = req.memory;
  }
  auto var_index = [&compiled](const Endpoint& e) -> int {
    if (e.kind != Endpoint::Kind::kVariable) {
      return -1;
    }
    return compiled.VariableIndex(e.name);
  };
  for (const FlowDef& flow : query.flows) {
    const int src_var = var_index(flow.src);
    const int dst_var = var_index(flow.dst);
    if (flow.src.kind == Endpoint::Kind::kDisk && dst_var >= 0) {
      compiled.variables_[dst_var].reads_disk = true;
    } else if (flow.dst.kind == Endpoint::Kind::kDisk && src_var >= 0) {
      compiled.variables_[src_var].writes_disk = true;
    } else if (flow.src.kind != Endpoint::Kind::kDisk &&
               flow.dst.kind != Endpoint::Kind::kDisk) {
      if (src_var >= 0) {
        AddUnique(&compiled.variables_[src_var].tx_to, flow.dst);
      }
      if (dst_var >= 0) {
        AddUnique(&compiled.variables_[dst_var].rx_from, flow.src);
      }
    }
  }

  // ---- Sizes ----
  SizeResolver resolver(query, name_to_index, sink);
  compiled.flows_.reserve(num_flows);
  bool sizes_ok = true;
  for (int i = 0; i < num_flows; ++i) {
    const FlowDef& def = query.flows[i];
    CompiledFlow flow;
    flow.index = i;
    flow.name = def.name;
    flow.src = def.src;
    flow.dst = def.dst;
    const std::optional<Bytes> size = resolver.Resolve(i);
    if (!size.has_value()) {
      sizes_ok = false;  // Keep going: report every unresolvable flow.
    }
    flow.size = size.value_or(0);
    const Expr* start = def.FindAttr(Attr::kStart);
    if (start != nullptr && IsConstantExpr(*start)) {
      flow.start = EvalConstant(*start);
    }
    const Expr* transfer = def.FindAttr(Attr::kTransfer);
    if (transfer != nullptr) {
      std::vector<std::pair<Attr, std::string>> refs;
      CollectFlowRefs(*transfer, &refs);
      for (const auto& [attr, flow_name] : refs) {
        (void)attr;
        const auto it = name_to_index.find(flow_name);
        if (it != name_to_index.end() && it->second != i) {
          flow.transfer_parents.push_back(it->second);
        }
      }
    }
    compiled.flows_.push_back(std::move(flow));
  }
  if (!sizes_ok) {
    return std::nullopt;
  }

  // ---- Chain groups: union flows joined by rate/transfer references ----
  DisjointSets sets(num_flows);
  for (int i = 0; i < num_flows; ++i) {
    for (const AttrValue& av : query.flows[i].attrs) {
      if (av.attr != Attr::kRate && av.attr != Attr::kTransfer) {
        continue;
      }
      std::vector<std::pair<Attr, std::string>> refs;
      CollectFlowRefs(*av.value, &refs);
      for (const auto& [attr, flow_name] : refs) {
        (void)attr;
        const auto it = name_to_index.find(flow_name);
        if (it != name_to_index.end()) {
          sets.Union(i, it->second);
        }
      }
    }
  }
  std::unordered_map<int, int> root_to_group;
  for (int i = 0; i < num_flows; ++i) {
    const int root = sets.Find(i);
    auto [it, inserted] = root_to_group.try_emplace(
        root, static_cast<int>(compiled.groups_.size()));
    if (inserted) {
      CompiledGroup group;
      group.rate_limit = kUnlimitedRate;
      group.start = std::numeric_limits<Seconds>::infinity();
      group.deadline = std::numeric_limits<Seconds>::infinity();
      compiled.groups_.push_back(group);
    }
    const int g = it->second;
    compiled.flows_[i].group = g;
    CompiledGroup& group = compiled.groups_[g];
    group.flow_indices.push_back(i);
    group.start = std::min(group.start, compiled.flows_[i].start);
    const Expr* end = query.flows[i].FindAttr(Attr::kEnd);
    if (end != nullptr && IsConstantExpr(*end)) {
      const Seconds deadline = EvalConstant(*end);
      if (deadline > 0) {
        group.deadline = std::min(group.deadline, deadline);
      }
    }
    const Expr* rate = query.flows[i].FindAttr(Attr::kRate);
    if (rate != nullptr && IsConstantExpr(*rate)) {
      // Literal rates are bytes/second in the language (Table 1); the
      // engine wants bits/second.
      const double limit_bps = EvalConstant(*rate) * 8.0;
      if (limit_bps > 0) {
        group.rate_limit = std::min(group.rate_limit, limit_bps);
      }
    }
  }
  for (CompiledGroup& group : compiled.groups_) {
    if (!std::isfinite(group.start)) {
      group.start = 0;
    }
  }
  return compiled;
}

Result<CompiledQuery> CompiledQuery::Compile(const Query& query) {
  DiagnosticSink sink;
  std::optional<CompiledQuery> compiled = Compile(query, &sink);
  if (!compiled.has_value()) {
    return sink.ToLegacyError();
  }
  return *std::move(compiled);
}

int CompiledQuery::VariableIndex(const std::string& name) const {
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace lang
}  // namespace cloudtalk
