#include "src/lang/analysis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "src/fluidsim/fluid_simulation.h"

namespace cloudtalk {
namespace lang {

namespace {

// Union-find for chain grouping.
class DisjointSets {
 public:
  explicit DisjointSets(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

// Collects the flows referenced anywhere inside an expression.
void CollectRefs(const Expr& expr, std::vector<std::pair<Attr, std::string>>* out) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return;
    case Expr::Kind::kRef:
      out->emplace_back(expr.ref_attr, expr.ref_flow);
      return;
    case Expr::Kind::kBinary:
      CollectRefs(*expr.lhs, out);
      CollectRefs(*expr.rhs, out);
      return;
  }
}

bool IsPureLiteral(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return true;
    case Expr::Kind::kRef:
      return false;
    case Expr::Kind::kBinary:
      return IsPureLiteral(*expr.lhs) && IsPureLiteral(*expr.rhs);
  }
  return false;
}

double EvalLiteral(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kRef:
      return 0;  // Caller guarantees IsPureLiteral.
    case Expr::Kind::kBinary: {
      const double l = EvalLiteral(*expr.lhs);
      const double r = EvalLiteral(*expr.rhs);
      switch (expr.op) {
        case '+':
          return l + r;
        case '-':
          return l - r;
        case '*':
          return l * r;
        case '/':
          return r != 0 ? l / r : 0;
      }
      return 0;
    }
  }
  return 0;
}

// Resolves a flow's size, following sz() references (cycle => error) and
// falling back to the transfer-referenced flow's size for chained flows.
class SizeResolver {
 public:
  SizeResolver(const Query& query, std::unordered_map<std::string, int> name_to_index)
      : query_(query), name_to_index_(std::move(name_to_index)) {
    states_.assign(query.flows.size(), State::kUnresolved);
    sizes_.assign(query.flows.size(), 0);
  }

  Result<Bytes> Resolve(int flow_index) {
    if (states_[flow_index] == State::kDone) {
      return sizes_[flow_index];
    }
    if (states_[flow_index] == State::kInProgress) {
      return Error{"cyclic size reference involving flow '" +
                   query_.flows[flow_index].name + "'"};
    }
    states_[flow_index] = State::kInProgress;
    const FlowDef& flow = query_.flows[flow_index];
    const Expr* size_expr = flow.FindAttr(Attr::kSize);
    Result<Bytes> result = [&]() -> Result<Bytes> {
      if (size_expr != nullptr) {
        return Eval(*size_expr, flow);
      }
      // No size: a chained flow inherits the size of the flow its transfer
      // attribute references (web-search query, Section 5.4).
      const Expr* transfer = flow.FindAttr(Attr::kTransfer);
      if (transfer != nullptr) {
        std::vector<std::pair<Attr, std::string>> refs;
        CollectRefs(*transfer, &refs);
        if (!refs.empty()) {
          const auto it = name_to_index_.find(refs.front().second);
          if (it != name_to_index_.end()) {
            return Resolve(it->second);
          }
        }
      }
      return Error{"flow '" + flow.name + "' has no resolvable size"};
    }();
    if (!result.ok()) {
      return result;
    }
    states_[flow_index] = State::kDone;
    sizes_[flow_index] = result.value();
    return result;
  }

 private:
  Result<Bytes> Eval(const Expr& expr, const FlowDef& owner) {
    switch (expr.kind) {
      case Expr::Kind::kLiteral:
        return Bytes{expr.literal};
      case Expr::Kind::kRef: {
        if (expr.ref_attr != Attr::kSize && expr.ref_attr != Attr::kTransfer) {
          return Error{"flow '" + owner.name +
                       "': only sz()/t() references are usable inside size expressions"};
        }
        const auto it = name_to_index_.find(expr.ref_flow);
        if (it == name_to_index_.end()) {
          return Error{"undefined flow '" + expr.ref_flow + "'"};
        }
        return Resolve(it->second);
      }
      case Expr::Kind::kBinary: {
        Result<Bytes> l = Eval(*expr.lhs, owner);
        if (!l.ok()) {
          return l;
        }
        Result<Bytes> r = Eval(*expr.rhs, owner);
        if (!r.ok()) {
          return r;
        }
        switch (expr.op) {
          case '+':
            return l.value() + r.value();
          case '-':
            return l.value() - r.value();
          case '*':
            return l.value() * r.value();
          case '/':
            return r.value() != 0 ? l.value() / r.value() : 0;
        }
        return Error{"unknown operator"};
      }
    }
    return Error{"bad expression"};
  }

  enum class State { kUnresolved, kInProgress, kDone };
  const Query& query_;
  std::unordered_map<std::string, int> name_to_index_;
  std::vector<State> states_;
  std::vector<Bytes> sizes_;
};

void AddUnique(std::vector<Endpoint>* endpoints, const Endpoint& e) {
  if (std::find(endpoints->begin(), endpoints->end(), e) == endpoints->end()) {
    endpoints->push_back(e);
  }
}

}  // namespace

Result<CompiledQuery> CompiledQuery::Compile(const Query& query) {
  CompiledQuery compiled;
  compiled.query_ = &query;

  const int num_flows = static_cast<int>(query.flows.size());
  std::unordered_map<std::string, int> name_to_index;
  for (int i = 0; i < num_flows; ++i) {
    name_to_index[query.flows[i].name] = i;
  }

  // ---- Variables and their communication sets ----
  for (const VarDecl& decl : query.variables) {
    for (const std::string& name : decl.names) {
      VarComm comm;
      comm.name = name;
      comm.pool = decl.values;
      compiled.variables_.push_back(std::move(comm));
    }
  }
  for (const Requirement& req : query.requirements) {
    const int index = compiled.VariableIndex(req.var);
    if (index < 0) {
      return Error{"requirement references undeclared variable '" + req.var + "'"};
    }
    compiled.variables_[index].cpu_required = req.cpu_cores;
    compiled.variables_[index].mem_required = req.memory;
  }
  auto var_index = [&compiled](const Endpoint& e) -> int {
    if (e.kind != Endpoint::Kind::kVariable) {
      return -1;
    }
    return compiled.VariableIndex(e.name);
  };
  for (const FlowDef& flow : query.flows) {
    const int src_var = var_index(flow.src);
    const int dst_var = var_index(flow.dst);
    if (flow.src.kind == Endpoint::Kind::kDisk && dst_var >= 0) {
      compiled.variables_[dst_var].reads_disk = true;
    } else if (flow.dst.kind == Endpoint::Kind::kDisk && src_var >= 0) {
      compiled.variables_[src_var].writes_disk = true;
    } else if (flow.src.kind != Endpoint::Kind::kDisk &&
               flow.dst.kind != Endpoint::Kind::kDisk) {
      if (src_var >= 0) {
        AddUnique(&compiled.variables_[src_var].tx_to, flow.dst);
      }
      if (dst_var >= 0) {
        AddUnique(&compiled.variables_[dst_var].rx_from, flow.src);
      }
    }
  }

  // ---- Sizes ----
  SizeResolver resolver(query, name_to_index);
  compiled.flows_.reserve(num_flows);
  for (int i = 0; i < num_flows; ++i) {
    const FlowDef& def = query.flows[i];
    CompiledFlow flow;
    flow.index = i;
    flow.name = def.name;
    flow.src = def.src;
    flow.dst = def.dst;
    Result<Bytes> size = resolver.Resolve(i);
    if (!size.ok()) {
      return size.error();
    }
    flow.size = size.value();
    const Expr* start = def.FindAttr(Attr::kStart);
    if (start != nullptr && IsPureLiteral(*start)) {
      flow.start = EvalLiteral(*start);
    }
    const Expr* transfer = def.FindAttr(Attr::kTransfer);
    if (transfer != nullptr) {
      std::vector<std::pair<Attr, std::string>> refs;
      CollectRefs(*transfer, &refs);
      for (const auto& [attr, flow_name] : refs) {
        (void)attr;
        const auto it = name_to_index.find(flow_name);
        if (it != name_to_index.end() && it->second != i) {
          flow.transfer_parents.push_back(it->second);
        }
      }
    }
    compiled.flows_.push_back(std::move(flow));
  }

  // ---- Chain groups: union flows joined by rate/transfer references ----
  DisjointSets sets(num_flows);
  for (int i = 0; i < num_flows; ++i) {
    for (const AttrValue& av : query.flows[i].attrs) {
      if (av.attr != Attr::kRate && av.attr != Attr::kTransfer) {
        continue;
      }
      std::vector<std::pair<Attr, std::string>> refs;
      CollectRefs(*av.value, &refs);
      for (const auto& [attr, flow_name] : refs) {
        (void)attr;
        const auto it = name_to_index.find(flow_name);
        if (it != name_to_index.end()) {
          sets.Union(i, it->second);
        }
      }
    }
  }
  std::unordered_map<int, int> root_to_group;
  for (int i = 0; i < num_flows; ++i) {
    const int root = sets.Find(i);
    auto [it, inserted] = root_to_group.try_emplace(
        root, static_cast<int>(compiled.groups_.size()));
    if (inserted) {
      CompiledGroup group;
      group.rate_limit = kUnlimitedRate;
      group.start = std::numeric_limits<Seconds>::infinity();
      group.deadline = std::numeric_limits<Seconds>::infinity();
      compiled.groups_.push_back(group);
    }
    const int g = it->second;
    compiled.flows_[i].group = g;
    CompiledGroup& group = compiled.groups_[g];
    group.flow_indices.push_back(i);
    group.start = std::min(group.start, compiled.flows_[i].start);
    const Expr* end = query.flows[i].FindAttr(Attr::kEnd);
    if (end != nullptr && IsPureLiteral(*end)) {
      const Seconds deadline = EvalLiteral(*end);
      if (deadline > 0) {
        group.deadline = std::min(group.deadline, deadline);
      }
    }
    const Expr* rate = query.flows[i].FindAttr(Attr::kRate);
    if (rate != nullptr && IsPureLiteral(*rate)) {
      // Literal rates are bytes/second in the language (Table 1); the
      // engine wants bits/second.
      const double limit_bps = EvalLiteral(*rate) * 8.0;
      if (limit_bps > 0) {
        group.rate_limit = std::min(group.rate_limit, limit_bps);
      }
    }
  }
  for (CompiledGroup& group : compiled.groups_) {
    if (!std::isfinite(group.start)) {
      group.start = 0;
    }
  }
  return compiled;
}

int CompiledQuery::VariableIndex(const std::string& name) const {
  for (size_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace lang
}  // namespace cloudtalk
