#include "src/lang/scope.h"

#include <algorithm>
#include <map>

#include "src/check/check.h"

namespace cloudtalk {
namespace lang {

namespace {

// A variable is active when some evaluation engine can read the status of
// its candidates: it communicates over the network, touches disk, or
// carries a scalar requirement. Everything else is inert — its binding is a
// pure function of pool order.
bool IsActive(const VarComm& var) {
  return !var.rx_from.empty() || !var.tx_to.empty() || var.reads_disk || var.writes_disk ||
         var.cpu_required > 0 || var.mem_required > 0;
}

uint8_t VariableFields(const VarComm& var) {
  uint8_t fields = 0;
  if (!var.rx_from.empty()) {
    fields |= kScopeFieldNetIn;
  }
  if (!var.tx_to.empty()) {
    fields |= kScopeFieldNetOut;
  }
  if (var.reads_disk || var.writes_disk) {
    fields |= kScopeFieldDisk;
  }
  if (var.cpu_required > 0 || var.mem_required > 0) {
    fields |= kScopeFieldCpu;
  }
  return fields;
}

}  // namespace

ScopeEffects AnalyzeEffects(const Query& query) {
  ScopeEffects effects;
  // Packet-level evaluation skips the reservation table on both sides (no
  // filter, no writes), so the reserve effect only materializes on the
  // heuristic path.
  effects.uses_packet_engine = query.options.use_packet_simulator;
  effects.reserves = query.options.reserve && !query.options.use_packet_simulator;
  effects.samples = query.options.use_dynamic_load;
  effects.pure = !effects.reserves;
  for (const VarDecl& decl : query.variables) {
    effects.max_pool_size =
        std::max(effects.max_pool_size, static_cast<int>(decl.values.size()));
  }
  return effects;
}

ScopeAnalysis AnalyzeScope(const CompiledQuery& compiled) {
  ScopeAnalysis scope;
  scope.effects = AnalyzeEffects(compiled.query());

  // Accumulate per-host roles and field bits; std::map keeps the footprint
  // sorted by address without a second pass.
  struct HostInfo {
    uint8_t fields = 0;
    bool candidate = false;
    bool endpoint = false;
  };
  std::map<std::string, HostInfo> hosts;
  std::unordered_set<std::string> mentioned;

  for (const VarComm& var : compiled.variables()) {
    const bool active = IsActive(var);
    const uint8_t fields = active ? VariableFields(var) : 0;
    for (const Endpoint& e : var.pool) {
      if (e.kind != Endpoint::Kind::kAddress) {
        continue;
      }
      mentioned.insert(e.name);
      // Every pool address is reservation-visible: the heuristic's
      // reservation filter prefers unreserved candidates for *all*
      // variables (inert ones included), and a bound endpoint of any
      // variable gets reserved. Only active variables contribute to the
      // status footprint, though.
      scope.candidates.insert(e.name);
      if (active) {
        HostInfo& info = hosts[e.name];
        info.candidate = true;
        info.fields |= fields;
      }
    }
    if (!active) {
      scope.inert_variables.push_back(var.name);
    }
  }
  for (const CompiledFlow& flow : compiled.flows()) {
    if (flow.src.kind == Endpoint::Kind::kAddress) {
      mentioned.insert(flow.src.name);
      HostInfo& info = hosts[flow.src.name];
      info.endpoint = true;
      info.fields |= kScopeFieldNetOut;
    }
    if (flow.dst.kind == Endpoint::Kind::kAddress) {
      mentioned.insert(flow.dst.name);
      HostInfo& info = hosts[flow.dst.name];
      info.endpoint = true;
      info.fields |= kScopeFieldNetIn;
    }
  }

  scope.footprint.reserve(hosts.size());
  for (const auto& [address, info] : hosts) {
    ScopeHost host;
    host.address = address;
    host.fields = info.fields;
    host.candidate = info.candidate;
    host.endpoint = info.endpoint;
    scope.footprint.push_back(std::move(host));
    scope.footprint_set.insert(address);
  }
  for (const std::string& address : mentioned) {
    if (scope.footprint_set.count(address) == 0) {
      scope.excluded.push_back(address);
    }
  }
  std::sort(scope.excluded.begin(), scope.excluded.end());

  // I408: a literal flow endpoint can never be excluded — the bound
  // analysis and the estimators read its status for every binding.
  for (const CompiledFlow& flow : compiled.flows()) {
    for (const Endpoint* e : {&flow.src, &flow.dst}) {
      if (e->kind == Endpoint::Kind::kAddress) {
        CT_INVARIANT(scope.InFootprint(e->name), "I408",
                     "literal flow endpoint outside the computed footprint")
            .With("flow", flow.name)
            .With("endpoint", e->name);
      }
    }
  }
  return scope;
}

bool ReservationConflict(const ScopeAnalysis& a, const ScopeAnalysis& b) {
  if (!a.effects.reserves && !b.effects.reserves) {
    return false;  // Two readers never interleave observably.
  }
  const ScopeAnalysis& small = a.candidates.size() <= b.candidates.size() ? a : b;
  const ScopeAnalysis& large = a.candidates.size() <= b.candidates.size() ? b : a;
  for (const std::string& address : small.candidates) {
    if (large.candidates.count(address) > 0) {
      return true;
    }
  }
  return false;
}

std::string EffectsName(const ScopeEffects& effects) {
  std::string name;
  if (effects.reserves) {
    name += "reserve";
  }
  if (effects.samples) {
    name += name.empty() ? "sample" : ",sample";
  }
  return name.empty() ? "pure" : name;
}

std::string ScopeFieldNames(uint8_t fields) {
  std::string name;
  const auto append = [&name](const char* field) {
    if (!name.empty()) {
      name += ',';
    }
    name += field;
  };
  if (fields & kScopeFieldCpu) {
    append("cpu");
  }
  if (fields & kScopeFieldNetIn) {
    append("net-in");
  }
  if (fields & kScopeFieldNetOut) {
    append("net-out");
  }
  if (fields & kScopeFieldDisk) {
    append("disk");
  }
  return name.empty() ? "-" : name;
}

}  // namespace lang
}  // namespace cloudtalk
