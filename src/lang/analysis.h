// Semantic analysis: turns a parsed Query into the structures the CloudTalk
// server evaluates.
//
//  * Flow sizes are resolved to concrete byte counts (following sz()
//    references; a flow with only a transfer-reference inherits the
//    referenced flow's size — the daisy-chain idiom).
//  * Flows joined by rate/transfer references are merged into *chain groups*
//    that share a single rate ("our two restrictions mandate that the rates
//    of the two flows will be the same", Section 4.1). A group's rate limit
//    is the tightest literal `rate` attribute of its members.
//  * For every variable, the analysis computes the communication sets the
//    heuristic needs (Listing 1): which endpoints send to it / receive from
//    it over the network, and whether it reads or writes its local disk.
#ifndef CLOUDTALK_SRC_LANG_ANALYSIS_H_
#define CLOUDTALK_SRC_LANG_ANALYSIS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/units.h"
#include "src/lang/ast.h"
#include "src/lang/diagnostics.h"

namespace cloudtalk {
namespace lang {

// Per-variable communication summary (the to/from and tx/rx sets of
// Listing 1).
struct VarComm {
  std::string name;
  std::vector<Endpoint> pool;     // Possible values (addresses).
  std::vector<Endpoint> rx_from;  // Network endpoints that send to it.
  std::vector<Endpoint> tx_to;    // Network endpoints it sends to.
  bool reads_disk = false;        // Some flow disk -> var.
  bool writes_disk = false;       // Some flow var -> disk.
  double cpu_required = 0;        // Section 7 scalar requirements;
  Bytes mem_required = 0;         // 0 = unconstrained.
};

struct CompiledFlow {
  int index = 0;            // Position in Query::flows.
  std::string name;
  Endpoint src;
  Endpoint dst;
  Bytes size = 0;           // Resolved.
  Seconds start = 0;        // Literal `start`, relative seconds (default 0).
  int group = 0;            // Chain-group index.
  // Flows whose transferred data this flow forwards (t() references inside
  // the transfer attribute). The fluid model folds these into the shared
  // group rate; the packet-level estimator instead starts this flow when its
  // parents complete (store-and-forward approximation).
  std::vector<int> transfer_parents;
};

struct CompiledGroup {
  std::vector<int> flow_indices;      // Members (indices into flows()).
  Bps rate_limit;                     // Tightest literal rate; inf if none.
  Seconds start = 0;                  // Earliest member start.
  // Tightest literal `end` attribute among members (seconds relative to
  // now); infinity when none. Used as a completion deadline by Quote().
  Seconds deadline = 0;
};

class CompiledQuery {
 public:
  // Compiles `query`; the Query must outlive the CompiledQuery. On failure
  // the Error is the first diagnostic (message, rule code, line/column).
  static Result<CompiledQuery> Compile(const Query& query);

  // Like Compile, but reports every problem (cyclic size references E030,
  // unusable references E031, unresolvable sizes E032, ...) into `sink`
  // with source spans. Returns nullopt when any error was recorded.
  static std::optional<CompiledQuery> Compile(const Query& query, DiagnosticSink* sink);

  const Query& query() const { return *query_; }
  const std::vector<CompiledFlow>& flows() const { return flows_; }
  const std::vector<CompiledGroup>& groups() const { return groups_; }
  const std::vector<VarComm>& variables() const { return variables_; }

  // Index into variables() or -1.
  int VariableIndex(const std::string& name) const;

 private:
  const Query* query_ = nullptr;
  std::vector<CompiledFlow> flows_;
  std::vector<CompiledGroup> groups_;
  std::vector<VarComm> variables_;
};

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_ANALYSIS_H_
