// Lint rules for the CloudTalk query language.
//
// A lint rule inspects a parsed Query and reports legal-but-suspect (or
// outright unanswerable) constructs through the DiagnosticSink. Rules are
// registered in a static table (LintRules()) so tools can enumerate them;
// RunLint executes every rule. Rule codes are stable API, documented in
// docs/LANGUAGE.md:
//
//   W001 unused-variable          declared variable never used by any flow
//   E010 empty-pool               variable pool has no candidates
//   W011 duplicate-pool-entry     same endpoint listed twice in one pool
//   W020 self-flow                flow source and destination are identical
//   E030 size-reference-cycle     sz()/t() size resolution can never settle
//   W040 unreachable-flow         transfer chain waits on itself, never starts
//   W050 contradictory-rate-chain two literal rates in one chain group
//   W060 search-space-explosion   exhaustive binding count is intractable
//   W070 interchangeable-variables symmetric variables enumerated redundantly
//   W071 statically-dead-flow     flow resolves to zero size, transfers nothing
//   E080 deadline-infeasible-group no binding can meet the deadline (bound LB)
//   W080 trivially-satisfied-deadline every binding meets the deadline on idle hosts
//   W081 dominated-objective      a binding-independent group pins the makespan
//   W090 duplicate-constraint     identical rate/deadline restated in a chain group
//   W091 subsumed-constraint      looser deadline subsumed by a tighter one
//   W092 equivalent-to-earlier-query batch input duplicates an earlier query
//   W100 unused-pool-host          pool host outside every footprint, never probed
//   W101 footprint-exceeds-pool    literal endpoint doubles as a binding candidate
//
// Rules only *read* the query; a query with parse errors can still be
// linted (the parser produces a best-effort partial AST).
#ifndef CLOUDTALK_SRC_LANG_LINT_H_
#define CLOUDTALK_SRC_LANG_LINT_H_

#include <cstdint>
#include <vector>

#include "src/lang/ast.h"
#include "src/lang/diagnostics.h"

namespace cloudtalk {
namespace lang {

struct LintRule {
  const char* code;        // "W001", "E010", ...
  Severity severity;       // Severity diagnostics of this rule carry.
  const char* name;        // Kebab-case slug, e.g. "unused-variable".
  const char* summary;     // One-line description for --help / docs.
  void (*check)(const Query& query, DiagnosticSink* sink);
};

// The registry, in rule-code order.
const std::vector<LintRule>& LintRules();

// Runs every registered rule over `query`.
void RunLint(const Query& query, DiagnosticSink* sink);

// W060 helper, exposed for tests and the server: estimated number of
// variable bindings an exhaustive evaluation would enumerate (capped at
// 1e18). Distinct-bindings semantics unless allow_same is set.
double EstimateBindingCount(const Query& query);

// Binding counts above this trigger W060 on exhaustive (option packet)
// queries.
inline constexpr double kSearchSpaceWarnThreshold = 100000.0;

// W092 helper (batch mode): for each query, the index of the earliest
// semantically equivalent predecessor in the batch (-1 when none) and its
// canonical content hash (0 when the query cannot be canonicalized).
// Per-query lint rules cannot see across inputs, so the ctlint CLI drives
// this directly.
struct BatchEquivalence {
  int equivalent_to = -1;
  uint64_t hash = 0;
};
std::vector<BatchEquivalence> FindEquivalentQueries(const std::vector<const Query*>& queries);

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_LINT_H_
