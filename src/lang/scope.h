// Static footprint & effect analysis for CloudTalk queries (ISSUE 9).
//
// AnalyzeScope abstractly interprets a compiled query and computes, with no
// status information at all, three things the server and the tools key on:
//
//   * the **host footprint** — the set of addresses whose status can
//     influence the answer. A host is in the footprint when it is a binding
//     candidate of an *active* variable (one that appears as a flow
//     endpoint, touches disk, or carries a cpu/mem requirement) or a
//     literal flow endpoint. Hosts mentioned only in pools of inert
//     variables are provably outside every footprint: no evaluation engine
//     ever looks their status up, so the server can skip probing them
//     (M113 scope_probe_skips) and ctlint flags them (W100).
//   * the **status-field read set** per footprint host — which of
//     cpu / net-in / net-out / disk the evaluation can read for it. Pool
//     candidates inherit the fields their variable's communication pattern
//     touches (the heuristic's score_candidate reads exactly those);
//     literal endpoints read net-out as a source and net-in as a sink.
//   * the **effect set** — whether answering reserves endpoints, samples
//     fresh status, or is pure. This replaces the server's former ad-hoc
//     `CacheableQuery` gating: the answer cache now keys on the inferred
//     purity bits.
//
// Soundness of the footprint (the claim `ctcheck --diff-scope` fuzzes as
// invariant D504) rests on how each status consumer treats the excluded
// hosts:
//
//   * heuristic (src/core/heuristic.cc): score_candidate only consults the
//     status of the candidate address being scored, and only when the
//     variable has network peers, disk access, or scalar requirements. An
//     inert variable's candidates are all scored kMaxScore without any
//     lookup, so its binding (pool order + distinct-bindings bookkeeping)
//     is status-free.
//   * bound analysis (src/lang/bound.cc): interns every pool address and
//     literal endpoint, but the availability of a host reachable only
//     through an inert variable's pool is never consumed — inert variables
//     feed no chain-group member, so neither the per-member cap/floor rules
//     nor the cross-group serialisation rule touch it.
//   * estimators (flow-level and packet): read status only for hosts that
//     resolve from a flow endpoint — a bound variable's host (a candidate
//     of an active variable) or a literal endpoint. Both are in the
//     footprint.
//   * optimizer (src/lang/opt.cc): O100 consults SatisfiesRequirements for
//     candidates of variables with requirements; such variables are active.
//
// Note the footprint is deliberately *not* refined with O100 domain
// pruning: that pass reads probed usage, so folding it in would make the
// footprint depend on the very probes it is meant to avoid. The static
// analysis here is sound before the first probe is sent.
#ifndef CLOUDTALK_SRC_LANG_SCOPE_H_
#define CLOUDTALK_SRC_LANG_SCOPE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/lang/analysis.h"
#include "src/lang/ast.h"

namespace cloudtalk {
namespace lang {

// What answering the query does to server state, inferred statically from
// the AST (no compilation needed, so the server's front-end memo can cache
// these bits alongside the canonical form).
struct ScopeEffects {
  // Answering mutates the reservation table. `option noreserve` clears it;
  // packet-level evaluation never reserves regardless of the option.
  bool reserves = false;
  // Answering probes fresh status (`option dynamic`, the default). Static
  // queries evaluate against nominal idle capacities instead.
  bool samples = false;
  // `option packet`: the exhaustive engine answers, which ignores the
  // reservation table entirely.
  bool uses_packet_engine = false;
  // No reservation effect: the answer is a function of (canonical text,
  // status snapshot) alone, except for sampling randomness on oversized
  // pools (max_pool_size) and reservations held by *other* queries — both
  // re-checked by the server at cache-lookup time.
  bool pure = false;
  // Largest declared pool; pools above the server's sample threshold draw
  // from its RNG, so their answers are not reproducible.
  int max_pool_size = 0;
};

// Status fields the evaluation can read for one footprint host.
enum ScopeField : uint8_t {
  kScopeFieldCpu = 1 << 0,     // cpu/mem requirement checks (Section 7)
  kScopeFieldNetIn = 1 << 1,   // NIC rx capacity/usage
  kScopeFieldNetOut = 1 << 2,  // NIC tx capacity/usage
  kScopeFieldDisk = 1 << 3,    // disk read/write capacity/usage
};

struct ScopeHost {
  std::string address;
  uint8_t fields = 0;      // ScopeField bits.
  bool candidate = false;  // Binding candidate of an active variable.
  bool endpoint = false;   // Literal flow endpoint.
};

struct ScopeAnalysis {
  ScopeEffects effects;

  // The footprint, sorted by address (deterministic for tools/snapshots),
  // plus a set view for O(1) membership tests on the probing hot path.
  std::vector<ScopeHost> footprint;
  std::unordered_set<std::string> footprint_set;

  // Addresses the reservation table can be read or written for: every pool
  // candidate of every variable — inert ones included, because the
  // heuristic's reservation filter steers *all* bindings away from reserved
  // hosts and any bound endpoint gets reserved. This is what the concurrent
  // admission gate intersects — two queries whose candidate sets are
  // disjoint cannot observe each other's reservations in either order.
  std::unordered_set<std::string> candidates;

  // Hosts mentioned in the query but provably outside the footprint
  // (sorted), and the inert variables that mention them (declaration
  // order). Both drive ctlint W100 and the ctscope report.
  std::vector<std::string> excluded;
  std::vector<std::string> inert_variables;

  bool InFootprint(const std::string& address) const {
    return footprint_set.count(address) > 0;
  }
};

// Effect inference alone, from the parsed AST. Pure in the query bytes.
ScopeEffects AnalyzeEffects(const Query& query);

// The full analysis over a compiled query. Status-free; safe to run before
// any probe. Checks invariant I408 (every literal flow endpoint is inside
// the computed footprint) on the way out.
ScopeAnalysis AnalyzeScope(const CompiledQuery& compiled);

// True when answering `a` and `b` concurrently could interleave through the
// reservation table: at least one of them reserves and their candidate sets
// intersect. Disjoint queries commute — any admission order yields
// byte-identical replies (the D504 concurrency half).
bool ReservationConflict(const ScopeAnalysis& a, const ScopeAnalysis& b);

// "reserve,sample", "sample", "reserve", or "pure" — for traces and tools.
std::string EffectsName(const ScopeEffects& effects);
// "cpu,net-in,net-out,disk" subset for one host's field bits ("-" if none).
std::string ScopeFieldNames(uint8_t fields);

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_SCOPE_H_
