#include "src/lang/bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace cloudtalk {
namespace lang {

namespace {
// Mirror of the estimator's unconstrained-resource sentinel: unknown and
// unreported endpoints get 1e15 capacities, hub links are 1e15, and the
// waterfill pins resource-free groups at a 1e15 rate. Clamping every
// availability here folds the (always-1e15) hub-link resources into the
// NIC resources without modelling them separately.
constexpr double kHugeCapacity = 1e15;
// TransferTime's zero-rate convention (src/common/units.h).
constexpr double kZeroRateTime = 1e18;
constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr double kRelGuard = 1e-6;
constexpr double kAbsGuard = 1e-9;

double AvailOf(Bps cap, Bps use, double fraction) {
  const double avail = std::max(cap * fraction, cap - use);
  return std::min(std::max(avail, 0.0), kHugeCapacity);
}
}  // namespace

Seconds GuardLowerBound(Seconds raw) {
  return std::max<Seconds>(0, raw * (1.0 - kRelGuard) - kAbsGuard);
}

Seconds GuardUpperBound(Seconds raw) {
  if (!std::isfinite(raw)) {
    return raw;
  }
  return raw * (1.0 + kRelGuard) + kAbsGuard;
}

int32_t BoundAnalysis::InternHost(const std::string& address, const StatusByAddress& status,
                                  double fraction) {
  const auto it = host_index_.find(address);
  if (it != host_index_.end()) {
    return it->second;
  }
  const int32_t id = static_cast<int32_t>(host_names_.size());
  host_index_.emplace(address, id);
  host_names_.push_back(address);
  const auto st = status.find(address);
  if (st == status.end()) {
    // Unreported: idle with very large capacity (estimator.cc, ReportFor).
    for (int k = 0; k < kKinds; ++k) {
      avail_.push_back(kHugeCapacity);
    }
  } else {
    const StatusReport& r = st->second;
    avail_.push_back(AvailOf(r.nic_tx_cap, r.nic_tx_use, fraction));
    avail_.push_back(AvailOf(r.nic_rx_cap, r.nic_rx_use, fraction));
    avail_.push_back(AvailOf(r.disk_read_cap, r.disk_read_use, fraction));
    avail_.push_back(AvailOf(r.disk_write_cap, r.disk_write_use, fraction));
  }
  return id;
}

BoundAnalysis BoundAnalysis::Build(const CompiledQuery& query, const StatusByAddress& status,
                                   const BoundOptions& options) {
  BoundAnalysis a;
  a.distinct_ = options.distinct && !query.query().options.allow_same_binding;
  const double f = options.min_available_fraction;

  // Host universe: pool addresses first (variable order), then literal flow
  // endpoints, then one abstract host per 0.0.0.0 occurrence — the same
  // universe the estimator interns.
  const auto& variables = query.variables();
  a.var_candidates_.resize(variables.size());
  a.var_pool_set_.resize(variables.size());
  for (size_t v = 0; v < variables.size(); ++v) {
    for (const Endpoint& e : variables[v].pool) {
      if (e.kind == Endpoint::Kind::kAddress) {
        const int32_t id = a.InternHost(e.name, status, f);
        if (a.var_pool_set_[v].insert(id).second) {
          a.var_candidates_[v].push_back(id);
        }
      }
    }
  }
  int unknown_counter = 0;
  a.members_.reserve(query.flows().size());
  for (const CompiledFlow& flow : query.flows()) {
    Member m;
    m.bytes = static_cast<double>(flow.size);
    m.group = flow.group;
    auto classify = [&](const Endpoint& e) -> Ep {
      switch (e.kind) {
        case Endpoint::Kind::kAddress:
          return {Ep::kHost, a.InternHost(e.name, status, f)};
        case Endpoint::Kind::kVariable:
          return {Ep::kVar, query.VariableIndex(e.name)};
        case Endpoint::Kind::kDisk:
          return {Ep::kDisk, 0};
        case Endpoint::Kind::kUnknown:
        default:
          return {Ep::kHost, a.InternHost("_unknown" + std::to_string(unknown_counter++),
                                          status, f)};
      }
    };
    m.src = classify(flow.src);
    m.dst = classify(flow.dst);
    a.members_.push_back(m);
  }

  a.groups_.resize(query.groups().size());
  a.min_group_start_ = query.groups().empty() ? 0 : kInf;
  for (size_t g = 0; g < query.groups().size(); ++g) {
    const CompiledGroup& cg = query.groups()[g];
    GroupInfo& info = a.groups_[g];
    info.rate_limit = cg.rate_limit;
    info.start = std::max<Seconds>(0, cg.start);
    info.deadline = cg.deadline;
    a.min_group_start_ = std::min(a.min_group_start_, info.start);
  }
  for (size_t i = 0; i < a.members_.size(); ++i) {
    a.groups_[a.members_[i].group].members_by_size.push_back(static_cast<int>(i));
  }
  for (GroupInfo& info : a.groups_) {
    std::sort(info.members_by_size.begin(), info.members_by_size.end(),
              [&](int x, int y) {
                if (a.members_[x].bytes != a.members_[y].bytes) {
                  return a.members_[x].bytes < a.members_[y].bytes;
                }
                return x < y;
              });
  }

  a.groups_of_var_.resize(variables.size());
  for (const Member& m : a.members_) {
    for (const Ep* e : {&m.src, &m.dst}) {
      if (e->what == Ep::kVar && e->index >= 0) {
        std::vector<int>& gs = a.groups_of_var_[e->index];
        if (std::find(gs.begin(), gs.end(), m.group) == gs.end()) {
          gs.push_back(m.group);
        }
      }
    }
  }

  const size_t nvars = variables.size();
  a.pools_intersect_.assign(nvars * nvars, 0);
  for (size_t v = 0; v < nvars; ++v) {
    for (size_t w = 0; w < nvars; ++w) {
      bool hit = false;
      for (const int32_t c : a.var_candidates_[v]) {
        if (a.var_pool_set_[w].count(c) != 0) {
          hit = true;
          break;
        }
      }
      a.pools_intersect_[v * nvars + w] = hit ? 1 : 0;
    }
  }

  // N_max: every (member, resource) pair that could consume the resource
  // under any candidate resolution, counted over the *unpinned* pools so it
  // upper-bounds the concurrent consumer weight under every refinement.
  a.n_max_.assign(a.host_names_.size() * kKinds, 0.0);
  std::vector<int32_t> no_pins(nvars, -1);
  const int32_t* base = no_pins.empty() ? nullptr : no_pins.data();
  auto count_side = [&](const EpView& view, Kind kind) {
    if (view.host >= 0) {
      a.n_max_[view.host * kKinds + kind] += 1.0;
    } else if (view.var >= 0) {
      for (const int32_t c : a.var_candidates_[view.var]) {
        a.n_max_[c * kKinds + kind] += 1.0;
      }
    }
  };
  for (const Member& m : a.members_) {
    if (m.src.what == Ep::kDisk) {
      count_side(a.View(m.dst, base), kDiskRead);
    } else if (m.dst.what == Ep::kDisk) {
      count_side(a.View(m.src, base), kDiskWrite);
    } else {
      const EpView s = a.View(m.src, base);
      const EpView d = a.View(m.dst, base);
      if (a.DefinitelyEqual(s, d)) {
        continue;  // Loopback under every resolution: consumes nothing.
      }
      count_side(s, kTx);
      count_side(d, kRx);
    }
  }

  a.var_max_avail_.assign(nvars * kKinds, 0.0);
  a.var_min_floor_.assign(nvars * kKinds, kInf);
  for (size_t v = 0; v < nvars; ++v) {
    for (int k = 0; k < kKinds; ++k) {
      double best = 0, floor = kInf;
      for (const int32_t c : a.var_candidates_[v]) {
        const double avail = a.Avail(c, static_cast<Kind>(k));
        best = std::max(best, avail);
        const double n = a.n_max_[c * kKinds + k];
        floor = std::min(floor, n > 0 ? avail / n : avail);
      }
      a.var_max_avail_[v * kKinds + k] = best;
      a.var_min_floor_[v * kKinds + k] = floor;
    }
  }

  a.group_bounds_ = a.GroupBindingBounds(no_pins);
  a.query_bounds_ = a.BindingBounds(no_pins);
  return a;
}

int32_t BoundAnalysis::HostId(const std::string& address) const {
  const auto it = host_index_.find(address);
  return it == host_index_.end() ? -1 : it->second;
}

BoundAnalysis::EpView BoundAnalysis::View(const Ep& ep, const int32_t* var_host) const {
  EpView view;
  if (ep.what == Ep::kHost) {
    view.host = ep.index;
    return view;
  }
  // kDisk never reaches View (disk sides are special-cased by callers).
  const int v = ep.index;
  if (v < 0) {
    return view;  // Unresolvable endpoint: neither host nor open var.
  }
  const int32_t pinned = var_host != nullptr ? var_host[v] : -1;
  if (pinned >= 0) {
    view.host = pinned;
    view.from_var = true;
  } else if (var_candidates_[v].size() == 1) {
    // A singleton pool is pinned by construction.
    view.host = var_candidates_[v][0];
    view.from_var = true;
  } else {
    view.var = v;
  }
  return view;
}

bool BoundAnalysis::PossiblyEqual(const EpView& s, const EpView& d) const {
  if (s.host >= 0 && d.host >= 0) {
    return s.host == d.host;
  }
  if (s.host >= 0 && d.var >= 0) {
    // A pinned *variable* can never equal another open variable under
    // distinct bindings; a literal can.
    if (distinct_ && s.from_var) {
      return false;
    }
    return var_pool_set_[d.var].count(s.host) != 0;
  }
  if (d.host >= 0 && s.var >= 0) {
    if (distinct_ && d.from_var) {
      return false;
    }
    return var_pool_set_[s.var].count(d.host) != 0;
  }
  if (s.var >= 0 && d.var >= 0) {
    if (s.var == d.var) {
      return true;
    }
    if (distinct_) {
      return false;
    }
    return pools_intersect_[s.var * var_candidates_.size() + d.var] != 0;
  }
  return false;
}

bool BoundAnalysis::DefinitelyEqual(const EpView& s, const EpView& d) const {
  if (s.host >= 0 && d.host >= 0) {
    return s.host == d.host;
  }
  return s.var >= 0 && s.var == d.var;
}

double BoundAnalysis::CapSide(const EpView& v, Kind kind) const {
  if (v.host >= 0) {
    return Avail(v.host, kind);
  }
  if (v.var >= 0) {
    return var_max_avail_[v.var * kKinds + kind];
  }
  return 0;
}

double BoundAnalysis::FloorSide(const EpView& v, Kind kind) const {
  if (v.host >= 0) {
    const double n = n_max_[v.host * kKinds + kind];
    const double avail = Avail(v.host, kind);
    return n > 0 ? avail / n : avail;
  }
  if (v.var >= 0) {
    return var_min_floor_[v.var * kKinds + kind];
  }
  return 0;
}

double BoundAnalysis::MemberCap(const Member& m, const int32_t* var_host) const {
  if (m.src.what == Ep::kDisk) {
    return CapSide(View(m.dst, var_host), kDiskRead);
  }
  if (m.dst.what == Ep::kDisk) {
    return CapSide(View(m.src, var_host), kDiskWrite);
  }
  const EpView s = View(m.src, var_host);
  const EpView d = View(m.dst, var_host);
  if (PossiblyEqual(s, d)) {
    return kInf;  // A loopback resolution exists: no constraint on the rate.
  }
  return std::min(CapSide(s, kTx), CapSide(d, kRx));
}

double BoundAnalysis::MemberFloor(const Member& m, const int32_t* var_host) const {
  if (m.src.what == Ep::kDisk) {
    return std::min(FloorSide(View(m.dst, var_host), kDiskRead), kHugeCapacity);
  }
  if (m.dst.what == Ep::kDisk) {
    return std::min(FloorSide(View(m.src, var_host), kDiskWrite), kHugeCapacity);
  }
  const EpView s = View(m.src, var_host);
  const EpView d = View(m.dst, var_host);
  if (DefinitelyEqual(s, d)) {
    // Definite loopback: the member consumes nothing and the waterfill pins
    // a resource-free group at the 1e15 sentinel rate, not at infinity.
    return kHugeCapacity;
  }
  return std::min({FloorSide(s, kTx), FloorSide(d, kRx), kHugeCapacity});
}

void BoundAnalysis::MemberDefinite(const Member& m, const int32_t* var_host,
                                   std::vector<std::pair<int32_t, double>>* out) const {
  if (m.bytes <= 0) {
    return;
  }
  if (m.src.what == Ep::kDisk) {
    const EpView d = View(m.dst, var_host);
    if (d.host >= 0) {
      out->emplace_back(d.host * kKinds + kDiskRead, m.bytes);
    }
    return;
  }
  if (m.dst.what == Ep::kDisk) {
    const EpView s = View(m.src, var_host);
    if (s.host >= 0) {
      out->emplace_back(s.host * kKinds + kDiskWrite, m.bytes);
    }
    return;
  }
  const EpView s = View(m.src, var_host);
  const EpView d = View(m.dst, var_host);
  if (PossiblyEqual(s, d)) {
    return;  // Some resolution is loopback: nothing is a definite use.
  }
  if (s.host >= 0) {
    out->emplace_back(s.host * kKinds + kTx, m.bytes);
  }
  if (d.host >= 0) {
    out->emplace_back(d.host * kKinds + kRx, m.bytes);
  }
}

Seconds BoundAnalysis::GroupLowerBound(const GroupInfo& g, const int32_t* var_host) const {
  // Chain rule: walking the ascending size order backwards keeps a running
  // suffix-min of the live members' optimistic caps.
  const int k = static_cast<int>(g.members_by_size.size());
  double time = 0;
  double run_min = kInf;
  for (int j = k - 1; j >= 0; --j) {
    const Member& m = members_[g.members_by_size[j]];
    run_min = std::min(run_min, MemberCap(m, var_host));
    const double prev = j > 0 ? members_[g.members_by_size[j - 1]].bytes : 0.0;
    const double delta = m.bytes - prev;
    if (delta <= 0) {
      continue;
    }
    const double rate = std::min(g.rate_limit, run_min);
    if (!(rate > 0)) {
      time = kZeroRateTime;
      break;
    }
    time += delta * 8.0 / rate;  // rate == inf contributes 0.
  }
  Seconds lb = g.start + time;

  // Definitely-shared-resource rule: every member that uses resource r
  // under every resolution pushes its full payload through r.
  std::vector<std::pair<int32_t, double>> defs;
  defs.reserve(2 * k);
  for (const int mi : g.members_by_size) {
    MemberDefinite(members_[mi], var_host, &defs);
  }
  std::sort(defs.begin(), defs.end());
  for (size_t i = 0; i < defs.size();) {
    double sum = 0;
    size_t j = i;
    while (j < defs.size() && defs[j].first == defs[i].first) {
      sum += defs[j].second;
      ++j;
    }
    const double avail = avail_[defs[i].first];
    lb = std::max(lb, g.start + (avail > 0 ? sum * 8.0 / avail : kZeroRateTime));
    i = j;
  }
  return lb;
}

Seconds BoundAnalysis::GroupUpperBound(const GroupInfo& g, const int32_t* var_host) const {
  const int k = static_cast<int>(g.members_by_size.size());
  double time = 0;
  double run_min = kInf;
  for (int j = k - 1; j >= 0; --j) {
    const Member& m = members_[g.members_by_size[j]];
    run_min = std::min(run_min, MemberFloor(m, var_host));
    const double prev = j > 0 ? members_[g.members_by_size[j - 1]].bytes : 0.0;
    const double delta = m.bytes - prev;
    if (delta <= 0) {
      continue;
    }
    const double rate = std::min(g.rate_limit, run_min);
    if (!(rate > 0)) {
      return kInf;
    }
    time += delta * 8.0 / rate;
  }
  return g.start + time;
}

Seconds BoundAnalysis::CrossGroupLowerBound(const int32_t* var_host) const {
  std::vector<std::pair<int32_t, double>> defs;
  defs.reserve(2 * members_.size());
  for (const Member& m : members_) {
    MemberDefinite(m, var_host, &defs);
  }
  std::sort(defs.begin(), defs.end());
  Seconds lb = 0;
  for (size_t i = 0; i < defs.size();) {
    double sum = 0;
    size_t j = i;
    while (j < defs.size() && defs[j].first == defs[i].first) {
      sum += defs[j].second;
      ++j;
    }
    const double avail = avail_[defs[i].first];
    lb = std::max(lb, min_group_start_ + (avail > 0 ? sum * 8.0 / avail : kZeroRateTime));
    i = j;
  }
  return lb;
}

BoundInterval BoundAnalysis::BindingBounds(const std::vector<int32_t>& var_host) const {
  const int32_t* pins = var_host.empty() ? nullptr : var_host.data();
  Seconds lb = 0, ub = 0;
  for (const GroupInfo& g : groups_) {
    if (g.members_by_size.empty()) {
      continue;
    }
    lb = std::max(lb, GroupLowerBound(g, pins));
    ub = std::max(ub, GroupUpperBound(g, pins));
  }
  lb = std::max(lb, CrossGroupLowerBound(pins));
  BoundInterval interval;
  interval.lb = GuardLowerBound(lb);
  interval.ub = GuardUpperBound(ub);
  return interval;
}

std::vector<GroupBound> BoundAnalysis::GroupBindingBounds(
    const std::vector<int32_t>& var_host) const {
  const int32_t* pins = var_host.empty() ? nullptr : var_host.data();
  std::vector<GroupBound> out;
  out.reserve(groups_.size());
  for (size_t g = 0; g < groups_.size(); ++g) {
    GroupBound gb;
    gb.group = static_cast<int>(g);
    gb.deadline = groups_[g].deadline;
    if (!groups_[g].members_by_size.empty()) {
      gb.interval.lb = GuardLowerBound(GroupLowerBound(groups_[g], pins));
      gb.interval.ub = GuardUpperBound(GroupUpperBound(groups_[g], pins));
    } else {
      gb.interval.lb = 0;
      gb.interval.ub = 0;
    }
    if (std::isfinite(gb.deadline)) {
      gb.provably_infeasible = gb.interval.lb > gb.deadline;
      gb.trivially_satisfied = gb.interval.ub <= gb.deadline;
    }
    out.push_back(gb);
  }
  return out;
}

BoundAnalysis::Cursor::Cursor(const BoundAnalysis* analysis) : a_(analysis) {
  var_host_.assign(a_->var_candidates_.size(), -1);
  group_lb_.assign(a_->groups_.size(), 0);
  group_dirty_.assign(a_->groups_.size(), 1);
}

void BoundAnalysis::Cursor::Assign(int var, int32_t host) {
  var_host_[var] = host;
  for (const int g : a_->groups_of_var_[var]) {
    group_dirty_[g] = 1;
  }
}

void BoundAnalysis::Cursor::Unassign(int var) {
  var_host_[var] = -1;
  for (const int g : a_->groups_of_var_[var]) {
    group_dirty_[g] = 1;
  }
}

Seconds BoundAnalysis::Cursor::LowerBound() {
  const int32_t* pins = var_host_.empty() ? nullptr : var_host_.data();
  Seconds lb = 0;
  for (size_t g = 0; g < group_lb_.size(); ++g) {
    if (group_dirty_[g] != 0) {
      group_lb_[g] = a_->groups_[g].members_by_size.empty()
                         ? 0
                         : a_->GroupLowerBound(a_->groups_[g], pins);
      group_dirty_[g] = 0;
    }
    lb = std::max(lb, group_lb_[g]);
  }
  return GuardLowerBound(lb);
}

}  // namespace lang
}  // namespace cloudtalk
