#include "src/lang/ast.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cloudtalk {
namespace lang {

std::string Endpoint::ToString() const {
  switch (kind) {
    case Kind::kAddress:
    case Kind::kVariable:
      return name;
    case Kind::kDisk:
      return "disk";
    case Kind::kUnknown:
      return "0.0.0.0";
  }
  return "?";
}

ExprPtr Expr::Literal(double value) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = value;
  return e;
}

ExprPtr Expr::Ref(Attr attr, std::string flow) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kRef;
  e->ref_attr = attr;
  e->ref_flow = std::move(flow);
  return e;
}

ExprPtr Expr::Binary(char op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::Clone() const {
  ExprPtr clone;
  switch (kind) {
    case Kind::kLiteral:
      clone = Literal(literal);
      break;
    case Kind::kRef:
      clone = Ref(ref_attr, ref_flow);
      break;
    case Kind::kBinary:
      clone = Binary(op, lhs->Clone(), rhs->Clone());
      break;
  }
  if (clone != nullptr) {
    clone->span = span;
  }
  return clone;
}

bool IsConstantExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return true;
    case Expr::Kind::kRef:
      return false;
    case Expr::Kind::kBinary:
      return IsConstantExpr(*expr.lhs) && IsConstantExpr(*expr.rhs);
  }
  return false;
}

double EvalConstant(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal;
    case Expr::Kind::kRef:
      return 0;  // Caller guarantees IsConstantExpr.
    case Expr::Kind::kBinary: {
      const double l = EvalConstant(*expr.lhs);
      const double r = EvalConstant(*expr.rhs);
      switch (expr.op) {
        case '+':
          return l + r;
        case '-':
          return l - r;
        case '*':
          return l * r;
        case '/':
          return r != 0 ? l / r : 0;
      }
      return 0;
    }
  }
  return 0;
}

void CollectFlowRefs(const Expr& expr, std::vector<std::pair<Attr, std::string>>* out) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return;
    case Expr::Kind::kRef:
      out->emplace_back(expr.ref_attr, expr.ref_flow);
      return;
    case Expr::Kind::kBinary:
      CollectFlowRefs(*expr.lhs, out);
      CollectFlowRefs(*expr.rhs, out);
      return;
  }
}

namespace {

// Prints a literal compactly, using K/M/G binary suffixes for exact powers.
// Distinct doubles always print distinctly (shortest round-tripping form):
// canonical-text equality (src/lang/canon) relies on the rendering being
// injective. The long long casts are guarded — they are undefined for
// magnitudes at or beyond 2^63.
std::string FormatLiteral(double value) {
  constexpr double kMaxExact = 9.2e18;  // Safely inside the long long range.
  const double kSuffixes[3] = {1024.0 * 1024.0 * 1024.0, 1024.0 * 1024.0, 1024.0};
  const char kNames[3] = {'G', 'M', 'K'};
  for (int i = 0; i < 3; ++i) {
    if (value >= kSuffixes[i] && value / kSuffixes[i] < kMaxExact &&
        std::fmod(value, kSuffixes[i]) == 0.0) {
      std::ostringstream os;
      os << static_cast<long long>(value / kSuffixes[i]) << kNames[i];
      return os.str();
    }
  }
  if (std::abs(value) < kMaxExact && value == static_cast<long long>(value)) {
    std::ostringstream os;
    os << static_cast<long long>(value);
    return os.str();
  }
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) {
      break;
    }
  }
  return buf;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return FormatLiteral(literal);
    case Kind::kRef:
      return std::string(AttrRefName(ref_attr)) + "(" + ref_flow + ")";
    case Kind::kBinary:
      return "(" + lhs->ToString() + " " + op + " " + rhs->ToString() + ")";
  }
  return "?";
}

const Expr* FlowDef::FindAttr(Attr attr) const {
  for (const AttrValue& av : attrs) {
    if (av.attr == attr) {
      return av.value.get();
    }
  }
  return nullptr;
}

Span FlowDef::AttrSpan(Attr attr) const {
  for (const AttrValue& av : attrs) {
    if (av.attr == attr) {
      return av.span;
    }
  }
  return span;
}

std::string FlowDef::ToString() const {
  std::ostringstream os;
  if (explicit_name) {
    os << name << " ";
  }
  os << src.ToString() << " -> " << dst.ToString();
  for (const AttrValue& av : attrs) {
    os << " " << AttrName(av.attr) << " " << av.value->ToString();
  }
  return os.str();
}

const VarDecl* Query::FindVariable(const std::string& name) const {
  for (const VarDecl& decl : variables) {
    for (const std::string& n : decl.names) {
      if (n == name) {
        return &decl;
      }
    }
  }
  return nullptr;
}

const FlowDef* Query::FindFlow(const std::string& name) const {
  for (const FlowDef& flow : flows) {
    if (flow.name == name) {
      return &flow;
    }
  }
  return nullptr;
}

std::string Query::ToString() const {
  std::ostringstream os;
  const QueryOptions defaults;
  if (options.use_packet_simulator != defaults.use_packet_simulator) {
    os << "option packet\n";
  }
  if (options.use_dynamic_load != defaults.use_dynamic_load) {
    os << "option static\n";
  }
  if (options.allow_same_binding != defaults.allow_same_binding) {
    os << "option allow_same\n";
  }
  if (options.reserve != defaults.reserve) {
    os << "option noreserve\n";
  }
  if (options.eval_threads != defaults.eval_threads) {
    os << "option threads " << options.eval_threads << "\n";
  }
  if (options.optimize > 0) {
    os << "option optimize\n";
  } else if (options.optimize < 0) {
    os << "option no_optimize\n";
  }
  for (const VarDecl& decl : variables) {
    for (const std::string& n : decl.names) {
      os << n << " = ";
    }
    os << "(";
    for (size_t i = 0; i < decl.values.size(); ++i) {
      os << (i ? " " : "") << decl.values[i].ToString();
    }
    os << ")\n";
  }
  for (const Requirement& req : requirements) {
    os << req.var << " requires";
    if (req.cpu_cores > 0) {
      os << " cpu " << FormatLiteral(req.cpu_cores);
    }
    if (req.memory > 0) {
      os << " mem " << FormatLiteral(req.memory);
    }
    os << "\n";
  }
  for (const FlowDef& flow : flows) {
    os << flow.ToString() << "\n";
  }
  return os.str();
}

}  // namespace lang
}  // namespace cloudtalk
