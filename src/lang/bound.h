// Sound makespan-bound analysis over a compiled query + status snapshot.
//
// ctlint (lint.h) reasons about a query's text, ctopt (opt.h) about its
// binding space; this library reasons about its *completion time* without
// running the fluid solver. BoundAnalysis computes, per chain group and for
// the whole query, an interval [LB, UB] that is guaranteed to contain the
// makespan the flow-level estimator would report for **every** binding
// consistent with the current (possibly partial) variable assignment:
//
//   LB  per-group chain rule: with members sorted by size ascending, the
//       shared group rate while the j-th smallest member is live can never
//       exceed min(rate limit, best-case bottleneck of any live member),
//       where a member's best-case bottleneck is maximised over the
//       candidate resolutions of its open endpoints. Segment times
//       (size_j - size_{j-1}) * 8 / M_j sum to a completion-time floor.
//       A second rule serialises bytes through a definitely-shared
//       resource: all members that use resource r under every candidate
//       resolution push their full payload through r, so r's availability
//       caps their aggregate progress (and, across groups, the makespan).
//   UB  max-min fairness guarantees every group at least
//       min(rate limit, min over live members, min over the member's
//       *possible* resources r of avail(r) / N_max(r)) where N_max(r)
//       counts every (member, r) pair that could consume r under any
//       resolution. Summing segments at those floor rates gives a ceiling.
//
// Availability mirrors the solver exactly: avail(r) = max(cap * f,
// cap - background) with f = FlowLevelEstimator's min_available_fraction,
// clamped at the 1e15 unconstrained-resource sentinel; unreported and
// 0.0.0.0 endpoints are idle 1e15-capacity hosts. A relative 1e-6 +
// absolute 1e-9 guard band absorbs the waterfill freeze epsilons so the
// interval is sound bitwise (ctcheck --diff-bound, invariant D502).
//
// Both bounds are *monotone in binding refinement*: pinning a variable can
// only raise LB and lower UB (candidate sets shrink, so optimistic maxima
// fall and pessimistic minima rise). That makes LB usable as a
// branch-and-bound pruning oracle on odometer prefixes (opt pass O500,
// SearchCounters::bound_prunes) under the O100-O400 byte-identity
// contract: a prefix is pruned only when its LB strictly exceeds the
// incumbent makespan, which no completion of the prefix can then beat or
// tie. See DESIGN.md, "Bound analysis".
#ifndef CLOUDTALK_SRC_LANG_BOUND_H_
#define CLOUDTALK_SRC_LANG_BOUND_H_

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/units.h"
#include "src/lang/analysis.h"
#include "src/status/status.h"

namespace cloudtalk {

// Same alias as src/core/estimator.h (identical redeclaration is legal);
// lang cannot include core headers without inverting the layering.
using StatusByAddress = std::unordered_map<std::string, StatusReport>;

namespace lang {

struct BoundOptions {
  // Mirror of FlowLevelEstimator's min_available_fraction: the solver's
  // availability floor avail(r) = max(cap * f, cap - background). Bounds
  // are sound for the estimator only when the fractions match (the engine
  // asks the estimator via CompletionEstimator::BoundAvailabilityFraction).
  double min_available_fraction = 0.1;
  // Effective distinct-bindings semantics of the evaluation: distinct
  // variables can never share a host, which rules out loopback between two
  // different variables and tightens the optimistic member caps.
  bool distinct = true;
};

struct BoundInterval {
  Seconds lb = 0;
  Seconds ub = std::numeric_limits<Seconds>::infinity();

  bool Contains(Seconds t) const { return t >= lb && t <= ub; }
};

// Per chain group: the bound interval plus its deadline verdicts.
struct GroupBound {
  int group = 0;
  BoundInterval interval;
  Seconds deadline = std::numeric_limits<Seconds>::infinity();
  // LB > deadline: no binding can meet the deadline (ctlint E080, the
  // server admission fast path).
  bool provably_infeasible = false;
  // UB <= deadline (finite): every binding meets the deadline (W080).
  bool trivially_satisfied = false;
};

// The analysis. Build once per (query, status) pair; immutable afterwards,
// so shards of a multi-threaded walk share one instance and carry their own
// Cursor.
class BoundAnalysis {
 public:
  BoundAnalysis() = default;
  static BoundAnalysis Build(const CompiledQuery& query, const StatusByAddress& status,
                             const BoundOptions& options = {});

  // Bounds with no variables pinned: sound for every legal binding.
  const BoundInterval& query_bounds() const { return query_bounds_; }
  const std::vector<GroupBound>& group_bounds() const { return group_bounds_; }

  // Interned id of a pool / literal address, or -1. Ids are what
  // BindingBounds and Cursor::Assign consume.
  int32_t HostId(const std::string& address) const;
  int num_variables() const { return static_cast<int>(var_candidates_.size()); }
  int num_hosts() const { return static_cast<int>(host_names_.size()); }
  const std::string& host_name(int32_t id) const { return host_names_[id]; }

  // Bounds under a partial binding: var_host[v] is an interned host id or
  // -1 (unbound). Monotone: pinning more variables never lowers lb and
  // never raises ub.
  BoundInterval BindingBounds(const std::vector<int32_t>& var_host) const;
  std::vector<GroupBound> GroupBindingBounds(const std::vector<int32_t>& var_host) const;

  // Incremental lower-bound cursor for the exhaustive odometer. One per
  // shard; Assign/Unassign mirror the walk's slot writes and LowerBound()
  // re-evaluates only the chain groups a touched variable feeds.
  class Cursor {
   public:
    void Assign(int var, int32_t host);
    void Unassign(int var);
    // Sound lower bound on the makespan of every completion of the current
    // partial assignment (guard band applied). Conservative subset of
    // BindingBounds' lb (the cross-group serialisation rule is skipped to
    // keep the per-node cost O(groups)).
    Seconds LowerBound();

   private:
    friend class BoundAnalysis;
    explicit Cursor(const BoundAnalysis* analysis);
    const BoundAnalysis* a_ = nullptr;
    std::vector<int32_t> var_host_;
    std::vector<Seconds> group_lb_;
    std::vector<char> group_dirty_;
  };
  Cursor MakeCursor() const { return Cursor(this); }

 private:
  friend class Cursor;
  // Per-host resource kinds, in avail_ stride order.
  enum Kind { kTx = 0, kRx = 1, kDiskRead = 2, kDiskWrite = 3, kKinds = 4 };

  struct Ep {
    enum What { kHost, kVar, kDisk };
    What what = kHost;
    int32_t index = 0;  // Host id for kHost, variable index for kVar.
  };
  struct Member {
    Ep src, dst;
    double bytes = 0;
    int group = 0;
  };
  struct GroupInfo {
    std::vector<int> members_by_size;  // Member indices, bytes ascending.
    double rate_limit = std::numeric_limits<double>::infinity();
    Seconds start = 0;  // Solver start: max(0, group start).
    Seconds deadline = std::numeric_limits<Seconds>::infinity();
  };
  // Resolution of one endpoint under a partial assignment.
  struct EpView {
    int32_t host = -1;    // >= 0 when resolved to a single host.
    int var = -1;         // >= 0 when still an open variable.
    bool from_var = false;  // Resolved host came from a (pinned) variable.
  };

  int32_t InternHost(const std::string& address, const StatusByAddress& status,
                     double fraction);
  EpView View(const Ep& ep, const int32_t* var_host) const;
  bool PossiblyEqual(const EpView& s, const EpView& d) const;
  bool DefinitelyEqual(const EpView& s, const EpView& d) const;
  double Avail(int32_t host, Kind kind) const { return avail_[host * kKinds + kind]; }
  double CapSide(const EpView& v, Kind kind) const;    // Optimistic (max).
  double FloorSide(const EpView& v, Kind kind) const;  // Pessimistic (min / N).
  // Optimistic best-case bottleneck of one member (+inf when a loopback
  // resolution exists).
  double MemberCap(const Member& m, const int32_t* var_host) const;
  // Pessimistic rate floor of one member (kHugeCapacity when the member
  // definitely consumes nothing).
  double MemberFloor(const Member& m, const int32_t* var_host) const;
  // Appends the member's definite (resource, bytes) uses: resources it
  // consumes under every candidate resolution. Resources are encoded as
  // host * kKinds + kind.
  void MemberDefinite(const Member& m, const int32_t* var_host,
                      std::vector<std::pair<int32_t, double>>* out) const;
  Seconds GroupLowerBound(const GroupInfo& g, const int32_t* var_host) const;
  Seconds GroupUpperBound(const GroupInfo& g, const int32_t* var_host) const;
  Seconds CrossGroupLowerBound(const int32_t* var_host) const;

  bool distinct_ = true;
  std::vector<std::string> host_names_;
  std::unordered_map<std::string, int32_t> host_index_;
  std::vector<double> avail_;  // host * kKinds + kind, clamped at 1e15.

  std::vector<std::vector<int32_t>> var_candidates_;
  std::vector<std::unordered_set<int32_t>> var_pool_set_;
  std::vector<double> var_max_avail_;   // var * kKinds + kind.
  std::vector<double> var_min_floor_;   // var * kKinds + kind (avail / N_max).
  std::vector<char> pools_intersect_;   // var * nvars + var.

  std::vector<Member> members_;
  std::vector<GroupInfo> groups_;
  std::vector<std::vector<int>> groups_of_var_;  // Deduped group indices.
  std::vector<double> n_max_;  // Per resource: possible consumer count.
  Seconds min_group_start_ = 0;

  BoundInterval query_bounds_;
  std::vector<GroupBound> group_bounds_;
};

// The guard band covering the solver's waterfill freeze epsilons; applied
// to every bound this library reports.
Seconds GuardLowerBound(Seconds raw);
Seconds GuardUpperBound(Seconds raw);

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_BOUND_H_
