// Source positions for CloudTalk query diagnostics.
//
// Every AST node carries the span of the token that introduced it so that
// diagnostics (see diagnostics.h) can point at the offending source text
// clang-style: file:line:col plus a caret under the token.
#ifndef CLOUDTALK_SRC_LANG_SPAN_H_
#define CLOUDTALK_SRC_LANG_SPAN_H_

namespace cloudtalk {
namespace lang {

// A contiguous run of characters on one source line. Lines and columns are
// 1-based; a default-constructed span (line 0) means "no position".
struct Span {
  int line = 0;
  int column = 0;
  int length = 1;  // Characters to underline; at least 1 when valid.

  bool valid() const { return line > 0; }
  bool operator==(const Span& other) const {
    return line == other.line && column == other.column && length == other.length;
  }
};

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_SPAN_H_
