#include "src/lang/parser.h"

#include <optional>
#include <set>
#include <utility>

#include "src/lang/lexer.h"

namespace cloudtalk {
namespace lang {

namespace {

std::optional<Attr> AttrKeyword(const std::string& word) {
  if (word == "start") {
    return Attr::kStart;
  }
  if (word == "end") {
    return Attr::kEnd;
  }
  if (word == "size") {
    return Attr::kSize;
  }
  if (word == "rate") {
    return Attr::kRate;
  }
  if (word == "transfer" || word == "transferred") {
    return Attr::kTransfer;
  }
  return std::nullopt;
}

std::optional<Attr> RefKeyword(const std::string& word) {
  if (word == "st") {
    return Attr::kStart;
  }
  if (word == "e") {
    return Attr::kEnd;
  }
  if (word == "sz") {
    return Attr::kSize;
  }
  if (word == "r") {
    return Attr::kRate;
  }
  if (word == "t") {
    return Attr::kTransfer;
  }
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Run() {
    while (!Check(TokenKind::kEof)) {
      if (Check(TokenKind::kSeparator)) {
        Advance();
        continue;
      }
      if (Check(TokenKind::kIdent) && Cur().text == "option") {
        if (Error* e = ParseOption()) {
          return *e;
        }
      } else if (Check(TokenKind::kIdent) && CheckAt(1, TokenKind::kEquals)) {
        if (Error* e = ParseVarDecl()) {
          return *e;
        }
      } else if (Check(TokenKind::kIdent) && At(1).kind == TokenKind::kIdent &&
                 At(1).text == "requires") {
        if (Error* e = ParseRequirement()) {
          return *e;
        }
      } else {
        if (Error* e = ParseFlowDef()) {
          return *e;
        }
      }
      if (!Check(TokenKind::kEof) && !Check(TokenKind::kSeparator)) {
        return *MakeError("expected end of statement");
      }
    }
    if (Error* e = Validate()) {
      return *e;
    }
    return std::move(query_);
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& At(size_t offset) const {
    const size_t i = pos_ + offset;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Cur().kind == kind; }
  bool CheckAt(size_t offset, TokenKind kind) const { return At(offset).kind == kind; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }

  // Error helpers: methods return nullptr on success, &error_ on failure so
  // that `if (Error* e = ...) return *e;` reads naturally.
  Error* MakeError(std::string message) {
    error_ = Error{std::move(message), Cur().line, Cur().column};
    return &error_;
  }

  Error* Expect(TokenKind kind) {
    if (!Check(kind)) {
      return MakeError(std::string("expected ") + TokenKindName(kind) + ", got " +
                       TokenKindName(Cur().kind));
    }
    Advance();
    return nullptr;
  }

  Error* ParseOption() {
    Advance();  // 'option'
    if (!Check(TokenKind::kIdent)) {
      return MakeError("expected option name");
    }
    const std::string& opt = Cur().text;
    if (opt == "packet") {
      query_.options.use_packet_simulator = true;
    } else if (opt == "flow") {
      query_.options.use_packet_simulator = false;
    } else if (opt == "static") {
      query_.options.use_dynamic_load = false;
    } else if (opt == "dynamic") {
      query_.options.use_dynamic_load = true;
    } else if (opt == "allow_same") {
      query_.options.allow_same_binding = true;
    } else if (opt == "noreserve") {
      query_.options.reserve = false;
    } else if (opt == "threads") {
      Advance();
      if (!Check(TokenKind::kNumber)) {
        return MakeError("option threads expects a count");
      }
      const double count = Cur().number;
      if (count < 1 || count > 1024 || count != static_cast<int>(count)) {
        return MakeError("option threads expects an integer between 1 and 1024");
      }
      query_.options.eval_threads = static_cast<int>(count);
    } else {
      return MakeError("unknown option '" + opt + "'");
    }
    Advance();
    return nullptr;
  }

  Error* ParseVarDecl() {
    VarDecl decl;
    // IDENT ('=' IDENT)* '=' '(' values ')'
    while (true) {
      if (!Check(TokenKind::kIdent)) {
        return MakeError("expected variable name");
      }
      decl.names.push_back(Cur().text);
      Advance();
      if (Error* e = Expect(TokenKind::kEquals)) {
        return e;
      }
      if (Check(TokenKind::kLParen)) {
        break;
      }
    }
    Advance();  // '('
    while (!Check(TokenKind::kRParen)) {
      if (Check(TokenKind::kAddress)) {
        decl.values.push_back(Endpoint::Address(Cur().text));
        Advance();
      } else if (Check(TokenKind::kIdent)) {
        if (Cur().text == "disk") {
          decl.values.push_back(Endpoint::Disk());
        } else {
          decl.values.push_back(Endpoint::Address(Cur().text));
        }
        Advance();
      } else {
        return MakeError("expected server address in value pool");
      }
    }
    Advance();  // ')'
    if (decl.values.empty()) {
      return MakeError("variable pool must not be empty");
    }
    for (const std::string& name : decl.names) {
      if (!declared_vars_.insert(name).second) {
        return MakeError("variable '" + name + "' declared twice");
      }
    }
    query_.variables.push_back(std::move(decl));
    return nullptr;
  }

  // IDENT 'requires' ('cpu' NUMBER | 'mem' NUMBER)+ — Section 7 extension.
  Error* ParseRequirement() {
    Requirement req;
    req.var = Cur().text;
    if (declared_vars_.count(req.var) == 0) {
      return MakeError("requirement for undeclared variable '" + req.var + "'");
    }
    Advance();  // var name
    Advance();  // 'requires'
    bool any = false;
    while (Check(TokenKind::kIdent) && (Cur().text == "cpu" || Cur().text == "mem")) {
      const bool is_cpu = Cur().text == "cpu";
      Advance();
      if (!Check(TokenKind::kNumber)) {
        return MakeError(std::string("expected number after '") + (is_cpu ? "cpu" : "mem") +
                         "'");
      }
      if (is_cpu) {
        req.cpu_cores = Cur().number;
      } else {
        req.memory = Cur().number;
      }
      Advance();
      any = true;
    }
    if (!any) {
      return MakeError("'requires' needs at least one of: cpu <n>, mem <bytes>");
    }
    for (const Requirement& existing : query_.requirements) {
      if (existing.var == req.var) {
        return MakeError("duplicate requirement for variable '" + req.var + "'");
      }
    }
    query_.requirements.push_back(std::move(req));
    return nullptr;
  }

  Error* ParseEndpoint(Endpoint* out) {
    if (Check(TokenKind::kAddress)) {
      *out = Cur().text == "0.0.0.0" ? Endpoint::Unknown() : Endpoint::Address(Cur().text);
      Advance();
      return nullptr;
    }
    if (Check(TokenKind::kIdent)) {
      if (Cur().text == "disk") {
        *out = Endpoint::Disk();
      } else if (declared_vars_.count(Cur().text) > 0) {
        *out = Endpoint::Variable(Cur().text);
      } else {
        *out = Endpoint::Address(Cur().text);
      }
      Advance();
      return nullptr;
    }
    return MakeError("expected flow endpoint");
  }

  Error* ParseFlowDef() {
    FlowDef flow;
    // Optional leading name: present iff the token after it is NOT an arrow
    // (i.e. "name src -> dst" vs "src -> dst").
    if (Check(TokenKind::kIdent) && !CheckAt(1, TokenKind::kArrow) &&
        Cur().text != "disk") {
      flow.name = Cur().text;
      flow.explicit_name = true;
      Advance();
    }
    if (Error* e = ParseEndpoint(&flow.src)) {
      return e;
    }
    if (Error* e = Expect(TokenKind::kArrow)) {
      return e;
    }
    if (Error* e = ParseEndpoint(&flow.dst)) {
      return e;
    }
    while (Check(TokenKind::kIdent)) {
      const std::optional<Attr> attr = AttrKeyword(Cur().text);
      if (!attr.has_value()) {
        return MakeError("unknown flow attribute '" + Cur().text + "'");
      }
      Advance();
      ExprPtr value;
      if (Error* e = ParseExpr(&value)) {
        return e;
      }
      for (const AttrValue& existing : flow.attrs) {
        if (existing.attr == *attr) {
          return MakeError(std::string("duplicate attribute '") + AttrName(*attr) + "'");
        }
      }
      flow.attrs.push_back(AttrValue{*attr, std::move(value)});
    }
    if (!flow.explicit_name) {
      flow.name = "_f" + std::to_string(query_.flows.size() + 1);
    }
    for (const FlowDef& existing : query_.flows) {
      if (existing.name == flow.name) {
        return MakeError("flow '" + flow.name + "' defined twice");
      }
    }
    if (flow.src.kind == Endpoint::Kind::kDisk && flow.dst.kind == Endpoint::Kind::kDisk) {
      return MakeError("flow cannot connect disk to disk");
    }
    query_.flows.push_back(std::move(flow));
    return nullptr;
  }

  Error* ParseExpr(ExprPtr* out) {
    if (Error* e = ParseMul(out)) {
      return e;
    }
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const char op = Check(TokenKind::kPlus) ? '+' : '-';
      Advance();
      ExprPtr rhs;
      if (Error* e = ParseMul(&rhs)) {
        return e;
      }
      *out = Expr::Binary(op, std::move(*out), std::move(rhs));
    }
    return nullptr;
  }

  Error* ParseMul(ExprPtr* out) {
    if (Error* e = ParsePrimary(out)) {
      return e;
    }
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      const char op = Check(TokenKind::kStar) ? '*' : '/';
      Advance();
      ExprPtr rhs;
      if (Error* e = ParsePrimary(&rhs)) {
        return e;
      }
      *out = Expr::Binary(op, std::move(*out), std::move(rhs));
    }
    return nullptr;
  }

  Error* ParsePrimary(ExprPtr* out) {
    if (Check(TokenKind::kNumber)) {
      *out = Expr::Literal(Cur().number);
      Advance();
      return nullptr;
    }
    if (Check(TokenKind::kMinus)) {
      Advance();
      ExprPtr operand;
      if (Error* e = ParsePrimary(&operand)) {
        return e;
      }
      *out = Expr::Binary('-', Expr::Literal(0), std::move(operand));
      return nullptr;
    }
    if (Check(TokenKind::kLParen)) {
      Advance();
      if (Error* e = ParseExpr(out)) {
        return e;
      }
      return Expect(TokenKind::kRParen);
    }
    if (Check(TokenKind::kIdent)) {
      const std::optional<Attr> ref = RefKeyword(Cur().text);
      if (!ref.has_value()) {
        return MakeError("expected value, got identifier '" + Cur().text + "'");
      }
      Advance();
      if (Error* e = Expect(TokenKind::kLParen)) {
        return e;
      }
      if (!Check(TokenKind::kIdent)) {
        return MakeError("expected flow name inside reference");
      }
      const std::string flow_name = Cur().text;
      Advance();
      if (Error* e = Expect(TokenKind::kRParen)) {
        return e;
      }
      *out = Expr::Ref(*ref, flow_name);
      return nullptr;
    }
    return MakeError(std::string("expected expression, got ") + TokenKindName(Cur().kind));
  }

  // Post-parse validation that needs the whole query.
  Error* Validate() {
    // Every flow reference must name a defined flow.
    for (const FlowDef& flow : query_.flows) {
      for (const AttrValue& av : flow.attrs) {
        if (Error* e = ValidateRefs(*av.value, flow)) {
          return e;
        }
      }
    }
    return nullptr;
  }

  Error* ValidateRefs(const Expr& expr, const FlowDef& owner) {
    switch (expr.kind) {
      case Expr::Kind::kLiteral:
        return nullptr;
      case Expr::Kind::kRef:
        if (query_.FindFlow(expr.ref_flow) == nullptr) {
          error_ = Error{"flow '" + owner.name + "' references undefined flow '" +
                         expr.ref_flow + "'"};
          return &error_;
        }
        return nullptr;
      case Expr::Kind::kBinary:
        if (Error* e = ValidateRefs(*expr.lhs, owner)) {
          return e;
        }
        return ValidateRefs(*expr.rhs, owner);
    }
    return nullptr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Query query_;
  std::set<std::string> declared_vars_;
  Error error_;
};

}  // namespace

Result<Query> Parse(std::string_view input) {
  Result<std::vector<Token>> tokens = Tokenize(input);
  if (!tokens.ok()) {
    return tokens.error();
  }
  return Parser(std::move(tokens).value()).Run();
}

}  // namespace lang
}  // namespace cloudtalk
