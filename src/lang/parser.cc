#include "src/lang/parser.h"

#include <optional>
#include <set>
#include <utility>

#include "src/lang/lexer.h"

namespace cloudtalk {
namespace lang {

namespace {

std::optional<Attr> AttrKeyword(const std::string& word) {
  if (word == "start") {
    return Attr::kStart;
  }
  if (word == "end") {
    return Attr::kEnd;
  }
  if (word == "size") {
    return Attr::kSize;
  }
  if (word == "rate") {
    return Attr::kRate;
  }
  if (word == "transfer" || word == "transferred") {
    return Attr::kTransfer;
  }
  return std::nullopt;
}

std::optional<Attr> RefKeyword(const std::string& word) {
  if (word == "st") {
    return Attr::kStart;
  }
  if (word == "e") {
    return Attr::kEnd;
  }
  if (word == "sz") {
    return Attr::kSize;
  }
  if (word == "r") {
    return Attr::kRate;
  }
  if (word == "t") {
    return Attr::kTransfer;
  }
  return std::nullopt;
}

// Recursive-descent parser reporting through a DiagnosticSink. Statement
// methods return false after recording a diagnostic; the driver then skips
// to the next statement separator and keeps going, so a single pass
// surfaces every syntax error in the query.
class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticSink* sink)
      : tokens_(std::move(tokens)), sink_(sink) {}

  Query Run() {
    while (!Check(TokenKind::kEof)) {
      if (Check(TokenKind::kSeparator)) {
        Advance();
        continue;
      }
      bool ok;
      if (Check(TokenKind::kIdent) && Cur().text == "option") {
        ok = ParseOption();
      } else if (Check(TokenKind::kIdent) && CheckAt(1, TokenKind::kEquals)) {
        ok = ParseVarDecl();
      } else if (Check(TokenKind::kIdent) && At(1).kind == TokenKind::kIdent &&
                 At(1).text == "requires") {
        ok = ParseRequirement();
      } else {
        ok = ParseFlowDef();
      }
      if (ok && !Check(TokenKind::kEof) && !Check(TokenKind::kSeparator)) {
        ok = Fail("E001", "expected end of statement");
      }
      if (!ok) {
        Synchronize();
      }
    }
    Validate();
    return std::move(query_);
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& At(size_t offset) const {
    const size_t i = pos_ + offset;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Cur().kind == kind; }
  bool CheckAt(size_t offset, TokenKind kind) const { return At(offset).kind == kind; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) {
      ++pos_;
    }
  }

  // Skips to the next statement boundary after an error.
  void Synchronize() {
    while (!Check(TokenKind::kEof) && !Check(TokenKind::kSeparator)) {
      if (pos_ + 1 >= tokens_.size()) {
        return;
      }
      Advance();
    }
  }

  // Records an error at the current token and returns false so that
  // `return Fail(...)` reads naturally in the statement methods.
  bool Fail(std::string code, std::string message, std::string hint = "") {
    sink_->AddError(std::move(code), Cur().span(), std::move(message), std::move(hint));
    return false;
  }

  bool Expect(TokenKind kind) {
    if (!Check(kind)) {
      return Fail("E001", std::string("expected ") + TokenKindName(kind) + ", got " +
                              TokenKindName(Cur().kind));
    }
    Advance();
    return true;
  }

  bool ParseOption() {
    Advance();  // 'option'
    if (!Check(TokenKind::kIdent)) {
      return Fail("E004", "expected option name");
    }
    const std::string& opt = Cur().text;
    if (opt == "packet") {
      query_.options.use_packet_simulator = true;
    } else if (opt == "flow") {
      query_.options.use_packet_simulator = false;
    } else if (opt == "static") {
      query_.options.use_dynamic_load = false;
    } else if (opt == "dynamic") {
      query_.options.use_dynamic_load = true;
    } else if (opt == "allow_same") {
      query_.options.allow_same_binding = true;
    } else if (opt == "noreserve") {
      query_.options.reserve = false;
    } else if (opt == "optimize") {
      query_.options.optimize = 1;
    } else if (opt == "no_optimize") {
      query_.options.optimize = -1;
    } else if (opt == "threads") {
      Advance();
      if (!Check(TokenKind::kNumber)) {
        return Fail("E006", "option threads expects a count");
      }
      const double count = Cur().number;
      if (count < 1 || count > 1024 || count != static_cast<int>(count)) {
        return Fail("E006", "option threads expects an integer between 1 and 1024");
      }
      query_.options.eval_threads = static_cast<int>(count);
    } else {
      return Fail("E004", "unknown option '" + opt + "'",
                  "known options: packet, flow, static, dynamic, allow_same, noreserve, "
                  "optimize, no_optimize, threads <n>");
    }
    Advance();
    return true;
  }

  bool ParseVarDecl() {
    VarDecl decl;
    // IDENT ('=' IDENT)* '=' '(' values ')'
    while (true) {
      if (!Check(TokenKind::kIdent)) {
        return Fail("E001", "expected variable name");
      }
      if (decl.names.empty()) {
        decl.span = Cur().span();
      }
      decl.names.push_back(Cur().text);
      decl.name_spans.push_back(Cur().span());
      Advance();
      if (!Expect(TokenKind::kEquals)) {
        return false;
      }
      if (Check(TokenKind::kLParen)) {
        break;
      }
    }
    Advance();  // '('
    while (!Check(TokenKind::kRParen)) {
      if (Check(TokenKind::kAddress)) {
        decl.values.push_back(Endpoint::Address(Cur().text));
        decl.value_spans.push_back(Cur().span());
        Advance();
      } else if (Check(TokenKind::kIdent)) {
        if (Cur().text == "disk") {
          decl.values.push_back(Endpoint::Disk());
        } else {
          decl.values.push_back(Endpoint::Address(Cur().text));
        }
        decl.value_spans.push_back(Cur().span());
        Advance();
      } else {
        return Fail("E001", "expected server address in value pool");
      }
    }
    Advance();  // ')'
    if (decl.values.empty()) {
      // E010: the query would have no candidate to bind; recorded as an
      // error, but the declaration is kept so later uses still resolve.
      sink_->AddError("E010", decl.span,
                      "variable pool of '" + decl.names.front() + "' is empty",
                      "add at least one candidate endpoint to the pool");
    }
    for (size_t i = 0; i < decl.names.size(); ++i) {
      if (!declared_vars_.insert(decl.names[i]).second) {
        sink_->AddError("E002", decl.name_spans[i],
                        "variable '" + decl.names[i] + "' declared twice",
                        "merge the pools or rename one declaration");
      }
    }
    query_.variables.push_back(std::move(decl));
    return true;
  }

  // IDENT 'requires' ('cpu' NUMBER | 'mem' NUMBER)+ — Section 7 extension.
  bool ParseRequirement() {
    Requirement req;
    req.var = Cur().text;
    req.span = Cur().span();
    const bool declared = declared_vars_.count(req.var) > 0;
    if (!declared) {
      sink_->AddError("E003", req.span,
                      "requirement for undeclared variable '" + req.var + "'",
                      "declare the variable before constraining it");
    }
    Advance();  // var name
    Advance();  // 'requires'
    bool any = false;
    while (Check(TokenKind::kIdent) && (Cur().text == "cpu" || Cur().text == "mem")) {
      const bool is_cpu = Cur().text == "cpu";
      Advance();
      if (!Check(TokenKind::kNumber)) {
        return Fail("E001", std::string("expected number after '") + (is_cpu ? "cpu" : "mem") +
                                "'");
      }
      if (is_cpu) {
        req.cpu_cores = Cur().number;
      } else {
        req.memory = Cur().number;
      }
      Advance();
      any = true;
    }
    if (!any) {
      return Fail("E001", "'requires' needs at least one of: cpu <n>, mem <bytes>");
    }
    for (const Requirement& existing : query_.requirements) {
      if (existing.var == req.var) {
        sink_->AddError("E002", req.span,
                        "duplicate requirement for variable '" + req.var + "'",
                        "merge the constraints into one 'requires' statement");
        return true;
      }
    }
    if (declared) {
      query_.requirements.push_back(std::move(req));
    }
    return true;
  }

  bool ParseEndpoint(Endpoint* out, Span* span) {
    *span = Cur().span();
    if (Check(TokenKind::kAddress)) {
      *out = Cur().text == "0.0.0.0" ? Endpoint::Unknown() : Endpoint::Address(Cur().text);
      Advance();
      return true;
    }
    if (Check(TokenKind::kIdent)) {
      if (Cur().text == "disk") {
        *out = Endpoint::Disk();
      } else if (declared_vars_.count(Cur().text) > 0) {
        *out = Endpoint::Variable(Cur().text);
      } else {
        *out = Endpoint::Address(Cur().text);
      }
      Advance();
      return true;
    }
    return Fail("E001", "expected flow endpoint");
  }

  bool ParseFlowDef() {
    FlowDef flow;
    flow.span = Cur().span();
    // Optional leading name: present iff the token after it is NOT an arrow
    // (i.e. "name src -> dst" vs "src -> dst").
    if (Check(TokenKind::kIdent) && !CheckAt(1, TokenKind::kArrow) &&
        Cur().text != "disk") {
      flow.name = Cur().text;
      flow.explicit_name = true;
      Advance();
    }
    if (!ParseEndpoint(&flow.src, &flow.src_span)) {
      return false;
    }
    if (!Expect(TokenKind::kArrow)) {
      return false;
    }
    if (!ParseEndpoint(&flow.dst, &flow.dst_span)) {
      return false;
    }
    while (Check(TokenKind::kIdent)) {
      const std::optional<Attr> attr = AttrKeyword(Cur().text);
      if (!attr.has_value()) {
        return Fail("E004", "unknown flow attribute '" + Cur().text + "'",
                    "attributes: start, end, size, rate, transfer");
      }
      const Span attr_span = Cur().span();
      Advance();
      ExprPtr value;
      if (!ParseExpr(&value)) {
        return false;
      }
      bool duplicate = false;
      for (const AttrValue& existing : flow.attrs) {
        if (existing.attr == *attr) {
          sink_->AddError("E002", attr_span,
                          std::string("duplicate attribute '") + AttrName(*attr) + "'",
                          "each attribute may appear at most once per flow");
          duplicate = true;
        }
      }
      if (!duplicate) {
        flow.attrs.push_back(AttrValue{*attr, std::move(value), attr_span});
      }
    }
    if (!flow.explicit_name) {
      flow.name = "_f" + std::to_string(query_.flows.size() + 1);
    }
    for (const FlowDef& existing : query_.flows) {
      if (existing.name == flow.name) {
        sink_->AddError("E002", flow.span, "flow '" + flow.name + "' defined twice",
                        "rename one of the definitions");
      }
    }
    if (flow.src.kind == Endpoint::Kind::kDisk && flow.dst.kind == Endpoint::Kind::kDisk) {
      sink_->AddError("E005", flow.span, "flow cannot connect disk to disk",
                      "a disk endpoint is the local disk of the flow's other endpoint");
    }
    query_.flows.push_back(std::move(flow));
    return true;
  }

  bool ParseExpr(ExprPtr* out) {
    if (!ParseMul(out)) {
      return false;
    }
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      const char op = Check(TokenKind::kPlus) ? '+' : '-';
      const Span op_span = Cur().span();
      Advance();
      ExprPtr rhs;
      if (!ParseMul(&rhs)) {
        return false;
      }
      *out = Expr::Binary(op, std::move(*out), std::move(rhs));
      (*out)->span = op_span;
    }
    return true;
  }

  bool ParseMul(ExprPtr* out) {
    if (!ParsePrimary(out)) {
      return false;
    }
    while (Check(TokenKind::kStar) || Check(TokenKind::kSlash)) {
      const char op = Check(TokenKind::kStar) ? '*' : '/';
      const Span op_span = Cur().span();
      Advance();
      ExprPtr rhs;
      if (!ParsePrimary(&rhs)) {
        return false;
      }
      *out = Expr::Binary(op, std::move(*out), std::move(rhs));
      (*out)->span = op_span;
    }
    return true;
  }

  bool ParsePrimary(ExprPtr* out) {
    if (Check(TokenKind::kNumber)) {
      *out = Expr::Literal(Cur().number);
      (*out)->span = Cur().span();
      Advance();
      return true;
    }
    if (Check(TokenKind::kMinus)) {
      const Span minus_span = Cur().span();
      Advance();
      ExprPtr operand;
      if (!ParsePrimary(&operand)) {
        return false;
      }
      *out = Expr::Binary('-', Expr::Literal(0), std::move(operand));
      (*out)->span = minus_span;
      return true;
    }
    if (Check(TokenKind::kLParen)) {
      Advance();
      if (!ParseExpr(out)) {
        return false;
      }
      return Expect(TokenKind::kRParen);
    }
    if (Check(TokenKind::kIdent)) {
      const std::optional<Attr> ref = RefKeyword(Cur().text);
      if (!ref.has_value()) {
        return Fail("E001", "expected value, got identifier '" + Cur().text + "'",
                    "references are st(f), e(f), sz(f), r(f), t(f)");
      }
      const Span ref_span = Cur().span();
      Advance();
      if (!Expect(TokenKind::kLParen)) {
        return false;
      }
      if (!Check(TokenKind::kIdent)) {
        return Fail("E001", "expected flow name inside reference");
      }
      const std::string flow_name = Cur().text;
      Advance();
      if (!Expect(TokenKind::kRParen)) {
        return false;
      }
      *out = Expr::Ref(*ref, flow_name);
      (*out)->span = ref_span;
      return true;
    }
    return Fail("E001", std::string("expected expression, got ") + TokenKindName(Cur().kind));
  }

  // Post-parse validation that needs the whole query. Reports every
  // undefined flow reference, not just the first.
  void Validate() {
    for (const FlowDef& flow : query_.flows) {
      for (const AttrValue& av : flow.attrs) {
        ValidateRefs(*av.value, flow);
      }
    }
  }

  void ValidateRefs(const Expr& expr, const FlowDef& owner) {
    switch (expr.kind) {
      case Expr::Kind::kLiteral:
        return;
      case Expr::Kind::kRef:
        if (query_.FindFlow(expr.ref_flow) == nullptr) {
          sink_->AddError("E003", expr.span.valid() ? expr.span : owner.span,
                          "flow '" + owner.name + "' references undefined flow '" +
                              expr.ref_flow + "'",
                          "only named flows defined in this query can be referenced");
        }
        return;
      case Expr::Kind::kBinary:
        ValidateRefs(*expr.lhs, owner);
        ValidateRefs(*expr.rhs, owner);
        return;
    }
  }

  std::vector<Token> tokens_;
  DiagnosticSink* sink_;
  size_t pos_ = 0;
  Query query_;
  std::set<std::string> declared_vars_;
};

}  // namespace

Query ParseWithDiagnostics(std::string_view input, DiagnosticSink* sink) {
  std::vector<Token> tokens = TokenizeWithDiagnostics(input, sink);
  return Parser(std::move(tokens), sink).Run();
}

Result<Query> Parse(std::string_view input) {
  DiagnosticSink sink;
  Query query = ParseWithDiagnostics(input, &sink);
  if (sink.has_errors()) {
    return sink.ToLegacyError();
  }
  return query;
}

}  // namespace lang
}  // namespace cloudtalk
