// Recursive-descent parser for the CloudTalk language.
//
// Grammar (Table 1 of the paper; statements separated by ';' or newline):
//
//   query    := { stmt }
//   stmt     := vardecl | flowdef | option
//   vardecl  := IDENT '=' { IDENT '=' } '(' { value } ')'
//   value    := ADDRESS | IDENT | 'disk'
//   flowdef  := [IDENT] endpoint '->' endpoint { attr expr }
//   endpoint := ADDRESS | IDENT | 'disk'        (0.0.0.0 = unknown source)
//   attr     := 'start' | 'end' | 'size' | 'rate' | 'transfer'
//   expr     := mul { ('+'|'-') mul }
//   mul      := prim { ('*'|'/') prim }
//   prim     := NUMBER | REF '(' IDENT ')' | '(' expr ')' | '-' prim
//   REF      := 'st' | 'e' | 'sz' | 'r' | 't'
//   option   := 'option' IDENT                  (extension, see QueryOptions)
//
// An identifier used as a flow endpoint resolves to a variable if a variable
// of that name was declared earlier in the query, otherwise it denotes a
// literal server name. Numeric literals accept K/M/G binary suffixes
// (optionally followed by B): 256M, 10KB, 1G.
#ifndef CLOUDTALK_SRC_LANG_PARSER_H_
#define CLOUDTALK_SRC_LANG_PARSER_H_

#include <string_view>

#include "src/common/result.h"
#include "src/lang/ast.h"
#include "src/lang/diagnostics.h"

namespace cloudtalk {
namespace lang {

// Parses a full query. Performs the syntactic checks plus basic semantic
// validation: duplicate variable/flow names, empty value pools, references
// to undefined flows, and disk-to-disk flows are rejected. On failure the
// returned Error is the first diagnostic (with line/column); callers that
// want all of them use ParseWithDiagnostics.
Result<Query> Parse(std::string_view input);

// Parses `input`, accumulating every lexical, syntactic, and declaration
// error into `sink` (the parser re-synchronizes at statement boundaries
// instead of stopping at the first problem). The returned Query is complete
// when `!sink->has_errors()` and best-effort partial otherwise — suitable
// for further lint analysis but not for evaluation.
Query ParseWithDiagnostics(std::string_view input, DiagnosticSink* sink);

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_PARSER_H_
