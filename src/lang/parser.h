// Recursive-descent parser for the CloudTalk language.
//
// Grammar (Table 1 of the paper; statements separated by ';' or newline):
//
//   query    := { stmt }
//   stmt     := vardecl | flowdef | option
//   vardecl  := IDENT '=' { IDENT '=' } '(' { value } ')'
//   value    := ADDRESS | IDENT | 'disk'
//   flowdef  := [IDENT] endpoint '->' endpoint { attr expr }
//   endpoint := ADDRESS | IDENT | 'disk'        (0.0.0.0 = unknown source)
//   attr     := 'start' | 'end' | 'size' | 'rate' | 'transfer'
//   expr     := mul { ('+'|'-') mul }
//   mul      := prim { ('*'|'/') prim }
//   prim     := NUMBER | REF '(' IDENT ')' | '(' expr ')' | '-' prim
//   REF      := 'st' | 'e' | 'sz' | 'r' | 't'
//   option   := 'option' IDENT                  (extension, see QueryOptions)
//
// An identifier used as a flow endpoint resolves to a variable if a variable
// of that name was declared earlier in the query, otherwise it denotes a
// literal server name. Numeric literals accept K/M/G binary suffixes
// (optionally followed by B): 256M, 10KB, 1G.
#ifndef CLOUDTALK_SRC_LANG_PARSER_H_
#define CLOUDTALK_SRC_LANG_PARSER_H_

#include <string_view>

#include "src/common/result.h"
#include "src/lang/ast.h"

namespace cloudtalk {
namespace lang {

// Parses a full query. Performs the syntactic checks plus basic semantic
// validation: duplicate variable/flow names, empty value pools, references
// to undefined flows, and disk-to-disk flows are rejected.
Result<Query> Parse(std::string_view input);

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_PARSER_H_
