// Multi-diagnostic error reporting for the CloudTalk query language.
//
// The lexer, parser, semantic analysis, and lint rules all report through a
// DiagnosticSink instead of failing fast: a single pass over a query yields
// every problem at once, each with a stable rule code, a source span, a
// message, and (where one exists) a fix-it hint. Renderers produce either
// clang-style text (source line + caret) or machine-readable JSON for CI.
//
// Rule codes are stable API: Exxx are errors (the query cannot be answered),
// Wxxx are warnings (legal but suspect; the server answers anyway). The full
// list lives in docs/LANGUAGE.md and src/lang/lint.h.
#ifndef CLOUDTALK_SRC_LANG_DIAGNOSTICS_H_
#define CLOUDTALK_SRC_LANG_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/lang/span.h"

namespace cloudtalk {
namespace lang {

enum class Severity { kNote, kWarning, kError };

const char* SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;  // "E001", "W020", ... (stable; see docs/LANGUAGE.md).
  Span span;
  std::string message;
  std::string hint;  // Optional fix-it suggestion; empty when none applies.
};

// Accumulates diagnostics. Exact duplicates (same code and span) are dropped
// so that overlapping producers (e.g. the parser and a lint rule both
// flagging an empty pool) do not double-report.
class DiagnosticSink {
 public:
  void Add(Diagnostic diagnostic);
  void AddError(std::string code, Span span, std::string message, std::string hint = "");
  void AddWarning(std::string code, Span span, std::string message, std::string hint = "");

  bool empty() const { return diagnostics_.empty(); }
  bool has_errors() const { return error_count_ > 0; }
  int error_count() const { return error_count_; }
  int warning_count() const { return warning_count_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

  // Highest severity seen; kNote when the sink is empty.
  Severity max_severity() const;

  // Reorders diagnostics by (line, column) for presentation; emission order
  // is preserved among diagnostics at the same position.
  void SortByPosition();

  // Promotes every warning to an error (ctlint --werror).
  void PromoteWarnings();

  // First error as a legacy Error for Result<T>-returning wrappers. The
  // message carries the rule code; line/column come from the span.
  // Precondition: has_errors().
  cloudtalk::Error ToLegacyError() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  int error_count_ = 0;
  int warning_count_ = 0;
};

// Renders one diagnostic clang-style. `source` is the full query text (used
// to echo the offending line under a caret); `filename` prefixes the
// location ("<query>" is a reasonable default for non-file input).
std::string FormatDiagnostic(const Diagnostic& diagnostic, std::string_view source,
                             std::string_view filename);

// Renders all diagnostics followed by a "N errors, M warnings" summary.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source, std::string_view filename);

// Machine-readable rendering for CI:
//   {"file": ..., "errors": N, "warnings": M, "diagnostics": [...]}
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view filename);

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_DIAGNOSTICS_H_
