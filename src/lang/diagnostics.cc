#include "src/lang/diagnostics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cloudtalk {
namespace lang {

namespace {

// Extracts 1-based line `line` from `source` (without the trailing newline).
std::string_view SourceLine(std::string_view source, int line) {
  size_t start = 0;
  for (int i = 1; i < line; ++i) {
    const size_t nl = source.find('\n', start);
    if (nl == std::string_view::npos) {
      return {};
    }
    start = nl + 1;
  }
  const size_t end = source.find('\n', start);
  return source.substr(start, end == std::string_view::npos ? end : end - start);
}

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

void DiagnosticSink::Add(Diagnostic diagnostic) {
  for (const Diagnostic& existing : diagnostics_) {
    if (existing.code == diagnostic.code && existing.span.line == diagnostic.span.line &&
        existing.span.column == diagnostic.span.column) {
      return;
    }
  }
  if (diagnostic.severity == Severity::kError) {
    ++error_count_;
  } else if (diagnostic.severity == Severity::kWarning) {
    ++warning_count_;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void DiagnosticSink::AddError(std::string code, Span span, std::string message,
                              std::string hint) {
  Add(Diagnostic{Severity::kError, std::move(code), span, std::move(message),
                 std::move(hint)});
}

void DiagnosticSink::AddWarning(std::string code, Span span, std::string message,
                                std::string hint) {
  Add(Diagnostic{Severity::kWarning, std::move(code), span, std::move(message),
                 std::move(hint)});
}

Severity DiagnosticSink::max_severity() const {
  Severity max = Severity::kNote;
  for (const Diagnostic& d : diagnostics_) {
    if (static_cast<int>(d.severity) > static_cast<int>(max)) {
      max = d.severity;
    }
  }
  return max;
}

void DiagnosticSink::SortByPosition() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.span.line != b.span.line) {
                       return a.span.line < b.span.line;
                     }
                     return a.span.column < b.span.column;
                   });
}

void DiagnosticSink::PromoteWarnings() {
  for (Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kWarning) {
      d.severity = Severity::kError;
      --warning_count_;
      ++error_count_;
    }
  }
}

cloudtalk::Error DiagnosticSink::ToLegacyError() const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kError) {
      return cloudtalk::Error{d.message + " [" + d.code + "]", d.span.line, d.span.column};
    }
  }
  return cloudtalk::Error{"no error recorded"};
}

std::string FormatDiagnostic(const Diagnostic& diagnostic, std::string_view source,
                             std::string_view filename) {
  std::ostringstream os;
  os << filename;
  if (diagnostic.span.valid()) {
    os << ":" << diagnostic.span.line << ":" << diagnostic.span.column;
  }
  os << ": " << SeverityName(diagnostic.severity) << ": " << diagnostic.message << " ["
     << diagnostic.code << "]\n";
  if (diagnostic.span.valid()) {
    const std::string_view line = SourceLine(source, diagnostic.span.line);
    if (!line.empty()) {
      os << "  " << line << "\n  ";
      const int caret_col = diagnostic.span.column;
      for (int i = 1; i < caret_col && static_cast<size_t>(i) <= line.size(); ++i) {
        os << (line[i - 1] == '\t' ? '\t' : ' ');
      }
      os << '^';
      const int underline = std::min(diagnostic.span.length - 1,
                                     static_cast<int>(line.size()) - caret_col);
      for (int i = 0; i < underline; ++i) {
        os << '~';
      }
      os << "\n";
    }
  }
  if (!diagnostic.hint.empty()) {
    os << "  hint: " << diagnostic.hint << "\n";
  }
  return os.str();
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source, std::string_view filename) {
  std::string out;
  int errors = 0;
  int warnings = 0;
  for (const Diagnostic& d : diagnostics) {
    out += FormatDiagnostic(d, source, filename);
    if (d.severity == Severity::kError) {
      ++errors;
    } else if (d.severity == Severity::kWarning) {
      ++warnings;
    }
  }
  out += std::to_string(errors) + " error" + (errors == 1 ? "" : "s") + ", " +
         std::to_string(warnings) + " warning" + (warnings == 1 ? "" : "s") + "\n";
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view filename) {
  std::string out = "{\"file\": ";
  AppendJsonString(&out, filename);
  int errors = 0;
  int warnings = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) {
      ++errors;
    } else if (d.severity == Severity::kWarning) {
      ++warnings;
    }
  }
  out += ", \"errors\": " + std::to_string(errors);
  out += ", \"warnings\": " + std::to_string(warnings);
  out += ", \"diagnostics\": [";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) {
      out += ", ";
    }
    out += "{\"severity\": ";
    AppendJsonString(&out, SeverityName(d.severity));
    out += ", \"code\": ";
    AppendJsonString(&out, d.code);
    out += ", \"line\": " + std::to_string(d.span.line);
    out += ", \"column\": " + std::to_string(d.span.column);
    out += ", \"length\": " + std::to_string(d.span.length);
    out += ", \"message\": ";
    AppendJsonString(&out, d.message);
    if (!d.hint.empty()) {
      out += ", \"hint\": ";
      AppendJsonString(&out, d.hint);
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace lang
}  // namespace cloudtalk
