#include "src/lang/lexer.h"

#include <cctype>
#include <cstdlib>

namespace cloudtalk {
namespace lang {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

class Scanner {
 public:
  Scanner(std::string_view input, DiagnosticSink* sink) : input_(input), sink_(sink) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    while (!AtEnd()) {
      SkipSpacesAndComments();
      if (AtEnd()) {
        break;
      }
      const int line = line_;
      const int column = column_;
      const char c = Peek();
      Token token;
      token.line = line;
      token.column = column;
      if (c == '\n' || c == ';') {
        Advance();
        // Collapse runs of separators.
        if (!tokens.empty() && tokens.back().kind != TokenKind::kSeparator) {
          token.kind = TokenKind::kSeparator;
          tokens.push_back(token);
        }
        continue;
      }
      if (c == '=') {
        Advance();
        token.kind = TokenKind::kEquals;
      } else if (c == '(') {
        Advance();
        token.kind = TokenKind::kLParen;
      } else if (c == ')') {
        Advance();
        token.kind = TokenKind::kRParen;
      } else if (c == '+') {
        Advance();
        token.kind = TokenKind::kPlus;
      } else if (c == '*') {
        Advance();
        token.kind = TokenKind::kStar;
      } else if (c == '/') {
        Advance();
        token.kind = TokenKind::kSlash;
      } else if (c == '>') {
        Advance();
        token.kind = TokenKind::kArrow;
      } else if (c == '-') {
        Advance();
        if (!AtEnd() && Peek() == '>') {
          Advance();
          token.kind = TokenKind::kArrow;
          token.length = 2;
        } else {
          token.kind = TokenKind::kMinus;
        }
      } else if (IsDigit(c)) {
        if (!ScanNumberOrAddress(line, column, &token)) {
          continue;  // Diagnostic recorded; offending characters skipped.
        }
      } else if (IsIdentStart(c)) {
        std::string text;
        while (!AtEnd() && IsIdentChar(Peek())) {
          text.push_back(Peek());
          Advance();
        }
        token.kind = TokenKind::kIdent;
        token.length = static_cast<int>(text.size());
        token.text = std::move(text);
      } else {
        sink_->AddError("E001", Span{line, column, 1},
                        std::string("unexpected character '") + c + "'");
        Advance();
        continue;
      }
      tokens.push_back(std::move(token));
    }
    // Drop a trailing separator; append EOF.
    if (!tokens.empty() && tokens.back().kind == TokenKind::kSeparator) {
      tokens.pop_back();
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.column = column_;
    tokens.push_back(eof);
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }
  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipSpacesAndComments() {
    while (!AtEnd()) {
      const char c = Peek();
      if (c == ' ' || c == '\t' || c == '\r') {
        Advance();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
      } else {
        break;
      }
    }
  }

  // A token starting with a digit is either a dotted-quad address
  // (1.2.3.4) or a number with an optional K/M/G (and optional B) suffix.
  // Returns false (with a diagnostic recorded and the characters consumed)
  // on a malformed literal.
  bool ScanNumberOrAddress(int line, int column, Token* token) {
    std::string text;
    int dots = 0;
    size_t probe = 0;
    while (true) {
      const char c = PeekAt(probe);
      if (IsDigit(c)) {
        ++probe;
      } else if (c == '.' && IsDigit(PeekAt(probe + 1))) {
        ++dots;
        ++probe;
      } else {
        break;
      }
    }
    token->line = line;
    token->column = column;
    if (dots == 3) {
      for (size_t i = 0; i < probe; ++i) {
        text.push_back(Peek());
        Advance();
      }
      token->kind = TokenKind::kAddress;
      token->length = static_cast<int>(text.size());
      token->text = std::move(text);
      return true;
    }
    if (dots > 1) {
      sink_->AddError("E001", Span{line, column, static_cast<int>(probe)},
                      "malformed numeric literal",
                      "numbers take one decimal point; addresses are dotted quads");
      for (size_t i = 0; i < probe; ++i) {
        Advance();
      }
      return false;
    }
    for (size_t i = 0; i < probe; ++i) {
      text.push_back(Peek());
      Advance();
    }
    double value = std::strtod(text.c_str(), nullptr);
    int length = static_cast<int>(probe);
    // Optional binary magnitude suffix, optionally followed by B: 256M, 10KB.
    if (!AtEnd()) {
      const char suffix = static_cast<char>(std::toupper(static_cast<unsigned char>(Peek())));
      double scale = 0;
      if (suffix == 'K') {
        scale = 1024.0;
      } else if (suffix == 'M') {
        scale = 1024.0 * 1024.0;
      } else if (suffix == 'G') {
        scale = 1024.0 * 1024.0 * 1024.0;
      }
      if (scale > 0) {
        Advance();
        ++length;
        if (!AtEnd() && (Peek() == 'B' || Peek() == 'b')) {
          Advance();
          ++length;
        }
        value *= scale;
      }
    }
    token->kind = TokenKind::kNumber;
    token->number = value;
    token->length = length;
    return true;
  }

  std::string_view input_;
  DiagnosticSink* sink_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  DiagnosticSink sink;
  std::vector<Token> tokens = Scanner(input, &sink).Run();
  if (sink.has_errors()) {
    return sink.ToLegacyError();
  }
  return tokens;
}

std::vector<Token> TokenizeWithDiagnostics(std::string_view input, DiagnosticSink* sink) {
  return Scanner(input, sink).Run();
}

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kAddress:
      return "address";
    case TokenKind::kEquals:
      return "'='";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kSeparator:
      return "separator";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

}  // namespace lang
}  // namespace cloudtalk
