// Tokenizer for the CloudTalk language.
//
// The original implementation used flex; this is an equivalent hand-written
// scanner (no generator dependency, better error positions).
#ifndef CLOUDTALK_SRC_LANG_LEXER_H_
#define CLOUDTALK_SRC_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/lang/diagnostics.h"
#include "src/lang/span.h"

namespace cloudtalk {
namespace lang {

enum class TokenKind {
  kIdent,      // identifiers and keywords: names, disk, size, st, ...
  kNumber,     // numeric literal, suffix already applied
  kAddress,    // dotted-quad IPv4 literal
  kEquals,     // =
  kLParen,     // (
  kRParen,     // )
  kArrow,      // -> or >
  kSeparator,  // ; or newline
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;    // Raw text for idents/addresses.
  double number = 0;   // Value for kNumber (K/M/G suffix already applied).
  int line = 1;
  int column = 1;
  int length = 1;      // Source characters the token covers.

  Span span() const { return Span{line, column, length}; }
};

// Tokenizes `input`. Consecutive separators are collapsed into one.
Result<std::vector<Token>> Tokenize(std::string_view input);

// Like Tokenize, but reports problems into `sink` (code E001) and recovers
// by skipping the offending characters, so one pass surfaces every lexical
// error. Always returns a token stream terminated by kEof.
std::vector<Token> TokenizeWithDiagnostics(std::string_view input, DiagnosticSink* sink);

const char* TokenKindName(TokenKind kind);

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_LEXER_H_
