// Semantic canonicalization of CloudTalk queries (ISSUE 8).
//
// Two syntactically different queries often mean the same thing: renamed
// variables, commuted flow statements, `size 2*32M` vs `size 64M`, a rate
// limit written on a different member of the same chain group, duplicated
// pool entries. Each of them pays full parse/compile/probe/search cost in
// CloudTalkServer::Answer. Canonicalize() rewrites a parsed query into a
// normal form in which semantic equivalence becomes byte equality of the
// printed text, the way orbit canonicalisation (pass O200) turned symmetric
// bindings into one representative:
//
//   * alpha-renaming — variables become v0, v1, ... in declaration order;
//     referenced flows become f0, f1, ... in canonical flow order;
//     unreferenced flow names are dropped (they are unobservable);
//   * sorted flow order — a commutativity-aware total order from
//     Weisfeiler-Lehman-style refinement over the reference graph, so
//     commuted statements converge while reference structure is respected;
//   * constant folding and unit normalization — every constant subexpression
//     folds to one literal, printed in canonical K/M/G form, mirroring
//     EvalConstant() exactly (including the x/0 == 0 convention);
//   * dead-clause elimination — duplicate pool entries, no-op requirements,
//     `start 0`, non-constant (hence ignored) start/end attributes,
//     non-positive deadlines and rate limits;
//   * group-constraint normalization — a chain group's tightest literal rate
//     and deadline (the only ones compilation keeps: analysis takes the min)
//     move to one canonical member; duplicates and subsumed constraints
//     disappear (the lint rules W090/W091 flag the same redundancy).
//
// The transform set is deliberately limited to rewrites the evaluation
// engines are provably invariant under: declaration order and pool order are
// preserved (the heuristic breaks score ties by pool position and the
// exhaustive engine by odometer rank, so sorting either could change which
// of two equally-good answers is returned), and names never influence any
// engine tie-break (bindings are keyed positionally; the exhaustive merge
// uses (makespan, odometer rank)). `ctcheck --diff-canon` fuzzes this claim
// end to end (invariant D503): a canonicalized query answered cold must
// equal the original answered cold, after mapping names back.
//
// Canonical byte equality is sound (equal text => equivalent queries) but
// not complete: deciding equivalence of reference graphs in general is as
// hard as graph isomorphism, and WL refinement may leave automorphic flows
// in original order. Equal queries always canonicalize equally under the
// generator mutations D503 exercises.
#ifndef CLOUDTALK_SRC_LANG_CANON_H_
#define CLOUDTALK_SRC_LANG_CANON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/lang/ast.h"

namespace cloudtalk {
namespace lang {

// A canonicalized query plus the certificate mapping the original names to
// their canonical slots, so traces and replies computed on the canonical
// form can be mapped back to the caller's vocabulary (and vice versa).
struct CanonicalQuery {
  Query query;        // The canonical AST (safe to Compile / answer).
  std::string text;   // query.ToString(): the canonical byte form.
  uint64_t hash = 0;  // ContentHash(text).

  // original name -> canonical name, one entry per variable (declaration
  // order) and per flow (original statement order). Unreferenced flows map
  // to the auto name ("_f<N>") they receive in the canonical form.
  std::vector<std::pair<std::string, std::string>> variable_map;
  std::vector<std::pair<std::string, std::string>> flow_map;

  // canonical -> original lookups (empty string when unknown). Linear scans:
  // queries have a handful of names.
  const std::string* OriginalVariable(const std::string& canonical) const;
  const std::string* OriginalFlow(const std::string& canonical) const;
};

// FNV-1a 64-bit over the canonical text. Stable across platforms and runs;
// the server's answer cache and ctlint W092 key on it.
uint64_t ContentHash(std::string_view text);

// Rewrites `query` into canonical form. Fails only on queries that are not
// self-consistent enough to rename soundly (duplicate variable or flow
// names, references to undefined flows) — conditions the parser already
// reports as E002/E003, so any error-free query canonicalizes.
Result<CanonicalQuery> Canonicalize(const Query& query);

// Canonicalize-and-compare: true when both queries canonicalize and their
// canonical texts are byte-equal. Sound, not complete (see file comment).
bool Equivalent(const Query& a, const Query& b);

}  // namespace lang
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_LANG_CANON_H_
