// Mini-MapReduce: the Hadoop-style substrate of the evaluation.
//
// Models the pieces of Hadoop that CloudTalk's optimisations touch
// (Section 5.3):
//  * Heartbeat-driven scheduling: task trackers ping the JobTracker every
//    heartbeat interval and receive at most one new task per type.
//  * Map tasks prefer data-local splits; a non-local map streams its split
//    from a replica over the network.
//  * Reduce tasks shuffle a partition from every map output, write their
//    result to HDFS, and can be speculatively re-executed when they straggle.
//
// CloudTalk integration points (all expressed as real query text):
//  * Reduce placement: the m-variable "unknown source" query; a heartbeating
//    node only gets a reduce if it is in the recommended set, with an
//    anti-starvation patience counter ("a mechanism that prevents endlessly
//    waiting for the best node in certain situations is in place").
//  * Map placement: the disk->X->currentNode query picks which replica host
//    a non-local map should stream from.
//  * Output writes inherit the MiniHdfs policy they are given.
#ifndef CLOUDTALK_SRC_MAPRED_MINI_MAPREDUCE_H_
#define CLOUDTALK_SRC_MAPRED_MINI_MAPREDUCE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/check/check.h"
#include "src/harness/cluster.h"
#include "src/hdfs/mini_hdfs.h"

namespace cloudtalk {

struct MapRedOptions {
  int map_slots = 2;
  int reduce_slots = 2;
  Seconds heartbeat = 300 * kMillisecond;
  double reduce_slowstart = 0.05;  // Maps done before reduces may schedule.
  // "CPU" phases modeled as a fixed processing bandwidth over task bytes.
  Bps map_compute_rate = 6.4e9;     // 800 MB/s.
  Bps reduce_compute_rate = 6.4e9;  // 800 MB/s.
  bool cloudtalk_reduce = false;
  bool cloudtalk_map = false;
  // Heartbeats a tracker lets pass before taking a reduce despite not being
  // in CloudTalk's recommended set.
  int reduce_patience = 3;
  // Speculative execution for straggling reduces.
  bool speculative_reduces = true;
  double speculation_slowdown = 2.0;  // Straggler threshold vs median.
  double output_ratio = 1.0;          // Output bytes per input byte (sort = 1).
  bool write_output = true;           // Reduce output -> HDFS.
  // Hosts that run task trackers. Empty = every cluster host. Lets the
  // Hadoop cluster be a subset of the simulated machines (Figures 7/8 place
  // iperf senders outside the cluster).
  std::vector<NodeId> nodes;
};

struct JobStats {
  Seconds started = 0;
  Seconds finished = 0;   // Last reduce completed its shuffle + compute.
  Seconds synced = 0;     // All output data (incl. disk writes) durable.
  std::vector<double> shuffle_durations;  // Successful reduces only.
  std::vector<NodeId> reduce_nodes;       // Where each reduce was placed.
  int maps_total = 0;
  int non_local_maps = 0;
  int speculative_launches = 0;
};

class MiniMapReduce {
 public:
  using JobDoneCb = std::function<void(const JobStats&)>;

  MiniMapReduce(Cluster* cluster, MiniHdfs* hdfs, MapRedOptions options);

  // Runs a job over `input_file` (must exist in the MiniHdfs; each block is
  // one map split). Asynchronous; at most one job at a time.
  bool RunJob(const std::string& input_file, int num_reducers, JobDoneCb done);

 private:
  enum class TaskState { kPending, kRunning, kDone };

  struct MapTask {
    int index = 0;
    Bytes bytes = 0;
    std::vector<NodeId> replicas;
    TaskState state = TaskState::kPending;
    NodeId node = kInvalidNode;   // Where it ran; map output lives here.
    Bytes output_bytes = 0;
  };
  struct ReduceTask {
    int index = 0;
    TaskState state = TaskState::kPending;
    NodeId node = kInvalidNode;
    Seconds started = 0;
    int fetches_outstanding = 0;
    int fetched_maps = 0;
    Bytes fetched_bytes = 0;
    bool computing = false;
    bool speculated = false;  // A backup copy was launched.
    int incarnation = 0;      // Bumped when the task restarts elsewhere.
  };
  struct Tracker {
    NodeId node = kInvalidNode;
    int running_maps = 0;
    int running_reduces = 0;
    int reduce_skips = 0;  // Heartbeats skipped waiting for CloudTalk's nod.
    Seconds last_heartbeat = -1;  // I303: heartbeats never go backwards.
  };

  void Heartbeat(int tracker_index);
  // Cross-checks every tracker's slot counters against the tasks actually
  // placed on it (I304). Compiled to nothing without CLOUDTALK_INVARIANTS.
  void VerifySchedulerState();
  void MaybeAssignMap(Tracker& tracker);
  void MaybeAssignReduce(Tracker& tracker);
  // CloudTalk reduce query: returns the recommended node set for the
  // pending reduce tasks (empty on failure -> behave like baseline).
  std::vector<NodeId> RecommendedReduceNodes(int pending);
  // Picks the replica host a non-local map on `node` should stream from.
  NodeId PickMapSource(const MapTask& task, NodeId node);

  void StartMap(MapTask& task, Tracker& tracker);
  void FinishMap(MapTask& task, Tracker& tracker);
  void StartReduce(ReduceTask& task, Tracker& tracker);
  void FetchMapOutput(ReduceTask& reduce, const MapTask& map);
  void MaybeFinishShuffle(ReduceTask& reduce);
  void FinishReduce(ReduceTask& reduce);
  void MaybeSpeculate();
  void MaybeFinishJob();

  Cluster* cluster_;
  MiniHdfs* hdfs_;
  MapRedOptions options_;

  bool job_active_ = false;
  JobDoneCb job_done_;
  JobStats stats_;
  std::vector<MapTask> maps_;
  std::vector<ReduceTask> reduces_;
  std::vector<Tracker> trackers_;
  int maps_done_ = 0;
  int reduces_done_ = 0;
  int outputs_synced_ = 0;
  int outputs_expected_ = 0;
  int64_t job_counter_ = 0;

  friend struct MapRedTestPeer;  // tests/check_test.cc corrupts state through this.
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_MAPRED_MINI_MAPREDUCE_H_
