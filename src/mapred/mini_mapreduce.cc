#include "src/mapred/mini_mapreduce.h"
#include <cstdlib>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/obs/metrics.h"

namespace cloudtalk {

MiniMapReduce::MiniMapReduce(Cluster* cluster, MiniHdfs* hdfs, MapRedOptions options)
    : cluster_(cluster), hdfs_(hdfs), options_(options) {}

bool MiniMapReduce::RunJob(const std::string& input_file, int num_reducers, JobDoneCb done) {
  if (job_active_) {
    return false;
  }
  const MiniHdfs::FileInfo* file = hdfs_->GetFile(input_file);
  if (file == nullptr || num_reducers <= 0) {
    return false;
  }
  job_active_ = true;
  job_done_ = std::move(done);
  ++job_counter_;
  stats_ = JobStats{};
  stats_.started = cluster_->now();

  maps_.clear();
  const int blocks = static_cast<int>(file->block_replicas.size());
  stats_.maps_total = blocks;
  for (int i = 0; i < blocks; ++i) {
    MapTask task;
    task.index = i;
    task.bytes = std::min(file->block_size, file->size - i * file->block_size);
    task.replicas = file->block_replicas[i];
    maps_.push_back(std::move(task));
  }
  reduces_.assign(num_reducers, ReduceTask{});
  for (int i = 0; i < num_reducers; ++i) {
    reduces_[i].index = i;
  }
  maps_done_ = 0;
  reduces_done_ = 0;
  outputs_synced_ = 0;
  outputs_expected_ = options_.write_output ? num_reducers : 0;

  trackers_.clear();
  std::vector<NodeId> nodes = options_.nodes;
  if (nodes.empty()) {
    for (int i = 0; i < cluster_->num_hosts(); ++i) {
      nodes.push_back(cluster_->host(i));
    }
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    Tracker tracker;
    tracker.node = nodes[i];
    trackers_.push_back(tracker);
    // Trackers start at arbitrary times, so their heartbeats land at random
    // phases of the interval (assignment order must not be a determinism
    // artifact of host numbering).
    const Seconds phase = cluster_->rng().Uniform(0, options_.heartbeat);
    const int index = static_cast<int>(i);
    cluster_->sim().Schedule(cluster_->now() + phase, [this, index] { Heartbeat(index); });
  }
  return true;
}

void MiniMapReduce::Heartbeat(int tracker_index) {
  if (!job_active_) {
    return;
  }
  Tracker& tracker = trackers_[tracker_index];
  CT_INVARIANT(cluster_->now() >= tracker.last_heartbeat, "I303",
               "tracker heartbeat time moved backwards")
      .With("tracker", tracker_index)
      .With("node", tracker.node)
      .With("now", cluster_->now())
      .With("last_heartbeat", tracker.last_heartbeat);
  tracker.last_heartbeat = cluster_->now();
  CT_OBS_INC("M505");
  VerifySchedulerState();
  MaybeAssignMap(tracker);
  MaybeAssignReduce(tracker);
  MaybeSpeculate();
  cluster_->sim().Schedule(cluster_->now() + options_.heartbeat,
                           [this, tracker_index] { Heartbeat(tracker_index); });
}

void MiniMapReduce::MaybeAssignMap(Tracker& tracker) {
  if (tracker.running_maps >= options_.map_slots) {
    return;
  }
  // Data-local task if one exists.
  MapTask* local = nullptr;
  MapTask* any = nullptr;
  for (MapTask& task : maps_) {
    if (task.state != TaskState::kPending) {
      continue;
    }
    if (any == nullptr) {
      any = &task;
    }
    if (std::find(task.replicas.begin(), task.replicas.end(), tracker.node) !=
        task.replicas.end()) {
      local = &task;
      break;
    }
  }
  MapTask* chosen = local != nullptr ? local : any;
  if (chosen == nullptr) {
    return;
  }
  if (local == nullptr) {
    ++stats_.non_local_maps;
  }
  CT_INVARIANT(chosen->state == TaskState::kPending && chosen->node == kInvalidNode, "I301",
               "map task assigned while already placed")
      .With("map", chosen->index)
      .With("node", chosen->node)
      .With("tracker_node", tracker.node);
  chosen->state = TaskState::kRunning;
  chosen->node = tracker.node;
  tracker.running_maps += 1;
  StartMap(*chosen, tracker);
}

NodeId MiniMapReduce::PickMapSource(const MapTask& task, NodeId node) {
  const bool local_replica =
      std::find(task.replicas.begin(), task.replicas.end(), node) != task.replicas.end();
  // Baseline Hadoop always reads the local replica when there is one.
  // CloudTalk reconsiders: a slow local disk can lose to streaming from an
  // idle remote replica ("Mappers prefer to copy data over the network
  // instead of accessing the slow local disks", Section 5.3).
  if (local_replica && !options_.cloudtalk_map) {
    return node;
  }
  if (options_.cloudtalk_map) {
    // Section 5.3 map query: X ranges over the hosts storing the split.
    // noreserve: a disk read adds little load to a multi-Gbps source, and
    // reserving sources would cascade every node off its own local disk.
    std::ostringstream query;
    query << "option noreserve\n";
    query << "X = (";
    for (NodeId r : task.replicas) {
      query << cluster_->topology().IpOf(r) << " ";
    }
    query << ")\n";
    const long long size = static_cast<long long>(task.bytes);
    query << "f1 disk -> X size " << size << " rate r(f2)\n";
    query << "f2 X -> " << cluster_->topology().IpOf(node) << " size " << size
          << " rate r(f1)\n";
    auto reply = cluster_->cloudtalk().Answer(query.str());
    if (reply.ok()) {
      NodeId picked = cluster_->directory().Resolve(reply.value().binding.at("X").name);
      if (getenv("MR_DEBUG") && local_replica && picked != node) {
        std::fprintf(stderr, "t=%.2f map src: node %d had local replica but picked %d\n",
                     cluster_->now(), node, picked);
      }
      return picked;
    }
  }
  return task.replicas[cluster_->rng().UniformInt(
      0, static_cast<int64_t>(task.replicas.size()) - 1)];
}

void MiniMapReduce::StartMap(MapTask& task, Tracker& tracker) {
  CT_OBS_INC("M502");
  const NodeId source = PickMapSource(task, tracker.node);
  FluidSimulation& sim = cluster_->sim();
  // Read the split (local or remote), coupled disk+net chain.
  GroupSpec read;
  FluidFlow disk;
  disk.resources = {sim.resources().DiskRead(source)};
  disk.size = task.bytes;
  read.flows.push_back(std::move(disk));
  if (source != tracker.node) {
    FluidFlow net;
    net.resources = sim.resources().NetworkPath(cluster_->topology(), source, tracker.node);
    net.size = task.bytes;
    read.flows.push_back(std::move(net));
  }
  const int task_index = task.index;
  const int tracker_index =
      static_cast<int>(&tracker - trackers_.data());
  const int64_t job = job_counter_;
  sim.AddGroup(std::move(read), [this, task_index, tracker_index, job](GroupId, Seconds) {
    if (job != job_counter_) {
      return;
    }
    MapTask& t = maps_[task_index];
    // Compute phase, then spill the output to local disk.
    const Seconds compute = TransferTime(t.bytes, options_.map_compute_rate);
    cluster_->sim().Schedule(cluster_->now() + compute, [this, task_index, tracker_index,
                                                         job] {
      if (job != job_counter_) {
        return;
      }
      MapTask& task2 = maps_[task_index];
      task2.output_bytes = task2.bytes * options_.output_ratio;
      GroupSpec spill;
      FluidFlow out;
      out.resources = {cluster_->sim().resources().DiskWrite(task2.node)};
      out.size = task2.output_bytes;
      spill.flows.push_back(std::move(out));
      cluster_->sim().AddGroup(std::move(spill),
                               [this, task_index, tracker_index, job](GroupId, Seconds) {
                                 if (job != job_counter_) {
                                   return;
                                 }
                                 FinishMap(maps_[task_index], trackers_[tracker_index]);
                               });
    });
  });
}

void MiniMapReduce::FinishMap(MapTask& task, Tracker& tracker) {
  task.state = TaskState::kDone;
  tracker.running_maps -= 1;
  ++maps_done_;
  if (getenv("MR_DEBUG") && maps_done_ == stats_.maps_total) {
    std::fprintf(stderr, "t=%.2f all maps done\n", cluster_->now());
  }
  // Feed running reduces that were waiting on this output.
  for (ReduceTask& reduce : reduces_) {
    if (reduce.state == TaskState::kRunning && !reduce.computing) {
      FetchMapOutput(reduce, task);
    }
  }
}

std::vector<NodeId> MiniMapReduce::RecommendedReduceNodes(int pending) {
  std::ostringstream query;
  // The scheduler polls this query every heartbeat and usually assigns at
  // most one of the recommendations, so the server must not reserve them.
  query << "option noreserve\n";
  const int m = pending;
  for (int i = 0; i < m; ++i) {
    query << "x" << (i + 1) << " = ";
  }
  query << "(";
  for (const Tracker& tracker : trackers_) {
    query << cluster_->topology().IpOf(tracker.node) << " ";
  }
  query << ")\n";
  // Section 5.3: odd flows are unknown-source network receptions of equal
  // size; even flows capture writing the shuffled data to disk.
  for (int i = 0; i < m; ++i) {
    const int odd = 2 * i + 1;
    const int even = 2 * i + 2;
    query << "f" << odd << " 0.0.0.0 -> x" << (i + 1) << " size 1G rate r(f" << even
          << ")\n";
    query << "f" << even << " x" << (i + 1) << " -> disk size 1G rate r(f" << odd << ")\n";
  }
  auto reply = cluster_->cloudtalk().Answer(query.str());
  std::vector<NodeId> nodes;
  if (!reply.ok()) {
    CLOUDTALK_LOG(kWarning) << "reduce query failed: " << reply.error().ToString();
    return nodes;
  }
  for (const auto& [var, endpoint] : reply.value().binding) {
    (void)var;
    const NodeId node = cluster_->directory().Resolve(endpoint.name);
    if (node != kInvalidNode) {
      nodes.push_back(node);
    }
  }
  return nodes;
}

void MiniMapReduce::MaybeAssignReduce(Tracker& tracker) {
  if (tracker.running_reduces >= options_.reduce_slots) {
    return;
  }
  if (maps_done_ <
      static_cast<int>(std::ceil(options_.reduce_slowstart * stats_.maps_total))) {
    return;
  }
  int pending = 0;
  ReduceTask* next = nullptr;
  for (ReduceTask& task : reduces_) {
    if (task.state == TaskState::kPending) {
      ++pending;
      if (next == nullptr) {
        next = &task;
      }
    }
  }
  if (next == nullptr) {
    return;
  }
  if (options_.cloudtalk_reduce) {
    // "A task is given to the current node x only if x is in S, and a
    // mechanism that prevents endlessly waiting for the best node in
    // certain situations is in place."
    const std::vector<NodeId> recommended = RecommendedReduceNodes(pending);
    const bool in_set = std::find(recommended.begin(), recommended.end(), tracker.node) !=
                        recommended.end();
    if (!recommended.empty() && !in_set &&
        tracker.reduce_skips < options_.reduce_patience) {
      tracker.reduce_skips += 1;
      return;
    }
    tracker.reduce_skips = 0;
  }
  if (getenv("MR_DEBUG")) {
    std::fprintf(stderr, "t=%.2f assign reduce %d -> node %d (skips=%d)\n",
                 cluster_->now(), next->index, tracker.node, tracker.reduce_skips);
  }
  CT_INVARIANT(next->state == TaskState::kPending, "I301",
               "reduce task assigned while already placed")
      .With("reduce", next->index)
      .With("node", next->node)
      .With("tracker_node", tracker.node);
  next->state = TaskState::kRunning;
  next->node = tracker.node;
  next->started = cluster_->now();
  stats_.reduce_nodes.push_back(tracker.node);
  tracker.running_reduces += 1;
  StartReduce(*next, tracker);
}

void MiniMapReduce::StartReduce(ReduceTask& task, Tracker& tracker) {
  (void)tracker;
  CT_OBS_INC("M503");
  // Fetch every already-finished map output; future ones arrive via
  // FinishMap.
  task.fetched_maps = 0;
  task.fetches_outstanding = 0;
  for (const MapTask& map : maps_) {
    if (map.state == TaskState::kDone) {
      FetchMapOutput(task, map);
    }
  }
  MaybeFinishShuffle(task);  // Degenerate: everything already local/fetched.
}

void MiniMapReduce::FetchMapOutput(ReduceTask& reduce, const MapTask& map) {
  const Bytes part = map.output_bytes / static_cast<double>(reduces_.size());
  reduce.fetches_outstanding += 1;
  FluidSimulation& sim = cluster_->sim();
  GroupSpec fetch;
  FluidFlow src_disk;
  src_disk.resources = {sim.resources().DiskRead(map.node)};
  src_disk.size = part;
  fetch.flows.push_back(std::move(src_disk));
  if (map.node != reduce.node) {
    FluidFlow net;
    net.resources = sim.resources().NetworkPath(cluster_->topology(), map.node, reduce.node);
    net.size = part;
    fetch.flows.push_back(std::move(net));
  }
  FluidFlow dst_disk;
  dst_disk.resources = {sim.resources().DiskWrite(reduce.node)};
  dst_disk.size = part;
  fetch.flows.push_back(std::move(dst_disk));
  const int reduce_index = reduce.index;
  const int incarnation = reduce.incarnation;
  const int64_t job = job_counter_;
  sim.AddGroup(std::move(fetch), [this, reduce_index, part, job, incarnation](GroupId,
                                                                              Seconds) {
    if (job != job_counter_) {
      return;
    }
    ReduceTask& r = reduces_[reduce_index];
    if (r.incarnation != incarnation) {
      return;  // Fetch belonged to a superseded (speculated-away) copy.
    }
    r.fetches_outstanding -= 1;
    CT_INVARIANT(r.fetches_outstanding >= 0, "I305",
                 "reducer outstanding-fetch count went negative")
        .With("reduce", reduce_index)
        .With("fetches_outstanding", r.fetches_outstanding)
        .With("incarnation", incarnation);
    r.fetched_maps += 1;
    r.fetched_bytes += part;
    MaybeFinishShuffle(r);
  });
}

void MiniMapReduce::MaybeFinishShuffle(ReduceTask& reduce) {
  if (reduce.state != TaskState::kRunning || reduce.computing) {
    return;
  }
  if (maps_done_ < stats_.maps_total || reduce.fetches_outstanding > 0 ||
      reduce.fetched_maps < stats_.maps_total) {
    return;
  }
  reduce.computing = true;
  stats_.shuffle_durations.push_back(cluster_->now() - reduce.started);
  const Seconds compute = TransferTime(reduce.fetched_bytes, options_.reduce_compute_rate);
  const int reduce_index = reduce.index;
  const int64_t job = job_counter_;
  cluster_->sim().Schedule(cluster_->now() + compute, [this, reduce_index, job] {
    if (job != job_counter_) {
      return;
    }
    FinishReduce(reduces_[reduce_index]);
  });
}

void MiniMapReduce::FinishReduce(ReduceTask& reduce) {
  if (reduce.state == TaskState::kDone) {
    return;  // A speculative copy beat us.
  }
  reduce.state = TaskState::kDone;
  for (Tracker& tracker : trackers_) {
    if (tracker.node == reduce.node) {
      tracker.running_reduces -= 1;
      break;
    }
  }
  ++reduces_done_;
  if (options_.write_output && reduce.fetched_bytes > 0) {
    const std::string name = "_job" + std::to_string(job_counter_) + "_out" +
                             std::to_string(reduce.index);
    const int64_t job = job_counter_;
    hdfs_->WriteFile(reduce.node, name, reduce.fetched_bytes,
                     [this, job](Seconds, Seconds) {
                       if (job != job_counter_) {
                         return;
                       }
                       ++outputs_synced_;
                       MaybeFinishJob();
                     });
  }
  MaybeFinishJob();
}

void MiniMapReduce::MaybeSpeculate() {
  if (!options_.speculative_reduces || reduces_done_ * 2 < static_cast<int>(reduces_.size())) {
    return;
  }
  // Straggler detection based on shuffle durations observed so far.
  if (stats_.shuffle_durations.empty()) {
    return;
  }
  const double median = Median(stats_.shuffle_durations);
  if (getenv("MR_DEBUG_SPEC")) {
    int running = 0;
    double max_elapsed = 0;
    for (const ReduceTask& task : reduces_) {
      if (task.state == TaskState::kRunning && !task.computing) {
        ++running;
        max_elapsed = std::max(max_elapsed, cluster_->now() - task.started);
      }
    }
    std::fprintf(stderr, "t=%.1f spec-check done=%d median=%.1f running=%d max_el=%.1f\n",
                 cluster_->now(), reduces_done_, median, running, max_elapsed);
  }
  for (ReduceTask& task : reduces_) {
    if (task.state != TaskState::kRunning || task.computing || task.speculated) {
      continue;
    }
    const Seconds elapsed = cluster_->now() - task.started;
    if (elapsed > options_.speculation_slowdown * median + options_.heartbeat) {
      // Relaunch on the least-loaded tracker with a free slot.
      Tracker* best = nullptr;
      for (Tracker& tracker : trackers_) {
        if (tracker.node == task.node ||
            tracker.running_reduces >= options_.reduce_slots) {
          continue;
        }
        if (best == nullptr || tracker.running_reduces < best->running_reduces) {
          best = &tracker;
        }
      }
      if (best == nullptr) {
        continue;
      }
      CT_INVARIANT(task.state == TaskState::kRunning && !task.computing, "I302",
                   "speculative copy launched for a non-running attempt")
          .With("reduce", task.index)
          .With("node", task.node);
      task.speculated = true;
      stats_.speculative_launches += 1;
      CT_OBS_INC("M504");
      // Restart the task on the new node (the first incarnation's flows
      // keep running but its completions are ignored once this one wins).
      for (Tracker& tracker : trackers_) {
        if (tracker.node == task.node) {
          tracker.running_reduces -= 1;  // Free the straggling node's slot.
          break;
        }
      }
      task.incarnation += 1;
      task.node = best->node;
      task.started = cluster_->now();
      task.fetched_maps = 0;
      task.fetched_bytes = 0;
      task.fetches_outstanding = 0;
      best->running_reduces += 1;
      StartReduce(task, *best);
    }
  }
}

void MiniMapReduce::VerifySchedulerState() {
  if constexpr (check::kInvariantsEnabled) {
    for (size_t i = 0; i < trackers_.size(); ++i) {
      const Tracker& tracker = trackers_[i];
      int placed_maps = 0;
      for (const MapTask& task : maps_) {
        if (task.state == TaskState::kRunning && task.node == tracker.node) {
          ++placed_maps;
        }
      }
      int placed_reduces = 0;
      for (const ReduceTask& task : reduces_) {
        if (task.state == TaskState::kRunning && task.node == tracker.node) {
          ++placed_reduces;
        }
      }
      CT_INVARIANT(placed_maps == tracker.running_maps, "I304",
                   "tracker map-slot counter disagrees with placed map attempts")
          .With("tracker", i)
          .With("node", tracker.node)
          .With("running_maps", tracker.running_maps)
          .With("placed_maps", placed_maps);
      CT_INVARIANT(placed_reduces == tracker.running_reduces, "I304",
                   "tracker reduce-slot counter disagrees with placed reduce attempts")
          .With("tracker", i)
          .With("node", tracker.node)
          .With("running_reduces", tracker.running_reduces)
          .With("placed_reduces", placed_reduces);
    }
  }
}

void MiniMapReduce::MaybeFinishJob() {
  if (!job_active_) {
    return;
  }
  if (reduces_done_ < static_cast<int>(reduces_.size())) {
    return;
  }
  if (stats_.finished == 0) {
    stats_.finished = cluster_->now();
  }
  if (outputs_synced_ < outputs_expected_) {
    return;
  }
  stats_.synced = cluster_->now();
  job_active_ = false;
  if (job_done_) {
    JobStats stats = stats_;
    job_done_(stats);
  }
}

}  // namespace cloudtalk
