// The per-host status server (Figure 2): it periodically measures local
// disk and NIC usage and answers CloudTalk server probes with the latest
// sample.
//
// The measurement *period* matters: probes see state as of the last sample,
// which is the feedback delay behind the oscillatory behaviour analysed in
// Section 5.5. A period of zero makes every probe see live usage.
#ifndef CLOUDTALK_SRC_STATUS_STATUS_SERVER_H_
#define CLOUDTALK_SRC_STATUS_STATUS_SERVER_H_

#include <functional>

#include "src/common/units.h"
#include "src/status/status.h"
#include "src/topology/topology.h"

namespace cloudtalk {

// Where a status server reads instantaneous local I/O usage from. The
// harness implements this on top of the fluid simulation; tests use
// synthetic sources.
class UsageSource {
 public:
  virtual ~UsageSource() = default;
  virtual StatusReport Snapshot(NodeId host) = 0;
};

class StatusServer {
 public:
  // `source` must outlive the server. `period` is the measurement interval;
  // 0 means "measure on every probe".
  StatusServer(NodeId host, UsageSource* source, Seconds period = 100 * kMillisecond)
      : host_(host), source_(source), period_(period) {}

  NodeId host() const { return host_; }
  Seconds period() const { return period_; }

  // Refreshes the cached measurement; the harness calls this on the
  // measurement schedule.
  void Measure() {
    cached_ = source_->Snapshot(host_);
    has_sample_ = true;
  }

  // Answers a probe: the latest sample (or a live one when period == 0 or
  // nothing has been measured yet).
  StatusReport Report() {
    if (period_ <= 0 || !has_sample_) {
      Measure();
    }
    return cached_;
  }

 private:
  NodeId host_;
  UsageSource* source_;
  Seconds period_;
  StatusReport cached_;
  bool has_sample_ = false;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_STATUS_STATUS_SERVER_H_
