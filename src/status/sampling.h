// Sampling analysis (paper Section 4.3 / Figure 4).
//
// When a query's candidate pool holds N >> 100 servers, CloudTalk probes
// only n of them. Assuming a bimodal load distribution where a fraction q
// of servers is idle, the number of idle servers among n random probes is
// Binomial(n, q) (N is large). RequiredSamples computes the smallest n such
// that at least d idle servers are found with the requested confidence —
// the quantity Figure 4 plots.
#ifndef CLOUDTALK_SRC_STATUS_SAMPLING_H_
#define CLOUDTALK_SRC_STATUS_SAMPLING_H_

namespace cloudtalk {

// P[Binomial(n, p) >= k], computed stably in log space.
double BinomialTailAtLeast(int n, double p, int k);

// Smallest n with P[Binomial(n, idle_fraction) >= d] >= confidence.
// Returns max_n if no n <= max_n suffices (e.g. idle_fraction == 0).
int RequiredSamples(int d, double idle_fraction, double confidence, int max_n = 1 << 20);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_STATUS_SAMPLING_H_
