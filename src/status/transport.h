// Transport abstraction for the CloudTalk server's scatter-gather probe of
// status servers (Figure 2 step (2): "UDP is used as transport, to minimize
// incast related problems").
//
// Implementations:
//   SimUdpTransport  - in-process, with an incast-style loss model (below).
//   UdpSocketTransport - real UDP sockets (udp_transport.h).
#ifndef CLOUDTALK_SRC_STATUS_TRANSPORT_H_
#define CLOUDTALK_SRC_STATUS_TRANSPORT_H_

#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/status/status.h"
#include "src/status/status_server.h"

namespace cloudtalk {

struct ProbeStats {
  int requests_sent = 0;
  int replies_received = 0;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;
  // Failure accounting (ISSUE 5). `timeouts` counts probed hosts whose reply
  // never arrived inside the deadline; always requests_sent minus
  // replies_received for a single probe, so a host can never be both
  // answered and missing. The other two count datagrams that arrived but
  // were discarded: wrong size (short_reads) or a sequence number outside
  // the probe's window, i.e. an answer to an earlier, already-expired probe
  // (late_replies).
  int timeouts = 0;
  int short_reads = 0;
  int late_replies = 0;

  void Accumulate(const ProbeStats& other) {
    requests_sent += other.requests_sent;
    replies_received += other.replies_received;
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    timeouts += other.timeouts;
    short_reads += other.short_reads;
    late_replies += other.late_replies;
  }
};

struct ProbeOutcome {
  // Hosts that answered. Missing hosts are treated as fully loaded by the
  // CloudTalk server.
  std::unordered_map<NodeId, StatusReport> reports;
  ProbeStats stats;
};

class ProbeTransport {
 public:
  virtual ~ProbeTransport() = default;
  // Scatter-gathers status from `targets`, waiting at most `timeout`.
  virtual ProbeOutcome Probe(const std::vector<NodeId>& targets, Seconds timeout) = 0;
};

// In-process transport. Loss follows a burst (incast) model: when `n`
// replies converge simultaneously on the querier's access port, only about
// `burst_capacity` of them fit in buffer plus drain; the rest are dropped
// uniformly at random. Matches the paper's observation that probing ~100
// servers is lossless while ~1000 loses many replies (Section 4.3).
struct SimUdpParams {
  int burst_capacity = 300;
  double base_loss = 0.0;  // Independent per-packet loss on top.
};

class SimUdpTransport : public ProbeTransport {
 public:
  SimUdpTransport(std::unordered_map<NodeId, StatusServer*> servers, SimUdpParams params,
                  uint64_t seed = 1)
      : servers_(std::move(servers)), params_(params), rng_(seed) {}

  ProbeOutcome Probe(const std::vector<NodeId>& targets, Seconds timeout) override;

  // Registers/replaces a server (harness wiring).
  void Register(NodeId host, StatusServer* server) { servers_[host] = server; }

 private:
  std::unordered_map<NodeId, StatusServer*> servers_;
  SimUdpParams params_;
  Rng rng_;
  // Serializes concurrent probes (N-slot admission runs gathers in
  // parallel, and the shard aggregators of src/core/shard.h scatter to this
  // one simulated wire): the loss-model RNG and the status servers' lazy
  // first Measure() are not otherwise synchronized.
  std::mutex probe_mutex_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_STATUS_TRANSPORT_H_
