#include "src/status/transport.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace cloudtalk {

ProbeOutcome SimUdpTransport::Probe(const std::vector<NodeId>& targets, Seconds timeout) {
  (void)timeout;  // The simulated probe completes "within" the timeout.
  std::lock_guard<std::mutex> lock(probe_mutex_);
  ProbeOutcome outcome;
  const int n = static_cast<int>(targets.size());
  outcome.stats.requests_sent = n;
  outcome.stats.bytes_sent = static_cast<int64_t>(n) * kProbeRequestBytes;

  // Which replies survive the incast burst: all of them when the fan-in is
  // within the burst capacity, otherwise a uniformly random subset of
  // roughly burst_capacity replies.
  std::vector<int> surviving;
  if (n <= params_.burst_capacity) {
    surviving.resize(n);
    for (int i = 0; i < n; ++i) {
      surviving[i] = i;
    }
  } else {
    surviving = rng_.SampleWithoutReplacement(n, params_.burst_capacity);
  }
  for (int idx : surviving) {
    if (params_.base_loss > 0 && rng_.Bernoulli(params_.base_loss)) {
      continue;
    }
    const NodeId host = targets[idx];
    const auto it = servers_.find(host);
    if (it == servers_.end()) {
      continue;  // No status server: behaves like a lost reply.
    }
    outcome.reports.emplace(host, it->second->Report());
    outcome.stats.replies_received += 1;
    outcome.stats.bytes_received += kProbeReplyBytes;
  }
  outcome.stats.timeouts = outcome.stats.requests_sent - outcome.stats.replies_received;
  CT_OBS_ADD("M201", outcome.stats.requests_sent);
  CT_OBS_ADD("M202", outcome.stats.replies_received);
  CT_OBS_ADD("M203", outcome.stats.timeouts);
  CT_OBS_ADD("M206", outcome.stats.bytes_sent);
  CT_OBS_ADD("M207", outcome.stats.bytes_received);
  return outcome;
}

}  // namespace cloudtalk
