// Status reports: the per-host I/O load snapshots that status servers hand
// to CloudTalk servers (paper Section 4, Figure 2 step (2)/(3)).
//
// The wire format mirrors the byte counts the paper reports in Section 5.5:
// probe requests are 64 bytes and responses 78 bytes.
#ifndef CLOUDTALK_SRC_STATUS_STATUS_H_
#define CLOUDTALK_SRC_STATUS_STATUS_H_

#include <array>
#include <cstdint>
#include <optional>

#include "src/common/units.h"
#include "src/topology/topology.h"

namespace cloudtalk {

// Snapshot of one host's I/O state. Capacities are static; usages are the
// most recent measurement (so they can be stale by up to the measurement
// period — the effect behind the paper's oscillation discussion, §5.5).
struct StatusReport {
  NodeId host = kInvalidNode;
  Bps nic_tx_cap = 0;
  Bps nic_tx_use = 0;
  Bps nic_rx_cap = 0;
  Bps nic_rx_use = 0;
  Bps disk_read_cap = 0;
  Bps disk_read_use = 0;
  Bps disk_write_cap = 0;
  Bps disk_write_use = 0;
  // Scalar resources (Section 7 extension). 0 total = no information; the
  // heuristic then treats requirement checks as unknown-but-satisfiable.
  double cpu_cores_total = 0;
  double cpu_cores_used = 0;
  Bytes mem_total = 0;
  Bytes mem_used = 0;

  double CpuFree() const { return cpu_cores_total - cpu_cores_used; }
  Bytes MemFree() const { return mem_total - mem_used; }

  Bps AvailableTx() const { return nic_tx_cap - nic_tx_use; }
  Bps AvailableRx() const { return nic_rx_cap - nic_rx_use; }

  // A report for a host that failed to answer: "If nothing is received from
  // a status server, we assume that a particular address is under heavy I/O
  // load" (§4). Usage equals capacity in every dimension.
  static StatusReport AssumeLoaded(NodeId host, const HostCaps& caps);
  // A fully idle host with the given capacities.
  static StatusReport Idle(NodeId host, const HostCaps& caps);
};

// Fixed-size wire encodings (little-endian). The v1 sizes match the paper's
// Section 5.5 accounting (64 B requests / 78 B replies); the v2 reply
// appends the Section 7 scalar resources (CPU cores, memory).
inline constexpr int kProbeRequestBytes = 64;
inline constexpr int kProbeReplyBytes = 78;
inline constexpr int kProbeReplyV2Bytes = 102;

using ProbeRequestWire = std::array<uint8_t, kProbeRequestBytes>;
using ProbeReplyWire = std::array<uint8_t, kProbeReplyBytes>;
using ProbeReplyV2Wire = std::array<uint8_t, kProbeReplyV2Bytes>;

// `want_extended` asks the daemon for a v2 reply.
ProbeRequestWire EncodeProbeRequest(uint32_t seq, uint32_t sender_ip, uint32_t target_ip,
                                    bool want_extended = false);
// Returns (seq, sender_ip, target_ip) or nullopt for a malformed packet.
struct DecodedProbeRequest {
  uint32_t seq = 0;
  uint32_t sender_ip = 0;
  uint32_t target_ip = 0;
  bool want_extended = false;
};
std::optional<DecodedProbeRequest> DecodeProbeRequest(const ProbeRequestWire& wire);

ProbeReplyWire EncodeProbeReply(uint32_t seq, uint32_t reporter_ip, const StatusReport& report);
struct DecodedProbeReply {
  uint32_t seq = 0;
  uint32_t reporter_ip = 0;
  StatusReport report;  // host is left kInvalidNode; caller maps ip->host.
};
std::optional<DecodedProbeReply> DecodeProbeReply(const ProbeReplyWire& wire);

// v2: the v1 payload plus cpu (milli-cores) and memory (bytes) totals/usage.
ProbeReplyV2Wire EncodeProbeReplyV2(uint32_t seq, uint32_t reporter_ip,
                                    const StatusReport& report);
std::optional<DecodedProbeReply> DecodeProbeReplyV2(const ProbeReplyV2Wire& wire);

// Dotted-quad string <-> uint32 helpers for the wire format.
uint32_t PackIpv4(const std::string& dotted);
std::string UnpackIpv4(uint32_t ip);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_STATUS_STATUS_H_
