// Prometheus text exposition endpoint for the status plane (ISSUE 5).
//
// A minimal HTTP/1.0 server that renders the process-wide obs::Registry in
// Prometheus text format on GET /metrics — the deployment-shaped face of
// the metrics registry, sitting next to the UDP status daemon the way a
// node exporter sits next to a service. GET / returns a one-line index,
// anything else 404. One request per connection (Connection: close), one
// accept thread; rendering happens outside any registry hot path.
//
// Scrape it with:
//   curl http://127.0.0.1:<port>/metrics
// or point a Prometheus job at it (see docs/OBSERVABILITY.md).
#ifndef CLOUDTALK_SRC_STATUS_METRICS_ENDPOINT_H_
#define CLOUDTALK_SRC_STATUS_METRICS_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <thread>

namespace cloudtalk {

class MetricsEndpoint {
 public:
  MetricsEndpoint() = default;
  ~MetricsEndpoint();
  MetricsEndpoint(const MetricsEndpoint&) = delete;
  MetricsEndpoint& operator=(const MetricsEndpoint&) = delete;

  // Binds 127.0.0.1 on `port` (0 = ephemeral) and starts the accept thread.
  // Returns false on socket errors.
  bool Start(uint16_t port = 0);
  void Stop();

  uint16_t port() const { return port_; }
  int64_t requests_served() const { return requests_served_.load(); }

 private:
  void Loop();

  int fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_served_{0};
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_STATUS_METRICS_ENDPOINT_H_
