#include "src/status/udp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstring>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace cloudtalk {

namespace {

int MakeUdpSocket() { return ::socket(AF_INET, SOCK_DGRAM, 0); }

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpStatusDaemon::UdpStatusDaemon(NodeId host, uint32_t host_ip, UsageSource* source)
    : host_(host), host_ip_(host_ip), source_(source) {}

UdpStatusDaemon::~UdpStatusDaemon() { Stop(); }

bool UdpStatusDaemon::Start(uint16_t port) {
  fd_ = MakeUdpSocket();
  if (fd_ < 0) {
    return false;
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void UdpStatusDaemon::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Nudge the blocking recv with a zero-byte datagram to ourselves.
  const int fd = MakeUdpSocket();
  if (fd >= 0) {
    sockaddr_in addr = LoopbackAddr(port_);
    ::sendto(fd, "", 0, 0, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::close(fd);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void UdpStatusDaemon::Loop() {
  while (running_.load()) {
    ProbeRequestWire wire{};
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    const ssize_t n = ::recvfrom(fd_, wire.data(), wire.size(), 0,
                                 reinterpret_cast<sockaddr*>(&from), &from_len);
    if (!running_.load()) {
      return;
    }
    if (n != static_cast<ssize_t>(wire.size())) {
      continue;
    }
    const auto request = DecodeProbeRequest(wire);
    if (!request.has_value()) {
      continue;
    }
    const StatusReport report = source_->Snapshot(host_);
    if (request->want_extended) {
      const ProbeReplyV2Wire reply = EncodeProbeReplyV2(request->seq, host_ip_, report);
      ::sendto(fd_, reply.data(), reply.size(), 0, reinterpret_cast<sockaddr*>(&from),
               from_len);
    } else {
      const ProbeReplyWire reply = EncodeProbeReply(request->seq, host_ip_, report);
      ::sendto(fd_, reply.data(), reply.size(), 0, reinterpret_cast<sockaddr*>(&from),
               from_len);
    }
    requests_served_.fetch_add(1);
  }
}

UdpSocketTransport::~UdpSocketTransport() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void UdpSocketTransport::Register(NodeId host, uint32_t host_ip, uint16_t port) {
  peers_[host] = Peer{host_ip, port};
  ip_to_host_[host_ip] = host;
}

bool UdpSocketTransport::Open() {
  if (fd_ >= 0) {
    return true;
  }
  fd_ = MakeUdpSocket();
  return fd_ >= 0;
}

ProbeOutcome UdpSocketTransport::Probe(const std::vector<NodeId>& targets, Seconds timeout) {
  ProbeOutcome outcome;
  if (!Open()) {
    return outcome;
  }
  const uint32_t base_seq = next_seq_;
  next_seq_ += static_cast<uint32_t>(targets.size());

  // Scatter.
  for (size_t i = 0; i < targets.size(); ++i) {
    const auto it = peers_.find(targets[i]);
    if (it == peers_.end()) {
      continue;
    }
    const ProbeRequestWire wire = EncodeProbeRequest(base_seq + static_cast<uint32_t>(i), 0,
                                                     it->second.ip, request_extended_);
    sockaddr_in addr = LoopbackAddr(it->second.port);
    if (::sendto(fd_, wire.data(), wire.size(), 0, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) == static_cast<ssize_t>(wire.size())) {
      outcome.stats.requests_sent += 1;
      outcome.stats.bytes_sent += kProbeRequestBytes;
    }
  }

  // Gather until every target answered or the timeout expires. A reply
  // arriving at exactly the deadline still counts: the remaining wait is
  // rounded UP to whole milliseconds (truncation used to turn sub-ms
  // remainders into an early exit), and when the deadline has just been
  // reached we still poll once with a zero timeout to drain datagrams that
  // are already queued — so a host answering at the deadline is counted as
  // answered, never as both answered and missing (the timeout count below
  // is derived, not accumulated inline).
  const auto deadline = Now() + std::chrono::duration<double>(timeout);
  while (outcome.stats.replies_received < outcome.stats.requests_sent) {
    const auto remaining = deadline - Now();
    if (remaining < std::chrono::steady_clock::duration::zero()) {
      break;
    }
    const double remaining_sec = std::chrono::duration<double>(remaining).count();
    const int remaining_ms = static_cast<int>(std::ceil(remaining_sec * 1e3));
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, remaining_ms);
    if (ready <= 0) {
      break;
    }
    ProbeReplyV2Wire buffer{};
    const ssize_t n = ::recv(fd_, buffer.data(), buffer.size(), 0);
    std::optional<DecodedProbeReply> reply;
    int reply_bytes = 0;
    if (n == static_cast<ssize_t>(kProbeReplyBytes)) {
      ProbeReplyWire v1{};
      std::memcpy(v1.data(), buffer.data(), v1.size());
      reply = DecodeProbeReply(v1);
      reply_bytes = kProbeReplyBytes;
    } else if (n == static_cast<ssize_t>(kProbeReplyV2Bytes)) {
      reply = DecodeProbeReplyV2(buffer);
      reply_bytes = kProbeReplyV2Bytes;
    } else {
      outcome.stats.short_reads += 1;
      CT_OBS_INC("M204");
      continue;
    }
    if (!reply.has_value() || reply->seq < base_seq ||
        reply->seq >= base_seq + targets.size()) {
      // Well-formed but outside this probe's sequence window: an answer to
      // an earlier probe whose deadline already passed.
      outcome.stats.late_replies += 1;
      CT_OBS_INC("M205");
      continue;
    }
    const auto host_it = ip_to_host_.find(reply->reporter_ip);
    if (host_it == ip_to_host_.end()) {
      continue;
    }
    StatusReport report = reply->report;
    report.host = host_it->second;
    outcome.reports[host_it->second] = report;
    outcome.stats.replies_received += 1;
    outcome.stats.bytes_received += reply_bytes;
  }
  outcome.stats.timeouts = outcome.stats.requests_sent - outcome.stats.replies_received;
  CT_OBS_ADD("M201", outcome.stats.requests_sent);
  CT_OBS_ADD("M202", outcome.stats.replies_received);
  CT_OBS_ADD("M203", outcome.stats.timeouts);
  CT_OBS_ADD("M206", outcome.stats.bytes_sent);
  CT_OBS_ADD("M207", outcome.stats.bytes_received);
  return outcome;
}

}  // namespace cloudtalk
