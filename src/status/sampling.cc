#include "src/status/sampling.h"

#include <algorithm>
#include <cmath>

namespace cloudtalk {

namespace {

double LogChoose(int n, int k) {
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) - std::lgamma(n - k + 1.0);
}

}  // namespace

double BinomialTailAtLeast(int n, double p, int k) {
  if (k <= 0) {
    return 1.0;
  }
  if (k > n || p <= 0.0) {
    return 0.0;
  }
  if (p >= 1.0) {
    return 1.0;
  }
  // Sum the (small) head P[X < k] and subtract; k is small in our use.
  const double log_p = std::log(p);
  const double log_q = std::log1p(-p);
  double head = 0.0;
  for (int i = 0; i < k; ++i) {
    head += std::exp(LogChoose(n, i) + i * log_p + (n - i) * log_q);
  }
  return std::clamp(1.0 - head, 0.0, 1.0);
}

int RequiredSamples(int d, double idle_fraction, double confidence, int max_n) {
  if (d <= 0) {
    return 0;
  }
  if (idle_fraction <= 0.0) {
    return max_n;
  }
  // The tail is monotone in n, so binary search works; start from the
  // obvious lower bound n >= d.
  int lo = d;
  int hi = d;
  while (hi < max_n && BinomialTailAtLeast(hi, idle_fraction, d) < confidence) {
    hi = std::min(max_n, hi * 2);
    if (hi == max_n) {
      break;
    }
  }
  if (BinomialTailAtLeast(hi, idle_fraction, d) < confidence) {
    return max_n;
  }
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (BinomialTailAtLeast(mid, idle_fraction, d) >= confidence) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace cloudtalk
