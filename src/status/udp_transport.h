// Real-socket UDP implementation of the status protocol.
//
// This is the deployment path: one UdpStatusDaemon runs next to each host
// (in the paper, inside the hypervisor — or inside the VM on EC2), and the
// CloudTalk server scatter-gathers with UdpSocketTransport. The in-process
// SimUdpTransport remains the default for simulations; this code exists so
// the distributed mode is real, testable (loopback) and demonstrable.
#ifndef CLOUDTALK_SRC_STATUS_UDP_TRANSPORT_H_
#define CLOUDTALK_SRC_STATUS_UDP_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/status/status_server.h"
#include "src/status/transport.h"

namespace cloudtalk {

// Answers probe requests on a UDP port. `source` must be thread-safe: the
// daemon calls Snapshot() from its receive thread.
class UdpStatusDaemon {
 public:
  UdpStatusDaemon(NodeId host, uint32_t host_ip, UsageSource* source);
  ~UdpStatusDaemon();
  UdpStatusDaemon(const UdpStatusDaemon&) = delete;
  UdpStatusDaemon& operator=(const UdpStatusDaemon&) = delete;

  // Binds 127.0.0.1 on an ephemeral port (or `port` if nonzero) and starts
  // the receive thread. Returns false on socket errors.
  bool Start(uint16_t port = 0);
  void Stop();

  uint16_t port() const { return port_; }
  int64_t requests_served() const { return requests_served_.load(); }

 private:
  void Loop();

  NodeId host_;
  uint32_t host_ip_;
  UsageSource* source_;
  int fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> requests_served_{0};
};

// Probes UdpStatusDaemons over loopback.
class UdpSocketTransport : public ProbeTransport {
 public:
  UdpSocketTransport() = default;
  ~UdpSocketTransport() override;
  UdpSocketTransport(const UdpSocketTransport&) = delete;
  UdpSocketTransport& operator=(const UdpSocketTransport&) = delete;

  // Maps a host to the daemon's loopback port and its wire IP.
  void Register(NodeId host, uint32_t host_ip, uint16_t port);

  // Creates the client socket lazily; returns false on failure.
  bool Open();

  // Request v2 (extended) replies carrying CPU/memory scalars (Section 7).
  void set_request_extended(bool extended) { request_extended_ = extended; }

  ProbeOutcome Probe(const std::vector<NodeId>& targets, Seconds timeout) override;

  // Test seam: substitutes the gather loop's clock so deadline arithmetic
  // can be pinned (e.g. "the reply landed at exactly the deadline"). Null
  // restores steady_clock.
  void set_clock_for_test(std::function<std::chrono::steady_clock::time_point()> clock) {
    clock_ = std::move(clock);
  }

 private:
  struct Peer {
    uint32_t ip = 0;
    uint16_t port = 0;
  };
  std::chrono::steady_clock::time_point Now() const {
    return clock_ ? clock_() : std::chrono::steady_clock::now();
  }

  int fd_ = -1;
  bool request_extended_ = false;
  uint32_t next_seq_ = 1;
  std::unordered_map<NodeId, Peer> peers_;
  std::unordered_map<uint32_t, NodeId> ip_to_host_;
  std::function<std::chrono::steady_clock::time_point()> clock_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_STATUS_UDP_TRANSPORT_H_
