#include "src/status/status.h"

#include <cstring>
#include <string>

namespace cloudtalk {

namespace {

constexpr uint16_t kMagic = 0xC10D;  // "CloUD".
constexpr uint8_t kVersion = 1;
constexpr uint8_t kTypeRequest = 1;
constexpr uint8_t kTypeReply = 2;
constexpr uint8_t kTypeReplyV2 = 3;
constexpr uint8_t kRequestFlagExtended = 0x1;

void PutU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Rates travel as integer bits-per-second.
uint64_t RateToWire(Bps rate) { return rate <= 0 ? 0 : static_cast<uint64_t>(rate); }

}  // namespace

StatusReport StatusReport::AssumeLoaded(NodeId host, const HostCaps& caps) {
  StatusReport report;
  report.host = host;
  report.nic_tx_cap = caps.nic_up;
  report.nic_tx_use = caps.nic_up;
  report.nic_rx_cap = caps.nic_down;
  report.nic_rx_use = caps.nic_down;
  report.disk_read_cap = caps.disk_read;
  report.disk_read_use = caps.disk_read;
  report.disk_write_cap = caps.disk_write;
  report.disk_write_use = caps.disk_write;
  report.cpu_cores_total = caps.cpu_cores;
  report.cpu_cores_used = caps.cpu_cores;
  report.mem_total = caps.memory;
  report.mem_used = caps.memory;
  return report;
}

StatusReport StatusReport::Idle(NodeId host, const HostCaps& caps) {
  StatusReport report = AssumeLoaded(host, caps);
  report.nic_tx_use = 0;
  report.nic_rx_use = 0;
  report.disk_read_use = 0;
  report.disk_write_use = 0;
  report.cpu_cores_used = 0;
  report.mem_used = 0;
  return report;
}

// Request layout (64 bytes):
//   0  magic     u16
//   2  version   u8
//   3  type      u8
//   4  seq       u32
//   8  sender    u32
//  12  target    u32
//  16  pad[48]
ProbeRequestWire EncodeProbeRequest(uint32_t seq, uint32_t sender_ip, uint32_t target_ip,
                                    bool want_extended) {
  ProbeRequestWire wire{};
  PutU16(wire.data() + 0, kMagic);
  wire[2] = kVersion;
  wire[3] = kTypeRequest;
  PutU32(wire.data() + 4, seq);
  PutU32(wire.data() + 8, sender_ip);
  PutU32(wire.data() + 12, target_ip);
  wire[16] = want_extended ? kRequestFlagExtended : 0;
  return wire;
}

std::optional<DecodedProbeRequest> DecodeProbeRequest(const ProbeRequestWire& wire) {
  if (GetU16(wire.data()) != kMagic || wire[2] != kVersion || wire[3] != kTypeRequest) {
    return std::nullopt;
  }
  DecodedProbeRequest out;
  out.seq = GetU32(wire.data() + 4);
  out.sender_ip = GetU32(wire.data() + 8);
  out.target_ip = GetU32(wire.data() + 12);
  out.want_extended = (wire[16] & kRequestFlagExtended) != 0;
  return out;
}

// Reply layout (78 bytes):
//   0  magic     u16
//   2  version   u8
//   3  type      u8
//   4  seq       u32
//   8  reporter  u32
//  12  flags     u16
//  14  8 x u64   rates: txc txu rxc rxu drc dru dwc dwu
ProbeReplyWire EncodeProbeReply(uint32_t seq, uint32_t reporter_ip, const StatusReport& report) {
  ProbeReplyWire wire{};
  PutU16(wire.data() + 0, kMagic);
  wire[2] = kVersion;
  wire[3] = kTypeReply;
  PutU32(wire.data() + 4, seq);
  PutU32(wire.data() + 8, reporter_ip);
  PutU16(wire.data() + 12, 0);
  const Bps rates[8] = {report.nic_tx_cap,    report.nic_tx_use,    report.nic_rx_cap,
                        report.nic_rx_use,    report.disk_read_cap, report.disk_read_use,
                        report.disk_write_cap, report.disk_write_use};
  for (int i = 0; i < 8; ++i) {
    PutU64(wire.data() + 14 + 8 * i, RateToWire(rates[i]));
  }
  return wire;
}

std::optional<DecodedProbeReply> DecodeProbeReply(const ProbeReplyWire& wire) {
  if (GetU16(wire.data()) != kMagic || wire[2] != kVersion || wire[3] != kTypeReply) {
    return std::nullopt;
  }
  DecodedProbeReply out;
  out.seq = GetU32(wire.data() + 4);
  out.reporter_ip = GetU32(wire.data() + 8);
  Bps* rates[8] = {&out.report.nic_tx_cap,    &out.report.nic_tx_use,
                   &out.report.nic_rx_cap,    &out.report.nic_rx_use,
                   &out.report.disk_read_cap, &out.report.disk_read_use,
                   &out.report.disk_write_cap, &out.report.disk_write_use};
  for (int i = 0; i < 8; ++i) {
    *rates[i] = static_cast<Bps>(GetU64(wire.data() + 14 + 8 * i));
  }
  return out;
}

// v2 reply layout: the 78-byte v1 layout (type = 3) followed by
//   78  cpu total   u32 (milli-cores)
//   82  cpu used    u32 (milli-cores)
//   86  mem total   u64
//   94  mem used    u64
ProbeReplyV2Wire EncodeProbeReplyV2(uint32_t seq, uint32_t reporter_ip,
                                    const StatusReport& report) {
  const ProbeReplyWire v1 = EncodeProbeReply(seq, reporter_ip, report);
  ProbeReplyV2Wire wire{};
  std::memcpy(wire.data(), v1.data(), v1.size());
  wire[3] = kTypeReplyV2;
  PutU32(wire.data() + 78, static_cast<uint32_t>(report.cpu_cores_total * 1000));
  PutU32(wire.data() + 82, static_cast<uint32_t>(report.cpu_cores_used * 1000));
  PutU64(wire.data() + 86, static_cast<uint64_t>(report.mem_total));
  PutU64(wire.data() + 94, static_cast<uint64_t>(report.mem_used));
  return wire;
}

std::optional<DecodedProbeReply> DecodeProbeReplyV2(const ProbeReplyV2Wire& wire) {
  if (GetU16(wire.data()) != kMagic || wire[2] != kVersion || wire[3] != kTypeReplyV2) {
    return std::nullopt;
  }
  ProbeReplyWire v1{};
  std::memcpy(v1.data(), wire.data(), v1.size());
  v1[3] = kTypeReply;
  std::optional<DecodedProbeReply> out = DecodeProbeReply(v1);
  if (!out.has_value()) {
    return std::nullopt;
  }
  out->report.cpu_cores_total = GetU32(wire.data() + 78) / 1000.0;
  out->report.cpu_cores_used = GetU32(wire.data() + 82) / 1000.0;
  out->report.mem_total = static_cast<Bytes>(GetU64(wire.data() + 86));
  out->report.mem_used = static_cast<Bytes>(GetU64(wire.data() + 94));
  return out;
}

uint32_t PackIpv4(const std::string& dotted) {
  uint32_t ip = 0;
  uint32_t part = 0;
  int shift = 24;
  for (char c : dotted + ".") {
    if (c == '.') {
      ip |= (part & 0xFF) << shift;
      shift -= 8;
      part = 0;
      if (shift < -8) {
        break;
      }
    } else if (c >= '0' && c <= '9') {
      part = part * 10 + static_cast<uint32_t>(c - '0');
    }
  }
  return ip;
}

std::string UnpackIpv4(uint32_t ip) {
  return std::to_string((ip >> 24) & 0xFF) + "." + std::to_string((ip >> 16) & 0xFF) + "." +
         std::to_string((ip >> 8) & 0xFF) + "." + std::to_string(ip & 0xFF);
}

}  // namespace cloudtalk
