#include "src/status/metrics_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/obs/metrics.h"

namespace cloudtalk {

namespace {

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(const char* status, const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

MetricsEndpoint::~MetricsEndpoint() { Stop(); }

bool MetricsEndpoint::Start(uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 8) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);
  running_.store(true);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void MetricsEndpoint::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void MetricsEndpoint::Loop() {
  while (running_.load()) {
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // Re-check running_ regularly.
    if (ready <= 0) {
      continue;
    }
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      continue;
    }
    char request[1024];
    const ssize_t n = ::recv(client, request, sizeof(request) - 1, 0);
    if (n > 0) {
      request[n] = '\0';
      // Only the request line matters: "GET <path> HTTP/1.x".
      const char* path_begin = std::strchr(request, ' ');
      std::string path;
      if (path_begin != nullptr) {
        const char* path_end = std::strchr(path_begin + 1, ' ');
        if (path_end != nullptr) {
          path.assign(path_begin + 1, path_end);
        }
      }
      if (std::strncmp(request, "GET ", 4) != 0) {
        SendAll(client, HttpResponse("405 Method Not Allowed", "text/plain",
                                     "only GET is supported\n"));
      } else if (path == "/metrics") {
        SendAll(client,
                HttpResponse("200 OK", "text/plain; version=0.0.4; charset=utf-8",
                             obs::Registry::Instance().RenderPrometheus()));
      } else if (path == "/") {
        SendAll(client, HttpResponse("200 OK", "text/plain",
                                     "cloudtalk metrics endpoint; scrape /metrics\n"));
      } else {
        SendAll(client, HttpResponse("404 Not Found", "text/plain", "not found\n"));
      }
      requests_served_.fetch_add(1);
    }
    ::close(client);
  }
}

}  // namespace cloudtalk
