// Resource registry for the fluid simulation.
//
// A "resource" is anything with a bit-rate capacity that flows contend for:
// every directed fabric link, plus four per-host endpoint resources (NIC up,
// NIC down, disk read bandwidth, disk write bandwidth). NIC resources are
// separate from the host access link so that per-VM rate caps (EC2 style)
// can be lower than the physical link.
#ifndef CLOUDTALK_SRC_FLUIDSIM_RESOURCES_H_
#define CLOUDTALK_SRC_FLUIDSIM_RESOURCES_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/topology/topology.h"

namespace cloudtalk {

using ResourceId = int32_t;
inline constexpr ResourceId kInvalidResource = -1;

enum class ResourceKind { kLink, kNicUp, kNicDown, kDiskRead, kDiskWrite };

// Maps topology elements to dense resource ids and records capacities.
class ResourceRegistry {
 public:
  explicit ResourceRegistry(const Topology& topo);

  ResourceId LinkResource(LinkId link) const { return link_base_ + link; }
  ResourceId NicUp(NodeId host) const { return HostResource(host, 0); }
  ResourceId NicDown(NodeId host) const { return HostResource(host, 1); }
  ResourceId DiskRead(NodeId host) const { return HostResource(host, 2); }
  ResourceId DiskWrite(NodeId host) const { return HostResource(host, 3); }

  int num_resources() const { return static_cast<int>(capacity_.size()); }
  Bps capacity(ResourceId r) const { return capacity_[r]; }
  void set_capacity(ResourceId r, Bps capacity) { capacity_[r] = capacity; }

  ResourceKind kind(ResourceId r) const { return kind_[r]; }
  // The host a NIC/disk resource belongs to; kInvalidNode for links.
  NodeId host_of(ResourceId r) const { return host_of_[r]; }

  // All resources a src->dst network transfer consumes at its flow rate:
  // src NIC up, every directed link on the path, dst NIC down.
  std::vector<ResourceId> NetworkPath(const Topology& topo, NodeId src, NodeId dst,
                                      uint64_t ecmp_salt = 0) const;

 private:
  ResourceId HostResource(NodeId host, int which) const {
    return host_base_[host] + which;
  }

  ResourceId link_base_ = 0;
  std::vector<ResourceId> host_base_;  // Indexed by NodeId; -1 for switches.
  std::vector<Bps> capacity_;
  std::vector<ResourceKind> kind_;
  std::vector<NodeId> host_of_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_FLUIDSIM_RESOURCES_H_
