#include "src/fluidsim/fluid_simulation.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace cloudtalk {

namespace {
// Transfers below this many bytes count as complete (guards float drift).
constexpr Bytes kByteEpsilon = 1e-6;
constexpr Seconds kTimeEpsilon = 1e-12;

// Time comparisons need a tolerance that scales with the magnitude of the
// timestamp: at t = 10^6 s a double's ULP is ~2.2e-10 s, far above the old
// absolute 1e-12 epsilon, so completion times computed as now + dt could
// land an ULP before `now` and trip the scheduled-in-the-past check on
// long-horizon runs (the regression_epsilon_drift scenario guards this).
Seconds TimeEps(Seconds t) { return std::max(kTimeEpsilon, 2e-15 * std::abs(t)); }
}  // namespace

FluidSimulation::FluidSimulation(const Topology* topo, double min_available_fraction)
    : topo_(topo), registry_(*topo), min_available_fraction_(min_available_fraction) {
  background_.assign(registry_.num_resources(), 0.0);
}

void FluidSimulation::SetBackground(ResourceId r, Bps usage) {
  background_[r] = std::max(0.0, usage);
  rates_dirty_ = true;
}

void FluidSimulation::AddBackground(ResourceId r, Bps delta) {
  SetBackground(r, background_[r] + delta);
}

std::vector<ResourceId> FluidSimulation::AddBackgroundPath(NodeId src, NodeId dst, Bps rate,
                                                           uint64_t ecmp_salt) {
  std::vector<ResourceId> touched = registry_.NetworkPath(*topo_, src, dst, ecmp_salt);
  for (ResourceId r : touched) {
    AddBackground(r, rate);
  }
  return touched;
}

GroupId FluidSimulation::AddGroup(GroupSpec spec, CompletionCallback on_complete) {
  CT_OBS_INC("M303");
  const GroupId id = static_cast<GroupId>(groups_.size());
  Group group;
  group.id = id;
  group.rate_limit = spec.rate_limit;
  group.start_time = std::max(spec.start_time, now_);
  group.on_complete = std::move(on_complete);
  group.members.reserve(spec.flows.size());
  for (FluidFlow& flow : spec.flows) {
    Member member;
    member.resources = std::move(flow.resources);
    member.remaining = flow.size;
    member.done = flow.size <= kByteEpsilon;
    group.members.push_back(std::move(member));
  }
  groups_.push_back(std::move(group));

  Group& stored = groups_.back();
  const bool empty_group =
      std::all_of(stored.members.begin(), stored.members.end(),
                  [](const Member& m) { return m.done; });
  auto start_group = [this, id] {
    Group& g = groups_[id];
    if (g.cancelled || g.started) {
      return;
    }
    g.started = true;
    active_groups_.push_back(id);
    rates_dirty_ = true;
    FinishGroupIfDone(g);
  };
  if (empty_group) {
    // Zero-size groups complete instantly at their start time.
    Schedule(stored.start_time, start_group);
  } else if (stored.start_time <= now_ + TimeEps(now_)) {
    start_group();
  } else {
    Schedule(stored.start_time, start_group);
  }
  return id;
}

void FluidSimulation::CancelGroup(GroupId id) {
  Group& group = groups_[id];
  if (group.finished || group.cancelled) {
    return;
  }
  group.cancelled = true;
  rates_dirty_ = true;
}

bool FluidSimulation::GroupActive(GroupId id) const {
  const Group& group = groups_[id];
  return group.started && !group.finished && !group.cancelled;
}

Bps FluidSimulation::GroupRate(GroupId id) const {
  return GroupActive(id) ? groups_[id].rate : 0.0;
}

Bytes FluidSimulation::GroupTransferred(GroupId id, int flow_index) const {
  const Group& group = groups_[id];
  if (flow_index < 0 || flow_index >= static_cast<int>(group.members.size())) {
    CT_INVARIANT(false, "I105", "GroupTransferred queried with an invalid member index")
        .With("group", id)
        .With("flow_index", flow_index)
        .With("members", group.members.size());
    return 0;  // Keep log-and-continue runs in-bounds.
  }
  return group.members[flow_index].transferred;
}

Bps FluidSimulation::Usage(ResourceId r) const {
  // Elastic consumption must reflect *current* rates.
  const_cast<FluidSimulation*>(this)->RecomputeRates();
  Bps usage = background_[r];
  for (GroupId id : active_groups_) {
    const Group& group = groups_[id];
    if (!GroupActive(id)) {
      continue;
    }
    for (const Member& member : group.members) {
      if (member.done) {
        continue;
      }
      for (ResourceId res : member.resources) {
        if (res == r) {
          usage += group.rate;
        }
      }
    }
  }
  return usage;
}

std::vector<Bps> FluidSimulation::UsageSnapshot() const {
  const_cast<FluidSimulation*>(this)->RecomputeRates();
  std::vector<Bps> usage = background_;
  for (GroupId id : active_groups_) {
    const Group& group = groups_[id];
    if (!GroupActive(id)) {
      continue;
    }
    for (const Member& member : group.members) {
      if (member.done) {
        continue;
      }
      for (ResourceId r : member.resources) {
        usage[r] += group.rate;
      }
    }
  }
  return usage;
}

void FluidSimulation::Schedule(Seconds time, std::function<void()> fn) {
  CT_INVARIANT(time >= now_ - TimeEps(now_), "I103", "event scheduled before the current time")
      .With("time", time)
      .With("now", now_)
      .With("behind_by", now_ - time);
  events_.push(TimedEvent{std::max(time, now_), next_seq_++, std::move(fn)});
}

void FluidSimulation::RecomputeRates() {
  if (!rates_dirty_) {
    return;
  }
  rates_dirty_ = false;
  ++recompute_count_;
  CT_OBS_INC("M302");

  // Compact the active list (groups may have finished or been cancelled).
  active_groups_.erase(std::remove_if(active_groups_.begin(), active_groups_.end(),
                                      [this](GroupId id) { return !GroupActive(id); }),
                       active_groups_.end());

  const int n = static_cast<int>(active_groups_.size());
  scratch_n_ = n;  // VerifyAllocation's view of how much scratch is valid.
  if (n == 0) {
    return;
  }

  // Per-resource available capacity for elastic traffic. The floor models a
  // transport that still progresses against inelastic line-rate blasts.
  // Sparse: touch only resources some active member uses. All scratch lives
  // in members (cleared, not reallocated) so that a simulation reused across
  // thousands of estimator bindings stays allocation-free in steady state.
  if (slot_of_resource_.size() != static_cast<size_t>(registry_.num_resources())) {
    slot_of_resource_.assign(registry_.num_resources(), -1);
  }
  std::vector<ResourceId>& used_resources = scratch_used_resources_;
  std::vector<int>& resource_slot = slot_of_resource_;
  std::vector<ResourceState>& state = scratch_state_;
  used_resources.clear();
  state.clear();

  // weights[i][slot] -> count of traversals of that resource by group i.
  if (static_cast<int>(scratch_weights_.size()) < n) {
    scratch_weights_.resize(n);
  }
  std::vector<std::vector<std::pair<int, double>>>& weights = scratch_weights_;
  for (int i = 0; i < n; ++i) {
    weights[i].clear();
  }
  for (int i = 0; i < n; ++i) {
    const Group& group = groups_[active_groups_[i]];
    for (const Member& member : group.members) {
      if (member.done) {
        continue;
      }
      for (ResourceId r : member.resources) {
        int slot = resource_slot[r];
        if (slot < 0) {
          slot = static_cast<int>(used_resources.size());
          resource_slot[r] = slot;
          used_resources.push_back(r);
          ResourceState rs;
          const Bps cap = registry_.capacity(r);
          rs.avail = std::max(cap * min_available_fraction_, cap - background_[r]);
          rs.initial_avail = rs.avail;
          state.push_back(rs);
        }
        bool merged = false;
        for (auto& [s, w] : weights[i]) {
          if (s == slot) {
            w += 1.0;
            merged = true;
            break;
          }
        }
        if (!merged) {
          weights[i].emplace_back(slot, 1.0);
        }
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    for (const auto& [slot, w] : weights[i]) {
      state[slot].weight_unfrozen += w;
    }
  }

  // Progressive filling with weighted consumption and per-group rate caps.
  scratch_frozen_.assign(n, 0);
  scratch_rate_.assign(n, 0.0);
  if constexpr (check::kInvariantsEnabled) {
    scratch_fallback_.assign(n, 0);
  }
  std::vector<char>& frozen = scratch_frozen_;
  std::vector<Bps>& rate = scratch_rate_;
  int remaining = n;
  int waterfill_rounds = 0;
  while (remaining > 0) {
    ++waterfill_rounds;
    // The next constraint is either a bottleneck resource's fair share or a
    // group's explicit rate limit, whichever is smaller.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (int slot = 0; slot < static_cast<int>(state.size()); ++slot) {
      if (state[slot].weight_unfrozen > 0) {
        bottleneck = std::min(bottleneck, state[slot].avail / state[slot].weight_unfrozen);
      }
    }
    double min_limit = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      if (!frozen[i]) {
        min_limit = std::min(min_limit, groups_[active_groups_[i]].rate_limit);
      }
    }
    // A group with no constrained resources and no rate cap (e.g. a pure
    // loopback transfer) is effectively instantaneous: pin it at a huge
    // finite rate instead of infinity.
    const double level =
        std::isfinite(std::min(bottleneck, min_limit)) ? std::min(bottleneck, min_limit) : 1e15;

    // Freeze every group pinned at this level: either its limit equals the
    // level, or it traverses a resource whose fair share equals the level.
    bool froze_any = false;
    for (int i = 0; i < n; ++i) {
      if (frozen[i]) {
        continue;
      }
      bool pin = groups_[active_groups_[i]].rate_limit <= level + 1e-9;
      if (!pin) {
        for (const auto& [slot, w] : weights[i]) {
          (void)w;
          if (state[slot].weight_unfrozen > 0 &&
              state[slot].avail / state[slot].weight_unfrozen <= level + 1e-9) {
            pin = true;
            break;
          }
        }
      }
      if (pin) {
        frozen[i] = true;
        rate[i] = std::max(0.0, level);
        --remaining;
        froze_any = true;
        for (const auto& [slot, w] : weights[i]) {
          state[slot].avail -= rate[i] * w;
          state[slot].weight_unfrozen -= w;
        }
      }
    }
    if (!froze_any) {
      // Numerical corner: freeze everything at the level to guarantee
      // termination. These groups skip the consumption bookkeeping, so the
      // allocation checker must not hold them (or their resources) to the
      // bottleneck/conservation invariants.
      for (int i = 0; i < n; ++i) {
        if (!frozen[i]) {
          frozen[i] = true;
          rate[i] = std::max(0.0, level);
          --remaining;
          if constexpr (check::kInvariantsEnabled) {
            scratch_fallback_[i] = 1;
          }
        }
      }
    }
  }
  CT_OBS_ADD("M301", waterfill_rounds);
  for (int i = 0; i < n; ++i) {
    groups_[active_groups_[i]].rate = rate[i];
  }
  // Sparse reset: clear only the slots this recompute touched.
  for (ResourceId r : used_resources) {
    resource_slot[r] = -1;
  }
  VerifyAllocation();
}

void FluidSimulation::VerifyAllocation() {
  if constexpr (check::kInvariantsEnabled) {
    // Checks run against the scratch of the most recent RecomputeRates; a
    // stale view (groups added/finished since) proves nothing, so bail.
    const int n = scratch_n_;
    if (n == 0 || n != static_cast<int>(active_groups_.size())) {
      return;
    }
    std::vector<double> consumed(scratch_state_.size(), 0.0);
    std::vector<char> slot_tainted(scratch_state_.size(), 0);
    for (int i = 0; i < n; ++i) {
      const Group& group = groups_[active_groups_[i]];
      for (const auto& [slot, w] : scratch_weights_[i]) {
        consumed[slot] += group.rate * w;
        if (scratch_fallback_[i]) {
          slot_tainted[slot] = 1;
        }
      }
    }
    // I102: allocated rates never oversubscribe a resource's elastic share.
    for (int slot = 0; slot < static_cast<int>(consumed.size()); ++slot) {
      if (slot_tainted[slot]) {
        continue;
      }
      const double avail = scratch_state_[slot].initial_avail;
      CT_INVARIANT(consumed[slot] <= avail * (1.0 + 1e-6) + 1.0, "I102",
                   "resource oversubscribed by the max-min allocation")
          .With("resource", scratch_used_resources_[slot])
          .With("consumed_bps", consumed[slot])
          .With("available_bps", avail)
          .With("time", now_);
    }
    // I101: every group is pinned by *something* — its rate cap, a saturated
    // resource it traverses, or the unconstrained-group sentinel rate.
    for (int i = 0; i < n; ++i) {
      if (scratch_fallback_[i]) {
        continue;
      }
      const Group& group = groups_[active_groups_[i]];
      bool pinned = group.rate >= 1e15 * 0.999;  // Loopback/no-resource sentinel.
      if (!pinned && std::isfinite(group.rate_limit)) {
        pinned = group.rate >= group.rate_limit * (1.0 - 1e-9) - 1e-9;
      }
      if (!pinned) {
        for (const auto& [slot, w] : scratch_weights_[i]) {
          (void)w;
          if (consumed[slot] >= scratch_state_[slot].initial_avail * (1.0 - 1e-6) - 1.0) {
            pinned = true;
            break;
          }
        }
      }
      CT_INVARIANT(pinned, "I101", "flow group neither bottlenecked nor at its rate cap")
          .With("group", group.id)
          .With("rate_bps", group.rate)
          .With("rate_limit_bps", group.rate_limit)
          .With("resources_traversed", scratch_weights_[i].size())
          .With("time", now_);
    }
  }
}

void FluidSimulation::CheckInvariantsNow() {
  if constexpr (check::kInvariantsEnabled) {
    rates_dirty_ = true;
    RecomputeRates();  // Runs VerifyAllocation on a fresh allocation.
    for (GroupId id : active_groups_) {
      const Group& group = groups_[id];
      if (!GroupActive(id)) {
        continue;
      }
      for (size_t m = 0; m < group.members.size(); ++m) {
        CT_INVARIANT(group.members[m].remaining >= 0, "I104",
                     "member has negative residual bytes")
            .With("group", id)
            .With("member", m)
            .With("remaining", group.members[m].remaining);
      }
    }
    if (!events_.empty()) {
      CT_INVARIANT(events_.top().time >= now_ - TimeEps(now_), "I103",
                   "pending event is earlier than the current time")
          .With("event_time", events_.top().time)
          .With("now", now_);
    }
  }
}

void FluidSimulation::Reset() {
  groups_.clear();
  active_groups_.clear();
  while (!events_.empty()) {
    events_.pop();
  }
  now_ = 0;
  next_seq_ = 0;
  rates_dirty_ = true;
  // background_, registry_ (capacities) and recompute_count_ survive; the
  // estimator sets background once per query and Reset()s per binding.
}

Seconds FluidSimulation::NextCompletionTime() const {
  Seconds best = std::numeric_limits<Seconds>::infinity();
  for (GroupId id : active_groups_) {
    const Group& group = groups_[id];
    if (!GroupActive(id) || group.rate <= 0) {
      continue;
    }
    for (const Member& member : group.members) {
      if (member.done) {
        continue;
      }
      best = std::min(best, now_ + TransferTime(member.remaining, group.rate));
    }
  }
  return best;
}

void FluidSimulation::FinishGroupIfDone(Group& group) {
  if (group.finished || group.cancelled || !group.started) {
    return;
  }
  for (const Member& member : group.members) {
    if (!member.done) {
      return;
    }
  }
  group.finished = true;
  group.rate = 0;
  rates_dirty_ = true;
  if (group.on_complete) {
    // Defer the callback through the event queue so user code never runs in
    // the middle of Settle()'s bookkeeping.
    auto cb = group.on_complete;
    const GroupId id = group.id;
    Schedule(now_, [cb, id, this] { cb(id, now_); });
  }
}

void FluidSimulation::Settle(Seconds dt) {
  if (dt < 0) {
    return;
  }
  for (GroupId id : active_groups_) {
    Group& group = groups_[id];
    if (!GroupActive(id) || group.rate <= 0) {
      continue;
    }
    const Bytes moved = group.rate * dt / 8.0;
    for (Member& member : group.members) {
      if (member.done) {
        continue;
      }
      const Bytes step = std::min(moved, member.remaining);
      member.remaining -= step;
      member.transferred += step;
      // A member is done when its bytes ran out, or when float drift left a
      // residue that would complete in (far) under a picosecond anyway.
      CT_INVARIANT(member.remaining >= 0, "I104", "member has negative residual bytes")
          .With("group", id)
          .With("remaining", member.remaining)
          .With("rate_bps", group.rate)
          .With("dt", dt);
      if (member.remaining <= kByteEpsilon ||
          TransferTime(member.remaining, group.rate) <= kTimeEpsilon) {
        member.transferred += member.remaining;
        member.remaining = 0;
        member.done = true;
        rates_dirty_ = true;
      }
    }
    FinishGroupIfDone(group);
  }
}

void FluidSimulation::RunUntil(Seconds t) {
  CT_ACCESS_GUARD(access_cell_);
  while (now_ < t - TimeEps(t)) {
    RecomputeRates();
    const Seconds completion = NextCompletionTime();
    const Seconds next_event =
        events_.empty() ? std::numeric_limits<Seconds>::infinity() : events_.top().time;
    const Seconds target = std::min({t, completion, next_event});
    if (!std::isfinite(target)) {
      now_ = t;
      return;
    }
    CT_INVARIANT(target >= now_ - TimeEps(now_), "I106", "simulation time would move backwards")
        .With("now", now_)
        .With("target", target);
    Settle(target - now_);
    now_ = std::max(now_, target);
    // Fire every event scheduled at (or before) the new time.
    while (!events_.empty() && events_.top().time <= now_ + TimeEps(now_)) {
      auto fn = events_.top().fn;
      events_.pop();
      CT_OBS_INC("M300");
      fn();
    }
  }
}

bool FluidSimulation::RunUntilIdle(Seconds hard_deadline) {
  CT_ACCESS_GUARD(access_cell_);
  while (now_ < hard_deadline) {
    RecomputeRates();
    const bool has_active =
        std::any_of(active_groups_.begin(), active_groups_.end(),
                    [this](GroupId id) { return GroupActive(id); });
    if (!has_active && events_.empty()) {
      return true;
    }
    const Seconds completion = NextCompletionTime();
    const Seconds next_event =
        events_.empty() ? std::numeric_limits<Seconds>::infinity() : events_.top().time;
    const Seconds target = std::min(completion, next_event);
    if (!std::isfinite(target)) {
      CLOUDTALK_LOG(kWarning) << "fluid simulation stalled at t=" << now_
                              << " with zero-rate active groups";
      return false;
    }
    CT_INVARIANT(target >= now_ - TimeEps(now_), "I106", "simulation time would move backwards")
        .With("now", now_)
        .With("target", target);
    Settle(target - now_);
    now_ = std::max(now_, target);
    while (!events_.empty() && events_.top().time <= now_ + TimeEps(now_)) {
      auto fn = events_.top().fn;
      events_.pop();
      CT_OBS_INC("M300");
      fn();
    }
  }
  return false;
}

}  // namespace cloudtalk
