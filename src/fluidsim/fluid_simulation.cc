#include "src/fluidsim/fluid_simulation.h"

#include <algorithm>
#include <cmath>

#if defined(CLOUDTALK_SIMD) && defined(__AVX2__)
#include <immintrin.h>
#endif

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace cloudtalk {

namespace {
// Transfers below this many bytes count as complete (guards float drift).
constexpr Bytes kByteEpsilon = 1e-6;
constexpr Seconds kTimeEpsilon = 1e-12;

// Time comparisons need a tolerance that scales with the magnitude of the
// timestamp: at t = 10^6 s a double's ULP is ~2.2e-10 s, far above the old
// absolute 1e-12 epsilon, so completion times computed as now + dt could
// land an ULP before `now` and trip the scheduled-in-the-past check on
// long-horizon runs (the regression_epsilon_drift scenario guards this).
Seconds TimeEps(Seconds t) { return std::max(kTimeEpsilon, 2e-15 * std::abs(t)); }

// Smallest fair share avail[k]/wuf[k] over slots with unfrozen weight. The
// SoA layout makes this the solver's innermost hot loop; both bodies are
// bitwise-identical because the quotients are never NaN (wuf > 0) and min is
// order-independent over non-NaN doubles.
double BottleneckLevel(const double* avail, const double* wuf, int count) {
#if defined(CLOUDTALK_SIMD) && defined(__AVX2__)
  const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
  __m256d best = inf;
  int k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d w = _mm256_loadu_pd(wuf + k);
    const __m256d a = _mm256_loadu_pd(avail + k);
    // Masked lanes (wuf <= 0) become +inf before the min, mirroring the
    // scalar guard; IEEE division is exact per lane.
    const __m256d mask = _mm256_cmp_pd(w, _mm256_setzero_pd(), _CMP_GT_OQ);
    const __m256d q = _mm256_blendv_pd(inf, _mm256_div_pd(a, w), mask);
    best = _mm256_min_pd(best, q);
  }
  double lanes[4];
  _mm256_storeu_pd(lanes, best);
  double out = std::min(std::min(lanes[0], lanes[1]), std::min(lanes[2], lanes[3]));
  for (; k < count; ++k) {
    if (wuf[k] > 0) {
      out = std::min(out, avail[k] / wuf[k]);
    }
  }
  return out;
#else
  double out = std::numeric_limits<double>::infinity();
  for (int k = 0; k < count; ++k) {
    if (wuf[k] > 0) {
      out = std::min(out, avail[k] / wuf[k]);
    }
  }
  return out;
#endif
}
}  // namespace

FluidSimulation::FluidSimulation(const Topology* topo, double min_available_fraction)
    : topo_(topo), registry_(*topo), min_available_fraction_(min_available_fraction) {
  background_.assign(registry_.num_resources(), 0.0);
  // NaN compares unequal to everything, so untouched resources can never
  // satisfy the delta cache's avail-equality test.
  prev_avail_of_resource_.assign(registry_.num_resources(),
                                 std::numeric_limits<double>::quiet_NaN());
}

void FluidSimulation::SetBackground(ResourceId r, Bps usage) {
  background_[r] = std::max(0.0, usage);
  rates_dirty_ = true;
  // The inelastic load is an input of every trajectory: a pristine post-save
  // run is over, and any pending fast-forward no longer matches reality.
  // (Per-resource avail is re-checked bitwise anyway; this is the cheap,
  // coarse gate.)
  run_clean_since_save_ = false;
  traj_tracking_ = false;
  ff_pending_ = false;
}

void FluidSimulation::AddBackground(ResourceId r, Bps delta) {
  SetBackground(r, background_[r] + delta);
}

std::vector<ResourceId> FluidSimulation::AddBackgroundPath(NodeId src, NodeId dst, Bps rate,
                                                           uint64_t ecmp_salt) {
  std::vector<ResourceId> touched = registry_.NetworkPath(*topo_, src, dst, ecmp_salt);
  for (ResourceId r : touched) {
    AddBackground(r, rate);
  }
  return touched;
}

GroupId FluidSimulation::AddGroup(GroupSpec spec, CompletionCallback on_complete) {
  CT_OBS_INC("M303");
  // A structural mutation ends the pristine post-save window (the trajectory
  // union-find is sized to the checkpointed group set) and invalidates any
  // pending fast-forward.
  run_clean_since_save_ = false;
  traj_tracking_ = false;
  ff_pending_ = false;
  const GroupId id = static_cast<GroupId>(groups_.size());
  Group group;
  group.id = id;
  group.rate_limit = spec.rate_limit;
  group.start_time = std::max(spec.start_time, now_);
  group.on_complete = std::move(on_complete);
  group.members.reserve(spec.flows.size());
  for (FluidFlow& flow : spec.flows) {
    Member member;
    member.resources = std::move(flow.resources);
    member.remaining = flow.size;
    member.done = flow.size <= kByteEpsilon;
    group.members.push_back(std::move(member));
  }
  groups_.push_back(std::move(group));

  Group& stored = groups_.back();
  const bool empty_group =
      std::all_of(stored.members.begin(), stored.members.end(),
                  [](const Member& m) { return m.done; });
  auto start_group = [this, id] {
    Group& g = groups_[id];
    if (g.cancelled || g.started) {
      return;
    }
    g.started = true;
    g.epoch_time = now_;
    g.delta_dirty = true;  // Joining the active set changes its component.
    active_groups_.push_back(id);
    rates_dirty_ = true;
    FinishGroupIfDone(g);
  };
  if (empty_group) {
    // Zero-size groups complete instantly at their start time.
    Schedule(stored.start_time, start_group);
  } else if (stored.start_time <= now_ + TimeEps(now_)) {
    start_group();
  } else {
    Schedule(stored.start_time, start_group);
  }
  return id;
}

void FluidSimulation::CancelGroup(GroupId id) {
  Group& group = groups_[id];
  if (group.finished || group.cancelled) {
    return;
  }
  group.cancelled = true;
  group.delta_dirty = true;
  rates_dirty_ = true;
  run_clean_since_save_ = false;
  traj_tracking_ = false;
  ff_pending_ = false;
}

bool FluidSimulation::GroupActive(GroupId id) const {
  const Group& group = groups_[id];
  return group.started && !group.finished && !group.cancelled;
}

Bps FluidSimulation::GroupRate(GroupId id) const {
  return GroupActive(id) ? groups_[id].rate : 0.0;
}

Bytes FluidSimulation::GroupTransferred(GroupId id, int flow_index) const {
  const Group& group = groups_[id];
  if (flow_index < 0 || flow_index >= static_cast<int>(group.members.size())) {
    CT_INVARIANT(false, "I105", "GroupTransferred queried with an invalid member index")
        .With("group", id)
        .With("flow_index", flow_index)
        .With("members", group.members.size());
    return 0;  // Keep log-and-continue runs in-bounds.
  }
  // Members hold their byte counts as of the group's epoch; progress since
  // then is a virtual read (rate x elapsed), so observers never force a
  // materialization that would split the group's float accumulation.
  const Member& member = group.members[flow_index];
  if (!GroupActive(id) || group.rate <= 0 || member.done) {
    return member.transferred;
  }
  const Bytes virt = std::min(group.rate * (now_ - group.epoch_time) / 8.0, member.remaining);
  return member.transferred + std::max(0.0, virt);
}

Bps FluidSimulation::Usage(ResourceId r) const {
  // Elastic consumption must reflect *current* rates.
  const_cast<FluidSimulation*>(this)->RecomputeRates();
  Bps usage = background_[r];
  for (GroupId id : active_groups_) {
    const Group& group = groups_[id];
    if (!GroupActive(id)) {
      continue;
    }
    for (const Member& member : group.members) {
      if (member.done) {
        continue;
      }
      for (ResourceId res : member.resources) {
        if (res == r) {
          usage += group.rate;
        }
      }
    }
  }
  return usage;
}

std::vector<Bps> FluidSimulation::UsageSnapshot() const {
  const_cast<FluidSimulation*>(this)->RecomputeRates();
  std::vector<Bps> usage = background_;
  for (GroupId id : active_groups_) {
    const Group& group = groups_[id];
    if (!GroupActive(id)) {
      continue;
    }
    for (const Member& member : group.members) {
      if (member.done) {
        continue;
      }
      for (ResourceId r : member.resources) {
        usage[r] += group.rate;
      }
    }
  }
  return usage;
}

void FluidSimulation::Schedule(Seconds time, std::function<void()> fn) {
  CT_INVARIANT(time >= now_ - TimeEps(now_), "I103", "event scheduled before the current time")
      .With("time", time)
      .With("now", now_)
      .With("behind_by", now_ - time);
  events_.push(TimedEvent{std::max(time, now_), next_seq_++, std::move(fn)});
}

void FluidSimulation::RecomputeRates() {
  if (!rates_dirty_) {
    return;
  }
  if (ff_pending_) {
    ff_pending_ = false;
    AttemptFastForward();
  }
  // Materializing a group inside the solve tail can epsilon-complete a
  // member (a residue below the byte/time epsilons), which changes the
  // incidence this very recompute partitioned. Rare; redo the layout until
  // it is stable (completion is monotone, so this terminates).
  for (int pass = 1;; ++pass) {
    rates_dirty_ = false;
    ++recompute_count_;
    CT_OBS_INC("M302");

  // Compact the active list (groups may have finished or been cancelled).
  active_groups_.erase(std::remove_if(active_groups_.begin(), active_groups_.end(),
                                      [this](GroupId id) { return !GroupActive(id); }),
                       active_groups_.end());

  const int n = static_cast<int>(active_groups_.size());
  scratch_n_ = n;  // VerifyAllocation's view of how much scratch is valid.
  if (n == 0) {
    if (pass == 1) {
      CaptureCheckpointSolution();
    }
    return;
  }

  // Sparse resource interning: touch only resources some active member uses.
  // All scratch lives in members (cleared, not reallocated) so that a
  // simulation reused across thousands of estimator bindings stays
  // allocation-free in steady state.
  if (slot_of_resource_.size() != static_cast<size_t>(registry_.num_resources())) {
    slot_of_resource_.assign(registry_.num_resources(), -1);
  }
  if (prev_avail_of_resource_.size() != static_cast<size_t>(registry_.num_resources())) {
    prev_avail_of_resource_.resize(registry_.num_resources(),
                                   std::numeric_limits<double>::quiet_NaN());
  }
  scratch_used_resources_.clear();
  raw_row_start_.resize(n + 1);
  raw_slot_.clear();
  raw_weight_.clear();

  // Pass 1: CSR incidence in active-group order with discovery-order slots.
  // Duplicate traversals of one resource by one group merge into a weight.
  for (int i = 0; i < n; ++i) {
    raw_row_start_[i] = static_cast<int>(raw_slot_.size());
    const Group& group = groups_[active_groups_[i]];
    for (const Member& member : group.members) {
      if (member.done) {
        continue;
      }
      for (ResourceId r : member.resources) {
        int slot = slot_of_resource_[r];
        if (slot < 0) {
          slot = static_cast<int>(scratch_used_resources_.size());
          slot_of_resource_[r] = slot;
          scratch_used_resources_.push_back(r);
        }
        bool merged = false;
        for (size_t k = raw_row_start_[i]; k < raw_slot_.size(); ++k) {
          if (raw_slot_[k] == slot) {
            raw_weight_[k] += 1.0;
            merged = true;
            break;
          }
        }
        if (!merged) {
          raw_slot_.push_back(slot);
          raw_weight_.push_back(1.0);
        }
      }
    }
  }
  raw_row_start_[n] = static_cast<int>(raw_slot_.size());
  const int num_slots = static_cast<int>(scratch_used_resources_.size());

  // Connected components of the group/resource bipartite graph: union every
  // pair of groups sharing a slot. Water-fill levels are computed *per
  // component* (a clean component's allocation is then a pure function of
  // unchanged inputs, which is what makes delta reuse bitwise-safe).
  uf_parent_.resize(n);
  for (int i = 0; i < n; ++i) {
    uf_parent_[i] = i;
  }
  auto find = [this](int x) {
    int root = x;
    while (uf_parent_[root] != root) {
      root = uf_parent_[root];
    }
    while (uf_parent_[x] != root) {
      const int next = uf_parent_[x];
      uf_parent_[x] = root;
      x = next;
    }
    return root;
  };
  slot_owner_group_.assign(num_slots, -1);
  for (int i = 0; i < n; ++i) {
    for (int k = raw_row_start_[i]; k < raw_row_start_[i + 1]; ++k) {
      const int s = raw_slot_[k];
      if (slot_owner_group_[s] < 0) {
        slot_owner_group_[s] = i;
      } else {
        uf_parent_[find(i)] = find(slot_owner_group_[s]);
      }
    }
  }
  // Dense component ids ordered by first appearance (ord_group_ doubles as
  // the root->component map until the counting sort below overwrites it).
  comp_of_group_.resize(n);
  ord_group_.assign(n, -1);
  int num_comps = 0;
  for (int i = 0; i < n; ++i) {
    const int root = find(i);
    if (ord_group_[root] < 0) {
      ord_group_[root] = num_comps++;
    }
    comp_of_group_[i] = ord_group_[root];
  }

  // Counting-sort groups into component-contiguous order (stable: ascending
  // active index within a component, so a single-component recompute scans
  // groups in exactly the legacy order).
  comp_group_start_.assign(num_comps + 1, 0);
  for (int i = 0; i < n; ++i) {
    ++comp_group_start_[comp_of_group_[i] + 1];
  }
  for (int c = 1; c <= num_comps; ++c) {
    comp_group_start_[c] += comp_group_start_[c - 1];
  }
  for (int i = 0; i < n; ++i) {
    ord_group_[comp_group_start_[comp_of_group_[i]]++] = i;
  }
  for (int c = num_comps; c >= 1; --c) {
    comp_group_start_[c] = comp_group_start_[c - 1];
  }
  comp_group_start_[0] = 0;

  // Trajectory closures (pristine post-save run only): groups that ever
  // share a component are unioned, so RestoreCheckpoint knows which sets of
  // groups evolve independently of every re-binding patch. Recorded on the
  // instantaneous partition each recompute; the union over time also links
  // delayed-start groups that merge components mid-run.
  if (traj_tracking_) {
    for (int c = 0; c < num_comps; ++c) {
      const int root =
          TrajFind(static_cast<int>(active_groups_[ord_group_[comp_group_start_[c]]]));
      for (int p = comp_group_start_[c] + 1; p < comp_group_start_[c + 1]; ++p) {
        traj_parent_[TrajFind(static_cast<int>(active_groups_[ord_group_[p]]))] = root;
      }
    }
  }

  // Same for slots, giving each component a contiguous renumbered slot range
  // so the bottleneck min-reduction runs over flat subarrays.
  comp_of_slot_.resize(num_slots);
  for (int s = 0; s < num_slots; ++s) {
    comp_of_slot_[s] = comp_of_group_[slot_owner_group_[s]];
  }
  comp_slot_start_.assign(num_comps + 1, 0);
  for (int s = 0; s < num_slots; ++s) {
    ++comp_slot_start_[comp_of_slot_[s] + 1];
  }
  for (int c = 1; c <= num_comps; ++c) {
    comp_slot_start_[c] += comp_slot_start_[c - 1];
  }
  slot_perm_.resize(num_slots);
  for (int s = 0; s < num_slots; ++s) {
    slot_perm_[s] = comp_slot_start_[comp_of_slot_[s]]++;
  }
  for (int c = num_comps; c >= 1; --c) {
    comp_slot_start_[c] = comp_slot_start_[c - 1];
  }
  comp_slot_start_[0] = 0;

  // SoA slot state. The floor models a transport that still progresses
  // against inelastic line-rate blasts.
  slot_avail_.resize(num_slots);
  slot_weight_unfrozen_.assign(num_slots, 0.0);
  slot_initial_avail_.resize(num_slots);
  slot_resource_.resize(num_slots);
  for (int s = 0; s < num_slots; ++s) {
    const int ns = slot_perm_[s];
    const ResourceId r = scratch_used_resources_[s];
    const Bps cap = registry_.capacity(r);
    const double avail = std::max(cap * min_available_fraction_, cap - background_[r]);
    slot_resource_[ns] = r;
    slot_avail_[ns] = avail;
    slot_initial_avail_[ns] = avail;
  }

  // Final CSR over ordered groups and renumbered slots; weight_unfrozen
  // accumulates here in ordered-group order (within a component that is the
  // legacy active order, so the sums are bitwise identical).
  row_start_.resize(n + 1);
  row_slot_.resize(raw_slot_.size());
  row_weight_.resize(raw_weight_.size());
  scratch_frozen_.assign(n, 0);
  scratch_rate_.assign(n, 0.0);
  scratch_limit_.resize(n);
  if constexpr (check::kInvariantsEnabled) {
    scratch_fallback_.assign(n, 0);
  }
  int nnz = 0;
  for (int p = 0; p < n; ++p) {
    row_start_[p] = nnz;
    const int i = ord_group_[p];
    scratch_limit_[p] = groups_[active_groups_[i]].rate_limit;
    for (int k = raw_row_start_[i]; k < raw_row_start_[i + 1]; ++k) {
      const int ns = slot_perm_[raw_slot_[k]];
      row_slot_[nnz] = ns;
      row_weight_[nnz] = raw_weight_[k];
      slot_weight_unfrozen_[ns] += raw_weight_[k];
      ++nnz;
    }
  }
  row_start_[n] = nnz;

  // Solve (or reuse) each component independently.
  int waterfill_rounds = 0;
  for (int c = 0; c < num_comps; ++c) {
    const int gb = comp_group_start_[c];
    const int ge = comp_group_start_[c + 1];
    const int sb = comp_slot_start_[c];
    const int se = comp_slot_start_[c + 1];

    // A component is reused bitwise iff every group is clean and carries the
    // same component epoch id, the component has the exact group set of that
    // epoch (epoch ids are never reissued, so id + size pins the set), and
    // every slot's freshly computed avail equals the avail the cached solve
    // consumed (covers background/capacity edits without mutation hooks).
    bool reuse = delta_reuse_enabled_;
    if (reuse) {
      const Group& first = groups_[active_groups_[ord_group_[gb]]];
      reuse = first.comp_id >= 0 && first.comp_size == ge - gb;
      for (int p = gb; reuse && p < ge; ++p) {
        const Group& g = groups_[active_groups_[ord_group_[p]]];
        reuse = !g.delta_dirty && g.comp_id == first.comp_id;
      }
      for (int s = sb; reuse && s < se; ++s) {
        reuse = prev_avail_of_resource_[slot_resource_[s]] == slot_avail_[s];
      }
    }
    if (reuse) {
      ++delta_component_hits_;
      CT_OBS_INC("M304");
      for (int p = gb; p < ge; ++p) {
        const Group& g = groups_[active_groups_[ord_group_[p]]];
        scratch_rate_[p] = g.cached_rate;
        scratch_frozen_[p] = 1;
        if constexpr (check::kInvariantsEnabled) {
          scratch_fallback_[p] = g.cached_fallback ? 1 : 0;
        }
      }
    } else {
      waterfill_rounds += WaterfillComponent(gb, ge, sb, se);
      ++cold_component_solves_;
      CT_OBS_INC("M305");
      CT_OBS_OBSERVE("M306", ge - gb);
      const int32_t epoch = next_comp_id_++;
      for (int p = gb; p < ge; ++p) {
        Group& g = groups_[active_groups_[ord_group_[p]]];
        g.comp_id = epoch;
        g.comp_size = ge - gb;
        g.cached_rate = scratch_rate_[p];
        if constexpr (check::kInvariantsEnabled) {
          g.cached_fallback = scratch_fallback_[p] != 0;
        }
      }
      for (int s = sb; s < se; ++s) {
        prev_avail_of_resource_[slot_resource_[s]] = slot_initial_avail_[s];
      }
    }
  }
  CT_OBS_ADD("M301", waterfill_rounds);
  for (int p = 0; p < n; ++p) {
    Group& g = groups_[active_groups_[ord_group_[p]]];
    const Bps new_rate = scratch_rate_[p];
    if (new_rate != g.rate) {
      // Rate transition: close the span the old rate governed before the new
      // one takes over. A component's rate only changes at its own events
      // (member completion, group start/patch, avail change), so this
      // materialization point — and hence the group's float accumulation —
      // is a pure function of the component's inputs. Unchanged-rate groups
      // (including every reused component) keep accumulating one fused span.
      MaterializeGroup(g, now_);
      if (!GroupActive(g.id)) {
        continue;  // The residue epsilon-completed; re-partition below.
      }
      g.rate = new_rate;
    }
    g.delta_dirty = false;
  }
  // Sparse reset: clear only the slots this recompute touched.
  for (ResourceId r : scratch_used_resources_) {
    slot_of_resource_[r] = -1;
  }
  if (pass == 1) {
    // Captured on the first pass: a restored run replays the passes
    // deterministically, so pass-1 solutions are what its reuse check sees.
    CaptureCheckpointSolution();
  }
  if (!rates_dirty_) {
    break;
  }
  }  // for (pass)
  VerifyAllocation();
}

int FluidSimulation::WaterfillComponent(int group_begin, int group_end, int slot_begin,
                                        int slot_end) {
  int remaining = group_end - group_begin;
  int rounds = 0;
  while (remaining > 0) {
    ++rounds;
    // The next constraint is either a bottleneck resource's fair share or a
    // group's explicit rate limit, whichever is smaller.
    const double bottleneck = BottleneckLevel(
        slot_avail_.data() + slot_begin, slot_weight_unfrozen_.data() + slot_begin,
        slot_end - slot_begin);
    double min_limit = std::numeric_limits<double>::infinity();
    for (int p = group_begin; p < group_end; ++p) {
      if (!scratch_frozen_[p]) {
        min_limit = std::min(min_limit, scratch_limit_[p]);
      }
    }
    // A group with no constrained resources and no rate cap (e.g. a pure
    // loopback transfer) is effectively instantaneous: pin it at a huge
    // finite rate instead of infinity.
    const double level =
        std::isfinite(std::min(bottleneck, min_limit)) ? std::min(bottleneck, min_limit) : 1e15;

    // Freeze every group pinned at this level: either its limit equals the
    // level, or it traverses a resource whose fair share equals the level.
    bool froze_any = false;
    for (int p = group_begin; p < group_end; ++p) {
      if (scratch_frozen_[p]) {
        continue;
      }
      bool pin = scratch_limit_[p] <= level + 1e-9;
      if (!pin) {
        for (int k = row_start_[p]; k < row_start_[p + 1]; ++k) {
          const int s = row_slot_[k];
          if (slot_weight_unfrozen_[s] > 0 &&
              slot_avail_[s] / slot_weight_unfrozen_[s] <= level + 1e-9) {
            pin = true;
            break;
          }
        }
      }
      if (pin) {
        scratch_frozen_[p] = 1;
        scratch_rate_[p] = std::max(0.0, level);
        --remaining;
        froze_any = true;
        for (int k = row_start_[p]; k < row_start_[p + 1]; ++k) {
          slot_avail_[row_slot_[k]] -= scratch_rate_[p] * row_weight_[k];
          slot_weight_unfrozen_[row_slot_[k]] -= row_weight_[k];
        }
      }
    }
    if (!froze_any) {
      // Numerical corner: freeze everything at the level to guarantee
      // termination. These groups skip the consumption bookkeeping, so the
      // allocation checker must not hold them (or their resources) to the
      // bottleneck/conservation invariants.
      for (int p = group_begin; p < group_end; ++p) {
        if (!scratch_frozen_[p]) {
          scratch_frozen_[p] = 1;
          scratch_rate_[p] = std::max(0.0, level);
          --remaining;
          if constexpr (check::kInvariantsEnabled) {
            scratch_fallback_[p] = 1;
          }
        }
      }
    }
  }
  return rounds;
}

void FluidSimulation::VerifyAllocation() {
  if constexpr (check::kInvariantsEnabled) {
    // Checks run against the scratch of the most recent RecomputeRates; a
    // stale view (groups added/finished since) proves nothing, so bail.
    // Reused components participate too: their cached rates and fallback
    // flags satisfy the same invariants they did when solved cold.
    const int n = scratch_n_;
    if (n == 0 || n != static_cast<int>(active_groups_.size())) {
      return;
    }
    const int num_slots = static_cast<int>(slot_resource_.size());
    std::vector<double> consumed(num_slots, 0.0);
    std::vector<char> slot_tainted(num_slots, 0);
    for (int p = 0; p < n; ++p) {
      const Group& group = groups_[active_groups_[ord_group_[p]]];
      for (int k = row_start_[p]; k < row_start_[p + 1]; ++k) {
        consumed[row_slot_[k]] += group.rate * row_weight_[k];
        if (scratch_fallback_[p]) {
          slot_tainted[row_slot_[k]] = 1;
        }
      }
    }
    // I102: allocated rates never oversubscribe a resource's elastic share.
    for (int slot = 0; slot < num_slots; ++slot) {
      if (slot_tainted[slot]) {
        continue;
      }
      const double avail = slot_initial_avail_[slot];
      CT_INVARIANT(consumed[slot] <= avail * (1.0 + 1e-6) + 1.0, "I102",
                   "resource oversubscribed by the max-min allocation")
          .With("resource", slot_resource_[slot])
          .With("consumed_bps", consumed[slot])
          .With("available_bps", avail)
          .With("time", now_);
    }
    // I101: every group is pinned by *something* — its rate cap, a saturated
    // resource it traverses, or the unconstrained-group sentinel rate.
    for (int p = 0; p < n; ++p) {
      if (scratch_fallback_[p]) {
        continue;
      }
      const Group& group = groups_[active_groups_[ord_group_[p]]];
      bool pinned = group.rate >= 1e15 * 0.999;  // Loopback/no-resource sentinel.
      if (!pinned && std::isfinite(group.rate_limit)) {
        pinned = group.rate >= group.rate_limit * (1.0 - 1e-9) - 1e-9;
      }
      if (!pinned) {
        for (int k = row_start_[p]; k < row_start_[p + 1]; ++k) {
          if (consumed[row_slot_[k]] >= slot_initial_avail_[row_slot_[k]] * (1.0 - 1e-6) - 1.0) {
            pinned = true;
            break;
          }
        }
      }
      CT_INVARIANT(pinned, "I101", "flow group neither bottlenecked nor at its rate cap")
          .With("group", group.id)
          .With("rate_bps", group.rate)
          .With("rate_limit_bps", group.rate_limit)
          .With("resources_traversed", row_start_[p + 1] - row_start_[p])
          .With("time", now_);
    }
  }
}

void FluidSimulation::CheckInvariantsNow() {
  if constexpr (check::kInvariantsEnabled) {
    rates_dirty_ = true;
    // Dirty every group so the sweep water-fills everything cold instead of
    // certifying cached component solutions against themselves.
    for (GroupId id : active_groups_) {
      groups_[id].delta_dirty = true;
    }
    RecomputeRates();  // Runs VerifyAllocation on a fresh allocation.
    for (GroupId id : active_groups_) {
      const Group& group = groups_[id];
      if (!GroupActive(id)) {
        continue;
      }
      for (size_t m = 0; m < group.members.size(); ++m) {
        CT_INVARIANT(group.members[m].remaining >= 0, "I104",
                     "member has negative residual bytes")
            .With("group", id)
            .With("member", m)
            .With("remaining", group.members[m].remaining);
      }
    }
    if (!events_.empty()) {
      CT_INVARIANT(events_.top().time >= now_ - TimeEps(now_), "I103",
                   "pending event is earlier than the current time")
          .With("event_time", events_.top().time)
          .With("now", now_);
    }
  }
}

void FluidSimulation::Reset() {
  groups_.clear();
  active_groups_.clear();
  while (!events_.empty()) {
    events_.pop();
  }
  now_ = 0;
  next_seq_ = 0;
  rates_dirty_ = true;
  // The checkpoint indexes into groups_, so it cannot survive a reset. The
  // delta cache needs no clearing: fresh groups start with comp_id = -1 and
  // epoch ids are never reissued, so stale prev_avail entries cannot match.
  checkpoint_.valid = false;
  run_clean_since_save_ = false;
  traj_tracking_ = false;
  ff_pending_ = false;
  // background_, registry_ (capacities) and recompute_count_ survive; the
  // estimator sets background once per query and Reset()s per binding.
}

void FluidSimulation::SaveCheckpoint() {
  Checkpoint& c = checkpoint_;
  c.valid = true;
  c.now = now_;
  c.next_seq = next_seq_;
  c.rates_dirty = rates_dirty_;
  c.groups.resize(groups_.size());
  for (size_t i = 0; i < groups_.size(); ++i) {
    const Group& g = groups_[i];
    GroupState& gs = c.groups[i];
    gs.started = g.started;
    gs.finished = g.finished;
    gs.cancelled = g.cancelled;
    gs.rate = g.rate;
    gs.finish_time = g.finish_time;
    gs.epoch_time = g.epoch_time;
    gs.members.resize(g.members.size());
    for (size_t m = 0; m < g.members.size(); ++m) {
      gs.members[m].resources = g.members[m].resources;
      gs.members[m].remaining = g.members[m].remaining;
      gs.members[m].transferred = g.members[m].transferred;
      gs.members[m].done = g.members[m].done;
    }
  }
  c.active_groups = active_groups_;
  c.events = events_;
  c.solution_captured = false;
  c.solutions.clear();
  c.solved_avail.clear();
  // Arm the trajectory capture: the run between this save and the first
  // restore is the pristine trajectory every later binding diffs against.
  c.final_captured = false;
  c.final_valid = false;
  c.final_groups.clear();
  c.traj_parent.clear();
  c.final_avail.clear();
  run_clean_since_save_ = true;
  traj_tracking_ = true;
  traj_parent_.resize(groups_.size());
  for (size_t i = 0; i < traj_parent_.size(); ++i) {
    traj_parent_[i] = static_cast<int>(i);
  }
}

int FluidSimulation::TrajFind(int g) {
  int root = g;
  while (traj_parent_[root] != root) {
    root = traj_parent_[root];
  }
  while (traj_parent_[g] != root) {
    const int next = traj_parent_[g];
    traj_parent_[g] = root;
    g = next;
  }
  return root;
}

void FluidSimulation::CaptureCheckpointTrajectory() {
  // One-shot, at the first RestoreCheckpoint after a save: if the run since
  // the save was pristine (no AddGroup/Cancel/SetBackground/patch) and ran
  // to quiescence, record its final state. Group progress is a pure
  // per-closure function, so any later binding whose patches leave a closure
  // untouched must reproduce exactly this state — fast-forward hands it out
  // without re-simulating.
  Checkpoint& c = checkpoint_;
  if (!c.valid || c.final_captured || !run_clean_since_save_) {
    return;
  }
  c.final_captured = true;
  traj_tracking_ = false;
  CT_DCHECK(groups_.size() == c.groups.size());
  for (const Group& g : groups_) {
    if (!g.finished && !g.cancelled) {
      return;  // The run did not complete; final_valid stays false.
    }
  }
  c.final_valid = true;
  c.final_now = now_;
  c.final_groups.resize(groups_.size());
  for (size_t i = 0; i < groups_.size(); ++i) {
    const Group& g = groups_[i];
    GroupState& fs = c.final_groups[i];
    fs.started = g.started;
    fs.finished = g.finished;
    fs.cancelled = g.cancelled;
    fs.rate = g.rate;
    fs.finish_time = g.finish_time;
    fs.epoch_time = g.epoch_time;
    fs.members.resize(g.members.size());
    for (size_t m = 0; m < g.members.size(); ++m) {
      // Resources are left empty: fast-forward never rewrites them (clean
      // closures keep their checkpoint-restored sets).
      fs.members[m].remaining = g.members[m].remaining;
      fs.members[m].transferred = g.members[m].transferred;
      fs.members[m].done = g.members[m].done;
    }
  }
  // Fully compress the closure union-find so lookups are one hop.
  for (size_t i = 0; i < traj_parent_.size(); ++i) {
    traj_parent_[i] = TrajFind(static_cast<int>(i));
  }
  c.traj_parent = traj_parent_;
  // The elastic capacity every trajectory consumed, for the bitwise
  // inputs-unchanged check (covers later SetBackground/capacity edits).
  c.final_avail.clear();
  for (size_t i = 0; i < c.groups.size(); ++i) {
    for (const MemberState& ms : c.groups[i].members) {
      for (const ResourceId r : ms.resources) {
        const Bps cap = registry_.capacity(r);
        const double avail =
            std::max(cap * min_available_fraction_, cap - background_[r]);
        c.final_avail.emplace_back(r, avail);
      }
    }
  }
  std::sort(c.final_avail.begin(), c.final_avail.end());
  c.final_avail.erase(std::unique(c.final_avail.begin(), c.final_avail.end()),
                      c.final_avail.end());
}

void FluidSimulation::CaptureCheckpointSolution() {
  // One-shot: the first recompute after SaveCheckpoint sees exactly the
  // checkpointed inputs, so its solution (and the avail values it recorded)
  // is the solution every restored run starts from. MarkGroupDirty before
  // that recompute cancels the capture (the inputs no longer match).
  Checkpoint& c = checkpoint_;
  if (!c.valid || c.solution_captured) {
    return;
  }
  c.solution_captured = true;
  c.solutions.resize(c.groups.size());
  for (size_t i = 0; i < c.groups.size(); ++i) {
    const Group& g = groups_[i];
    c.solutions[i] = GroupSolution{g.cached_fallback, g.comp_id, g.comp_size, g.cached_rate};
  }
  c.solved_avail.clear();
  for (ResourceId r : scratch_used_resources_) {
    c.solved_avail.emplace_back(r, prev_avail_of_resource_[r]);
  }
}

void FluidSimulation::RestoreCheckpoint() {
  const Checkpoint& c = checkpoint_;
  CT_DCHECK(c.valid);
  if (!c.valid) {
    return;
  }
  CaptureCheckpointTrajectory();  // Reads the pre-rewind (final) state.
  groups_.resize(c.groups.size());  // Groups added after the save are discarded.
  for (size_t i = 0; i < groups_.size(); ++i) {
    Group& g = groups_[i];
    const GroupState& gs = c.groups[i];
    g.started = gs.started;
    g.finished = gs.finished;
    g.cancelled = gs.cancelled;
    g.rate = gs.rate;
    g.finish_time = gs.finish_time;
    g.epoch_time = gs.epoch_time;
    for (size_t m = 0; m < g.members.size(); ++m) {
      g.members[m].resources = gs.members[m].resources;
      g.members[m].remaining = gs.members[m].remaining;
      g.members[m].transferred = gs.members[m].transferred;
      g.members[m].done = gs.members[m].done;
    }
    g.min_remaining_valid = false;
    if (c.solution_captured) {
      const GroupSolution& sol = c.solutions[i];
      g.cached_fallback = sol.fallback;
      g.comp_id = sol.comp_id;
      g.comp_size = sol.comp_size;
      g.cached_rate = sol.rate;
      g.delta_dirty = false;
    } else {
      g.comp_id = -1;
      g.delta_dirty = true;
    }
  }
  active_groups_ = c.active_groups;
  events_ = c.events;
  now_ = c.now;
  next_seq_ = c.next_seq;
  rates_dirty_ = c.rates_dirty;
  if (c.solution_captured) {
    for (const auto& [r, avail] : c.solved_avail) {
      prev_avail_of_resource_[r] = avail;
    }
  }
  run_clean_since_save_ = false;
  traj_tracking_ = false;
  // With a recorded final trajectory, the first recompute of the re-run
  // tries to fast-forward the closures this binding's patches leave clean.
  ff_pending_ = c.final_valid && delta_reuse_enabled_;
}

void FluidSimulation::AttemptFastForward() {
  const Checkpoint& c = checkpoint_;
  if (!delta_reuse_enabled_ || !c.valid || !c.final_valid ||
      groups_.size() != c.final_groups.size()) {
    return;
  }
  // Inputs-unchanged gate: every resource the pristine run consumed must
  // offer bitwise the same elastic capacity now (covers SetBackground and
  // capacity edits between bindings).
  for (const auto& [r, avail] : c.final_avail) {
    const Bps cap = registry_.capacity(r);
    if (std::max(cap * min_available_fraction_, cap - background_[r]) != avail) {
      return;
    }
  }
  const int n = static_cast<int>(groups_.size());
  // A closure re-simulates (is "dirty") if any of its groups was patched
  // since the restore or carries a completion callback (callbacks cannot be
  // replayed, only re-fired by a live run).
  traj_root_dirty_.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    if (groups_[i].delta_dirty || groups_[i].on_complete) {
      traj_root_dirty_[c.traj_parent[i]] = 1;
    }
  }
  // Re-simulated groups' *current* (post-patch) resources must not overlap a
  // replayed closure: new sharing would merge their components and change
  // the closure's trajectory. Overlap demotes the closure to re-simulation,
  // making its resources live in turn — iterate to a fixpoint.
  ff_resource_mark_.assign(registry_.num_resources(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < n; ++i) {
      if (traj_root_dirty_[c.traj_parent[i]] != 1) {
        continue;
      }
      for (const Member& m : groups_[i].members) {
        for (const ResourceId r : m.resources) {
          ff_resource_mark_[r] = 1;
        }
      }
    }
    for (int i = 0; i < n; ++i) {
      const int root = c.traj_parent[i];
      if (traj_root_dirty_[root] == 1) {
        continue;
      }
      bool overlap = false;
      for (const Member& m : groups_[i].members) {
        for (const ResourceId r : m.resources) {
          if (ff_resource_mark_[r]) {
            overlap = true;
            break;
          }
        }
        if (overlap) {
          break;
        }
      }
      if (overlap) {
        traj_root_dirty_[root] = 1;
        changed = true;
      }
    }
  }
  // Count replayed closures that actually skip work (had an unfinished group
  // at the restore point), then hand every group in a clean closure its
  // recorded final state. Purity makes this bitwise equal to re-simulating.
  int64_t replayed = 0;
  for (int i = 0; i < n; ++i) {
    const int root = c.traj_parent[i];
    if (traj_root_dirty_[root] == 0 && !groups_[i].finished && !groups_[i].cancelled) {
      traj_root_dirty_[root] = 2;
      ++replayed;
    }
  }
  for (int i = 0; i < n; ++i) {
    if (traj_root_dirty_[c.traj_parent[i]] == 1) {
      continue;
    }
    Group& g = groups_[i];
    const GroupState& fs = c.final_groups[i];
    g.started = fs.started;
    g.finished = fs.finished;
    g.cancelled = fs.cancelled;
    g.rate = fs.rate;
    g.finish_time = fs.finish_time;
    g.epoch_time = fs.epoch_time;
    for (size_t m = 0; m < g.members.size(); ++m) {
      g.members[m].remaining = fs.members[m].remaining;
      g.members[m].transferred = fs.members[m].transferred;
      g.members[m].done = fs.members[m].done;
    }
    g.min_remaining_valid = false;
    g.delta_dirty = true;  // Force a cold solve if it ever re-enters the incidence.
  }
  delta_component_hits_ += replayed;
  CT_OBS_ADD("M304", replayed);
}

std::vector<ResourceId>& FluidSimulation::MutableMemberResources(GroupId id, int flow_index) {
  return groups_[id].members[flow_index].resources;
}

void FluidSimulation::MarkGroupDirty(GroupId id) {
  groups_[id].delta_dirty = true;
  rates_dirty_ = true;
  if (checkpoint_.valid && !checkpoint_.solution_captured) {
    // The pending capture would record a solution for inputs that no longer
    // match the checkpoint; skip it (restores then just solve cold).
    checkpoint_.solution_captured = true;
    checkpoint_.solutions.assign(checkpoint_.groups.size(), GroupSolution{});
    checkpoint_.solved_avail.clear();
  }
  if (checkpoint_.valid && !checkpoint_.final_captured) {
    // A patch before the pristine run finished means the trajectory about to
    // be captured is not the checkpoint's; block the capture.
    run_clean_since_save_ = false;
    traj_tracking_ = false;
  }
}

Seconds FluidSimulation::GroupCompletionTime(const Group& group) const {
  // Pure prediction: the epoch state plus the current rate fully determine
  // when the earliest member runs dry. Anchoring at epoch_time (not now_)
  // keeps the value independent of how many foreign events the clock has
  // stepped through since.
  if (group.rate <= 0) {
    return std::numeric_limits<Seconds>::infinity();
  }
  if (group.min_remaining_valid) {
    // TransferTime is monotone in its byte argument (times-8 is exact and
    // IEEE division by a positive rate preserves order), so the earliest
    // member completion is exactly the cached minimum's completion.
    return group.epoch_time + TransferTime(group.min_remaining, group.rate);
  }
  Seconds best = std::numeric_limits<Seconds>::infinity();
  for (const Member& member : group.members) {
    if (member.done) {
      continue;
    }
    best = std::min(best, group.epoch_time + TransferTime(member.remaining, group.rate));
  }
  return best;
}

Seconds FluidSimulation::NextCompletionTime() const {
  Seconds best = std::numeric_limits<Seconds>::infinity();
  for (GroupId id : active_groups_) {
    if (!GroupActive(id)) {
      continue;
    }
    best = std::min(best, GroupCompletionTime(groups_[id]));
  }
  return best;
}

void FluidSimulation::FinishGroupIfDone(Group& group) {
  if (group.finished || group.cancelled || !group.started) {
    return;
  }
  for (const Member& member : group.members) {
    if (!member.done) {
      return;
    }
  }
  group.finished = true;
  group.rate = 0;
  // Inside SettleUntil the clock has not advanced yet, but the completion
  // callback fires after it has; stamp the post-settle time so both report
  // the same instant bitwise.
  group.finish_time = settling_ ? settle_stamp_ : now_;
  group.delta_dirty = true;
  rates_dirty_ = true;
  if (group.on_complete) {
    // Defer the callback through the event queue so user code never runs in
    // the middle of Settle()'s bookkeeping.
    auto cb = group.on_complete;
    const GroupId id = group.id;
    Schedule(now_, [cb, id, this] { cb(id, now_); });
  }
}

void FluidSimulation::MaterializeGroup(Group& group, Seconds target) {
  if (group.finished || group.cancelled || !group.started) {
    return;
  }
  const Seconds dt = target - group.epoch_time;
  if (dt < 0) {
    return;
  }
  const Bytes moved = group.rate > 0 ? group.rate * dt / 8.0 : 0.0;
  Bytes min_remaining = std::numeric_limits<Bytes>::infinity();
  for (Member& member : group.members) {
    if (member.done) {
      continue;
    }
    const Bytes step = std::min(moved, member.remaining);
    member.remaining -= step;
    member.transferred += step;
    // A member is done when its bytes ran out, or when float drift left a
    // residue that would complete in (far) under a picosecond anyway.
    CT_INVARIANT(member.remaining >= 0, "I104", "member has negative residual bytes")
        .With("group", group.id)
        .With("remaining", member.remaining)
        .With("rate_bps", group.rate)
        .With("dt", dt);
    if (group.rate > 0 && (member.remaining <= kByteEpsilon ||
                           TransferTime(member.remaining, group.rate) <= kTimeEpsilon)) {
      member.transferred += member.remaining;
      member.remaining = 0;
      member.done = true;
      rates_dirty_ = true;
      // The member's resources leave the incidence, so this group's
      // component must re-water-fill (and components it bridged may split,
      // which the solver detects via the component-size mismatch).
      group.delta_dirty = true;
    } else {
      min_remaining = std::min(min_remaining, member.remaining);
    }
  }
  group.min_remaining = min_remaining;
  group.min_remaining_valid = std::isfinite(min_remaining);
  group.epoch_time = target;
  FinishGroupIfDone(group);
}

void FluidSimulation::SettleUntil(Seconds target) {
  if (target < now_) {
    return;
  }
  // max(now_, target) is exactly the value the event loop assigns to now_
  // after this settle — finishes recorded here must carry that timestamp.
  settle_stamp_ = std::max(now_, target);
  settling_ = true;
  // Lazy sweep: only groups whose own completion has arrived materialize
  // (GroupCompletionTime here and in NextCompletionTime compute the same
  // expression over the same state, so the event loop's argmin matches
  // bitwise). Everyone else stays on their epoch, untouched by this event.
  for (GroupId id : active_groups_) {
    Group& group = groups_[id];
    if (!GroupActive(id) || group.rate <= 0) {
      continue;
    }
    if (GroupCompletionTime(group) <= target) {
      MaterializeGroup(group, target);
    }
  }
  settling_ = false;
}

void FluidSimulation::RunUntil(Seconds t) {
  CT_ACCESS_GUARD(access_cell_);
  while (now_ < t - TimeEps(t)) {
    RecomputeRates();
    const Seconds completion = NextCompletionTime();
    const Seconds next_event =
        events_.empty() ? std::numeric_limits<Seconds>::infinity() : events_.top().time;
    const Seconds target = std::min({t, completion, next_event});
    if (!std::isfinite(target)) {
      now_ = t;
      return;
    }
    CT_INVARIANT(target >= now_ - TimeEps(now_), "I106", "simulation time would move backwards")
        .With("now", now_)
        .With("target", target);
    SettleUntil(target);
    now_ = std::max(now_, target);
    // Fire every event scheduled at (or before) the new time.
    while (!events_.empty() && events_.top().time <= now_ + TimeEps(now_)) {
      auto fn = events_.top().fn;
      events_.pop();
      CT_OBS_INC("M300");
      fn();
    }
  }
}

bool FluidSimulation::RunUntilIdle(Seconds hard_deadline) {
  CT_ACCESS_GUARD(access_cell_);
  while (now_ < hard_deadline) {
    RecomputeRates();
    const bool has_active =
        std::any_of(active_groups_.begin(), active_groups_.end(),
                    [this](GroupId id) { return GroupActive(id); });
    if (!has_active && events_.empty()) {
      return true;
    }
    const Seconds completion = NextCompletionTime();
    const Seconds next_event =
        events_.empty() ? std::numeric_limits<Seconds>::infinity() : events_.top().time;
    const Seconds target = std::min(completion, next_event);
    if (!std::isfinite(target)) {
      CLOUDTALK_LOG(kWarning) << "fluid simulation stalled at t=" << now_
                              << " with zero-rate active groups";
      return false;
    }
    CT_INVARIANT(target >= now_ - TimeEps(now_), "I106", "simulation time would move backwards")
        .With("now", now_)
        .With("target", target);
    SettleUntil(target);
    now_ = std::max(now_, target);
    while (!events_.empty() && events_.top().time <= now_ + TimeEps(now_)) {
      auto fn = events_.top().fn;
      events_.pop();
      CT_OBS_INC("M300");
      fn();
    }
  }
  return false;
}

}  // namespace cloudtalk
