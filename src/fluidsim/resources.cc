#include "src/fluidsim/resources.h"

namespace cloudtalk {

ResourceRegistry::ResourceRegistry(const Topology& topo) {
  link_base_ = 0;
  for (int l = 0; l < topo.num_links(); ++l) {
    capacity_.push_back(topo.link(l).capacity);
    kind_.push_back(ResourceKind::kLink);
    host_of_.push_back(kInvalidNode);
  }
  host_base_.assign(topo.num_nodes(), kInvalidResource);
  for (NodeId host : topo.hosts()) {
    const HostCaps& caps = topo.host_caps(host);
    host_base_[host] = static_cast<ResourceId>(capacity_.size());
    const Bps host_caps[4] = {caps.nic_up, caps.nic_down, caps.disk_read, caps.disk_write};
    const ResourceKind kinds[4] = {ResourceKind::kNicUp, ResourceKind::kNicDown,
                                   ResourceKind::kDiskRead, ResourceKind::kDiskWrite};
    for (int i = 0; i < 4; ++i) {
      capacity_.push_back(host_caps[i]);
      kind_.push_back(kinds[i]);
      host_of_.push_back(host);
    }
  }
}

std::vector<ResourceId> ResourceRegistry::NetworkPath(const Topology& topo, NodeId src,
                                                      NodeId dst, uint64_t ecmp_salt) const {
  std::vector<ResourceId> resources;
  if (src == dst) {
    // Loopback transfer: consumes no network resources (the paper's example
    // where binding Z <- a makes f2 "run locally").
    return resources;
  }
  resources.push_back(NicUp(src));
  for (LinkId link : topo.PathBetween(src, dst, ecmp_salt)) {
    resources.push_back(LinkResource(link));
  }
  resources.push_back(NicDown(dst));
  return resources;
}

}  // namespace cloudtalk
