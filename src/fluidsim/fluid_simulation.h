// Fluid (flow-level) network/disk simulation.
//
// This engine plays two roles in the reproduction:
//
//  1. It is the *cluster substrate*: the mini-HDFS, mini-MapReduce and
//     harness experiments execute their transfers here, with completion
//     times emerging from max-min fair sharing of NIC, fabric-link and disk
//     bandwidth (the paper measured real clusters; per its own Section 3
//     argument, contention in full-bisection fabrics forms exactly at these
//     resources).
//
//  2. It implements CloudTalk's *flow-level estimator* (Section 4): "the
//     flow-level estimator arithmetically allocates a rate to each flow
//     using the assumption that bottleneck links are shared equally ... the
//     algorithm iteratively computes flow rates until they stabilize."
//
// Flows are grouped: all member flows of a FlowGroup share one rate. This is
// exactly the coupling the CloudTalk language expresses with mutual
// rate/transfer references (e.g. the HDFS write daisy chain, where the
// client->r1 network flow and the r1->disk write proceed in lockstep).
//
// Background (inelastic) traffic can be registered per resource; elastic
// flows only get the remaining capacity, floored at a configurable fraction
// of the resource (a TCP flow competing with line-rate UDP still makes some
// progress).
#ifndef CLOUDTALK_SRC_FLUIDSIM_FLUID_SIMULATION_H_
#define CLOUDTALK_SRC_FLUIDSIM_FLUID_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "src/check/check.h"
#include "src/common/lock_registry.h"
#include "src/common/units.h"
#include "src/fluidsim/resources.h"
#include "src/topology/topology.h"

namespace cloudtalk {

using GroupId = int64_t;
inline constexpr GroupId kInvalidGroup = -1;
inline constexpr Bps kUnlimitedRate = std::numeric_limits<Bps>::infinity();

// One data transfer inside a group: it consumes every resource in
// `resources` at the group's common rate until `size` bytes have moved.
struct FluidFlow {
  std::vector<ResourceId> resources;
  Bytes size = 0;
};

struct GroupSpec {
  std::vector<FluidFlow> flows;
  Bps rate_limit = kUnlimitedRate;  // Explicit `rate` restriction, if any.
  Seconds start_time = 0;           // Absolute sim time; clamped to now().
};

class FluidSimulation {
 public:
  using CompletionCallback = std::function<void(GroupId, Seconds)>;

  FluidSimulation(const Topology* topo, double min_available_fraction = 0.1);

  const Topology& topology() const { return *topo_; }
  const ResourceRegistry& resources() const { return registry_; }
  ResourceRegistry& mutable_resources() { return registry_; }

  Seconds now() const { return now_; }

  // ---- Background (inelastic) load ----
  void SetBackground(ResourceId r, Bps usage);
  void AddBackground(ResourceId r, Bps delta);
  Bps background(ResourceId r) const { return background_[r]; }
  // Adds `rate` of inelastic traffic along src's uplink path to dst
  // (NIC up, fabric links, NIC down). Returns the resources touched so the
  // caller can undo with AddBackground(r, -rate).
  std::vector<ResourceId> AddBackgroundPath(NodeId src, NodeId dst, Bps rate,
                                            uint64_t ecmp_salt = 0);

  // ---- Elastic flow groups ----
  GroupId AddGroup(GroupSpec spec, CompletionCallback on_complete = nullptr);
  void CancelGroup(GroupId id);
  bool GroupActive(GroupId id) const;
  // Current allocated rate; 0 if not started/finished.
  Bps GroupRate(GroupId id) const;
  // Bytes already moved by member `flow_index` of the group.
  Bytes GroupTransferred(GroupId id, int flow_index = 0) const;

  // ---- Observation ----
  // Instantaneous usage: background plus elastic consumption. This is what
  // status servers report (subject to their own sampling delay).
  Bps Usage(ResourceId r) const;
  // Usage of every resource in one pass (one rate recomputation + one sweep
  // over active flows) — used by the harness to refresh all status servers
  // at each measurement tick without quadratic cost.
  std::vector<Bps> UsageSnapshot() const;
  Bps Capacity(ResourceId r) const { return registry_.capacity(r); }

  // ---- Event loop ----
  void Schedule(Seconds time, std::function<void()> fn);
  // Advances simulated time, settling transfers and firing callbacks, until
  // `t`. Safe to call repeatedly.
  void RunUntil(Seconds t);
  // Runs until no active group and no pending event remain (or progress
  // stalls because every remaining group has zero rate and no event is
  // pending; returns false in that case).
  bool RunUntilIdle(Seconds hard_deadline = 1e12);

  // Number of max-min recomputations performed (for perf tests).
  int64_t recompute_count() const { return recompute_count_; }

  // Forces a rate recomputation and re-runs every structural invariant
  // (allocation optimality/conservation, residual bytes, event-queue
  // sanity). A no-op sweep without CLOUDTALK_INVARIANTS; tools/ctcheck and
  // the scenario fixtures call it at the end of a run.
  void CheckInvariantsNow();

  // Rewinds the simulation to t = 0 with no groups and no pending events,
  // keeping the topology, the resource registry (including capacity edits)
  // and the registered background load. This is the reuse path of the
  // flow-level estimator: one star topology + simulation is built per query
  // and Reset() between bindings instead of reconstructing everything
  // (ISSUE 1 — per-binding allocations dominated evaluation cost).
  void Reset();

  // ---- Incremental re-solve across bindings (ISSUE 6) ----
  // SaveCheckpoint snapshots the complete trajectory state (groups, member
  // progress, pending events, clock). The first rate recomputation after the
  // save additionally captures the solver's per-component solution, so every
  // RestoreCheckpoint rewinds to the snapshot *with* that solution cached:
  // components whose flows are not re-bound afterwards are reused bitwise
  // instead of re-water-filled. Groups added after the save are discarded by
  // RestoreCheckpoint.
  void SaveCheckpoint();
  void RestoreCheckpoint();
  void DropCheckpoint() { checkpoint_.valid = false; }
  bool HasCheckpoint() const { return checkpoint_.valid; }

  // Re-binding patch interface: rewrite one member's resource set in place
  // (sizes/progress are untouched) and mark the group dirty so the connected
  // component containing it is re-water-filled cold at the next recompute.
  // Callers must pair every mutation with MarkGroupDirty.
  std::vector<ResourceId>& MutableMemberResources(GroupId id, int flow_index);
  void MarkGroupDirty(GroupId id);

  // Completion time recorded when the group finished; -1 while active.
  Seconds GroupFinishTime(GroupId id) const { return groups_[id].finish_time; }

  // Kill switch for the component-reuse fast path (differential testing:
  // ctcheck --diff-sim runs the estimator with and without it).
  void set_delta_reuse_enabled(bool on) { delta_reuse_enabled_ = on; }
  bool delta_reuse_enabled() const { return delta_reuse_enabled_; }

  // Per-solver cost counters. recompute_count() survives Reset() by design;
  // callers wanting per-query cost snapshot this struct and subtract.
  struct SolverCounters {
    int64_t recomputes = 0;
    int64_t delta_component_hits = 0;
    int64_t cold_component_solves = 0;
  };
  SolverCounters solver_counters() const {
    return {recompute_count_, delta_component_hits_, cold_component_solves_};
  }

 private:
  struct Member {
    std::vector<ResourceId> resources;
    Bytes remaining = 0;
    Bytes transferred = 0;
    bool done = false;
  };
  struct Group {
    GroupId id = kInvalidGroup;
    std::vector<Member> members;
    Bps rate_limit = kUnlimitedRate;
    Seconds start_time = 0;
    bool started = false;
    bool finished = false;
    bool cancelled = false;
    Bps rate = 0;
    Seconds finish_time = -1;
    CompletionCallback on_complete;
    // Lazy-progress epoch: members hold their byte counts as of this time;
    // they advance only when the group's own component re-solves, one of its
    // members completes, or a run horizon forces a global settle. Progress is
    // therefore a pure function of the group's component inputs — foreign
    // components' event times never split its float accumulation.
    Seconds epoch_time = 0;
    // Per-group earliest-completion cache: smallest `remaining` over live
    // members, maintained by Settle() so NextCompletionTime() is O(active
    // groups) instead of O(total members) between completions.
    Bytes min_remaining = 0;
    bool min_remaining_valid = false;
    // Delta-solve cache: the connected component this group belonged to at
    // its last cold water-fill (comp_id is a process-monotone epoch id, so a
    // match across recomputes implies the exact same group set), the size of
    // that component, and the solved rate. delta_dirty forces the component
    // cold at the next recompute.
    bool delta_dirty = true;
    bool cached_fallback = false;
    int32_t comp_id = -1;
    int32_t comp_size = 0;
    Bps cached_rate = 0;
  };
  struct TimedEvent {
    Seconds time;
    int64_t seq;
    std::function<void()> fn;
    bool operator>(const TimedEvent& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  // Recomputes the max-min allocation over all started, unfinished groups.
  // Per connected component of the group/resource incidence graph: clean
  // components with a bitwise-matching cached solution are reused, dirty ones
  // are re-water-filled over the SoA scratch arrays.
  void RecomputeRates();
  // Progressive filling over the component-contiguous slot/group ranges
  // [group_begin, group_end) x [slot_begin, slot_end). Returns rounds used.
  int WaterfillComponent(int group_begin, int group_end, int slot_begin, int slot_end);
  // Post-allocation checks (I101/I102) against the scratch left by the last
  // RecomputeRates. Compiled to nothing without CLOUDTALK_INVARIANTS.
  void VerifyAllocation();
  // Advances `group`'s members from their epoch to `target` at the current
  // rate (one fused step per member — this is the only place bytes move),
  // refreshes the min_remaining cache and finishes the group if every member
  // completed. The exact arithmetic of the old eager settle, applied lazily.
  void MaterializeGroup(Group& group, Seconds target);
  // Completion sweep at `target`: materializes exactly the groups whose own
  // completion time has arrived. Non-completing groups are left on their
  // epoch, so foreign events never split their accumulation.
  void SettleUntil(Seconds target);
  // Earliest member completion time across active groups (inf if none).
  // Computed from each group's epoch state, so the prediction is a pure
  // per-component value that does not drift with foreign events.
  Seconds NextCompletionTime() const;
  Seconds GroupCompletionTime(const Group& group) const;
  void FinishGroupIfDone(Group& group);
  // Fast-forward prologue of the first recompute after RestoreCheckpoint:
  // trajectory closures untouched by re-binding patches are replayed to their
  // recorded final states instead of being re-simulated event by event.
  void AttemptFastForward();
  void CaptureCheckpointTrajectory();
  int TrajFind(int g);

  const Topology* topo_;
  ResourceRegistry registry_;
  double min_available_fraction_;
  std::vector<Bps> background_;

  std::vector<Group> groups_;
  std::vector<GroupId> active_groups_;  // started && !finished && !cancelled
  bool rates_dirty_ = true;
  Seconds now_ = 0;
  // Timestamp groups finishing inside SettleUntil receive (the clock value
  // the event loop is about to advance to).
  Seconds settle_stamp_ = 0;
  bool settling_ = false;
  int64_t next_seq_ = 0;
  int64_t recompute_count_ = 0;
  std::priority_queue<TimedEvent, std::vector<TimedEvent>, std::greater<TimedEvent>> events_;

  int64_t delta_component_hits_ = 0;
  int64_t cold_component_solves_ = 0;
  bool delta_reuse_enabled_ = true;
  // Epoch counter handing out component ids; never rewound (a RestoreCheckpoint
  // must not let a post-checkpoint id alias a captured one).
  int32_t next_comp_id_ = 0;

  // Scratch for RecomputeRates(), kept as members so repeated recomputes
  // (and repeated Reset()/re-run cycles) do not reallocate. The incidence is
  // CSR over *component-ordered* groups and *component-renumbered* slots, so
  // each component's water-fill scans contiguous flat arrays (SoA) that the
  // compiler can vectorize. slot_of_resource_ is dense over all resources
  // but reset sparsely: only slots touched by the previous recompute are
  // cleared at its end.
  std::vector<int> slot_of_resource_;
  std::vector<ResourceId> scratch_used_resources_;  // provisional slot -> resource
  // Pass-1 CSR in active-group order with provisional (discovery-order) slots.
  std::vector<int> raw_row_start_;
  std::vector<int> raw_slot_;
  std::vector<double> raw_weight_;
  // Union-find over active-group indices, plus per-slot/group component ids.
  std::vector<int> uf_parent_;
  std::vector<int> slot_owner_group_;
  std::vector<int> comp_of_group_;  // active index -> dense component index
  std::vector<int> comp_of_slot_;
  // Final component-contiguous layout.
  std::vector<int> comp_group_start_;  // comp -> first position in ord_group_
  std::vector<int> comp_slot_start_;   // comp -> first renumbered slot
  std::vector<int> ord_group_;         // position -> active index
  std::vector<int> slot_perm_;         // provisional slot -> renumbered slot
  std::vector<int> row_start_;         // position-indexed CSR over renumbered slots
  std::vector<int> row_slot_;
  std::vector<double> row_weight_;
  // SoA per renumbered slot.
  std::vector<double> slot_avail_;
  std::vector<double> slot_weight_unfrozen_;
  std::vector<double> slot_initial_avail_;  // VerifyAllocation's reference.
  std::vector<ResourceId> slot_resource_;
  // SoA per ordered group position.
  std::vector<char> scratch_frozen_;
  std::vector<Bps> scratch_rate_;
  std::vector<double> scratch_limit_;
  // avail each resource had when its component last solved cold; a clean
  // component is only reused if every slot's freshly computed avail is
  // bitwise equal (this covers SetBackground and capacity edits without
  // needing mutation hooks).
  std::vector<double> prev_avail_of_resource_;
  // Invariant-checking bookkeeping (maintained only with CLOUDTALK_INVARIANTS):
  // group count of the last recompute, and which groups were frozen by the
  // no-progress fallback (exempt from the bottleneck invariant).
  int scratch_n_ = 0;
  std::vector<char> scratch_fallback_;

  // ---- Checkpoint (ISSUE 6) ----
  struct MemberState {
    std::vector<ResourceId> resources;
    Bytes remaining = 0;
    Bytes transferred = 0;
    bool done = false;
  };
  struct GroupState {
    bool started = false;
    bool finished = false;
    bool cancelled = false;
    Bps rate = 0;
    Seconds finish_time = -1;
    Seconds epoch_time = 0;
    std::vector<MemberState> members;
  };
  struct GroupSolution {
    bool fallback = false;
    int32_t comp_id = -1;
    int32_t comp_size = 0;
    Bps rate = 0;
  };
  struct Checkpoint {
    bool valid = false;
    Seconds now = 0;
    int64_t next_seq = 0;
    bool rates_dirty = true;
    std::vector<GroupState> groups;
    std::vector<GroupId> active_groups;
    std::priority_queue<TimedEvent, std::vector<TimedEvent>, std::greater<TimedEvent>> events;
    // One-shot solver capture: filled by the first RecomputeRates after the
    // save, whose input state is exactly the checkpointed state.
    bool solution_captured = false;
    std::vector<GroupSolution> solutions;  // parallel to groups
    std::vector<std::pair<ResourceId, double>> solved_avail;
    // Final-trajectory capture: the end state of the pristine run executed
    // right after the save (clock, per-group outcome, and the union over
    // time of component merges — the "trajectory closure"). Because group
    // progress is a pure per-component function, a later binding whose
    // patches leave a closure untouched can fast-forward every group in it
    // straight to this recorded final state instead of re-simulating.
    bool final_captured = false;
    bool final_valid = false;
    Seconds final_now = 0;
    std::vector<GroupState> final_groups;  // parallel to groups
    std::vector<int> traj_parent;          // closure union-find, parallel to groups
    std::vector<std::pair<ResourceId, double>> final_avail;
  };
  Checkpoint checkpoint_;
  void CaptureCheckpointSolution();
  // Trajectory-closure union-find over *all* group ids, recorded during the
  // pristine post-save run; groups that ever share a component get one root.
  std::vector<int> traj_parent_;
  bool traj_tracking_ = false;
  // True while the sim has run only the pristine post-save trajectory (no
  // Reset/AddGroup/Cancel/SetBackground since SaveCheckpoint); gates the
  // final-state capture.
  bool run_clean_since_save_ = false;
  // Set by RestoreCheckpoint when a valid final snapshot exists; the next
  // RecomputeRates tries the fast-forward before solving.
  bool ff_pending_ = false;
  std::vector<char> traj_root_dirty_;   // scratch for AttemptFastForward
  std::vector<char> ff_resource_mark_;  // per-resource "touched by a re-simulated group"
  // Single-writer check: the event loop and mutators must stay on one thread
  // at a time (the parallel evaluator gives each worker its own simulation).
  mutable AccessCell access_cell_{"fluidsim"};

  friend struct FluidSimTestPeer;  // tests/check_test.cc corrupts state through this.
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_FLUIDSIM_FLUID_SIMULATION_H_
