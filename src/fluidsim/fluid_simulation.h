// Fluid (flow-level) network/disk simulation.
//
// This engine plays two roles in the reproduction:
//
//  1. It is the *cluster substrate*: the mini-HDFS, mini-MapReduce and
//     harness experiments execute their transfers here, with completion
//     times emerging from max-min fair sharing of NIC, fabric-link and disk
//     bandwidth (the paper measured real clusters; per its own Section 3
//     argument, contention in full-bisection fabrics forms exactly at these
//     resources).
//
//  2. It implements CloudTalk's *flow-level estimator* (Section 4): "the
//     flow-level estimator arithmetically allocates a rate to each flow
//     using the assumption that bottleneck links are shared equally ... the
//     algorithm iteratively computes flow rates until they stabilize."
//
// Flows are grouped: all member flows of a FlowGroup share one rate. This is
// exactly the coupling the CloudTalk language expresses with mutual
// rate/transfer references (e.g. the HDFS write daisy chain, where the
// client->r1 network flow and the r1->disk write proceed in lockstep).
//
// Background (inelastic) traffic can be registered per resource; elastic
// flows only get the remaining capacity, floored at a configurable fraction
// of the resource (a TCP flow competing with line-rate UDP still makes some
// progress).
#ifndef CLOUDTALK_SRC_FLUIDSIM_FLUID_SIMULATION_H_
#define CLOUDTALK_SRC_FLUIDSIM_FLUID_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "src/check/check.h"
#include "src/common/lock_registry.h"
#include "src/common/units.h"
#include "src/fluidsim/resources.h"
#include "src/topology/topology.h"

namespace cloudtalk {

using GroupId = int64_t;
inline constexpr GroupId kInvalidGroup = -1;
inline constexpr Bps kUnlimitedRate = std::numeric_limits<Bps>::infinity();

// One data transfer inside a group: it consumes every resource in
// `resources` at the group's common rate until `size` bytes have moved.
struct FluidFlow {
  std::vector<ResourceId> resources;
  Bytes size = 0;
};

struct GroupSpec {
  std::vector<FluidFlow> flows;
  Bps rate_limit = kUnlimitedRate;  // Explicit `rate` restriction, if any.
  Seconds start_time = 0;           // Absolute sim time; clamped to now().
};

class FluidSimulation {
 public:
  using CompletionCallback = std::function<void(GroupId, Seconds)>;

  FluidSimulation(const Topology* topo, double min_available_fraction = 0.1);

  const Topology& topology() const { return *topo_; }
  const ResourceRegistry& resources() const { return registry_; }
  ResourceRegistry& mutable_resources() { return registry_; }

  Seconds now() const { return now_; }

  // ---- Background (inelastic) load ----
  void SetBackground(ResourceId r, Bps usage);
  void AddBackground(ResourceId r, Bps delta);
  Bps background(ResourceId r) const { return background_[r]; }
  // Adds `rate` of inelastic traffic along src's uplink path to dst
  // (NIC up, fabric links, NIC down). Returns the resources touched so the
  // caller can undo with AddBackground(r, -rate).
  std::vector<ResourceId> AddBackgroundPath(NodeId src, NodeId dst, Bps rate,
                                            uint64_t ecmp_salt = 0);

  // ---- Elastic flow groups ----
  GroupId AddGroup(GroupSpec spec, CompletionCallback on_complete = nullptr);
  void CancelGroup(GroupId id);
  bool GroupActive(GroupId id) const;
  // Current allocated rate; 0 if not started/finished.
  Bps GroupRate(GroupId id) const;
  // Bytes already moved by member `flow_index` of the group.
  Bytes GroupTransferred(GroupId id, int flow_index = 0) const;

  // ---- Observation ----
  // Instantaneous usage: background plus elastic consumption. This is what
  // status servers report (subject to their own sampling delay).
  Bps Usage(ResourceId r) const;
  // Usage of every resource in one pass (one rate recomputation + one sweep
  // over active flows) — used by the harness to refresh all status servers
  // at each measurement tick without quadratic cost.
  std::vector<Bps> UsageSnapshot() const;
  Bps Capacity(ResourceId r) const { return registry_.capacity(r); }

  // ---- Event loop ----
  void Schedule(Seconds time, std::function<void()> fn);
  // Advances simulated time, settling transfers and firing callbacks, until
  // `t`. Safe to call repeatedly.
  void RunUntil(Seconds t);
  // Runs until no active group and no pending event remain (or progress
  // stalls because every remaining group has zero rate and no event is
  // pending; returns false in that case).
  bool RunUntilIdle(Seconds hard_deadline = 1e12);

  // Number of max-min recomputations performed (for perf tests).
  int64_t recompute_count() const { return recompute_count_; }

  // Forces a rate recomputation and re-runs every structural invariant
  // (allocation optimality/conservation, residual bytes, event-queue
  // sanity). A no-op sweep without CLOUDTALK_INVARIANTS; tools/ctcheck and
  // the scenario fixtures call it at the end of a run.
  void CheckInvariantsNow();

  // Rewinds the simulation to t = 0 with no groups and no pending events,
  // keeping the topology, the resource registry (including capacity edits)
  // and the registered background load. This is the reuse path of the
  // flow-level estimator: one star topology + simulation is built per query
  // and Reset() between bindings instead of reconstructing everything
  // (ISSUE 1 — per-binding allocations dominated evaluation cost).
  void Reset();

 private:
  struct Member {
    std::vector<ResourceId> resources;
    Bytes remaining = 0;
    Bytes transferred = 0;
    bool done = false;
  };
  struct Group {
    GroupId id = kInvalidGroup;
    std::vector<Member> members;
    Bps rate_limit = kUnlimitedRate;
    Seconds start_time = 0;
    bool started = false;
    bool finished = false;
    bool cancelled = false;
    Bps rate = 0;
    CompletionCallback on_complete;
  };
  struct TimedEvent {
    Seconds time;
    int64_t seq;
    std::function<void()> fn;
    bool operator>(const TimedEvent& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  // Recomputes the max-min allocation over all started, unfinished groups.
  void RecomputeRates();
  // Post-allocation checks (I101/I102) against the scratch left by the last
  // RecomputeRates. Compiled to nothing without CLOUDTALK_INVARIANTS.
  void VerifyAllocation();
  // Moves bytes for `dt` seconds at current rates; fires completions.
  void Settle(Seconds dt);
  // Earliest member completion time across active groups (inf if none).
  Seconds NextCompletionTime() const;
  void FinishGroupIfDone(Group& group);

  const Topology* topo_;
  ResourceRegistry registry_;
  double min_available_fraction_;
  std::vector<Bps> background_;

  std::vector<Group> groups_;
  std::vector<GroupId> active_groups_;  // started && !finished && !cancelled
  bool rates_dirty_ = true;
  Seconds now_ = 0;
  int64_t next_seq_ = 0;
  int64_t recompute_count_ = 0;
  std::priority_queue<TimedEvent, std::vector<TimedEvent>, std::greater<TimedEvent>> events_;

  // Scratch for RecomputeRates(), kept as members so repeated recomputes
  // (and repeated Reset()/re-run cycles) do not reallocate. slot_of_resource_
  // is dense over all resources but reset sparsely: only slots touched by
  // the previous recompute are cleared at its end.
  struct ResourceState {
    double avail = 0;
    double weight_unfrozen = 0;
    double initial_avail = 0;  // avail before filling; VerifyAllocation's reference.
  };
  std::vector<int> slot_of_resource_;
  std::vector<ResourceId> scratch_used_resources_;
  std::vector<ResourceState> scratch_state_;
  std::vector<std::vector<std::pair<int, double>>> scratch_weights_;
  std::vector<char> scratch_frozen_;
  std::vector<Bps> scratch_rate_;
  // Invariant-checking bookkeeping (maintained only with CLOUDTALK_INVARIANTS):
  // group count of the last recompute, and which groups were frozen by the
  // no-progress fallback (exempt from the bottleneck invariant).
  int scratch_n_ = 0;
  std::vector<char> scratch_fallback_;
  // Single-writer check: the event loop and mutators must stay on one thread
  // at a time (the parallel evaluator gives each worker its own simulation).
  mutable AccessCell access_cell_{"fluidsim"};

  friend struct FluidSimTestPeer;  // tests/check_test.cc corrupts state through this.
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_FLUIDSIM_FLUID_SIMULATION_H_
