// Shared Answer-path stages (ISSUE 10).
//
// The sharded front end (src/core/shard.h) must answer byte-identically to
// the single CloudTalkServer — that is the D505 differential contract — so
// every stage whose bytes could diverge lives here, written once and called
// by both servers:
//
//   - GatherStatusOver: sampling (one RNG stream, drawn over the FULL
//     variable set so the stream is independent of footprint pruning),
//     address assembly, resolution, and the scatter-gather. The sharded
//     server passes its ShardRouter as the transport, turning the one
//     logical gather into per-shard batches without changing the bytes.
//   - SynthesizeStaticStatus: the `option static` no-probe path.
//   - CheckAdmissionBound: the ISSUE 7 pre-search rejection, error string
//     and all.
//   - RunExhaustiveSliced: the exhaustive/packet search, fanned out over
//     `slice_count` engine slices and merged by (makespan, winner_rank).
//     The single server calls it with one slice; a sharded front end with
//     one slice per shard. Results are byte-identical either way.
#ifndef CLOUDTALK_SRC_CORE_PIPELINE_H_
#define CLOUDTALK_SRC_CORE_PIPELINE_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/core/directory.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/core/server.h"
#include "src/lang/analysis.h"
#include "src/lang/scope.h"
#include "src/obs/trace.h"
#include "src/status/transport.h"

namespace cloudtalk {

// Samples oversized pools in place in `*sampled_vars` (which the caller
// seeds with the query's variables), assembles and resolves the address
// set, probes it over `transport`, and returns the status map. Applies the
// footprint filter from `scope` (nullptr probes everything) and records the
// `sample` and `probe` spans with one probe.host child per contacted
// target, exactly as CloudTalkServer::GatherStatus always did.
StatusByAddress GatherStatusOver(const ServerConfig& config, const Directory& directory,
                                 ProbeTransport& transport, Rng& rng, std::mutex& rng_mutex,
                                 const lang::CompiledQuery& compiled,
                                 const lang::ScopeAnalysis* scope,
                                 std::vector<lang::VarComm>* sampled_vars, ProbeStats* stats,
                                 obs::TraceContext& trace);

// The `option static` path: every in-footprint pool host idle at nominal
// capacity, no probing. Emits the sample/probe spans with mode=static so
// the phase skeleton stays complete.
StatusByAddress SynthesizeStaticStatus(const Directory& directory,
                                       const std::vector<lang::VarComm>& variables,
                                       const lang::ScopeAnalysis* probe_scope,
                                       obs::TraceContext& trace);

// Admission bound check (ISSUE 7): when the estimator vouches for the bound
// model (`bound_fraction` ≥ 0), a chain group whose sound lower bound
// exceeds its deadline rejects the query before any search. Returns true to
// proceed; returns false and fills *error on rejection. Emits the `bound`
// span and counts M108/M109.
bool CheckAdmissionBound(const ServerConfig& config, const lang::CompiledQuery& compiled,
                         const StatusByAddress& status, double bound_fraction,
                         obs::TraceContext& trace, Error* error);

// The exhaustive/packet search behind `option packet` queries: computes the
// optimisation plan once, runs one engine slice per `slice_count` (all
// through `estimator`, sequentially — each slice parallelizes internally
// per `config.eval_threads`), and merges by (makespan, winner_rank). Walk
// counters are summed across slices; plan-derived counters are taken once.
// Emits the `bind` span with the search and per-pass attributes and counts
// M105. slice_count = 1 is the single-server path, bit for bit.
Result<ExhaustiveResult> RunExhaustiveSliced(const ServerConfig& config,
                                             const lang::Query& query,
                                             const lang::CompiledQuery& compiled,
                                             const StatusByAddress& status,
                                             CompletionEstimator& estimator,
                                             double bound_fraction, int slice_count,
                                             obs::TraceContext& trace);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_PIPELINE_H_
