#include "src/core/packet_estimator.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace cloudtalk {

Result<Estimate> PacketLevelEstimator::EstimateQuery(const lang::CompiledQuery& query,
                                                     const Binding& binding,
                                                     const StatusByAddress& status) {
  (void)status;
  struct PlannedFlow {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    Bytes size = 0;
    Seconds start = 0;
    std::vector<int> children;  // Flows waiting on this one.
    int waiting_on = 0;         // Unfinished transfer parents.
    bool instantaneous = false; // Disk / loopback flows: no network cost.
  };
  const auto& flows = query.flows();
  std::vector<PlannedFlow> planned(flows.size());

  for (size_t i = 0; i < flows.size(); ++i) {
    const lang::CompiledFlow& flow = flows[i];
    PlannedFlow& p = planned[i];
    p.size = flow.size;
    p.start = std::max<Seconds>(0, flow.start);
    auto src = ResolveEndpoint(flow.src, binding);
    auto dst = ResolveEndpoint(flow.dst, binding);
    if (!src.has_value() || !dst.has_value()) {
      return Error{"flow '" + flow.name + "' has an unbound variable endpoint"};
    }
    if (src->kind == lang::Endpoint::Kind::kUnknown ||
        dst->kind == lang::Endpoint::Kind::kUnknown) {
      return Error{"packet-level evaluation does not support 0.0.0.0 endpoints"};
    }
    if (src->kind == lang::Endpoint::Kind::kDisk || dst->kind == lang::Endpoint::Kind::kDisk) {
      // The packet simulator models the network; local disk hops are
      // treated as free (the web-search workload has none).
      p.instantaneous = true;
    } else {
      p.src = directory_->Resolve(src->name);
      p.dst = directory_->Resolve(dst->name);
      if (p.src == kInvalidNode || p.dst == kInvalidNode) {
        return Error{"unknown address in flow '" + flow.name + "'"};
      }
      if (p.src == p.dst) {
        p.instantaneous = true;  // Loopback.
      }
    }
    for (int parent : flow.transfer_parents) {
      planned[parent].children.push_back(static_cast<int>(i));
      p.waiting_on += 1;
    }
  }

  packetsim::PacketNetwork net(topo_, params_);
  Seconds makespan = 0;
  Bytes total_bytes = 0;
  int outstanding = 0;

  // Start a flow; completion releases its children.
  std::function<void(int, Seconds)> start_flow;
  std::function<void(int, Seconds)> finish_flow;
  finish_flow = [&](int index, Seconds at) {
    makespan = std::max(makespan, at);
    --outstanding;
    for (int child : planned[index].children) {
      if (--planned[child].waiting_on == 0) {
        start_flow(child, at);
      }
    }
  };
  start_flow = [&](int index, Seconds at) {
    PlannedFlow& p = planned[index];
    const Seconds begin = std::max(at, p.start);
    ++outstanding;
    total_bytes += p.size;
    if (p.instantaneous) {
      net.events().Schedule(begin, [&finish_flow, index, begin] { finish_flow(index, begin); });
      return;
    }
    net.StartTcpFlow(p.src, p.dst, p.size, begin,
                     [&finish_flow, index](packetsim::FlowId, Seconds t) {
                       finish_flow(index, t);
                     });
  };
  for (size_t i = 0; i < planned.size(); ++i) {
    if (planned[i].waiting_on == 0) {
      start_flow(static_cast<int>(i), planned[i].start);
    }
  }

  net.RunUntilIdle(/*hard_deadline=*/3600.0);
  if (outstanding != 0) {
    return Error{"packet-level simulation did not finish within the deadline"};
  }
  Estimate estimate;
  estimate.makespan = makespan;
  estimate.aggregate_throughput = makespan > 0 ? total_bytes * 8.0 / makespan : 0;
  return estimate;
}

}  // namespace cloudtalk
