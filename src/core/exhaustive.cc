#include "src/core/exhaustive.h"

#include <optional>
#include <unordered_set>
#include <vector>

namespace cloudtalk {

Result<ExhaustiveResult> EvaluateExhaustive(const lang::CompiledQuery& query,
                                            const StatusByAddress& status,
                                            CompletionEstimator& estimator,
                                            const ExhaustiveParams& params) {
  const auto& variables = query.variables();
  const bool distinct =
      params.distinct_bindings && !query.query().options.allow_same_binding;

  // Candidate lists (addresses only).
  std::vector<std::vector<std::string>> pools(variables.size());
  for (size_t i = 0; i < variables.size(); ++i) {
    for (const lang::Endpoint& value : variables[i].pool) {
      if (value.kind == lang::Endpoint::Kind::kAddress) {
        pools[i].push_back(value.name);
      }
    }
    if (pools[i].empty()) {
      return Error{"variable '" + variables[i].name + "' has no address candidates"};
    }
  }

  // Size guard.
  double space = 1;
  for (const auto& pool : pools) {
    space *= static_cast<double>(pool.size());
    if (space > static_cast<double>(params.max_bindings)) {
      return Error{"binding space exceeds max_bindings"};
    }
  }

  ExhaustiveResult best;
  bool have_best = false;
  std::optional<Error> last_error;

  std::vector<size_t> choice(variables.size(), 0);
  Binding binding;
  std::unordered_set<std::string> used;

  // Iterative odometer over the cartesian product.
  int64_t tried = 0;
  const size_t n = variables.size();
  if (n == 0) {
    Result<Estimate> estimate = estimator.EstimateQuery(query, binding, status);
    if (!estimate.ok()) {
      return estimate.error();
    }
    best.estimate = estimate.value();
    best.bindings_tried = 1;
    return best;
  }
  std::vector<size_t> depth_reset(n, 0);
  size_t depth = 0;
  while (true) {
    if (depth == n) {
      ++tried;
      Result<Estimate> estimate = estimator.EstimateQuery(query, binding, status);
      if (estimate.ok()) {
        if (!have_best || estimate.value().makespan < best.estimate.makespan) {
          best.binding = binding;
          best.estimate = estimate.value();
          have_best = true;
        }
      } else {
        last_error = estimate.error();
      }
      // Backtrack.
      --depth;
      used.erase(binding[variables[depth].name].name);
      ++choice[depth];
      continue;
    }
    if (choice[depth] >= pools[depth].size()) {
      if (depth == 0) {
        break;
      }
      choice[depth] = 0;
      --depth;
      used.erase(binding[variables[depth].name].name);
      ++choice[depth];
      continue;
    }
    const std::string& candidate = pools[depth][choice[depth]];
    if (distinct && used.count(candidate) > 0) {
      ++choice[depth];
      continue;
    }
    binding[variables[depth].name] = lang::Endpoint::Address(candidate);
    used.insert(candidate);
    ++depth;
  }

  if (!have_best) {
    if (last_error.has_value()) {
      return *last_error;
    }
    return Error{"no legal binding exists (distinctness unsatisfiable?)"};
  }
  best.bindings_tried = tried;
  return best;
}

}  // namespace cloudtalk
