#include "src/core/exhaustive.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/lang/bound.h"

namespace cloudtalk {
namespace {

// Endpoint id in memo signatures: interned addresses are >= 0, disk is -1,
// each 0.0.0.0 occurrence gets its own id below -1 (distinct external hosts,
// matching the estimator's per-occurrence "_unknownN" modelling).
constexpr int32_t kDiskId = -1;

// The one error both walks report when the space contains no legal binding
// — whether discovered exhaustively or proven statically by O100.
constexpr const char* kNoLegalBinding =
    "no legal binding exists (distinctness or requirements unsatisfiable?)";

// O500 never prunes a prefix whose lower bound reaches this ceiling: a bound
// that large comes from a zero-availability resource (kZeroRateTime in
// src/lang/bound.cc), i.e. a binding the estimator would *error* on rather
// than score. The unoptimised walk reaches those bindings and records the
// error, so the pruned walk must too — byte identity covers the failure
// path as well as the winner.
constexpr double kBoundPruneCeiling = 1e17;

// A flow with variables resolved to either a fixed endpoint id or a
// variable index, so a binding's signature is computed without touching the
// AST or any strings.
struct FlowSpec {
  bool src_is_var = false, dst_is_var = false;
  int32_t src = 0, dst = 0;  // Fixed id, or index into variables().
  double size = 0;
  double start = 0;
  int group = 0;
};

struct Tuple {
  int32_t src, dst;
  double size;
  double start;  // Two same-size transfers starting apart are not symmetric.
  bool operator<(const Tuple& o) const {
    if (src != o.src) return src < o.src;
    if (dst != o.dst) return dst < o.dst;
    if (size != o.size) return size < o.size;
    return start < o.start;
  }
};

// Everything a worker needs, read-only during the walk.
struct EvalContext {
  const lang::CompiledQuery* query = nullptr;
  const StatusByAddress* status = nullptr;
  std::vector<std::vector<int32_t>> pool_ids;       // Per variable.
  std::vector<std::vector<std::string>> pool_names;
  std::vector<int64_t> rank_weight;  // Mixed-radix weights: rank = sum c[d]*w[d].
  std::vector<FlowSpec> flow_specs;
  // Per variable, per candidate: passes its cpu/mem requirements. Empty
  // inner vector = unconstrained (skip the check).
  std::vector<std::vector<char>> feasible;
  // O200: previous member of the variable's interchangeability class, or
  // -1. Empty = no orbit constraints.
  std::vector<int32_t> orbit_prev;
  size_t orbit_strict = 0;  // 1 under distinctness: representative is strictly ascending.
  // O500: shared bound analysis (null = branch-and-bound off), plus the
  // analysis' interned host id per variable per candidate, so the walk feeds
  // Cursor::Assign without string lookups.
  const lang::BoundAnalysis* bound = nullptr;
  std::vector<std::vector<int32_t>> bound_host_ids;
  int num_ids = 0;
  int num_groups = 0;
  bool distinct = false;
  bool memoize = false;
};

struct ShardResult {
  bool have_best = false;
  Estimate best_estimate;
  int64_t best_rank = 0;              // Odometer rank of the best binding.
  std::vector<size_t> best_choice;
  int64_t tried = 0;
  int64_t memo_hits = 0;
  int64_t orbit_skips = 0;
  int64_t bound_prunes = 0;
  SolverStats solver;  // Drained from the worker's estimator after the shard.
  std::optional<Error> last_error;
};

// Walks the slice of the binding space where the first variable's candidate
// index is congruent to `offset` modulo `stride` (remaining variables full
// range), scoring each legal binding with `est`. Enumeration order within a
// shard is lexicographic, so ranks are strictly increasing and "first
// strictly better wins" reproduces the serial engine's tie-break.
ShardResult RunShard(const EvalContext& ctx, CompletionEstimator& est, int offset, int stride) {
  const auto& variables = ctx.query->variables();
  const size_t n = variables.size();
  ShardResult out;
  est.BeginQuery(*ctx.query, *ctx.status);

  // Announce the odometer's walk order so a delta-capable estimator can map
  // depths to its own variable indices (ISSUE 6).
  {
    std::vector<std::string> walk_order;
    walk_order.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      walk_order.push_back(variables[i].name);
    }
    est.BeginHintedWalk(walk_order);
  }
  // Lowest depth whose slot was rewritten since the last EstimateQuery on
  // this estimator. Conservative: a rewrite with the same value still counts
  // as changed. Reset only after actual estimator calls — memo hits leave
  // the estimator's view of the binding untouched, so rewrites accumulate
  // across them.
  size_t lowest_changed = 0;

  // One persistent Binding: enumeration only rewrites the address strings
  // in place (unordered_map nodes are stable).
  Binding binding;
  for (size_t i = 0; i < n; ++i) {
    binding[variables[i].name] = lang::Endpoint::Address("");
  }
  std::vector<lang::Endpoint*> slot(n);
  for (size_t i = 0; i < n; ++i) {
    slot[i] = &binding[variables[i].name];
  }

  std::vector<size_t> choice(n, 0);
  choice[0] = static_cast<size_t>(offset);
  std::vector<int32_t> var_id(n, 0);
  std::vector<char> used(ctx.distinct ? ctx.num_ids : 0, 0);

  // O500: per-shard incremental lower-bound cursor, mirroring the odometer's
  // slot writes. Pruning compares against the *shard-local* incumbent — each
  // shard only ever skips bindings provably worse than something it already
  // holds, so the deterministic merge is untouched.
  std::optional<lang::BoundAnalysis::Cursor> cursor;
  if (ctx.bound != nullptr) {
    cursor.emplace(ctx.bound->MakeCursor());
  }

  std::unordered_map<std::string, Estimate> memo;
  std::vector<std::vector<Tuple>> group_tuples(ctx.num_groups);
  std::string key;

  const auto step = [&](size_t d) { choice[d] += d == 0 ? static_cast<size_t>(stride) : 1; };

  size_t depth = 0;
  while (true) {
    if (depth == n) {
      ++out.tried;
      int64_t rank = 0;
      for (size_t d = 0; d < n; ++d) {
        rank += static_cast<int64_t>(choice[d]) * ctx.rank_weight[d];
      }

      Estimate estimate;
      bool have = false;
      if (ctx.memoize) {
        for (auto& tuples : group_tuples) {
          tuples.clear();
        }
        for (const FlowSpec& f : ctx.flow_specs) {
          Tuple t;
          t.src = f.src_is_var ? var_id[f.src] : f.src;
          t.dst = f.dst_is_var ? var_id[f.dst] : f.dst;
          t.size = f.size;
          t.start = f.start;
          group_tuples[f.group].push_back(t);
        }
        key.clear();
        for (auto& tuples : group_tuples) {
          std::sort(tuples.begin(), tuples.end());
          for (const Tuple& t : tuples) {
            char buf[24];
            std::memcpy(buf, &t.src, 4);
            std::memcpy(buf + 4, &t.dst, 4);
            std::memcpy(buf + 8, &t.size, 8);
            std::memcpy(buf + 16, &t.start, 8);
            key.append(buf, sizeof(buf));
          }
        }
        const auto it = memo.find(key);
        if (it != memo.end()) {
          estimate = it->second;
          have = true;
          ++out.memo_hits;
        }
      }
      if (!have) {
        est.HintChangedSuffix(lowest_changed);
        Result<Estimate> result = est.EstimateQuery(*ctx.query, binding, *ctx.status);
        lowest_changed = n;
        if (result.ok()) {
          estimate = result.value();
          have = true;
          if (ctx.memoize) {
            memo.emplace(key, estimate);
          }
        } else {
          out.last_error = result.error();
        }
      }
      if (have &&
          (!out.have_best || estimate.makespan < out.best_estimate.makespan ||
           (estimate.makespan == out.best_estimate.makespan && rank < out.best_rank))) {
        out.have_best = true;
        out.best_estimate = estimate;
        out.best_rank = rank;
        out.best_choice = choice;
      }
      // Backtrack.
      --depth;
      if (cursor) {
        cursor->Unassign(static_cast<int>(depth));
      }
      if (ctx.distinct) {
        used[ctx.pool_ids[depth][choice[depth]]] = 0;
      }
      step(depth);
      continue;
    }
    if (choice[depth] >= ctx.pool_ids[depth].size()) {
      if (depth == 0) {
        break;
      }
      choice[depth] = 0;
      --depth;
      if (cursor) {
        cursor->Unassign(static_cast<int>(depth));
      }
      if (ctx.distinct) {
        used[ctx.pool_ids[depth][choice[depth]]] = 0;
      }
      step(depth);
      continue;
    }
    // O200 orbit canonicalisation: within an interchangeability class only
    // the ascending-index assignment is visited — every permutation of it
    // has the same signature (hence a byte-identical estimate) and a
    // strictly higher odometer rank, so it can never win the tie-break.
    if (!ctx.orbit_prev.empty() && ctx.orbit_prev[depth] >= 0) {
      const size_t lb = choice[ctx.orbit_prev[depth]] + ctx.orbit_strict;
      if (choice[depth] < lb) {
        out.orbit_skips +=
            static_cast<int64_t>(lb - choice[depth]) * ctx.rank_weight[depth];
        choice[depth] = lb;
        continue;  // Re-check pool bounds at the clamped position.
      }
    }
    if (!ctx.feasible[depth].empty() && ctx.feasible[depth][choice[depth]] == 0) {
      step(depth);
      continue;
    }
    const int32_t id = ctx.pool_ids[depth][choice[depth]];
    if (ctx.distinct && used[id] != 0) {
      step(depth);
      continue;
    }
    slot[depth]->name = ctx.pool_names[depth][choice[depth]];
    lowest_changed = std::min(lowest_changed, depth);
    var_id[depth] = id;
    if (ctx.distinct) {
      used[id] = 1;
    }
    if (cursor) {
      cursor->Assign(static_cast<int>(depth), ctx.bound_host_ids[depth][choice[depth]]);
      // O500 branch-and-bound: every completion of this prefix finishes no
      // sooner than the cursor's sound lower bound, so a prefix whose bound
      // strictly exceeds the incumbent can neither beat nor tie the winner.
      if (out.have_best) {
        const Seconds lb = cursor->LowerBound();
        if (lb > out.best_estimate.makespan && lb < kBoundPruneCeiling) {
          out.bound_prunes += ctx.rank_weight[depth];
          cursor->Unassign(static_cast<int>(depth));
          if (ctx.distinct) {
            used[id] = 0;
          }
          step(depth);
          continue;
        }
      }
    }
    ++depth;
  }

  est.EndQuery();
  out.solver = est.TakeSolverStats();
  return out;
}

}  // namespace

Result<ExhaustiveResult> EvaluateExhaustive(const lang::CompiledQuery& query,
                                            const StatusByAddress& status,
                                            CompletionEstimator& estimator,
                                            const ExhaustiveParams& params) {
  const auto& variables = query.variables();
  const size_t n = variables.size();

  if (params.slice_count < 1 || params.slice_index < 0 ||
      params.slice_index >= params.slice_count) {
    return Error{"invalid slice: slice_index must lie in [0, slice_count)"};
  }

  if (n == 0) {
    // Only slice 0 evaluates the empty binding; the others report an empty
    // slice so a sharded merge counts it exactly once.
    if (params.slice_index > 0) {
      return Error{kNoLegalBinding};
    }
    Binding binding;
    Result<Estimate> estimate = estimator.EstimateQuery(query, binding, status);
    if (!estimate.ok()) {
      return estimate.error();
    }
    ExhaustiveResult best;
    best.estimate = estimate.value();
    best.counters.evaluations = 1;
    best.counters.enumerated = 1;
    return best;
  }

  EvalContext ctx;
  ctx.query = &query;
  ctx.status = &status;
  ctx.distinct = params.distinct_bindings && !query.query().options.allow_same_binding;
  ctx.num_groups = static_cast<int>(query.groups().size());

  // Static optimisation plan (src/lang/opt). Symmetry-based parts (orbit
  // canonicalisation, inert-variable pinning, signature folding) rely on the
  // estimator seeing only the per-group transfer multiset, so they share the
  // memo cache's permutation-invariance gate; domain pruning and the
  // infeasibility proof mirror the engine's own legality rules and apply
  // regardless.
  const bool can_memo_estimator = estimator.EstimatesArePermutationInvariant();
  lang::PrunedSpace computed_plan;
  const lang::PrunedSpace* plan = nullptr;
  if (params.optimize) {
    if (params.plan != nullptr) {
      plan = params.plan;
    } else {
      lang::OptimizeParams opt_params;
      opt_params.distinct = ctx.distinct;
      computed_plan = lang::Optimize(query, status, opt_params);
      plan = &computed_plan;
    }
    if (plan->infeasible) {
      return Error{kNoLegalBinding};
    }
  }
  const bool apply_symmetry = plan != nullptr && can_memo_estimator;

  // Intern candidate addresses (and literal flow endpoints, for signatures).
  std::unordered_map<std::string, int32_t> intern;
  const auto intern_id = [&intern](const std::string& address) {
    return intern.emplace(address, static_cast<int32_t>(intern.size())).first->second;
  };
  ctx.pool_ids.resize(n);
  ctx.pool_names.resize(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> candidates;
    candidates.reserve(variables[i].pool.size());
    for (const lang::Endpoint& value : variables[i].pool) {
      if (value.kind == lang::Endpoint::Kind::kAddress) {
        candidates.push_back(value.name);
      }
    }
    if (candidates.empty()) {
      return Error{"variable '" + variables[i].name + "' has no address candidates"};
    }
    // Apply the plan: domain pruning always, pinning only under the
    // estimator gate.
    std::vector<int32_t> keep;
    if (apply_symmetry && plan->pinned[i] >= 0) {
      keep.push_back(plan->pinned[i]);
    } else if (plan != nullptr) {
      keep = plan->kept[i];
    } else {
      keep.resize(candidates.size());
      for (size_t c = 0; c < candidates.size(); ++c) {
        keep[c] = static_cast<int32_t>(c);
      }
    }
    if (keep.empty()) {
      return Error{kNoLegalBinding};
    }
    ctx.pool_ids[i].reserve(keep.size());
    ctx.pool_names[i].reserve(keep.size());
    for (const int32_t c : keep) {
      if (c < 0 || static_cast<size_t>(c) >= candidates.size()) {
        return Error{"optimisation plan does not match the query"};
      }
      ctx.pool_ids[i].push_back(intern_id(candidates[c]));
      ctx.pool_names[i].push_back(candidates[c]);
    }
  }

  // Requirement legality (Section 7), enforced identically with and without
  // the plan. With a plan, O100 already removed infeasible candidates; the
  // unoptimised walk filters them odometer-side instead.
  ctx.feasible.resize(n);
  if (plan == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (variables[i].cpu_required <= 0 && variables[i].mem_required <= 0) {
        continue;
      }
      ctx.feasible[i].resize(ctx.pool_names[i].size(), 1);
      for (size_t c = 0; c < ctx.pool_names[i].size(); ++c) {
        const auto it = status.find(ctx.pool_names[i][c]);
        if (it != status.end() && !lang::SatisfiesRequirements(variables[i], it->second)) {
          ctx.feasible[i][c] = 0;
        }
      }
    }
  }

  // Size guard (on the pruned space when a plan is applied).
  double space = 1;
  for (const auto& pool : ctx.pool_ids) {
    space *= static_cast<double>(pool.size());
    if (space > static_cast<double>(params.max_bindings)) {
      return Error{"binding space exceeds max_bindings"};
    }
  }
  ctx.rank_weight.assign(n, 1);
  for (size_t d = n - 1; d > 0; --d) {
    ctx.rank_weight[d - 1] = ctx.rank_weight[d] * static_cast<int64_t>(ctx.pool_ids[d].size());
  }

  // O500 branch-and-bound (ISSUE 7): armed by the plan, honoured only when
  // the estimator vouches that its makespans lie inside the BoundAnalysis
  // interval at its availability fraction (the packet simulator returns a
  // negative fraction and the walk stays unpruned). The analysis is rebuilt
  // here with the estimator's *exact* fraction — the plan's own bounds may
  // have been computed with a different one for reporting.
  std::optional<lang::BoundAnalysis> bound;
  if (plan != nullptr && plan->bound_pruning) {
    const double fraction = estimator.BoundAvailabilityFraction();
    if (fraction >= 0) {
      lang::BoundOptions bound_options;
      bound_options.min_available_fraction = fraction;
      bound_options.distinct = params.distinct_bindings;
      bound.emplace(lang::BoundAnalysis::Build(query, status, bound_options));
      ctx.bound = &*bound;
      ctx.bound_host_ids.resize(n);
      for (size_t i = 0; i < n; ++i) {
        ctx.bound_host_ids[i].reserve(ctx.pool_names[i].size());
        for (const std::string& name : ctx.pool_names[i]) {
          ctx.bound_host_ids[i].push_back(ctx.bound->HostId(name));
        }
      }
    }
  }

  bool can_memo = can_memo_estimator;
  std::vector<char> fold_flow(query.flows().size(), 0);
  if (apply_symmetry) {
    for (const int32_t f : plan->dead_flows) {
      if (f >= 0 && static_cast<size_t>(f) < fold_flow.size()) {
        fold_flow[f] = 1;  // O400: inert in every estimate; drop from signatures.
      }
    }
    ctx.orbit_prev = plan->orbit_prev;
    ctx.orbit_strict = ctx.distinct ? 1 : 0;
  }
  int32_t next_unknown = kDiskId - 1;
  ctx.flow_specs.reserve(query.flows().size());
  for (size_t f = 0; f < query.flows().size(); ++f) {
    const lang::CompiledFlow& flow = query.flows()[f];
    FlowSpec fs;
    fs.size = flow.size;
    fs.start = flow.start;
    fs.group = flow.group;
    const auto fill = [&](const lang::Endpoint& e, bool& is_var, int32_t& id) {
      switch (e.kind) {
        case lang::Endpoint::Kind::kAddress:
          id = intern_id(e.name);
          break;
        case lang::Endpoint::Kind::kVariable: {
          const int v = query.VariableIndex(e.name);
          if (v < 0) {
            can_memo = false;  // Unbindable; the estimator reports the error.
          }
          is_var = true;
          id = v;
          break;
        }
        case lang::Endpoint::Kind::kDisk:
          id = kDiskId;
          break;
        case lang::Endpoint::Kind::kUnknown:
        default:
          id = next_unknown--;
          break;
      }
    };
    fill(flow.src, fs.src_is_var, fs.src);
    fill(flow.dst, fs.dst_is_var, fs.dst);
    if (fold_flow[f] == 0) {
      ctx.flow_specs.push_back(fs);
    }
  }
  ctx.num_ids = static_cast<int>(intern.size());
  ctx.memoize = params.memoize && can_memo;

  // Slice for shard fan-out (ISSUE 10): this call walks only first-variable
  // candidates ≡ slice_index (mod slice_count). Safe at depth 0: O200 never
  // clamps the first variable (it has no orbit predecessor) and the O500
  // incumbent is walk-local, pruning only strictly worse bindings — so the
  // union of slice winners merged by (makespan, rank) is the unsliced
  // winner, byte for byte.
  const int64_t pool0 = static_cast<int64_t>(ctx.pool_ids[0].size());
  const int64_t slice_size =
      params.slice_index < pool0
          ? (pool0 - params.slice_index + params.slice_count - 1) / params.slice_count
          : 0;
  if (slice_size == 0) {
    // More slices than candidates: this slice holds no binding at all.
    return Error{kNoLegalBinding};
  }

  // Shard the slice's candidates across workers. Every shard needs an
  // independent estimator; if the estimator cannot be cloned, stay serial.
  int shards =
      std::min<int64_t>(ThreadPool::ResolveThreadCount(params.threads), slice_size);
  shards = std::max(shards, 1);
  std::vector<std::unique_ptr<CompletionEstimator>> clones;
  if (shards > 1) {
    clones.reserve(shards);
    for (int w = 0; w < shards; ++w) {
      std::unique_ptr<CompletionEstimator> clone = estimator.CloneForThread();
      if (clone == nullptr) {
        shards = 1;
        clones.clear();
        break;
      }
      clones.push_back(std::move(clone));
    }
  }

  // Worker striping composes with slicing: worker w of this slice walks
  // first-variable indices slice_index + (w + k·shards)·slice_count. With
  // the default slice (1, 0) this reduces to the original offset=w,
  // stride=shards striping.
  const int slice_count = params.slice_count;
  const int slice_index = params.slice_index;
  std::vector<ShardResult> results(shards);
  if (shards == 1) {
    results[0] = RunShard(ctx, estimator, /*offset=*/slice_index, /*stride=*/slice_count);
  } else {
    ThreadPool::Shared().Run(shards, [&](int w) {
      results[w] = RunShard(ctx, *clones[w], /*offset=*/slice_index + w * slice_count,
                            /*stride=*/shards * slice_count);
    });
  }

  // Deterministic merge: lowest makespan, ties to the lexicographically
  // first binding in odometer order — exactly what a serial walk keeps.
  ExhaustiveResult best;
  best.counters.threads_used = shards;
  if (plan != nullptr) {
    best.counters.bindings_pruned = plan->bindings_pruned;
    best.counters.components = plan->components;
  }
  bool have_best = false;
  int64_t best_rank = 0;
  std::optional<Error> last_error;
  const ShardResult* winner = nullptr;
  for (const ShardResult& r : results) {
    best.counters.enumerated += r.tried;
    best.counters.evaluations += r.tried - r.memo_hits;
    best.counters.memo_hits += r.memo_hits;
    best.counters.orbit_skips += r.orbit_skips;
    best.counters.bound_prunes += r.bound_prunes;
    best.counters.delta_rebinds += r.solver.delta_rebinds;
    best.counters.cold_rebinds += r.solver.cold_rebinds;
    best.counters.solver_recomputes += r.solver.solver_recomputes;
    best.counters.delta_component_hits += r.solver.delta_component_hits;
    best.counters.cold_component_solves += r.solver.cold_component_solves;
    if (r.last_error.has_value() && !last_error.has_value()) {
      last_error = r.last_error;
    }
    if (r.have_best &&
        (!have_best || r.best_estimate.makespan < best.estimate.makespan ||
         (r.best_estimate.makespan == best.estimate.makespan && r.best_rank < best_rank))) {
      have_best = true;
      best.estimate = r.best_estimate;
      best_rank = r.best_rank;
      winner = &r;
    }
  }
  if (!have_best) {
    if (last_error.has_value()) {
      return *last_error;
    }
    return Error{kNoLegalBinding};
  }
  best.winner_rank = best_rank;
  for (size_t i = 0; i < n; ++i) {
    best.binding[variables[i].name] =
        lang::Endpoint::Address(ctx.pool_names[i][winner->best_choice[i]]);
  }
  return best;
}

}  // namespace cloudtalk
