#include "src/core/exhaustive.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"

namespace cloudtalk {
namespace {

// Endpoint id in memo signatures: interned addresses are >= 0, disk is -1,
// each 0.0.0.0 occurrence gets its own id below -1 (distinct external hosts,
// matching the estimator's per-occurrence "_unknownN" modelling).
constexpr int32_t kDiskId = -1;

// A flow with variables resolved to either a fixed endpoint id or a
// variable index, so a binding's signature is computed without touching the
// AST or any strings.
struct FlowSpec {
  bool src_is_var = false, dst_is_var = false;
  int32_t src = 0, dst = 0;  // Fixed id, or index into variables().
  double size = 0;
  int group = 0;
};

struct Tuple {
  int32_t src, dst;
  double size;
  bool operator<(const Tuple& o) const {
    if (src != o.src) return src < o.src;
    if (dst != o.dst) return dst < o.dst;
    return size < o.size;
  }
};

// Everything a worker needs, read-only during the walk.
struct EvalContext {
  const lang::CompiledQuery* query = nullptr;
  const StatusByAddress* status = nullptr;
  std::vector<std::vector<int32_t>> pool_ids;       // Per variable.
  std::vector<std::vector<std::string>> pool_names;
  std::vector<int64_t> rank_weight;  // Mixed-radix weights: rank = sum c[d]*w[d].
  std::vector<FlowSpec> flow_specs;
  int num_ids = 0;
  int num_groups = 0;
  bool distinct = false;
  bool memoize = false;
};

struct ShardResult {
  bool have_best = false;
  Estimate best_estimate;
  int64_t best_rank = 0;              // Odometer rank of the best binding.
  std::vector<size_t> best_choice;
  int64_t tried = 0;
  int64_t memo_hits = 0;
  std::optional<Error> last_error;
};

// Walks the slice of the binding space where the first variable's candidate
// index is congruent to `offset` modulo `stride` (remaining variables full
// range), scoring each legal binding with `est`. Enumeration order within a
// shard is lexicographic, so ranks are strictly increasing and "first
// strictly better wins" reproduces the serial engine's tie-break.
ShardResult RunShard(const EvalContext& ctx, CompletionEstimator& est, int offset, int stride) {
  const auto& variables = ctx.query->variables();
  const size_t n = variables.size();
  ShardResult out;
  est.BeginQuery(*ctx.query, *ctx.status);

  // One persistent Binding: enumeration only rewrites the address strings
  // in place (unordered_map nodes are stable).
  Binding binding;
  for (size_t i = 0; i < n; ++i) {
    binding[variables[i].name] = lang::Endpoint::Address("");
  }
  std::vector<lang::Endpoint*> slot(n);
  for (size_t i = 0; i < n; ++i) {
    slot[i] = &binding[variables[i].name];
  }

  std::vector<size_t> choice(n, 0);
  choice[0] = static_cast<size_t>(offset);
  std::vector<int32_t> var_id(n, 0);
  std::vector<char> used(ctx.distinct ? ctx.num_ids : 0, 0);

  std::unordered_map<std::string, Estimate> memo;
  std::vector<std::vector<Tuple>> group_tuples(ctx.num_groups);
  std::string key;

  const auto step = [&](size_t d) { choice[d] += d == 0 ? static_cast<size_t>(stride) : 1; };

  size_t depth = 0;
  while (true) {
    if (depth == n) {
      ++out.tried;
      int64_t rank = 0;
      for (size_t d = 0; d < n; ++d) {
        rank += static_cast<int64_t>(choice[d]) * ctx.rank_weight[d];
      }

      Estimate estimate;
      bool have = false;
      if (ctx.memoize) {
        for (auto& tuples : group_tuples) {
          tuples.clear();
        }
        for (const FlowSpec& f : ctx.flow_specs) {
          Tuple t;
          t.src = f.src_is_var ? var_id[f.src] : f.src;
          t.dst = f.dst_is_var ? var_id[f.dst] : f.dst;
          t.size = f.size;
          group_tuples[f.group].push_back(t);
        }
        key.clear();
        for (auto& tuples : group_tuples) {
          std::sort(tuples.begin(), tuples.end());
          for (const Tuple& t : tuples) {
            char buf[16];
            std::memcpy(buf, &t.src, 4);
            std::memcpy(buf + 4, &t.dst, 4);
            std::memcpy(buf + 8, &t.size, 8);
            key.append(buf, sizeof(buf));
          }
        }
        const auto it = memo.find(key);
        if (it != memo.end()) {
          estimate = it->second;
          have = true;
          ++out.memo_hits;
        }
      }
      if (!have) {
        Result<Estimate> result = est.EstimateQuery(*ctx.query, binding, *ctx.status);
        if (result.ok()) {
          estimate = result.value();
          have = true;
          if (ctx.memoize) {
            memo.emplace(key, estimate);
          }
        } else {
          out.last_error = result.error();
        }
      }
      if (have &&
          (!out.have_best || estimate.makespan < out.best_estimate.makespan ||
           (estimate.makespan == out.best_estimate.makespan && rank < out.best_rank))) {
        out.have_best = true;
        out.best_estimate = estimate;
        out.best_rank = rank;
        out.best_choice = choice;
      }
      // Backtrack.
      --depth;
      if (ctx.distinct) {
        used[ctx.pool_ids[depth][choice[depth]]] = 0;
      }
      step(depth);
      continue;
    }
    if (choice[depth] >= ctx.pool_ids[depth].size()) {
      if (depth == 0) {
        break;
      }
      choice[depth] = 0;
      --depth;
      if (ctx.distinct) {
        used[ctx.pool_ids[depth][choice[depth]]] = 0;
      }
      step(depth);
      continue;
    }
    const int32_t id = ctx.pool_ids[depth][choice[depth]];
    if (ctx.distinct && used[id] != 0) {
      step(depth);
      continue;
    }
    slot[depth]->name = ctx.pool_names[depth][choice[depth]];
    var_id[depth] = id;
    if (ctx.distinct) {
      used[id] = 1;
    }
    ++depth;
  }

  est.EndQuery();
  return out;
}

}  // namespace

Result<ExhaustiveResult> EvaluateExhaustive(const lang::CompiledQuery& query,
                                            const StatusByAddress& status,
                                            CompletionEstimator& estimator,
                                            const ExhaustiveParams& params) {
  const auto& variables = query.variables();
  const size_t n = variables.size();

  if (n == 0) {
    Binding binding;
    Result<Estimate> estimate = estimator.EstimateQuery(query, binding, status);
    if (!estimate.ok()) {
      return estimate.error();
    }
    ExhaustiveResult best;
    best.estimate = estimate.value();
    best.bindings_tried = 1;
    return best;
  }

  EvalContext ctx;
  ctx.query = &query;
  ctx.status = &status;
  ctx.distinct = params.distinct_bindings && !query.query().options.allow_same_binding;
  ctx.num_groups = static_cast<int>(query.groups().size());

  // Intern candidate addresses (and literal flow endpoints, for signatures).
  std::unordered_map<std::string, int32_t> intern;
  const auto intern_id = [&intern](const std::string& address) {
    return intern.emplace(address, static_cast<int32_t>(intern.size())).first->second;
  };
  ctx.pool_ids.resize(n);
  ctx.pool_names.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ctx.pool_ids[i].reserve(variables[i].pool.size());
    ctx.pool_names[i].reserve(variables[i].pool.size());
    for (const lang::Endpoint& value : variables[i].pool) {
      if (value.kind == lang::Endpoint::Kind::kAddress) {
        ctx.pool_ids[i].push_back(intern_id(value.name));
        ctx.pool_names[i].push_back(value.name);
      }
    }
    if (ctx.pool_ids[i].empty()) {
      return Error{"variable '" + variables[i].name + "' has no address candidates"};
    }
  }

  // Size guard.
  double space = 1;
  for (const auto& pool : ctx.pool_ids) {
    space *= static_cast<double>(pool.size());
    if (space > static_cast<double>(params.max_bindings)) {
      return Error{"binding space exceeds max_bindings"};
    }
  }
  ctx.rank_weight.assign(n, 1);
  for (size_t d = n - 1; d > 0; --d) {
    ctx.rank_weight[d - 1] = ctx.rank_weight[d] * static_cast<int64_t>(ctx.pool_ids[d].size());
  }

  bool can_memo = estimator.EstimatesArePermutationInvariant();
  int32_t next_unknown = kDiskId - 1;
  ctx.flow_specs.reserve(query.flows().size());
  for (const lang::CompiledFlow& flow : query.flows()) {
    FlowSpec fs;
    fs.size = flow.size;
    fs.group = flow.group;
    const auto fill = [&](const lang::Endpoint& e, bool& is_var, int32_t& id) {
      switch (e.kind) {
        case lang::Endpoint::Kind::kAddress:
          id = intern_id(e.name);
          break;
        case lang::Endpoint::Kind::kVariable: {
          const int v = query.VariableIndex(e.name);
          if (v < 0) {
            can_memo = false;  // Unbindable; the estimator reports the error.
          }
          is_var = true;
          id = v;
          break;
        }
        case lang::Endpoint::Kind::kDisk:
          id = kDiskId;
          break;
        case lang::Endpoint::Kind::kUnknown:
        default:
          id = next_unknown--;
          break;
      }
    };
    fill(flow.src, fs.src_is_var, fs.src);
    fill(flow.dst, fs.dst_is_var, fs.dst);
    ctx.flow_specs.push_back(fs);
  }
  ctx.num_ids = static_cast<int>(intern.size());
  ctx.memoize = params.memoize && can_memo;

  // Shard the first variable's candidates across workers. Every shard needs
  // an independent estimator; if the estimator cannot be cloned, stay serial.
  int shards = std::min<int64_t>(ThreadPool::ResolveThreadCount(params.threads),
                                 static_cast<int64_t>(ctx.pool_ids[0].size()));
  shards = std::max(shards, 1);
  std::vector<std::unique_ptr<CompletionEstimator>> clones;
  if (shards > 1) {
    clones.reserve(shards);
    for (int w = 0; w < shards; ++w) {
      std::unique_ptr<CompletionEstimator> clone = estimator.CloneForThread();
      if (clone == nullptr) {
        shards = 1;
        clones.clear();
        break;
      }
      clones.push_back(std::move(clone));
    }
  }

  std::vector<ShardResult> results(shards);
  if (shards == 1) {
    results[0] = RunShard(ctx, estimator, /*offset=*/0, /*stride=*/1);
  } else {
    ThreadPool::Shared().Run(shards, [&](int w) {
      results[w] = RunShard(ctx, *clones[w], /*offset=*/w, /*stride=*/shards);
    });
  }

  // Deterministic merge: lowest makespan, ties to the lexicographically
  // first binding in odometer order — exactly what a serial walk keeps.
  ExhaustiveResult best;
  best.threads_used = shards;
  bool have_best = false;
  int64_t best_rank = 0;
  std::optional<Error> last_error;
  const ShardResult* winner = nullptr;
  for (const ShardResult& r : results) {
    best.bindings_tried += r.tried;
    best.memo_hits += r.memo_hits;
    if (r.last_error.has_value() && !last_error.has_value()) {
      last_error = r.last_error;
    }
    if (r.have_best &&
        (!have_best || r.best_estimate.makespan < best.estimate.makespan ||
         (r.best_estimate.makespan == best.estimate.makespan && r.best_rank < best_rank))) {
      have_best = true;
      best.estimate = r.best_estimate;
      best_rank = r.best_rank;
      winner = &r;
    }
  }
  if (!have_best) {
    if (last_error.has_value()) {
      return *last_error;
    }
    return Error{"no legal binding exists (distinctness unsatisfiable?)"};
  }
  for (size_t i = 0; i < n; ++i) {
    best.binding[variables[i].name] =
        lang::Endpoint::Address(ctx.pool_names[i][winner->best_choice[i]]);
  }
  return best;
}

}  // namespace cloudtalk
