// N-slot concurrent admission gate (ISSUE 9 landed the two-slot pilot;
// ISSUE 10 generalizes it and shares it between the single CloudTalkServer
// and the sharded front end).
//
// Up to `slots` queries evaluate concurrently when their reservation
// footprints are disjoint; a pair whose candidate sets intersect — and at
// least one of them reserves — serializes, because the later query's
// reservation filter must observe the earlier query's holds to stay
// byte-identical to the sequential order (the D504 commutation contract).
//
// Release wakes EVERY waiter, not just one: a waiter may be blocked on the
// slot count alone (its footprint conflicts with nobody), so whichever slot
// frees must let it re-check — waking only a "conflicting" waiter would
// leave it parked behind a free slot forever.
#ifndef CLOUDTALK_SRC_CORE_ADMISSION_H_
#define CLOUDTALK_SRC_CORE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <unordered_set>
#include <string>
#include <vector>

#include "src/lang/scope.h"

namespace cloudtalk {

class AdmissionGate {
 public:
  // `slots` ≤ 0 is clamped to 1 (a zero-slot gate would deadlock).
  explicit AdmissionGate(int slots);

  // Blocks until a slot is free and no admitted query's reservation
  // footprint conflicts with `scope`, then returns a ticket. `scope` must
  // outlive the admission (the gate borrows its candidate set).
  uint64_t Admit(const lang::ScopeAnalysis& scope);

  // Frees the slot `ticket` holds and wakes every waiter for a re-check.
  // Invariant I409: the ticket must match a scope still in flight.
  void Release(uint64_t ticket);

  int slots() const { return slots_; }
  int InFlight() const;

 private:
  // Each entry borrows the candidate set from the admitting frame's
  // ScopeAnalysis (alive until Release by construction).
  struct Admitted {
    uint64_t ticket = 0;
    bool reserves = false;
    const std::unordered_set<std::string>* candidates = nullptr;
  };

  int slots_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Admitted> admitted_;
  uint64_t next_ticket_ = 0;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_ADMISSION_H_
