#include "src/core/admission.h"

#include <algorithm>

#include "src/check/check.h"
#include "src/common/lock_registry.h"

namespace cloudtalk {
namespace {

bool Intersects(const std::unordered_set<std::string>& a,
                const std::unordered_set<std::string>& b) {
  const std::unordered_set<std::string>& small = a.size() <= b.size() ? a : b;
  const std::unordered_set<std::string>& large = a.size() <= b.size() ? b : a;
  for (const std::string& s : small) {
    if (large.count(s) > 0) {
      return true;
    }
  }
  return false;
}

}  // namespace

#if defined(CLOUDTALK_INVARIANTS) && CLOUDTALK_INVARIANTS
namespace {

LockId AdmissionLockId() {
  static const LockId id = LockRegistry::Instance().Register("server.admission");
  return id;
}

}  // namespace
#endif

AdmissionGate::AdmissionGate(int slots) : slots_(std::max(1, slots)) {}

uint64_t AdmissionGate::Admit(const lang::ScopeAnalysis& scope) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] {
    if (static_cast<int>(admitted_.size()) >= slots_) {
      return false;
    }
    for (const Admitted& in_flight : admitted_) {
      if ((in_flight.reserves || scope.effects.reserves) &&
          Intersects(*in_flight.candidates, scope.candidates)) {
        return false;
      }
    }
    return true;
  });
  CT_LOCK_TRACE(AdmissionLockId());
  Admitted entry;
  entry.ticket = ++next_ticket_;
  entry.reserves = scope.effects.reserves;
  entry.candidates = &scope.candidates;
  admitted_.push_back(entry);
  return entry.ticket;
}

void AdmissionGate::Release(uint64_t ticket) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(AdmissionLockId());
    const auto it = std::find_if(admitted_.begin(), admitted_.end(),
                                 [ticket](const Admitted& a) { return a.ticket == ticket; });
    CT_INVARIANT(it != admitted_.end(), "I409",
                 "admission release does not match any in-flight scope")
        .With("ticket", std::to_string(ticket));
    if (it != admitted_.end()) {
      admitted_.erase(it);
    }
  }
  // notify_all, deliberately: a waiter blocked purely on the slot count must
  // re-check when ANY slot frees, not only when a footprint-conflicting one
  // does (tests/shard_test.cc pins this down).
  cv_.notify_all();
}

int AdmissionGate::InFlight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CT_LOCK_TRACE(AdmissionLockId());
  return static_cast<int>(admitted_.size());
}

}  // namespace cloudtalk
