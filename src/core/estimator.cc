#include "src/core/estimator.h"

#include <algorithm>
#include <vector>

#include "src/fluidsim/fluid_simulation.h"
#include "src/topology/topology.h"

namespace cloudtalk {

std::optional<lang::Endpoint> ResolveEndpoint(const lang::Endpoint& endpoint,
                                              const Binding& binding) {
  if (endpoint.kind != lang::Endpoint::Kind::kVariable) {
    return endpoint;
  }
  const auto it = binding.find(endpoint.name);
  if (it == binding.end()) {
    return std::nullopt;
  }
  return it->second;
}

Result<Estimate> FlowLevelEstimator::EstimateQuery(const lang::CompiledQuery& query,
                                              const Binding& binding,
                                              const StatusByAddress& status) {
  // Build a throwaway star topology: one abstract host per distinct address
  // in the bound query, all hanging off an uncontended switch. Endpoint
  // capacities and background load come from the status snapshot; unknown
  // addresses (no report) are modelled as idle with very large capacity so
  // they never dominate the estimate (0.0.0.0 sources fall in this bucket).
  struct AbstractHost {
    std::string address;
    StatusReport report;
    NodeId node = kInvalidNode;
  };
  std::vector<AbstractHost> hosts;
  std::unordered_map<std::string, int> host_index;
  auto intern = [&](const std::string& address) -> Result<int> {
    const auto it = host_index.find(address);
    if (it != host_index.end()) {
      return it->second;
    }
    AbstractHost host;
    host.address = address;
    const auto status_it = status.find(address);
    if (status_it != status.end()) {
      host.report = status_it->second;
    } else {
      HostCaps big;
      big.nic_up = big.nic_down = big.disk_read = big.disk_write = 1e15;
      host.report = StatusReport::Idle(kInvalidNode, big);
    }
    const int index = static_cast<int>(hosts.size());
    hosts.push_back(std::move(host));
    host_index.emplace(address, index);
    return index;
  };

  // Resolve every flow's endpoints first so the host set is complete.
  struct ResolvedFlow {
    lang::Endpoint src;
    lang::Endpoint dst;
    Bytes size = 0;
    int group = 0;
  };
  std::vector<ResolvedFlow> resolved;
  resolved.reserve(query.flows().size());
  int unknown_counter = 0;
  for (const lang::CompiledFlow& flow : query.flows()) {
    ResolvedFlow rf;
    auto src = ResolveEndpoint(flow.src, binding);
    auto dst = ResolveEndpoint(flow.dst, binding);
    if (!src.has_value() || !dst.has_value()) {
      return Error{"flow '" + flow.name + "' has an unbound variable endpoint"};
    }
    rf.src = *src;
    rf.dst = *dst;
    rf.size = flow.size;
    rf.group = flow.group;
    // Each 0.0.0.0 is a distinct infinitely-provisioned external sender.
    if (rf.src.kind == lang::Endpoint::Kind::kUnknown) {
      rf.src = lang::Endpoint::Address("_unknown" + std::to_string(unknown_counter++));
    }
    if (rf.dst.kind == lang::Endpoint::Kind::kUnknown) {
      rf.dst = lang::Endpoint::Address("_unknown" + std::to_string(unknown_counter++));
    }
    for (const lang::Endpoint* e : {&rf.src, &rf.dst}) {
      if (e->kind == lang::Endpoint::Kind::kAddress) {
        Result<int> idx = intern(e->name);
        if (!idx.ok()) {
          return idx.error();
        }
      }
    }
    resolved.push_back(std::move(rf));
  }

  // Star topology with an uncontended hub.
  Topology star;
  const NodeId hub = star.AddNode(NodeKind::kTor, "hub");
  for (AbstractHost& host : hosts) {
    HostCaps caps;
    caps.nic_up = host.report.nic_tx_cap;
    caps.nic_down = host.report.nic_rx_cap;
    caps.disk_read = host.report.disk_read_cap;
    caps.disk_write = host.report.disk_write_cap;
    host.node = star.AddHost(host.address, caps, 0);
    star.AddDuplexLink(host.node, hub, 1e15);
  }
  FluidSimulation sim(&star, min_available_fraction_);
  for (const AbstractHost& host : hosts) {
    sim.SetBackground(sim.resources().NicUp(host.node), host.report.nic_tx_use);
    sim.SetBackground(sim.resources().NicDown(host.node), host.report.nic_rx_use);
    sim.SetBackground(sim.resources().DiskRead(host.node), host.report.disk_read_use);
    sim.SetBackground(sim.resources().DiskWrite(host.node), host.report.disk_write_use);
  }

  // One fluid group per chain group.
  Bytes total_bytes = 0;
  std::vector<GroupSpec> specs(query.groups().size());
  for (size_t g = 0; g < query.groups().size(); ++g) {
    specs[g].rate_limit = query.groups()[g].rate_limit;
    specs[g].start_time = std::max<Seconds>(0, query.groups()[g].start);
  }
  auto node_of = [&](const lang::Endpoint& e) { return hosts[host_index.at(e.name)].node; };
  for (const ResolvedFlow& rf : resolved) {
    FluidFlow flow;
    flow.size = rf.size;
    total_bytes += rf.size;
    if (rf.src.kind == lang::Endpoint::Kind::kDisk) {
      flow.resources = {sim.resources().DiskRead(node_of(rf.dst))};
    } else if (rf.dst.kind == lang::Endpoint::Kind::kDisk) {
      flow.resources = {sim.resources().DiskWrite(node_of(rf.src))};
    } else {
      flow.resources = sim.resources().NetworkPath(star, node_of(rf.src), node_of(rf.dst));
    }
    specs[rf.group].flows.push_back(std::move(flow));
  }

  Seconds makespan = 0;
  for (GroupSpec& spec : specs) {
    if (spec.flows.empty()) {
      continue;
    }
    sim.AddGroup(std::move(spec), [&makespan](GroupId, Seconds t) {
      makespan = std::max(makespan, t);
    });
  }
  if (!sim.RunUntilIdle(/*hard_deadline=*/1e9)) {
    return Error{"flow-level estimate did not converge (zero-rate flows)"};
  }
  cloudtalk::Estimate estimate;
  estimate.makespan = makespan;
  estimate.aggregate_throughput = makespan > 0 ? total_bytes * 8.0 / makespan : 0;
  return estimate;
}

}  // namespace cloudtalk
