#include "src/core/estimator.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/fluidsim/fluid_simulation.h"
#include "src/topology/topology.h"

namespace cloudtalk {

namespace {
// Unknown (0.0.0.0) and unreported endpoints are modelled as idle hosts with
// very large capacity so they never dominate the estimate.
constexpr Bps kHugeCapacity = 1e15;

StatusReport ReportFor(const StatusByAddress& status, const std::string& address) {
  const auto it = status.find(address);
  if (it != status.end()) {
    return it->second;
  }
  HostCaps big;
  big.nic_up = big.nic_down = big.disk_read = big.disk_write = kHugeCapacity;
  return StatusReport::Idle(kInvalidNode, big);
}
}  // namespace

std::optional<lang::Endpoint> ResolveEndpoint(const lang::Endpoint& endpoint,
                                              const Binding& binding) {
  if (endpoint.kind != lang::Endpoint::Kind::kVariable) {
    return endpoint;
  }
  const auto it = binding.find(endpoint.name);
  if (it == binding.end()) {
    return std::nullopt;
  }
  return it->second;
}

// Per-query scratch: the star topology, the fluid simulation and the flow
// plans are built once in BeginQuery and reused (via FluidSimulation::Reset)
// for every binding of the query. The host universe is every pool address,
// every literal flow endpoint, and one pre-interned abstract host per
// 0.0.0.0 occurrence (fixed per query, so repeated estimates cannot leak
// fresh "_unknownN" hosts — the counter effectively resets per estimate).
struct FlowLevelEstimator::Scratch {
  const lang::CompiledQuery* query = nullptr;
  const StatusByAddress* status = nullptr;

  Topology star;
  NodeId hub = kInvalidNode;
  std::unique_ptr<FluidSimulation> sim;

  std::unordered_map<std::string, int> host_index;
  std::vector<NodeId> host_node;
  // Per host-slot resources of the star: NIC up/down, disk read/write, and
  // the two directed hub links. A src->dst transfer consumes
  // {nic_up[src], link_up[src], link_down[dst], nic_down[dst]} — exactly
  // what ResourceRegistry::NetworkPath returns on this topology, without
  // the per-binding path lookup.
  std::vector<ResourceId> nic_up, nic_down, disk_read, disk_write, link_up, link_down;

  struct Ep {
    enum Kind { kHost, kVar, kDisk };
    Kind kind = kHost;
    int index = 0;  // Host slot for kHost, variable index for kVar.
  };
  struct FlowPlan {
    Ep src, dst;
    Bytes size = 0;
    int group = 0;
  };
  std::vector<FlowPlan> flows;

  // Reused per estimate.
  std::vector<int> var_slot;        // variable index -> host slot (-1 unbound).
  std::vector<GroupSpec> specs;

  // ---- Delta re-bind state (ISSUE 6) ----
  // The query's groups are installed into the simulation once; a checkpoint
  // is saved right after. Every later binding restores the checkpoint and
  // patches, in place, only the members whose endpoints differ from the
  // *checkpointed* binding (the restore reverts member resources to exactly
  // that binding, so the diff is always taken against it).
  bool groups_installed = false;
  std::vector<GroupId> group_ids;   // per chain group; kInvalidGroup if empty
  struct FlowMember {
    GroupId gid = kInvalidGroup;
    int member = -1;
  };
  std::vector<FlowMember> flow_member;       // per flow plan
  std::vector<std::vector<int>> flows_of_var;  // var index -> flows touching it
  std::vector<int> chk_var_slot;             // var slots of the checkpointed binding
  std::vector<int> depth_of_var;             // walk depth per var (-1: not hinted)
  std::vector<ResourceId> patch_resources;   // scratch for resource rewrites
  Bytes total_bytes = 0;                     // constant per query

  int InternHost(const std::string& address, const StatusByAddress& st) {
    const auto it = host_index.find(address);
    if (it != host_index.end()) {
      return it->second;
    }
    const int slot = static_cast<int>(host_node.size());
    host_index.emplace(address, slot);
    const StatusReport report = ReportFor(st, address);
    HostCaps caps;
    caps.nic_up = report.nic_tx_cap;
    caps.nic_down = report.nic_rx_cap;
    caps.disk_read = report.disk_read_cap;
    caps.disk_write = report.disk_write_cap;
    const NodeId node = star.AddHost(address, caps, 0);
    const LinkId up = star.AddDuplexLink(node, hub, kHugeCapacity);
    host_node.push_back(node);
    pending_reports.push_back(report);
    pending_links.push_back(up);
    return slot;
  }

  // Reports/links staged during interning; consumed once the simulation is
  // constructed (resource ids only exist after the registry is built).
  std::vector<StatusReport> pending_reports;
  std::vector<LinkId> pending_links;
};

FlowLevelEstimator::FlowLevelEstimator(double min_available_fraction, bool reuse_scratch,
                                       bool delta_rebind)
    : min_available_fraction_(min_available_fraction),
      reuse_scratch_(reuse_scratch),
      delta_rebind_(delta_rebind) {}

FlowLevelEstimator::~FlowLevelEstimator() = default;

void FlowLevelEstimator::BeginQuery(const lang::CompiledQuery& query,
                                    const StatusByAddress& status) {
  if (!reuse_scratch_) {
    return;
  }
  scratch_ = std::make_unique<Scratch>();
  Scratch& s = *scratch_;
  s.query = &query;
  s.status = &status;
  s.hub = s.star.AddNode(NodeKind::kTor, "hub");

  // Host universe: pool addresses first (variable order), then literal flow
  // endpoints (flow order), then one abstract host per 0.0.0.0 occurrence.
  for (const lang::VarComm& var : query.variables()) {
    for (const lang::Endpoint& e : var.pool) {
      if (e.kind == lang::Endpoint::Kind::kAddress) {
        s.InternHost(e.name, status);
      }
    }
  }
  int unknown_counter = 0;
  s.flows.reserve(query.flows().size());
  for (const lang::CompiledFlow& flow : query.flows()) {
    Scratch::FlowPlan plan;
    plan.size = flow.size;
    plan.group = flow.group;
    auto classify = [&](const lang::Endpoint& e) -> Scratch::Ep {
      switch (e.kind) {
        case lang::Endpoint::Kind::kAddress:
          return {Scratch::Ep::kHost, s.InternHost(e.name, status)};
        case lang::Endpoint::Kind::kVariable:
          return {Scratch::Ep::kVar, query.VariableIndex(e.name)};
        case lang::Endpoint::Kind::kDisk:
          return {Scratch::Ep::kDisk, 0};
        case lang::Endpoint::Kind::kUnknown:
        default:
          // Each 0.0.0.0 is a distinct infinitely-provisioned external
          // sender, exactly as the cold path's per-call counter models it.
          return {Scratch::Ep::kHost,
                  s.InternHost("_unknown" + std::to_string(unknown_counter++), status)};
      }
    };
    plan.src = classify(flow.src);
    plan.dst = classify(flow.dst);
    s.flows.push_back(plan);
  }

  s.sim = std::make_unique<FluidSimulation>(&s.star, min_available_fraction_);
  const ResourceRegistry& registry = s.sim->resources();
  const int hosts = static_cast<int>(s.host_node.size());
  s.nic_up.resize(hosts);
  s.nic_down.resize(hosts);
  s.disk_read.resize(hosts);
  s.disk_write.resize(hosts);
  s.link_up.resize(hosts);
  s.link_down.resize(hosts);
  for (int i = 0; i < hosts; ++i) {
    const NodeId node = s.host_node[i];
    s.nic_up[i] = registry.NicUp(node);
    s.nic_down[i] = registry.NicDown(node);
    s.disk_read[i] = registry.DiskRead(node);
    s.disk_write[i] = registry.DiskWrite(node);
    // AddDuplexLink allocates (forward, reverse) consecutively.
    s.link_up[i] = registry.LinkResource(s.pending_links[i]);
    s.link_down[i] = registry.LinkResource(s.pending_links[i] + 1);
    const StatusReport& report = s.pending_reports[i];
    s.sim->SetBackground(s.nic_up[i], report.nic_tx_use);
    s.sim->SetBackground(s.nic_down[i], report.nic_rx_use);
    s.sim->SetBackground(s.disk_read[i], report.disk_read_use);
    s.sim->SetBackground(s.disk_write[i], report.disk_write_use);
  }
  s.var_slot.assign(query.variables().size(), -1);
  s.flows_of_var.assign(query.variables().size(), {});
  s.depth_of_var.assign(query.variables().size(), -1);
  s.total_bytes = 0;
  for (size_t i = 0; i < s.flows.size(); ++i) {
    const Scratch::FlowPlan& plan = s.flows[i];
    s.total_bytes += plan.size;
    if (plan.src.kind == Scratch::Ep::kVar) {
      s.flows_of_var[plan.src.index].push_back(static_cast<int>(i));
    }
    if (plan.dst.kind == Scratch::Ep::kVar &&
        (plan.src.kind != Scratch::Ep::kVar || plan.src.index != plan.dst.index)) {
      s.flows_of_var[plan.dst.index].push_back(static_cast<int>(i));
    }
  }
  hint_active_ = false;
  slots_valid_ = false;
}

void FlowLevelEstimator::EndQuery() {
  if (scratch_ != nullptr && scratch_->sim != nullptr) {
    const FluidSimulation::SolverCounters c = scratch_->sim->solver_counters();
    stats_.solver_recomputes += c.recomputes;
    stats_.delta_component_hits += c.delta_component_hits;
    stats_.cold_component_solves += c.cold_component_solves;
  }
  scratch_.reset();
  hint_active_ = false;
  slots_valid_ = false;
}

std::unique_ptr<CompletionEstimator> FlowLevelEstimator::CloneForThread() const {
  return std::make_unique<FlowLevelEstimator>(min_available_fraction_, reuse_scratch_,
                                              delta_rebind_);
}

void FlowLevelEstimator::BeginHintedWalk(const std::vector<std::string>& vars_in_walk_order) {
  if (scratch_ == nullptr) {
    return;
  }
  Scratch& s = *scratch_;
  s.depth_of_var.assign(s.query->variables().size(), -1);
  for (size_t d = 0; d < vars_in_walk_order.size(); ++d) {
    const int v = s.query->VariableIndex(vars_in_walk_order[d]);
    if (v >= 0 && v < static_cast<int>(s.depth_of_var.size())) {
      s.depth_of_var[v] = static_cast<int>(d);
    }
  }
}

void FlowLevelEstimator::HintChangedSuffix(size_t first_changed_depth) {
  hint_active_ = true;
  hint_first_depth_ = first_changed_depth;
}

SolverStats FlowLevelEstimator::TakeSolverStats() {
  const SolverStats out = stats_;
  stats_ = SolverStats{};
  return out;
}

Result<Estimate> FlowLevelEstimator::EstimateQuery(const lang::CompiledQuery& query,
                                              const Binding& binding,
                                              const StatusByAddress& status) {
  if (scratch_ != nullptr && scratch_->query == &query && scratch_->status == &status) {
    // Bindings outside the interned universe (possible only on direct calls
    // with out-of-pool addresses) fall through to the cold path.
    bool miss = false;
    Scratch& s = *scratch_;
    const auto& variables = query.variables();
    // With a valid engine hint, variables strictly above the changed suffix
    // kept their binding since the previous call, so their cached slots are
    // reused without the hash lookups.
    const bool use_hint = hint_active_ && slots_valid_;
    hint_active_ = false;  // Consumed (valid for this call only).
    for (size_t v = 0; v < variables.size(); ++v) {
      if (use_hint && s.depth_of_var[v] >= 0 &&
          static_cast<size_t>(s.depth_of_var[v]) < hint_first_depth_) {
        continue;
      }
      const auto it = binding.find(variables[v].name);
      if (it == binding.end()) {
        s.var_slot[v] = -1;  // Flows referencing it fail, as in the cold path.
        continue;
      }
      if (it->second.kind != lang::Endpoint::Kind::kAddress) {
        miss = true;
        break;
      }
      const auto host_it = s.host_index.find(it->second.name);
      if (host_it == s.host_index.end()) {
        miss = true;
        break;
      }
      s.var_slot[v] = host_it->second;
    }
    slots_valid_ = !miss;
    if (!miss) {
      return EstimateWithScratch(query, binding);
    }
  }
  return EstimateCold(query, binding, status);
}

Result<Estimate> FlowLevelEstimator::EstimateWithScratch(const lang::CompiledQuery& query,
                                                         const Binding& binding) {
  (void)binding;
  Scratch& s = *scratch_;
  FluidSimulation& sim = *s.sim;

  auto slot_of = [&](const Scratch::Ep& ep) -> int {
    return ep.kind == Scratch::Ep::kHost ? ep.index
                                         : (ep.index >= 0 ? s.var_slot[ep.index] : -1);
  };
  // Resolves flow i's resource set under the current var_slot view into
  // `out`. False on an unbound variable endpoint.
  auto flow_resources = [&](size_t i, std::vector<ResourceId>& out) -> bool {
    const Scratch::FlowPlan& plan = s.flows[i];
    out.clear();
    if (plan.src.kind == Scratch::Ep::kDisk) {
      const int dst = slot_of(plan.dst);
      if (dst < 0) {
        return false;
      }
      out = {s.disk_read[dst]};
    } else if (plan.dst.kind == Scratch::Ep::kDisk) {
      const int src = slot_of(plan.src);
      if (src < 0) {
        return false;
      }
      out = {s.disk_write[src]};
    } else {
      const int src = slot_of(plan.src);
      const int dst = slot_of(plan.dst);
      if (src < 0 || dst < 0) {
        return false;
      }
      if (src != dst) {
        // Same resource set and order as ResourceRegistry::NetworkPath on
        // the star; loopback transfers consume nothing (empty set).
        out = {s.nic_up[src], s.link_up[src], s.link_down[dst], s.nic_down[dst]};
      }
    }
    return true;
  };

  if (delta_rebind_ && s.groups_installed) {
    // Delta re-bind: rewind to the checkpoint (which also reverts member
    // resources to the checkpointed binding) and patch only the flows whose
    // endpoints differ from it. Untouched components then re-solve as cache
    // hits inside the simulation.
    sim.RestoreCheckpoint();
    for (size_t v = 0; v < s.var_slot.size(); ++v) {
      if (s.var_slot[v] == s.chk_var_slot[v]) {
        continue;
      }
      for (const int fi : s.flows_of_var[v]) {
        const Scratch::FlowMember& fm = s.flow_member[fi];
        if (fm.gid == kInvalidGroup) {
          continue;
        }
        if (!flow_resources(fi, s.patch_resources)) {
          return Error{"flow '" + query.flows()[fi].name + "' has an unbound variable endpoint"};
        }
        std::vector<ResourceId>& target = sim.MutableMemberResources(fm.gid, fm.member);
        if (target != s.patch_resources) {
          target = s.patch_resources;
          sim.MarkGroupDirty(fm.gid);
        }
      }
    }
    ++stats_.delta_rebinds;
  } else {
    // Full (re)install: build every group from scratch, then checkpoint so
    // subsequent bindings take the delta path.
    s.groups_installed = false;
    sim.Reset();
    s.specs.clear();
    s.specs.resize(query.groups().size());
    for (size_t g = 0; g < query.groups().size(); ++g) {
      s.specs[g].rate_limit = query.groups()[g].rate_limit;
      s.specs[g].start_time = std::max<Seconds>(0, query.groups()[g].start);
    }
    s.flow_member.assign(s.flows.size(), Scratch::FlowMember{});
    for (size_t i = 0; i < s.flows.size(); ++i) {
      const Scratch::FlowPlan& plan = s.flows[i];
      if (!flow_resources(i, s.patch_resources)) {
        return Error{"flow '" + query.flows()[i].name + "' has an unbound variable endpoint"};
      }
      FluidFlow flow;
      flow.size = plan.size;
      flow.resources = s.patch_resources;
      // Temporarily store the chain-group index; remapped to the admitted
      // GroupId below.
      s.flow_member[i].gid = plan.group;
      s.flow_member[i].member = static_cast<int>(s.specs[plan.group].flows.size());
      s.specs[plan.group].flows.push_back(std::move(flow));
    }
    s.group_ids.assign(query.groups().size(), kInvalidGroup);
    for (size_t g = 0; g < s.specs.size(); ++g) {
      if (s.specs[g].flows.empty()) {
        continue;
      }
      s.group_ids[g] = sim.AddGroup(std::move(s.specs[g]));
    }
    for (Scratch::FlowMember& fm : s.flow_member) {
      fm.gid = fm.gid >= 0 ? s.group_ids[fm.gid] : kInvalidGroup;
    }
    if (delta_rebind_) {
      sim.SaveCheckpoint();
      s.chk_var_slot = s.var_slot;
      s.groups_installed = true;
    }
    ++stats_.cold_rebinds;
  }

  if (!sim.RunUntilIdle(/*hard_deadline=*/1e9)) {
    return Error{"flow-level estimate did not converge (zero-rate flows)"};
  }
  Seconds makespan = 0;
  for (const GroupId gid : s.group_ids) {
    if (gid != kInvalidGroup) {
      makespan = std::max(makespan, sim.GroupFinishTime(gid));
    }
  }
  cloudtalk::Estimate estimate;
  estimate.makespan = makespan;
  estimate.aggregate_throughput = makespan > 0 ? s.total_bytes * 8.0 / makespan : 0;
  return estimate;
}

Result<Estimate> FlowLevelEstimator::EstimateCold(const lang::CompiledQuery& query,
                                                  const Binding& binding,
                                                  const StatusByAddress& status) const {
  // Build a throwaway star topology: one abstract host per distinct address
  // in the bound query, all hanging off an uncontended switch. Endpoint
  // capacities and background load come from the status snapshot; unknown
  // addresses (no report) are modelled as idle with very large capacity so
  // they never dominate the estimate (0.0.0.0 sources fall in this bucket).
  struct AbstractHost {
    std::string address;
    StatusReport report;
    NodeId node = kInvalidNode;
  };
  std::vector<AbstractHost> hosts;
  std::unordered_map<std::string, int> host_index;
  auto intern = [&](const std::string& address) -> int {
    const auto it = host_index.find(address);
    if (it != host_index.end()) {
      return it->second;
    }
    AbstractHost host;
    host.address = address;
    host.report = ReportFor(status, address);
    const int index = static_cast<int>(hosts.size());
    hosts.push_back(std::move(host));
    host_index.emplace(address, index);
    return index;
  };

  // Resolve every flow's endpoints first so the host set is complete.
  struct ResolvedFlow {
    lang::Endpoint src;
    lang::Endpoint dst;
    Bytes size = 0;
    int group = 0;
  };
  std::vector<ResolvedFlow> resolved;
  resolved.reserve(query.flows().size());
  int unknown_counter = 0;
  for (const lang::CompiledFlow& flow : query.flows()) {
    ResolvedFlow rf;
    auto src = ResolveEndpoint(flow.src, binding);
    auto dst = ResolveEndpoint(flow.dst, binding);
    if (!src.has_value() || !dst.has_value()) {
      return Error{"flow '" + flow.name + "' has an unbound variable endpoint"};
    }
    rf.src = *src;
    rf.dst = *dst;
    rf.size = flow.size;
    rf.group = flow.group;
    // Each 0.0.0.0 is a distinct infinitely-provisioned external sender.
    if (rf.src.kind == lang::Endpoint::Kind::kUnknown) {
      rf.src = lang::Endpoint::Address("_unknown" + std::to_string(unknown_counter++));
    }
    if (rf.dst.kind == lang::Endpoint::Kind::kUnknown) {
      rf.dst = lang::Endpoint::Address("_unknown" + std::to_string(unknown_counter++));
    }
    for (const lang::Endpoint* e : {&rf.src, &rf.dst}) {
      if (e->kind == lang::Endpoint::Kind::kAddress) {
        intern(e->name);
      }
    }
    resolved.push_back(std::move(rf));
  }

  // Star topology with an uncontended hub.
  Topology star;
  const NodeId hub = star.AddNode(NodeKind::kTor, "hub");
  for (AbstractHost& host : hosts) {
    HostCaps caps;
    caps.nic_up = host.report.nic_tx_cap;
    caps.nic_down = host.report.nic_rx_cap;
    caps.disk_read = host.report.disk_read_cap;
    caps.disk_write = host.report.disk_write_cap;
    host.node = star.AddHost(host.address, caps, 0);
    star.AddDuplexLink(host.node, hub, kHugeCapacity);
  }
  FluidSimulation sim(&star, min_available_fraction_);
  for (const AbstractHost& host : hosts) {
    sim.SetBackground(sim.resources().NicUp(host.node), host.report.nic_tx_use);
    sim.SetBackground(sim.resources().NicDown(host.node), host.report.nic_rx_use);
    sim.SetBackground(sim.resources().DiskRead(host.node), host.report.disk_read_use);
    sim.SetBackground(sim.resources().DiskWrite(host.node), host.report.disk_write_use);
  }

  // One fluid group per chain group.
  Bytes total_bytes = 0;
  std::vector<GroupSpec> specs(query.groups().size());
  for (size_t g = 0; g < query.groups().size(); ++g) {
    specs[g].rate_limit = query.groups()[g].rate_limit;
    specs[g].start_time = std::max<Seconds>(0, query.groups()[g].start);
  }
  auto node_of = [&](const lang::Endpoint& e) { return hosts[host_index.at(e.name)].node; };
  for (const ResolvedFlow& rf : resolved) {
    FluidFlow flow;
    flow.size = rf.size;
    total_bytes += rf.size;
    if (rf.src.kind == lang::Endpoint::Kind::kDisk) {
      flow.resources = {sim.resources().DiskRead(node_of(rf.dst))};
    } else if (rf.dst.kind == lang::Endpoint::Kind::kDisk) {
      flow.resources = {sim.resources().DiskWrite(node_of(rf.src))};
    } else {
      flow.resources = sim.resources().NetworkPath(star, node_of(rf.src), node_of(rf.dst));
    }
    specs[rf.group].flows.push_back(std::move(flow));
  }

  std::vector<GroupId> ids;
  ids.reserve(specs.size());
  for (GroupSpec& spec : specs) {
    if (spec.flows.empty()) {
      continue;
    }
    ids.push_back(sim.AddGroup(std::move(spec)));
  }
  if (!sim.RunUntilIdle(/*hard_deadline=*/1e9)) {
    return Error{"flow-level estimate did not converge (zero-rate flows)"};
  }
  Seconds makespan = 0;
  for (const GroupId id : ids) {
    makespan = std::max(makespan, sim.GroupFinishTime(id));
  }
  cloudtalk::Estimate estimate;
  estimate.makespan = makespan;
  estimate.aggregate_throughput = makespan > 0 ? total_bytes * 8.0 / makespan : 0;
  return estimate;
}

}  // namespace cloudtalk
