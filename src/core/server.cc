#include "src/core/server.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "src/common/lock_registry.h"
#include "src/common/logging.h"
#include "src/core/pipeline.h"
#include "src/lang/bound.h"
#include "src/lang/canon.h"
#include "src/lang/lint.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"

namespace cloudtalk {

namespace {

// Rewrites the variable names a reply carries (binding keys and score
// labels) through `rename`; names outside the map pass through unchanged.
QueryReply MapReplyNames(const QueryReply& in,
                         const std::unordered_map<std::string, std::string>& rename) {
  QueryReply out = in;
  auto mapped = [&rename](const std::string& name) {
    const auto it = rename.find(name);
    return it != rename.end() ? it->second : name;
  };
  out.binding.clear();
  for (const auto& [var, endpoint] : in.binding) {
    out.binding.emplace(mapped(var), endpoint);
  }
  for (auto& [var, score] : out.scores) {
    (void)score;
    var = mapped(var);
  }
  return out;
}

std::unordered_map<std::string, std::string> ForwardMap(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::unordered_map<std::string, std::string> map;
  for (const auto& [from, to] : pairs) {
    map.emplace(from, to);
  }
  return map;
}

std::unordered_map<std::string, std::string> ReverseMap(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::unordered_map<std::string, std::string> map;
  for (const auto& [from, to] : pairs) {
    map.emplace(to, from);
  }
  return map;
}

}  // namespace

#if defined(CLOUDTALK_INVARIANTS) && CLOUDTALK_INVARIANTS
namespace {

LockId StatsLockId() {
  static const LockId id = LockRegistry::Instance().Register("server.stats");
  return id;
}
LockId RngLockId() {
  static const LockId id = LockRegistry::Instance().Register("server.rng");
  return id;
}
}  // namespace
#endif

CloudTalkServer::CloudTalkServer(ServerConfig config, const Directory* directory,
                                 ProbeTransport* transport, std::function<Seconds()> clock,
                                 CompletionEstimator* packet_estimator)
    : config_(config),
      directory_(directory),
      transport_(transport),
      clock_(std::move(clock)),
      packet_estimator_(packet_estimator),
      reservations_(config.reservation_hold),
      rng_(config.seed),
      admission_(config.admission_slots) {
  check::SetViolationPolicy(config.invariant_policy);
}

Result<QueryReply> CloudTalkServer::Answer(const std::string& query_text) {
  CT_OBS_INC("M100");
  obs::TraceContext trace("answer");
  // Fast path: a spelling answered before skips the language front end
  // entirely — parse/lint/canon are pure functions of the bytes, so the
  // memoized certificate and warnings stand in for a re-run. The skeleton
  // spans are still emitted (near-zero duration) so hit traces keep the
  // guaranteed parse/lint/canon prefix.
  if (config_.answer_cache) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    const auto memo_it = frontend_memo_.find(query_text);
    if (memo_it != frontend_memo_.end()) {
      const FrontendMemo& memo = memo_it->second;
      if (CacheableEffects(memo.effects)) {
        const auto it = answer_cache_.find(memo.canonical_text);
        if (it != answer_cache_.end() && it->second.epoch == cache_epoch_) {
          // A memoized miss is not counted here: the slow path repeats the
          // lookup after re-canonicalizing and counts it exactly once.
          CT_OBS_INC("M110");
          CT_OBS_INC("M111");
          const int parse_span = trace.OpenFollowing("parse");
          trace.Attr(parse_span, "bytes", static_cast<int64_t>(query_text.size()));
          const int lint_span = trace.Transition(parse_span, "lint");
          trace.Attr(lint_span, "diagnostics", static_cast<int64_t>(memo.warnings.size()));
          const int canon_span = trace.Transition(lint_span, "canon");
          char hash_text[17];
          std::snprintf(hash_text, sizeof(hash_text), "%016llx",
                        static_cast<unsigned long long>(memo.hash));
          trace.Attr(canon_span, "hash", hash_text);
          trace.Attr(canon_span, "cache", "hit");
          trace.Close(canon_span);
          QueryReply reply = MapReplyNames(it->second.reply, ReverseMap(memo.variable_map));
          if (!memo.warnings.empty()) {
            reply.warnings = memo.warnings;
          }
          reply.trace = trace.Finish();
          if (!reply.trace.empty()) {
            CT_OBS_OBSERVE("M102", reply.trace.spans[0].duration);
          }
          return reply;
        }
      }
    }
  }
  lang::DiagnosticSink sink;
  const int parse_span = trace.OpenFollowing("parse");
  lang::Query query = lang::ParseWithDiagnostics(query_text, &sink);
  trace.Attr(parse_span, "bytes", static_cast<int64_t>(query_text.size()));
  const int lint_span = trace.Transition(parse_span, "lint");
  lang::RunLint(query, &sink);
  trace.Attr(lint_span, "diagnostics", static_cast<int64_t>(sink.diagnostics().size()));
  trace.Close(lint_span);
  if (sink.has_errors()) {
    CT_OBS_INC("M101");
    return sink.ToLegacyError();
  }

  // Canonicalize (ISSUE 8). The span is part of every reply's phase
  // skeleton: the hash identifies the query up to renaming/reordering even
  // when the answer cache is off. A cacheable repeat is answered here,
  // skipping compile/probe/search entirely; `lookup_epoch` is re-checked at
  // store time so a status refresh racing the answer can never publish a
  // stale entry.
  const int canon_span = trace.OpenFollowing("canon");
  const Result<lang::CanonicalQuery> canon = lang::Canonicalize(query);
  const char* cache_state = "off";
  bool store = false;
  uint64_t lookup_epoch = 0;
  // Statically inferred effect set (src/lang/scope): pure in the query
  // bytes, so it rides in the front-end memo and gates the answer cache.
  const lang::ScopeEffects effects = lang::AnalyzeEffects(query);
  if (canon.ok()) {
    char hash_text[17];
    std::snprintf(hash_text, sizeof(hash_text), "%016llx",
                  static_cast<unsigned long long>(canon.value().hash));
    trace.Attr(canon_span, "hash", hash_text);
    if (config_.answer_cache) {
      // Memoize the front-end result for this exact spelling (pure in the
      // query bytes, so never invalidated; the cap bounds memory on
      // adversarial workloads that never repeat a spelling).
      std::lock_guard<std::mutex> lock(cache_mutex_);
      if (frontend_memo_.size() >= kFrontendMemoCap) {
        frontend_memo_.clear();
      }
      FrontendMemo& memo = frontend_memo_[query_text];
      memo.canonical_text = canon.value().text;
      memo.hash = canon.value().hash;
      memo.variable_map = canon.value().variable_map;
      memo.warnings = sink.diagnostics();
      memo.effects = effects;
    }
    if (config_.answer_cache && CacheableEffects(effects)) {
      CT_OBS_INC("M110");
      std::lock_guard<std::mutex> lock(cache_mutex_);
      lookup_epoch = cache_epoch_;
      const auto it = answer_cache_.find(canon.value().text);
      if (it != answer_cache_.end() && it->second.epoch == cache_epoch_) {
        CT_OBS_INC("M111");
        trace.Attr(canon_span, "cache", "hit");
        trace.Close(canon_span);
        QueryReply reply =
            MapReplyNames(it->second.reply, ReverseMap(canon.value().variable_map));
        if (!sink.empty()) {
          reply.warnings = sink.diagnostics();
        }
        reply.trace = trace.Finish();
        if (!reply.trace.empty()) {
          CT_OBS_OBSERVE("M102", reply.trace.spans[0].duration);
        }
        return reply;
      }
      cache_state = "miss";
      store = true;
    }
  }
  trace.Attr(canon_span, "cache", cache_state);
  trace.Close(canon_span);

  Result<QueryReply> reply = AnswerTraced(query, trace);
  if (!reply.ok()) {
    CT_OBS_INC("M101");
    return reply;
  }
  if (store) {
    // Cache the reply in the canonical name space, stripped of the
    // per-request parts (trace, warnings), so any equivalent spelling can
    // be served from it.
    CachedAnswer entry;
    entry.epoch = lookup_epoch;
    entry.reply = MapReplyNames(reply.value(), ForwardMap(canon.value().variable_map));
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (cache_epoch_ == lookup_epoch) {
      answer_cache_[canon.value().text] = std::move(entry);
    }
  }
  if (!sink.empty()) {
    // Warning-only queries are answered, but the findings travel with the
    // reply so clients can see what looked suspect.
    reply.value().warnings = sink.diagnostics();
  }
  reply.value().trace = trace.Finish();
  if (!reply.value().trace.empty()) {
    CT_OBS_OBSERVE("M102", reply.value().trace.spans[0].duration);
  }
  return reply;
}

bool CloudTalkServer::CacheableEffects(const lang::ScopeEffects& effects) const {
  // Sampled pools draw from the server RNG: two cold answers need not agree,
  // so a cached one cannot stand in for either.
  if (effects.max_pool_size > config_.sample_threshold) {
    return false;
  }
  // Reservations are time-varying state the exhaustive path ignores but the
  // heuristic path both reads (the filter) and writes (the reserve effect).
  if (config_.reservation_hold > 0 && !effects.uses_packet_engine) {
    if (effects.reserves) {
      return false;  // A cold answer would mutate the reservation table.
    }
    if (reservations_.ActiveCount(clock_()) > 0) {
      return false;  // The binding depends on when reservations expire.
    }
  }
  return true;
}

void CloudTalkServer::InvalidateAnswerCache() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++cache_epoch_;
  if (!answer_cache_.empty()) {
    answer_cache_.clear();
    CT_OBS_INC("M112");
  }
}

Result<QueryReply> CloudTalkServer::AnswerParsed(const lang::Query& query) {
  obs::TraceContext trace("answer");
  Result<QueryReply> reply = AnswerTraced(query, trace);
  if (reply.ok()) {
    reply.value().trace = trace.Finish();
  }
  return reply;
}

StatusByAddress CloudTalkServer::GatherStatus(const lang::CompiledQuery& compiled,
                                              const lang::ScopeAnalysis* scope,
                                              std::vector<lang::VarComm>* sampled_vars,
                                              ProbeStats* stats, obs::TraceContext& trace) {
  return GatherStatusOver(config_, *directory_, *transport_, rng_, rng_mutex_, compiled, scope,
                          sampled_vars, stats, trace);
}

Result<QueryReply> CloudTalkServer::AnswerTraced(const lang::Query& query,
                                                 obs::TraceContext& trace) {
  const int compile_span = trace.OpenFollowing("compile");
  Result<lang::CompiledQuery> compiled = lang::CompiledQuery::Compile(query);
  trace.Close(compile_span);
  if (!compiled.ok()) {
    return compiled.error();
  }

  // Static footprint & effect analysis (ISSUE 9, src/lang/scope): which
  // hosts the answer can depend on, and whether answering reserves. Drives
  // the probe filter below and the concurrent admission gate.
  const lang::ScopeAnalysis scope = lang::AnalyzeScope(compiled.value());
  {
    const int scope_span = trace.OpenFollowing("scope");
    trace.Attr(scope_span, "footprint", static_cast<int64_t>(scope.footprint.size()));
    trace.Attr(scope_span, "excluded", static_cast<int64_t>(scope.excluded.size()));
    trace.Attr(scope_span, "effects", lang::EffectsName(scope.effects));
    trace.Close(scope_span);
  }

  // Concurrent admission (src/core/admission.h): hold a slot for the rest
  // of the evaluation. Queries with disjoint reservation footprints proceed
  // in parallel; conflicting ones queue here. With reservations disabled
  // every pair commutes, so the gate is bypassed entirely.
  const uint64_t admission_ticket =
      config_.reservation_hold > 0 ? admission_.Admit(scope) : 0;
  struct AdmissionGuard {
    AdmissionGate* gate;
    uint64_t ticket;
    ~AdmissionGuard() {
      if (ticket != 0) {
        gate->Release(ticket);
      }
    }
  } admission_guard{&admission_, admission_ticket};

  QueryReply reply;
  StatusByAddress status;
  std::vector<lang::VarComm> variables = compiled.value().variables();
  const lang::ScopeAnalysis* probe_scope = config_.scope_probe_pruning ? &scope : nullptr;
  if (query.options.use_dynamic_load) {
    status = GatherStatus(compiled.value(), probe_scope, &variables, &reply.probe_stats, trace);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    CT_LOCK_TRACE(StatsLockId());
    total_stats_.Accumulate(reply.probe_stats);
  } else {
    status = SynthesizeStaticStatus(*directory_, variables, probe_scope, trace);
  }

  // Admission bound check (ISSUE 7): sound completion-time intervals over
  // the snapshot just gathered (src/lang/bound.h). When the evaluation's
  // estimator vouches for the bound model — a non-negative availability
  // fraction — a chain group whose lower bound already exceeds its deadline
  // proves the query unanswerable for *every* binding, so it is rejected
  // here, before any search runs. The span (with the query-level interval)
  // is part of every reply's phase skeleton either way.
  CompletionEstimator* bound_model = query.options.use_packet_simulator
                                         ? packet_estimator_
                                         : static_cast<CompletionEstimator*>(&flow_estimator_);
  const double bound_fraction =
      bound_model != nullptr ? bound_model->BoundAvailabilityFraction() : -1;
  {
    Error bound_error;
    if (!CheckAdmissionBound(config_, compiled.value(), status, bound_fraction, trace,
                             &bound_error)) {
      return bound_error;
    }
  }

  if (query.options.use_packet_simulator) {
    if (packet_estimator_ == nullptr) {
      return Error{"query requests packet-level evaluation, but no packet estimator is wired"};
    }
    Result<ExhaustiveResult> best =
        RunExhaustiveSliced(config_, query, compiled.value(), status, *packet_estimator_,
                            bound_fraction, /*slice_count=*/1, trace);
    if (!best.ok()) {
      return best.error();
    }
    reply.binding = best.value().binding;
    reply.estimate = best.value().estimate;
    reply.used_exhaustive = true;
    reply.counters = best.value().counters;
    // Exhaustive answers skip the reservation table, but the phase skeleton
    // stays complete so every trace carries a reserve span.
    obs::TraceContext::Scoped reserve_span(&trace, "reserve");
    trace.Attr(reserve_span.id(), "reserved", static_cast<int64_t>(0));
    return reply;
  }

  const Seconds now = clock_();
  ReservationFilter filter = nullptr;
  if (config_.reservation_hold > 0) {
    filter = [this, now](const std::string& address) {
      return reservations_.IsReserved(address, now);
    };
  }
  const int bind_span = trace.OpenFollowing("bind");
  trace.Attr(bind_span, "mode", "heuristic");
  Result<HeuristicResult> heuristic = EvaluateHeuristic(
      variables, query.options.allow_same_binding, status, config_.heuristic, filter);
  if (!heuristic.ok()) {
    trace.Close(bind_span);
    return heuristic.error();
  }
  reply.binding = std::move(heuristic.value().binding);
  reply.scores = std::move(heuristic.value().scores);
  trace.Attr(bind_span, "bound", static_cast<int64_t>(reply.binding.size()));
  const int reserve_span = trace.Transition(bind_span, "reserve");
  int64_t reserved = 0;
  if (query.options.reserve) {
    const Seconds reserve_now = clock_();
    for (const auto& [var, endpoint] : reply.binding) {
      (void)var;
      reservations_.Reserve(endpoint.name, reserve_now);
      ++reserved;
    }
    CT_OBS_ADD("M104", reserved);
  }
  trace.Attr(reserve_span, "reserved", reserved);
  trace.Close(reserve_span);
  return reply;
}

Result<QuoteReply> CloudTalkServer::Quote(const std::string& query_text) {
  Result<lang::Query> query = lang::Parse(query_text);
  if (!query.ok()) {
    return query.error();
  }
  Result<lang::CompiledQuery> compiled = lang::CompiledQuery::Compile(query.value());
  if (!compiled.ok()) {
    return compiled.error();
  }
  CT_OBS_INC("M107");
  ProbeStats stats;
  std::vector<lang::VarComm> variables = compiled.value().variables();
  obs::TraceContext quote_trace("quote");
  const lang::ScopeAnalysis scope = lang::AnalyzeScope(compiled.value());
  StatusByAddress status =
      GatherStatus(compiled.value(), config_.scope_probe_pruning ? &scope : nullptr,
                   &variables, &stats, quote_trace);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    CT_LOCK_TRACE(StatsLockId());
    total_stats_.Accumulate(stats);
  }
  // Quoting never reserves: the client is asking about a workload it may
  // not run. Existing reservations are still avoided.
  const Seconds now = clock_();
  ReservationFilter filter = [this, now](const std::string& address) {
    return reservations_.IsReserved(address, now);
  };
  Result<HeuristicResult> heuristic =
      EvaluateHeuristic(variables, query.value().options.allow_same_binding, status,
                        config_.heuristic, filter);
  if (!heuristic.ok()) {
    return heuristic.error();
  }
  Result<Estimate> estimate =
      flow_estimator_.EstimateQuery(compiled.value(), heuristic.value().binding, status);
  if (!estimate.ok()) {
    return estimate.error();
  }
  QuoteReply quote;
  quote.binding = std::move(heuristic.value().binding);
  quote.estimate = estimate.value();
  std::unordered_set<std::string> endpoints;
  for (const lang::CompiledFlow& flow : compiled.value().flows()) {
    quote.bytes_moved += flow.size;
    for (const lang::Endpoint* e : {&flow.src, &flow.dst}) {
      auto resolved = ResolveEndpoint(*e, quote.binding);
      if (resolved.has_value() && resolved->kind == lang::Endpoint::Kind::kAddress) {
        endpoints.insert(resolved->name);
      }
    }
  }
  quote.endpoints = static_cast<int>(endpoints.size());
  for (const lang::CompiledGroup& group : compiled.value().groups()) {
    if (std::isfinite(group.deadline)) {
      quote.has_deadline = true;
      quote.deadline = quote.has_deadline && quote.deadline > 0
                           ? std::min(quote.deadline, group.deadline)
                           : group.deadline;
    }
  }
  if (quote.has_deadline) {
    quote.deadline_met = quote.estimate.makespan <= quote.deadline;
  }
  quote.price = pricing_.per_gb_moved * (quote.bytes_moved / (1024.0 * 1024.0 * 1024.0)) +
                pricing_.per_server_second * quote.endpoints * quote.estimate.makespan;
  return quote;
}

ProbeStats CloudTalkServer::total_probe_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  CT_LOCK_TRACE(StatsLockId());
  return total_stats_;
}

}  // namespace cloudtalk
