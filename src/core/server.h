// CloudTalkServer: the client-facing service of Figure 2.
//
// Answering a query (Section 4):
//   1. Parse and compile the query text.
//   2. Collect the addresses involved; when a pool exceeds the sampling
//      threshold, probe only a random sample sized by the Section 4.3
//      analysis (RequiredSamples) instead of the whole pool.
//   3. Scatter-gather status over the ProbeTransport; hosts that do not
//      answer are assumed fully loaded.
//   4. Bind variables with the Listing 1 heuristic (or exhaustively /
//      packet-level when the query says so), honouring pseudo-reservations.
//   5. Reserve the recommended endpoints for the hold time.
//
// The server is thread-safe: concurrent queries synchronize on the
// reservation table per assignment, matching the paper's description.
#ifndef CLOUDTALK_SRC_CORE_SERVER_H_
#define CLOUDTALK_SRC_CORE_SERVER_H_

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/check/check.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/obs/trace.h"
#include "src/core/admission.h"
#include "src/core/directory.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/core/heuristic.h"
#include "src/core/reservations.h"
#include "src/lang/analysis.h"
#include "src/lang/scope.h"
#include "src/status/sampling.h"
#include "src/status/transport.h"

namespace cloudtalk {

struct ServerConfig {
  HeuristicParams heuristic;
  Seconds reservation_hold = 300 * kMillisecond;  // 0 disables (ablation).
  // Sampling (Section 4.3): pools larger than `sample_threshold` are
  // sampled down to RequiredSamples(d, idle_fraction_hint, confidence),
  // unless `sample_override` (> 0) pins the sample size.
  int sample_threshold = 100;
  double idle_fraction_hint = 0.3;
  double sample_confidence = 0.99;
  int sample_override = 0;
  Seconds probe_timeout = 10 * kMillisecond;
  // Ablation (DESIGN.md #5): when false, silent hosts are treated as idle
  // instead of loaded.
  bool assume_loaded_on_missing = true;
  uint64_t seed = 1;
  // Worker shards for exhaustive/packet-level evaluation (ISSUE 1):
  // 0 = hardware concurrency, 1 = serial. A query's `option threads N`
  // overrides this per query.
  int eval_threads = 0;
  // Static optimisation passes (src/lang/opt) for exhaustive evaluation.
  // Safe to leave on: the pruned search returns byte-identical results. A
  // query's `option optimize` / `option no_optimize` overrides per query.
  bool optimize = true;
  // What a fired CT_INVARIANT does (process-wide; applied at server
  // construction). Benches sweep with kLogAndContinue so a violation is
  // reported without killing the run; tests use kThrow. Meaningless when
  // CLOUDTALK_INVARIANTS is compiled out.
  check::OnViolation invariant_policy = check::OnViolation::kAbort;
  // Canonical answer cache (ISSUE 8): Answer() canonicalizes every query
  // (src/lang/canon) and, when enabled, serves a semantically repeated
  // query — renamed, reordered, or respelled — from the cached reply with
  // names mapped back through the certificate. Entries are keyed on the
  // canonical text (which embeds the option set) plus a status epoch; the
  // owner of the status plane must call InvalidateAnswerCache() whenever
  // host status changes (the simulation harness does so on every
  // measurement sweep). Off by default: only turn it on when that
  // invalidation contract is wired. Queries whose answers are not a pure
  // function of (canonical text, status snapshot) — sampled pools, pending
  // reservations, reserving heuristic answers — bypass the cache either
  // way.
  bool answer_cache = false;
  // Scope-based probe pruning (ISSUE 9): skip probing hosts the static
  // footprint analysis (src/lang/scope) proves no evaluation engine can
  // read. Sound — the D504 differential contract fuzzes byte-identity
  // against full probing — and on by default; off reverts to probing every
  // sampled pool entry and literal endpoint.
  bool scope_probe_pruning = true;
  // Concurrent admission gate (src/core/admission.h; ISSUE 9 landed the
  // two-slot pilot, ISSUE 10 generalized it to N slots): up to this many
  // queries evaluate concurrently when their reservation footprints are
  // disjoint; queries whose candidate sets intersect (and at least one
  // reserves) serialize. Releasing ANY slot re-checks every waiter. Only
  // engaged when reservation_hold > 0 — with reservations disabled every
  // pair of queries commutes and the gate would be pure overhead.
  int admission_slots = 2;
};

struct QueryReply {
  Binding binding;
  ProbeStats probe_stats;
  // Diagnostics from the heuristic (score per bound variable).
  std::vector<std::pair<std::string, double>> scores;
  // Filled only for exhaustive / packet-level evaluation.
  Estimate estimate;
  bool used_exhaustive = false;
  // Search accounting (exhaustive path only): evaluations, memo hits,
  // statically pruned bindings, orbit skips, components, shards.
  SearchCounters counters;
  // Lint findings (never errors — those reject the query). A client seeing
  // e.g. W050 contradictory-rate-chain here got an answer, but probably not
  // the one it meant to ask for.
  std::vector<lang::Diagnostic> warnings;
  // Query-lifecycle spans (ISSUE 5): parse, lint, canon, compile, scope,
  // sample, probe (one child per contacted host), bound, bind, reserve —
  // with wall times and per-phase attributes. Empty when observability is compiled out
  // (CLOUDTALK_OBS=OFF) or runtime-disabled. Render with obs::FormatTrace
  // or obs::TraceToJson; `tools/ctstat` does both.
  obs::Trace trace;
};

// Pricing knobs for Quote() (Section 7: "Clients could also use CloudTalk
// queries to describe a particular workload, and then request a price quota
// from the provider"). Deliberately simple: data moved plus busy time.
struct PricingModel {
  double per_gb_moved = 0.01;          // Currency units per GiB transferred.
  double per_server_second = 0.0001;   // Per endpoint-second of occupancy.
};

struct QuoteReply {
  Binding binding;            // The placement the quote is priced for.
  Estimate estimate;          // Predicted completion.
  Bytes bytes_moved = 0;      // Total data the query describes.
  int endpoints = 0;          // Distinct endpoints involved.
  double price = 0;           // Under the server's PricingModel.
  // Deadline check: the tightest literal `end` attribute in the query, and
  // whether the predicted completion makes it. has_deadline is false when
  // the query carries no finite `end`.
  bool has_deadline = false;
  Seconds deadline = 0;
  bool deadline_met = true;
};

class CloudTalkServer {
 public:
  // `directory` and `transport` must outlive the server. `clock` supplies
  // "now" for reservations (simulated or wall time). `packet_estimator` may
  // be null; queries with `option packet` then fail.
  CloudTalkServer(ServerConfig config, const Directory* directory, ProbeTransport* transport,
                  std::function<Seconds()> clock,
                  CompletionEstimator* packet_estimator = nullptr);

  // Parses, lints, and answers. Queries with errors (syntax, semantic, or
  // error-severity lint findings such as E030 size cycles) are rejected
  // with the first diagnostic's position and rule code; warning-only
  // queries are answered and the warnings returned in QueryReply::warnings.
  // The paper's 0.45 ms figure splits into parse (0.32 ms) and evaluation
  // (0.13 ms); callers wanting that split can use lang::Parse +
  // AnswerParsed directly (which skips lint).
  Result<QueryReply> Answer(const std::string& query_text);
  Result<QueryReply> AnswerParsed(const lang::Query& query);

  // Prices the described workload without reserving anything: the query is
  // bound as usual, its completion time estimated with the flow-level
  // estimator, and a price computed from the pricing model (Section 7).
  Result<QuoteReply> Quote(const std::string& query_text);

  void set_pricing(const PricingModel& pricing) { pricing_ = pricing; }
  const PricingModel& pricing() const { return pricing_; }

  // Accumulated probe traffic (Section 5.5 overhead accounting).
  ProbeStats total_probe_stats() const;

  // Drops every cached answer (M112 counts the events that discarded
  // something). The status plane must call this whenever host status
  // changes; cheap when the cache is empty or disabled.
  void InvalidateAnswerCache();

  const ServerConfig& config() const { return config_; }
  ReservationTable& reservations() { return reservations_; }

 private:
  // The shared evaluation pipeline behind Answer/AnswerParsed: compile,
  // gather status, bind, reserve — recording one span per phase in `trace`.
  Result<QueryReply> AnswerTraced(const lang::Query& query, obs::TraceContext& trace);

  // Gathers status for the addresses the query can touch (delegates to
  // GatherStatusOver in src/core/pipeline.h, the stage shared with the
  // sharded front end). Applies sampling, then drops addresses outside
  // `scope`'s footprint (pass nullptr to probe everything — the pruning
  // ablation and `ctcheck --diff-scope` baseline). Records the `sample` and
  // `probe` spans (one `probe.host` child per contacted target, M113
  // counting the skipped ones) in `trace`.
  StatusByAddress GatherStatus(const lang::CompiledQuery& compiled,
                               const lang::ScopeAnalysis* scope,
                               std::vector<lang::VarComm>* sampled_vars, ProbeStats* stats,
                               obs::TraceContext& trace);

  // True when the query's answer is a pure function of (canonical text,
  // status snapshot) under the current configuration, so a cached reply is
  // guaranteed byte-identical to the cold answer it replaces. The
  // query-shape half is the statically inferred effect set (pure in the
  // query bytes, so the front-end memo stores it); the time-varying half —
  // pending reservations held by other queries — is re-read here on every
  // lookup.
  bool CacheableEffects(const lang::ScopeEffects& effects) const;

  ServerConfig config_;
  const Directory* directory_;
  ProbeTransport* transport_;
  std::function<Seconds()> clock_;
  CompletionEstimator* packet_estimator_;
  FlowLevelEstimator flow_estimator_;
  PricingModel pricing_;
  ReservationTable reservations_;
  mutable std::mutex stats_mutex_;
  ProbeStats total_stats_;
  std::mutex rng_mutex_;
  Rng rng_;

  // Canonical answer cache (ServerConfig::answer_cache). Replies are stored
  // in the canonical name space (trace and warnings stripped); the epoch
  // guards against a status refresh racing an in-flight answer.
  struct CachedAnswer {
    uint64_t epoch = 0;
    QueryReply reply;
  };
  std::mutex cache_mutex_;
  uint64_t cache_epoch_ = 0;
  std::unordered_map<std::string, CachedAnswer> answer_cache_;

  // Front-end memo (answer_cache only): parse, lint, and canonicalization
  // are pure functions of the query bytes, so a spelling seen before skips
  // the whole language front end and goes straight to the answer-cache
  // lookup. Holds no status-dependent data, so InvalidateAnswerCache()
  // deliberately leaves it alone; bounded by clearing at the cap.
  struct FrontendMemo {
    std::string canonical_text;
    uint64_t hash = 0;
    std::vector<std::pair<std::string, std::string>> variable_map;
    std::vector<lang::Diagnostic> warnings;
    lang::ScopeEffects effects;  // AnalyzeEffects — pure in the query bytes.
  };
  static constexpr size_t kFrontendMemoCap = 4096;
  std::unordered_map<std::string, FrontendMemo> frontend_memo_;

  // Concurrent admission gate (src/core/admission.h): AnswerTraced holds a
  // slot for the whole evaluation when reservations are enabled.
  AdmissionGate admission_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_SERVER_H_
