// Brute-force query evaluation: enumerate every legal binding, score each
// with a CompletionEstimator, keep the best. Exact but exponential — the
// paper measures 130 ms for a query the heuristic answers in 0.13 ms, and
// uses exhaustive search as the optimality baseline in Figure 3 and for the
// packet-level web-search placement (Section 5.4, 100 placements).
//
// The engine partitions the binding space over a fixed worker pool (ISSUE 1):
// the first variable's candidates are striped across shards, each worker
// evaluates its slice with a thread-local estimator clone, and shard results
// are merged with a deterministic tie-break — lowest makespan, then the
// lexicographically-first binding in odometer order — so parallel and serial
// runs return byte-identical answers. A per-worker memo keyed by the
// canonical binding signature (the multiset of (src, dst, size) transfers
// per chain group) evaluates each distinct traffic pattern once.
#ifndef CLOUDTALK_SRC_CORE_EXHAUSTIVE_H_
#define CLOUDTALK_SRC_CORE_EXHAUSTIVE_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/core/estimator.h"
#include "src/lang/analysis.h"

namespace cloudtalk {

struct ExhaustiveResult {
  Binding binding;
  Estimate estimate;       // Of the winning binding.
  int64_t bindings_tried = 0;  // Legal bindings scored (memo hits included).
  int64_t memo_hits = 0;       // Of which, served from the signature cache.
  int threads_used = 1;        // Shards the space was actually split into.
};

struct ExhaustiveParams {
  bool distinct_bindings = true;      // Overridden by `option allow_same`.
  int64_t max_bindings = 10'000'000;  // Enumeration safety valve.
  // Worker shards: 1 = serial (the original behaviour), 0 = hardware
  // concurrency, N = at most N (capped by the first pool's size, and forced
  // to 1 when the estimator cannot be cloned per thread).
  int threads = 1;
  // Memoize estimates by canonical binding signature. Symmetric bindings
  // (same multiset of endpoint pairs per flow role) are evaluated once.
  bool memoize = true;
};

// Minimizes estimated makespan over all bindings. Fails when the space
// exceeds max_bindings or if the estimator fails on every binding.
Result<ExhaustiveResult> EvaluateExhaustive(const lang::CompiledQuery& query,
                                            const StatusByAddress& status,
                                            CompletionEstimator& estimator,
                                            const ExhaustiveParams& params = {});

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_EXHAUSTIVE_H_
