// Brute-force query evaluation: enumerate every legal binding, score each
// with a CompletionEstimator, keep the best. Exact but exponential — the
// paper measures 130 ms for a query the heuristic answers in 0.13 ms, and
// uses exhaustive search as the optimality baseline in Figure 3 and for the
// packet-level web-search placement (Section 5.4, 100 placements).
#ifndef CLOUDTALK_SRC_CORE_EXHAUSTIVE_H_
#define CLOUDTALK_SRC_CORE_EXHAUSTIVE_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/core/estimator.h"
#include "src/lang/analysis.h"

namespace cloudtalk {

struct ExhaustiveResult {
  Binding binding;
  Estimate estimate;       // Of the winning binding.
  int64_t bindings_tried = 0;
};

struct ExhaustiveParams {
  bool distinct_bindings = true;      // Overridden by `option allow_same`.
  int64_t max_bindings = 10'000'000;  // Enumeration safety valve.
};

// Minimizes estimated makespan over all bindings. Fails when the space
// exceeds max_bindings or if the estimator fails on every binding.
Result<ExhaustiveResult> EvaluateExhaustive(const lang::CompiledQuery& query,
                                            const StatusByAddress& status,
                                            CompletionEstimator& estimator,
                                            const ExhaustiveParams& params = {});

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_EXHAUSTIVE_H_
