// Brute-force query evaluation: enumerate every legal binding, score each
// with a CompletionEstimator, keep the best. Exact but exponential — the
// paper measures 130 ms for a query the heuristic answers in 0.13 ms, and
// uses exhaustive search as the optimality baseline in Figure 3 and for the
// packet-level web-search placement (Section 5.4, 100 placements).
//
// The engine partitions the binding space over a fixed worker pool (ISSUE 1):
// the first variable's candidates are striped across shards, each worker
// evaluates its slice with a thread-local estimator clone, and shard results
// are merged with a deterministic tie-break — lowest makespan, then the
// lexicographically-first binding in odometer order — so parallel and serial
// runs return byte-identical answers. A per-worker memo keyed by the
// canonical binding signature (the multiset of (src, dst, size, start)
// transfers per chain group) evaluates each distinct traffic pattern once.
//
// Scalar requirements (`X requires cpu 4 mem 8G`, Section 7) are a hard
// legality constraint here: a candidate whose status report shows too
// little free CPU or memory is never bound, in both the optimized and the
// unoptimized walk (the heuristic, by contrast, only ranks such candidates
// last — it must always answer). With `optimize`, the src/lang/opt passes
// additionally prune symmetric and irrelevant bindings, and — when the
// estimator vouches for a sound interval model of itself
// (CompletionEstimator::BoundAvailabilityFraction) — the O500 pass arms
// branch-and-bound pruning: odometer prefixes whose sound makespan lower
// bound (src/lang/bound.h) strictly exceeds the incumbent best are skipped.
// The winning binding and estimate are byte-identical either way.
#ifndef CLOUDTALK_SRC_CORE_EXHAUSTIVE_H_
#define CLOUDTALK_SRC_CORE_EXHAUSTIVE_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/core/estimator.h"
#include "src/lang/analysis.h"
#include "src/lang/opt.h"

namespace cloudtalk {

// Explicit accounting of where the search's work went. One legal binding is
// either *evaluated* (an estimator call) or a *memo hit* (served from the
// signature cache); bindings the static plan removed before the walk are
// *pruned*, and odometer positions skipped by orbit canonicalisation are
// *orbit skips* (counted before distinctness filtering, so they are
// positions, not necessarily legal bindings).
struct SearchCounters {
  int64_t evaluations = 0;      // Estimator calls (including failed ones).
  int64_t memo_hits = 0;        // Served from the signature cache.
  int64_t enumerated = 0;       // Legal bindings reached = evaluations + memo_hits.
  int64_t bindings_pruned = 0;  // Statically removed by the PrunedSpace plan.
  int64_t orbit_skips = 0;      // Odometer positions skipped by O200.
  // Odometer positions under prefixes cut by O500 branch-and-bound (counted
  // like orbit_skips: positions, not necessarily legal bindings).
  int64_t bound_prunes = 0;
  int components = 0;           // Communication components (O300 analysis).
  int threads_used = 1;         // Shards the space was actually split into.
  // Solver-cost breakdown (ISSUE 6), drained from each worker's estimator
  // after its shard: evaluations served by a checkpoint-restore delta rebind
  // vs. a full group re-install, plus the fluid solver's own recompute and
  // per-component delta-cache counters.
  int64_t delta_rebinds = 0;
  int64_t cold_rebinds = 0;
  int64_t solver_recomputes = 0;
  int64_t delta_component_hits = 0;
  int64_t cold_component_solves = 0;

  int64_t scored() const { return evaluations + memo_hits; }
};

struct ExhaustiveResult {
  Binding binding;
  Estimate estimate;  // Of the winning binding.
  SearchCounters counters;
  // The winner's odometer rank over the full (plan-pruned) space — the
  // mixed-radix position of its choice vector, first variable most
  // significant. Rank weights depend only on the plan's kept-candidate
  // counts, so ranks are comparable across slices of the same plan: a
  // sharded front end merges per-slice winners with the exact tie-break the
  // engine uses internally — lowest makespan, then lowest rank.
  int64_t winner_rank = 0;
};

struct ExhaustiveParams {
  bool distinct_bindings = true;      // Overridden by `option allow_same`.
  int64_t max_bindings = 10'000'000;  // Enumeration safety valve.
  // Worker shards: 1 = serial (the original behaviour), 0 = hardware
  // concurrency, N = at most N (capped by the first pool's size, and forced
  // to 1 when the estimator cannot be cloned per thread).
  int threads = 1;
  // Memoize estimates by canonical binding signature. Symmetric bindings
  // (same multiset of endpoint pairs per flow role) are evaluated once.
  bool memoize = true;
  // Apply the src/lang/opt static passes before the walk. The result is
  // byte-identical to optimize = false (the passes only remove bindings
  // that are illegal, symmetric to a lower-ranked one, or irrelevant); the
  // max_bindings guard then applies to the pruned space. When `plan` is
  // null the engine computes one itself.
  bool optimize = false;
  const lang::PrunedSpace* plan = nullptr;
  // Shard fan-out (ISSUE 10): evaluate only the slice of the binding space
  // whose first-variable candidate index ≡ slice_index (mod slice_count),
  // counted over the plan's kept candidates. Slicing composes with the
  // worker striping above (workers stripe within the slice). The default
  // (1, 0) is the whole space; a sharded front end runs one call per slice
  // and merges by (makespan, winner_rank), which is byte-identical to the
  // unsliced walk because O200 orbit clamping never constrains the first
  // variable and O500 incumbents only prune strictly worse bindings.
  int slice_count = 1;
  int slice_index = 0;
};

// Minimizes estimated makespan over all bindings. Fails when the space
// exceeds max_bindings or if the estimator fails on every binding.
Result<ExhaustiveResult> EvaluateExhaustive(const lang::CompiledQuery& query,
                                            const StatusByAddress& status,
                                            CompletionEstimator& estimator,
                                            const ExhaustiveParams& params = {});

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_EXHAUSTIVE_H_
