#include "src/core/policy.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace cloudtalk {

TransportPolicy ClassifyQuery(const lang::CompiledQuery& query,
                              const PolicyThresholds& thresholds) {
  TransportPolicy policy;

  // Collect the network flows (disk hops are irrelevant to the fabric).
  std::vector<Bytes> sizes;
  std::map<std::string, int> fan_in;  // Receiver endpoint -> converging flows.
  for (const lang::CompiledFlow& flow : query.flows()) {
    const bool src_net = flow.src.kind != lang::Endpoint::Kind::kDisk;
    const bool dst_net = flow.dst.kind != lang::Endpoint::Kind::kDisk;
    if (!src_net || !dst_net) {
      continue;
    }
    sizes.push_back(flow.size);
    fan_in[flow.dst.ToString()] += 1;
  }
  if (sizes.empty()) {
    return policy;
  }
  std::sort(sizes.begin(), sizes.end());
  const Bytes median = sizes[sizes.size() / 2];
  const Bytes smallest = sizes.front();
  int max_fan_in = 0;
  for (const auto& [receiver, count] : fan_in) {
    (void)receiver;
    max_fan_in = std::max(max_fan_in, count);
  }

  if (max_fan_in >= thresholds.scatter_gather_min_fan_in &&
      median <= thresholds.scatter_gather_max_flow) {
    policy.traffic_class = TrafficClass::kScatterGather;
    policy.enable_pfc = true;
    return policy;
  }
  if (static_cast<int>(sizes.size()) <= thresholds.elephant_max_flows &&
      smallest >= thresholds.elephant_min_flow) {
    policy.traffic_class = TrafficClass::kElephant;
    policy.multipath_subflows = thresholds.multipath_subflows;
    return policy;
  }
  return policy;
}

const char* TrafficClassName(TrafficClass traffic_class) {
  switch (traffic_class) {
    case TrafficClass::kScatterGather:
      return "scatter-gather";
    case TrafficClass::kElephant:
      return "elephant";
    case TrafficClass::kMixed:
      return "mixed";
  }
  return "?";
}

}  // namespace cloudtalk
