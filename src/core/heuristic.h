// The scalable query-evaluation heuristic (paper Section 4.2, Listing 1).
//
// For each variable, every candidate value gets a score equal to the *least
// available* resource the variable's flows would use on that candidate
// (min of network-receive, network-transmit, disk-read and disk-write
// fitness). Variables that communicate with exactly one endpoint which is
// itself in their value pool are bound first ("priority" variables — the
// Z <- a example), because binding them locally removes their network cost
// entirely.
//
// The per-resource fitness is  capacity − W × usage  with a selectable
// weight W (implicitly 2), trading raw capacity against contention.
//
// The heuristic runs in O(max(m, n·p)) for m flows, n variables and p pool
// size, and is optimal for single-variable queries and fixed-head daisy
// chains (properties covered by tests).
#ifndef CLOUDTALK_SRC_CORE_HEURISTIC_H_
#define CLOUDTALK_SRC_CORE_HEURISTIC_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/estimator.h"
#include "src/lang/analysis.h"

namespace cloudtalk {

// How a candidate's per-resource fitness is computed from (capacity, usage).
enum class FitnessModel {
  // Predicted share of a new flow: max(cap - use, cap / (1 + W*use/cap)).
  // Saturation-aware: a saturated fast resource still beats a saturated
  // slow one (the elastic competitors would yield a fair share). This is
  // the repository default — the paper's linear form misorders saturated
  // resources of different capacities (see DESIGN.md, reproduction notes).
  kFairShare,
  // The paper's literal formula: cap - W * use ("the difference between
  // maximum capacity and usage", weight W "implicitly 2").
  kLinear,
};

struct HeuristicParams {
  double weight = 2.0;  // W in evalRx/evalTx/evalDisk*.
  FitnessModel fitness = FitnessModel::kFairShare;
  // Ablation toggle for the priority-binding rule (DESIGN.md #3).
  bool enable_priority_binding = true;
  // Default: variables never share a binding; the language's
  // `option allow_same` overrides. When the pool is smaller than the number
  // of variables, bindings wrap around (Section 5.3 reduce query: "everyone
  // receives at least one reduce task").
  bool distinct_bindings = true;
};

// A hook consulted before committing each assignment: returns true if the
// address is currently unavailable (pseudo-reserved by a concurrent query,
// Section 5.5). Candidates are then tried in decreasing fitness order.
using ReservationFilter = std::function<bool(const std::string& address)>;

struct HeuristicResult {
  Binding binding;
  // Score of the chosen value per variable, in binding order (diagnostics).
  std::vector<std::pair<std::string, double>> scores;
};

// Binds every variable of `query` given the status snapshot. `reserved` may
// be null. Fails only if a variable has an empty candidate pool.
Result<HeuristicResult> EvaluateHeuristic(const lang::CompiledQuery& query,
                                          const StatusByAddress& status,
                                          const HeuristicParams& params,
                                          const ReservationFilter& reserved = nullptr);

// Same, over an explicit variable list (used by the server after sampling
// shrinks the pools). `allow_same` mirrors `option allow_same`.
Result<HeuristicResult> EvaluateHeuristic(const std::vector<lang::VarComm>& variables,
                                          bool allow_same, const StatusByAddress& status,
                                          const HeuristicParams& params,
                                          const ReservationFilter& reserved = nullptr);

// The individual fitness functions, exposed for tests/benches.
double EvalFitness(Bps capacity, Bps usage, double weight, FitnessModel model);
double EvalRx(const StatusReport& report, double weight,
              FitnessModel model = FitnessModel::kFairShare);
double EvalTx(const StatusReport& report, double weight,
              FitnessModel model = FitnessModel::kFairShare);
double EvalDiskRead(const StatusReport& report, double weight,
                    FitnessModel model = FitnessModel::kFairShare);
double EvalDiskWrite(const StatusReport& report, double weight,
                     FitnessModel model = FitnessModel::kFairShare);

inline constexpr double kMaxScore = 1e18;

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_HEURISTIC_H_
