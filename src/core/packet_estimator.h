// Packet-level query evaluation (paper Section 4/5.4).
//
// "CloudTalk offers two options to its clients: a packet level simulator and
// a flow level estimator. The first is very accurate and captures
// packet-level effects such as incast ..." — web-search placement uses it
// with static information, simulating the desired flows in an idle network.
//
// Given a bound query, the estimator replays the flows on a PacketNetwork
// built over a full topology (e.g. the 1200-server VL2 mirroring EC2).
// Transfer references become store-and-forward dependencies: a flow with
// `transfer t(f)` starts when f completes, which is how a scatter-gather
// aggregator behaves.
#ifndef CLOUDTALK_SRC_CORE_PACKET_ESTIMATOR_H_
#define CLOUDTALK_SRC_CORE_PACKET_ESTIMATOR_H_

#include "src/core/directory.h"
#include "src/core/estimator.h"
#include "src/packetsim/network.h"
#include "src/topology/topology.h"

namespace cloudtalk {

class PacketLevelEstimator : public CompletionEstimator {
 public:
  // `topo` is the fabric to simulate on; `directory` maps query addresses
  // to its hosts. Both must outlive the estimator.
  PacketLevelEstimator(const Topology* topo, const Directory* directory,
                       packetsim::NetworkParams params = {})
      : topo_(topo), directory_(directory), params_(params) {}

  // Note: the packet simulator models the network only; the status snapshot
  // is ignored (the paper evaluates placements "in an idle network").
  Result<Estimate> EstimateQuery(const lang::CompiledQuery& query, const Binding& binding,
                                 const StatusByAddress& status) override;

  // Stateless per call (topology/directory are shared read-only), so a copy
  // is an independent per-worker estimator.
  std::unique_ptr<CompletionEstimator> CloneForThread() const override {
    return std::make_unique<PacketLevelEstimator>(*this);
  }

 private:
  const Topology* topo_;
  const Directory* directory_;
  packetsim::NetworkParams params_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_PACKET_ESTIMATOR_H_
