// Sharded CloudTalk deployment (ISSUE 10; ROADMAP item 1, "scale to
// millions of users"): the host fleet is partitioned into status/placement
// shards, each owning probing and reservation state for its hosts, behind a
// query-routing front end that answers byte-identically to the single
// CloudTalkServer (the D505 differential contract, fuzzed by
// `ctcheck --diff-shard`).
//
// The division of labour per query:
//
//   ShardedServer (front end)          StatusShard (× N)
//   ---------------------------------  --------------------------------
//   parse / lint / canon once          —
//   compile + scope once               —
//   N-slot admission (AdmissionGate)   —
//   sample centrally (one RNG stream)  —
//   `aggregate`: split probe targets → probe own hosts, roll status up
//   bound check on merged status       —
//   exhaustive: engine slice per shard → walk slice_index ≡ shard (mod N)
//     merge by (makespan, winner_rank)
//   heuristic on merged status         → IsReserved for own hosts
//   two-phase reserve                  → Prepare / Commit / Abort leases
//
// Hierarchical probe aggregation reuses the PR 9 scope footprint: the front
// end assembles the footprint-filtered target set once, and each shard only
// ever probes the targets it owns — the fan-in at any aggregation point is
// a fraction of the fleet. Invariants: I410 (every probe target and every
// reservation routes to exactly one owning shard), I412 (the rolled-up
// status is a partition merge: one report per answering target, none
// invented), I411 (commit/abort must match an outstanding lease; in
// src/core/reservations.h).
#ifndef CLOUDTALK_SRC_CORE_SHARD_H_
#define CLOUDTALK_SRC_CORE_SHARD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/core/admission.h"
#include "src/core/directory.h"
#include "src/core/estimator.h"
#include "src/core/reservations.h"
#include "src/core/server.h"
#include "src/obs/trace.h"
#include "src/status/transport.h"

namespace cloudtalk {

// Deterministic host → shard partition: node n belongs to shard n mod N.
// Pure arithmetic on the directory's NodeId, so the front end and every
// shard agree on ownership without coordination.
class ShardMap {
 public:
  explicit ShardMap(int shards) : shards_(shards < 1 ? 1 : shards) {}

  int shards() const { return shards_; }
  int ShardOf(NodeId node) const { return static_cast<int>(node % shards_); }

 private:
  int shards_;
};

// One status/placement shard: probes the hosts it owns (through the shared
// transport) and arbitrates reservations for them (two-phase leases over
// its own ReservationTable). The `unresponsive` flag is the fault-injection
// hook for the I41x tests: an unresponsive shard answers no probe (its
// targets time out) and no prepare (the front end aborts the two-phase
// reserve).
class StatusShard {
 public:
  StatusShard(int index, ProbeTransport* transport, Seconds reservation_hold)
      : index_(index), transport_(transport), reservations_(reservation_hold) {}

  int index() const { return index_; }
  ReservationTable& reservations() { return reservations_; }
  const ReservationTable& reservations() const { return reservations_; }

  // Scatter-gathers status for this shard's slice of the query footprint.
  ProbeOutcome Probe(const std::vector<NodeId>& targets, Seconds timeout);

  // Phase one of a cross-shard reserve. Returns the lease id, or 0 when the
  // shard never answers (the two-phase reserve then aborts; M118).
  uint64_t Prepare(const std::string& address, Seconds now, Seconds lease_time);

  void set_unresponsive(bool value) { unresponsive_.store(value); }
  bool unresponsive() const { return unresponsive_.load(); }

 private:
  int index_;
  ProbeTransport* transport_;
  ReservationTable reservations_;
  std::atomic<bool> unresponsive_{false};
};

// Hierarchical probe aggregation as a ProbeTransport: splits each probe's
// target list across the owning shards (I410), lets every shard
// scatter-gather its own slice, and rolls the partial reports up into one
// outcome (I412). Plugging this into the shared GatherStatusOver stage
// makes the sharded status plane byte-identical to the flat one — same
// targets, same reports, same stats — while bounding any single
// aggregation point's fan-in to the shard's host count.
class ShardRouter : public ProbeTransport {
 public:
  // Borrows the map and the shards; both must outlive the router.
  ShardRouter(const ShardMap* map, std::vector<StatusShard*> shards)
      : map_(map), shards_(std::move(shards)) {}

  ProbeOutcome Probe(const std::vector<NodeId>& targets, Seconds timeout) override;

  // Per-shard summary of the calling thread's most recent Probe (the front
  // end renders these as `aggregate.shard` trace events). Thread-local so
  // concurrently admitted queries do not interleave.
  struct Batch {
    int shard = 0;
    int fanout = 0;
    int replies = 0;
  };
  static const std::vector<Batch>& LastBatches();

 private:
  const ShardMap* map_;
  std::vector<StatusShard*> shards_;
};

struct ShardedConfig {
  // The per-query pipeline configuration, shared verbatim with the
  // single-server oracle (same seed ⇒ same sampling RNG stream).
  ServerConfig server;
  int shards = 4;
  // Two-phase reserve: how long a prepared-but-uncommitted lease holds its
  // endpoint before expiring on its own. Long enough to cover the
  // prepare→commit window, short enough that a crashed front end frees its
  // hosts quickly.
  Seconds prepare_lease = 50 * kMillisecond;
};

// The query-routing front end. Owns the language front end (parse / lint /
// canon / compile / scope), the N-slot admission gate, and central
// sampling; fans probing, search, and reservations out to the shards; and
// merges every partial result deterministically so the reply is
// byte-identical to `CloudTalkServer` over the same fleet (error strings
// included). Extra observability: a `route` span (admission + shard plan),
// an `aggregate` span wrapping the status roll-up with one
// `aggregate.shard` event per contacted shard, and metrics M114–M118.
class ShardedServer {
 public:
  // `directory` and `transport` must outlive the server; all shards probe
  // through the one `transport` (the simulated wire or real sockets).
  ShardedServer(ShardedConfig config, const Directory* directory, ProbeTransport* transport,
                std::function<Seconds()> clock,
                CompletionEstimator* packet_estimator = nullptr);

  // The full Answer pipeline, routed. Same contract as
  // CloudTalkServer::Answer (no answer cache: the sharded front end always
  // evaluates).
  Result<QueryReply> Answer(const std::string& query_text);

  int num_shards() const { return map_.shards(); }
  StatusShard& shard(int index) { return *shards_[index]; }
  const ShardedConfig& config() const { return config_; }
  const ShardMap& shard_map() const { return map_; }

  // Accumulated probe traffic across all shards (Section 5.5 accounting).
  ProbeStats total_probe_stats() const;

  // True when any shard holds a reservation or live lease on `address`
  // (test hook for the I410 no-double-reserve property).
  bool IsReservedAnywhere(const std::string& address, Seconds now) const;

 private:
  Result<QueryReply> AnswerTraced(const lang::Query& query, obs::TraceContext& trace);

  // The shard owning `address` per the directory + ShardMap. Unresolvable
  // addresses route to shard 0 so ownership stays total and deterministic.
  StatusShard& OwnerOf(const std::string& address);
  const StatusShard& OwnerOf(const std::string& address) const;

  ShardedConfig config_;
  const Directory* directory_;
  std::function<Seconds()> clock_;
  CompletionEstimator* packet_estimator_;
  FlowLevelEstimator flow_estimator_;
  ShardMap map_;
  std::vector<std::unique_ptr<StatusShard>> shards_;
  ShardRouter router_;
  AdmissionGate admission_;
  mutable std::mutex stats_mutex_;
  ProbeStats total_stats_;
  std::mutex rng_mutex_;
  Rng rng_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_SHARD_H_
