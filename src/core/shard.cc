#include "src/core/shard.h"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "src/check/check.h"
#include "src/core/heuristic.h"
#include "src/core/pipeline.h"
#include "src/lang/canon.h"
#include "src/lang/lint.h"
#include "src/lang/parser.h"
#include "src/obs/metrics.h"

namespace cloudtalk {

namespace {

thread_local std::vector<ShardRouter::Batch> tls_batches;

std::vector<std::unique_ptr<StatusShard>> MakeShards(const ShardedConfig& config,
                                                     ProbeTransport* transport) {
  const int n = config.shards < 1 ? 1 : config.shards;
  std::vector<std::unique_ptr<StatusShard>> shards;
  shards.reserve(n);
  for (int i = 0; i < n; ++i) {
    shards.push_back(
        std::make_unique<StatusShard>(i, transport, config.server.reservation_hold));
  }
  return shards;
}

std::vector<StatusShard*> RawShardPtrs(const std::vector<std::unique_ptr<StatusShard>>& owned) {
  std::vector<StatusShard*> raw;
  raw.reserve(owned.size());
  for (const auto& shard : owned) {
    raw.push_back(shard.get());
  }
  return raw;
}

}  // namespace

ProbeOutcome StatusShard::Probe(const std::vector<NodeId>& targets, Seconds timeout) {
  if (unresponsive_.load()) {
    // Fault injection: the shard's aggregator never answers, so every one of
    // its targets looks lost — exactly a probe where no reply arrived.
    ProbeOutcome lost;
    lost.stats.requests_sent = static_cast<int>(targets.size());
    lost.stats.bytes_sent = static_cast<int64_t>(targets.size()) * kProbeRequestBytes;
    lost.stats.timeouts = static_cast<int>(targets.size());
    return lost;
  }
  return transport_->Probe(targets, timeout);
}

uint64_t StatusShard::Prepare(const std::string& address, Seconds now, Seconds lease_time) {
  if (unresponsive_.load()) {
    return 0;
  }
  return reservations_.Prepare(address, now, lease_time);
}

ProbeOutcome ShardRouter::Probe(const std::vector<NodeId>& targets, Seconds timeout) {
  // Split the gather across owners. I410: ShardOf is a total function onto
  // [0, shards), so every target lands in exactly one slice.
  std::vector<std::vector<NodeId>> slices(shards_.size());
  for (const NodeId node : targets) {
    const int owner = map_->ShardOf(node);
    CT_INVARIANT(owner >= 0 && owner < static_cast<int>(shards_.size()), "I410",
                 "probe target routed outside the shard map")
        .With("node", node)
        .With("owner", owner);
    const size_t slot =
        owner >= 0 && owner < static_cast<int>(shards_.size()) ? static_cast<size_t>(owner) : 0;
    slices[slot].push_back(node);
  }

  tls_batches.clear();
  ProbeOutcome merged;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (slices[s].empty()) {
      continue;
    }
    ProbeOutcome part = shards_[s]->Probe(slices[s], timeout);
    CT_OBS_INC("M115");
    CT_OBS_OBSERVE("M116", static_cast<double>(slices[s].size()));
    Batch batch;
    batch.shard = static_cast<int>(s);
    batch.fanout = static_cast<int>(slices[s].size());
    batch.replies = part.stats.replies_received;
    tls_batches.push_back(batch);
    for (auto& [node, report] : part.reports) {
      merged.reports.emplace(node, std::move(report));
    }
    merged.stats.Accumulate(part.stats);
  }

  // I412: the roll-up is a partition merge — at most one report per target,
  // and never a host no slice probed.
  if (check::kInvariantsEnabled) {
    std::unordered_set<NodeId> target_set(targets.begin(), targets.end());
    CT_INVARIANT(merged.reports.size() <= target_set.size(), "I412",
                 "aggregated status holds more reports than probe targets")
        .With("reports", merged.reports.size())
        .With("targets", target_set.size());
    for (const auto& [node, report] : merged.reports) {
      (void)report;
      CT_INVARIANT(target_set.count(node) > 0, "I412",
                   "aggregated status reports a host outside the probe's target set")
          .With("node", node);
    }
  }
  return merged;
}

const std::vector<ShardRouter::Batch>& ShardRouter::LastBatches() { return tls_batches; }

ShardedServer::ShardedServer(ShardedConfig config, const Directory* directory,
                             ProbeTransport* transport, std::function<Seconds()> clock,
                             CompletionEstimator* packet_estimator)
    : config_(std::move(config)),
      directory_(directory),
      clock_(std::move(clock)),
      packet_estimator_(packet_estimator),
      map_(config_.shards),
      shards_(MakeShards(config_, transport)),
      router_(&map_, RawShardPtrs(shards_)),
      admission_(config_.server.admission_slots),
      rng_(config_.server.seed) {
  check::SetViolationPolicy(config_.server.invariant_policy);
}

StatusShard& ShardedServer::OwnerOf(const std::string& address) {
  const NodeId node = directory_->Resolve(address);
  // Unresolvable addresses deterministically route to shard 0: ownership is
  // total, so reservation lookups behave exactly like one flat table.
  const int owner = node == kInvalidNode ? 0 : map_.ShardOf(node);
  return *shards_[owner];
}

const StatusShard& ShardedServer::OwnerOf(const std::string& address) const {
  return const_cast<ShardedServer*>(this)->OwnerOf(address);
}

bool ShardedServer::IsReservedAnywhere(const std::string& address, Seconds now) const {
  for (const auto& shard : shards_) {
    if (shard->reservations().IsReserved(address, now)) {
      return true;
    }
  }
  return false;
}

ProbeStats ShardedServer::total_probe_stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return total_stats_;
}

Result<QueryReply> ShardedServer::Answer(const std::string& query_text) {
  CT_OBS_INC("M100");
  CT_OBS_INC("M114");
  obs::TraceContext trace("answer");
  lang::DiagnosticSink sink;
  const int parse_span = trace.OpenFollowing("parse");
  lang::Query query = lang::ParseWithDiagnostics(query_text, &sink);
  trace.Attr(parse_span, "bytes", static_cast<int64_t>(query_text.size()));
  const int lint_span = trace.Transition(parse_span, "lint");
  lang::RunLint(query, &sink);
  trace.Attr(lint_span, "diagnostics", static_cast<int64_t>(sink.diagnostics().size()));
  trace.Close(lint_span);
  if (sink.has_errors()) {
    CT_OBS_INC("M101");
    return sink.ToLegacyError();
  }

  // Canonicalize once, at the front end (compile/scope below are also
  // computed once and shared by every shard). The sharded front end carries
  // no answer cache, so the canon span always reports cache=off; the hash
  // still identifies the query across deployments.
  const int canon_span = trace.OpenFollowing("canon");
  const Result<lang::CanonicalQuery> canon = lang::Canonicalize(query);
  if (canon.ok()) {
    char hash_text[17];
    std::snprintf(hash_text, sizeof(hash_text), "%016llx",
                  static_cast<unsigned long long>(canon.value().hash));
    trace.Attr(canon_span, "hash", hash_text);
  }
  trace.Attr(canon_span, "cache", "off");
  trace.Close(canon_span);

  Result<QueryReply> reply = AnswerTraced(query, trace);
  if (!reply.ok()) {
    CT_OBS_INC("M101");
    return reply;
  }
  if (!sink.empty()) {
    reply.value().warnings = sink.diagnostics();
  }
  reply.value().trace = trace.Finish();
  if (!reply.value().trace.empty()) {
    CT_OBS_OBSERVE("M102", reply.value().trace.spans[0].duration);
  }
  return reply;
}

Result<QueryReply> ShardedServer::AnswerTraced(const lang::Query& query,
                                               obs::TraceContext& trace) {
  const int compile_span = trace.OpenFollowing("compile");
  Result<lang::CompiledQuery> compiled = lang::CompiledQuery::Compile(query);
  trace.Close(compile_span);
  if (!compiled.ok()) {
    return compiled.error();
  }

  const lang::ScopeAnalysis scope = lang::AnalyzeScope(compiled.value());
  {
    const int scope_span = trace.OpenFollowing("scope");
    trace.Attr(scope_span, "footprint", static_cast<int64_t>(scope.footprint.size()));
    trace.Attr(scope_span, "excluded", static_cast<int64_t>(scope.excluded.size()));
    trace.Attr(scope_span, "effects", lang::EffectsName(scope.effects));
    trace.Close(scope_span);
  }

  // The routing decision: which shards will see this query, and admission
  // through the N-slot gate. The span's duration is dominated by any
  // admission wait, which is exactly the number a sharded deployment wants
  // on a dashboard.
  const int route_span = trace.OpenFollowing("route");
  trace.Attr(route_span, "shards", static_cast<int64_t>(num_shards()));
  trace.Attr(route_span, "slots", static_cast<int64_t>(admission_.slots()));
  const uint64_t admission_ticket =
      config_.server.reservation_hold > 0 ? admission_.Admit(scope) : 0;
  trace.Attr(route_span, "admitted", static_cast<int64_t>(admission_ticket != 0 ? 1 : 0));
  trace.Close(route_span);
  struct AdmissionGuard {
    AdmissionGate* gate;
    uint64_t ticket;
    ~AdmissionGuard() {
      if (ticket != 0) {
        gate->Release(ticket);
      }
    }
  } admission_guard{&admission_, admission_ticket};

  QueryReply reply;
  StatusByAddress status;
  std::vector<lang::VarComm> variables = compiled.value().variables();
  const lang::ScopeAnalysis* probe_scope = config_.server.scope_probe_pruning ? &scope : nullptr;
  {
    // Hierarchical aggregation: the shared gather stage scatter-gathers
    // through the ShardRouter, which probes each owning shard separately
    // and rolls the reports up. One aggregate.shard event per contacted
    // shard; the sample/probe spans inside keep their single-server shape.
    const int aggregate_span = trace.OpenFollowing("aggregate");
    if (query.options.use_dynamic_load) {
      status = GatherStatusOver(config_.server, *directory_, router_, rng_, rng_mutex_,
                                compiled.value(), probe_scope, &variables, &reply.probe_stats,
                                trace);
      for (const ShardRouter::Batch& batch : ShardRouter::LastBatches()) {
        const std::string shard_text = std::to_string(batch.shard);
        const std::string fanout_text = std::to_string(batch.fanout);
        const std::string replies_text = std::to_string(batch.replies);
        trace.Event("aggregate.shard", {{"shard", shard_text},
                                        {"fanout", fanout_text},
                                        {"replies", replies_text}});
      }
      trace.Attr(aggregate_span, "batches",
                 static_cast<int64_t>(ShardRouter::LastBatches().size()));
      std::lock_guard<std::mutex> lock(stats_mutex_);
      total_stats_.Accumulate(reply.probe_stats);
    } else {
      status = SynthesizeStaticStatus(*directory_, variables, probe_scope, trace);
      trace.Attr(aggregate_span, "batches", static_cast<int64_t>(0));
      trace.Attr(aggregate_span, "mode", "static");
    }
    trace.Close(aggregate_span);
  }

  CompletionEstimator* bound_model = query.options.use_packet_simulator
                                         ? packet_estimator_
                                         : static_cast<CompletionEstimator*>(&flow_estimator_);
  const double bound_fraction =
      bound_model != nullptr ? bound_model->BoundAvailabilityFraction() : -1;
  {
    Error bound_error;
    if (!CheckAdmissionBound(config_.server, compiled.value(), status, bound_fraction, trace,
                             &bound_error)) {
      return bound_error;
    }
  }

  if (query.options.use_packet_simulator) {
    if (packet_estimator_ == nullptr) {
      return Error{"query requests packet-level evaluation, but no packet estimator is wired"};
    }
    // Search fan-out: engine slice s walks first-variable candidates
    // ≡ s (mod shards); the merge keeps the lowest (makespan, winner_rank),
    // which is the unsliced winner byte for byte.
    Result<ExhaustiveResult> best =
        RunExhaustiveSliced(config_.server, query, compiled.value(), status, *packet_estimator_,
                            bound_fraction, num_shards(), trace);
    if (!best.ok()) {
      return best.error();
    }
    reply.binding = best.value().binding;
    reply.estimate = best.value().estimate;
    reply.used_exhaustive = true;
    reply.counters = best.value().counters;
    obs::TraceContext::Scoped reserve_span(&trace, "reserve");
    trace.Attr(reserve_span.id(), "reserved", static_cast<int64_t>(0));
    return reply;
  }

  // Heuristic path, on the merged status. The reservation filter consults
  // each address's owning shard — the per-shard tables partition the flat
  // table by owner (I410), so the union the filter sees is identical to the
  // single server's.
  const Seconds now = clock_();
  ReservationFilter filter = nullptr;
  if (config_.server.reservation_hold > 0) {
    filter = [this, now](const std::string& address) {
      return OwnerOf(address).reservations().IsReserved(address, now);
    };
  }
  const int bind_span = trace.OpenFollowing("bind");
  trace.Attr(bind_span, "mode", "heuristic");
  Result<HeuristicResult> heuristic = EvaluateHeuristic(
      variables, query.options.allow_same_binding, status, config_.server.heuristic, filter);
  if (!heuristic.ok()) {
    trace.Close(bind_span);
    return heuristic.error();
  }
  reply.binding = std::move(heuristic.value().binding);
  reply.scores = std::move(heuristic.value().scores);
  trace.Attr(bind_span, "bound", static_cast<int64_t>(reply.binding.size()));
  const int reserve_span = trace.Transition(bind_span, "reserve");
  int64_t reserved = 0;
  if (query.options.reserve) {
    // Two-phase cross-shard reserve. Phase 1 leases every bound endpoint
    // from its owning shard; Prepare never blocks, so ordering is free of
    // deadlock. Phase 2 commits them all with ONE shared timestamp — the
    // resulting expiries match a single-table Reserve at `reserve_now`
    // exactly. Any shard that fails to answer aborts the whole set: the
    // binding is still returned (reservations are best-effort, paper
    // Section 5.5) but no host stays half-held.
    const Seconds reserve_now = clock_();
    struct Pending {
      StatusShard* shard = nullptr;
      uint64_t lease = 0;
    };
    std::vector<Pending> pending;
    pending.reserve(reply.binding.size());
    bool aborted = false;
    for (const auto& [var, endpoint] : reply.binding) {
      (void)var;
      StatusShard& owner = OwnerOf(endpoint.name);
      CT_OBS_INC("M117");
      const uint64_t lease = owner.Prepare(endpoint.name, reserve_now, config_.prepare_lease);
      if (lease == 0) {
        aborted = true;
        break;
      }
      pending.push_back(Pending{&owner, lease});
    }
    if (aborted) {
      for (const Pending& p : pending) {
        p.shard->reservations().Abort(p.lease);
      }
      CT_OBS_INC("M118");
      trace.Attr(reserve_span, "aborted", static_cast<int64_t>(1));
    } else {
      for (const Pending& p : pending) {
        if (p.shard->reservations().Commit(p.lease, reserve_now)) {
          ++reserved;
        }
      }
      CT_OBS_ADD("M104", reserved);
    }
  }
  trace.Attr(reserve_span, "reserved", reserved);
  trace.Close(reserve_span);
  return reply;
}

}  // namespace cloudtalk
