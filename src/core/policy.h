// Provider-side traffic policy (paper Section 2, "at the other end of the
// cloud API").
//
// "Providers have few options to optimise their infrastructure without
// tenant support ... If cloud providers knew which flows are elephants and
// would benefit from redirection, they could deploy optimised stacks in the
// hypervisor and proxy the traffic" and "the provider could enable PFC ...
// [which] cannot be enabled for all tenants, though, because it reduces
// throughput for elephant flows."
//
// CloudTalk queries describe the tenant's traffic, so the provider can
// classify it and turn the right knobs per tenant: PFC for incast-prone
// scatter-gather, multipath striping for elephants, nothing for mixed
// traffic.
#ifndef CLOUDTALK_SRC_CORE_POLICY_H_
#define CLOUDTALK_SRC_CORE_POLICY_H_

#include "src/lang/analysis.h"

namespace cloudtalk {

enum class TrafficClass {
  kScatterGather,  // Many small flows converging on few receivers.
  kElephant,       // Few large flows.
  kMixed,          // Anything else: leave the defaults alone.
};

struct TransportPolicy {
  TrafficClass traffic_class = TrafficClass::kMixed;
  bool enable_pfc = false;
  int multipath_subflows = 1;
};

struct PolicyThresholds {
  int scatter_gather_min_fan_in = 8;          // Flows converging on one receiver.
  Bytes scatter_gather_max_flow = 256 * kKB;  // "Short" flow bound.
  Bytes elephant_min_flow = 10 * kMB;         // "Long" flow bound.
  int elephant_max_flows = 8;
  int multipath_subflows = 4;
};

// Classifies the network flows of a compiled query and picks the transport
// features the provider should enable for this tenant's traffic.
TransportPolicy ClassifyQuery(const lang::CompiledQuery& query,
                              const PolicyThresholds& thresholds = {});

const char* TrafficClassName(TrafficClass traffic_class);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_POLICY_H_
