// Completion-time estimators (paper Section 4): given a fully bound query
// and a status snapshot, predict how long the described task takes.
//
//  * FlowLevelEstimator "arithmetically allocates a rate to each flow using
//    the assumption that bottleneck links are shared equally" — implemented
//    by running the query's chain groups through a small FluidSimulation
//    whose only contended resources are the endpoints' NICs and disks (the
//    paper's full-bisection assumption: the core never bottlenecks).
//  * A packet-level estimator (PacketLevelEstimator, src/core/
//    packet_estimator.h) plugs in behind the same interface for
//    incast-sensitive queries such as web search.
#ifndef CLOUDTALK_SRC_CORE_ESTIMATOR_H_
#define CLOUDTALK_SRC_CORE_ESTIMATOR_H_

#include <string>
#include <unordered_map>

#include "src/common/result.h"
#include "src/common/units.h"
#include "src/lang/analysis.h"
#include "src/status/status.h"

namespace cloudtalk {

// var name -> concrete endpoint (address or disk).
using Binding = std::unordered_map<std::string, lang::Endpoint>;

// Status snapshot keyed by address string (as written in the query).
using StatusByAddress = std::unordered_map<std::string, StatusReport>;

struct Estimate {
  Seconds makespan = 0;           // When the last flow finishes.
  Bps aggregate_throughput = 0;   // Total bytes * 8 / makespan.
};

class CompletionEstimator {
 public:
  virtual ~CompletionEstimator() = default;
  virtual Result<Estimate> EstimateQuery(const lang::CompiledQuery& query, const Binding& binding,
                                    const StatusByAddress& status) = 0;
};

class FlowLevelEstimator : public CompletionEstimator {
 public:
  // `min_available_fraction` as in FluidSimulation: elastic flows always get
  // at least this fraction of a busy resource.
  explicit FlowLevelEstimator(double min_available_fraction = 0.1)
      : min_available_fraction_(min_available_fraction) {}

  Result<cloudtalk::Estimate> EstimateQuery(const lang::CompiledQuery& query, const Binding& binding,
                                       const StatusByAddress& status) override;

 private:
  double min_available_fraction_;
};

// Substitutes variables in `endpoint` according to `binding`. Returns the
// endpoint unchanged for addresses/disk/unknown; fails (returns nullopt) for
// an unbound variable.
std::optional<lang::Endpoint> ResolveEndpoint(const lang::Endpoint& endpoint,
                                              const Binding& binding);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_ESTIMATOR_H_
