// Completion-time estimators (paper Section 4): given a fully bound query
// and a status snapshot, predict how long the described task takes.
//
//  * FlowLevelEstimator "arithmetically allocates a rate to each flow using
//    the assumption that bottleneck links are shared equally" — implemented
//    by running the query's chain groups through a small FluidSimulation
//    whose only contended resources are the endpoints' NICs and disks (the
//    paper's full-bisection assumption: the core never bottlenecks).
//  * A packet-level estimator (PacketLevelEstimator, src/core/
//    packet_estimator.h) plugs in behind the same interface for
//    incast-sensitive queries such as web search.
//
// Hot-path contract (ISSUE 1): an exhaustive evaluation calls EstimateQuery
// once per binding — thousands to millions of times per query. Estimators
// therefore support a prepared-scratch protocol:
//
//   estimator.BeginQuery(query, status);     // intern hosts, build buffers
//   for (each binding) estimator.EstimateQuery(query, binding, status);
//   estimator.EndQuery();
//
// Between BeginQuery and EndQuery the estimator may reuse per-query state
// (star topology, FluidSimulation buffers) instead of reconstructing it per
// binding. EstimateQuery called without (or outside) a matching BeginQuery
// must still work and must not mutate shared state — CloudTalkServer calls
// it concurrently from Quote(). CloneForThread() hands the parallel engine
// an independent estimator per worker.
#ifndef CLOUDTALK_SRC_CORE_ESTIMATOR_H_
#define CLOUDTALK_SRC_CORE_ESTIMATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/units.h"
#include "src/lang/analysis.h"
#include "src/status/status.h"

namespace cloudtalk {

// var name -> concrete endpoint (address or disk).
using Binding = std::unordered_map<std::string, lang::Endpoint>;

// Status snapshot keyed by address string (as written in the query).
using StatusByAddress = std::unordered_map<std::string, StatusReport>;

struct Estimate {
  Seconds makespan = 0;           // When the last flow finishes.
  Bps aggregate_throughput = 0;   // Total bytes * 8 / makespan.
};

class CompletionEstimator {
 public:
  virtual ~CompletionEstimator() = default;
  virtual Result<Estimate> EstimateQuery(const lang::CompiledQuery& query, const Binding& binding,
                                    const StatusByAddress& status) = 0;

  // Prepared-scratch protocol (see file comment). Default: no-op — a
  // stateless estimator ignores it. `query` and `status` must outlive the
  // matching EndQuery().
  virtual void BeginQuery(const lang::CompiledQuery& query, const StatusByAddress& status) {
    (void)query;
    (void)status;
  }
  virtual void EndQuery() {}

  // An independent estimator for a parallel worker, or nullptr when the
  // estimator cannot be replicated (the evaluation then stays serial).
  virtual std::unique_ptr<CompletionEstimator> CloneForThread() const { return nullptr; }

  // True when the estimate depends only on the multiset of (src, dst, size)
  // transfers per chain group — i.e., it is invariant under permuting flows
  // within a group. Gates the exhaustive engine's signature memo-cache.
  // False by default: e.g. the packet simulator's transfer references tie
  // behaviour to specific flow indices.
  virtual bool EstimatesArePermutationInvariant() const { return false; }
};

class FlowLevelEstimator : public CompletionEstimator {
 public:
  // `min_available_fraction` as in FluidSimulation: elastic flows always get
  // at least this fraction of a busy resource. `reuse_scratch` enables the
  // per-query prepared scratch (BeginQuery); disabling it reproduces the
  // original build-everything-per-binding behaviour (benchmark baseline).
  explicit FlowLevelEstimator(double min_available_fraction = 0.1, bool reuse_scratch = true);
  ~FlowLevelEstimator() override;

  Result<cloudtalk::Estimate> EstimateQuery(const lang::CompiledQuery& query, const Binding& binding,
                                       const StatusByAddress& status) override;

  void BeginQuery(const lang::CompiledQuery& query, const StatusByAddress& status) override;
  void EndQuery() override;
  std::unique_ptr<CompletionEstimator> CloneForThread() const override;
  // The fluid model folds a chain group into one shared rate; flow order
  // within a group cannot matter.
  bool EstimatesArePermutationInvariant() const override { return true; }

  bool scratch_prepared() const { return scratch_ != nullptr; }

 private:
  struct Scratch;

  // The original one-shot path: builds a throwaway star topology per call.
  // Also the fallback whenever a binding refers to an address the scratch
  // has not interned (e.g. a direct EstimateQuery call with an out-of-pool
  // binding).
  Result<cloudtalk::Estimate> EstimateCold(const lang::CompiledQuery& query,
                                           const Binding& binding,
                                           const StatusByAddress& status) const;
  Result<cloudtalk::Estimate> EstimateWithScratch(const lang::CompiledQuery& query,
                                                  const Binding& binding);

  double min_available_fraction_;
  bool reuse_scratch_;
  std::unique_ptr<Scratch> scratch_;
};

// Substitutes variables in `endpoint` according to `binding`. Returns the
// endpoint unchanged for addresses/disk/unknown; fails (returns nullopt) for
// an unbound variable.
std::optional<lang::Endpoint> ResolveEndpoint(const lang::Endpoint& endpoint,
                                              const Binding& binding);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_ESTIMATOR_H_
