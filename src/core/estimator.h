// Completion-time estimators (paper Section 4): given a fully bound query
// and a status snapshot, predict how long the described task takes.
//
//  * FlowLevelEstimator "arithmetically allocates a rate to each flow using
//    the assumption that bottleneck links are shared equally" — implemented
//    by running the query's chain groups through a small FluidSimulation
//    whose only contended resources are the endpoints' NICs and disks (the
//    paper's full-bisection assumption: the core never bottlenecks).
//  * A packet-level estimator (PacketLevelEstimator, src/core/
//    packet_estimator.h) plugs in behind the same interface for
//    incast-sensitive queries such as web search.
//
// Hot-path contract (ISSUE 1): an exhaustive evaluation calls EstimateQuery
// once per binding — thousands to millions of times per query. Estimators
// therefore support a prepared-scratch protocol:
//
//   estimator.BeginQuery(query, status);     // intern hosts, build buffers
//   for (each binding) estimator.EstimateQuery(query, binding, status);
//   estimator.EndQuery();
//
// Between BeginQuery and EndQuery the estimator may reuse per-query state
// (star topology, FluidSimulation buffers) instead of reconstructing it per
// binding. EstimateQuery called without (or outside) a matching BeginQuery
// must still work and must not mutate shared state — CloudTalkServer calls
// it concurrently from Quote(). CloneForThread() hands the parallel engine
// an independent estimator per worker.
#ifndef CLOUDTALK_SRC_CORE_ESTIMATOR_H_
#define CLOUDTALK_SRC_CORE_ESTIMATOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/units.h"
#include "src/lang/analysis.h"
#include "src/status/status.h"

namespace cloudtalk {

// var name -> concrete endpoint (address or disk).
using Binding = std::unordered_map<std::string, lang::Endpoint>;

// Status snapshot keyed by address string (as written in the query).
using StatusByAddress = std::unordered_map<std::string, StatusReport>;

struct Estimate {
  Seconds makespan = 0;           // When the last flow finishes.
  Bps aggregate_throughput = 0;   // Total bytes * 8 / makespan.
};

// Per-query solver-cost accounting surfaced to the exhaustive engine
// (ISSUE 6). A "rebind" is one EstimateQuery served from prepared scratch:
// delta = checkpoint restore + in-place patch of the flows a changed
// variable touches; cold = full group re-install. Component counters come
// from the fluid solver's per-component delta cache.
struct SolverStats {
  int64_t delta_rebinds = 0;
  int64_t cold_rebinds = 0;
  int64_t solver_recomputes = 0;
  int64_t delta_component_hits = 0;
  int64_t cold_component_solves = 0;
};

class CompletionEstimator {
 public:
  virtual ~CompletionEstimator() = default;
  virtual Result<Estimate> EstimateQuery(const lang::CompiledQuery& query, const Binding& binding,
                                    const StatusByAddress& status) = 0;

  // Prepared-scratch protocol (see file comment). Default: no-op — a
  // stateless estimator ignores it. `query` and `status` must outlive the
  // matching EndQuery().
  virtual void BeginQuery(const lang::CompiledQuery& query, const StatusByAddress& status) {
    (void)query;
    (void)status;
  }
  virtual void EndQuery() {}

  // An independent estimator for a parallel worker, or nullptr when the
  // estimator cannot be replicated (the evaluation then stays serial).
  virtual std::unique_ptr<CompletionEstimator> CloneForThread() const { return nullptr; }

  // True when the estimate depends only on the multiset of (src, dst, size)
  // transfers per chain group — i.e., it is invariant under permuting flows
  // within a group. Gates the exhaustive engine's signature memo-cache.
  // False by default: e.g. the packet simulator's transfer references tie
  // behaviour to specific flow indices.
  virtual bool EstimatesArePermutationInvariant() const { return false; }

  // ---- Odometer delta hints (ISSUE 6) ----
  // The exhaustive engine announces its variable walk order once per query
  // (after BeginQuery), then before each EstimateQuery reports the lowest
  // walk depth whose binding may differ from the previous EstimateQuery on
  // this estimator; every shallower variable is guaranteed unchanged. The
  // hint is consumed by the next EstimateQuery. Both default to no-ops —
  // estimators that ignore them simply re-resolve every variable.
  virtual void BeginHintedWalk(const std::vector<std::string>& vars_in_walk_order) {
    (void)vars_in_walk_order;
  }
  virtual void HintChangedSuffix(size_t first_changed_depth) { (void)first_changed_depth; }

  // Drains the accumulated solver-cost counters (zeroing them). The engine
  // collects these after EndQuery, once per shard.
  virtual SolverStats TakeSolverStats() { return {}; }

  // ---- Sound bound model (ISSUE 7) ----
  // Availability fraction the estimator's rate allocation floors at (the f
  // in avail = max(cap * f, cap - background)), or a negative value when no
  // sound interval model of this estimator exists. A non-negative return
  // promises: for every binding, the makespan EstimateQuery reports lies in
  // the [LB, UB] interval lang::BoundAnalysis computes with this fraction
  // (ctcheck --diff-bound, invariant D502). Gates the engine's O500
  // branch-and-bound pruning and the server's admission fast path — both
  // stay off for estimators (e.g. the packet simulator) that return -1.
  virtual double BoundAvailabilityFraction() const { return -1; }
};

class FlowLevelEstimator : public CompletionEstimator {
 public:
  // `min_available_fraction` as in FluidSimulation: elastic flows always get
  // at least this fraction of a busy resource. `reuse_scratch` enables the
  // per-query prepared scratch (BeginQuery); disabling it reproduces the
  // original build-everything-per-binding behaviour (benchmark baseline).
  // `delta_rebind` additionally installs the query's groups once, checkpoints
  // the simulation, and serves every further binding by restore + in-place
  // resource patches instead of a full re-install; results are bitwise
  // identical (ctcheck --diff-sim fuzzes this claim).
  explicit FlowLevelEstimator(double min_available_fraction = 0.1, bool reuse_scratch = true,
                              bool delta_rebind = true);
  ~FlowLevelEstimator() override;

  Result<cloudtalk::Estimate> EstimateQuery(const lang::CompiledQuery& query, const Binding& binding,
                                       const StatusByAddress& status) override;

  void BeginQuery(const lang::CompiledQuery& query, const StatusByAddress& status) override;
  void EndQuery() override;
  std::unique_ptr<CompletionEstimator> CloneForThread() const override;
  // The fluid model folds a chain group into one shared rate; flow order
  // within a group cannot matter.
  bool EstimatesArePermutationInvariant() const override { return true; }

  void BeginHintedWalk(const std::vector<std::string>& vars_in_walk_order) override;
  void HintChangedSuffix(size_t first_changed_depth) override;
  SolverStats TakeSolverStats() override;
  // The fluid allocation floors every resource at min_available_fraction,
  // so BoundAnalysis built with the same fraction brackets every estimate.
  double BoundAvailabilityFraction() const override { return min_available_fraction_; }

  bool scratch_prepared() const { return scratch_ != nullptr; }

 private:
  struct Scratch;

  // The original one-shot path: builds a throwaway star topology per call.
  // Also the fallback whenever a binding refers to an address the scratch
  // has not interned (e.g. a direct EstimateQuery call with an out-of-pool
  // binding).
  Result<cloudtalk::Estimate> EstimateCold(const lang::CompiledQuery& query,
                                           const Binding& binding,
                                           const StatusByAddress& status) const;
  Result<cloudtalk::Estimate> EstimateWithScratch(const lang::CompiledQuery& query,
                                                  const Binding& binding);

  double min_available_fraction_;
  bool reuse_scratch_;
  bool delta_rebind_;
  std::unique_ptr<Scratch> scratch_;
  SolverStats stats_;
  // Hint state (see CompletionEstimator::HintChangedSuffix). slots_valid_
  // guards the skip: a variable's cached slot is only trusted if the
  // previous EstimateQuery resolved the full binding without a miss.
  bool hint_active_ = false;
  size_t hint_first_depth_ = 0;
  bool slots_valid_ = false;
};

// Substitutes variables in `endpoint` according to `binding`. Returns the
// endpoint unchanged for addresses/disk/unknown; fails (returns nullopt) for
// an unbound variable.
std::optional<lang::Endpoint> ResolveEndpoint(const lang::Endpoint& endpoint,
                                              const Binding& binding);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_ESTIMATOR_H_
