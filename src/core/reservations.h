// Pseudo-reservations (paper Section 5.5, "Preventing oscillatory
// behaviour"): after recommending an endpoint, the CloudTalk server treats
// it as in-use for a hold time t (300 ms in the Hadoop experiments) so that
// bursts of near-simultaneous queries do not all pile onto the same
// apparently-idle server before status feedback catches up.
//
// These are best-effort, not real reservations: if applications ignore the
// recommendation, behaviour degrades to random placement, exactly as the
// paper notes.
#ifndef CLOUDTALK_SRC_CORE_RESERVATIONS_H_
#define CLOUDTALK_SRC_CORE_RESERVATIONS_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/lock_registry.h"
#include "src/common/units.h"

namespace cloudtalk {

#if defined(CLOUDTALK_INVARIANTS) && CLOUDTALK_INVARIANTS
inline LockId ReservationLockId() {
  static const LockId id = LockRegistry::Instance().Register("core.reservations");
  return id;
}
#endif

class ReservationTable {
 public:
  explicit ReservationTable(Seconds hold_time) : hold_time_(hold_time) {}

  Seconds hold_time() const { return hold_time_; }

  // True if `address` was recommended less than hold_time ago.
  bool IsReserved(const std::string& address, Seconds now) const {
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    const auto it = expiry_.find(address);
    return it != expiry_.end() && it->second > now;
  }

  void Reserve(const std::string& address, Seconds now) {
    if (hold_time_ <= 0) {
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    expiry_[address] = now + hold_time_;
    MaybePruneLocked(now);
  }

  int ActiveCount(Seconds now) const {
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    int count = 0;
    for (const auto& [address, expiry] : expiry_) {
      (void)address;
      if (expiry > now) {
        ++count;
      }
    }
    return count;
  }

 private:
  void MaybePruneLocked(Seconds now) {
    if (expiry_.size() < 1024) {
      return;
    }
    for (auto it = expiry_.begin(); it != expiry_.end();) {
      it = it->second <= now ? expiry_.erase(it) : std::next(it);
    }
  }

  Seconds hold_time_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Seconds> expiry_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_RESERVATIONS_H_
