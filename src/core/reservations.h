// Pseudo-reservations (paper Section 5.5, "Preventing oscillatory
// behaviour"): after recommending an endpoint, the CloudTalk server treats
// it as in-use for a hold time t (300 ms in the Hadoop experiments) so that
// bursts of near-simultaneous queries do not all pile onto the same
// apparently-idle server before status feedback catches up.
//
// These are best-effort, not real reservations: if applications ignore the
// recommendation, behaviour degrades to random placement, exactly as the
// paper notes.
//
// Two-phase reserve (ISSUE 10): a sharded deployment splits reservation
// state across per-shard tables, so a binding that spans shards must either
// hold on every shard or on none. The front end first `Prepare`s a
// short-lived lease on each endpoint with its owning shard, and only once
// every shard has answered does it `Commit` the leases into real holds (all
// stamped with the same commit time, so the expiry matches a single-table
// `Reserve`). A shard that never answers lets the lease deadline pass and
// the endpoint frees itself — prepares can never wedge a host. `Abort`
// releases a lease early when a sibling shard failed to prepare.
#ifndef CLOUDTALK_SRC_CORE_RESERVATIONS_H_
#define CLOUDTALK_SRC_CORE_RESERVATIONS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/check/check.h"
#include "src/common/lock_registry.h"
#include "src/common/units.h"

namespace cloudtalk {

#if defined(CLOUDTALK_INVARIANTS) && CLOUDTALK_INVARIANTS
inline LockId ReservationLockId() {
  static const LockId id = LockRegistry::Instance().Register("core.reservations");
  return id;
}
#endif

class ReservationTable {
 public:
  explicit ReservationTable(Seconds hold_time) : hold_time_(hold_time) {}

  Seconds hold_time() const { return hold_time_; }

  // True if `address` was recommended less than hold_time ago, or is held
  // by an unexpired prepare lease awaiting commit.
  bool IsReserved(const std::string& address, Seconds now) const {
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    const auto it = expiry_.find(address);
    if (it != expiry_.end() && it->second > now) {
      return true;
    }
    for (const auto& [id, lease] : leases_) {
      (void)id;
      if (lease.deadline > now && lease.address == address) {
        return true;
      }
    }
    return false;
  }

  void Reserve(const std::string& address, Seconds now) {
    if (hold_time_ <= 0) {
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    expiry_[address] = now + hold_time_;
    MaybePruneLocked(now);
  }

  int ActiveCount(Seconds now) const {
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    int count = 0;
    for (const auto& [address, expiry] : expiry_) {
      (void)address;
      if (expiry > now) {
        ++count;
      }
    }
    return count;
  }

  // Phase one of a two-phase reserve: hold `address` under a lease that
  // expires on its own at `now + lease_time` unless committed or aborted
  // first. Returns the lease id (never 0, so callers can use 0 as "the
  // shard never answered").
  uint64_t Prepare(const std::string& address, Seconds now, Seconds lease_time) {
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    const uint64_t id = ++next_lease_;
    leases_[id] = Lease{address, now + lease_time};
    return id;
  }

  // Phase two: converts the lease into a regular hold expiring at
  // `now + hold_time`, exactly as if `Reserve` had been called at `now`.
  // Returns false when the lease had already expired (the two-phase
  // exchange took longer than the lease allowed — the host is NOT held).
  // A commit for a lease this table never issued (or already completed)
  // fires I411: the front end's bookkeeping and the shard's disagree.
  bool Commit(uint64_t lease_id, Seconds now) {
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    const auto it = leases_.find(lease_id);
    CT_INVARIANT(it != leases_.end(), "I411",
                 "two-phase commit does not match any outstanding lease")
        .With("lease", std::to_string(lease_id));
    if (it == leases_.end()) {
      return false;
    }
    const bool live = it->second.deadline > now;
    if (live && hold_time_ > 0) {
      expiry_[it->second.address] = now + hold_time_;
      MaybePruneLocked(now);
    }
    leases_.erase(it);
    return live;
  }

  // Releases a lease without reserving (a sibling shard failed to prepare,
  // so the whole binding aborts). Aborting an unknown lease fires I411.
  bool Abort(uint64_t lease_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    const auto it = leases_.find(lease_id);
    CT_INVARIANT(it != leases_.end(), "I411",
                 "two-phase abort does not match any outstanding lease")
        .With("lease", std::to_string(lease_id));
    if (it == leases_.end()) {
      return false;
    }
    leases_.erase(it);
    return true;
  }

  // Prepared-but-uncommitted leases still within their deadline.
  int PreparedCount(Seconds now) const {
    std::lock_guard<std::mutex> lock(mutex_);
    CT_LOCK_TRACE(ReservationLockId());
    int count = 0;
    for (const auto& [id, lease] : leases_) {
      (void)id;
      if (lease.deadline > now) {
        ++count;
      }
    }
    return count;
  }

 private:
  struct Lease {
    std::string address;
    Seconds deadline = 0;
  };

  void MaybePruneLocked(Seconds now) {
    if (expiry_.size() < 1024) {
      return;
    }
    for (auto it = expiry_.begin(); it != expiry_.end();) {
      it = it->second <= now ? expiry_.erase(it) : std::next(it);
    }
  }

  Seconds hold_time_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Seconds> expiry_;
  // Outstanding prepares. Never pruned by expiry: a lease leaves the map
  // only through Commit or Abort, so a commit arriving after the deadline
  // still finds its lease (and reports the timeout) while a commit for a
  // lease that never existed is distinguishable — that one fires I411.
  std::unordered_map<uint64_t, Lease> leases_;
  uint64_t next_lease_ = 0;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_RESERVATIONS_H_
