// Address directory: how the CloudTalk server maps the address strings that
// appear in queries ("10.0.3.7", "dataNode5") onto cluster hosts and their
// capacities. The harness implements this on top of a Topology plus a
// symbolic alias table; tests can use small fakes.
#ifndef CLOUDTALK_SRC_CORE_DIRECTORY_H_
#define CLOUDTALK_SRC_CORE_DIRECTORY_H_

#include <string>
#include <unordered_map>

#include "src/topology/topology.h"

namespace cloudtalk {

class Directory {
 public:
  virtual ~Directory() = default;
  // kInvalidNode when the address is unknown.
  virtual NodeId Resolve(const std::string& address) const = 0;
  virtual const HostCaps& CapsOf(NodeId host) const = 0;
  virtual std::string AddressOf(NodeId host) const = 0;
};

// Directory over a Topology's synthetic IPs plus optional aliases.
class TopologyDirectory : public Directory {
 public:
  explicit TopologyDirectory(const Topology* topo) : topo_(topo) {}

  void AddAlias(std::string alias, NodeId host) { aliases_[std::move(alias)] = host; }

  NodeId Resolve(const std::string& address) const override {
    const auto it = aliases_.find(address);
    if (it != aliases_.end()) {
      return it->second;
    }
    return topo_->HostByIp(address);
  }
  const HostCaps& CapsOf(NodeId host) const override { return topo_->host_caps(host); }
  std::string AddressOf(NodeId host) const override { return topo_->IpOf(host); }

 private:
  const Topology* topo_;
  std::unordered_map<std::string, NodeId> aliases_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_CORE_DIRECTORY_H_
