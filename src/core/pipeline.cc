#include "src/core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/common/lock_registry.h"
#include "src/lang/bound.h"
#include "src/obs/metrics.h"
#include "src/status/sampling.h"

namespace cloudtalk {

#if defined(CLOUDTALK_INVARIANTS) && CLOUDTALK_INVARIANTS
namespace {

LockId PipelineRngLockId() {
  static const LockId id = LockRegistry::Instance().Register("server.rng");
  return id;
}

}  // namespace
#endif

StatusByAddress GatherStatusOver(const ServerConfig& config, const Directory& directory,
                                 ProbeTransport& transport, Rng& rng, std::mutex& rng_mutex,
                                 const lang::CompiledQuery& compiled,
                                 const lang::ScopeAnalysis* scope,
                                 std::vector<lang::VarComm>* sampled_vars, ProbeStats* stats,
                                 obs::TraceContext& trace) {
  *sampled_vars = compiled.variables();

  const int sample_span = trace.OpenFollowing("sample");
  // Sampling (Section 4.3): shrink any pool larger than the threshold.
  // Variables sharing one declaration share one pool; the sample must cover
  // the d variables drawing from it, so size it with d = sharer count.
  std::unordered_map<std::string, std::vector<int>> pool_groups;
  for (size_t i = 0; i < sampled_vars->size(); ++i) {
    std::string key;
    for (const lang::Endpoint& e : (*sampled_vars)[i].pool) {
      key += e.ToString();
      key.push_back('|');
    }
    pool_groups[key].push_back(static_cast<int>(i));
  }
  int pools_sampled = 0;
  {
    std::lock_guard<std::mutex> rng_lock(rng_mutex);
    CT_LOCK_TRACE(PipelineRngLockId());
    for (auto& [key, members] : pool_groups) {
      (void)key;
      const std::vector<lang::Endpoint>& pool = (*sampled_vars)[members.front()].pool;
      const int pool_size = static_cast<int>(pool.size());
      if (pool_size <= config.sample_threshold) {
        continue;
      }
      const int d = static_cast<int>(members.size());
      int n = config.sample_override > 0
                  ? config.sample_override
                  : RequiredSamples(d, config.idle_fraction_hint, config.sample_confidence);
      n = std::min(n, pool_size);
      const std::vector<int> picks = rng.SampleWithoutReplacement(pool_size, n);
      std::vector<lang::Endpoint> sampled;
      sampled.reserve(picks.size());
      for (int p : picks) {
        sampled.push_back(pool[p]);
      }
      for (int member : members) {
        (*sampled_vars)[member].pool = sampled;
      }
      ++pools_sampled;
      CT_OBS_INC("M106");
    }
  }
  trace.Attr(sample_span, "pools", static_cast<int64_t>(pool_groups.size()));
  trace.Attr(sample_span, "sampled", static_cast<int64_t>(pools_sampled));
  // The probe span opens as sampling closes (one shared clock reading) and
  // covers address assembly, resolution, and the scatter-gather itself.
  const int probe_span = trace.Transition(sample_span, "probe");

  // Address set to probe: sampled pools plus literal flow endpoints, minus
  // the hosts the footprint analysis proves no evaluation engine reads
  // (ISSUE 9). Sampling above still ran over the full variable set so the
  // RNG stream is identical with pruning on or off.
  std::vector<std::string> addresses;
  std::unordered_set<std::string> seen;
  int64_t skipped = 0;
  auto add = [&](const lang::Endpoint& e) {
    if (e.kind != lang::Endpoint::Kind::kAddress || !seen.insert(e.name).second) {
      return;
    }
    if (scope != nullptr && !scope->InFootprint(e.name)) {
      ++skipped;
      return;
    }
    addresses.push_back(e.name);
  };
  for (const lang::VarComm& var : *sampled_vars) {
    for (const lang::Endpoint& e : var.pool) {
      add(e);
    }
  }
  for (const lang::CompiledFlow& flow : compiled.flows()) {
    add(flow.src);
    add(flow.dst);
  }

  // Resolve to hosts and probe.
  std::vector<NodeId> targets;
  std::unordered_map<NodeId, std::string> node_to_address;
  for (const std::string& address : addresses) {
    const NodeId node = directory.Resolve(address);
    if (node != kInvalidNode) {
      targets.push_back(node);
      node_to_address[node] = address;
    }
  }
  ProbeOutcome outcome = transport.Probe(targets, config.probe_timeout);
  stats->Accumulate(outcome.stats);
  CT_OBS_OBSERVE("M103", static_cast<double>(targets.size()));

  StatusByAddress status;
  int missing = 0;
  for (const NodeId node : targets) {
    const std::string& address = node_to_address[node];
    const auto it = outcome.reports.find(node);
    const bool replied = it != outcome.reports.end();
    // One child event per contacted host, in deterministic target order. The
    // scatter-gather itself is batched, so the children record fan-out and
    // per-host outcome rather than individual wall times. A replied host
    // carries just its address; a missing reply is flagged with replied=0.
    if (replied) {
      trace.Event("probe.host", {{"host", address}});
    } else {
      trace.Event("probe.host", {{"host", address}, {"replied", "0"}});
    }
    if (replied) {
      status[address] = it->second;
    } else if (config.assume_loaded_on_missing) {
      ++missing;
      // "If nothing is received from a status server, we assume that a
      // particular address is under heavy I/O load" (Section 4).
      status[address] = StatusReport::AssumeLoaded(node, directory.CapsOf(node));
    } else {
      ++missing;
      status[address] = StatusReport::Idle(node, directory.CapsOf(node));
    }
  }
  if (skipped > 0) {
    CT_OBS_ADD("M113", skipped);
  }
  trace.Attr(probe_span, "fanout", static_cast<int64_t>(targets.size()));
  trace.Attr(probe_span, "replies",
             static_cast<int64_t>(static_cast<int>(targets.size()) - missing));
  trace.Attr(probe_span, "missing", static_cast<int64_t>(missing));
  trace.Attr(probe_span, "skipped", skipped);
  trace.Close(probe_span);
  return status;
}

StatusByAddress SynthesizeStaticStatus(const Directory& directory,
                                       const std::vector<lang::VarComm>& variables,
                                       const lang::ScopeAnalysis* probe_scope,
                                       obs::TraceContext& trace) {
  // Static evaluation: endpoints idle at their nominal capacities. The
  // sample and probe spans still appear (every reply carries the full
  // phase skeleton), recording that both phases were no-ops. The
  // footprint filter applies here too: an inert variable's hosts get no
  // synthetic idle status, matching what the engines can read.
  StatusByAddress status;
  {
    obs::TraceContext::Scoped sample_span(&trace, "sample");
    trace.Attr(sample_span.id(), "mode", "static");
  }
  obs::TraceContext::Scoped probe_span(&trace, "probe");
  std::unordered_set<std::string> skipped_hosts;
  for (const lang::VarComm& var : variables) {
    for (const lang::Endpoint& e : var.pool) {
      if (e.kind != lang::Endpoint::Kind::kAddress) {
        continue;
      }
      if (probe_scope != nullptr && !probe_scope->InFootprint(e.name)) {
        skipped_hosts.insert(e.name);
        continue;
      }
      const NodeId node = directory.Resolve(e.name);
      if (node != kInvalidNode) {
        status[e.name] = StatusReport::Idle(node, directory.CapsOf(node));
      }
    }
  }
  const int64_t skipped = static_cast<int64_t>(skipped_hosts.size());
  if (skipped > 0) {
    CT_OBS_ADD("M113", skipped);
  }
  trace.Attr(probe_span.id(), "fanout", static_cast<int64_t>(0));
  trace.Attr(probe_span.id(), "mode", "static");
  trace.Attr(probe_span.id(), "skipped", skipped);
  return status;
}

bool CheckAdmissionBound(const ServerConfig& config, const lang::CompiledQuery& compiled,
                         const StatusByAddress& status, double bound_fraction,
                         obs::TraceContext& trace, Error* error) {
  const int bound_span = trace.OpenFollowing("bound");
  lang::BoundOptions bound_options;
  bound_options.min_available_fraction = bound_fraction >= 0 ? bound_fraction : 0.1;
  bound_options.distinct = config.heuristic.distinct_bindings;
  const lang::BoundAnalysis bounds = lang::BoundAnalysis::Build(compiled, status, bound_options);
  CT_OBS_INC("M108");
  trace.Attr(bound_span, "model", static_cast<int64_t>(bound_fraction >= 0 ? 1 : 0));
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", bounds.query_bounds().lb);
  trace.Attr(bound_span, "lb", buf);
  if (std::isfinite(bounds.query_bounds().ub)) {
    std::snprintf(buf, sizeof(buf), "%.6g", bounds.query_bounds().ub);
    trace.Attr(bound_span, "ub", buf);
  }
  if (bound_fraction >= 0) {
    for (const lang::GroupBound& gb : bounds.group_bounds()) {
      if (!gb.provably_infeasible) {
        continue;
      }
      const lang::CompiledGroup& group = compiled.groups()[gb.group];
      const std::string flow_name = group.flow_indices.empty()
                                        ? std::string("?")
                                        : compiled.flows()[group.flow_indices.front()].name;
      char lb_text[32], deadline_text[32];
      std::snprintf(lb_text, sizeof(lb_text), "%.6g", gb.interval.lb);
      std::snprintf(deadline_text, sizeof(deadline_text), "%.6g", gb.deadline);
      trace.Attr(bound_span, "infeasible_group", static_cast<int64_t>(gb.group));
      trace.Close(bound_span);
      CT_OBS_INC("M109");
      *error = Error{"no binding can meet the deadline: chain group of flow '" + flow_name +
                     "' needs at least " + lb_text + "s but must finish within " + deadline_text +
                     "s"};
      return false;
    }
  }
  trace.Close(bound_span);
  return true;
}

Result<ExhaustiveResult> RunExhaustiveSliced(const ServerConfig& config,
                                             const lang::Query& query,
                                             const lang::CompiledQuery& compiled,
                                             const StatusByAddress& status,
                                             CompletionEstimator& estimator,
                                             double bound_fraction, int slice_count,
                                             obs::TraceContext& trace) {
  CT_OBS_INC("M105");
  ExhaustiveParams params;
  params.distinct_bindings = config.heuristic.distinct_bindings;
  params.threads =
      query.options.eval_threads > 0 ? query.options.eval_threads : config.eval_threads;
  params.optimize = query.options.optimize != 0 ? query.options.optimize > 0 : config.optimize;
  // Compute the static plan here (instead of inside the engine) so the
  // bind span can report per-pass wall time and pruning attribution
  // (PassStat) — and so every slice consumes the SAME plan: rank weights,
  // orbit representatives, and domain pruning must agree across slices for
  // the (makespan, winner_rank) merge to reproduce the unsliced walk.
  lang::PrunedSpace plan;
  if (params.optimize) {
    lang::OptimizeParams opt_params;
    opt_params.distinct = params.distinct_bindings && !query.options.allow_same_binding;
    opt_params.bound_fraction = bound_fraction >= 0 ? bound_fraction : 0.1;
    plan = lang::Optimize(compiled, status, opt_params);
    params.plan = &plan;
  }
  const int bind_span = trace.OpenFollowing("bind");
  trace.Attr(bind_span, "mode", "exhaustive");

  slice_count = std::max(1, slice_count);
  params.slice_count = slice_count;
  std::optional<ExhaustiveResult> best;
  std::optional<Error> first_error;
  for (int slice = 0; slice < slice_count; ++slice) {
    params.slice_index = slice;
    Result<ExhaustiveResult> result = EvaluateExhaustive(compiled, status, estimator, params);
    if (!result.ok()) {
      // Lowest-slice error wins (mirrors the engine's own first-worker
      // error merge); an empty slice's kNoLegalBinding is outvoted by any
      // slice that found a binding.
      if (!first_error.has_value()) {
        first_error = result.error();
      }
      continue;
    }
    if (!best.has_value()) {
      best = std::move(result.value());
      continue;
    }
    ExhaustiveResult& merged = *best;
    const ExhaustiveResult& r = result.value();
    // Walk counters accumulate; plan-derived ones (bindings_pruned,
    // components) describe the shared plan and are kept from the first
    // slice. threads_used sums to the total worker count across slices.
    merged.counters.evaluations += r.counters.evaluations;
    merged.counters.memo_hits += r.counters.memo_hits;
    merged.counters.enumerated += r.counters.enumerated;
    merged.counters.orbit_skips += r.counters.orbit_skips;
    merged.counters.bound_prunes += r.counters.bound_prunes;
    merged.counters.threads_used += r.counters.threads_used;
    merged.counters.delta_rebinds += r.counters.delta_rebinds;
    merged.counters.cold_rebinds += r.counters.cold_rebinds;
    merged.counters.solver_recomputes += r.counters.solver_recomputes;
    merged.counters.delta_component_hits += r.counters.delta_component_hits;
    merged.counters.cold_component_solves += r.counters.cold_component_solves;
    if (r.estimate.makespan < merged.estimate.makespan ||
        (r.estimate.makespan == merged.estimate.makespan &&
         r.winner_rank < merged.winner_rank)) {
      merged.binding = r.binding;
      merged.estimate = r.estimate;
      merged.winner_rank = r.winner_rank;
    }
  }
  if (!best.has_value()) {
    trace.Close(bind_span);
    if (first_error.has_value()) {
      return *first_error;
    }
    return Error{"no legal binding exists (distinctness or requirements unsatisfiable?)"};
  }
  const SearchCounters& c = best->counters;
  trace.Attr(bind_span, "evaluations", c.evaluations);
  trace.Attr(bind_span, "memo_hits", c.memo_hits);
  trace.Attr(bind_span, "enumerated", c.enumerated);
  trace.Attr(bind_span, "pruned", c.bindings_pruned);
  trace.Attr(bind_span, "orbit_skips", c.orbit_skips);
  trace.Attr(bind_span, "bound_prunes", c.bound_prunes);
  trace.Attr(bind_span, "threads", static_cast<int64_t>(c.threads_used));
  trace.Attr(bind_span, "delta_rebinds", c.delta_rebinds);
  trace.Attr(bind_span, "cold_rebinds", c.cold_rebinds);
  trace.Attr(bind_span, "solver_recomputes", c.solver_recomputes);
  // Per-pass attribution (exhaustive-only attrs: wall times vary run to
  // run, and the stable-trace snapshots only pin the heuristic path).
  if (params.plan != nullptr) {
    for (const lang::PassStat& ps : params.plan->pass_stats) {
      trace.Attr(bind_span, std::string("opt.") + ps.code + ".seconds", ps.wall_seconds);
      trace.Attr(bind_span, std::string("opt.") + ps.code + ".pruned", ps.pruned_bindings);
    }
  }
  trace.Close(bind_span);
  return *best;
}

}  // namespace cloudtalk
