#include "src/core/heuristic.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace cloudtalk {

namespace {

using lang::Endpoint;
using lang::VarComm;

// When a host never answered its probe the snapshot has no entry; the
// CloudTalk server substitutes AssumeLoaded reports before calling the
// heuristic, so a missing address here means "no information at all" —
// score it as fully loaded with unit capacity, i.e. below every known host.
double EvalOrWorst(const StatusByAddress& status, const std::string& address,
                   double (*eval)(const StatusReport&, double, FitnessModel),
                   const HeuristicParams& params) {
  const auto it = status.find(address);
  if (it == status.end()) {
    StatusReport unknown;
    unknown.nic_tx_cap = unknown.nic_rx_cap = 1;
    unknown.nic_tx_use = unknown.nic_rx_use = 1;
    unknown.disk_read_cap = unknown.disk_write_cap = 1;
    unknown.disk_read_use = unknown.disk_write_use = 1;
    return eval(unknown, params.weight, params.fitness);
  }
  return eval(it->second, params.weight, params.fitness);
}

// True when `var` communicates with exactly one network endpoint overall and
// that endpoint is the literal address `candidate` (Listing 1 lines 8/9/27:
// binding the variable to its only peer turns the transfer into a loopback).
bool SingleLocalEndpoint(const VarComm& var, const std::string& candidate) {
  const Endpoint* only = nullptr;
  if (var.rx_from.size() + var.tx_to.size() != 1) {
    return false;
  }
  only = var.rx_from.empty() ? &var.tx_to.front() : &var.rx_from.front();
  return only->kind == Endpoint::Kind::kAddress && only->name == candidate;
}

// True when the variable qualifies for priority assignment: it communicates
// with at most one endpoint and that endpoint is one of its possible values.
bool IsPriorityVariable(const VarComm& var) {
  if (var.rx_from.size() + var.tx_to.size() != 1) {
    return false;
  }
  const Endpoint& only = var.rx_from.empty() ? var.tx_to.front() : var.rx_from.front();
  if (only.kind != Endpoint::Kind::kAddress) {
    return false;
  }
  return std::find(var.pool.begin(), var.pool.end(), only) != var.pool.end();
}

struct Candidate {
  std::string address;
  double score = -std::numeric_limits<double>::infinity();
};

}  // namespace

double EvalFitness(Bps capacity, Bps usage, double weight, FitnessModel model) {
  switch (model) {
    case FitnessModel::kLinear:
      return capacity - weight * usage;
    case FitnessModel::kFairShare: {
      if (capacity <= 0) {
        return 0;
      }
      const double available = capacity - usage;
      const double fair = capacity / (1.0 + weight * usage / capacity);
      return std::max(available, fair);
    }
  }
  return 0;
}

double EvalRx(const StatusReport& report, double weight, FitnessModel model) {
  return EvalFitness(report.nic_rx_cap, report.nic_rx_use, weight, model);
}
double EvalTx(const StatusReport& report, double weight, FitnessModel model) {
  return EvalFitness(report.nic_tx_cap, report.nic_tx_use, weight, model);
}
double EvalDiskRead(const StatusReport& report, double weight, FitnessModel model) {
  return EvalFitness(report.disk_read_cap, report.disk_read_use, weight, model);
}
double EvalDiskWrite(const StatusReport& report, double weight, FitnessModel model) {
  return EvalFitness(report.disk_write_cap, report.disk_write_use, weight, model);
}

Result<HeuristicResult> EvaluateHeuristic(const lang::CompiledQuery& query,
                                          const StatusByAddress& status,
                                          const HeuristicParams& params,
                                          const ReservationFilter& reserved) {
  return EvaluateHeuristic(query.variables(), query.query().options.allow_same_binding,
                           status, params, reserved);
}

Result<HeuristicResult> EvaluateHeuristic(const std::vector<lang::VarComm>& variables,
                                          bool allow_same, const StatusByAddress& status,
                                          const HeuristicParams& params,
                                          const ReservationFilter& reserved) {
  HeuristicResult result;
  const bool distinct = params.distinct_bindings && !allow_same;
  // How many times each address has been handed out (distinct bindings wrap
  // around once the pool is exhausted).
  std::unordered_map<std::string, int> times_used;

  // Score of candidate `address` for variable `var`.
  auto score_candidate = [&](const VarComm& var, const std::string& address) -> double {
    // Scalar requirements (Section 7): a candidate with known-insufficient
    // free CPU or memory ranks below every other candidate. Unknown scalar
    // state (total == 0) passes — the probe simply carried no information.
    if (var.cpu_required > 0 || var.mem_required > 0) {
      const auto it = status.find(address);
      if (it != status.end()) {
        const StatusReport& report = it->second;
        const bool cpu_short = report.cpu_cores_total > 0 && var.cpu_required > 0 &&
                               report.CpuFree() < var.cpu_required;
        const bool mem_short =
            report.mem_total > 0 && var.mem_required > 0 && report.MemFree() < var.mem_required;
        if (cpu_short || mem_short) {
          return -kMaxScore;
        }
      }
    }
    double net_rx = kMaxScore;
    double net_tx = kMaxScore;
    if (!SingleLocalEndpoint(var, address)) {
      if (!var.rx_from.empty()) {
        net_rx = EvalOrWorst(status, address, EvalRx, params);
      }
      if (!var.tx_to.empty()) {
        net_tx = EvalOrWorst(status, address, EvalTx, params);
      }
    }
    double disk_read = kMaxScore;
    double disk_write = kMaxScore;
    if (var.reads_disk) {
      disk_read = EvalOrWorst(status, address, EvalDiskRead, params);
    }
    if (var.writes_disk) {
      disk_write = EvalOrWorst(status, address, EvalDiskWrite, params);
    }
    return std::min(std::min(net_rx, net_tx), std::min(disk_read, disk_write));
  };

  auto assign_value = [&](const VarComm& var) -> Result<bool> {
    if (var.pool.empty()) {
      return Error{"variable '" + var.name + "' has an empty candidate pool"};
    }
    std::vector<Candidate> candidates;
    candidates.reserve(var.pool.size());
    int min_used = std::numeric_limits<int>::max();
    for (const Endpoint& value : var.pool) {
      if (value.kind != Endpoint::Kind::kAddress) {
        continue;  // Pools contain addresses; disk values are not bindable.
      }
      const auto used_it = times_used.find(value.name);
      const int used = used_it == times_used.end() ? 0 : used_it->second;
      min_used = std::min(min_used, used);
      candidates.push_back(Candidate{value.name, score_candidate(var, value.name)});
    }
    if (candidates.empty()) {
      return Error{"variable '" + var.name + "' has no address candidates"};
    }
    // Distinct bindings: restrict to the least-used addresses (0 until the
    // pool wraps). Then order by score, best first; ties keep pool order.
    std::vector<Candidate> eligible;
    for (const Candidate& c : candidates) {
      const auto used_it = times_used.find(c.address);
      const int used = used_it == times_used.end() ? 0 : used_it->second;
      if (!distinct || used == min_used) {
        eligible.push_back(c);
      }
    }
    std::stable_sort(eligible.begin(), eligible.end(),
                     [](const Candidate& a, const Candidate& b) { return a.score > b.score; });
    // Honour reservations: take the best unreserved candidate; if every
    // candidate is reserved, fall back to the best overall (Section 5.5).
    const Candidate* chosen = nullptr;
    if (reserved != nullptr) {
      for (const Candidate& c : eligible) {
        if (!reserved(c.address)) {
          chosen = &c;
          break;
        }
      }
    }
    if (chosen == nullptr) {
      chosen = &eligible.front();
    }
    result.binding[var.name] = Endpoint::Address(chosen->address);
    result.scores.emplace_back(var.name, chosen->score);
    times_used[chosen->address] += 1;
    return true;
  };

  // Phase 1: priority variables.
  std::vector<bool> bound(variables.size(), false);
  if (params.enable_priority_binding) {
    for (size_t i = 0; i < variables.size(); ++i) {
      if (IsPriorityVariable(variables[i])) {
        Result<bool> r = assign_value(variables[i]);
        if (!r.ok()) {
          return r.error();
        }
        bound[i] = true;
      }
    }
  }
  // Phase 2: everything else, in declaration order.
  for (size_t i = 0; i < variables.size(); ++i) {
    if (!bound[i]) {
      Result<bool> r = assign_value(variables[i]);
      if (!r.ok()) {
        return r.error();
      }
    }
  }
  return result;
}

}  // namespace cloudtalk
