#include "src/topology/topology.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "src/check/check.h"

namespace cloudtalk {

namespace {

// Cheap deterministic mixer for ECMP tie-breaking.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

NodeId Topology::AddNode(NodeKind kind, std::string name, int rack) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, kind, std::move(name), rack});
  out_links_.emplace_back();
  in_links_.emplace_back();
  dist_cache_.clear();
  return id;
}

NodeId Topology::AddHost(std::string name, const HostCaps& caps, int rack) {
  const NodeId id = AddNode(NodeKind::kHost, std::move(name), rack);
  hosts_.push_back(id);
  host_caps_[id] = caps;
  const int idx = static_cast<int>(hosts_.size()) - 1;
  const int r = rack >= 0 ? rack : 0;
  std::string ip = "10." + std::to_string(r % 250) + "." + std::to_string((idx / 250) % 250) +
                   "." + std::to_string(idx % 250 + 1);
  host_ips_[id] = ip;
  ip_to_host_[ip] = id;
  return id;
}

LinkId Topology::AddLink(NodeId from, NodeId to, Bps capacity, Seconds delay) {
  CT_DCHECK(from != to);
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, from, to, capacity, delay});
  out_links_[from].push_back(id);
  in_links_[to].push_back(id);
  dist_cache_.clear();
  return id;
}

LinkId Topology::AddDuplexLink(NodeId a, NodeId b, Bps capacity, Seconds delay) {
  const LinkId forward = AddLink(a, b, capacity, delay);
  AddLink(b, a, capacity, delay);
  return forward;
}

NodeId Topology::HostByIp(const std::string& ip) const {
  auto it = ip_to_host_.find(ip);
  return it == ip_to_host_.end() ? kInvalidNode : it->second;
}

LinkId Topology::UplinkOf(NodeId host) const {
  CT_DCHECK(node(host).kind == NodeKind::kHost);
  return out_links_[host].empty() ? kInvalidLink : out_links_[host].front();
}

LinkId Topology::DownlinkOf(NodeId host) const {
  CT_DCHECK(node(host).kind == NodeKind::kHost);
  return in_links_[host].empty() ? kInvalidLink : in_links_[host].front();
}

const std::vector<int>& Topology::DistanceTo(NodeId dst) const {
  // Concurrent path lookups (parallel query evaluation) race on the lazily
  // filled cache; serialize fills. The returned reference stays valid while
  // other threads insert other destinations (node-based map, no erases).
  std::unique_lock<std::mutex> lock(dist_mutex_.m);
  auto it = dist_cache_.find(dst);
  if (it != dist_cache_.end()) {
    return it->second;
  }
  lock.unlock();  // BFS without the lock; re-acquired to publish.
  std::vector<int> dist(nodes_.size(), std::numeric_limits<int>::max());
  std::deque<NodeId> queue;
  dist[dst] = 0;
  queue.push_back(dst);
  // BFS over reversed edges so that dist[n] is hops from n to dst.
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    for (LinkId lid : in_links_[n]) {
      const NodeId prev = links_[lid].from;
      if (dist[prev] == std::numeric_limits<int>::max()) {
        dist[prev] = dist[n] + 1;
        queue.push_back(prev);
      }
    }
  }
  lock.lock();
  return dist_cache_.emplace(dst, std::move(dist)).first->second;
}

std::vector<LinkId> Topology::PathBetween(NodeId src, NodeId dst, uint64_t ecmp_salt) const {
  std::vector<LinkId> path;
  if (src == dst) {
    return path;
  }
  const std::vector<int>& dist = DistanceTo(dst);
  CT_INVARIANT(dist[src] != std::numeric_limits<int>::max(), "I401",
               "no route between nodes")
      .With("src", src)
      .With("dst", dst);
  NodeId cur = src;
  while (cur != dst) {
    // Collect all next hops on shortest paths, then break ties with the salt
    // so that distinct flows spread over the equal-cost core.
    LinkId best = kInvalidLink;
    uint64_t best_hash = 0;
    for (LinkId lid : out_links_[cur]) {
      const Link& l = links_[lid];
      if (dist[l.to] != dist[cur] - 1) {
        continue;
      }
      const uint64_t h = Mix(ecmp_salt, static_cast<uint64_t>(lid) + 1);
      if (best == kInvalidLink || h > best_hash) {
        best = lid;
        best_hash = h;
      }
    }
    CT_INVARIANT(best != kInvalidLink, "I402", "shortest-path walk is stuck")
        .With("at", cur)
        .With("dst", dst);
    path.push_back(best);
    cur = links_[best].to;
  }
  return path;
}

bool Topology::SameRack(NodeId a, NodeId b) const {
  return node(a).rack >= 0 && node(a).rack == node(b).rack;
}

Topology MakeSingleSwitch(const SingleSwitchParams& params) {
  Topology topo;
  const NodeId sw = topo.AddNode(NodeKind::kTor, "switch0", 0);
  for (int i = 0; i < params.num_hosts; ++i) {
    const NodeId h = topo.AddHost("host" + std::to_string(i), params.host_caps, 0);
    topo.AddDuplexLink(h, sw, params.link_capacity, params.link_delay);
  }
  return topo;
}

Topology MakeVl2(const Vl2Params& params) {
  Topology topo;
  std::vector<NodeId> cores;
  std::vector<NodeId> aggs;
  cores.reserve(params.num_cores);
  aggs.reserve(params.num_aggs);
  for (int c = 0; c < params.num_cores; ++c) {
    cores.push_back(topo.AddNode(NodeKind::kCore, "core" + std::to_string(c)));
  }
  for (int a = 0; a < params.num_aggs; ++a) {
    const NodeId agg = topo.AddNode(NodeKind::kAgg, "agg" + std::to_string(a));
    aggs.push_back(agg);
    for (NodeId core : cores) {
      topo.AddDuplexLink(agg, core, params.agg_uplink, params.link_delay);
    }
  }
  for (int r = 0; r < params.num_racks; ++r) {
    const NodeId tor = topo.AddNode(NodeKind::kTor, "tor" + std::to_string(r), r);
    for (NodeId agg : aggs) {
      topo.AddDuplexLink(tor, agg, params.tor_uplink, params.link_delay);
    }
    for (int h = 0; h < params.hosts_per_rack; ++h) {
      if (params.max_hosts > 0 &&
          static_cast<int>(topo.hosts().size()) >= params.max_hosts) {
        break;
      }
      HostCaps caps = params.host_caps;
      caps.nic_up = std::min(caps.nic_up, params.host_link);
      caps.nic_down = std::min(caps.nic_down, params.host_link);
      const NodeId host =
          topo.AddHost("h" + std::to_string(r) + "_" + std::to_string(h), caps, r);
      topo.AddDuplexLink(host, tor, params.host_link, params.link_delay);
    }
  }
  return topo;
}

Topology MakeEc2(const Ec2Params& params) {
  Vl2Params vl2;
  vl2.hosts_per_rack = params.hosts_per_rack;
  vl2.max_hosts = params.num_instances;
  vl2.num_racks =
      (params.num_instances + params.hosts_per_rack - 1) / params.hosts_per_rack;
  vl2.num_aggs = 4;
  vl2.num_cores = 8;
  // The tenant-visible bottleneck is the per-instance cap: give the fabric
  // ample headroom (full bisection) and clamp the host NICs.
  vl2.host_link = 10 * kGbps;
  vl2.tor_uplink = 40 * kGbps * params.hosts_per_rack / 10;
  vl2.agg_uplink = 100 * kGbps;
  vl2.link_delay = params.link_delay;
  vl2.host_caps.nic_up = params.instance_rate;
  vl2.host_caps.nic_down = params.instance_rate;
  vl2.host_caps.disk_read = params.disk_read;
  vl2.host_caps.disk_write = params.disk_write;
  Topology topo = MakeVl2(vl2);
  CT_INVARIANT(static_cast<int>(topo.hosts().size()) == params.num_instances, "I403",
               "tenant host count mismatch")
      .With("hosts", topo.hosts().size())
      .With("requested", params.num_instances);
  return topo;
}

}  // namespace cloudtalk
