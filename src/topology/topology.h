// Datacenter topology model.
//
// A Topology is a directed graph of hosts and switches connected by
// capacity-annotated links. Hosts additionally carry NIC and disk capacity
// descriptors (the resources where, per the paper's full-bisection argument,
// all contention forms). Builders are provided for the three fabrics used in
// the evaluation: a single-switch local cluster, a VL2-style multi-rack
// datacenter (what EC2 resembles, per Section 3), and a host-only "EC2
// tenant" view where each VM has a flat per-instance bandwidth cap.
#ifndef CLOUDTALK_SRC_TOPOLOGY_TOPOLOGY_H_
#define CLOUDTALK_SRC_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"

namespace cloudtalk {

using NodeId = int32_t;
using LinkId = int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind { kHost, kTor, kAgg, kCore };

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kHost;
  std::string name;
  int rack = -1;  // Rack index for hosts and ToRs; -1 otherwise.
};

// A directed link. Duplex cables are modelled as two directed links.
struct Link {
  LinkId id = kInvalidLink;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Bps capacity = 0;
  Seconds delay = 0;  // Propagation delay; only the packet simulator uses it.
};

// Per-host I/O capacities. NIC capacities usually match the host's access
// link but are kept separate so that EC2-style per-VM rate caps (500 Mbps on
// c3.large regardless of fabric speed) can be expressed.
struct HostCaps {
  Bps nic_up = 1 * kGbps;
  Bps nic_down = 1 * kGbps;
  Bps disk_read = 4 * kGbps;   // ~500 MB/s SSD.
  Bps disk_write = 4 * kGbps;  // ~500 MB/s SSD.
  // Scalar resources (Section 7 extension).
  double cpu_cores = 8;
  Bytes memory = 32.0 * 1024 * 1024 * 1024;
};

class Topology {
 public:
  Topology() = default;

  NodeId AddNode(NodeKind kind, std::string name, int rack = -1);
  // Adds a host with an auto-assigned synthetic IPv4 address and caps.
  NodeId AddHost(std::string name, const HostCaps& caps, int rack = -1);

  LinkId AddLink(NodeId from, NodeId to, Bps capacity, Seconds delay = 0);
  // Adds both directions; returns the forward link id (the reverse id is
  // forward + 1 by construction).
  LinkId AddDuplexLink(NodeId a, NodeId b, Bps capacity, Seconds delay = 0);

  const Node& node(NodeId id) const { return nodes_[id]; }
  const Link& link(LinkId id) const { return links_[id]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_links() const { return static_cast<int>(links_.size()); }

  const std::vector<NodeId>& hosts() const { return hosts_; }
  const HostCaps& host_caps(NodeId host) const { return host_caps_.at(host); }
  HostCaps& mutable_host_caps(NodeId host) { return host_caps_.at(host); }

  // Synthetic IPv4 address assigned to each host ("10.<rack>.<idx>.<n>").
  const std::string& IpOf(NodeId host) const { return host_ips_.at(host); }
  // kInvalidNode if no host carries `ip`.
  NodeId HostByIp(const std::string& ip) const;

  // Outgoing links of a node.
  const std::vector<LinkId>& OutLinks(NodeId node) const { return out_links_[node]; }

  // The directed access link leaving/entering a host (first out/in link).
  LinkId UplinkOf(NodeId host) const;
  LinkId DownlinkOf(NodeId host) const;

  // Shortest path from `src` to `dst` as a sequence of directed link ids.
  // Equal-cost choices are broken by `ecmp_salt` so that different flows can
  // take different core paths. Empty when src == dst (loopback transfer).
  std::vector<LinkId> PathBetween(NodeId src, NodeId dst, uint64_t ecmp_salt = 0) const;

  // True if a and b are hosts in the same rack.
  bool SameRack(NodeId a, NodeId b) const;

 private:
  const std::vector<int>& DistanceTo(NodeId dst) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
  std::vector<std::vector<LinkId>> in_links_;
  std::vector<NodeId> hosts_;
  std::unordered_map<NodeId, HostCaps> host_caps_;
  std::unordered_map<NodeId, std::string> host_ips_;
  std::unordered_map<std::string, NodeId> ip_to_host_;
  // Distance tables, lazily computed per destination (BFS hop counts).
  // Guarded by dist_mutex_: PathBetween() is called concurrently by the
  // parallel evaluation engine (thread-local estimators share one fabric
  // topology). References into the map stay valid across inserts
  // (node-based container); nothing is ever erased, only cleared while the
  // topology is still being built single-threaded.
  mutable std::unordered_map<NodeId, std::vector<int>> dist_cache_;
  // std::mutex is neither copyable nor movable, but Topology must stay a
  // value type (clusters and tests copy it); copies get a fresh mutex.
  struct CopyableMutex {
    CopyableMutex() = default;
    CopyableMutex(const CopyableMutex&) {}
    CopyableMutex& operator=(const CopyableMutex&) { return *this; }
    std::mutex m;
  };
  mutable CopyableMutex dist_mutex_;
};

// ---------- Builders ----------

struct SingleSwitchParams {
  int num_hosts = 20;
  Bps link_capacity = 1 * kGbps;
  Seconds link_delay = 10 * kMicrosecond;
  HostCaps host_caps;
};

// The paper's local cluster: N hosts into one switch.
Topology MakeSingleSwitch(const SingleSwitchParams& params);

struct Vl2Params {
  int num_racks = 25;
  int hosts_per_rack = 48;
  int max_hosts = 0;  // 0 = fill every rack; otherwise stop after this many.
  int num_aggs = 4;
  int num_cores = 8;
  Bps host_link = 1 * kGbps;
  Bps tor_uplink = 10 * kGbps;
  Bps agg_uplink = 10 * kGbps;
  Seconds link_delay = 10 * kMicrosecond;
  HostCaps host_caps;
};

// VL2-like three-tier fabric: hosts - ToR - Agg - Core, full mesh between
// tiers above the ToR (full bisection when uplinks are generously sized).
Topology MakeVl2(const Vl2Params& params);

struct Ec2Params {
  int num_instances = 100;
  Bps instance_rate = 500 * kMbps;  // c3.large-era per-VM cap.
  int hosts_per_rack = 20;
  Seconds link_delay = 50 * kMicrosecond;
  Bps disk_read = 8 * kGbps;   // "local storage was considerably faster".
  Bps disk_write = 8 * kGbps;
};

// The tenant's-eye view of EC2 in 2015: a full-bisection fabric where each
// instance is strictly rate-limited; racks only matter for latency.
Topology MakeEc2(const Ec2Params& params);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_TOPOLOGY_TOPOLOGY_H_
