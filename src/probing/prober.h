// Tenant-side network probing (paper Section 3): what a tenant can learn
// about a hidden cloud topology with ping, traceroute and iperf — and what
// that costs.
//
// The paper reverse-engineered EC2's topology with exactly these tools:
// traceroute hop counts cluster VMs by host/rack/subnet, ping RTTs
// correlate with hop counts, and iperf measures available bandwidth. It
// also argues why providers hate this: probing "is both costly and
// unreliable when performed independently by multiple tenants" — probes
// interfere and produce wrong capacity estimates. Both the inference and
// the interference are reproducible here.
#ifndef CLOUDTALK_SRC_PROBING_PROBER_H_
#define CLOUDTALK_SRC_PROBING_PROBER_H_

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/fluidsim/fluid_simulation.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace probing {

struct PingResult {
  int hops = 0;     // Router hops (traceroute).
  Seconds rtt = 0;  // Round-trip time, with measurement jitter.
};

// Ping/traceroute against the true topology: hop count is the real path
// length; RTT is twice the summed propagation delays plus per-sample jitter
// (queueing noise).
class NetworkProber {
 public:
  NetworkProber(const Topology* topo, uint64_t seed = 1, Seconds rtt_jitter = 20 * kMicrosecond)
      : topo_(topo), rng_(seed), rtt_jitter_(rtt_jitter) {}

  PingResult Ping(NodeId a, NodeId b);

  // Full pairwise hop matrix for `hosts` (hosts.size()^2 traceroutes).
  std::vector<std::vector<int>> HopMatrix(const std::vector<NodeId>& hosts);

 private:
  const Topology* topo_;
  Rng rng_;
  Seconds rtt_jitter_;
};

// Clusters hosts into inferred racks from a hop matrix: two hosts share a
// rack iff they are mutually at the minimum observed nonzero hop distance
// (in the measured EC2 topology: two hypervisor hops). Returns a rack label
// per host (labels are arbitrary but consistent).
std::vector<int> InferRacks(const std::vector<std::vector<int>>& hops);

// Fraction of host pairs whose same-rack/different-rack relation the
// inference got right versus the true topology.
double RackInferenceAccuracy(const Topology& topo, const std::vector<NodeId>& hosts,
                             const std::vector<int>& inferred);

// An iperf-style capacity probe executed on the live fluid simulation: a
// transfer of `probe_bytes` from a to b whose measured throughput is the
// transfer's achieved rate. Asynchronous; the callback receives the
// measured bandwidth. Concurrent probes contend like any other traffic —
// which is precisely why multi-tenant probing misleads.
void StartCapacityProbe(FluidSimulation* sim, NodeId src, NodeId dst, Bytes probe_bytes,
                        std::function<void(Bps measured)> done);

}  // namespace probing
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_PROBING_PROBER_H_
