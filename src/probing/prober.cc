#include "src/probing/prober.h"

#include <algorithm>
#include <limits>
#include <string>

#include "src/check/check.h"
#include "src/obs/metrics.h"

namespace cloudtalk {
namespace probing {

PingResult NetworkProber::Ping(NodeId a, NodeId b) {
  PingResult result;
  if (a == b) {
    result.hops = 0;
    result.rtt = rng_.Uniform(0, rtt_jitter_ * 0.1);
    CT_OBS_OBSERVE_L("M200", std::to_string(b), result.rtt);
    return result;
  }
  const std::vector<LinkId> path = topo_->PathBetween(a, b);
  // Traceroute counts intermediate routers: links - 1.
  result.hops = static_cast<int>(path.size()) - 1;
  Seconds one_way = 0;
  for (LinkId link : path) {
    one_way += topo_->link(link).delay;
  }
  result.rtt = 2 * one_way + rng_.Uniform(0, rtt_jitter_);
  CT_OBS_OBSERVE_L("M200", std::to_string(b), result.rtt);
  return result;
}

std::vector<std::vector<int>> NetworkProber::HopMatrix(const std::vector<NodeId>& hosts) {
  const int n = static_cast<int>(hosts.size());
  std::vector<std::vector<int>> hops(n, std::vector<int>(n, 0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) {
        hops[i][j] = Ping(hosts[i], hosts[j]).hops;
      }
    }
  }
  return hops;
}

std::vector<int> InferRacks(const std::vector<std::vector<int>>& hops) {
  const int n = static_cast<int>(hops.size());
  std::vector<int> rack(n, -1);
  if (n == 0) {
    return rack;
  }
  // The same-rack hop distance is the minimum nonzero distance observed.
  int min_hops = std::numeric_limits<int>::max();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i != j) {
        min_hops = std::min(min_hops, hops[i][j]);
      }
    }
  }
  int next_label = 0;
  for (int i = 0; i < n; ++i) {
    if (rack[i] >= 0) {
      continue;
    }
    rack[i] = next_label++;
    for (int j = i + 1; j < n; ++j) {
      if (rack[j] < 0 && hops[i][j] <= min_hops) {
        rack[j] = rack[i];
      }
    }
  }
  // I406: the seeding loop visits every host, so no label can stay -1 —
  // downstream grouping (Section 5 rack-aware placement) indexes by label.
  for (int i = 0; i < n; ++i) {
    CT_INVARIANT(rack[i] >= 0, "I406", "rack inference left a host unlabelled")
        .With("host_index", i)
        .With("hosts", n);
  }
  return rack;
}

double RackInferenceAccuracy(const Topology& topo, const std::vector<NodeId>& hosts,
                             const std::vector<int>& inferred) {
  const int n = static_cast<int>(hosts.size());
  if (n < 2) {
    return 1.0;
  }
  int correct = 0;
  int total = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const bool truly_same = topo.SameRack(hosts[i], hosts[j]);
      const bool inferred_same = inferred[i] == inferred[j];
      correct += truly_same == inferred_same ? 1 : 0;
      ++total;
    }
  }
  return static_cast<double>(correct) / total;
}

void StartCapacityProbe(FluidSimulation* sim, NodeId src, NodeId dst, Bytes probe_bytes,
                        std::function<void(Bps measured)> done) {
  GroupSpec spec;
  FluidFlow flow;
  flow.resources = sim->resources().NetworkPath(sim->topology(), src, dst);
  flow.size = probe_bytes;
  spec.flows.push_back(std::move(flow));
  const Seconds started = sim->now();
  sim->AddGroup(std::move(spec), [sim, probe_bytes, started,
                                  done = std::move(done)](GroupId, Seconds finished) {
    const Seconds elapsed = finished - started;
    if (done) {
      done(elapsed > 0 ? probe_bytes * 8.0 / elapsed : 0);
    }
    (void)sim;
  });
}

}  // namespace probing
}  // namespace cloudtalk
