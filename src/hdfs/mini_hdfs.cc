#include "src/hdfs/mini_hdfs.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/obs/metrics.h"

namespace cloudtalk {

namespace {

// Renders a byte count as CloudTalk literal text (exact when possible).
std::string SizeLiteral(Bytes size) {
  std::ostringstream os;
  os << static_cast<long long>(std::llround(size));
  return os.str();
}

}  // namespace

const char* BlockStateName(BlockState state) {
  switch (state) {
    case BlockState::kEmpty:
      return "empty";
    case BlockState::kWriting:
      return "writing";
    case BlockState::kComplete:
      return "complete";
  }
  return "unknown";
}

bool LegalBlockTransition(BlockState from, BlockState to) {
  switch (from) {
    case BlockState::kEmpty:
      // Installs jump straight to complete; writes enter the pipeline.
      return to == BlockState::kWriting || to == BlockState::kComplete;
    case BlockState::kWriting:
      return to == BlockState::kComplete;
    case BlockState::kComplete:
      return false;  // Blocks are immutable once sealed.
  }
  return false;
}

MiniHdfs::MiniHdfs(Cluster* cluster, HdfsOptions options)
    : cluster_(cluster), options_(options) {}

void MiniHdfs::SetBlockState(const std::string& name, FileInfo& info, int block_index,
                             BlockState to) {
  BlockState& state = info.block_states[block_index];
  CT_INVARIANT(LegalBlockTransition(state, to), "I204", "illegal block state transition")
      .With("file", name)
      .With("block", block_index)
      .With("from", BlockStateName(state))
      .With("to", BlockStateName(to));
  state = to;
}

void MiniHdfs::InstallFile(const std::string& name, Bytes size,
                           std::vector<std::vector<NodeId>> block_replicas) {
  FileInfo info;
  info.size = size;
  // The installed layout defines the block size: `size` spread evenly over
  // the given blocks.
  info.block_size = block_replicas.empty()
                        ? options_.block_size
                        : size / static_cast<double>(block_replicas.size());
  info.block_states.assign(block_replicas.size(), BlockState::kEmpty);
  info.block_replicas = std::move(block_replicas);
  for (int b = 0; b < static_cast<int>(info.block_states.size()); ++b) {
    SetBlockState(name, info, b, BlockState::kComplete);
  }
  files_[name] = std::move(info);
}

const MiniHdfs::FileInfo* MiniHdfs::GetFile(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

std::vector<NodeId> MiniHdfs::PlacePipeline(NodeId client) {
  const Topology& topo = cluster_->topology();
  std::vector<NodeId> datanodes = options_.datanodes;
  if (datanodes.empty()) {
    for (int i = 0; i < cluster_->num_hosts(); ++i) {
      datanodes.push_back(cluster_->host(i));
    }
  }
  const int n = static_cast<int>(datanodes.size());
  std::vector<NodeId> pipeline;

  if (options_.cloudtalk_writes) {
    // The NameNode asks its local CloudTalk server. With the first replica
    // pinned on the writer, the query binds the remaining replicas; flows
    // follow the Section 5.3 pipeline listing.
    const int remote = options_.replication - (options_.pin_first_replica_local ? 1 : 0);
    std::ostringstream query;
    std::vector<std::string> vars;
    for (int i = 0; i < remote; ++i) {
      vars.push_back("r" + std::to_string(i + 1));
      query << vars.back() << " = ";
    }
    query << "(";
    for (NodeId datanode : datanodes) {
      if (datanode == client) {
        continue;
      }
      query << cluster_->topology().IpOf(datanode) << " ";
    }
    query << ")\n";
    const std::string block = SizeLiteral(options_.block_size);
    std::string upstream = cluster_->topology().IpOf(client);
    std::string prev_disk_flow;
    int flow_index = 1;
    for (int i = 0; i < remote; ++i) {
      const std::string net_flow = "f" + std::to_string(flow_index);
      const std::string disk_flow = "f" + std::to_string(flow_index + 1);
      query << net_flow << " " << upstream << " -> " << vars[i] << " size " << block
            << " rate r(" << disk_flow << ")";
      if (!prev_disk_flow.empty()) {
        // Store-and-forward: each hop forwards what the previous replica
        // has stored (Section 5.3 write listing).
        query << " transfer t(" << prev_disk_flow << ")";
      }
      query << "\n";
      query << disk_flow << " " << vars[i] << " -> disk size " << block << " rate r("
            << net_flow << ")\n";
      upstream = vars[i];
      prev_disk_flow = disk_flow;
      flow_index += 2;
    }
    auto reply = cluster_->cloudtalk().Answer(query.str());
    if (reply.ok()) {
      if (options_.pin_first_replica_local) {
        pipeline.push_back(client);
      }
      for (const std::string& var : vars) {
        const NodeId host = cluster_->directory().Resolve(reply.value().binding.at(var).name);
        pipeline.push_back(host);
      }
      return pipeline;
    }
    CLOUDTALK_LOG(kWarning) << "CloudTalk write query failed (" << reply.error().ToString()
                            << "); falling back to random placement";
  }

  if (options_.alto != nullptr && !options_.cloudtalk_writes) {
    // ALTO baseline: nearest remote replicas by static cost.
    if (options_.pin_first_replica_local) {
      pipeline.push_back(client);
    }
    std::vector<NodeId> remote_candidates;
    for (NodeId datanode : datanodes) {
      if (datanode != client) {
        remote_candidates.push_back(datanode);
      }
    }
    const std::vector<NodeId> chosen = options_.alto->SelectEndpoints(
        client, remote_candidates, options_.replication - static_cast<int>(pipeline.size()),
        cluster_->rng());
    pipeline.insert(pipeline.end(), chosen.begin(), chosen.end());
    if (static_cast<int>(pipeline.size()) == options_.replication) {
      return pipeline;
    }
    pipeline.clear();  // Not enough candidates; fall through to random.
  }

  // Basic HDFS: local first replica, random distinct remote replicas.
  if (options_.pin_first_replica_local) {
    pipeline.push_back(client);
  }
  while (static_cast<int>(pipeline.size()) < options_.replication) {
    const NodeId candidate =
        datanodes[static_cast<size_t>(cluster_->rng().UniformInt(0, n - 1))];
    if (std::find(pipeline.begin(), pipeline.end(), candidate) == pipeline.end() &&
        (candidate != client || !options_.pin_first_replica_local)) {
      pipeline.push_back(candidate);
    }
  }
  (void)topo;
  return pipeline;
}

NodeId MiniHdfs::PickReadSource(NodeId client, const std::vector<NodeId>& replicas,
                                Bytes block_bytes) {
  if (options_.cloudtalk_reads) {
    // Section 5.3 read query, issued against the client's local CloudTalk
    // server (reads are handled in a distributed manner).
    std::ostringstream query;
    query << "src = (";
    for (NodeId r : replicas) {
      query << cluster_->topology().IpOf(r) << " ";
    }
    query << ")\n";
    const std::string block = SizeLiteral(block_bytes);
    query << "f1 disk -> src size " << block << " rate r(f2)\n";
    query << "f2 src -> " << cluster_->topology().IpOf(client) << " size " << block
          << " rate r(f1)\n";
    auto reply = cluster_->cloudtalk_at(client).Answer(query.str());
    if (reply.ok()) {
      return cluster_->directory().Resolve(reply.value().binding.at("src").name);
    }
    CLOUDTALK_LOG(kWarning) << "CloudTalk read query failed (" << reply.error().ToString()
                            << "); falling back to random replica";
  }
  if (options_.alto != nullptr) {
    return options_.alto->SelectEndpoint(client, replicas, cluster_->rng());
  }
  return replicas[cluster_->rng().UniformInt(0, static_cast<int64_t>(replicas.size()) - 1)];
}

bool MiniHdfs::WriteFile(NodeId client, const std::string& name, Bytes size, DoneCb done) {
  if (files_.count(name) > 0 || size <= 0) {
    return false;
  }
  FileInfo info;
  info.size = size;
  info.block_size = options_.block_size;
  const int blocks = static_cast<int>(std::ceil(size / options_.block_size));
  info.block_replicas.resize(blocks);
  info.block_states.assign(blocks, BlockState::kEmpty);
  files_[name] = std::move(info);
  WriteBlock(client, name, 0, cluster_->now(), std::move(done));
  return true;
}

void MiniHdfs::WriteBlock(NodeId client, const std::string& name, int block_index,
                          Seconds started, DoneCb done) {
  FileInfo& info = files_[name];
  const int blocks = static_cast<int>(info.block_replicas.size());
  if (block_index >= blocks) {
    if (done) {
      done(started, cluster_->now());
    }
    return;
  }
  const Bytes bytes =
      std::min(info.block_size, info.size - block_index * info.block_size);
  const std::vector<NodeId> pipeline = PlacePipeline(client);
  CT_INVARIANT(static_cast<int>(pipeline.size()) == options_.replication, "I201",
               "write pipeline does not have `replication` stages")
      .With("file", name)
      .With("block", block_index)
      .With("pipeline_size", pipeline.size())
      .With("replication", options_.replication);
  if constexpr (check::kInvariantsEnabled) {
    for (size_t a = 0; a < pipeline.size(); ++a) {
      for (size_t b = a + 1; b < pipeline.size(); ++b) {
        CT_INVARIANT(pipeline[a] != pipeline[b], "I202",
                     "write pipeline repeats a replica host")
            .With("file", name)
            .With("block", block_index)
            .With("host", pipeline[a])
            .With("stage_a", a)
            .With("stage_b", b);
      }
    }
  }
  info.block_replicas[block_index] = pipeline;
  SetBlockState(name, info, block_index, BlockState::kWriting);
  ++blocks_written_;
  CT_OBS_INC("M500");

  // One chained group: the client's stream, every store-and-forward hop and
  // every replica's disk write advance at a common rate (Section 4.1).
  FluidSimulation& sim = cluster_->sim();
  GroupSpec spec;
  NodeId upstream = client;
  for (NodeId replica : pipeline) {
    if (replica != upstream) {
      FluidFlow net;
      net.resources = sim.resources().NetworkPath(cluster_->topology(), upstream, replica);
      net.size = bytes;
      spec.flows.push_back(std::move(net));
    }
    FluidFlow disk;
    disk.resources = {sim.resources().DiskWrite(replica)};
    disk.size = bytes;
    spec.flows.push_back(std::move(disk));
    upstream = replica;
  }
  sim.AddGroup(std::move(spec),
               [this, client, name, block_index, started, done](GroupId, Seconds) {
                 auto it = files_.find(name);
                 if (it != files_.end()) {
                   SetBlockState(name, it->second, block_index, BlockState::kComplete);
                 }
                 WriteBlock(client, name, block_index + 1, started, done);
               });
}

bool MiniHdfs::ReadFile(NodeId client, const std::string& name, DoneCb done) {
  if (files_.count(name) == 0) {
    return false;
  }
  ReadBlock(client, name, 0, cluster_->now(), std::move(done));
  return true;
}

void MiniHdfs::ReadBlock(NodeId client, const std::string& name, int block_index,
                         Seconds started, DoneCb done) {
  FileInfo& info = files_[name];
  const int blocks = static_cast<int>(info.block_replicas.size());
  if (block_index >= blocks) {
    if (done) {
      done(started, cluster_->now());
    }
    return;
  }
  const Bytes bytes =
      std::min(info.block_size, info.size - block_index * info.block_size);
  CT_INVARIANT(info.block_states[block_index] == BlockState::kComplete, "I205",
               "read served from a block that is not complete")
      .With("file", name)
      .With("block", block_index)
      .With("state", BlockStateName(info.block_states[block_index]));
  const NodeId source = PickReadSource(client, info.block_replicas[block_index], bytes);
  if constexpr (check::kInvariantsEnabled) {
    const std::vector<NodeId>& replicas = info.block_replicas[block_index];
    CT_INVARIANT(std::find(replicas.begin(), replicas.end(), source) != replicas.end(), "I203",
                 "read source does not hold a replica of the block")
        .With("file", name)
        .With("block", block_index)
        .With("source", source)
        .With("replicas", replicas.size());
  }
  ++blocks_read_;
  CT_OBS_INC("M501");

  FluidSimulation& sim = cluster_->sim();
  GroupSpec spec;
  if (options_.read_rate_cap > 0) {
    spec.rate_limit = options_.read_rate_cap;
  }
  FluidFlow disk_read;
  disk_read.resources = {sim.resources().DiskRead(source)};
  disk_read.size = bytes;
  spec.flows.push_back(std::move(disk_read));
  if (source != client) {
    FluidFlow net;
    net.resources = sim.resources().NetworkPath(cluster_->topology(), source, client);
    net.size = bytes;
    spec.flows.push_back(std::move(net));
  }
  if (options_.read_writes_local_disk) {
    FluidFlow local;
    local.resources = {sim.resources().DiskWrite(client)};
    local.size = bytes;
    spec.flows.push_back(std::move(local));
  }
  sim.AddGroup(std::move(spec),
               [this, client, name, block_index, started, done](GroupId, Seconds) {
                 ReadBlock(client, name, block_index + 1, started, done);
               });
}

}  // namespace cloudtalk
