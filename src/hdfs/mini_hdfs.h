// Mini-HDFS: the distributed-filesystem substrate of the evaluation.
//
// Reproduces the HDFS behaviours CloudTalk interacts with (Section 5.3):
//  * Files are split into fixed-size blocks, each replicated (default 3x).
//  * Writes daisy-chain through the replica pipeline: the client streams to
//    replica 1, which stores locally while forwarding to replica 2, and so
//    on. A slow transfer anywhere in the chain slows the whole write.
//  * Reads pick one replica per block and stream it to the client.
//
// Placement policies:
//  * Baseline ("basic HDFS"): first replica on the writer, remaining
//    replicas / the read source picked uniformly at random.
//  * CloudTalk: the NameNode (writes) or the client (reads) issues the
//    paper's queries — generated as actual CloudTalk language text and fed
//    through the full parse -> probe -> heuristic pipeline.
//
// All transfers execute on the cluster's fluid simulation; operations are
// asynchronous and complete via callbacks at simulated times.
#ifndef CLOUDTALK_SRC_HDFS_MINI_HDFS_H_
#define CLOUDTALK_SRC_HDFS_MINI_HDFS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/alto/alto.h"
#include "src/check/check.h"
#include "src/harness/cluster.h"

namespace cloudtalk {

// Lifecycle of one HDFS block. Writes move a block through
// empty -> writing -> complete (the pipeline is streaming until the last
// replica's disk write lands); InstallFile may jump straight to complete
// (pre-existing data). Any other transition is a bug (I204), and reads must
// only ever be served from complete blocks (I205).
enum class BlockState : uint8_t { kEmpty, kWriting, kComplete };

const char* BlockStateName(BlockState state);
bool LegalBlockTransition(BlockState from, BlockState to);

struct HdfsOptions {
  Bytes block_size = 256 * kMB;
  int replication = 3;
  bool cloudtalk_writes = false;
  bool cloudtalk_reads = false;
  // HDFS places the first replica on the writer when it is a datanode.
  bool pin_first_replica_local = true;
  // Include the local disk write when executing reads ("copy from HDFS to
  // local storage"). The paper's read clients were CPU-bound before being
  // disk-bound, so this defaults off.
  bool read_writes_local_disk = false;
  // Per-read rate cap modelling a CPU-bound client ("our single client was
  // not able to fully utilise a disk in read scenarios, because it became
  // CPU bound first", Section 5.3). 0 = uncapped.
  Bps read_rate_cap = 0;
  // The datanode set. Empty = every cluster host. Lets the filesystem span
  // a subset of the simulated machines (Figures 7/8 keep iperf senders
  // outside the Hadoop cluster).
  std::vector<NodeId> datanodes;
  // ALTO baseline (Section 3.2): when set and the CloudTalk flags are off,
  // reads pick the lowest-cost replica and writes the lowest-cost remote
  // replicas — static proximity, no load information.
  const alto::AltoServer* alto = nullptr;
};

class MiniHdfs {
 public:
  // `done(start_time, end_time)` fires when the operation's last byte lands.
  using DoneCb = std::function<void(Seconds, Seconds)>;

  MiniHdfs(Cluster* cluster, HdfsOptions options);

  // Writes `size` bytes as a new file, block by block (each block gets its
  // own pipeline). Fails (returns false) if the file exists.
  bool WriteFile(NodeId client, const std::string& name, Bytes size, DoneCb done);

  // Reads the whole file back to `client`, choosing a replica per block.
  bool ReadFile(NodeId client, const std::string& name, DoneCb done);

  // Installs a file's metadata without moving data (pre-existing inputs).
  void InstallFile(const std::string& name, Bytes size,
                   std::vector<std::vector<NodeId>> block_replicas);

  struct FileInfo {
    Bytes size = 0;
    Bytes block_size = 0;
    std::vector<std::vector<NodeId>> block_replicas;
    std::vector<BlockState> block_states;  // Parallel to block_replicas.
  };
  const FileInfo* GetFile(const std::string& name) const;

  int64_t blocks_written() const { return blocks_written_; }
  int64_t blocks_read() const { return blocks_read_; }

 private:
  // Chooses the write pipeline for one block.
  std::vector<NodeId> PlacePipeline(NodeId client);
  // Chooses the replica a read streams from.
  NodeId PickReadSource(NodeId client, const std::vector<NodeId>& replicas, Bytes block_bytes);
  void WriteBlock(NodeId client, const std::string& name, int block_index, Seconds started,
                  DoneCb done);
  void ReadBlock(NodeId client, const std::string& name, int block_index, Seconds started,
                 DoneCb done);
  // Advances one block through the legal-transition table, reporting I204
  // for anything the table forbids.
  void SetBlockState(const std::string& name, FileInfo& info, int block_index, BlockState to);

  Cluster* cluster_;
  HdfsOptions options_;
  std::unordered_map<std::string, FileInfo> files_;
  int64_t blocks_written_ = 0;
  int64_t blocks_read_ = 0;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_HDFS_MINI_HDFS_H_
