#include "src/harness/cluster.h"

#include <utility>

#include "src/check/check.h"

namespace cloudtalk {

StatusReport FluidUsageSource::Snapshot(NodeId host) {
  if (snapshot_.empty()) {
    Refresh();
  }
  const ResourceRegistry& resources = sim_->resources();
  const HostCaps& caps = sim_->topology().host_caps(host);
  StatusReport report;
  report.host = host;
  report.nic_tx_cap = caps.nic_up;
  report.nic_rx_cap = caps.nic_down;
  report.disk_read_cap = caps.disk_read;
  report.disk_write_cap = caps.disk_write;
  report.nic_tx_use = snapshot_[resources.NicUp(host)];
  report.nic_rx_use = snapshot_[resources.NicDown(host)];
  report.disk_read_use = snapshot_[resources.DiskRead(host)];
  report.disk_write_use = snapshot_[resources.DiskWrite(host)];
  report.cpu_cores_total = caps.cpu_cores;
  report.mem_total = caps.memory;
  const auto scalar = scalar_use_.find(host);
  if (scalar != scalar_use_.end()) {
    report.cpu_cores_used = scalar->second.first;
    report.mem_used = scalar->second.second;
  }
  return report;
}

Cluster::Cluster(Topology topology, ClusterOptions options)
    : topo_(std::move(topology)), options_(options), rng_(options.seed) {
  sim_ = std::make_unique<FluidSimulation>(&topo_, options_.min_available_fraction);
  usage_source_ = std::make_unique<FluidUsageSource>(sim_.get());
  directory_ = std::make_unique<TopologyDirectory>(&topo_);
  std::unordered_map<NodeId, StatusServer*> server_map;
  status_servers_.reserve(topo_.hosts().size());
  for (NodeId host : topo_.hosts()) {
    status_servers_.push_back(
        std::make_unique<StatusServer>(host, usage_source_.get(), options_.status_period));
    server_map[host] = status_servers_.back().get();
  }
  transport_ =
      std::make_unique<SimUdpTransport>(std::move(server_map), options_.transport, options_.seed);
  cloudtalk_ = std::make_unique<CloudTalkServer>(
      options_.server, directory_.get(), transport_.get(), [this] { return sim_->now(); });
}

CloudTalkServer& Cluster::cloudtalk_at(NodeId host) {
  if (host == topo_.hosts().front()) {
    return *cloudtalk_;
  }
  auto it = per_host_servers_.find(host);
  if (it == per_host_servers_.end()) {
    ServerConfig config = options_.server;
    config.seed = options_.seed + static_cast<uint64_t>(host) * 7919;
    it = per_host_servers_
             .emplace(host, std::make_unique<CloudTalkServer>(
                                config, directory_.get(), transport_.get(),
                                [this] { return sim_->now(); }))
             .first;
  }
  return *it->second;
}

void Cluster::StartStatusSweep() {
  if (sweeping_) {
    return;
  }
  sweeping_ = true;
  MeasureNow();
  SweepTick();
}

void Cluster::MeasureNow() {
  usage_source_->Refresh();
  for (auto& server : status_servers_) {
    server->Measure();
  }
  // I407: the constructor built one status server per topology host, so a
  // sweep that measured them all covered the whole cluster — a gap here
  // would silently serve stale status for the missing host.
  CT_INVARIANT(status_servers_.size() == topo_.hosts().size(), "I407",
               "measurement sweep did not cover every cluster host")
      .With("status_servers", status_servers_.size())
      .With("hosts", topo_.hosts().size());
  // Every CloudTalk server's canonical answer cache is keyed on the status
  // epoch this sweep just advanced (ServerConfig::answer_cache contract).
  cloudtalk_->InvalidateAnswerCache();
  for (auto& [host, server] : per_host_servers_) {
    (void)host;
    server->InvalidateAnswerCache();
  }
}

void Cluster::SweepTick() {
  sim_->Schedule(sim_->now() + options_.status_period, [this] {
    MeasureNow();
    SweepTick();
  });
}

void Cluster::SetScalarUse(NodeId host, double cpu_cores_used, Bytes mem_used) {
  usage_source_->SetScalarUse(host, cpu_cores_used, mem_used);
}

int Cluster::AddBackgroundPair(NodeId src, NodeId dst, Bps rate) {
  BackgroundEntry entry;
  entry.resources = sim_->AddBackgroundPath(src, dst, rate);
  entry.rates.assign(entry.resources.size(), rate);
  entry.active = true;
  backgrounds_.push_back(std::move(entry));
  return static_cast<int>(backgrounds_.size()) - 1;
}

void Cluster::RemoveBackgroundPair(int handle) {
  BackgroundEntry& entry = backgrounds_[handle];
  if (!entry.active) {
    return;
  }
  for (size_t i = 0; i < entry.resources.size(); ++i) {
    sim_->AddBackground(entry.resources[i], -entry.rates[i]);
  }
  entry.active = false;
}

int Cluster::AddDiskLoad(NodeId host, Bps read_rate, Bps write_rate) {
  BackgroundEntry entry;
  entry.active = true;
  if (read_rate > 0) {
    sim_->AddBackground(sim_->resources().DiskRead(host), read_rate);
    entry.resources.push_back(sim_->resources().DiskRead(host));
    entry.rates.push_back(read_rate);
  }
  if (write_rate > 0) {
    sim_->AddBackground(sim_->resources().DiskWrite(host), write_rate);
    entry.resources.push_back(sim_->resources().DiskWrite(host));
    entry.rates.push_back(write_rate);
  }
  backgrounds_.push_back(std::move(entry));
  return static_cast<int>(backgrounds_.size()) - 1;
}

void Cluster::RemoveDiskLoad(int handle) { RemoveBackgroundPair(handle); }

}  // namespace cloudtalk
