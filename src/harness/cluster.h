// Experiment harness: wires a Topology, the fluid simulation, per-host
// status servers, the probe transport and a CloudTalk server into one
// simulated cluster, mirroring the deployment of Figure 2 (one CloudTalk +
// status server per machine; here one logical CloudTalk server answers all
// queries through the same distributed status plane, which is equivalent in
// the simulation).
//
// The harness also provides the background-load generators the evaluation
// uses (iperf-style line-rate UDP pairs, busy-disk processes) and runs the
// periodic status measurement sweep whose staleness drives the Section 5.5
// oscillation behaviour.
#ifndef CLOUDTALK_SRC_HARNESS_CLUSTER_H_
#define CLOUDTALK_SRC_HARNESS_CLUSTER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/core/directory.h"
#include "src/core/server.h"
#include "src/fluidsim/fluid_simulation.h"
#include "src/status/status_server.h"
#include "src/status/transport.h"
#include "src/topology/topology.h"

namespace cloudtalk {

// UsageSource over the fluid simulation, with a shared per-sweep snapshot so
// refreshing N status servers costs one pass, not N.
class FluidUsageSource : public UsageSource {
 public:
  explicit FluidUsageSource(FluidSimulation* sim) : sim_(sim) {}

  // Recomputes the shared usage snapshot (called once per measurement tick).
  void Refresh() { snapshot_ = sim_->UsageSnapshot(); }

  StatusReport Snapshot(NodeId host) override;

  // Scalar (CPU/memory) load is not derived from the fluid model; the
  // harness sets it explicitly for experiments that need it (Section 7).
  void SetScalarUse(NodeId host, double cpu_cores_used, Bytes mem_used) {
    scalar_use_[host] = {cpu_cores_used, mem_used};
  }

 private:
  FluidSimulation* sim_;
  std::vector<Bps> snapshot_;
  std::unordered_map<NodeId, std::pair<double, Bytes>> scalar_use_;
};

struct ClusterOptions {
  // Interval between status measurements; staleness up to this long.
  Seconds status_period = 100 * kMillisecond;
  SimUdpParams transport;
  ServerConfig server;
  double min_available_fraction = 0.1;
  uint64_t seed = 1;
};

class Cluster {
 public:
  Cluster(Topology topology, ClusterOptions options = {});

  Topology& topology() { return topo_; }
  FluidSimulation& sim() { return *sim_; }
  TopologyDirectory& directory() { return *directory_; }
  // The "default" CloudTalk server (the one next to host 0 — where the
  // HDFS NameNode / MapReduce JobTracker live in the experiments).
  CloudTalkServer& cloudtalk() { return *cloudtalk_; }
  // The CloudTalk server running next to `host` (Figure 2: one per
  // machine). Lazily created; each has its own reservation table, which is
  // why distributed HDFS reads do not oscillate while centralized NameNode
  // writes do (Section 5.5 "Usage patterns").
  CloudTalkServer& cloudtalk_at(NodeId host);
  SimUdpTransport& transport() { return *transport_; }
  Rng& rng() { return rng_; }

  int num_hosts() const { return static_cast<int>(topo_.hosts().size()); }
  NodeId host(int index) const { return topo_.hosts()[index]; }
  const std::string& ip(int index) const { return topo_.IpOf(host(index)); }

  // Begins the periodic measurement sweep (idempotent). Must be called
  // before running experiments that rely on dynamic load information.
  void StartStatusSweep();
  // Immediately refreshes every status server from live usage.
  void MeasureNow();
  // Sets a host's scalar (CPU cores / memory bytes) usage as seen by its
  // status server from the next measurement on (Section 7 extension).
  void SetScalarUse(NodeId host, double cpu_cores_used, Bytes mem_used);

  // ---- Background load generators ----
  // iperf-style inelastic traffic src -> dst at `rate`; returns a handle.
  int AddBackgroundPair(NodeId src, NodeId dst, Bps rate);
  void RemoveBackgroundPair(int handle);
  // A local process hammering the disk (Section 5.3 SSD experiments).
  int AddDiskLoad(NodeId host, Bps read_rate, Bps write_rate);
  void RemoveDiskLoad(int handle);

  // Convenience: runs the simulation.
  void RunUntil(Seconds t) { sim_->RunUntil(t); }
  Seconds now() const { return sim_->now(); }

 private:
  struct BackgroundEntry {
    std::vector<ResourceId> resources;
    std::vector<Bps> rates;  // Parallel to `resources`.
    bool active = false;
  };

  void SweepTick();

  Topology topo_;
  ClusterOptions options_;
  std::unique_ptr<FluidSimulation> sim_;
  std::unique_ptr<FluidUsageSource> usage_source_;
  std::unique_ptr<TopologyDirectory> directory_;
  std::vector<std::unique_ptr<StatusServer>> status_servers_;
  std::unique_ptr<SimUdpTransport> transport_;
  std::unique_ptr<CloudTalkServer> cloudtalk_;
  std::unordered_map<NodeId, std::unique_ptr<CloudTalkServer>> per_host_servers_;
  std::vector<BackgroundEntry> backgrounds_;
  bool sweeping_ = false;
  Rng rng_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_HARNESS_CLUSTER_H_
