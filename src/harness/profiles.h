// Cluster profiles matching the paper's testbeds (Section 5):
//  * LocalGigabitCluster  - 20 machines, 1 Gbps into one switch, fast SSDs.
//  * LocalTenGigCluster   - same machines on the 10 Gbps interconnect, where
//                           "the 10Gbps interconnect can be used to
//                           overwhelm any of our disks".
//  * Ec2Cluster           - c3.large-style instances: ~500 Mbps per VM,
//                           storage considerably faster than the network.
#ifndef CLOUDTALK_SRC_HARNESS_PROFILES_H_
#define CLOUDTALK_SRC_HARNESS_PROFILES_H_

#include "src/topology/topology.h"

namespace cloudtalk {

inline Topology LocalGigabitCluster(int hosts = 20) {
  SingleSwitchParams params;
  params.num_hosts = hosts;
  params.link_capacity = 1 * kGbps;
  params.host_caps.nic_up = 1 * kGbps;
  params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = 4 * kGbps;   // SSD ~500 MB/s.
  params.host_caps.disk_write = 3 * kGbps;  // SSD writes a bit slower.
  return MakeSingleSwitch(params);
}

inline Topology LocalTenGigCluster(int hosts = 20) {
  SingleSwitchParams params;
  params.num_hosts = hosts;
  params.link_capacity = 10 * kGbps;
  params.host_caps.nic_up = 10 * kGbps;
  params.host_caps.nic_down = 10 * kGbps;
  params.host_caps.disk_read = 4 * kGbps;
  params.host_caps.disk_write = 3 * kGbps;
  return MakeSingleSwitch(params);
}

inline Topology Ec2Cluster(int instances = 100) {
  Ec2Params params;
  params.num_instances = instances;
  params.instance_rate = 500 * kMbps;
  params.disk_read = 8 * kGbps;
  params.disk_write = 6 * kGbps;
  return MakeEc2(params);
}

// Swaps `count` hosts' SSDs for HDDs "5 to 10 times slower" (Section 5.3
// map/reduce experiment: four of twenty servers).
inline void DowngradeDisksToHdd(Topology& topo, int count, double slowdown = 7.0) {
  for (int i = 0; i < count && i < static_cast<int>(topo.hosts().size()); ++i) {
    HostCaps& caps = topo.mutable_host_caps(topo.hosts()[i]);
    caps.disk_read /= slowdown;
    caps.disk_write /= slowdown;
  }
}

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_HARNESS_PROFILES_H_
