// Deterministic random number generation helpers.
//
// Every stochastic component in the repository takes an explicit Rng (or a
// seed) so that experiments are reproducible run-to-run.
#ifndef CLOUDTALK_SRC_COMMON_RNG_H_
#define CLOUDTALK_SRC_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace cloudtalk {

class Rng {
 public:
  explicit Rng(uint64_t seed = 1) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // True with probability p.
  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Selects k distinct indices out of [0, n) uniformly at random.
  std::vector<int> SampleWithoutReplacement(int n, int k) {
    std::vector<int> all(n);
    for (int i = 0; i < n; ++i) {
      all[i] = i;
    }
    if (k >= n) {
      return all;
    }
    // Partial Fisher-Yates: only the first k positions need shuffling.
    for (int i = 0; i < k; ++i) {
      std::swap(all[i], all[UniformInt(i, n - 1)]);
    }
    all.resize(k);
    return all;
  }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_COMMON_RNG_H_
