#include "src/common/thread_pool.h"

#include <algorithm>

#include "src/common/lock_registry.h"
#include "src/obs/metrics.h"

namespace cloudtalk {

#if defined(CLOUDTALK_INVARIANTS) && CLOUDTALK_INVARIANTS
namespace {

// Lock roles for the order checker. All batch mutexes share one role: the
// checker cares about the queue-vs-batch ordering, not batch identity.
LockId QueueLockId() {
  static const LockId id = LockRegistry::Instance().Register("thread_pool.queue");
  return id;
}
LockId BatchLockId() {
  static const LockId id = LockRegistry::Instance().Register("thread_pool.batch");
  return id;
}

}  // namespace
#endif

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(0, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    CT_LOCK_TRACE(QueueLockId());
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(static_cast<int>(std::thread::hardware_concurrency()) - 1);
  return pool;
}

int ThreadPool::ResolveThreadCount(int threads) {
  if (threads > 0) {
    return threads;
  }
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, hw);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      CT_LOCK_TRACE(QueueLockId());
      if (stopping_ && queue_.empty()) {
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      CT_OBS_GAUGE_ADD("M400", -1.0);
    }
    task();
  }
}

void ThreadPool::RunShards(Batch& batch, bool stolen) {
  int finished = 0;
  while (true) {
    const int shard = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (shard >= batch.shards) {
      break;
    }
    (*batch.fn)(shard);
    ++finished;
  }
  if (finished > 0) {
    if (stolen) {
      CT_OBS_ADD("M401", finished);
    } else {
      CT_OBS_ADD("M402", finished);
    }
  }
  if (finished > 0 &&
      batch.done.fetch_add(finished, std::memory_order_acq_rel) + finished == batch.shards) {
    // Last shard: wake the caller. The lock pairs with the caller's wait so
    // the notify cannot be lost between its predicate check and sleep.
    std::lock_guard<std::mutex> lock(batch.mutex);
    CT_LOCK_TRACE(BatchLockId());
    batch.all_done.notify_all();
  }
}

void ThreadPool::Run(int shards, const std::function<void(int)>& fn) {
  if (shards <= 0) {
    return;
  }
  // The batch is shared with helper tasks that may outlive this frame's
  // useful work (a helper can be dequeued after all shards are claimed), so
  // it must be heap-allocated and reference-counted.
  CT_OBS_INC("M403");
  auto batch = std::make_shared<Batch>();
  batch->shards = shards;
  batch->fn = &fn;
  const int helpers = std::min(worker_count(), shards - 1);
  if (helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      CT_LOCK_TRACE(QueueLockId());
      for (int i = 0; i < helpers; ++i) {
        queue_.push_back([batch] { RunShards(*batch, /*stolen=*/true); });
      }
      CT_OBS_GAUGE_ADD("M400", static_cast<double>(helpers));
    }
    queue_cv_.notify_all();
  }
  RunShards(*batch, /*stolen=*/false);  // The caller is always one of the lanes.
  std::unique_lock<std::mutex> lock(batch->mutex);
  CT_LOCK_TRACE(BatchLockId());
  batch->all_done.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == batch->shards;
  });
  // `fn` may now be destroyed: every shard has run; late helpers see
  // next >= shards and never touch fn.
}

}  // namespace cloudtalk
