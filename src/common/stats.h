// Small descriptive-statistics helpers used by the experiment harness and
// the benchmark binaries (averages and tail percentiles of completion times).
#ifndef CLOUDTALK_SRC_COMMON_STATS_H_
#define CLOUDTALK_SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace cloudtalk {

// Arithmetic mean; 0 for an empty sample.
double Mean(const std::vector<double>& samples);

// Sample standard deviation; 0 for fewer than two samples.
double StdDev(const std::vector<double>& samples);

// The p-th percentile (p in [0, 100]) using linear interpolation between
// order statistics. Returns 0 for an empty sample. Does not modify `samples`.
double Percentile(std::vector<double> samples, double p);

// Median shorthand.
inline double Median(std::vector<double> samples) { return Percentile(std::move(samples), 50.0); }

double Min(const std::vector<double>& samples);
double Max(const std::vector<double>& samples);

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_COMMON_STATS_H_
