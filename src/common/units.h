// Units used throughout CloudTalk.
//
// All rates are bits-per-second stored as double (the fluid model needs
// fractional rates), sizes are bytes stored as double (queries allow
// arithmetic on sizes), and simulated time is seconds stored as double.
#ifndef CLOUDTALK_SRC_COMMON_UNITS_H_
#define CLOUDTALK_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace cloudtalk {

using Bps = double;      // Bits per second.
using Bytes = double;    // Bytes.
using Seconds = double;  // Simulated seconds.

constexpr Bps kKbps = 1e3;
constexpr Bps kMbps = 1e6;
constexpr Bps kGbps = 1e9;

constexpr Bytes kKB = 1024.0;
constexpr Bytes kMB = 1024.0 * 1024.0;
constexpr Bytes kGB = 1024.0 * 1024.0 * 1024.0;

constexpr Seconds kMillisecond = 1e-3;
constexpr Seconds kMicrosecond = 1e-6;

// Time taken to push `size` bytes through a `rate` bps resource.
constexpr Seconds TransferTime(Bytes size, Bps rate) {
  return rate > 0 ? (size * 8.0) / rate : 1e18;
}

// Rate needed to push `size` bytes in `duration` seconds.
constexpr Bps RateFor(Bytes size, Seconds duration) {
  return duration > 0 ? (size * 8.0) / duration : 0;
}

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_COMMON_UNITS_H_
