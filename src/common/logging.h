// Tiny leveled logger. Disabled (kWarning) by default so that simulations
// stay quiet; benchmarks and examples may raise the level for narration.
#ifndef CLOUDTALK_SRC_COMMON_LOGGING_H_
#define CLOUDTALK_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace cloudtalk {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits `message` to stderr if `level` is at or above the configured level.
void LogMessage(LogLevel level, const std::string& message);

namespace log_internal {

class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  ~LineLogger() { LogMessage(level_, stream_.str()); }
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

}  // namespace cloudtalk

#define CLOUDTALK_LOG(level) ::cloudtalk::log_internal::LineLogger(::cloudtalk::LogLevel::level)

#endif  // CLOUDTALK_SRC_COMMON_LOGGING_H_
