// A small fixed-size worker pool for data-parallel evaluation work.
//
// The CloudTalk evaluation engine partitions a query's binding space into
// shards and runs them concurrently (ISSUE 1 / paper Table 2: answers must
// stay in the hundreds-of-microseconds band even for 2000-server pools).
// The pool is deliberately minimal: a fixed set of workers, a FIFO task
// queue, and a blocking `Run(shards, fn)` fan-out in which the calling
// thread participates, so `Run` never deadlocks even when every worker is
// busy with other batches (concurrent queries share one process-wide pool).
//
// Determinism is the caller's job: shards must not communicate, and the
// caller merges shard results with an order-independent rule (the
// exhaustive evaluator uses (makespan, lowest binding index)).
#ifndef CLOUDTALK_SRC_COMMON_THREAD_POOL_H_
#define CLOUDTALK_SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cloudtalk {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 0). A pool with zero
  // workers is valid: Run() then executes every shard on the caller.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Process-wide pool sized to the hardware (hardware_concurrency - 1
  // workers, the caller thread being the remaining lane). Created on first
  // use; lives for the life of the process.
  static ThreadPool& Shared();

  // Executes fn(0) .. fn(shards - 1), distributing shards over the workers
  // and the calling thread, and returns when all shards have finished.
  // Shards are claimed dynamically (an atomic cursor), so uneven shard
  // costs balance automatically. Safe to call from multiple threads at
  // once; batches interleave on the same workers.
  void Run(int shards, const std::function<void(int)>& fn);

  int worker_count() const { return static_cast<int>(workers_.size()); }

  // threads == 1 -> 1 (serial); threads <= 0 -> hardware concurrency
  // (minimum 1); otherwise the requested count.
  static int ResolveThreadCount(int threads);

 private:
  struct Batch {
    std::atomic<int> next{0};   // Next unclaimed shard.
    std::atomic<int> done{0};   // Completed shards.
    int shards = 0;
    const std::function<void(int)>* fn = nullptr;
    std::mutex mutex;
    std::condition_variable all_done;
  };

  void WorkerLoop();
  // `stolen` marks shards claimed by a pool worker (as opposed to the
  // calling thread's own lane) for the M401/M402 steal-vs-participate split.
  static void RunShards(Batch& batch, bool stolen);

  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_COMMON_THREAD_POOL_H_
