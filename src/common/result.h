// Minimal Result<T> type used for fallible operations (primarily parsing).
//
// The repository avoids exceptions on hot paths; errors carry a
// human-readable message and, when they originate in the parser, a position.
//
// Accessing the wrong arm (value() of a failed result, error() of a
// successful one) is a caller bug; it fires I404/I405 under
// CLOUDTALK_INVARIANTS with the offending state attached, and is unchecked
// in release builds (same cost profile as the assert() it replaces).
#ifndef CLOUDTALK_SRC_COMMON_RESULT_H_
#define CLOUDTALK_SRC_COMMON_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "src/check/check.h"

namespace cloudtalk {

struct Error {
  std::string message;
  int line = 0;    // 1-based; 0 when not applicable.
  int column = 0;  // 1-based; 0 when not applicable.

  std::string ToString() const {
    if (line > 0) {
      return message + " at line " + std::to_string(line) + ", column " + std::to_string(column);
    }
    return message;
  }
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design.
  Result(Error error) : error_(std::move(error)) {}  // NOLINT: implicit by design.

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    // Argument-free on purpose: .With() operands are evaluated even when the
    // condition holds, and value() sits on parser hot paths.
    CT_INVARIANT(ok(), "I404", "Result::value() called on an error result");
    return *value_;
  }
  T& value() & {
    CT_INVARIANT(ok(), "I404", "Result::value() called on an error result");
    return *value_;
  }
  T&& value() && {
    CT_INVARIANT(ok(), "I404", "Result::value() called on an error result");
    return std::move(*value_);
  }

  const Error& error() const {
    CT_INVARIANT(!ok(), "I405", "Result::error() called on an ok result");
    return *error_;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_COMMON_RESULT_H_
