#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cloudtalk {

double Mean(const std::vector<double>& samples) {
  if (samples.empty()) {
    return 0.0;
  }
  return std::accumulate(samples.begin(), samples.end(), 0.0) / static_cast<double>(samples.size());
}

double StdDev(const std::vector<double>& samples) {
  if (samples.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(samples);
  double sum_sq = 0.0;
  for (double s : samples) {
    sum_sq += (s - mean) * (s - mean);
  }
  return std::sqrt(sum_sq / static_cast<double>(samples.size() - 1));
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  if (p <= 0.0) {
    return samples.front();
  }
  if (p >= 100.0) {
    return samples.back();
  }
  const double rank = (p / 100.0) * static_cast<double>(samples.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double Min(const std::vector<double>& samples) {
  return samples.empty() ? 0.0 : *std::min_element(samples.begin(), samples.end());
}

double Max(const std::vector<double>& samples) {
  return samples.empty() ? 0.0 : *std::max_element(samples.begin(), samples.end());
}

}  // namespace cloudtalk
