// Debug-only lock-order and single-writer checking.
//
// TSan catches data races but only on interleavings that actually happen in
// a given run, and it cannot run everywhere (no overlap with ASan, heavy
// slowdown on the paper-scale benches). The LockRegistry gives a cheaper,
// always-deterministic complement for the parallel evaluation engine: every
// traced mutex acquisition records a happens-inside edge (held-lock ->
// acquired-lock) in a global order graph; observing both A->B and B->A —
// even on different threads, even if the runs never actually deadlocked —
// reports a lock-order inversion (L401). A ScopedAccessGuard marks regions
// that the design says have exactly one writer (e.g. the fluid simulator's
// event loop); two threads inside the same AccessCell at once report a
// single-writer violation (L402).
//
// The classes are always compiled (tests drive them directly in both build
// modes); the CT_LOCK_ACQUIRED / CT_ACCESS_GUARD instrumentation macros in
// production code are compiled out unless CLOUDTALK_INVARIANTS is on.
#ifndef CLOUDTALK_SRC_COMMON_LOCK_REGISTRY_H_
#define CLOUDTALK_SRC_COMMON_LOCK_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/check/check.h"

namespace cloudtalk {

using LockId = int;

// Process-wide registry of traced locks and the acquisition-order graph.
class LockRegistry {
 public:
  static LockRegistry& Instance();

  // Registers a lock role (e.g. "thread_pool.queue"). Call once per role and
  // cache the id; function-local statics at the lock site do this naturally.
  LockId Register(const std::string& name);
  std::string Name(LockId id) const;

  // Records that the calling thread acquired / released `id`. OnAcquire
  // adds held->id edges to the order graph and reports L401 (once per lock
  // pair) when the reverse edge already exists. Recursive acquisition of
  // the same role (two mutexes sharing one role id) is allowed and adds no
  // self-edge.
  void OnAcquire(LockId id);
  void OnRelease(LockId id);

  int64_t inversions_detected() const;
  // Clears the order graph and counters (not the registered names); tests
  // use this to isolate constructed inversions from real instrumentation.
  void ResetForTest();

 private:
  LockRegistry() = default;
  // Name lookup for callers already holding mutex_.
  std::string NameLocked(LockId id) const;

  mutable std::mutex mutex_;
  std::vector<std::string> names_;
  std::set<std::pair<LockId, LockId>> edges_;          // held -> acquired
  std::set<std::pair<LockId, LockId>> reported_;       // inversion pairs already reported
  std::atomic<int64_t> inversions_{0};
};

// RAII acquisition trace: records OnAcquire now, OnRelease on destruction.
// Place it immediately after taking the real lock so the held-stack mirrors
// the true lock nesting.
class ScopedLockTrace {
 public:
  explicit ScopedLockTrace(LockId id) : id_(id) { LockRegistry::Instance().OnAcquire(id_); }
  ~ScopedLockTrace() { LockRegistry::Instance().OnRelease(id_); }
  ScopedLockTrace(const ScopedLockTrace&) = delete;
  ScopedLockTrace& operator=(const ScopedLockTrace&) = delete;

 private:
  LockId id_;
};

// Marks state that must only ever be entered by one thread at a time.
// Same-thread reentrancy is fine (depth-counted); a second thread entering
// while the first is inside is a single-writer violation.
class AccessCell {
 public:
  explicit AccessCell(const char* name) : name_(name) {}

  // Returns false (and reports L402) when another thread is inside.
  bool Enter();
  void Exit();
  const char* name() const { return name_; }

 private:
  static constexpr uint64_t kFree = 0;
  const char* name_;
  std::atomic<uint64_t> owner_{kFree};
  int depth_ = 0;  // Only touched by the owning thread.
};

class ScopedAccessGuard {
 public:
  explicit ScopedAccessGuard(AccessCell& cell) : cell_(cell), entered_(cell.Enter()) {}
  ~ScopedAccessGuard() {
    if (entered_) {
      cell_.Exit();
    }
  }
  ScopedAccessGuard(const ScopedAccessGuard&) = delete;
  ScopedAccessGuard& operator=(const ScopedAccessGuard&) = delete;

 private:
  AccessCell& cell_;
  bool entered_;
};

}  // namespace cloudtalk

// Instrumentation points for production code: active only when the
// invariant machinery is compiled in, so release builds take no atomics on
// their lock paths.
#if defined(CLOUDTALK_INVARIANTS) && CLOUDTALK_INVARIANTS
#define CT_CHECK_CONCAT_INNER(a, b) a##b
#define CT_CHECK_CONCAT(a, b) CT_CHECK_CONCAT_INNER(a, b)
#define CT_LOCK_TRACE(id) \
  ::cloudtalk::ScopedLockTrace CT_CHECK_CONCAT(ct_lock_trace_, __LINE__)(id)
#define CT_ACCESS_GUARD(cell) \
  ::cloudtalk::ScopedAccessGuard CT_CHECK_CONCAT(ct_access_guard_, __LINE__)(cell)
#else
// Arguments are not evaluated when off: lock-id helper functions are
// themselves compiled out at the call sites (see thread_pool.cc).
#define CT_LOCK_TRACE(id) \
  do {                    \
  } while (false)
#define CT_ACCESS_GUARD(cell) \
  do {                        \
  } while (false)
#endif

#endif  // CLOUDTALK_SRC_COMMON_LOCK_REGISTRY_H_
