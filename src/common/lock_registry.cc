#include "src/common/lock_registry.h"

#include <algorithm>
#include <thread>

namespace cloudtalk {
namespace {

// Stack of traced lock roles the current thread holds, innermost last.
thread_local std::vector<LockId> t_held;

uint64_t ThreadToken() {
  // Nonzero per-thread token (0 is AccessCell's "free" value).
  return std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
}

}  // namespace

LockRegistry& LockRegistry::Instance() {
  static LockRegistry* registry = new LockRegistry();
  return *registry;
}

LockId LockRegistry::Register(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<LockId>(i);
    }
  }
  names_.push_back(name);
  return static_cast<LockId>(names_.size() - 1);
}

std::string LockRegistry::Name(LockId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < 0 || id >= static_cast<LockId>(names_.size())) {
    return "<unregistered>";
  }
  return names_[id];
}

void LockRegistry::OnAcquire(LockId id) {
  // Collect the violation outside the registry lock: the policy may throw,
  // and sinks may take their own locks.
  std::vector<check::Violation> to_report;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (LockId held : t_held) {
      if (held == id) {
        continue;  // Recursive use of one role (e.g. per-batch mutexes).
      }
      edges_.insert({held, id});
      if (edges_.count({id, held}) != 0) {
        auto pair = std::minmax(held, id);
        if (reported_.insert({pair.first, pair.second}).second) {
          inversions_.fetch_add(1, std::memory_order_relaxed);
          check::Violation v;
          v.code = "L401";
          v.condition = "acquisition order is consistent across threads";
          v.file = __FILE__;
          v.line = __LINE__;
          v.message = "lock-order inversion";
          v.state.emplace_back("held", NameLocked(held));
          v.state.emplace_back("acquiring", NameLocked(id));
          to_report.push_back(std::move(v));
        }
      }
    }
  }
  t_held.push_back(id);
  for (check::Violation& v : to_report) {
    check::ReportViolation(std::move(v));
  }
}

void LockRegistry::OnRelease(LockId id) {
  // Locks release innermost-first in practice; tolerate out-of-order by
  // erasing the last matching entry.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == id) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

std::string LockRegistry::NameLocked(LockId id) const {
  if (id < 0 || id >= static_cast<LockId>(names_.size())) {
    return "<unregistered>";
  }
  return names_[id];
}

int64_t LockRegistry::inversions_detected() const {
  return inversions_.load(std::memory_order_relaxed);
}

void LockRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mutex_);
  edges_.clear();
  reported_.clear();
  inversions_.store(0, std::memory_order_relaxed);
  t_held.clear();
}

bool AccessCell::Enter() {
  const uint64_t me = ThreadToken();
  if (owner_.load(std::memory_order_acquire) == me) {
    ++depth_;
    return true;
  }
  uint64_t expected = kFree;
  if (owner_.compare_exchange_strong(expected, me, std::memory_order_acq_rel)) {
    depth_ = 1;
    return true;
  }
  check::Violation v;
  v.code = "L402";
  v.condition = "one thread inside the guarded region";
  v.file = __FILE__;
  v.line = __LINE__;
  v.message = "single-writer violation";
  v.state.emplace_back("cell", name_);
  v.state.emplace_back("owner_token", std::to_string(expected));
  v.state.emplace_back("this_token", std::to_string(me));
  check::ReportViolation(std::move(v));
  return false;
}

void AccessCell::Exit() {
  if (--depth_ == 0) {
    owner_.store(kFree, std::memory_order_release);
  }
}

}  // namespace cloudtalk
