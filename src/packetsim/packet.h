// Packet representation for the packet-level simulator.
//
// Packets are small value types; a packet carries its source route (the
// sequence of directed-link queues it will traverse) plus TCP metadata.
#ifndef CLOUDTALK_SRC_PACKETSIM_PACKET_H_
#define CLOUDTALK_SRC_PACKETSIM_PACKET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/units.h"

namespace cloudtalk {
namespace packetsim {

using FlowId = int64_t;

enum class PacketType : uint8_t {
  kTcpData,
  kTcpAck,
  kDatagram,  // One-shot message (e.g. web-search request fan-out).
};

inline constexpr Bytes kTcpHeaderBytes = 40;
inline constexpr Bytes kDefaultMss = 1460;  // Payload bytes per data packet.

struct Packet {
  PacketType type = PacketType::kTcpData;
  FlowId flow = -1;
  int64_t seq = 0;      // Data: packet number. ACK: cumulative ack (next expected).
  Bytes size = 0;       // Wire size including headers.
  // Route as indices into the network's queue table, plus current position.
  std::vector<int32_t> route;
  int32_t hop = 0;
};

}  // namespace packetsim
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_PACKETSIM_PACKET_H_
