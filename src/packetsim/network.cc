#include "src/packetsim/network.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace cloudtalk {
namespace packetsim {

// ---------------- LinkQueue ----------------

void LinkQueue::Enqueue(Packet packet) {
  if (queue_.size() >= capacity_ && !net_->params().enable_pfc) {
    ++drops_;
    return;
  }
  // Under PFC the sender was paused before overflow; an occasional packet
  // above the nominal capacity is absorbed (PFC headroom).
  queue_.push_back(std::move(packet));
  if (!busy_) {
    busy_ = true;
    ServiceNext();
  }
}

void LinkQueue::ServiceNext() {
  // Serialize the head packet; at finish, hand it to the pipe (propagation
  // delay) and start on the next one.
  const Packet& head = queue_.front();
  const Seconds tx_time = head.size * 8.0 / rate_;
  net_->events().Schedule(net_->now() + tx_time, [this] { CompleteHead(); });
}

void LinkQueue::CompleteHead() {
  if (net_->params().enable_pfc && !net_->NextHopHasRoom(queue_.front())) {
    // Paused: the downstream port has no room. Hold the head (and, with it,
    // everything behind — head-of-line blocking) and re-check shortly.
    ++pause_events_;
    net_->events().Schedule(net_->now() + net_->params().pfc_poll, [this] { CompleteHead(); });
    return;
  }
  Packet packet = std::move(queue_.front());
  queue_.pop_front();
  net_->events().Schedule(net_->now() + delay_,
                          [this, p = std::move(packet)]() mutable { net_->Forward(std::move(p)); });
  if (queue_.empty()) {
    busy_ = false;
  } else {
    ServiceNext();
  }
}

// ---------------- TCP state ----------------

struct PacketNetwork::TcpSourceState {
  FlowId id = -1;
  std::vector<int32_t> route_out;
  int64_t total_packets = 0;
  Bytes last_payload = 0;  // Payload of the final packet.
  FlowCompletionCb on_complete;

  double cwnd = 2;
  double ssthresh = 1e9;
  int64_t highest_sent = 0;  // Next fresh sequence number to send.
  int64_t acked = 0;         // All packets below this are delivered.
  int dupacks = 0;
  bool in_recovery = false;
  int64_t recovery_point = 0;
  bool done = false;

  // RTT estimation (one outstanding sample at a time).
  Seconds srtt = 0;
  Seconds rttvar = 0;
  Seconds rto = 0;
  int64_t sample_seq = -1;
  Seconds sample_time = 0;
  uint64_t timer_generation = 0;
};

struct PacketNetwork::TcpSinkState {
  FlowId id = -1;
  std::vector<int32_t> route_back;
  int64_t expected = 0;             // Next in-order packet.
  std::set<int64_t> out_of_order;   // Buffered future packets.
};

struct PacketNetwork::DatagramState {
  DatagramCb on_delivery;
};

// ---------------- PacketNetwork ----------------

PacketNetwork::PacketNetwork(const Topology* topo, NetworkParams params)
    : topo_(topo), params_(params), rng_(params.seed) {
  queues_.reserve(topo->num_links());
  for (int l = 0; l < topo->num_links(); ++l) {
    const Link& link = topo->link(l);
    Bps rate = link.capacity;
    int capacity = params_.queue_packets;
    // Access links are clamped to the host NIC caps so per-VM rate limits
    // (EC2 profile) hold in the packet model too.
    if (topo->node(link.from).kind == NodeKind::kHost) {
      rate = std::min(rate, topo->host_caps(link.from).nic_up);
      // A host's egress queue is its NIC/qdisc buffer: effectively deep
      // (Linux txqueuelen-scale), and a local sender is backpressured, not
      // dropped. Shallow buffers belong to switch ports.
      capacity = std::max(capacity, 1000);
    }
    if (topo->node(link.to).kind == NodeKind::kHost) {
      rate = std::min(rate, topo->host_caps(link.to).nic_down);
    }
    queues_.push_back(std::make_unique<LinkQueue>(this, rate, link.delay, capacity));
  }
}

PacketNetwork::~PacketNetwork() = default;

std::vector<int32_t> PacketNetwork::RouteOf(NodeId src, NodeId dst, uint64_t salt) const {
  // Fold the network seed in so ECMP placement varies run to run (flow ids
  // alone are deterministic small integers).
  const uint64_t mixed = salt * 0x9e3779b97f4a7c15ULL + (params_.seed << 17);
  std::vector<int32_t> route;
  for (LinkId link : topo_->PathBetween(src, dst, mixed)) {
    route.push_back(link);
  }
  return route;
}

FlowId PacketNetwork::StartTcpFlow(NodeId src, NodeId dst, Bytes bytes, Seconds at,
                                   FlowCompletionCb on_complete) {
  const FlowId id = next_flow_++;
  auto source = std::make_unique<TcpSourceState>();
  source->id = id;
  source->route_out = RouteOf(src, dst, static_cast<uint64_t>(id));
  source->cwnd = params_.initial_cwnd;
  source->rto = params_.min_rto;
  source->total_packets =
      std::max<int64_t>(1, static_cast<int64_t>(std::ceil(bytes / params_.mss)));
  const Bytes rem = bytes - (source->total_packets - 1) * params_.mss;
  source->last_payload = rem > 0 ? rem : params_.mss;
  source->on_complete = std::move(on_complete);

  auto sink = std::make_unique<TcpSinkState>();
  sink->id = id;
  sink->route_back = RouteOf(dst, src, static_cast<uint64_t>(id));

  sources_.emplace(id, std::move(source));
  sinks_.emplace(id, std::move(sink));
  events_.Schedule(at, [this, id] {
    auto it = sources_.find(id);
    if (it != sources_.end()) {
      TcpSend(*it->second);
      ArmTimer(*it->second);
    }
  });
  return id;
}

FlowId PacketNetwork::StartMultipathFlow(NodeId src, NodeId dst, Bytes bytes, int subflows,
                                         Seconds at, FlowCompletionCb on_complete) {
  subflows = std::max(1, subflows);
  // Shared completion state across subflows.
  auto remaining = std::make_shared<int>(subflows);
  auto first = std::make_shared<FlowId>(-1);
  const Bytes stripe = bytes / subflows;
  for (int s = 0; s < subflows; ++s) {
    const Bytes this_stripe = s == subflows - 1 ? bytes - stripe * (subflows - 1) : stripe;
    const FlowId id = StartTcpFlow(
        src, dst, this_stripe, at,
        [remaining, on_complete, first](FlowId, Seconds t) {
          if (--*remaining == 0 && on_complete) {
            on_complete(*first, t);
          }
        });
    if (*first < 0) {
      *first = id;
    }
  }
  return *first;
}

void PacketNetwork::SendDatagram(NodeId src, NodeId dst, Bytes size, Seconds at,
                                 DatagramCb on_delivery) {
  const FlowId id = next_flow_++;
  auto state = std::make_unique<DatagramState>();
  state->on_delivery = std::move(on_delivery);
  datagrams_.emplace(id, std::move(state));
  std::vector<int32_t> route = RouteOf(src, dst, static_cast<uint64_t>(id));
  events_.Schedule(at, [this, id, route = std::move(route), size] {
    Packet packet;
    packet.type = PacketType::kDatagram;
    packet.flow = id;
    packet.size = size;
    packet.route = route;
    packet.hop = 0;
    Forward(std::move(packet));
  });
}

void PacketNetwork::Forward(Packet packet) {
  if (packet.hop >= static_cast<int32_t>(packet.route.size())) {
    Deliver(packet);
    return;
  }
  const int32_t queue_index = packet.route[packet.hop];
  packet.hop += 1;
  queues_[queue_index]->Enqueue(std::move(packet));
}

void PacketNetwork::Deliver(const Packet& packet) {
  switch (packet.type) {
    case PacketType::kTcpData: {
      auto it = sinks_.find(packet.flow);
      if (it != sinks_.end()) {
        TcpOnData(*it->second, packet);
      }
      return;
    }
    case PacketType::kTcpAck: {
      auto it = sources_.find(packet.flow);
      if (it != sources_.end()) {
        TcpOnAck(*it->second, packet.seq);
      }
      return;
    }
    case PacketType::kDatagram: {
      auto it = datagrams_.find(packet.flow);
      if (it != datagrams_.end()) {
        if (it->second->on_delivery) {
          it->second->on_delivery(now());
        }
        datagrams_.erase(it);
      }
      return;
    }
  }
}

void PacketNetwork::TcpSend(TcpSourceState& src) {
  src.cwnd = std::min(src.cwnd, params_.max_cwnd);
  while (!src.done && src.highest_sent < src.total_packets &&
         src.highest_sent - src.acked < static_cast<int64_t>(src.cwnd)) {
    // Local backpressure: a real sender blocks when its NIC queue is full
    // instead of dropping its own packets; the ACK clock resumes it.
    if (!src.route_out.empty() && !queues_[src.route_out.front()]->HasRoom()) {
      break;
    }
    Packet packet;
    packet.type = PacketType::kTcpData;
    packet.flow = src.id;
    packet.seq = src.highest_sent;
    const Bytes payload =
        packet.seq == src.total_packets - 1 ? src.last_payload : params_.mss;
    packet.size = payload + kTcpHeaderBytes;
    packet.route = src.route_out;
    packet.hop = 0;
    if (src.sample_seq < 0) {
      src.sample_seq = packet.seq;
      src.sample_time = now();
    }
    src.highest_sent += 1;
    Forward(std::move(packet));
  }
}

void PacketNetwork::TcpOnData(TcpSinkState& sink, const Packet& packet) {
  if (packet.seq == sink.expected) {
    sink.expected += 1;
    while (!sink.out_of_order.empty() && *sink.out_of_order.begin() == sink.expected) {
      sink.out_of_order.erase(sink.out_of_order.begin());
      sink.expected += 1;
    }
  } else if (packet.seq > sink.expected) {
    sink.out_of_order.insert(packet.seq);
  }
  Packet ack;
  ack.type = PacketType::kTcpAck;
  ack.flow = sink.id;
  ack.seq = sink.expected;
  ack.size = kTcpHeaderBytes;
  ack.route = sink.route_back;
  ack.hop = 0;
  Forward(std::move(ack));
}

void PacketNetwork::TcpOnAck(TcpSourceState& src, int64_t ack) {
  if (src.done) {
    return;
  }
  if (ack > src.acked) {
    const int64_t newly = ack - src.acked;
    src.acked = ack;
    src.dupacks = 0;
    // RTT sample: the outstanding probe is covered by this ACK.
    if (src.sample_seq >= 0 && ack > src.sample_seq) {
      const Seconds rtt = now() - src.sample_time;
      if (src.srtt == 0) {
        src.srtt = rtt;
        src.rttvar = rtt / 2;
      } else {
        src.rttvar = 0.75 * src.rttvar + 0.25 * std::abs(src.srtt - rtt);
        src.srtt = 0.875 * src.srtt + 0.125 * rtt;
      }
      src.rto = std::max(params_.min_rto, src.srtt + 4 * src.rttvar);
      src.sample_seq = -1;
    }
    if (src.in_recovery && ack >= src.recovery_point) {
      src.in_recovery = false;
      src.cwnd = src.ssthresh;
    } else if (src.in_recovery) {
      // NewReno partial ACK: another packet in the pre-loss window is also
      // missing; retransmit the next hole immediately instead of waiting
      // for an RTO.
      Packet packet;
      packet.type = PacketType::kTcpData;
      packet.flow = src.id;
      packet.seq = src.acked;
      const Bytes payload =
          packet.seq == src.total_packets - 1 ? src.last_payload : params_.mss;
      packet.size = payload + kTcpHeaderBytes;
      packet.route = src.route_out;
      packet.hop = 0;
      if (src.sample_seq >= src.acked) {
        src.sample_seq = -1;  // Sample would span a retransmission.
      }
      Forward(std::move(packet));
    } else {
      if (src.cwnd < src.ssthresh) {
        src.cwnd += newly;  // Slow start.
      } else {
        src.cwnd += newly / src.cwnd;  // Congestion avoidance.
      }
    }
    if (src.acked >= src.total_packets) {
      src.done = true;
      src.timer_generation += 1;  // Disarm pending timer.
      if (src.on_complete) {
        src.on_complete(src.id, now());
      }
      return;
    }
    ArmTimer(src);
    TcpSend(src);
    return;
  }
  // Duplicate ACK.
  src.dupacks += 1;
  if (src.dupacks > 3 && src.in_recovery) {
    // Window inflation: each further dupack signals a departure, so admit
    // one more packet to keep the pipe full during recovery.
    src.cwnd += 1;
    TcpSend(src);
    return;
  }
  if (src.dupacks == 3 && !src.in_recovery) {
    // Fast retransmit + fast recovery.
    const double inflight = static_cast<double>(src.highest_sent - src.acked);
    src.ssthresh = std::max(2.0, inflight / 2.0);
    src.cwnd = src.ssthresh + 3;
    src.in_recovery = true;
    src.recovery_point = src.highest_sent;
    if (src.sample_seq >= src.acked) {
      src.sample_seq = -1;  // Sample packet is being retransmitted.
    }
    Packet packet;
    packet.type = PacketType::kTcpData;
    packet.flow = src.id;
    packet.seq = src.acked;
    const Bytes payload =
        packet.seq == src.total_packets - 1 ? src.last_payload : params_.mss;
    packet.size = payload + kTcpHeaderBytes;
    packet.route = src.route_out;
    packet.hop = 0;
    Forward(std::move(packet));
    ArmTimer(src);
  }
}

void PacketNetwork::ArmTimer(TcpSourceState& src) {
  src.timer_generation += 1;
  const uint64_t generation = src.timer_generation;
  const double jitter =
      params_.rto_jitter > 0 ? rng_.Uniform(-params_.rto_jitter, params_.rto_jitter) : 0.0;
  events_.Schedule(now() + src.rto * (1.0 + jitter), [this, id = src.id, generation] {
    OnTimeout(id, generation);
  });
}

void PacketNetwork::OnTimeout(FlowId flow, uint64_t generation) {
  auto it = sources_.find(flow);
  if (it == sources_.end()) {
    return;
  }
  TcpSourceState& src = *it->second;
  if (src.done || generation != src.timer_generation || src.acked >= src.total_packets) {
    return;
  }
  NoteTimeout();
  // Go-back-N: collapse the window and resend from the hole.
  src.ssthresh = std::max(2.0, src.cwnd / 2.0);
  src.cwnd = 1;
  src.dupacks = 0;
  src.in_recovery = false;
  src.highest_sent = src.acked;
  src.sample_seq = -1;  // An RTT sample across a retransmit would be bogus.
  src.rto = std::min(src.rto * 2, 60.0);
  TcpSend(src);
  ArmTimer(src);
}

bool PacketNetwork::NextHopHasRoom(const Packet& packet) const {
  if (packet.hop >= static_cast<int32_t>(packet.route.size())) {
    return true;  // Endpoint delivery is always possible.
  }
  return queues_[packet.route[packet.hop]]->HasRoom();
}

int64_t PacketNetwork::total_drops() const {
  int64_t drops = 0;
  for (const auto& queue : queues_) {
    drops += queue->drops();
  }
  return drops;
}

int64_t PacketNetwork::total_pauses() const {
  int64_t pauses = 0;
  for (const auto& queue : queues_) {
    pauses += queue->pause_events();
  }
  return pauses;
}

}  // namespace packetsim
}  // namespace cloudtalk
