// Packet-level network simulator (the reproduction's htsim stand-in).
//
// A PacketNetwork instantiates one drop-tail queue per directed topology
// link (queue rate clamped to the attached host's NIC cap on access links),
// routes packets over ECMP shortest paths, and runs TCP Reno sources with
// slow start, fast retransmit and RTO-based recovery. Its purpose in
// CloudTalk is the packet-level query evaluator (Section 4): "very accurate
// and captures packet-level effects such as incast" — the basis of the
// web-search placement study (Section 5.4, Figure 11).
#ifndef CLOUDTALK_SRC_PACKETSIM_NETWORK_H_
#define CLOUDTALK_SRC_PACKETSIM_NETWORK_H_

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/packetsim/event_queue.h"
#include "src/packetsim/packet.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace packetsim {

struct NetworkParams {
  int queue_packets = 50;              // Per-port buffer ("50-packet buffers", §5.4).
  Seconds min_rto = 200 * kMillisecond;  // Classic incast-era minimum RTO.
  double initial_cwnd = 2;             // Packets.
  double max_cwnd = 256;               // Socket-buffer bound, packets.
  Bytes mss = kDefaultMss;
  // Randomization applied to each armed RTO (fractional, +/-). Without it,
  // synchronized incast victims can retransmit in lock-step indefinitely;
  // the default is kept small because incast-era TCP stacks had essentially
  // none — larger values soften the collapse the Figure 11 study measures.
  double rto_jitter = 0.01;
  uint64_t seed = 1;
  // Priority Flow Control (Section 2: "The provider could enable PFC, a
  // layer two mechanism that uses pause messages to prevent loss and
  // completely eliminate incast-related problems. PFC cannot be enabled for
  // all tenants, though, because it reduces throughput for elephant
  // flows."). When on, a queue never drops: a link holds its head packet
  // (pausing, with head-of-line blocking) until the next hop has room.
  bool enable_pfc = false;
  Seconds pfc_poll = 5 * kMicrosecond;  // Pause re-check interval.
};

class PacketNetwork;

// One directed link: drop-tail buffer + serialization + propagation.
class LinkQueue {
 public:
  LinkQueue(PacketNetwork* net, Bps rate, Seconds delay, int capacity_packets)
      : net_(net), rate_(rate), delay_(delay), capacity_(capacity_packets) {}

  void Enqueue(Packet packet);

  int64_t drops() const { return drops_; }
  size_t depth() const { return queue_.size(); }
  bool HasRoom() const { return queue_.size() < capacity_; }
  Bps rate() const { return rate_; }
  int64_t pause_events() const { return pause_events_; }

 private:
  void ServiceNext();
  // After serialization: hand the head packet to the pipe, or — under PFC —
  // pause until the next hop has room.
  void CompleteHead();

  PacketNetwork* net_;
  Bps rate_;
  Seconds delay_;
  size_t capacity_;
  std::deque<Packet> queue_;
  bool busy_ = false;
  int64_t drops_ = 0;
  int64_t pause_events_ = 0;
};

class PacketNetwork {
 public:
  using FlowCompletionCb = std::function<void(FlowId, Seconds)>;
  using DatagramCb = std::function<void(Seconds)>;

  PacketNetwork(const Topology* topo, NetworkParams params);
  ~PacketNetwork();
  PacketNetwork(const PacketNetwork&) = delete;
  PacketNetwork& operator=(const PacketNetwork&) = delete;

  // Starts a TCP transfer of `bytes` from src to dst at absolute time `at`.
  FlowId StartTcpFlow(NodeId src, NodeId dst, Bytes bytes, Seconds at,
                      FlowCompletionCb on_complete = nullptr);

  // MPTCP-style multipath transfer (Section 2: "The best solutions involve
  // changing the end-host stacks to spread high-throughput elephant
  // connections over multiple paths"): the bytes are striped over
  // `subflows` independent TCP subflows, each hashed onto its own ECMP
  // path; completion fires when the last subflow lands. Returns the first
  // subflow's id.
  FlowId StartMultipathFlow(NodeId src, NodeId dst, Bytes bytes, int subflows, Seconds at,
                            FlowCompletionCb on_complete = nullptr);

  // Fires one unreliable datagram; `on_delivery` runs at arrival (never on
  // drop).
  void SendDatagram(NodeId src, NodeId dst, Bytes size, Seconds at,
                    DatagramCb on_delivery = nullptr);

  EventQueue& events() { return events_; }
  Seconds now() const { return events_.now(); }
  void RunUntil(Seconds t) { events_.RunUntil(t); }
  void RunUntilIdle(Seconds hard_deadline = 1e9) { events_.RunUntilIdle(hard_deadline); }

  const NetworkParams& params() const { return params_; }
  int64_t total_drops() const;
  int64_t total_timeouts() const { return total_timeouts_; }
  int64_t total_pauses() const;

  // --- Internal plumbing (used by LinkQueue and the TCP machinery) ---
  void Forward(Packet packet);           // Advance one hop or deliver.
  void Deliver(const Packet& packet);    // Packet reached its final node.
  void NoteTimeout() { ++total_timeouts_; }
  // True when the packet's next hop (if any) can accept it (PFC check).
  bool NextHopHasRoom(const Packet& packet) const;

 private:
  friend class TcpSource;
  struct TcpSourceState;
  struct TcpSinkState;
  struct DatagramState;

  std::vector<int32_t> RouteOf(NodeId src, NodeId dst, uint64_t salt) const;
  void TcpSend(TcpSourceState& src);      // Push packets while cwnd allows.
  void TcpOnAck(TcpSourceState& src, int64_t ack);
  void TcpOnData(TcpSinkState& sink, const Packet& packet);
  void ArmTimer(TcpSourceState& src);
  void OnTimeout(FlowId flow, uint64_t generation);

  const Topology* topo_;
  NetworkParams params_;
  EventQueue events_;
  std::vector<std::unique_ptr<LinkQueue>> queues_;  // Indexed by LinkId.
  std::unordered_map<FlowId, std::unique_ptr<TcpSourceState>> sources_;
  std::unordered_map<FlowId, std::unique_ptr<TcpSinkState>> sinks_;
  std::unordered_map<FlowId, std::unique_ptr<DatagramState>> datagrams_;
  FlowId next_flow_ = 1;
  int64_t total_timeouts_ = 0;
  Rng rng_;
};

}  // namespace packetsim
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_PACKETSIM_NETWORK_H_
