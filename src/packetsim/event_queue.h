// Discrete-event core for the packet-level simulator.
#ifndef CLOUDTALK_SRC_PACKETSIM_EVENT_QUEUE_H_
#define CLOUDTALK_SRC_PACKETSIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace cloudtalk {
namespace packetsim {

class EventQueue {
 public:
  Seconds now() const { return now_; }

  void Schedule(Seconds at, std::function<void()> fn) {
    events_.push(Event{at < now_ ? now_ : at, next_seq_++, std::move(fn)});
  }

  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }

  // Runs events until `t` (inclusive); time ends at t.
  void RunUntil(Seconds t) {
    while (!events_.empty() && events_.top().at <= t) {
      // Copy out before pop: the handler may schedule new events.
      auto fn = events_.top().fn;
      now_ = events_.top().at;
      events_.pop();
      fn();
    }
    if (now_ < t) {
      now_ = t;
    }
  }

  // Runs until no events remain or `hard_deadline` passes.
  void RunUntilIdle(Seconds hard_deadline = 1e9) {
    while (!events_.empty() && events_.top().at <= hard_deadline) {
      auto fn = events_.top().fn;
      now_ = events_.top().at;
      events_.pop();
      fn();
    }
  }

  int64_t processed() const { return next_seq_; }

 private:
  struct Event {
    Seconds at;
    int64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  Seconds now_ = 0;
  int64_t next_seq_ = 0;
};

}  // namespace packetsim
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_PACKETSIM_EVENT_QUEUE_H_
