#include "src/alto/alto.h"

#include <algorithm>
#include <map>

namespace cloudtalk {
namespace alto {

AltoServer::AltoServer(const Topology* topo) : topo_(topo) {
  // Network map: one PID per rack (hosts without rack info share PID 0).
  pid_of_.assign(topo->num_nodes(), 0);
  std::map<int, int> rack_to_pid;
  for (NodeId host : topo->hosts()) {
    const int rack = std::max(0, topo->node(host).rack);
    auto [it, inserted] = rack_to_pid.try_emplace(rack, num_pids_);
    if (inserted) {
      ++num_pids_;
    }
    pid_of_[host] = it->second;
  }
  // Cost map: hop count between one representative host per PID.
  std::vector<NodeId> representative(num_pids_, kInvalidNode);
  for (NodeId host : topo->hosts()) {
    if (representative[pid_of_[host]] == kInvalidNode) {
      representative[pid_of_[host]] = host;
    }
  }
  pid_cost_.assign(num_pids_, std::vector<double>(num_pids_, 0));
  for (int a = 0; a < num_pids_; ++a) {
    for (int b = 0; b < num_pids_; ++b) {
      if (a != b) {
        pid_cost_[a][b] = static_cast<double>(
            topo->PathBetween(representative[a], representative[b]).size());
      }
    }
  }
}

int AltoServer::PidOf(NodeId host) const { return pid_of_[host]; }

double AltoServer::Cost(NodeId a, NodeId b) const {
  return pid_cost_[pid_of_[a]][pid_of_[b]];
}

NodeId AltoServer::SelectEndpoint(NodeId client, const std::vector<NodeId>& candidates,
                                  Rng& rng) const {
  std::vector<NodeId> best;
  double best_cost = 0;
  for (NodeId candidate : candidates) {
    const double cost = Cost(client, candidate);
    if (best.empty() || cost < best_cost) {
      best.assign(1, candidate);
      best_cost = cost;
    } else if (cost == best_cost) {
      best.push_back(candidate);
    }
  }
  if (best.empty()) {
    return kInvalidNode;
  }
  return best[rng.UniformInt(0, static_cast<int64_t>(best.size()) - 1)];
}

std::vector<NodeId> AltoServer::SelectEndpoints(NodeId client,
                                                const std::vector<NodeId>& candidates,
                                                int count, Rng& rng) const {
  // Sort candidates into cost tiers, shuffle within each tier.
  std::vector<std::pair<double, NodeId>> ranked;
  ranked.reserve(candidates.size());
  for (NodeId candidate : candidates) {
    ranked.emplace_back(Cost(client, candidate), candidate);
  }
  // Random tiebreak: shuffle first, then stable-sort by cost.
  std::vector<NodeId> order(candidates.begin(), candidates.end());
  rng.Shuffle(order);
  std::vector<std::pair<double, NodeId>> tiered;
  tiered.reserve(order.size());
  for (NodeId candidate : order) {
    tiered.emplace_back(Cost(client, candidate), candidate);
  }
  std::stable_sort(tiered.begin(), tiered.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<NodeId> chosen;
  for (const auto& [cost, candidate] : tiered) {
    (void)cost;
    if (static_cast<int>(chosen.size()) >= count) {
      break;
    }
    chosen.push_back(candidate);
  }
  return chosen;
}

}  // namespace alto
}  // namespace cloudtalk
