// ALTO baseline (paper Section 3.2).
//
// "We could adopt ideas from IETF ALTO (application-layer traffic
// optimisation) ... ALTO servers run by the operator provide requesting
// applications with a network map and a cost map. The network map is a
// clustering of IP addresses performed by the operator according to its own
// routing policy, and the cost map provides routing costs between clusters.
// ... it fails to capture many-to-one or many-to-many traffic patterns, and
// does not include dynamic load information."
//
// This module implements that strawman faithfully so the evaluation can
// compare it against CloudTalk: the operator clusters hosts by rack (PIDs),
// publishes hop costs between PIDs, and applications pick the lowest-cost
// candidate. No load information, by design.
#ifndef CLOUDTALK_SRC_ALTO_ALTO_H_
#define CLOUDTALK_SRC_ALTO_ALTO_H_

#include <vector>

#include "src/common/rng.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace alto {

class AltoServer {
 public:
  // Builds the network map (rack PIDs) and cost map (path hop counts
  // between PID representatives) from the provider's topology.
  explicit AltoServer(const Topology* topo);

  // The PID (cluster id) the operator assigned to `host`.
  int PidOf(NodeId host) const;

  // Routing cost between two hosts' PIDs (hops; 0 inside one PID).
  double Cost(NodeId a, NodeId b) const;

  // Endpoint selection as an ALTO client does it: the candidate with the
  // lowest cost to `client`; ties broken uniformly at random (that is all
  // the information the protocol provides).
  NodeId SelectEndpoint(NodeId client, const std::vector<NodeId>& candidates, Rng& rng) const;

  // Selects `count` distinct endpoints by increasing cost (random within a
  // cost tier) — the multi-replica variant.
  std::vector<NodeId> SelectEndpoints(NodeId client, const std::vector<NodeId>& candidates,
                                      int count, Rng& rng) const;

  int num_pids() const { return num_pids_; }

 private:
  const Topology* topo_;
  std::vector<int> pid_of_;          // Indexed by NodeId.
  std::vector<std::vector<double>> pid_cost_;
  int num_pids_ = 0;
};

}  // namespace alto
}  // namespace cloudtalk

#endif  // CLOUDTALK_SRC_ALTO_ALTO_H_
