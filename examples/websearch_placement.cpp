// Web-search aggregator placement with the packet-level evaluator
// (Section 5.4).
//
// A two-level scatter-gather search tree must place its two aggregators.
// The query is evaluated with `option packet` + `option static`: CloudTalk
// exhaustively simulates each candidate placement on the packet-level
// simulator (capturing TCP incast) and returns the best pair.
//
//   $ ./websearch_placement
#include <cstdio>
#include <sstream>
#include <string>

#include "src/core/packet_estimator.h"
#include "src/core/server.h"
#include "src/harness/cluster.h"
#include "src/status/transport.h"

using namespace cloudtalk;

int main() {
  // A VL2 fabric mirroring the EC2 deployment: racks of gigabit hosts.
  Vl2Params params;
  params.num_racks = 6;
  params.hosts_per_rack = 20;
  params.host_link = 1 * kGbps;
  Topology topo = MakeVl2(params);
  TopologyDirectory directory(&topo);

  const auto& hosts = topo.hosts();
  const NodeId frontend = hosts[0];
  directory.AddAlias("frontend", frontend);

  // 40 leaves: 20 in rack 1, 20 in rack 2.
  std::ostringstream flows;
  int flow_id = 0;
  auto add_leaves = [&](int first_host, const std::string& agg_var) {
    for (int i = 0; i < 20; ++i) {
      const std::string leaf = "leaf" + std::to_string(first_host + i);
      directory.AddAlias(leaf, hosts[first_host + i]);
      const std::string fa = "fa" + std::to_string(flow_id);
      flows << fa << " " << leaf << " -> " << agg_var << " size 10KB\n";
      if (i == 0) {
        flows << "fm" << flow_id << " " << agg_var
              << " -> frontend size 200KB transfer t(" << fa << ")\n";
      }
      ++flow_id;
    }
  };
  add_leaves(20, "AGG1");  // Rack 1.
  add_leaves(40, "AGG2");  // Rack 2.

  // Candidate aggregator hosts: a few per rack, in different racks.
  std::ostringstream pool;
  for (int rack = 1; rack <= 4; ++rack) {
    for (int i = 0; i < 2; ++i) {
      const int host_index = rack * 20 + 10 + i;
      const std::string name = "cand_r" + std::to_string(rack) + "_" + std::to_string(i);
      directory.AddAlias(name, hosts[host_index]);
      pool << name << " ";
    }
  }

  const std::string query =
      "option packet\noption static\nAGG1 = AGG2 = (" + pool.str() + ")\n" + flows.str();
  std::printf("Placing two aggregators over 40 leaves; candidates: %s\n\n", pool.str().c_str());

  // Wire a CloudTalk server with the packet-level estimator attached.
  PacketLevelEstimator packet_estimator(&topo, &directory);
  SimUdpTransport transport({}, SimUdpParams{}, 1);
  ServerConfig config;
  CloudTalkServer server(config, &directory, &transport, [] { return 0.0; },
                         &packet_estimator);

  auto reply = server.Answer(query);
  if (!reply.ok()) {
    std::fprintf(stderr, "CloudTalk error: %s\n", reply.error().ToString().c_str());
    return 1;
  }
  std::printf("Best placement (exhaustive packet-level search):\n");
  std::printf("  AGG1 -> %s\n", reply.value().binding.at("AGG1").name.c_str());
  std::printf("  AGG2 -> %s\n", reply.value().binding.at("AGG2").name.c_str());
  std::printf("  predicted query delay: %.3f s\n", reply.value().estimate.makespan);
  return 0;
}
