// HDFS replica placement with and without CloudTalk (Section 5.3 scenario).
//
// Half the cluster is busy moving data. Each idle machine writes a 768 MB
// file (3 x 256 MB blocks, 3-way replicated). Baseline HDFS picks remote
// replicas at random and keeps landing on busy nodes; CloudTalk-enabled
// HDFS asks before placing.
//
//   $ ./hdfs_replica_placement
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/cluster.h"
#include "src/harness/profiles.h"
#include "src/hdfs/mini_hdfs.h"

using namespace cloudtalk;

namespace {

std::vector<double> RunWrites(bool use_cloudtalk, uint64_t seed) {
  ClusterOptions options;
  options.seed = seed;
  Cluster cluster(LocalGigabitCluster(20), options);
  cluster.StartStatusSweep();

  // Hosts 10..19 are busy blasting each other at ~line rate.
  for (int i = 10; i < 20; i += 2) {
    cluster.AddBackgroundPair(cluster.host(i), cluster.host(i + 1), 900 * kMbps);
    cluster.AddBackgroundPair(cluster.host(i + 1), cluster.host(i), 900 * kMbps);
  }
  cluster.RunUntil(0.5);

  HdfsOptions hdfs_options;
  hdfs_options.cloudtalk_writes = use_cloudtalk;
  MiniHdfs hdfs(&cluster, hdfs_options);

  std::vector<double> durations;
  int outstanding = 0;
  for (int client = 0; client < 10; ++client) {
    ++outstanding;
    hdfs.WriteFile(cluster.host(client), "file" + std::to_string(client), 768 * kMB,
                   [&durations, &outstanding](Seconds start, Seconds end) {
                     durations.push_back(end - start);
                     --outstanding;
                   });
  }
  cluster.RunUntil(cluster.now() + 600);
  if (outstanding > 0) {
    std::fprintf(stderr, "warning: %d writes unfinished\n", outstanding);
  }
  return durations;
}

}  // namespace

int main() {
  std::printf("Writing 768MB x 10 clients on a 20-node cluster, 10 busy nodes\n\n");
  std::printf("%-22s %10s %10s %10s\n", "policy", "avg (s)", "p99 (s)", "max (s)");
  for (const bool use_cloudtalk : {false, true}) {
    const std::vector<double> durations = RunWrites(use_cloudtalk, 42);
    std::printf("%-22s %10.2f %10.2f %10.2f\n",
                use_cloudtalk ? "cloudtalk placement" : "random placement",
                Mean(durations), Percentile(durations, 99), Max(durations));
  }
  std::printf("\nCloudTalk avoids pipelines through the busy half of the cluster.\n");
  return 0;
}
