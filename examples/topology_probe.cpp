// Tenant-style topology probing (paper Section 3).
//
// Plays the role of a tenant who rented VMs on an opaque cloud and maps the
// topology the way the paper's authors mapped EC2: traceroute hop counts +
// ping RTTs, clustered into racks. Then demonstrates why the follow-up step
// (capacity probing) misleads once several tenants do it at once.
//
//   $ ./topology_probe
#include <cstdio>
#include <vector>

#include "src/fluidsim/fluid_simulation.h"
#include "src/probing/prober.h"

using namespace cloudtalk;

int main() {
  // The hidden truth: a 6-rack VL2; the tenant holds 24 scattered VMs.
  Vl2Params params;
  params.num_racks = 6;
  params.hosts_per_rack = 8;
  const Topology topo = MakeVl2(params);
  std::vector<NodeId> vms;
  for (int i = 0; i < 24; ++i) {
    vms.push_back(topo.hosts()[(i * 7) % topo.hosts().size()]);
  }

  probing::NetworkProber prober(&topo, /*seed=*/7);
  std::printf("Probing %zu VMs with pairwise traceroute/ping...\n\n", vms.size());
  const auto hops = prober.HopMatrix(vms);
  const std::vector<int> inferred = probing::InferRacks(hops);

  std::printf("%6s %-12s %12s %12s\n", "vm", "address", "true rack", "inferred");
  for (size_t i = 0; i < vms.size(); ++i) {
    std::printf("%6zu %-12s %12d %12d\n", i, topo.IpOf(vms[i]).c_str(),
                topo.node(vms[i]).rack, inferred[i]);
  }
  std::printf("\ninference accuracy (same-rack relation): %.1f%%\n",
              probing::RackInferenceAccuracy(topo, vms, inferred) * 100);

  // Capacity probing goes wrong under concurrency.
  std::printf("\nCapacity probing the same host, 1 vs 4 concurrent tenants:\n");
  for (const int tenants : {1, 4}) {
    FluidSimulation sim(&topo);
    std::vector<double> measured;
    for (int t = 0; t < tenants; ++t) {
      probing::StartCapacityProbe(&sim, vms[2 + t], vms[0], 20 * kMB,
                                  [&measured](Bps bw) { measured.push_back(bw / 1e6); });
    }
    sim.RunUntilIdle();
    double total = 0;
    for (double m : measured) {
      total += m;
    }
    std::printf("  %d tenant(s): each measures ~%.0f Mbps (true capacity: 1000 Mbps)\n",
                tenants, total / tenants);
  }
  std::printf("\nStatic structure is inferable; live capacity is not — the gap CloudTalk"
              "\nfills without giving the tenant raw load data.\n");
  return 0;
}
