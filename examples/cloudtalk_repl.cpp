// Interactive CloudTalk console.
//
// Builds a simulated cluster and answers CloudTalk queries typed on stdin.
// Enter a query (multiple lines) and finish it with an empty line. Dot
// commands manage the cluster:
//
//   .hosts                  list hosts, addresses, and live I/O status
//   .load <i> <j> <mbps>    add iperf-style traffic host i -> host j
//   .cpu <i> <cores>        set host i's CPU usage (Section 7 scalars)
//   .quote                  toggle quote mode (price instead of bind)
//   .help                   this text
//   .quit
//
// Example session:
//   .load 1 2 900
//   A = (10.0.0.2 10.0.0.4)
//   f1 A -> 10.0.0.5 size 256M
//   <empty line>
//   => A -> 10.0.0.4
//
//   $ ./cloudtalk_repl [num_hosts]
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "src/harness/cluster.h"
#include "src/harness/profiles.h"

using namespace cloudtalk;

namespace {

void PrintHosts(Cluster& cluster) {
  cluster.MeasureNow();
  auto outcome = cluster.transport().Probe(cluster.topology().hosts(), 0.1);
  std::printf("%4s %-14s %10s %10s %10s %10s\n", "#", "address", "tx Mbps", "rx Mbps",
              "diskR", "diskW");
  for (int i = 0; i < cluster.num_hosts(); ++i) {
    const NodeId h = cluster.host(i);
    const auto it = outcome.reports.find(h);
    if (it == outcome.reports.end()) {
      continue;
    }
    std::printf("%4d %-14s %10.0f %10.0f %10.0f %10.0f\n", i, cluster.ip(i).c_str(),
                it->second.nic_tx_use / 1e6, it->second.nic_rx_use / 1e6,
                it->second.disk_read_use / 1e6, it->second.disk_write_use / 1e6);
  }
}

void Help() {
  std::printf(
      "Type a CloudTalk query over one or more lines; submit with an empty line.\n"
      "Commands: .hosts | .load <i> <j> <mbps> | .cpu <i> <cores> | .quote | .help | .quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int hosts = argc > 1 ? std::atoi(argv[1]) : 20;
  Cluster cluster(LocalGigabitCluster(hosts));
  cluster.StartStatusSweep();
  std::printf("CloudTalk console: %d-host simulated gigabit cluster (addresses 10.0.0.x)\n",
              hosts);
  Help();

  bool quote_mode = false;
  std::string buffer;
  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line[0] == '.') {
      std::istringstream cmd(line);
      std::string word;
      cmd >> word;
      if (word == ".quit" || word == ".exit") {
        break;
      } else if (word == ".help") {
        Help();
      } else if (word == ".hosts") {
        PrintHosts(cluster);
      } else if (word == ".quote") {
        quote_mode = !quote_mode;
        std::printf("quote mode %s\n", quote_mode ? "on" : "off");
      } else if (word == ".load") {
        int i = -1;
        int j = -1;
        double mbps = 0;
        cmd >> i >> j >> mbps;
        if (i >= 0 && i < hosts && j >= 0 && j < hosts && i != j && mbps > 0) {
          cluster.AddBackgroundPair(cluster.host(i), cluster.host(j), mbps * kMbps);
          cluster.MeasureNow();
          std::printf("added %0.f Mbps %s -> %s\n", mbps, cluster.ip(i).c_str(),
                      cluster.ip(j).c_str());
        } else {
          std::printf("usage: .load <i> <j> <mbps>\n");
        }
      } else if (word == ".cpu") {
        int i = -1;
        double cores = 0;
        cmd >> i >> cores;
        if (i >= 0 && i < hosts) {
          cluster.SetScalarUse(cluster.host(i), cores, 0);
          cluster.MeasureNow();
          std::printf("host %d now uses %.1f cores\n", i, cores);
        } else {
          std::printf("usage: .cpu <i> <cores>\n");
        }
      } else {
        std::printf("unknown command; .help for help\n");
      }
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (!line.empty()) {
      buffer += line;
      buffer += '\n';
      std::printf("| ");
      std::fflush(stdout);
      continue;
    }
    if (buffer.empty()) {
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    // Submit the buffered query. Let a little simulated time pass first so
    // reservation holds from earlier queries expire the way they would
    // between real requests.
    cluster.RunUntil(cluster.now() + 1.0);
    if (quote_mode) {
      auto quote = cluster.cloudtalk().Quote(buffer);
      if (!quote.ok()) {
        std::printf("error: %s\n", quote.error().ToString().c_str());
      } else {
        for (const auto& [var, endpoint] : quote.value().binding) {
          std::printf("  %s -> %s\n", var.c_str(), endpoint.name.c_str());
        }
        std::printf("  est. completion %.2f s, %.2f GiB moved, %d endpoints, price %.6f\n",
                    quote.value().estimate.makespan,
                    quote.value().bytes_moved / (1024.0 * 1024 * 1024),
                    quote.value().endpoints, quote.value().price);
      }
    } else {
      auto reply = cluster.cloudtalk().Answer(buffer);
      if (!reply.ok()) {
        std::printf("error: %s\n", reply.error().ToString().c_str());
      } else {
        for (const auto& warning : reply.value().warnings) {
          std::printf("  %d:%d: warning: %s [%s]\n", warning.span.line, warning.span.column,
                      warning.message.c_str(), warning.code.c_str());
        }
        for (const auto& [var, endpoint] : reply.value().binding) {
          std::printf("  %s -> %s\n", var.c_str(), endpoint.name.c_str());
        }
        std::printf("  (%d probes, %lld B)\n", reply.value().probe_stats.requests_sent,
                    static_cast<long long>(reply.value().probe_stats.bytes_sent +
                                           reply.value().probe_stats.bytes_received));
      }
    }
    buffer.clear();
    std::printf("> ");
    std::fflush(stdout);
  }
  std::printf("bye\n");
  return 0;
}
