// Quickstart: the Figure 2 scenario end to end.
//
// A tenant VM wants to read a 256 MB file whose replicas live on two other
// VMs. Instead of probing the network itself, it describes the choice to
// CloudTalk and gets back the best replica.
//
//   $ ./quickstart
//
// The example builds a small simulated cluster, loads one replica's uplink
// with iperf-style traffic, issues the query from the paper, and shows that
// CloudTalk steers the read to the idle replica.
#include <cstdio>

#include "src/harness/cluster.h"
#include "src/harness/profiles.h"

using namespace cloudtalk;

int main() {
  // A 20-machine gigabit cluster (the paper's local testbed).
  Cluster cluster(LocalGigabitCluster(20));
  cluster.StartStatusSweep();

  // vm1 wants to read file f; replicas live on vm2 and vm3.
  const NodeId vm1 = cluster.host(1);
  const NodeId vm2 = cluster.host(2);
  const NodeId vm3 = cluster.host(3);

  // Make vm2 busy: it is already serving ~900 Mbps to someone else.
  cluster.AddBackgroundPair(vm2, cluster.host(4), 900 * kMbps);
  cluster.RunUntil(0.5);  // Let a couple of measurement sweeps observe it.

  // The query from Figure 2, verbatim (with real addresses).
  const std::string query =
      "A = (" + cluster.topology().IpOf(vm2) + " " + cluster.topology().IpOf(vm3) + ")\n" +
      "f1 A -> " + cluster.topology().IpOf(vm1) + " size 256M\n";
  std::printf("Query:\n%s\n", query.c_str());

  auto reply = cluster.cloudtalk().Answer(query);
  if (!reply.ok()) {
    std::fprintf(stderr, "CloudTalk error: %s\n", reply.error().ToString().c_str());
    return 1;
  }
  std::printf("CloudTalk binds A -> %s\n", reply.value().binding.at("A").name.c_str());
  std::printf("  (vm2 = %s is busy, vm3 = %s is idle)\n",
              cluster.topology().IpOf(vm2).c_str(), cluster.topology().IpOf(vm3).c_str());
  std::printf("Probe traffic: %d requests (%lld B), %d replies (%lld B)\n",
              reply.value().probe_stats.requests_sent,
              static_cast<long long>(reply.value().probe_stats.bytes_sent),
              reply.value().probe_stats.replies_received,
              static_cast<long long>(reply.value().probe_stats.bytes_received));

  const bool correct = reply.value().binding.at("A").name == cluster.topology().IpOf(vm3);
  std::printf("%s\n", correct ? "OK: CloudTalk picked the idle replica."
                              : "UNEXPECTED: busy replica selected.");
  return correct ? 0 : 1;
}
