// MapReduce sort with all CloudTalk optimisations (Section 5.3 "Map/reduce").
//
// Four of twenty servers have slow HDDs. The sort job is run twice: with
// stock scheduling and with CloudTalk guiding map sources, reduce placement
// and output replica selection.
//
//   $ ./mapreduce_sort
#include <cstdio>
#include <vector>

#include "src/common/stats.h"
#include "src/harness/cluster.h"
#include "src/harness/profiles.h"
#include "src/hdfs/mini_hdfs.h"
#include "src/mapred/mini_mapreduce.h"

using namespace cloudtalk;

namespace {

JobStats RunSort(bool use_cloudtalk, uint64_t seed) {
  Topology topo = LocalGigabitCluster(20);
  DowngradeDisksToHdd(topo, 4, 8.0);
  ClusterOptions options;
  options.seed = seed;
  Cluster cluster(std::move(topo), options);
  cluster.StartStatusSweep();

  HdfsOptions hdfs_options;
  hdfs_options.block_size = 128 * kMB;
  hdfs_options.cloudtalk_writes = use_cloudtalk;
  MiniHdfs hdfs(&cluster, hdfs_options);

  // 512 MB of input per node in 128 MB splits, replicas spread round-robin
  // (the randomwriter step runs with optimisations off, per the paper).
  const int blocks = 20 * 4;
  std::vector<std::vector<NodeId>> replicas(blocks);
  for (int b = 0; b < blocks; ++b) {
    for (int r = 0; r < 3; ++r) {
      replicas[b].push_back(cluster.host((b + r * 7) % 20));
    }
  }
  hdfs.InstallFile("input", static_cast<Bytes>(blocks) * 128 * kMB, std::move(replicas));

  MapRedOptions mr_options;
  mr_options.cloudtalk_map = use_cloudtalk;
  mr_options.cloudtalk_reduce = use_cloudtalk;
  MiniMapReduce mr(&cluster, &hdfs, mr_options);
  JobStats stats;
  bool done = false;
  mr.RunJob("input", 10, [&](const JobStats& s) {
    stats = s;
    done = true;
  });
  cluster.RunUntil(cluster.now() + 3600);
  if (!done) {
    std::fprintf(stderr, "warning: job did not finish\n");
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("Sort: 10GB over 20 nodes, 4 slow HDDs, 10 reducers\n\n");
  std::printf("%-12s %12s %12s %14s %10s\n", "policy", "finish (s)", "sync (s)",
              "avg shuffle", "non-local");
  for (const bool use_cloudtalk : {false, true}) {
    const JobStats stats = RunSort(use_cloudtalk, 17);
    std::printf("%-12s %12.1f %12.1f %14.1f %10d\n",
                use_cloudtalk ? "cloudtalk" : "baseline", stats.finished - stats.started,
                stats.synced - stats.started, Mean(stats.shuffle_durations),
                stats.non_local_maps);
  }
  std::printf("\nCloudTalk steers I/O away from the slow drives.\n");
  return 0;
}
