// Distributed deployment demo: real UDP status daemons.
//
// Runs one UdpStatusDaemon per "machine" on localhost (the per-hypervisor
// status server of Figure 2), then lets a CloudTalkServer answer a query by
// scatter-gathering live 64-byte probes / 78-byte replies over real
// sockets.
//
//   $ ./distributed_status
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/server.h"
#include "src/status/udp_transport.h"
#include "src/topology/topology.h"

using namespace cloudtalk;

namespace {

// A thread-safe usage source whose load we can set per host.
class DemoSource : public UsageSource {
 public:
  explicit DemoSource(const Topology* topo) : topo_(topo) {}
  StatusReport Snapshot(NodeId host) override {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = usage_.find(host);
    StatusReport report = StatusReport::Idle(host, topo_->host_caps(host));
    if (it != usage_.end()) {
      report.nic_tx_use = it->second;
      report.nic_rx_use = it->second;
    }
    return report;
  }
  void SetLoad(NodeId host, Bps usage) {
    std::lock_guard<std::mutex> lock(mutex_);
    usage_[host] = usage;
  }

 private:
  const Topology* topo_;
  std::mutex mutex_;
  std::unordered_map<NodeId, Bps> usage_;
};

}  // namespace

int main() {
  SingleSwitchParams params;
  params.num_hosts = 8;
  Topology topo = MakeSingleSwitch(params);
  TopologyDirectory directory(&topo);
  DemoSource source(&topo);

  // One UDP daemon per host, bound to ephemeral loopback ports.
  std::vector<std::unique_ptr<UdpStatusDaemon>> daemons;
  UdpSocketTransport transport;
  if (!transport.Open()) {
    std::fprintf(stderr, "cannot open client socket\n");
    return 1;
  }
  for (NodeId host : topo.hosts()) {
    const uint32_t ip = PackIpv4(topo.IpOf(host));
    daemons.push_back(std::make_unique<UdpStatusDaemon>(host, ip, &source));
    if (!daemons.back()->Start()) {
      std::fprintf(stderr, "cannot start daemon for host %d\n", host);
      return 1;
    }
    transport.Register(host, ip, daemons.back()->port());
    std::printf("status daemon for %-12s on 127.0.0.1:%u\n", topo.IpOf(host).c_str(),
                daemons.back()->port());
  }

  // Make replica candidates 1 and 2 busy, 3 idle.
  source.SetLoad(topo.hosts()[1], 900 * kMbps);
  source.SetLoad(topo.hosts()[2], 700 * kMbps);

  ServerConfig config;
  CloudTalkServer server(config, &directory, &transport, [] { return 0.0; });
  const std::string query = "A = (" + topo.IpOf(topo.hosts()[1]) + " " +
                            topo.IpOf(topo.hosts()[2]) + " " + topo.IpOf(topo.hosts()[3]) +
                            ")\nf1 A -> " + topo.IpOf(topo.hosts()[0]) + " size 256M\n";
  std::printf("\nQuery:\n%s\n", query.c_str());
  auto reply = server.Answer(query);
  if (!reply.ok()) {
    std::fprintf(stderr, "CloudTalk error: %s\n", reply.error().ToString().c_str());
    return 1;
  }
  std::printf("CloudTalk binds A -> %s (expected the idle %s)\n",
              reply.value().binding.at("A").name.c_str(),
              topo.IpOf(topo.hosts()[3]).c_str());
  std::printf("probes: %d sent / %d answered over real UDP\n",
              reply.value().probe_stats.requests_sent,
              reply.value().probe_stats.replies_received);
  int64_t served = 0;
  for (const auto& daemon : daemons) {
    served += daemon->requests_served();
  }
  std::printf("daemons served %lld requests total\n", static_cast<long long>(served));
  return reply.value().binding.at("A").name == topo.IpOf(topo.hosts()[3]) ? 0 : 1;
}
