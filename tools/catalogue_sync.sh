#!/usr/bin/env sh
# Catalogue-sync check: the stable diagnostic/metric/pass/invariant codes each
# binary advertises must all be documented, and the docs must not reference
# codes the binaries no longer know about.
#
#   catalogue_sync.sh <ctlint> <ctopt> <ctcheck> <ctstat> <repo_root>
#
# Forward direction (binary -> docs):
#   ctlint --rules    E/W lint rules        -> docs/LANGUAGE.md
#   ctopt --list      O optimisation passes -> DESIGN.md
#   ctcheck --catalog D/I/L invariants      -> DESIGN.md
#   ctstat --catalog  M metrics             -> docs/OBSERVABILITY.md
#
# Reverse direction (docs -> binary): every O/D/I/L/M code mentioned anywhere
# in DESIGN.md, docs/LANGUAGE.md, docs/OBSERVABILITY.md, or README.md must
# exist in the corresponding binary listing.  E/W codes are exempt from the
# reverse check because the parser and semantic analyser own E00x codes that
# are documented but are not lint rules.
#
# Exit 0 when in sync, 1 on drift, 2 on usage/setup errors.
set -u

if [ "$#" -ne 5 ]; then
  echo "usage: catalogue_sync.sh <ctlint> <ctopt> <ctcheck> <ctstat> <repo_root>" >&2
  exit 2
fi
CTLINT=$1
CTOPT=$2
CTCHECK=$3
CTSTAT=$4
ROOT=$5

for bin in "$CTLINT" "$CTOPT" "$CTCHECK" "$CTSTAT"; do
  if [ ! -x "$bin" ]; then
    echo "catalogue_sync: not executable: $bin" >&2
    exit 2
  fi
done
for doc in "$ROOT/DESIGN.md" "$ROOT/docs/LANGUAGE.md" "$ROOT/docs/OBSERVABILITY.md" "$ROOT/README.md"; do
  if [ ! -f "$doc" ]; then
    echo "catalogue_sync: missing doc: $doc" >&2
    exit 2
  fi
done

TMPDIR_SYNC=$(mktemp -d) || exit 2
trap 'rm -rf "$TMPDIR_SYNC"' EXIT

"$CTLINT" --rules   | awk '{print $1}' | sort -u > "$TMPDIR_SYNC/lint.txt"  || exit 2
"$CTOPT"  --list    | awk '{print $1}' | sort -u > "$TMPDIR_SYNC/opt.txt"   || exit 2
"$CTCHECK" --catalog | awk '{print $1}' | sort -u > "$TMPDIR_SYNC/check.txt" || exit 2
"$CTSTAT" --catalog | awk '{print $1}' | sort -u > "$TMPDIR_SYNC/stat.txt"  || exit 2
for f in lint opt check stat; do
  if [ ! -s "$TMPDIR_SYNC/$f.txt" ]; then
    echo "catalogue_sync: empty catalogue from $f listing" >&2
    exit 2
  fi
done

fail=0

# Forward: every advertised code appears in its documentation table.
check_forward() {
  # $1 = codes file, $2 = doc path, $3 = source label
  while IFS= read -r code; do
    if ! grep -q "\b$code\b" "$2"; then
      echo "catalogue_sync: $3 advertises $code but $(basename "$2") does not document it"
      fail=1
    fi
  done < "$1"
}
check_forward "$TMPDIR_SYNC/lint.txt"  "$ROOT/docs/LANGUAGE.md"      "ctlint --rules"
check_forward "$TMPDIR_SYNC/opt.txt"   "$ROOT/DESIGN.md"             "ctopt --list"
check_forward "$TMPDIR_SYNC/check.txt" "$ROOT/DESIGN.md"             "ctcheck --catalog"
check_forward "$TMPDIR_SYNC/stat.txt"  "$ROOT/docs/OBSERVABILITY.md" "ctstat --catalog"

# Reverse: O/D/I/L/M codes referenced by the docs must still exist.
cat "$TMPDIR_SYNC/opt.txt" "$TMPDIR_SYNC/check.txt" "$TMPDIR_SYNC/stat.txt" \
  | sort -u > "$TMPDIR_SYNC/known.txt"
grep -hoE '\b[ODILM][0-9]{3}\b' \
    "$ROOT/DESIGN.md" "$ROOT/docs/LANGUAGE.md" "$ROOT/docs/OBSERVABILITY.md" \
    "$ROOT/README.md" | sort -u > "$TMPDIR_SYNC/doc_codes.txt"
while IFS= read -r code; do
  if ! grep -qx "$code" "$TMPDIR_SYNC/known.txt"; then
    echo "catalogue_sync: docs reference $code but no binary advertises it"
    fail=1
  fi
done < "$TMPDIR_SYNC/doc_codes.txt"

if [ "$fail" -ne 0 ]; then
  echo "catalogue_sync: drift detected between binary catalogues and docs" >&2
  exit 1
fi
echo "catalogue_sync: $(wc -l < "$TMPDIR_SYNC/lint.txt" | tr -d ' ') lint rules," \
     "$(wc -l < "$TMPDIR_SYNC/opt.txt" | tr -d ' ') passes," \
     "$(wc -l < "$TMPDIR_SYNC/check.txt" | tr -d ' ') invariants," \
     "$(wc -l < "$TMPDIR_SYNC/stat.txt" | tr -d ' ') metrics in sync with docs"
exit 0
