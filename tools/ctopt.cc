// ctopt: static query-optimisation report and verification tool.
//
// Runs the src/lang/opt passes over a query and shows what the exhaustive
// engine would prune: requirement-infeasible candidates (O100), symmetric
// variable orbits (O200), independent components and inert variables
// (O300), and dead flows folded out of the memo signature (O400). Unless
// told otherwise it then *executes* the search twice — optimisation off and
// on — against a synthetic all-idle status snapshot and verifies the
// byte-identity contract: same winning binding, bit-identical estimate.
//
//   ctopt query.ct               remarks + plan summary + identity check
//   ctopt --report query.ct      remarks + plan summary only (no execution)
//   ctopt --json query.ct        machine-readable remarks and plan for CI
//   ctopt --passes O100,O400 q.ct  run a subset of the passes
//   ctopt --no-exec query.ct     skip the differential execution check
//   ctopt --list                 list registered passes and exit
//   ctopt -                      read the query from stdin
//
// Exit code: 0 = ok, 1 = identity check failed (a pass is unsound — file a
// bug), 2 = unusable input or usage error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/exhaustive.h"
#include "tools/cli_common.h"
#include "src/lang/diagnostics.h"
#include "src/lang/opt.h"
#include "src/lang/parser.h"

namespace {

using cloudtalk::ExhaustiveParams;
using cloudtalk::ExhaustiveResult;
using cloudtalk::FlowLevelEstimator;
using cloudtalk::NodeId;
using cloudtalk::Result;
using cloudtalk::StatusByAddress;
using cloudtalk::StatusReport;
using cloudtalk::lang::CompiledQuery;
using cloudtalk::lang::DiagnosticSink;
using cloudtalk::lang::Endpoint;
using cloudtalk::lang::OptimizeParams;
using cloudtalk::lang::OptPass;
using cloudtalk::lang::OptPasses;
using cloudtalk::lang::PrunedSpace;
using cloudtalk::lang::Query;

struct Options {
  bool json = false;
  bool report_only = false;
  bool no_exec = false;
  uint32_t passes = cloudtalk::lang::kOptAllPasses;
  std::vector<std::string> files;
};

// Above this the unoptimised reference walk is too slow to be a check.
constexpr double kExecSpaceLimit = 1e6;

void PrintUsage(std::ostream& os) {
  os << "usage: ctopt [--report] [--json] [--no-exec] [--passes O100,...] <query.ct ...|->\n"
        "       ctopt --list\n"
        "\n"
        "Static optimisation report for CloudTalk queries: shows which parts\n"
        "of the exhaustive binding space the src/lang/opt passes prune, and\n"
        "verifies that the pruned search returns a byte-identical answer.\n"
        "\n"
        "  --report     print remarks and the plan summary; skip execution\n"
        "  --json       machine-readable output (one JSON object per input)\n"
        "  --no-exec    alias for --report\n"
        "  --passes L   comma-separated pass codes to run (default: all)\n"
        "  --list       list registered passes and exit\n"
        "  -            read a query from standard input\n"
        "\n"
        "exit code: 0 = ok, 1 = identity check failed, 2 = unusable input\n";
}

void PrintPasses() {
  for (const OptPass& pass : OptPasses()) {
    std::cout << pass.code << "  " << pass.name << ": " << pass.summary << "\n";
  }
}

// Parses "O100,O200" into a pass bitmask; returns false on an unknown code.
bool ParsePassList(const std::string& list, uint32_t* passes) {
  *passes = 0;
  std::istringstream in(list);
  std::string code;
  while (std::getline(in, code, ',')) {
    bool found = false;
    for (const OptPass& pass : OptPasses()) {
      if (code == pass.code) {
        *passes |= pass.bit;
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "ctopt: unknown pass '" << code << "' (try --list)\n";
      return false;
    }
  }
  return true;
}

// All-idle synthetic snapshot: every address the query can touch reports a
// 1 Gbps NIC, a 4 Gbps disk, and no scalar-resource information — the same
// defaults the tests use. Deterministic, so reports are snapshot-stable.
StatusByAddress SynthesizeIdleStatus(const CompiledQuery& compiled) {
  StatusByAddress status;
  NodeId next = 1;
  auto add = [&](const Endpoint& e) {
    if (e.kind != Endpoint::Kind::kAddress || status.count(e.name) > 0) {
      return;
    }
    StatusReport report;
    report.host = next++;
    report.nic_tx_cap = report.nic_rx_cap = 1e9;
    report.disk_read_cap = report.disk_write_cap = 4e9;
    status[e.name] = report;
  };
  for (const cloudtalk::lang::VarComm& var : compiled.variables()) {
    for (const Endpoint& e : var.pool) {
      add(e);
    }
  }
  for (const cloudtalk::lang::CompiledFlow& flow : compiled.flows()) {
    add(flow.src);
    add(flow.dst);
  }
  return status;
}

std::string FormatSpace(double count) {
  char buf[32];
  if (count < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.0f", count);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", count);
  }
  return buf;
}

// Deterministic rendering of an (unordered) binding for comparison/output.
std::string RenderBinding(const cloudtalk::Binding& binding) {
  std::vector<std::string> parts;
  parts.reserve(binding.size());
  for (const auto& [var, endpoint] : binding) {
    parts.push_back(var + "=" + endpoint.ToString());
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& part : parts) {
    out += (out.empty() ? "" : " ") + part;
  }
  return out;
}

// Bit-exact double comparison: the identity contract is byte-identity, not
// epsilon-closeness.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

std::string PlanJson(const PrunedSpace& plan) {
  int pinned = 0;
  for (const int32_t p : plan.pinned) {
    pinned += p >= 0 ? 1 : 0;
  }
  std::ostringstream os;
  os << "{\"infeasible\":" << (plan.infeasible ? "true" : "false")
     << ",\"space_before\":" << plan.space_before << ",\"space_after\":" << plan.space_after
     << ",\"bindings_pruned\":" << plan.bindings_pruned
     << ",\"components\":" << plan.components << ",\"pinned\":" << pinned
     << ",\"dead_flows\":" << plan.dead_flows.size()
     << ",\"bound_pruning\":" << (plan.bound_pruning ? "true" : "false");
  if (plan.bound_pruning) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", plan.bound_lb);
    os << ",\"bound_lb\":" << buf << ",\"bound_ub\":";
    if (std::isfinite(plan.bound_ub)) {
      std::snprintf(buf, sizeof(buf), "%.6g", plan.bound_ub);
      os << buf;
    } else {
      os << "null";
    }
  }
  // Per-pass attribution in execution order: wall time (run-dependent; not
  // for snapshots) and the static binding-space reduction each pass owns.
  os << ",\"passes\":[";
  for (size_t i = 0; i < plan.pass_stats.size(); ++i) {
    const cloudtalk::lang::PassStat& ps = plan.pass_stats[i];
    char seconds[32];
    std::snprintf(seconds, sizeof(seconds), "%.6g", ps.wall_seconds);
    os << (i ? "," : "") << "{\"code\":\"" << ps.code << "\",\"wall_seconds\":" << seconds
       << ",\"pruned_bindings\":" << ps.pruned_bindings << "}";
  }
  os << "]}";
  return os.str();
}

// Runs the passes (and optionally the differential check) over one query.
// Returns the exit-code contribution.
int OptimizeOne(const std::string& source, const std::string& display_name,
                const Options& options) {
  DiagnosticSink parse_sink;
  const Query query = cloudtalk::lang::ParseWithDiagnostics(source, &parse_sink);
  std::optional<CompiledQuery> compiled;
  if (!parse_sink.has_errors()) {
    compiled = CompiledQuery::Compile(query, &parse_sink);
  }
  if (parse_sink.has_errors() || !compiled.has_value()) {
    parse_sink.SortByPosition();
    std::cerr << FormatDiagnostics(parse_sink.diagnostics(), source, display_name);
    std::cerr << display_name << ": query does not compile; nothing to optimise\n";
    return 2;
  }

  const StatusByAddress status = SynthesizeIdleStatus(*compiled);
  OptimizeParams opt_params;
  opt_params.distinct = !query.options.allow_same_binding;
  opt_params.passes = options.passes;
  DiagnosticSink remarks;
  const PrunedSpace plan = Optimize(*compiled, status, opt_params, &remarks);
  remarks.SortByPosition();

  if (options.json) {
    std::cout << "{\"plan\":" << PlanJson(plan) << ",\"diagnostics\":"
              << DiagnosticsToJson(remarks.diagnostics(), display_name) << "}\n";
  } else {
    if (!remarks.empty()) {
      std::cout << FormatDiagnostics(remarks.diagnostics(), source, display_name);
    }
    std::cout << display_name << ": plan: " << FormatSpace(plan.space_before) << " -> "
              << FormatSpace(plan.space_after) << " bindings ("
              << plan.bindings_pruned << " pruned statically)";
    if (plan.infeasible) {
      std::cout << "; infeasible: " << plan.infeasible_reason;
    }
    std::cout << "\n";
  }

  if (options.report_only || options.no_exec) {
    return 0;
  }
  if (plan.space_before > kExecSpaceLimit) {
    if (!options.json) {
      std::cout << display_name << ": identity check skipped (unoptimised space "
                << FormatSpace(plan.space_before) << " exceeds "
                << FormatSpace(kExecSpaceLimit) << ")\n";
    }
    return 0;
  }

  FlowLevelEstimator estimator;
  ExhaustiveParams params;
  params.distinct_bindings = true;  // `option allow_same` still overrides.
  params.threads = 1;
  params.optimize = false;
  const Result<ExhaustiveResult> off =
      EvaluateExhaustive(*compiled, status, estimator, params);
  params.optimize = true;
  const Result<ExhaustiveResult> on =
      EvaluateExhaustive(*compiled, status, estimator, params);

  bool agree;
  std::string detail;
  if (!off.ok() && !on.ok()) {
    agree = true;  // Both walks agree there is no answer.
    detail = "both searches report no legal binding";
  } else if (off.ok() != on.ok()) {
    agree = false;
    detail = std::string("only the ") + (off.ok() ? "unoptimised" : "optimized") +
             " search found a binding (" + (off.ok() ? on.error().message : off.error().message) +
             ")";
  } else {
    const ExhaustiveResult& a = off.value();
    const ExhaustiveResult& b = on.value();
    const std::string binding_a = RenderBinding(a.binding);
    const std::string binding_b = RenderBinding(b.binding);
    agree = binding_a == binding_b && SameBits(a.estimate.makespan, b.estimate.makespan) &&
            SameBits(a.estimate.aggregate_throughput, b.estimate.aggregate_throughput);
    if (agree) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "winner [%s] makespan %.6g s; enumerated %lld vs %lld bindings",
                    binding_a.c_str(), a.estimate.makespan,
                    static_cast<long long>(a.counters.enumerated),
                    static_cast<long long>(b.counters.enumerated));
      detail = buf;
    } else {
      detail = "unoptimised [" + binding_a + "] vs optimized [" + binding_b + "]";
    }
  }
  if (!options.json) {
    std::cout << display_name << ": identity check " << (agree ? "passed" : "FAILED") << ": "
              << detail << "\n";
  } else if (!agree) {
    std::cerr << display_name << ": identity check FAILED: " << detail << "\n";
  }
  return agree ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--report") {
      options.report_only = true;
    } else if (arg == "--no-exec") {
      options.no_exec = true;
    } else if (arg == "--passes") {
      if (i + 1 >= argc || !ParsePassList(argv[++i], &options.passes)) {
        PrintUsage(std::cerr);
        return 2;
      }
    } else if (arg == "--list") {
      PrintPasses();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ctopt: unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  return cloudtalk::cli::ForEachInput(
      "ctopt", options.files, /*open_error_exit=*/2,
      [&options](const std::string& source, const std::string& display_name) {
        return OptimizeOne(source, display_name, options);
      });
}
