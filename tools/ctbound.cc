// ctbound: sound makespan-bound report and branch-and-bound verification.
//
// Runs the src/lang/bound analysis over a query and a synthetic all-idle
// status snapshot and reports the sound completion-time interval [LB, UB]
// per chain group and for the whole query — the intervals ctlint's
// E080/W080/W081 rules, the server's admission fast path, and the
// exhaustive engine's O500 branch-and-bound pruning are built on. Unless
// told otherwise it then *executes* the search twice — O500 off and on —
// and verifies the byte-identity contract: same winning binding,
// bit-identical estimate, and a winner makespan inside the query interval.
//
//   ctbound query.ct             bound breakdown + identity check
//   ctbound --report query.ct    bound breakdown only (no execution)
//   ctbound --json query.ct      machine-readable breakdown for CI
//   ctbound --fraction F         availability fraction (default 0.1)
//   ctbound -                    read the query from stdin
//
// Exit code: 0 = ok, 1 = identity or soundness check failed (the bound
// analysis is unsound — file a bug), 2 = unusable input or usage error.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/exhaustive.h"
#include "src/lang/bound.h"
#include "src/lang/diagnostics.h"
#include "src/lang/opt.h"
#include "src/lang/parser.h"
#include "tools/cli_common.h"

namespace {

using cloudtalk::ExhaustiveParams;
using cloudtalk::ExhaustiveResult;
using cloudtalk::FlowLevelEstimator;
using cloudtalk::NodeId;
using cloudtalk::Result;
using cloudtalk::StatusByAddress;
using cloudtalk::StatusReport;
using cloudtalk::lang::BoundAnalysis;
using cloudtalk::lang::BoundInterval;
using cloudtalk::lang::BoundOptions;
using cloudtalk::lang::CompiledQuery;
using cloudtalk::lang::DiagnosticSink;
using cloudtalk::lang::Endpoint;
using cloudtalk::lang::GroupBound;
using cloudtalk::lang::Query;

struct Options {
  bool json = false;
  bool report_only = false;
  double fraction = 0.1;
  std::vector<std::string> files;
};

// Above this the unoptimised reference walk is too slow to be a check.
constexpr double kExecSpaceLimit = 1e6;

void PrintUsage(std::ostream& os) {
  os << "usage: ctbound [--report] [--json] [--fraction F] <query.ct ...|->\n"
        "\n"
        "Sound makespan bounds for CloudTalk queries: the [LB, UB] interval\n"
        "guaranteed to contain the flow-level estimator's makespan for every\n"
        "binding, per chain group and for the whole query, plus a differential\n"
        "check that O500 branch-and-bound pruning returns a byte-identical\n"
        "answer.\n"
        "\n"
        "  --report      print the bound breakdown; skip execution\n"
        "  --json        machine-readable output (one JSON object per input)\n"
        "  --fraction F  availability fraction of the modelled estimator\n"
        "                (default 0.1, FlowLevelEstimator's default)\n"
        "  -             read a query from standard input\n"
        "\n"
        "exit code: 0 = ok, 1 = identity/soundness check failed, 2 = unusable input\n";
}

// All-idle synthetic snapshot, same defaults as ctopt: every address the
// query can touch reports a 1 Gbps NIC and a 4 Gbps disk. Deterministic,
// so reports are snapshot-stable.
StatusByAddress SynthesizeIdleStatus(const CompiledQuery& compiled) {
  StatusByAddress status;
  NodeId next = 1;
  auto add = [&](const Endpoint& e) {
    if (e.kind != Endpoint::Kind::kAddress || status.count(e.name) > 0) {
      return;
    }
    StatusReport report;
    report.host = next++;
    report.nic_tx_cap = report.nic_rx_cap = 1e9;
    report.disk_read_cap = report.disk_write_cap = 4e9;
    status[e.name] = report;
  };
  for (const cloudtalk::lang::VarComm& var : compiled.variables()) {
    for (const Endpoint& e : var.pool) {
      add(e);
    }
  }
  for (const cloudtalk::lang::CompiledFlow& flow : compiled.flows()) {
    add(flow.src);
    add(flow.dst);
  }
  return status;
}

std::string FormatSeconds(double seconds) {
  if (std::isinf(seconds)) {
    return "inf";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", seconds);
  return buf;
}

// JSON number or null for infinities (JSON has no inf literal).
std::string JsonSeconds(double seconds) {
  return std::isfinite(seconds) ? FormatSeconds(seconds) : std::string("null");
}

std::string RenderBinding(const cloudtalk::Binding& binding) {
  std::vector<std::string> parts;
  parts.reserve(binding.size());
  for (const auto& [var, endpoint] : binding) {
    parts.push_back(var + "=" + endpoint.ToString());
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& part : parts) {
    out += (out.empty() ? "" : " ") + part;
  }
  return out;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// First member flow of a group, for display.
std::string GroupFlowName(const CompiledQuery& compiled, int g) {
  const auto& indices = compiled.groups()[g].flow_indices;
  return indices.empty() ? std::string("?") : compiled.flows()[indices.front()].name;
}

int BoundOne(const std::string& source, const std::string& display_name,
             const Options& options) {
  DiagnosticSink parse_sink;
  const Query query = cloudtalk::lang::ParseWithDiagnostics(source, &parse_sink);
  std::optional<CompiledQuery> compiled;
  if (!parse_sink.has_errors()) {
    compiled = CompiledQuery::Compile(query, &parse_sink);
  }
  if (parse_sink.has_errors() || !compiled.has_value()) {
    parse_sink.SortByPosition();
    std::cerr << FormatDiagnostics(parse_sink.diagnostics(), source, display_name);
    std::cerr << display_name << ": query does not compile; nothing to bound\n";
    return 2;
  }

  const StatusByAddress status = SynthesizeIdleStatus(*compiled);
  BoundOptions bound_options;
  bound_options.min_available_fraction = options.fraction;
  const BoundAnalysis bounds = BoundAnalysis::Build(*compiled, status, bound_options);
  const BoundInterval& q = bounds.query_bounds();

  if (options.json) {
    std::ostringstream os;
    os << "{\"query\":{\"lb\":" << JsonSeconds(q.lb) << ",\"ub\":" << JsonSeconds(q.ub)
       << "},\"groups\":[";
    for (size_t i = 0; i < bounds.group_bounds().size(); ++i) {
      const GroupBound& gb = bounds.group_bounds()[i];
      os << (i ? "," : "") << "{\"group\":" << gb.group << ",\"flow\":\""
         << GroupFlowName(*compiled, gb.group) << "\",\"lb\":" << JsonSeconds(gb.interval.lb)
         << ",\"ub\":" << JsonSeconds(gb.interval.ub)
         << ",\"deadline\":" << JsonSeconds(gb.deadline)
         << ",\"provably_infeasible\":" << (gb.provably_infeasible ? "true" : "false")
         << ",\"trivially_satisfied\":" << (gb.trivially_satisfied ? "true" : "false") << "}";
    }
    os << "]}";
    std::cout << os.str() << "\n";
  } else {
    std::cout << display_name << ": query bounds [" << FormatSeconds(q.lb) << "s, "
              << FormatSeconds(q.ub) << "s]\n";
    for (const GroupBound& gb : bounds.group_bounds()) {
      std::cout << "  group " << gb.group << " (flow '" << GroupFlowName(*compiled, gb.group)
                << "'): [" << FormatSeconds(gb.interval.lb) << "s, "
                << FormatSeconds(gb.interval.ub) << "s]";
      if (std::isfinite(gb.deadline)) {
        std::cout << " deadline " << FormatSeconds(gb.deadline) << "s";
        if (gb.provably_infeasible) {
          std::cout << " PROVABLY INFEASIBLE";
        } else if (gb.trivially_satisfied) {
          std::cout << " trivially satisfied";
        }
      }
      std::cout << "\n";
    }
  }

  if (options.report_only || options.json) {
    return 0;
  }

  // Differential execution: O100-O400 only vs. all passes including O500,
  // both against the same idle snapshot and a FlowLevelEstimator built with
  // the requested fraction (so the engine's rebuilt analysis matches the
  // reported one).
  cloudtalk::lang::OptimizeParams opt_params;
  opt_params.distinct = !query.options.allow_same_binding;
  opt_params.bound_fraction = options.fraction;
  opt_params.passes = cloudtalk::lang::kOptAllPasses & ~cloudtalk::lang::kOptBoundPruning;
  const cloudtalk::lang::PrunedSpace plan_off = Optimize(*compiled, status, opt_params);
  opt_params.passes = cloudtalk::lang::kOptAllPasses;
  const cloudtalk::lang::PrunedSpace plan_on = Optimize(*compiled, status, opt_params);
  if (plan_off.space_before > kExecSpaceLimit) {
    std::cout << display_name << ": identity check skipped (space too large)\n";
    return 0;
  }

  FlowLevelEstimator estimator(options.fraction);
  ExhaustiveParams params;
  params.distinct_bindings = true;
  params.threads = 1;
  params.optimize = true;
  params.plan = &plan_off;
  const Result<ExhaustiveResult> off = EvaluateExhaustive(*compiled, status, estimator, params);
  params.plan = &plan_on;
  const Result<ExhaustiveResult> on = EvaluateExhaustive(*compiled, status, estimator, params);

  bool agree;
  std::string detail;
  if (!off.ok() && !on.ok()) {
    agree = true;
    detail = "both searches report no legal binding";
  } else if (off.ok() != on.ok()) {
    agree = false;
    detail = std::string("only the ") + (off.ok() ? "unpruned" : "bound-pruned") +
             " search found a binding (" +
             (off.ok() ? on.error().message : off.error().message) + ")";
  } else {
    const ExhaustiveResult& a = off.value();
    const ExhaustiveResult& b = on.value();
    const std::string binding_a = RenderBinding(a.binding);
    const std::string binding_b = RenderBinding(b.binding);
    agree = binding_a == binding_b && SameBits(a.estimate.makespan, b.estimate.makespan) &&
            SameBits(a.estimate.aggregate_throughput, b.estimate.aggregate_throughput);
    if (agree && !q.Contains(b.estimate.makespan)) {
      agree = false;
      detail = "winner makespan " + FormatSeconds(b.estimate.makespan) +
               "s escapes the query interval [" + FormatSeconds(q.lb) + "s, " +
               FormatSeconds(q.ub) + "s] (invariant D502)";
    } else if (agree) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "winner [%s] makespan %.6g s in bounds; enumerated %lld vs %lld "
                    "(bound_prunes %lld)",
                    binding_a.c_str(), a.estimate.makespan,
                    static_cast<long long>(a.counters.enumerated),
                    static_cast<long long>(b.counters.enumerated),
                    static_cast<long long>(b.counters.bound_prunes));
      detail = buf;
    } else {
      detail = "unpruned [" + binding_a + "] vs bound-pruned [" + binding_b + "]";
    }
  }
  std::cout << display_name << ": identity check " << (agree ? "passed" : "FAILED") << ": "
            << detail << "\n";
  return agree ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--report") {
      options.report_only = true;
    } else if (arg == "--fraction") {
      if (i + 1 >= argc) {
        PrintUsage(std::cerr);
        return 2;
      }
      options.fraction = std::atof(argv[++i]);
      if (options.fraction < 0 || options.fraction > 1) {
        std::cerr << "ctbound: --fraction must be in [0, 1]\n";
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ctbound: unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  return cloudtalk::cli::ForEachInput(
      "ctbound", options.files, /*open_error_exit=*/2,
      [&options](const std::string& source, const std::string& display_name) {
        return BoundOne(source, display_name, options);
      });
}
