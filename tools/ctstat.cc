// ctstat: query-lifecycle tracing and metrics inspection tool.
//
// Answers a CloudTalk query against a deterministic simulated cluster (the
// same single-switch harness the tests use, fixed seed) and shows where the
// answer's time went and what the stack counted while producing it:
//
//   ctstat query.ct              trace tree (parse/lint/compile/sample/
//                                probe/bind/reserve spans with attributes)
//   ctstat --trace query.ct      same, explicitly
//   ctstat --json query.ct       the trace as JSON (machine-readable)
//   ctstat --prom query.ct       Prometheus text exposition of every metric
//                                the run touched (what /metrics would serve)
//   ctstat --stable ...          normalise wall times out of --trace/--json
//                                output so it is byte-stable across runs
//                                (the golden-snapshot format CI diffs)
//   ctstat --catalog             list the M-code metric catalogue and exit
//   ctstat --hosts N             cluster size (default 16)
//   ctstat --seed N              cluster + server seed (default 1)
//   ctstat -                     read the query from stdin
//
// Exit code: 0 = answered, 1 = the query was rejected, 2 = unusable input
// or usage error.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/harness/cluster.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/topology/topology.h"
#include "tools/cli_common.h"

namespace {

using cloudtalk::Cluster;
using cloudtalk::ClusterOptions;
using cloudtalk::kGbps;
using cloudtalk::MakeSingleSwitch;
using cloudtalk::QueryReply;
using cloudtalk::Result;
using cloudtalk::SingleSwitchParams;

struct Options {
  bool trace = false;
  bool json = false;
  bool prom = false;
  bool stable = false;
  int hosts = 16;
  uint64_t seed = 1;
  std::vector<std::string> files;
};

void PrintUsage(std::ostream& os) {
  os << "usage: ctstat [--trace] [--json] [--prom] [--stable]\n"
        "              [--hosts N] [--seed N] <query.ct ...|->\n"
        "       ctstat --catalog\n"
        "\n"
        "Answers a query against a deterministic simulated cluster and shows\n"
        "the query-lifecycle trace and the metrics the stack recorded.\n"
        "\n"
        "  --trace     render the span tree (default when no mode is given)\n"
        "  --json      render the trace as JSON\n"
        "  --prom      render the metrics registry in Prometheus text format\n"
        "  --stable    normalise wall times out (byte-stable snapshot output)\n"
        "  --catalog   list the metric catalogue (M-codes) and exit\n"
        "  --hosts N   hosts in the simulated cluster (default 16)\n"
        "  --seed N    cluster and server seed (default 1)\n"
        "  -           read a query from standard input\n"
        "\n"
        "exit code: 0 = answered, 1 = query rejected, 2 = unusable input\n";
}

void PrintCatalog() {
  for (const cloudtalk::obs::MetricInfo& info : cloudtalk::obs::MetricCatalog()) {
    const char* type = info.type == cloudtalk::obs::MetricType::kCounter     ? "counter"
                       : info.type == cloudtalk::obs::MetricType::kGauge     ? "gauge"
                                                                             : "histogram";
    std::cout << info.code << "  " << type << "  " << info.name;
    if (info.label != nullptr) {
      std::cout << "{" << info.label << "}";
    }
    std::cout << ": " << info.help << "\n";
  }
}

// One deterministic cluster per process run: a single-switch gigabit fabric
// with the test-default host capacities, seeded status sweep started, and a
// first measurement taken so probes see fresh reports.
Cluster BuildCluster(const Options& options) {
  SingleSwitchParams params;
  params.num_hosts = options.hosts;
  params.host_caps.nic_up = 1 * kGbps;
  params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = 4 * kGbps;
  params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions cluster_options;
  cluster_options.seed = options.seed;
  cluster_options.server.seed = options.seed;
  cluster_options.server.eval_threads = 1;  // Deterministic shard order.
  return Cluster(MakeSingleSwitch(params), cluster_options);
}

int AnswerOne(Cluster& cluster, const std::string& source, const std::string& display_name,
              const Options& options) {
  const Result<QueryReply> reply = cluster.cloudtalk().Answer(source);
  if (!reply.ok()) {
    std::cerr << display_name << ": rejected: " << reply.error().message << "\n";
    return 1;
  }
  if (options.trace) {
    std::cout << display_name << ":\n"
              << cloudtalk::obs::FormatTrace(reply.value().trace, options.stable);
  }
  if (options.json) {
    std::cout << cloudtalk::obs::TraceToJson(reply.value().trace, options.stable) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--prom") {
      options.prom = true;
    } else if (arg == "--stable") {
      options.stable = true;
    } else if (arg == "--catalog") {
      PrintCatalog();
      return 0;
    } else if (arg == "--hosts") {
      if (i + 1 >= argc) {
        PrintUsage(std::cerr);
        return 2;
      }
      options.hosts = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--seed") {
      if (i + 1 >= argc) {
        PrintUsage(std::cerr);
        return 2;
      }
      options.seed = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ctstat: unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (!options.trace && !options.json && !options.prom) {
    options.trace = true;
  }
  if (options.files.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  Cluster cluster = BuildCluster(options);
  cluster.StartStatusSweep();
  cluster.MeasureNow();

  int exit_code = cloudtalk::cli::ForEachInput(
      "ctstat", options.files, /*open_error_exit=*/2,
      [&options, &cluster](const std::string& source, const std::string& display_name) {
        return AnswerOne(cluster, source, display_name, options);
      });
  if (options.prom) {
    std::cout << cloudtalk::obs::Registry::Instance().RenderPrometheus();
  }
  return exit_code;
}
