// ctscope: static footprint & effect analysis of CloudTalk queries
// (src/lang/scope, ISSUE 9).
//
//   ctscope query.ct            print the footprint report (default: --print)
//   ctscope --json query.ct     effects, footprint, and excluded hosts as
//                               JSON (one object per line)
//   ctscope --exec query.ct     identity check: answer the query on two
//                               identically seeded simulated clusters, one
//                               probing only the footprint and one probing
//                               everything, and fail unless the replies
//                               agree (the D504 soundness contract,
//                               single-shot) — also reports probes saved
//   ctscope -                   read a query from standard input
//
// exit code: 0 = ok, 1 = identity mismatch or rejected query, 2 = unusable
// input or usage error
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/harness/cluster.h"
#include "src/lang/parser.h"
#include "src/lang/scope.h"
#include "tools/cli_common.h"

namespace {

using cloudtalk::Cluster;
using cloudtalk::ClusterOptions;
using cloudtalk::kGbps;
using cloudtalk::MakeSingleSwitch;
using cloudtalk::QueryReply;
using cloudtalk::Result;
using cloudtalk::SingleSwitchParams;
using cloudtalk::lang::CompiledQuery;
using cloudtalk::lang::Query;
using cloudtalk::lang::ScopeAnalysis;
using cloudtalk::lang::ScopeHost;

struct Options {
  bool print = false;
  bool json = false;
  bool exec = false;
  int hosts = 16;
  uint64_t seed = 1;
  std::vector<std::string> files;
};

void PrintUsage(std::ostream& os) {
  os << "usage: ctscope [--print] [--json] [--exec]\n"
        "               [--hosts N] [--seed N] <query.ct ...|->\n"
        "\n"
        "Computes the static host footprint and effect set of CloudTalk\n"
        "queries: which hosts the answer can depend on (and which status\n"
        "fields of each), and whether answering reserves or samples.\n"
        "\n"
        "  --print     print the footprint report (default when no mode given)\n"
        "  --json      effects, footprint, and excluded hosts as JSON\n"
        "  --exec      answer the query on two identically seeded simulated\n"
        "              clusters — one probing only the footprint, one probing\n"
        "              everything — and verify the replies are identical\n"
        "  --hosts N   simulated cluster size for --exec (default 16)\n"
        "  --seed N    cluster seed for --exec (default 1)\n"
        "  -           read a query from standard input\n"
        "\n"
        "exit code: 0 = ok, 1 = identity mismatch or rejected query,\n"
        "2 = unusable input\n";
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Parses and compiles one input, then runs the scope analysis.
bool AnalyzeSource(const std::string& source, const std::string& display_name,
                   ScopeAnalysis* scope) {
  const Result<Query> parsed = cloudtalk::lang::Parse(source);
  if (!parsed.ok()) {
    std::cerr << display_name << ": " << parsed.error().message << "\n";
    return false;
  }
  const Result<CompiledQuery> compiled = CompiledQuery::Compile(parsed.value());
  if (!compiled.ok()) {
    std::cerr << display_name << ": " << compiled.error().message << "\n";
    return false;
  }
  *scope = cloudtalk::lang::AnalyzeScope(compiled.value());
  return true;
}

void PrintReport(const ScopeAnalysis& scope, const std::string& display_name) {
  std::cout << display_name << ": effects " << cloudtalk::lang::EffectsName(scope.effects)
            << ", footprint " << scope.footprint.size() << " host"
            << (scope.footprint.size() == 1 ? "" : "s") << ", excluded "
            << scope.excluded.size() << "\n";
  for (const ScopeHost& host : scope.footprint) {
    std::cout << "  " << host.address << "  fields="
              << cloudtalk::lang::ScopeFieldNames(host.fields)
              << (host.candidate ? " candidate" : "") << (host.endpoint ? " endpoint" : "")
              << "\n";
  }
  for (const std::string& address : scope.excluded) {
    std::cout << "  " << address << "  excluded (never probed)\n";
  }
  for (const std::string& var : scope.inert_variables) {
    std::cout << "  inert variable " << var << "\n";
  }
}

void PrintJson(const ScopeAnalysis& scope, const std::string& display_name) {
  std::cout << "{\"file\": \"" << EscapeJson(display_name) << "\", \"effects\": \""
            << cloudtalk::lang::EffectsName(scope.effects)
            << "\", \"max_pool_size\": " << scope.effects.max_pool_size
            << ", \"footprint\": [";
  for (size_t i = 0; i < scope.footprint.size(); ++i) {
    const ScopeHost& host = scope.footprint[i];
    std::cout << (i > 0 ? ", " : "") << "{\"host\": \"" << EscapeJson(host.address)
              << "\", \"fields\": \"" << cloudtalk::lang::ScopeFieldNames(host.fields)
              << "\", \"candidate\": " << (host.candidate ? "true" : "false")
              << ", \"endpoint\": " << (host.endpoint ? "true" : "false") << "}";
  }
  std::cout << "], \"excluded\": [";
  for (size_t i = 0; i < scope.excluded.size(); ++i) {
    std::cout << (i > 0 ? ", " : "") << "\"" << EscapeJson(scope.excluded[i]) << "\"";
  }
  std::cout << "], \"inert_variables\": [";
  for (size_t i = 0; i < scope.inert_variables.size(); ++i) {
    std::cout << (i > 0 ? ", " : "") << "\"" << EscapeJson(scope.inert_variables[i]) << "\"";
  }
  std::cout << "]}\n";
}

Cluster BuildCluster(const Options& options, bool scope_probe_pruning) {
  SingleSwitchParams params;
  params.num_hosts = options.hosts;
  params.host_caps.nic_up = 1 * kGbps;
  params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = 4 * kGbps;
  params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions cluster_options;
  cluster_options.seed = options.seed;
  cluster_options.server.seed = options.seed;
  cluster_options.server.eval_threads = 1;  // Deterministic shard order.
  // Reservation-free so the two runs see identical state (the check needs
  // answers that are pure functions of the query and the status snapshot).
  cluster_options.server.reservation_hold = 0;
  cluster_options.server.scope_probe_pruning = scope_probe_pruning;
  Cluster cluster(MakeSingleSwitch(params), cluster_options);
  cluster.StartStatusSweep();
  cluster.MeasureNow();
  return cluster;
}

// The D504 identity check, single-shot: probing only the footprint must
// yield exactly the answer full probing yields — binding for binding.
int ExecIdentity(const std::string& source, const std::string& display_name,
                 const ScopeAnalysis& scope, const Options& options) {
  Cluster pruned_cluster = BuildCluster(options, /*scope_probe_pruning=*/true);
  Cluster full_cluster = BuildCluster(options, /*scope_probe_pruning=*/false);
  const Result<QueryReply> pruned = pruned_cluster.cloudtalk().Answer(source);
  const Result<QueryReply> full = full_cluster.cloudtalk().Answer(source);
  if (pruned.ok() != full.ok()) {
    std::cerr << display_name << ": identity mismatch: footprint probing "
              << (pruned.ok() ? "answered" : "rejected") << " but full probing "
              << (full.ok() ? "answered" : "rejected") << "\n";
    return 1;
  }
  if (!pruned.ok()) {
    std::cerr << display_name << ": rejected: " << pruned.error().message << "\n";
    return 1;
  }
  std::map<std::string, std::string> pruned_binding;
  for (const auto& [var, endpoint] : pruned.value().binding) {
    pruned_binding[var] = endpoint.name;
  }
  std::map<std::string, std::string> full_binding;
  for (const auto& [var, endpoint] : full.value().binding) {
    full_binding[var] = endpoint.name;
  }
  if (pruned_binding != full_binding) {
    std::cerr << display_name << ": identity mismatch: bindings differ\n";
    for (const auto& [var, endpoint] : pruned_binding) {
      std::cerr << "  footprint  " << var << " -> " << endpoint << "\n";
    }
    for (const auto& [var, endpoint] : full_binding) {
      std::cerr << "  full       " << var << " -> " << endpoint << "\n";
    }
    return 1;
  }
  if (pruned.value().estimate.makespan != full.value().estimate.makespan) {
    std::cerr << display_name << ": identity mismatch: makespan "
              << pruned.value().estimate.makespan << " vs " << full.value().estimate.makespan
              << "\n";
    return 1;
  }
  const int64_t pruned_probes = pruned.value().probe_stats.requests_sent;
  const int64_t full_probes = full.value().probe_stats.requests_sent;
  if (pruned_probes > full_probes) {
    std::cerr << display_name << ": footprint probing sent more probes (" << pruned_probes
              << ") than full probing (" << full_probes << ")\n";
    return 1;
  }
  std::cout << display_name << ": identity ok (" << pruned_binding.size() << " variables, "
            << pruned_probes << "/" << full_probes << " probes, "
            << scope.excluded.size() << " excluded)\n";
  return 0;
}

int RunOne(const std::string& source, const std::string& display_name, const Options& options) {
  ScopeAnalysis scope;
  if (!AnalyzeSource(source, display_name, &scope)) {
    return 2;
  }
  if (options.print) {
    PrintReport(scope, display_name);
  }
  if (options.json) {
    PrintJson(scope, display_name);
  }
  if (options.exec) {
    return ExecIdentity(source, display_name, scope, options);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print") {
      options.print = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--exec") {
      options.exec = true;
    } else if (arg == "--hosts") {
      if (i + 1 >= argc) {
        PrintUsage(std::cerr);
        return 2;
      }
      options.hosts = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--seed") {
      if (i + 1 >= argc) {
        PrintUsage(std::cerr);
        return 2;
      }
      options.seed = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ctscope: unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }
  if (!options.json && !options.exec) {
    options.print = true;
  }
  return cloudtalk::cli::ForEachInput(
      "ctscope", options.files, /*open_error_exit=*/2,
      [&options](const std::string& source, const std::string& display_name) {
        return RunOne(source, display_name, options);
      });
}
