// Shared CLI plumbing for the ct* tools.
//
// Every tool takes a list of query files (with "-" meaning stdin), reads
// them with the same error handling, and folds per-input exit codes
// together by maximum. That loop was copy-pasted across ctlint, ctopt,
// ctbound, ctstat and ctcanon; it lives here once.
#ifndef CLOUDTALK_TOOLS_CLI_COMMON_H_
#define CLOUDTALK_TOOLS_CLI_COMMON_H_

#include <algorithm>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace cloudtalk {
namespace cli {

// Reads one input file ("-" = stdin, displayed as "<stdin>"). Returns false
// with a `tool: cannot open` message on stderr when the file is unreadable.
inline bool ReadInput(const std::string& tool, const std::string& file, std::string* source,
                      std::string* display_name) {
  *display_name = file;
  if (file == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *source = buffer.str();
    *display_name = "<stdin>";
    return true;
  }
  std::ifstream in(file);
  if (!in) {
    std::cerr << tool << ": cannot open '" << file << "'\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *source = buffer.str();
  return true;
}

// Runs `handler(source, display_name)` over every input and merges exit
// codes by maximum. Unreadable inputs contribute `open_error_exit` and do
// not stop the sweep.
inline int ForEachInput(const std::string& tool, const std::vector<std::string>& files,
                        int open_error_exit,
                        const std::function<int(const std::string&, const std::string&)>& handler) {
  int exit_code = 0;
  for (const std::string& file : files) {
    std::string source;
    std::string display_name;
    if (!ReadInput(tool, file, &source, &display_name)) {
      exit_code = std::max(exit_code, open_error_exit);
      continue;
    }
    exit_code = std::max(exit_code, handler(source, display_name));
  }
  return exit_code;
}

}  // namespace cli
}  // namespace cloudtalk

#endif  // CLOUDTALK_TOOLS_CLI_COMMON_H_
