// ctlint: static analyzer for CloudTalk query files.
//
// Runs the full diagnostics pipeline — lexer, parser (with recovery), lint
// rules, semantic compilation — over each input and reports every finding
// with source position, rule code, and fix-it hint.
//
//   ctlint query.ct             clang-style text diagnostics
//   ctlint --json query.ct      machine-readable output for CI
//   ctlint --werror query.ct    warnings are promoted to errors
//   ctlint -                    read the query from stdin
//   ctlint --rules              list every registered lint rule
//
// Exit code is the maximum severity across all inputs: 0 clean, 1 warnings,
// 2 errors (with --werror, warnings exit 2 as well).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/lang/analysis.h"
#include "src/lang/diagnostics.h"
#include "src/lang/lint.h"
#include "src/lang/parser.h"

namespace {

using cloudtalk::lang::CompiledQuery;
using cloudtalk::lang::DiagnosticSink;
using cloudtalk::lang::Query;
using cloudtalk::lang::Severity;

struct Options {
  bool json = false;
  bool werror = false;
  std::vector<std::string> files;
};

void PrintUsage(std::ostream& os) {
  os << "usage: ctlint [--json] [--werror] <query.ct ...|->\n"
        "       ctlint --rules\n"
        "\n"
        "Static analyzer for CloudTalk query files. Reports every syntax\n"
        "error, semantic error, and lint finding with line:column, a stable\n"
        "rule code, and a fix-it hint (see docs/LANGUAGE.md, 'Diagnostics').\n"
        "\n"
        "  --json    machine-readable output (one JSON object per input)\n"
        "  --werror  treat warnings as errors\n"
        "  --rules   list registered lint rules and exit\n"
        "  -         read a query from standard input\n"
        "\n"
        "exit code: 0 = clean, 1 = warnings, 2 = errors\n";
}

void PrintRules() {
  for (const cloudtalk::lang::LintRule& rule : cloudtalk::lang::LintRules()) {
    std::cout << rule.code << "  " << cloudtalk::lang::SeverityName(rule.severity) << "  "
              << rule.name << ": " << rule.summary << "\n";
  }
}

// Runs the pipeline over one query text; returns the exit code contribution.
int LintOne(const std::string& source, const std::string& display_name,
            const Options& options) {
  DiagnosticSink sink;
  const Query query = cloudtalk::lang::ParseWithDiagnostics(source, &sink);
  cloudtalk::lang::RunLint(query, &sink);
  if (!sink.has_errors()) {
    // Surface residual semantic errors (unresolvable sizes etc.) that only
    // full compilation finds. Skipped when errors exist: the AST is partial.
    (void)CompiledQuery::Compile(query, &sink);
  }
  if (options.werror) {
    sink.PromoteWarnings();
  }
  sink.SortByPosition();
  if (options.json) {
    std::cout << DiagnosticsToJson(sink.diagnostics(), display_name) << "\n";
  } else if (!sink.empty()) {
    std::cout << FormatDiagnostics(sink.diagnostics(), source, display_name);
  }
  switch (sink.max_severity()) {
    case Severity::kError:
      return 2;
    case Severity::kWarning:
      return 1;
    case Severity::kNote:
      break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--rules") {
      PrintRules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ctlint: unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  int exit_code = 0;
  for (const std::string& file : options.files) {
    std::string source;
    std::string display_name = file;
    if (file == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      source = buffer.str();
      display_name = "<stdin>";
    } else {
      std::ifstream in(file);
      if (!in) {
        std::cerr << "ctlint: cannot open '" << file << "'\n";
        exit_code = std::max(exit_code, 2);
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
    }
    exit_code = std::max(exit_code, LintOne(source, display_name, options));
  }
  return exit_code;
}
