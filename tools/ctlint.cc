// ctlint: static analyzer for CloudTalk query files.
//
// Runs the full diagnostics pipeline — lexer, parser (with recovery), lint
// rules, semantic compilation — over each input and reports every finding
// with source position, rule code, and fix-it hint. With more than one
// input, also cross-checks the batch for semantically equivalent queries
// (rule W092): two inputs whose canonical forms are byte-identical answer
// from one cache entry and usually indicate accidental duplication.
//
//   ctlint query.ct             clang-style text diagnostics
//   ctlint --json query.ct      machine-readable output for CI
//   ctlint --werror query.ct    warnings are promoted to errors
//   ctlint -                    read the query from stdin
//   ctlint --rules              list every registered lint rule
//
// Exit code is the maximum severity across all inputs: 0 clean, 1 warnings,
// 2 errors (with --werror, warnings exit 2 as well).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "src/lang/analysis.h"
#include "src/lang/diagnostics.h"
#include "src/lang/lint.h"
#include "src/lang/parser.h"
#include "tools/cli_common.h"

namespace {

using cloudtalk::lang::BatchEquivalence;
using cloudtalk::lang::CompiledQuery;
using cloudtalk::lang::DiagnosticSink;
using cloudtalk::lang::Query;
using cloudtalk::lang::Severity;
using cloudtalk::lang::Span;

struct Options {
  bool json = false;
  bool werror = false;
  std::vector<std::string> files;
};

void PrintUsage(std::ostream& os) {
  os << "usage: ctlint [--json] [--werror] <query.ct ...|->\n"
        "       ctlint --rules\n"
        "\n"
        "Static analyzer for CloudTalk query files. Reports every syntax\n"
        "error, semantic error, and lint finding with line:column, a stable\n"
        "rule code, and a fix-it hint (see docs/LANGUAGE.md, 'Diagnostics').\n"
        "With several inputs, semantically equivalent queries are flagged\n"
        "(W092) by canonical-form comparison.\n"
        "\n"
        "  --json    machine-readable output (one JSON object per input)\n"
        "  --werror  treat warnings as errors\n"
        "  --rules   list registered lint rules and exit\n"
        "  -         read a query from standard input\n"
        "\n"
        "exit code: 0 = clean, 1 = warnings, 2 = errors\n";
}

void PrintRules() {
  for (const cloudtalk::lang::LintRule& rule : cloudtalk::lang::LintRules()) {
    std::cout << rule.code << "  " << cloudtalk::lang::SeverityName(rule.severity) << "  "
              << rule.name << ": " << rule.summary << "\n";
  }
}

// One input's pipeline state, kept so the batch-equivalence pass can append
// W092 findings before anything is rendered.
struct LintedInput {
  std::string source;
  std::string display_name;
  Query query;
  DiagnosticSink sink;
};

LintedInput LintOne(std::string source, std::string display_name) {
  LintedInput input;
  input.source = std::move(source);
  input.display_name = std::move(display_name);
  input.query = cloudtalk::lang::ParseWithDiagnostics(input.source, &input.sink);
  cloudtalk::lang::RunLint(input.query, &input.sink);
  if (!input.sink.has_errors()) {
    // Surface residual semantic errors (unresolvable sizes etc.) that only
    // full compilation finds. Skipped when errors exist: the AST is partial.
    (void)CompiledQuery::Compile(input.query, &input.sink);
  }
  return input;
}

// W092: flag every input whose canonical form is byte-identical to an
// earlier one in the batch.
void CheckBatchEquivalence(std::vector<LintedInput>* inputs) {
  std::vector<const Query*> queries;
  queries.reserve(inputs->size());
  for (const LintedInput& input : *inputs) {
    queries.push_back(&input.query);
  }
  const std::vector<BatchEquivalence> equivalence =
      cloudtalk::lang::FindEquivalentQueries(queries);
  for (size_t i = 0; i < inputs->size(); ++i) {
    if (equivalence[i].equivalent_to < 0) {
      continue;
    }
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(equivalence[i].hash));
    (*inputs)[i].sink.AddWarning(
        "W092", Span{1, 1, 1},
        "query is semantically equivalent to earlier input '" +
            (*inputs)[equivalence[i].equivalent_to].display_name + "'",
        std::string("the canonical forms are byte-identical (hash ") + hash +
            "); the server answers both from one cache entry");
  }
}

int Render(LintedInput* input, const Options& options) {
  if (options.werror) {
    input->sink.PromoteWarnings();
  }
  input->sink.SortByPosition();
  if (options.json) {
    std::cout << DiagnosticsToJson(input->sink.diagnostics(), input->display_name) << "\n";
  } else if (!input->sink.empty()) {
    std::cout << FormatDiagnostics(input->sink.diagnostics(), input->source,
                                   input->display_name);
  }
  switch (input->sink.max_severity()) {
    case Severity::kError:
      return 2;
    case Severity::kWarning:
      return 1;
    case Severity::kNote:
      break;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--werror") {
      options.werror = true;
    } else if (arg == "--rules") {
      PrintRules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ctlint: unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }

  int exit_code = 0;
  std::vector<LintedInput> inputs;
  for (const std::string& file : options.files) {
    std::string source;
    std::string display_name;
    if (!cloudtalk::cli::ReadInput("ctlint", file, &source, &display_name)) {
      exit_code = std::max(exit_code, 2);
      continue;
    }
    inputs.push_back(LintOne(std::move(source), std::move(display_name)));
  }
  if (inputs.size() > 1) {
    CheckBatchEquivalence(&inputs);
  }
  for (LintedInput& input : inputs) {
    exit_code = std::max(exit_code, Render(&input, options));
  }
  return exit_code;
}
