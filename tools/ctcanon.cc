// ctcanon: canonical form, content hash, and semantic equivalence of
// CloudTalk queries (src/lang/canon, ISSUE 8).
//
//   ctcanon query.ct            print the canonical text (default: --print)
//   ctcanon --hash query.ct     print "<hash>  <file>" per input
//   ctcanon --json query.ct     hash, canonical text and the name
//                               certificate as JSON (one object per line)
//   ctcanon --equiv a.ct b.ct   decide equivalence: exit 0 when the two
//                               queries canonicalize to the same bytes
//   ctcanon --exec query.ct     identity check: answer the original and its
//                               canonical form against two identically
//                               seeded simulated clusters and fail unless
//                               the replies agree after name mapping (the
//                               D503 soundness contract, single-shot)
//   ctcanon -                   read a query from standard input
//
// exit code: 0 = ok / equivalent, 1 = not equivalent, identity mismatch, or
// query rejected, 2 = unusable input or usage error
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/harness/cluster.h"
#include "src/lang/canon.h"
#include "src/lang/parser.h"
#include "tools/cli_common.h"

namespace {

using cloudtalk::Cluster;
using cloudtalk::ClusterOptions;
using cloudtalk::kGbps;
using cloudtalk::MakeSingleSwitch;
using cloudtalk::QueryReply;
using cloudtalk::Result;
using cloudtalk::SingleSwitchParams;
using cloudtalk::lang::CanonicalQuery;
using cloudtalk::lang::Query;

struct Options {
  bool print = false;
  bool hash = false;
  bool json = false;
  bool equiv = false;
  bool exec = false;
  int hosts = 16;
  uint64_t seed = 1;
  std::vector<std::string> files;
};

void PrintUsage(std::ostream& os) {
  os << "usage: ctcanon [--print] [--hash] [--json] [--exec]\n"
        "               [--hosts N] [--seed N] <query.ct ...|->\n"
        "       ctcanon --equiv <a.ct> <b.ct>\n"
        "\n"
        "Canonicalizes CloudTalk queries: semantically equivalent queries\n"
        "(renamed, reordered, respelled) share one canonical text and hash.\n"
        "\n"
        "  --print     print the canonical text (default when no mode given)\n"
        "  --hash      print the 64-bit content hash per input\n"
        "  --json      hash, canonical text and name certificate as JSON\n"
        "  --equiv     decide equivalence of exactly two queries\n"
        "  --exec      answer the original and the canonical form on two\n"
        "              identically seeded simulated clusters and verify the\n"
        "              replies agree after mapping names back\n"
        "  --hosts N   simulated cluster size for --exec (default 16)\n"
        "  --seed N    cluster seed for --exec (default 1)\n"
        "  -           read a query from standard input\n"
        "\n"
        "exit code: 0 = ok/equivalent, 1 = not equivalent or identity\n"
        "mismatch or rejected query, 2 = unusable input\n";
}

std::string HashText(uint64_t hash) {
  char text[17];
  std::snprintf(text, sizeof(text), "%016llx", static_cast<unsigned long long>(hash));
  return text;
}

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Parses and canonicalizes one input; returns false (with a message) on
// syntax errors or queries too ambiguous to rename (duplicate names).
bool CanonicalizeSource(const std::string& source, const std::string& display_name,
                        CanonicalQuery* canon) {
  const Result<Query> parsed = cloudtalk::lang::Parse(source);
  if (!parsed.ok()) {
    std::cerr << display_name << ": " << parsed.error().message << "\n";
    return false;
  }
  Result<CanonicalQuery> result = cloudtalk::lang::Canonicalize(parsed.value());
  if (!result.ok()) {
    std::cerr << display_name << ": " << result.error().message << "\n";
    return false;
  }
  *canon = std::move(result.value());
  return true;
}

void PrintJson(const CanonicalQuery& canon, const std::string& display_name) {
  std::cout << "{\"file\": \"" << EscapeJson(display_name) << "\", \"hash\": \""
            << HashText(canon.hash) << "\", \"canonical\": \"" << EscapeJson(canon.text)
            << "\", \"variables\": [";
  for (size_t i = 0; i < canon.variable_map.size(); ++i) {
    const auto& [original, renamed] = canon.variable_map[i];
    std::cout << (i > 0 ? ", " : "") << "{\"original\": \"" << EscapeJson(original)
              << "\", \"canonical\": \"" << EscapeJson(renamed) << "\"}";
  }
  std::cout << "], \"flows\": [";
  for (size_t i = 0; i < canon.flow_map.size(); ++i) {
    const auto& [original, renamed] = canon.flow_map[i];
    std::cout << (i > 0 ? ", " : "") << "{\"original\": \"" << EscapeJson(original)
              << "\", \"canonical\": \"" << EscapeJson(renamed) << "\"}";
  }
  std::cout << "]}\n";
}

Cluster BuildCluster(const Options& options) {
  SingleSwitchParams params;
  params.num_hosts = options.hosts;
  params.host_caps.nic_up = 1 * kGbps;
  params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = 4 * kGbps;
  params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions cluster_options;
  cluster_options.seed = options.seed;
  cluster_options.server.seed = options.seed;
  cluster_options.server.eval_threads = 1;  // Deterministic shard order.
  // Reservation-free so the two runs see identical state (the check needs
  // answers that are pure functions of the query and the status snapshot).
  cluster_options.server.reservation_hold = 0;
  Cluster cluster(MakeSingleSwitch(params), cluster_options);
  cluster.StartStatusSweep();
  cluster.MeasureNow();
  return cluster;
}

// The D503 identity check, single-shot: the canonical form must be answered
// exactly like the original, endpoint for endpoint, once the canonical
// variable names are mapped back through the certificate.
int ExecIdentity(const std::string& source, const std::string& display_name,
                 const CanonicalQuery& canon, const Options& options) {
  Cluster original_cluster = BuildCluster(options);
  Cluster canonical_cluster = BuildCluster(options);
  const Result<QueryReply> original = original_cluster.cloudtalk().Answer(source);
  const Result<QueryReply> canonical = canonical_cluster.cloudtalk().Answer(canon.text);
  if (original.ok() != canonical.ok()) {
    std::cerr << display_name << ": identity mismatch: original "
              << (original.ok() ? "answered" : "rejected") << " but canonical form "
              << (canonical.ok() ? "answered" : "rejected") << "\n";
    return 1;
  }
  if (!original.ok()) {
    std::cerr << display_name << ": rejected: " << original.error().message << "\n";
    return 1;
  }
  // Compare bindings in the original vocabulary (sorted for stable output).
  std::map<std::string, std::string> original_binding;
  for (const auto& [var, endpoint] : original.value().binding) {
    original_binding[var] = endpoint.name;
  }
  std::map<std::string, std::string> mapped_binding;
  for (const auto& [var, endpoint] : canonical.value().binding) {
    const std::string* name = canon.OriginalVariable(var);
    mapped_binding[name != nullptr ? *name : var] = endpoint.name;
  }
  if (original_binding != mapped_binding) {
    std::cerr << display_name << ": identity mismatch: bindings differ\n";
    for (const auto& [var, endpoint] : original_binding) {
      std::cerr << "  original   " << var << " -> " << endpoint << "\n";
    }
    for (const auto& [var, endpoint] : mapped_binding) {
      std::cerr << "  canonical  " << var << " -> " << endpoint << "\n";
    }
    return 1;
  }
  if (original.value().estimate.makespan != canonical.value().estimate.makespan) {
    std::cerr << display_name << ": identity mismatch: makespan "
              << original.value().estimate.makespan << " vs "
              << canonical.value().estimate.makespan << "\n";
    return 1;
  }
  std::cout << display_name << ": identity ok (" << original_binding.size()
            << " variables, hash " << HashText(canon.hash) << ")\n";
  return 0;
}

int RunOne(const std::string& source, const std::string& display_name, const Options& options) {
  CanonicalQuery canon;
  if (!CanonicalizeSource(source, display_name, &canon)) {
    return 2;
  }
  if (options.hash) {
    std::cout << HashText(canon.hash) << "  " << display_name << "\n";
  }
  if (options.print) {
    std::cout << canon.text;
  }
  if (options.json) {
    PrintJson(canon, display_name);
  }
  if (options.exec) {
    return ExecIdentity(source, display_name, canon, options);
  }
  return 0;
}

int RunEquiv(const Options& options) {
  if (options.files.size() != 2) {
    std::cerr << "ctcanon: --equiv takes exactly two queries\n";
    return 2;
  }
  CanonicalQuery canon[2];
  for (int i = 0; i < 2; ++i) {
    std::string source;
    std::string display_name;
    if (!cloudtalk::cli::ReadInput("ctcanon", options.files[i], &source, &display_name)) {
      return 2;
    }
    if (!CanonicalizeSource(source, display_name, &canon[i])) {
      return 2;
    }
  }
  if (canon[0].text == canon[1].text) {
    std::cout << "equivalent (hash " << HashText(canon[0].hash) << ")\n";
    return 0;
  }
  std::cout << "distinct (hash " << HashText(canon[0].hash) << " vs "
            << HashText(canon[1].hash) << ")\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--print") {
      options.print = true;
    } else if (arg == "--hash") {
      options.hash = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--equiv") {
      options.equiv = true;
    } else if (arg == "--exec") {
      options.exec = true;
    } else if (arg == "--hosts") {
      if (i + 1 >= argc) {
        PrintUsage(std::cerr);
        return 2;
      }
      options.hosts = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--seed") {
      if (i + 1 >= argc) {
        PrintUsage(std::cerr);
        return 2;
      }
      options.seed = static_cast<uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(std::cout);
      return 0;
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "ctcanon: unknown flag '" << arg << "'\n";
      PrintUsage(std::cerr);
      return 2;
    } else {
      options.files.push_back(arg);
    }
  }
  if (options.files.empty()) {
    PrintUsage(std::cerr);
    return 2;
  }
  if (options.equiv) {
    return RunEquiv(options);
  }
  if (!options.hash && !options.json && !options.exec) {
    options.print = true;
  }
  return cloudtalk::cli::ForEachInput(
      "ctcanon", options.files, /*open_error_exit=*/2,
      [&options](const std::string& source, const std::string& display_name) {
        return RunOne(source, display_name, options);
      });
}
