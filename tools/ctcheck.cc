// ctcheck: seeded scenario fuzzer hunting invariant violations.
//
// Each seed deterministically generates a randomized cluster scenario —
// fabric shape, host/link/disk speeds, HDFS files and placement policies,
// an optional MapReduce job, background traffic — and executes it on the
// fluid simulation with every CT_INVARIANT armed in log-and-continue mode.
// Scenarios that fire any invariant are serialized to a replayable `.ctsc`
// file and reported (clang-style text or --json), and the process exits
// nonzero. `--replay file.ctsc` re-runs a serialized scenario exactly; the
// fixtures under examples/scenarios/ are such files, registered as ctest
// cases (one clean sweep, one guarding the time-epsilon regression).
//
// `--diff-opt` switches to a second fuzzing target: per seed it generates a
// random query plus a random status snapshot, runs the exhaustive engine
// with the static optimisation passes off and on, and reports any
// divergence (different winner, or a non-bit-identical estimate) as a D500
// violation, saving the query text for replay with ctopt.
//
// `--diff-bound` fuzzes the sound bound analysis (src/lang/bound.h): every
// legal binding of a generated query is simulated and its makespan checked
// against the static [LB, UB] interval; any escape is a D502 violation.
//
// Usage:
//   ctcheck [--seeds N] [--seed-base B] [--out DIR] [--json]
//   ctcheck --diff-opt [--seeds N] [--seed-base B] [--out DIR] [--json]
//   ctcheck --diff-sim [--seeds N] [--seed-base B] [--out DIR] [--json]
//   ctcheck --diff-bound [--seeds N] [--seed-base B] [--out DIR] [--json]
//   ctcheck --diff-canon [--seeds N] [--seed-base B] [--out DIR] [--json]
//   ctcheck --diff-scope [--seeds N] [--seed-base B] [--out DIR] [--json]
//   ctcheck --diff-shard [--seeds N] [--seed-base B] [--out DIR] [--json]
//   ctcheck --replay scenario.ctsc [--json]
//   ctcheck --catalog [--json]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/check/check.h"
#include "src/common/rng.h"
#include "src/core/exhaustive.h"
#include "src/core/packet_estimator.h"
#include "src/core/shard.h"
#include "src/lang/bound.h"
#include "src/lang/canon.h"
#include "src/lang/parser.h"
#include "src/fluidsim/fluid_simulation.h"
#include "src/harness/cluster.h"
#include "src/hdfs/mini_hdfs.h"
#include "src/mapred/mini_mapreduce.h"
#include "src/topology/topology.h"

namespace cloudtalk {
namespace {

struct Scenario {
  uint64_t seed = 1;
  std::string fabric = "single";  // single | vl2 | ec2
  int hosts = 12;
  double host_link_gbps = 1.0;
  double disk_gbps = 4.0;
  int replication = 3;
  int files = 2;
  double file_mb = 128.0;
  double block_mb = 64.0;
  int cloudtalk_writes = 1;
  int cloudtalk_reads = 1;
  int cloudtalk_map = 0;
  int cloudtalk_reduce = 0;
  int background_pairs = 1;
  double background_gbps = 0.5;
  int disk_loads = 1;
  double disk_load_gbps = 2.0;
  int run_mapreduce = 1;
  int reducers = 2;
  int map_blocks = 4;
  int eval_threads = 1;
  double horizon_s = 300.0;
  double status_period_ms = 100.0;
};

Scenario GenerateScenario(uint64_t seed) {
  Rng rng(seed);
  Scenario s;
  s.seed = seed;
  const int fabric_pick = static_cast<int>(rng.UniformInt(0, 3));
  s.fabric = fabric_pick <= 1 ? "single" : (fabric_pick == 2 ? "vl2" : "ec2");
  s.hosts = static_cast<int>(rng.UniformInt(6, 24));
  const double links[] = {0.5, 1.0, 2.0};
  s.host_link_gbps = links[rng.UniformInt(0, 2)];
  const double disks[] = {2.0, 4.0, 8.0};
  s.disk_gbps = disks[rng.UniformInt(0, 2)];
  // The heuristic's distinct-binding pass wraps around on tiny pools, so
  // keep a couple of spare hosts beyond the replication factor.
  s.replication = static_cast<int>(rng.UniformInt(2, std::min(3, s.hosts - 2)));
  s.files = static_cast<int>(rng.UniformInt(1, 3));
  s.file_mb = rng.Uniform(32.0, 256.0);
  s.block_mb = rng.Uniform(32.0, 128.0);
  s.cloudtalk_writes = rng.Bernoulli(0.5) ? 1 : 0;
  s.cloudtalk_reads = rng.Bernoulli(0.5) ? 1 : 0;
  s.cloudtalk_map = rng.Bernoulli(0.5) ? 1 : 0;
  s.cloudtalk_reduce = rng.Bernoulli(0.5) ? 1 : 0;
  s.background_pairs = static_cast<int>(rng.UniformInt(0, 3));
  s.background_gbps = rng.Uniform(0.2, 1.0);
  s.disk_loads = static_cast<int>(rng.UniformInt(0, 2));
  s.disk_load_gbps = rng.Uniform(0.5, 3.0);
  s.run_mapreduce = rng.Bernoulli(0.7) ? 1 : 0;
  s.reducers = static_cast<int>(rng.UniformInt(1, 4));
  s.map_blocks = static_cast<int>(rng.UniformInt(2, 6));
  s.eval_threads = rng.Bernoulli(0.25) ? 2 : 1;
  s.horizon_s = rng.Uniform(120.0, 600.0);
  s.status_period_ms = rng.Uniform(50.0, 200.0);
  return s;
}

// `key value` lines; order-independent; '#' starts a comment.
void SerializeScenario(const Scenario& s, std::ostream& os) {
  os << "# ctcheck scenario (replay with: ctcheck --replay <this file>)\n";
  os << "seed " << s.seed << "\n";
  os << "fabric " << s.fabric << "\n";
  os << "hosts " << s.hosts << "\n";
  os << "host_link_gbps " << s.host_link_gbps << "\n";
  os << "disk_gbps " << s.disk_gbps << "\n";
  os << "replication " << s.replication << "\n";
  os << "files " << s.files << "\n";
  os << "file_mb " << s.file_mb << "\n";
  os << "block_mb " << s.block_mb << "\n";
  os << "cloudtalk_writes " << s.cloudtalk_writes << "\n";
  os << "cloudtalk_reads " << s.cloudtalk_reads << "\n";
  os << "cloudtalk_map " << s.cloudtalk_map << "\n";
  os << "cloudtalk_reduce " << s.cloudtalk_reduce << "\n";
  os << "background_pairs " << s.background_pairs << "\n";
  os << "background_gbps " << s.background_gbps << "\n";
  os << "disk_loads " << s.disk_loads << "\n";
  os << "disk_load_gbps " << s.disk_load_gbps << "\n";
  os << "run_mapreduce " << s.run_mapreduce << "\n";
  os << "reducers " << s.reducers << "\n";
  os << "map_blocks " << s.map_blocks << "\n";
  os << "eval_threads " << s.eval_threads << "\n";
  os << "horizon_s " << s.horizon_s << "\n";
  os << "status_period_ms " << s.status_period_ms << "\n";
}

bool ParseScenario(std::istream& is, Scenario* s, std::string* error) {
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key)) {
      continue;  // Blank / comment-only line.
    }
    bool ok = true;
    if (key == "seed") {
      ok = static_cast<bool>(fields >> s->seed);
    } else if (key == "fabric") {
      ok = static_cast<bool>(fields >> s->fabric) &&
           (s->fabric == "single" || s->fabric == "vl2" || s->fabric == "ec2");
    } else if (key == "hosts") {
      ok = static_cast<bool>(fields >> s->hosts) && s->hosts >= 2;
    } else if (key == "host_link_gbps") {
      ok = static_cast<bool>(fields >> s->host_link_gbps) && s->host_link_gbps > 0;
    } else if (key == "disk_gbps") {
      ok = static_cast<bool>(fields >> s->disk_gbps) && s->disk_gbps > 0;
    } else if (key == "replication") {
      ok = static_cast<bool>(fields >> s->replication) && s->replication >= 1;
    } else if (key == "files") {
      ok = static_cast<bool>(fields >> s->files) && s->files >= 0;
    } else if (key == "file_mb") {
      ok = static_cast<bool>(fields >> s->file_mb) && s->file_mb > 0;
    } else if (key == "block_mb") {
      ok = static_cast<bool>(fields >> s->block_mb) && s->block_mb > 0;
    } else if (key == "cloudtalk_writes") {
      ok = static_cast<bool>(fields >> s->cloudtalk_writes);
    } else if (key == "cloudtalk_reads") {
      ok = static_cast<bool>(fields >> s->cloudtalk_reads);
    } else if (key == "cloudtalk_map") {
      ok = static_cast<bool>(fields >> s->cloudtalk_map);
    } else if (key == "cloudtalk_reduce") {
      ok = static_cast<bool>(fields >> s->cloudtalk_reduce);
    } else if (key == "background_pairs") {
      ok = static_cast<bool>(fields >> s->background_pairs) && s->background_pairs >= 0;
    } else if (key == "background_gbps") {
      ok = static_cast<bool>(fields >> s->background_gbps);
    } else if (key == "disk_loads") {
      ok = static_cast<bool>(fields >> s->disk_loads) && s->disk_loads >= 0;
    } else if (key == "disk_load_gbps") {
      ok = static_cast<bool>(fields >> s->disk_load_gbps);
    } else if (key == "run_mapreduce") {
      ok = static_cast<bool>(fields >> s->run_mapreduce);
    } else if (key == "reducers") {
      ok = static_cast<bool>(fields >> s->reducers) && s->reducers >= 1;
    } else if (key == "map_blocks") {
      ok = static_cast<bool>(fields >> s->map_blocks) && s->map_blocks >= 1;
    } else if (key == "eval_threads") {
      ok = static_cast<bool>(fields >> s->eval_threads) && s->eval_threads >= 1;
    } else if (key == "horizon_s") {
      ok = static_cast<bool>(fields >> s->horizon_s) && s->horizon_s > 0;
    } else if (key == "status_period_ms") {
      ok = static_cast<bool>(fields >> s->status_period_ms) && s->status_period_ms > 0;
    } else {
      ok = false;
    }
    if (!ok) {
      *error = "line " + std::to_string(lineno) + ": bad scenario field: " + line;
      return false;
    }
  }
  if (s->replication > s->hosts) {
    *error = "replication exceeds host count";
    return false;
  }
  return true;
}

Topology BuildTopology(const Scenario& s) {
  if (s.fabric == "vl2") {
    Vl2Params params;
    params.hosts_per_rack = 4;
    params.num_racks = (s.hosts + params.hosts_per_rack - 1) / params.hosts_per_rack;
    params.max_hosts = s.hosts;
    params.host_link = s.host_link_gbps * kGbps;
    params.host_caps.nic_up = s.host_link_gbps * kGbps;
    params.host_caps.nic_down = s.host_link_gbps * kGbps;
    params.host_caps.disk_read = s.disk_gbps * kGbps;
    params.host_caps.disk_write = s.disk_gbps * kGbps;
    return MakeVl2(params);
  }
  if (s.fabric == "ec2") {
    Ec2Params params;
    params.num_instances = s.hosts;
    params.instance_rate = s.host_link_gbps * kGbps;
    params.disk_read = s.disk_gbps * kGbps;
    params.disk_write = s.disk_gbps * kGbps;
    return MakeEc2(params);
  }
  SingleSwitchParams params;
  params.num_hosts = s.hosts;
  params.link_capacity = s.host_link_gbps * kGbps;
  params.host_caps.nic_up = s.host_link_gbps * kGbps;
  params.host_caps.nic_down = s.host_link_gbps * kGbps;
  params.host_caps.disk_read = s.disk_gbps * kGbps;
  params.host_caps.disk_write = s.disk_gbps * kGbps;
  return MakeSingleSwitch(params);
}

struct RunResult {
  std::vector<check::Violation> violations;
  Seconds end_time = 0;
  int64_t blocks_written = 0;
  int64_t blocks_read = 0;
};

RunResult RunScenario(const Scenario& s) {
  check::RecordingSink sink;
  check::SetCheckSink(&sink);
  check::SetViolationPolicy(check::OnViolation::kLogAndContinue);

  RunResult result;
  {
    ClusterOptions options;
    options.status_period = s.status_period_ms * kMillisecond;
    options.seed = s.seed;
    options.server.seed = s.seed;
    options.server.eval_threads = s.eval_threads;
    // The server ctor re-applies the policy process-wide; keep it aligned
    // with the fuzzer's survive-and-report mode.
    options.server.invariant_policy = check::OnViolation::kLogAndContinue;
    Cluster cluster(BuildTopology(s), options);
    cluster.StartStatusSweep();

    Rng rng(s.seed ^ 0x9e3779b97f4a7c15ull);  // Workload stream, decoupled from generation.
    const int n = cluster.num_hosts();
    for (int i = 0; i < s.background_pairs; ++i) {
      const NodeId src = cluster.host(static_cast<int>(rng.UniformInt(0, n - 1)));
      NodeId dst = src;
      while (dst == src) {
        dst = cluster.host(static_cast<int>(rng.UniformInt(0, n - 1)));
      }
      cluster.AddBackgroundPair(src, dst, s.background_gbps * kGbps);
    }
    for (int i = 0; i < s.disk_loads; ++i) {
      const NodeId host = cluster.host(static_cast<int>(rng.UniformInt(0, n - 1)));
      cluster.AddDiskLoad(host, s.disk_load_gbps * kGbps, s.disk_load_gbps * kGbps);
    }

    HdfsOptions hdfs_options;
    hdfs_options.block_size = s.block_mb * kMB;
    hdfs_options.replication = std::min(s.replication, n);
    hdfs_options.cloudtalk_writes = s.cloudtalk_writes != 0;
    hdfs_options.cloudtalk_reads = s.cloudtalk_reads != 0;
    MiniHdfs hdfs(&cluster, hdfs_options);

    // Read-after-write chains: each file is written from a random client
    // and, once durable, read back to a different random host.
    for (int f = 0; f < s.files; ++f) {
      const std::string name = "file" + std::to_string(f);
      const NodeId writer = cluster.host(static_cast<int>(rng.UniformInt(0, n - 1)));
      const NodeId reader = cluster.host(static_cast<int>(rng.UniformInt(0, n - 1)));
      const Bytes bytes = s.file_mb * kMB;
      const Seconds start = rng.Uniform(0.0, 5.0);
      FluidSimulation& sim = cluster.sim();
      MiniHdfs* fs = &hdfs;
      sim.Schedule(start, [fs, writer, reader, name, bytes] {
        fs->WriteFile(writer, name, bytes,
                      [fs, reader, name](Seconds, Seconds) { fs->ReadFile(reader, name, nullptr); });
      });
    }

    MapRedOptions mr_options;
    mr_options.cloudtalk_map = s.cloudtalk_map != 0;
    mr_options.cloudtalk_reduce = s.cloudtalk_reduce != 0;
    MiniMapReduce mapred(&cluster, &hdfs, mr_options);
    if (s.run_mapreduce != 0) {
      const int rep = std::min(s.replication, n);
      std::vector<std::vector<NodeId>> replicas;
      Rng placement_rng(s.seed + 17);
      for (int b = 0; b < s.map_blocks; ++b) {
        std::vector<NodeId> block;
        for (int idx : placement_rng.SampleWithoutReplacement(n, rep)) {
          block.push_back(cluster.host(idx));
        }
        replicas.push_back(std::move(block));
      }
      hdfs.InstallFile("mr_input", s.map_blocks * s.block_mb * kMB, std::move(replicas));
      MiniMapReduce* mr = &mapred;
      cluster.sim().Schedule(1.0, [mr, &s] { mr->RunJob("mr_input", s.reducers, nullptr); });
    }

    // The status sweep reschedules itself forever, so drive a bounded
    // horizon in steps (each step recomputes and verifies allocations).
    const int steps = 25;
    for (int i = 1; i <= steps; ++i) {
      cluster.RunUntil(s.horizon_s * i / steps);
    }
    cluster.sim().CheckInvariantsNow();
    result.end_time = cluster.now();
    result.blocks_written = hdfs.blocks_written();
    result.blocks_read = hdfs.blocks_read();
  }

  check::SetCheckSink(nullptr);
  result.violations = sink.TakeAll();
  return result;
}

// ---- --diff-opt: differential fuzz of the static optimisation passes ----
//
// Generates a random-but-valid query: up to two declarations (one possibly
// shared by several variables, the recipe for O200 symmetry), optional
// scalar requirements, and flows mixing literal and variable endpoints with
// occasional zero sizes (O400), start offsets, rate chains (shared chain
// groups), and literal-only background flows (binding-independent groups).
std::string GenerateDiffOptQuery(uint64_t seed) {
  Rng rng(seed ^ 0xc2b2ae3d27d4eb4full);
  std::ostringstream q;
  const int num_hosts = static_cast<int>(rng.UniformInt(4, 8));
  std::vector<std::string> hosts;
  for (int i = 0; i < num_hosts; ++i) {
    hosts.push_back("10.1.0." + std::to_string(i + 1));
  }
  if (rng.Bernoulli(0.25)) {
    q << "option allow_same\n";
  }
  if (rng.Bernoulli(0.25)) {
    q << "option threads 2\n";
  }
  const auto pool = [&](int min_size) {
    const int k = static_cast<int>(rng.UniformInt(min_size, num_hosts));
    std::string out = "(";
    bool first = true;
    for (const int idx : rng.SampleWithoutReplacement(num_hosts, k)) {
      out += (first ? "" : " ") + hosts[idx];
      first = false;
    }
    return out + ")";
  };
  std::vector<std::string> vars;
  const int shared = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < shared; ++i) {
    vars.push_back(std::string(1, static_cast<char>('A' + i)));
    q << vars.back() << " = ";
  }
  q << pool(2) << "\n";
  if (rng.Bernoulli(0.5)) {
    vars.push_back("D");
    q << "D = " << pool(2) << "\n";
  }
  for (const std::string& var : vars) {
    if (rng.Bernoulli(0.25)) {
      q << var << " requires cpu " << rng.UniformInt(1, 8);
      if (rng.Bernoulli(0.5)) {
        q << " mem " << rng.UniformInt(1, 16) << "G";
      }
      q << "\n";
    }
  }
  int flow_id = 0;
  std::vector<std::string> flow_names;
  const auto attrs = [&]() {
    std::string out;
    if (rng.Bernoulli(0.15)) {
      out += " size 0";
    } else {
      out += " size " + std::to_string(rng.UniformInt(1, 64)) + "M";
    }
    if (rng.Bernoulli(0.2)) {
      out += " start " + std::to_string(rng.UniformInt(1, 3));
    }
    if (!flow_names.empty() && rng.Bernoulli(0.3)) {
      out += " rate r(" +
             flow_names[static_cast<size_t>(
                 rng.UniformInt(0, static_cast<int64_t>(flow_names.size()) - 1))] +
             ")";
    } else if (rng.Bernoulli(0.25)) {
      out += " rate " + std::to_string(rng.UniformInt(1, 8) * 100) + "M";
    }
    return out;
  };
  for (const std::string& var : vars) {
    const int flows = static_cast<int>(rng.UniformInt(1, 2));
    for (int i = 0; i < flows; ++i) {
      const std::string name = "f" + std::to_string(flow_id++);
      const std::string peer = hosts[rng.UniformInt(0, num_hosts - 1)];
      q << name << " ";
      const int form = vars.size() > 1 ? static_cast<int>(rng.UniformInt(0, 2)) :
                                         static_cast<int>(rng.UniformInt(0, 1));
      if (form == 0) {
        q << peer << " -> " << var;
      } else if (form == 1) {
        q << var << " -> " << peer;
      } else {
        std::string other = var;
        while (other == var) {
          other = vars[rng.UniformInt(0, static_cast<int64_t>(vars.size()) - 1)];
        }
        q << var << " -> " << other;
      }
      q << attrs() << "\n";
      flow_names.push_back(name);
    }
  }
  if (rng.Bernoulli(0.3)) {
    q << "bg 10.1.9.1 -> 10.1.9.2 size " << rng.UniformInt(1, 32) << "M\n";
  }
  return q.str();
}

// Random per-address load, with scalar resources present half the time so
// requirement pruning (O100) actually bites.
StatusByAddress GenerateDiffOptStatus(const lang::CompiledQuery& compiled, uint64_t seed) {
  Rng rng(seed ^ 0x94d049bb133111ebull);
  StatusByAddress status;
  NodeId next = 1;
  const auto add = [&](const lang::Endpoint& e) {
    if (e.kind != lang::Endpoint::Kind::kAddress || status.count(e.name) > 0) {
      return;
    }
    StatusReport r;
    r.host = next++;
    r.nic_tx_cap = r.nic_rx_cap = 1e9;
    r.nic_tx_use = rng.Uniform(0, 9e8);
    r.nic_rx_use = rng.Uniform(0, 9e8);
    r.disk_read_cap = r.disk_write_cap = 4e9;
    r.disk_read_use = rng.Uniform(0, 2e9);
    r.disk_write_use = rng.Uniform(0, 2e9);
    if (rng.Bernoulli(0.5)) {
      r.cpu_cores_total = 8;
      r.cpu_cores_used = rng.Uniform(0, 8);
      r.mem_total = static_cast<Bytes>(16.0 * kGB);
      r.mem_used = static_cast<Bytes>(rng.Uniform(0, 16.0 * kGB));
    }
    status[e.name] = r;
  };
  for (const lang::VarComm& var : compiled.variables()) {
    for (const lang::Endpoint& e : var.pool) {
      add(e);
    }
  }
  for (const lang::CompiledFlow& flow : compiled.flows()) {
    add(flow.src);
    add(flow.dst);
  }
  return status;
}

std::string RenderBinding(const Binding& binding) {
  std::vector<std::string> parts;
  parts.reserve(binding.size());
  for (const auto& [var, endpoint] : binding) {
    parts.push_back(var + "=" + endpoint.ToString());
  }
  std::sort(parts.begin(), parts.end());
  std::string out;
  for (const std::string& part : parts) {
    out += (out.empty() ? "" : " ") + part;
  }
  return out;
}

// Runs one differential seed. Returns the D500 detail on divergence, or an
// empty string on agreement.
std::string RunDiffOptSeed(uint64_t seed, std::string* query_text) {
  *query_text = GenerateDiffOptQuery(seed);
  lang::DiagnosticSink sink;
  const lang::Query query = lang::ParseWithDiagnostics(*query_text, &sink);
  if (sink.has_errors()) {
    return "generated query does not parse (generator bug): " +
           sink.diagnostics().front().message;
  }
  Result<lang::CompiledQuery> compiled = lang::CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return "generated query does not compile (generator bug): " + compiled.error().message;
  }
  const StatusByAddress status = GenerateDiffOptStatus(compiled.value(), seed);

  ExhaustiveParams params;
  params.threads = query.options.eval_threads > 0 ? query.options.eval_threads : 1;
  params.optimize = false;
  FlowLevelEstimator est_off;
  const Result<ExhaustiveResult> off =
      EvaluateExhaustive(compiled.value(), status, est_off, params);
  params.optimize = true;
  FlowLevelEstimator est_on;
  const Result<ExhaustiveResult> on =
      EvaluateExhaustive(compiled.value(), status, est_on, params);

  if (!off.ok() && !on.ok()) {
    return "";  // Both walks agree there is no answer.
  }
  if (off.ok() != on.ok()) {
    return std::string("only the ") + (off.ok() ? "unoptimised" : "optimized") +
           " search found a binding (" +
           (off.ok() ? on.error().message : off.error().message) + ")";
  }
  const ExhaustiveResult& a = off.value();
  const ExhaustiveResult& b = on.value();
  const std::string binding_a = RenderBinding(a.binding);
  const std::string binding_b = RenderBinding(b.binding);
  if (binding_a != binding_b) {
    return "different winners: unoptimised [" + binding_a + "] vs optimized [" + binding_b +
           "]";
  }
  if (std::memcmp(&a.estimate.makespan, &b.estimate.makespan, sizeof(double)) != 0 ||
      std::memcmp(&a.estimate.aggregate_throughput, &b.estimate.aggregate_throughput,
                  sizeof(double)) != 0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "same winner but estimates differ: makespan %.17g vs %.17g",
                  a.estimate.makespan, b.estimate.makespan);
    return buf;
  }
  return "";
}

// ---- --diff-sim: differential fuzz of the incremental delta re-solve ----
//
// Same generated workloads as --diff-opt, but the two sides differ in the
// *estimator*, not the search: one FlowLevelEstimator serves every binding
// via checkpoint restore + delta patches, the other re-installs the groups
// cold per binding. Memoisation is disabled so every enumerated binding
// actually reaches the estimator, and the unoptimised walk is used on both
// sides so the enumeration order (and hence the delta chains the odometer
// produces) is identical. Any divergence is a D501 violation.
std::string RunDiffSimSeed(uint64_t seed, std::string* query_text) {
  *query_text = GenerateDiffOptQuery(seed);
  lang::DiagnosticSink sink;
  const lang::Query query = lang::ParseWithDiagnostics(*query_text, &sink);
  if (sink.has_errors()) {
    return "generated query does not parse (generator bug): " +
           sink.diagnostics().front().message;
  }
  Result<lang::CompiledQuery> compiled = lang::CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return "generated query does not compile (generator bug): " + compiled.error().message;
  }
  const StatusByAddress status = GenerateDiffOptStatus(compiled.value(), seed);

  ExhaustiveParams params;
  params.threads = query.options.eval_threads > 0 ? query.options.eval_threads : 1;
  params.optimize = false;
  params.memoize = false;
  FlowLevelEstimator est_cold(/*min_available_fraction=*/0.1, /*reuse_scratch=*/true,
                              /*delta_rebind=*/false);
  const Result<ExhaustiveResult> cold =
      EvaluateExhaustive(compiled.value(), status, est_cold, params);
  FlowLevelEstimator est_delta(/*min_available_fraction=*/0.1, /*reuse_scratch=*/true,
                               /*delta_rebind=*/true);
  const Result<ExhaustiveResult> delta =
      EvaluateExhaustive(compiled.value(), status, est_delta, params);

  if (!cold.ok() && !delta.ok()) {
    return "";  // Both sides agree there is no answer.
  }
  if (cold.ok() != delta.ok()) {
    return std::string("only the ") + (cold.ok() ? "cold" : "delta") +
           " estimator found a binding (" +
           (cold.ok() ? delta.error().message : cold.error().message) + ")";
  }
  const ExhaustiveResult& a = cold.value();
  const ExhaustiveResult& b = delta.value();
  const std::string binding_a = RenderBinding(a.binding);
  const std::string binding_b = RenderBinding(b.binding);
  if (binding_a != binding_b) {
    return "different winners: cold [" + binding_a + "] vs delta [" + binding_b + "]";
  }
  if (std::memcmp(&a.estimate.makespan, &b.estimate.makespan, sizeof(double)) != 0 ||
      std::memcmp(&a.estimate.aggregate_throughput, &b.estimate.aggregate_throughput,
                  sizeof(double)) != 0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "same winner but estimates differ: makespan %.17g vs %.17g",
                  a.estimate.makespan, b.estimate.makespan);
    return buf;
  }
  return "";
}

// ---- --diff-bound: differential fuzz of the sound bound analysis ----
//
// Same generated workloads as --diff-opt, but the oracle is *soundness*
// rather than identity: every legal binding's simulated makespan must lie
// inside the [LB, UB] interval lang::BoundAnalysis computes for that
// binding's full pin set — and inside the query-level interval with nothing
// pinned (the two nest by monotonicity). Estimator errors (no legal rate
// allocation) are skipped: bounds only promise to bracket successful
// estimates. Any escape is a D502 violation and the query is saved.
std::string RunDiffBoundSeed(uint64_t seed, std::string* query_text) {
  *query_text = GenerateDiffOptQuery(seed);
  lang::DiagnosticSink sink;
  const lang::Query query = lang::ParseWithDiagnostics(*query_text, &sink);
  if (sink.has_errors()) {
    return "generated query does not parse (generator bug): " +
           sink.diagnostics().front().message;
  }
  Result<lang::CompiledQuery> compiled = lang::CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return "generated query does not compile (generator bug): " + compiled.error().message;
  }
  const StatusByAddress status = GenerateDiffOptStatus(compiled.value(), seed);

  const lang::CompiledQuery& cq = compiled.value();
  const lang::BoundAnalysis bounds =
      lang::BoundAnalysis::Build(cq, status, lang::BoundOptions{});
  const auto& variables = cq.variables();
  const size_t n = variables.size();

  std::vector<std::vector<std::string>> names(n);
  std::vector<std::vector<int32_t>> ids(n);
  for (size_t i = 0; i < n; ++i) {
    for (const lang::Endpoint& e : variables[i].pool) {
      if (e.kind == lang::Endpoint::Kind::kAddress) {
        names[i].push_back(e.name);
        ids[i].push_back(bounds.HostId(e.name));
      }
    }
    if (names[i].empty()) {
      return "";  // Unanswerable variable; nothing to bound.
    }
  }

  const bool distinct = !query.options.allow_same_binding;
  FlowLevelEstimator estimator;  // Default fraction 0.1 = BoundOptions default.
  estimator.BeginQuery(cq, status);
  Binding binding;
  for (size_t i = 0; i < n; ++i) {
    binding[variables[i].name] = lang::Endpoint::Address("");
  }
  std::vector<lang::Endpoint*> slot(n);
  for (size_t i = 0; i < n; ++i) {
    slot[i] = &binding[variables[i].name];
  }
  std::vector<int32_t> var_host(n, -1);
  std::string violation;

  const std::function<void(size_t)> walk = [&](size_t d) {
    if (!violation.empty()) {
      return;
    }
    if (d == n) {
      const Result<Estimate> est = estimator.EstimateQuery(cq, binding, status);
      if (!est.ok()) {
        return;
      }
      const double makespan = est.value().makespan;
      const lang::BoundInterval interval = bounds.BindingBounds(var_host);
      const bool in_pinned = interval.Contains(makespan);
      const bool in_query = bounds.query_bounds().Contains(makespan);
      if (!in_pinned || !in_query) {
        char buf[320];
        std::snprintf(buf, sizeof(buf),
                      "binding [%s]: makespan %.17g escapes the %s interval "
                      "[%.17g, %.17g]",
                      RenderBinding(binding).c_str(), makespan,
                      in_pinned ? "query-level" : "fully-pinned",
                      in_pinned ? bounds.query_bounds().lb : interval.lb,
                      in_pinned ? bounds.query_bounds().ub : interval.ub);
        violation = buf;
      }
      return;
    }
    for (size_t c = 0; c < names[d].size(); ++c) {
      if (distinct) {
        bool clash = false;
        for (size_t p = 0; p < d; ++p) {
          if (var_host[p] == ids[d][c]) {
            clash = true;
            break;
          }
        }
        if (clash) {
          continue;
        }
      }
      slot[d]->name = names[d][c];
      var_host[d] = ids[d][c];
      walk(d + 1);
      var_host[d] = -1;
    }
  };
  walk(0);
  estimator.EndQuery();
  return violation;
}

int RunDiffBoundMode(int seeds, uint64_t seed_base, const std::string& out_dir, bool json) {
  if (seeds <= 0) {
    std::fprintf(stderr, "ctcheck: --seeds must be positive\n");
    return 2;
  }
  int violating = 0;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(i);
    std::string query_text;
    const std::string detail = RunDiffBoundSeed(seed, &query_text);
    if (detail.empty()) {
      continue;
    }
    ++violating;
    std::string saved_to = out_dir + "/diffbound_" + std::to_string(seed) + ".ct";
    std::ofstream out(saved_to);
    if (out) {
      out << "# ctcheck --diff-bound divergence, seed " << seed << " (D502)\n"
          << "# " << detail << "\n"
          << query_text;
    } else {
      std::fprintf(stderr, "ctcheck: cannot write '%s'\n", saved_to.c_str());
      saved_to.clear();
    }
    std::fprintf(stderr, "seed %llu: D502 bound soundness violation: %s%s%s\n",
                 static_cast<unsigned long long>(seed), detail.c_str(),
                 saved_to.empty() ? "" : ", query saved to ", saved_to.c_str());
  }
  if (json) {
    std::printf("{\"mode\":\"diff-bound\",\"scenarios\":%d,\"violating\":%d}\n", seeds,
                violating);
  } else {
    std::printf("ctcheck --diff-bound: %d seed(s), %d divergent\n", seeds, violating);
  }
  return violating > 0 ? 1 : 0;
}

int RunDiffSimMode(int seeds, uint64_t seed_base, const std::string& out_dir, bool json) {
  if (seeds <= 0) {
    std::fprintf(stderr, "ctcheck: --seeds must be positive\n");
    return 2;
  }
  int violating = 0;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(i);
    std::string query_text;
    const std::string detail = RunDiffSimSeed(seed, &query_text);
    if (detail.empty()) {
      continue;
    }
    ++violating;
    std::string saved_to = out_dir + "/diffsim_" + std::to_string(seed) + ".ct";
    std::ofstream out(saved_to);
    if (out) {
      out << "# ctcheck --diff-sim divergence, seed " << seed << " (D501)\n"
          << "# " << detail << "\n"
          << query_text;
    } else {
      std::fprintf(stderr, "ctcheck: cannot write '%s'\n", saved_to.c_str());
      saved_to.clear();
    }
    std::fprintf(stderr, "seed %llu: D501 delta re-solve divergence: %s%s%s\n",
                 static_cast<unsigned long long>(seed), detail.c_str(),
                 saved_to.empty() ? "" : ", query saved to ", saved_to.c_str());
  }
  if (json) {
    std::printf("{\"mode\":\"diff-sim\",\"scenarios\":%d,\"violating\":%d}\n", seeds,
                violating);
  } else {
    std::printf("ctcheck --diff-sim: %d seed(s), %d divergent\n", seeds, violating);
  }
  return violating > 0 ? 1 : 0;
}

int RunDiffOptMode(int seeds, uint64_t seed_base, const std::string& out_dir, bool json) {
  if (seeds <= 0) {
    std::fprintf(stderr, "ctcheck: --seeds must be positive\n");
    return 2;
  }
  int violating = 0;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(i);
    std::string query_text;
    const std::string detail = RunDiffOptSeed(seed, &query_text);
    if (detail.empty()) {
      continue;
    }
    ++violating;
    std::string saved_to = out_dir + "/diffopt_" + std::to_string(seed) + ".ct";
    std::ofstream out(saved_to);
    if (out) {
      out << "# ctcheck --diff-opt divergence, seed " << seed << " (D500)\n"
          << "# " << detail << "\n"
          << query_text;
    } else {
      std::fprintf(stderr, "ctcheck: cannot write '%s'\n", saved_to.c_str());
      saved_to.clear();
    }
    std::fprintf(stderr, "seed %llu: D500 optimisation divergence: %s%s%s\n",
                 static_cast<unsigned long long>(seed), detail.c_str(),
                 saved_to.empty() ? "" : ", query saved to ", saved_to.c_str());
  }
  if (json) {
    std::printf("{\"mode\":\"diff-opt\",\"scenarios\":%d,\"violating\":%d}\n", seeds,
                violating);
  } else {
    std::printf("ctcheck --diff-opt: %d seed(s), %d divergent\n", seeds, violating);
  }
  return violating > 0 ? 1 : 0;
}

// ---- --diff-canon: differential fuzz of semantic canonicalization ----
//
// Same generated workloads as --diff-opt, three oracles per seed (D503):
//  1. canon(canon(q)) == canon(q) (idempotence, byte-for-byte);
//  2. an equivalence-preserving mutation of q (alpha-renaming, flow
//     reordering, literal unfolding, duplicated pool entries, dead clauses)
//     canonicalizes to the same bytes;
//  3. the canonical form, evaluated exhaustively against the same status
//     snapshot, returns the original's winning binding (names mapped back
//     through the certificate) with a bit-identical estimate — the
//     invariance claim the server's answer cache rests on.

// Renames every variable and explicitly named flow by appending a suffix,
// updating declarations, requirements, variable endpoints, and flow
// references. A pure alpha-conversion: the query's meaning is unchanged.
void AlphaRenameQuery(lang::Query* query) {
  std::unordered_map<std::string, std::string> flow_rename;
  for (lang::FlowDef& flow : query->flows) {
    if (flow.explicit_name) {
      flow_rename[flow.name] = flow.name + "x";
    }
  }
  const auto rename_expr = [&flow_rename](lang::Expr* root) {
    std::vector<lang::Expr*> stack = {root};
    while (!stack.empty()) {
      lang::Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == lang::Expr::Kind::kRef) {
        const auto it = flow_rename.find(e->ref_flow);
        if (it != flow_rename.end()) {
          e->ref_flow = it->second;
        }
      } else if (e->kind == lang::Expr::Kind::kBinary) {
        stack.push_back(e->lhs.get());
        stack.push_back(e->rhs.get());
      }
    }
  };
  for (lang::VarDecl& decl : query->variables) {
    for (std::string& name : decl.names) {
      name += "x";
    }
  }
  for (lang::Requirement& requirement : query->requirements) {
    requirement.var += "x";
  }
  for (lang::FlowDef& flow : query->flows) {
    const auto it = flow_rename.find(flow.name);
    if (it != flow_rename.end()) {
      flow.name = it->second;
    }
    for (lang::Endpoint* e : {&flow.src, &flow.dst}) {
      if (e->kind == lang::Endpoint::Kind::kVariable) {
        e->name += "x";
      }
    }
    for (lang::AttrValue& attr : flow.attrs) {
      rename_expr(attr.value.get());
    }
  }
}

// Applies one random equivalence-preserving mutation in place.
void MutateEquivalent(lang::Query* query, Rng& rng) {
  switch (rng.UniformInt(0, 4)) {
    case 0:
      AlphaRenameQuery(query);
      break;
    case 1:
      std::reverse(query->flows.begin(), query->flows.end());
      break;
    case 2:
      // Unfold one literal: `v` -> `v*1`, which folds back bit-identically.
      for (lang::FlowDef& flow : query->flows) {
        for (lang::AttrValue& attr : flow.attrs) {
          if (attr.value->kind == lang::Expr::Kind::kLiteral) {
            attr.value = lang::Expr::Binary('*', std::move(attr.value),
                                            lang::Expr::Literal(1));
            return;
          }
        }
      }
      break;
    case 3:
      // Duplicate pool entries are deduplicated keep-first.
      if (!query->variables.empty() && !query->variables.front().values.empty()) {
        lang::VarDecl& decl = query->variables.front();
        decl.values.push_back(decl.values.front());
        decl.value_spans.clear();
      }
      break;
    case 4:
      // A dead clause: `start 0` is the attribute's default.
      for (lang::FlowDef& flow : query->flows) {
        if (flow.FindAttr(lang::Attr::kStart) == nullptr) {
          flow.attrs.push_back({lang::Attr::kStart, lang::Expr::Literal(0), lang::Span{}});
          return;
        }
      }
      break;
  }
}

std::string RunDiffCanonSeed(uint64_t seed, std::string* query_text) {
  *query_text = GenerateDiffOptQuery(seed);
  lang::DiagnosticSink sink;
  const lang::Query query = lang::ParseWithDiagnostics(*query_text, &sink);
  if (sink.has_errors()) {
    return "generated query does not parse (generator bug): " +
           sink.diagnostics().front().message;
  }
  Result<lang::CompiledQuery> compiled = lang::CompiledQuery::Compile(query);
  if (!compiled.ok()) {
    return "generated query does not compile (generator bug): " + compiled.error().message;
  }
  const Result<lang::CanonicalQuery> canon = lang::Canonicalize(query);
  if (!canon.ok()) {
    return "error-free query failed to canonicalize: " + canon.error().message;
  }

  // Oracle 1: idempotence.
  const Result<lang::CanonicalQuery> twice = lang::Canonicalize(canon.value().query);
  if (!twice.ok()) {
    return "canonical form failed to re-canonicalize: " + twice.error().message;
  }
  if (twice.value().text != canon.value().text) {
    return "canon is not idempotent: [" + canon.value().text + "] re-canonicalizes to [" +
           twice.value().text + "]";
  }

  // Oracle 2: equivalence-preserving mutations keep the canonical bytes.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  lang::DiagnosticSink mutant_sink;
  lang::Query mutant = lang::ParseWithDiagnostics(*query_text, &mutant_sink);
  const int mutations = static_cast<int>(rng.UniformInt(1, 3));
  for (int i = 0; i < mutations; ++i) {
    MutateEquivalent(&mutant, rng);
  }
  const Result<lang::CanonicalQuery> mutated = lang::Canonicalize(mutant);
  if (!mutated.ok()) {
    return "mutated-equivalent query failed to canonicalize: " + mutated.error().message;
  }
  if (mutated.value().text != canon.value().text) {
    return "equivalent mutation changed the canonical form: [" + canon.value().text +
           "] vs [" + mutated.value().text + "]";
  }

  // Oracle 3: the canonical form is answered exactly like the original.
  Result<lang::CompiledQuery> canon_compiled =
      lang::CompiledQuery::Compile(canon.value().query);
  if (!canon_compiled.ok()) {
    return "canonical form does not compile: " + canon_compiled.error().message;
  }
  const StatusByAddress status = GenerateDiffOptStatus(compiled.value(), seed);
  ExhaustiveParams params;
  params.threads = 1;
  params.optimize = false;
  FlowLevelEstimator est_original;
  const Result<ExhaustiveResult> original =
      EvaluateExhaustive(compiled.value(), status, est_original, params);
  FlowLevelEstimator est_canonical;
  const Result<ExhaustiveResult> canonical =
      EvaluateExhaustive(canon_compiled.value(), status, est_canonical, params);
  if (original.ok() != canonical.ok()) {
    return std::string("only the ") + (original.ok() ? "original" : "canonical") +
           " form found a binding (" +
           (original.ok() ? canonical.error().message : original.error().message) + ")";
  }
  if (!original.ok()) {
    return "";  // Both forms agree there is no answer.
  }
  Binding mapped;
  for (const auto& [var, endpoint] : canonical.value().binding) {
    const std::string* name = canon.value().OriginalVariable(var);
    mapped[name != nullptr ? *name : var] = endpoint;
  }
  const std::string binding_a = RenderBinding(original.value().binding);
  const std::string binding_b = RenderBinding(mapped);
  if (binding_a != binding_b) {
    return "different winners: original [" + binding_a + "] vs canonical [" + binding_b +
           "]";
  }
  const Estimate& a = original.value().estimate;
  const Estimate& b = canonical.value().estimate;
  if (std::memcmp(&a.makespan, &b.makespan, sizeof(double)) != 0 ||
      std::memcmp(&a.aggregate_throughput, &b.aggregate_throughput, sizeof(double)) != 0) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "same winner but estimates differ: makespan %.17g vs %.17g", a.makespan,
                  b.makespan);
    return buf;
  }
  return "";
}

int RunDiffCanonMode(int seeds, uint64_t seed_base, const std::string& out_dir, bool json) {
  if (seeds <= 0) {
    std::fprintf(stderr, "ctcheck: --seeds must be positive\n");
    return 2;
  }
  int violating = 0;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(i);
    std::string query_text;
    const std::string detail = RunDiffCanonSeed(seed, &query_text);
    if (detail.empty()) {
      continue;
    }
    ++violating;
    std::string saved_to = out_dir + "/diffcanon_" + std::to_string(seed) + ".ct";
    std::ofstream out(saved_to);
    if (out) {
      out << "# ctcheck --diff-canon divergence, seed " << seed << " (D503)\n"
          << "# " << detail << "\n"
          << query_text;
    } else {
      std::fprintf(stderr, "ctcheck: cannot write '%s'\n", saved_to.c_str());
      saved_to.clear();
    }
    std::fprintf(stderr, "seed %llu: D503 canonicalization violation: %s%s%s\n",
                 static_cast<unsigned long long>(seed), detail.c_str(),
                 saved_to.empty() ? "" : ", query saved to ", saved_to.c_str());
  }
  if (json) {
    std::printf("{\"mode\":\"diff-canon\",\"scenarios\":%d,\"violating\":%d}\n", seeds,
                violating);
  } else {
    std::printf("ctcheck --diff-canon: %d seed(s), %d divergent\n", seeds, violating);
  }
  return violating > 0 ? 1 : 0;
}

// ---- --diff-scope: differential fuzz of the footprint analysis ----
//
// Two oracles per seed (D504):
//  1. footprint identity: a generated query (active variables plus an inert
//     slice-wide "catalog" pool whose hosts the scope analysis excludes) is
//     answered on two identically seeded simulated clusters, one probing
//     only the static footprint and one probing everything; the replies
//     must be identical and footprint probing must never send more probes.
//  2. disjoint commutation: two queries drawing from disjoint host slices
//     are answered in both orders on twin cluster pairs with reservations
//     armed; neither query's reply may depend on the admission order — the
//     property the server's concurrent admission gate rests on.

constexpr int kDiffScopeHosts = 16;

// Single-switch hosts are 10.0.0.1 .. 10.0.0.N (rack 0), index 0-based.
std::string DiffScopeHost(int index) { return "10.0.0." + std::to_string(index + 1); }

// Generates a query whose pool and literal addresses stay inside the host
// slice [lo, hi]: one or two active variables with flows, an inert
// slice-wide pool, and occasional requirements / static / noreserve.
std::string GenerateDiffScopeQuery(uint64_t seed, int lo, int hi) {
  Rng rng(seed ^ 0xa0761d6478bd642full);
  std::ostringstream q;
  if (rng.Bernoulli(0.2)) {
    q << "option noreserve\n";
  }
  if (rng.Bernoulli(0.2)) {
    q << "option static\n";
  }
  const int span = hi - lo + 1;
  const auto slice_pool = [&](int min_size) {
    const int k = static_cast<int>(rng.UniformInt(std::min(min_size, span), span));
    std::string out = "(";
    bool first = true;
    for (const int idx : rng.SampleWithoutReplacement(span, k)) {
      out += (first ? "" : " ") + DiffScopeHost(lo + idx);
      first = false;
    }
    return out + ")";
  };
  const int actives = static_cast<int>(rng.UniformInt(1, 2));
  std::vector<std::string> vars;
  for (int i = 0; i < actives; ++i) {
    vars.push_back(std::string(1, static_cast<char>('A' + i)));
    q << vars.back() << " = " << slice_pool(2) << "\n";
  }
  // The inert variable: declared, never used by a flow or requirement — its
  // hosts are exactly the probes the identity oracle must prove harmless.
  q << "catalog = " << slice_pool(2) << "\n";
  if (rng.Bernoulli(0.3)) {
    q << vars.front() << " requires cpu " << rng.UniformInt(1, 4) << "\n";
  }
  int flow_id = 0;
  for (const std::string& var : vars) {
    const std::string literal =
        DiffScopeHost(lo + static_cast<int>(rng.UniformInt(0, span - 1)));
    q << "f" << flow_id++ << " ";
    if (rng.Bernoulli(0.5)) {
      q << literal << " -> " << var;
    } else {
      q << var << " -> " << literal;
    }
    q << " size " << rng.UniformInt(1, 64) << "M";
    if (rng.Bernoulli(0.25)) {
      q << " rate " << rng.UniformInt(1, 8) * 100 << "M";
    }
    q << "\n";
  }
  if (actives == 2 && rng.Bernoulli(0.5)) {
    q << "x " << vars[0] << " -> " << vars[1] << " size " << rng.UniformInt(1, 32) << "M\n";
  }
  return q.str();
}

Cluster MakeDiffScopeCluster(uint64_t seed, bool scope_probe_pruning,
                             Seconds reservation_hold) {
  SingleSwitchParams params;
  params.num_hosts = kDiffScopeHosts;
  params.host_caps.nic_up = 1 * kGbps;
  params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = 4 * kGbps;
  params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions options;
  options.seed = seed;
  options.server.seed = seed;
  options.server.eval_threads = 1;
  options.server.reservation_hold = reservation_hold;
  options.server.scope_probe_pruning = scope_probe_pruning;
  Cluster cluster(MakeSingleSwitch(params), options);
  cluster.StartStatusSweep();
  return cluster;
}

// Seeds deterministic background traffic so probed status actually differs
// across hosts (an all-idle fleet would make every oracle trivially pass).
void AddDiffScopeLoad(Cluster* cluster, uint64_t seed) {
  Rng rng(seed ^ 0x8ebc6af09c88c6e3ull);
  const std::vector<NodeId>& hosts = cluster->topology().hosts();
  const int pairs = static_cast<int>(rng.UniformInt(2, 5));
  for (int i = 0; i < pairs; ++i) {
    const int a = static_cast<int>(rng.UniformInt(0, kDiffScopeHosts - 1));
    const int b = static_cast<int>(rng.UniformInt(0, kDiffScopeHosts - 1));
    if (a == b) {
      continue;
    }
    cluster->AddBackgroundPair(hosts[a], hosts[b],
                               static_cast<double>(rng.UniformInt(1, 8)) * 0.1 * kGbps);
  }
  cluster->MeasureNow();
}

// Everything an answer exposes, rendered bit-faithfully (%.17g doubles):
// ok-ness and message, binding, per-variable scores, estimate makespan.
// Probe stats and traces legitimately differ between the two sides.
std::string DiffScopeReplyDigest(const Result<QueryReply>& reply) {
  if (!reply.ok()) {
    return "error: " + reply.error().message;
  }
  std::string out = "binding [" + RenderBinding(reply.value().binding) + "] scores [";
  std::vector<std::string> scores;
  for (const auto& [name, score] : reply.value().scores) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s=%.17g", name.c_str(), score);
    scores.push_back(buf);
  }
  std::sort(scores.begin(), scores.end());
  for (const std::string& s : scores) {
    out += s + " ";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", reply.value().estimate.makespan);
  out += "] makespan " + std::string(buf);
  return out;
}

std::string RunDiffScopeSeed(uint64_t seed, std::string* query_text) {
  // Oracle 1: footprint identity against full-fleet probing.
  *query_text = GenerateDiffScopeQuery(seed, 0, kDiffScopeHosts - 1);
  {
    Cluster pruned = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/true, 0);
    Cluster full = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/false, 0);
    AddDiffScopeLoad(&pruned, seed);
    AddDiffScopeLoad(&full, seed);
    const Result<QueryReply> a = pruned.cloudtalk().Answer(*query_text);
    const Result<QueryReply> b = full.cloudtalk().Answer(*query_text);
    const std::string da = DiffScopeReplyDigest(a);
    const std::string db = DiffScopeReplyDigest(b);
    if (da != db) {
      return "footprint probing diverges from full probing: [" + da + "] vs [" + db + "]";
    }
    if (a.ok() && a.value().probe_stats.requests_sent > b.value().probe_stats.requests_sent) {
      return "footprint probing sent more probes (" +
             std::to_string(a.value().probe_stats.requests_sent) + ") than full probing (" +
             std::to_string(b.value().probe_stats.requests_sent) + ")";
    }
  }
  // Oracle 2: disjoint queries commute under reservations.
  const std::string left = GenerateDiffScopeQuery(seed * 2 + 1, 0, kDiffScopeHosts / 2 - 1);
  const std::string right =
      GenerateDiffScopeQuery(seed * 2 + 2, kDiffScopeHosts / 2, kDiffScopeHosts - 1);
  Cluster lr = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/true, 60.0);
  Cluster rl = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/true, 60.0);
  AddDiffScopeLoad(&lr, seed);
  AddDiffScopeLoad(&rl, seed);
  const std::string left_first = DiffScopeReplyDigest(lr.cloudtalk().Answer(left));
  const std::string right_second = DiffScopeReplyDigest(lr.cloudtalk().Answer(right));
  const std::string right_first = DiffScopeReplyDigest(rl.cloudtalk().Answer(right));
  const std::string left_second = DiffScopeReplyDigest(rl.cloudtalk().Answer(left));
  if (left_first != left_second) {
    *query_text = left + "# --- disjoint peer, answered on the same cluster ---\n" + right;
    return "disjoint queries do not commute: first reply depends on order: [" + left_first +
           "] vs [" + left_second + "]";
  }
  if (right_second != right_first) {
    *query_text = left + "# --- disjoint peer, answered on the same cluster ---\n" + right;
    return "disjoint queries do not commute: second reply depends on order: [" +
           right_first + "] vs [" + right_second + "]";
  }
  return "";
}

int RunDiffScopeMode(int seeds, uint64_t seed_base, const std::string& out_dir, bool json) {
  if (seeds <= 0) {
    std::fprintf(stderr, "ctcheck: --seeds must be positive\n");
    return 2;
  }
  int violating = 0;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(i);
    std::string query_text;
    const std::string detail = RunDiffScopeSeed(seed, &query_text);
    if (detail.empty()) {
      continue;
    }
    ++violating;
    std::string saved_to = out_dir + "/diffscope_" + std::to_string(seed) + ".ct";
    std::ofstream out(saved_to);
    if (out) {
      out << "# ctcheck --diff-scope divergence, seed " << seed << " (D504)\n"
          << "# " << detail << "\n"
          << query_text;
    } else {
      std::fprintf(stderr, "ctcheck: cannot write '%s'\n", saved_to.c_str());
      saved_to.clear();
    }
    std::fprintf(stderr, "seed %llu: D504 footprint violation: %s%s%s\n",
                 static_cast<unsigned long long>(seed), detail.c_str(),
                 saved_to.empty() ? "" : ", query saved to ", saved_to.c_str());
  }
  if (json) {
    std::printf("{\"mode\":\"diff-scope\",\"scenarios\":%d,\"violating\":%d}\n", seeds,
                violating);
  } else {
    std::printf("ctcheck --diff-scope: %d seed(s), %d divergent\n", seeds, violating);
  }
  return violating > 0 ? 1 : 0;
}

// ---- --diff-shard: differential fuzz of the sharded deployment ----
//
// Three oracles per seed (D505), each comparing a ShardedServer against the
// single CloudTalkServer on identically seeded twin clusters (same topology,
// same background load, same server seed — so the sampling RNG streams and
// the simulated status plane line up exactly):
//  1. sequential identity: three generated queries are answered in sequence
//     over 1, 2, and 4 shards with reservations armed; every reply must be
//     byte-identical, which also proves the partitioned reservation tables
//     (two-phase prepare/commit) behave like the flat one.
//  2. slice merge: a packet-level query must pick the same winner when the
//     exhaustive candidate walk is split into per-shard slices and merged
//     by (makespan, odometer rank).
//  3. concurrent admission: two queries over disjoint host slices answered
//     concurrently through the 4-shard front end's N-slot gate must match
//     the single server answering them in sequence.

ShardedConfig DiffShardConfig(Cluster* cluster, int shards) {
  ShardedConfig cfg;
  cfg.server = cluster->cloudtalk().config();
  cfg.shards = shards;
  return cfg;
}

std::string RunDiffShardSeed(uint64_t seed, std::string* query_text) {
  constexpr int kShardCounts[] = {1, 2, 4};
  // Oracle 1: sequential identity, reservations armed (0.3 s hold, so the
  // second and third queries see the first's reservations).
  std::vector<std::string> queries;
  for (uint64_t k = 0; k < 3; ++k) {
    queries.push_back(GenerateDiffScopeQuery(seed * 3 + k, 0, kDiffScopeHosts - 1));
  }
  *query_text = queries[0] + "# --- answered in sequence ---\n" + queries[1] +
                "# --- answered in sequence ---\n" + queries[2];
  std::vector<std::string> oracle;
  {
    Cluster cluster = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/true, 0.3);
    AddDiffScopeLoad(&cluster, seed);
    for (const std::string& q : queries) {
      oracle.push_back(DiffScopeReplyDigest(cluster.cloudtalk().Answer(q)));
    }
  }
  for (const int shards : kShardCounts) {
    Cluster cluster = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/true, 0.3);
    AddDiffScopeLoad(&cluster, seed);
    ShardedServer sharded(DiffShardConfig(&cluster, shards), &cluster.directory(),
                          &cluster.transport(), [&cluster] { return cluster.now(); });
    for (size_t i = 0; i < queries.size(); ++i) {
      const std::string got = DiffScopeReplyDigest(sharded.Answer(queries[i]));
      if (got != oracle[i]) {
        return "sharded reply diverges from single server (" + std::to_string(shards) +
               " shard(s), query " + std::to_string(i + 1) + " of 3): [" + got + "] vs [" +
               oracle[i] + "]";
      }
    }
  }
  // Oracle 2: per-shard search slices. A packet-level query over a small
  // host slice keeps the exhaustive walk cheap while still exercising the
  // (makespan, odometer rank) merge.
  {
    const std::string packet_query =
        "option packet\n" + GenerateDiffScopeQuery(seed ^ 0x9e3779b97f4a7c15ull, 0, 5);
    Cluster oracle_cluster = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/true, 0);
    AddDiffScopeLoad(&oracle_cluster, seed);
    PacketLevelEstimator oracle_estimator(&oracle_cluster.topology(),
                                          &oracle_cluster.directory());
    CloudTalkServer single(oracle_cluster.cloudtalk().config(), &oracle_cluster.directory(),
                           &oracle_cluster.transport(),
                           [&oracle_cluster] { return oracle_cluster.now(); },
                           &oracle_estimator);
    const std::string want = DiffScopeReplyDigest(single.Answer(packet_query));
    for (const int shards : kShardCounts) {
      Cluster cluster = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/true, 0);
      AddDiffScopeLoad(&cluster, seed);
      PacketLevelEstimator estimator(&cluster.topology(), &cluster.directory());
      ShardedServer sharded(DiffShardConfig(&cluster, shards), &cluster.directory(),
                            &cluster.transport(), [&cluster] { return cluster.now(); },
                            &estimator);
      const std::string got = DiffScopeReplyDigest(sharded.Answer(packet_query));
      if (got != want) {
        *query_text = packet_query;
        return "per-shard search slices merge to a different winner (" +
               std::to_string(shards) + " shard(s)): [" + got + "] vs [" + want + "]";
      }
    }
  }
  // Oracle 3: concurrent admission through the N-slot gate. The two queries
  // draw from disjoint host slices, so the sharded server may evaluate them
  // in parallel — the replies must still match the sequential single-server
  // answers.
  const std::string left = GenerateDiffScopeQuery(seed * 2 + 1, 0, kDiffScopeHosts / 2 - 1);
  const std::string right =
      GenerateDiffScopeQuery(seed * 2 + 2, kDiffScopeHosts / 2, kDiffScopeHosts - 1);
  Cluster oracle_cluster = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/true, 60.0);
  Cluster sharded_cluster = MakeDiffScopeCluster(seed, /*scope_probe_pruning=*/true, 60.0);
  AddDiffScopeLoad(&oracle_cluster, seed);
  AddDiffScopeLoad(&sharded_cluster, seed);
  const std::string left_want = DiffScopeReplyDigest(oracle_cluster.cloudtalk().Answer(left));
  const std::string right_want = DiffScopeReplyDigest(oracle_cluster.cloudtalk().Answer(right));
  ShardedServer sharded(DiffShardConfig(&sharded_cluster, 4), &sharded_cluster.directory(),
                        &sharded_cluster.transport(),
                        [&sharded_cluster] { return sharded_cluster.now(); });
  std::string left_got;
  std::string right_got;
  std::thread left_thread([&] { left_got = DiffScopeReplyDigest(sharded.Answer(left)); });
  std::thread right_thread([&] { right_got = DiffScopeReplyDigest(sharded.Answer(right)); });
  left_thread.join();
  right_thread.join();
  if (left_got != left_want || right_got != right_want) {
    *query_text = left + "# --- disjoint peer, admitted concurrently ---\n" + right;
    return "concurrently admitted replies diverge from sequential single server: [" +
           left_got + "] vs [" + left_want + "], [" + right_got + "] vs [" + right_want + "]";
  }
  return "";
}

int RunDiffShardMode(int seeds, uint64_t seed_base, const std::string& out_dir, bool json) {
  if (seeds <= 0) {
    std::fprintf(stderr, "ctcheck: --seeds must be positive\n");
    return 2;
  }
  int violating = 0;
  for (int i = 0; i < seeds; ++i) {
    const uint64_t seed = seed_base + static_cast<uint64_t>(i);
    std::string query_text;
    const std::string detail = RunDiffShardSeed(seed, &query_text);
    if (detail.empty()) {
      continue;
    }
    ++violating;
    std::string saved_to = out_dir + "/diffshard_" + std::to_string(seed) + ".ct";
    std::ofstream out(saved_to);
    if (out) {
      out << "# ctcheck --diff-shard divergence, seed " << seed << " (D505)\n"
          << "# " << detail << "\n"
          << query_text;
    } else {
      std::fprintf(stderr, "ctcheck: cannot write '%s'\n", saved_to.c_str());
      saved_to.clear();
    }
    std::fprintf(stderr, "seed %llu: D505 sharding violation: %s%s%s\n",
                 static_cast<unsigned long long>(seed), detail.c_str(),
                 saved_to.empty() ? "" : ", query saved to ", saved_to.c_str());
  }
  if (json) {
    std::printf("{\"mode\":\"diff-shard\",\"scenarios\":%d,\"violating\":%d}\n", seeds,
                violating);
  } else {
    std::printf("ctcheck --diff-shard: %d seed(s), %d divergent\n", seeds, violating);
  }
  return violating > 0 ? 1 : 0;
}

void PrintUsage(FILE* out) {
  std::fprintf(out,
               "usage: ctcheck [--seeds N] [--seed-base B] [--out DIR] [--json]\n"
               "       ctcheck --diff-opt [--seeds N] [--seed-base B] [--out DIR] [--json]\n"
               "       ctcheck --diff-sim [--seeds N] [--seed-base B] [--out DIR] [--json]\n"
               "       ctcheck --diff-bound [--seeds N] [--seed-base B] [--out DIR] [--json]\n"
               "       ctcheck --diff-canon [--seeds N] [--seed-base B] [--out DIR] [--json]\n"
               "       ctcheck --diff-scope [--seeds N] [--seed-base B] [--out DIR] [--json]\n"
               "       ctcheck --diff-shard [--seeds N] [--seed-base B] [--out DIR] [--json]\n"
               "       ctcheck --replay scenario.ctsc [--json]\n"
               "       ctcheck --catalog [--json]\n"
               "\n"
               "Seeded scenario fuzzer for the CloudTalk invariant checks: generates\n"
               "randomized cluster workloads, runs them with CT_INVARIANT armed, and\n"
               "serializes any violating scenario to a replayable .ctsc file.\n"
               "With --diff-opt, fuzzes the static optimisation passes instead: random\n"
               "queries and status snapshots are evaluated exhaustively with the passes\n"
               "off and on; any divergence is a D500 violation and the query is saved.\n"
               "With --diff-sim, fuzzes the incremental fluid solver: every binding is\n"
               "estimated twice, once via checkpoint-restore delta re-solve and once via\n"
               "a cold per-binding rebuild; any divergence is a D501 violation.\n"
               "With --diff-bound, fuzzes the sound bound analysis: every legal binding\n"
               "is simulated and its makespan checked against the static [LB, UB]\n"
               "interval; any escape is a D502 violation and the query is saved.\n"
               "With --diff-canon, fuzzes semantic canonicalization: canon must be\n"
               "idempotent, equivalence-preserving mutations must not change the\n"
               "canonical bytes, and the canonical form must be answered exactly like\n"
               "the original; any divergence is a D503 violation and the query is saved.\n"
               "With --diff-scope, fuzzes the static footprint analysis: probing only\n"
               "the computed footprint must answer exactly like probing everything, and\n"
               "queries with disjoint reservation footprints must commute; any\n"
               "divergence is a D504 violation and the query is saved.\n"
               "With --diff-shard, fuzzes the sharded deployment: a ShardedServer over\n"
               "1, 2, and 4 shards — hierarchical probe aggregation, per-shard search\n"
               "slices, two-phase cross-shard reservations, concurrent N-slot admission\n"
               "— must answer byte-identically to the single server; any divergence is\n"
               "a D505 violation and the query is saved.\n"
               "Exits 0 when every scenario is clean, 1 on violations, 2 on usage errors.\n");
}

void PrintCatalog(bool json) {
  if (json) {
    std::string out = "{\"invariants\":[";
    bool first = true;
    for (const check::InvariantInfo& info : check::InvariantCatalog()) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      out += "{\"code\":\"" + std::string(info.code) + "\",\"subsystem\":\"" +
             info.subsystem + "\",\"summary\":\"" + info.summary + "\"}";
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return;
  }
  for (const check::InvariantInfo& info : check::InvariantCatalog()) {
    std::printf("%-5s %-9s %s\n", info.code, info.subsystem, info.summary);
  }
}

int Main(int argc, char** argv) {
  int seeds = 20;
  uint64_t seed_base = 1;
  std::string out_dir = ".";
  std::string replay_path;
  bool json = false;
  bool catalog = false;
  bool diff_opt = false;
  bool diff_sim = false;
  bool diff_bound = false;
  bool diff_canon = false;
  bool diff_scope = false;
  bool diff_shard = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ctcheck: %s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::atoi(next("--seeds"));
    } else if (arg == "--seed-base") {
      seed_base = static_cast<uint64_t>(std::atoll(next("--seed-base")));
    } else if (arg == "--out") {
      out_dir = next("--out");
    } else if (arg == "--replay") {
      replay_path = next("--replay");
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--catalog") {
      catalog = true;
    } else if (arg == "--diff-opt") {
      diff_opt = true;
    } else if (arg == "--diff-sim") {
      diff_sim = true;
    } else if (arg == "--diff-bound") {
      diff_bound = true;
    } else if (arg == "--diff-canon") {
      diff_canon = true;
    } else if (arg == "--diff-scope") {
      diff_scope = true;
    } else if (arg == "--diff-shard") {
      diff_shard = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "ctcheck: unknown argument '%s'\n", arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  if (catalog) {
    PrintCatalog(json);
    return 0;
  }
  if (diff_opt) {
    return RunDiffOptMode(seeds, seed_base, out_dir, json);
  }
  if (diff_sim) {
    return RunDiffSimMode(seeds, seed_base, out_dir, json);
  }
  if (diff_bound) {
    return RunDiffBoundMode(seeds, seed_base, out_dir, json);
  }
  if (diff_canon) {
    return RunDiffCanonMode(seeds, seed_base, out_dir, json);
  }
  if (diff_scope) {
    return RunDiffScopeMode(seeds, seed_base, out_dir, json);
  }
  if (diff_shard) {
    return RunDiffShardMode(seeds, seed_base, out_dir, json);
  }
  if (!check::kInvariantsEnabled) {
    std::fprintf(stderr,
                 "ctcheck: warning: built without CLOUDTALK_INVARIANTS; the CT_INVARIANT "
                 "checks are compiled out and only always-on checkers run. Configure with "
                 "-DCLOUDTALK_INVARIANTS=ON for full coverage.\n");
  }

  std::vector<Scenario> scenarios;
  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "ctcheck: cannot open '%s'\n", replay_path.c_str());
      return 2;
    }
    Scenario s;
    std::string error;
    if (!ParseScenario(in, &s, &error)) {
      std::fprintf(stderr, "ctcheck: %s: %s\n", replay_path.c_str(), error.c_str());
      return 2;
    }
    scenarios.push_back(s);
  } else {
    if (seeds <= 0) {
      std::fprintf(stderr, "ctcheck: --seeds must be positive\n");
      return 2;
    }
    for (int i = 0; i < seeds; ++i) {
      scenarios.push_back(GenerateScenario(seed_base + static_cast<uint64_t>(i)));
    }
  }

  int violating = 0;
  int64_t total_violations = 0;
  std::string scenario_reports;  // JSON fragments, one per violating scenario.
  for (const Scenario& s : scenarios) {
    const RunResult result = RunScenario(s);
    total_violations += static_cast<int64_t>(result.violations.size());
    if (result.violations.empty()) {
      if (!json) {
        std::printf("seed %llu: clean (t=%.1fs, %lld blocks written, %lld read)\n",
                    static_cast<unsigned long long>(s.seed), result.end_time,
                    static_cast<long long>(result.blocks_written),
                    static_cast<long long>(result.blocks_read));
      }
      continue;
    }
    ++violating;
    std::string saved_to;
    if (replay_path.empty()) {
      saved_to = out_dir + "/scenario_" + std::to_string(s.seed) + ".ctsc";
      std::ofstream out(saved_to);
      if (out) {
        SerializeScenario(s, out);
      } else {
        std::fprintf(stderr, "ctcheck: cannot write '%s'\n", saved_to.c_str());
        saved_to.clear();
      }
    }
    if (json) {
      if (!scenario_reports.empty()) {
        scenario_reports.push_back(',');
      }
      scenario_reports += "{\"seed\":" + std::to_string(s.seed) + ",\"saved_to\":\"" +
                          saved_to + "\",\"report\":" +
                          check::ViolationsToJson(result.violations) + "}";
    } else {
      std::printf("seed %llu: %zu violation(s)%s%s\n",
                  static_cast<unsigned long long>(s.seed), result.violations.size(),
                  saved_to.empty() ? "" : ", scenario saved to ", saved_to.c_str());
      for (const check::Violation& v : result.violations) {
        std::fputs(check::FormatViolation(v).c_str(), stdout);
      }
    }
  }

  if (json) {
    std::printf("{\"scenarios\":%zu,\"violating\":%d,\"violations\":%lld,\"reports\":[%s]}\n",
                scenarios.size(), violating, static_cast<long long>(total_violations),
                scenario_reports.c_str());
  } else {
    std::printf("ctcheck: %zu scenario(s), %d violating, %lld violation(s) total\n",
                scenarios.size(), violating, static_cast<long long>(total_violations));
  }
  return violating > 0 ? 1 : 0;
}

}  // namespace
}  // namespace cloudtalk

int main(int argc, char** argv) { return cloudtalk::Main(argc, argv); }
