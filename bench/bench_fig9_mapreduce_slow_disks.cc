// Figure 9: full map/reduce with all CloudTalk optimisations, slow disks.
//
// Protocol (Section 5.3, "Map/reduce"): 20 servers, four of which have
// their SSDs replaced with HDDs 5-10x slower. A sort job over 512 MB/node
// runs with the number of reducers swept from 10% to 70% of the cluster.
// CloudTalk guides map sources, reduce placement and output replica
// selection; the baseline uses stock scheduling. Both job finish time and
// job sync time (all output durable on disk) are reported.
//
// Expected shape: CloudTalk roughly halves both metrics across the sweep by
// steering I/O away from the slow drives.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"
#include "src/mapred/mini_mapreduce.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

struct SortResult {
  double finish = 0;
  double synced = 0;
  bool ok = false;
};

SortResult RunSort(int reducers, bool use_cloudtalk, uint64_t seed) {
  Topology topo = LocalGigabitCluster(20);
  DowngradeDisksToHdd(topo, 4, 8.0);
  ClusterOptions options;
  options.seed = seed;
  Cluster cluster(std::move(topo), options);
  cluster.StartStatusSweep();

  HdfsOptions hdfs_options;
  hdfs_options.block_size = 128 * kMB;
  hdfs_options.cloudtalk_writes = use_cloudtalk;
  MiniHdfs hdfs(&cluster, hdfs_options);
  // Input generated with optimisations off (otherwise nothing lands on the
  // HDDs): replicas round-robin across all 20 nodes, slow ones included.
  const int blocks = 80;  // 512 MB/node in 128 MB splits.
  std::vector<std::vector<NodeId>> replicas(blocks);
  for (int b = 0; b < blocks; ++b) {
    for (int r = 0; r < 3; ++r) {
      replicas[b].push_back(cluster.host((b + r * 7) % 20));
    }
  }
  hdfs.InstallFile("input", static_cast<Bytes>(blocks) * 128 * kMB, std::move(replicas));

  MapRedOptions mr_options;
  mr_options.cloudtalk_map = use_cloudtalk;
  mr_options.cloudtalk_reduce = use_cloudtalk;
  MiniMapReduce mr(&cluster, &hdfs, mr_options);
  SortResult result;
  mr.RunJob("input", reducers, [&](const JobStats& stats) {
    result.finish = stats.finished - stats.started;
    result.synced = stats.synced - stats.started;
    result.ok = true;
  });
  cluster.RunUntil(cluster.now() + 3600 * 2);
  return result;
}

}  // namespace

int main() {
  PrintHeader("Figure 9: sort with 4/20 slow HDDs, baseline vs all CloudTalk optimisations");
  std::printf("%9s | %21s | %21s | %s\n", "reducers", "baseline fin/sync (s)",
              "cloudtalk fin/sync (s)", "speedup fin/sync");
  const std::vector<int> reducer_counts =
      QuickMode() ? std::vector<int>{6, 10, 14} : std::vector<int>{2, 6, 10, 14};
  for (int reducers : reducer_counts) {
    const SortResult baseline = RunSort(reducers, false, 71);
    const SortResult cloudtalk = RunSort(reducers, true, 71);
    if (!baseline.ok || !cloudtalk.ok) {
      std::printf("%9d | job unfinished\n", reducers);
      continue;
    }
    std::printf("%9d | %9.1f / %9.1f | %9.1f / %9.1f | %5.2fx / %5.2fx\n", reducers,
                baseline.finish, baseline.synced, cloudtalk.finish, cloudtalk.synced,
                baseline.finish / cloudtalk.finish, baseline.synced / cloudtalk.synced);
  }
  std::printf("\npaper shape: CloudTalk reduces completion time by ~2x across the sweep; "
              "a few slow disks dominate the baseline.\n");
  return 0;
}
