// Ablation: fitness model (DESIGN.md reproduction note).
//
// The paper's literal per-resource fitness, capacity - W*usage, misorders
// saturated resources of different capacities: a saturated 3 Gbps SSD
// scores -3e9 while a saturated 375 Mbps HDD scores -375e6, so the
// heuristic prefers the slow disk exactly when everything is busy. The
// repository default (kFairShare) predicts the share a new flow would get
// instead.
//
// This bench reruns the Figure 9 slow-disk sort with both models: the
// linear model sends reduces to the HDD nodes and loses to the baseline,
// the fair-share model wins.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"
#include "src/mapred/mini_mapreduce.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

struct SortResult {
  double finish = 0;
  double synced = 0;
  bool ok = false;
};

SortResult RunSort(bool use_cloudtalk, FitnessModel model, uint64_t seed) {
  Topology topo = LocalGigabitCluster(20);
  DowngradeDisksToHdd(topo, 4, 8.0);
  ClusterOptions options;
  options.seed = seed;
  options.server.heuristic.fitness = model;
  Cluster cluster(std::move(topo), options);
  cluster.StartStatusSweep();

  HdfsOptions hdfs_options;
  hdfs_options.block_size = 128 * kMB;
  hdfs_options.cloudtalk_writes = use_cloudtalk;
  MiniHdfs hdfs(&cluster, hdfs_options);
  const int blocks = 80;
  std::vector<std::vector<NodeId>> replicas(blocks);
  for (int b = 0; b < blocks; ++b) {
    for (int r = 0; r < 3; ++r) {
      replicas[b].push_back(cluster.host((b + r * 7) % 20));
    }
  }
  hdfs.InstallFile("input", static_cast<Bytes>(blocks) * 128 * kMB, std::move(replicas));

  MapRedOptions mr_options;
  mr_options.cloudtalk_map = use_cloudtalk;
  mr_options.cloudtalk_reduce = use_cloudtalk;
  MiniMapReduce mr(&cluster, &hdfs, mr_options);
  SortResult result;
  mr.RunJob("input", 10, [&](const JobStats& stats) {
    result.finish = stats.finished - stats.started;
    result.synced = stats.synced - stats.started;
    result.ok = true;
  });
  cluster.RunUntil(cluster.now() + 3600 * 2);
  return result;
}

}  // namespace

int main() {
  PrintHeader("Ablation: heuristic fitness model on the Figure 9 slow-disk sort");
  const SortResult baseline = RunSort(false, FitnessModel::kFairShare, 71);
  const SortResult fair = RunSort(true, FitnessModel::kFairShare, 71);
  const SortResult linear = RunSort(true, FitnessModel::kLinear, 71);
  std::printf("%-34s %12s %12s\n", "configuration", "finish (s)", "sync (s)");
  std::printf("%-34s %12.1f %12.1f\n", "baseline (no CloudTalk)", baseline.finish,
              baseline.synced);
  std::printf("%-34s %12.1f %12.1f\n", "CloudTalk, fair-share fitness", fair.finish,
              fair.synced);
  std::printf("%-34s %12.1f %12.1f\n", "CloudTalk, linear fitness (paper)", linear.finish,
              linear.synced);
  std::printf("\nExpected: fair-share < baseline <= linear — the saturation inversion of\n"
              "the linear model routes work onto the slow disks under load.\n");
  return 0;
}
