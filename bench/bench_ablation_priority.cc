// Ablation: priority binding of single-local-endpoint variables
// (DESIGN.md #3, the Section 4.2 Z <- a example).
//
// Over random 20-server states we evaluate the three-variable query
//
//   X = Y = Z = (s1 ... s20); f1 X -> Y 100M; f2 Z -> s1 100M
//
// with the priority rule on and off, and score each binding with the
// flow-level estimator against the exhaustive optimum.
//
// Expected shape: with priority binding, Z is bound to s1 (a free loopback)
// whenever possible and the average % of optimal is strictly higher.
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/experiments.h"
#include "src/common/rng.h"
#include "src/core/estimator.h"
#include "src/core/exhaustive.h"
#include "src/core/heuristic.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

constexpr int kServers = 20;

StatusByAddress RandomState(Rng& rng) {
  StatusByAddress status;
  for (int i = 1; i <= kServers; ++i) {
    StatusReport report;
    report.nic_tx_cap = report.nic_rx_cap = 1e9;
    report.nic_tx_use = rng.Uniform(0, 0.9) * 1e9;
    report.nic_rx_use = rng.Uniform(0, 0.9) * 1e9;
    report.disk_read_cap = report.disk_write_cap = 1e12;
    status["s" + std::to_string(i)] = report;
  }
  return status;
}

}  // namespace

int main() {
  std::ostringstream text;
  text << "X = Y = Z = (";
  for (int i = 1; i <= kServers; ++i) {
    text << "s" << i << " ";
  }
  text << ")\n";
  text << "f1 X -> Y size 100M\n";
  text << "f2 Z -> s1 size 100M\n";
  auto query = lang::Parse(text.str());
  auto compiled = lang::CompiledQuery::Compile(query.value());
  FlowLevelEstimator estimator(/*min_available_fraction=*/0.0);

  const int states = QuickMode() ? 150 : 2000;
  Rng rng(2024);
  std::vector<double> with_priority;
  std::vector<double> without_priority;
  int z_local_with = 0;
  int z_local_without = 0;
  for (int s = 0; s < states; ++s) {
    const StatusByAddress status = RandomState(rng);
    auto best = EvaluateExhaustive(compiled.value(), status, estimator);
    if (!best.ok()) {
      continue;
    }
    for (const bool priority : {true, false}) {
      HeuristicParams params;
      params.enable_priority_binding = priority;
      auto heuristic = EvaluateHeuristic(compiled.value(), status, params);
      auto estimate =
          estimator.EstimateQuery(compiled.value(), heuristic.value().binding, status);
      if (!estimate.ok()) {
        continue;
      }
      const double pct = 100.0 * best.value().estimate.makespan / estimate.value().makespan;
      const bool z_local = heuristic.value().binding.at("Z").name == "s1";
      if (priority) {
        with_priority.push_back(pct);
        z_local_with += z_local ? 1 : 0;
      } else {
        without_priority.push_back(pct);
        z_local_without += z_local ? 1 : 0;
      }
    }
  }
  PrintHeader("Ablation: priority binding (Section 4.2 Z <- a rule)");
  std::printf("%-22s %14s %14s %18s\n", "variant", "avg % optimal", "p10 % optimal",
              "Z bound locally");
  std::printf("%-22s %13.1f%% %13.1f%% %11d/%zu\n", "priority binding on",
              Mean(with_priority), Percentile(with_priority, 10), z_local_with,
              with_priority.size());
  std::printf("%-22s %13.1f%% %13.1f%% %11d/%zu\n", "priority binding off",
              Mean(without_priority), Percentile(without_priority, 10), z_local_without,
              without_priority.size());
  std::printf("\nExpected: the on-variant binds Z to s1 in (almost) every state and "
              "dominates on average.\n");
  return 0;
}
