// Ablation: the fitness weight W (DESIGN.md #1).
//
// W trades raw capacity against contention (paper: "the selectable weight W
// (implicitly 2) ... can be used to change the relative importance of
// maximum resource capacity versus contention"). The sweep runs the
// Figure 6(b) write workload at 50% active servers for several W values.
//
// Expected shape: W = 0 ranks every candidate equally (degenerates toward
// first-in-pool placement); moderate W values separate busy from idle
// servers; very large W mostly matches W = 2 on a homogeneous cluster.
#include <cstdio>
#include <vector>

#include "bench/experiments.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

int main() {
  PrintHeader("Ablation: fitness weight W, Figure 6(b) write workload, 50% active");
  std::printf("%8s %12s %12s\n", "W", "avg (s)", "p99 (s)");
  for (double weight : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    HdfsLoadParams params;
    params.mode = HdfsLoadParams::Mode::kWrite;
    params.topology = [] { return LocalGigabitCluster(20); };
    params.active_fraction = 0.5;
    params.cloudtalk = true;
    params.repetitions = QuickMode() ? 1 : 3;
    params.seed = 4242;
    params.configure = [weight](ClusterOptions& options) {
      options.server.heuristic.weight = weight;
    };
    const HdfsLoadResult result = RunHdfsLoad(params);
    std::printf("%8.1f %12.2f %12.2f\n", weight, Mean(result.durations),
                Percentile(result.durations, 99));
  }

  // Baseline reference.
  HdfsLoadParams params;
  params.mode = HdfsLoadParams::Mode::kWrite;
  params.topology = [] { return LocalGigabitCluster(20); };
  params.active_fraction = 0.5;
  params.cloudtalk = false;
  params.repetitions = QuickMode() ? 1 : 3;
  params.seed = 4242;
  const HdfsLoadResult result = RunHdfsLoad(params);
  std::printf("%8s %12.2f %12.2f   (random placement reference)\n", "-",
              Mean(result.durations), Percentile(result.durations, 99));
  return 0;
}
