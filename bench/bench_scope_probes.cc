// ISSUE 9 acceptance: targeted probing driven by the static footprint
// analysis (src/lang/scope) must cut probe traffic on footprint-sparse
// queries without touching the answers.
//
// Workload: a 20-host fleet answering per-tenant placement queries. Each
// tenant's query is footprint-sparse — an active pool of at most 5 hosts
// (its own slice) plus a fleet-wide inert "catalog" pool that inflates the
// mentioned host set the way a templated tenant manifest does. Every query
// is answered on two identically seeded twin clusters carrying the same
// background load: one with `ServerConfig::scope_probe_pruning` on, one
// probing every mentioned host. The bench fails unless
//   (a) every reply pair is identical — ok-ness, binding, per-candidate
//       scores (bit compare), makespan bits, replies received vs sent,
//   (b) full probing sends at least 3x the probes footprint probing sends
//       (summed over the workload; the ISSUE 9 acceptance floor).
//
// Output ends with one machine-readable JSON line; pass a path argument to
// also write that line to a file (CI stores it as BENCH_scope.json).
// Exit code: 0 = both hold, 1 = a bound failed, 2 = setup failure.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/common/stats.h"
#include "src/harness/cluster.h"
#include "src/topology/topology.h"

using namespace cloudtalk;

namespace {

constexpr int kHosts = 20;
constexpr int kSliceHosts = 4;  // Active pool per tenant (acceptance: <= 5).

Cluster MakeCluster(bool pruning, uint64_t seed) {
  SingleSwitchParams params;
  params.num_hosts = kHosts;
  params.host_caps.nic_up = params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions options;
  options.seed = seed;
  options.server.seed = seed;
  options.server.eval_threads = 1;  // Deterministic shard order.
  // Reservation-free twins: a pending pseudo-reservation would make the
  // second cluster's answer depend on answer order, not on probing.
  options.server.reservation_hold = 0;
  options.server.scope_probe_pruning = pruning;
  Cluster cluster(MakeSingleSwitch(params), options);
  cluster.StartStatusSweep();
  return cluster;
}

// Tenant `t` owns hosts [1 + t*kSliceHosts, ...): an active pool over its
// slice, a write to its own frontend, and the fleet-wide inert catalog.
std::string TenantQuery(Cluster& cluster, int tenant) {
  const int base = 1 + (tenant * kSliceHosts) % (kHosts - 1 - kSliceHosts);
  std::string query = "A = (";
  for (int i = 0; i < kSliceHosts; ++i) {
    query += (i > 0 ? " " : "") + cluster.ip(base + i);
  }
  query += ")\ncatalog = (";
  for (int i = 0; i < cluster.num_hosts(); ++i) {
    query += (i > 0 ? " " : "") + cluster.ip(i);
  }
  query += ")\nf1 A -> " + cluster.ip(0) + " size " + std::to_string(32 + 16 * (tenant % 4)) +
           "M\n";
  return query;
}

uint64_t Bits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Everything an identical reply pair must agree on.
bool RepliesIdentical(const QueryReply& a, const QueryReply& b) {
  std::map<std::string, std::string> binding_a;
  for (const auto& [var, endpoint] : a.binding) {
    binding_a[var] = endpoint.name;
  }
  std::map<std::string, std::string> binding_b;
  for (const auto& [var, endpoint] : b.binding) {
    binding_b[var] = endpoint.name;
  }
  if (binding_a != binding_b) {
    return false;
  }
  std::map<std::string, uint64_t> scores_a;
  for (const auto& [var, score] : a.scores) {
    scores_a[var] = Bits(score);
  }
  std::map<std::string, uint64_t> scores_b;
  for (const auto& [var, score] : b.scores) {
    scores_b[var] = Bits(score);
  }
  return scores_a == scores_b && Bits(a.estimate.makespan) == Bits(b.estimate.makespan);
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = bench::QuickMode() ? 8 : 32;
  const int tenants = 4;

  bench::PrintHeader("Footprint-targeted probing on footprint-sparse tenant queries");

  bool identical = true;
  long pruned_probes = 0;
  long full_probes = 0;
  long queries = 0;
  std::vector<double> per_query_ratio;
  for (int round = 0; round < rounds; ++round) {
    const uint64_t seed = 100 + round;
    Cluster pruned = MakeCluster(/*pruning=*/true, seed);
    Cluster full = MakeCluster(/*pruning=*/false, seed);
    // The same deterministic background load on both twins.
    for (int p = 0; p < 3; ++p) {
      const int src = 2 + (round + 5 * p) % (kHosts - 3);
      const int dst = 1 + (src + 7) % (kHosts - 1);
      for (Cluster* c : {&pruned, &full}) {
        c->AddBackgroundPair(c->host(src), c->host(dst), (300 + 150 * p) * kMbps);
      }
    }
    pruned.MeasureNow();
    full.MeasureNow();
    for (int tenant = 0; tenant < tenants; ++tenant) {
      const std::string query = TenantQuery(pruned, round * tenants + tenant);
      const Result<QueryReply> a = pruned.cloudtalk().Answer(query);
      const Result<QueryReply> b = full.cloudtalk().Answer(query);
      if (a.ok() != b.ok()) {
        identical = false;
        continue;
      }
      if (!a.ok()) {
        std::fprintf(stderr, "rejected: %s\n", a.error().ToString().c_str());
        return 2;
      }
      if (!RepliesIdentical(a.value(), b.value())) {
        identical = false;
      }
      pruned_probes += a.value().probe_stats.requests_sent;
      full_probes += b.value().probe_stats.requests_sent;
      per_query_ratio.push_back(
          a.value().probe_stats.requests_sent > 0
              ? static_cast<double>(b.value().probe_stats.requests_sent) /
                    a.value().probe_stats.requests_sent
              : 0.0);
      ++queries;
    }
  }

  const double ratio =
      pruned_probes > 0 ? static_cast<double>(full_probes) / pruned_probes : 0.0;
  const bool pass = identical && ratio >= 3.0;
  std::printf("%-24s %10s %10s %8s\n", "workload", "pruned", "full", "ratio");
  std::printf("%-24s %10ld %10ld %7.2fx\n", "tenant placement", pruned_probes, full_probes,
              ratio);
  std::printf("median per-query ratio %.2fx over %ld queries; answers %s (bound: >=3x)\n",
              Median(per_query_ratio), queries,
              identical ? "byte-identical" : "DIVERGED");

  char json[320];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"scope_probes\",\"hosts\":%d,\"queries\":%ld,"
                "\"pruned_probes\":%ld,\"full_probes\":%ld,\"probe_ratio\":%.2f,"
                "\"median_query_ratio\":%.2f,\"answers_identical\":%s,\"pass\":%s}",
                kHosts, queries, pruned_probes, full_probes, ratio,
                Median(per_query_ratio), identical ? "true" : "false",
                pass ? "true" : "false");
  std::printf("%s\n", json);
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fprintf(f, "%s\n", json);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 2;
    }
  }
  return pass ? 0 : 1;
}
