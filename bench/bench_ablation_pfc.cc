// Ablation: enabling PFC selectively (Section 2, "Enabling network
// features selectively").
//
// "The provider could enable PFC, a layer two mechanism that uses pause
// messages to prevent loss and completely eliminate incast-related
// problems. PFC cannot be enabled for all tenants, though, because it
// reduces throughput for elephant flows." — this is exactly the kind of
// per-tenant knob CloudTalk lets a provider turn, because the query tells
// it whether the tenant's traffic is scatter-gather or elephants.
//
// Two workloads on the same oversubscribed fabric, with and without PFC:
//   * scatter-gather: 64 x 10 KB responses into one aggregator;
//   * elephant: a 40 MB bulk transfer sharing the fabric with that incast.
#include <algorithm>
#include <cstdio>

#include "bench/experiments.h"
#include "src/packetsim/network.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

struct Outcome {
  Seconds scatter_gather = 0;  // Last leaf response delivered.
  Seconds elephant = 0;        // Bulk transfer completion.
  int64_t drops = 0;
  int64_t timeouts = 0;
  int64_t pauses = 0;
};

Outcome Run(bool pfc) {
  Vl2Params params;
  params.num_racks = 3;
  params.hosts_per_rack = 40;
  params.host_link = 1 * kGbps;
  params.tor_uplink = 2 * kGbps;  // Oversubscribed rack uplinks.
  const Topology topo = MakeVl2(params);
  packetsim::NetworkParams net_params;
  net_params.enable_pfc = pfc;
  packetsim::PacketNetwork net(&topo, net_params);

  Outcome outcome;
  // Elephant: rack 1 -> rack 0.
  net.StartTcpFlow(topo.hosts()[40], topo.hosts()[0], 40 * kMB, 0,
                   [&](packetsim::FlowId, Seconds t) { outcome.elephant = t; });
  // Scatter-gather: 64 leaves (racks 1 and 2) -> one aggregator in rack 0,
  // repeated in rounds like a loaded search frontend.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 64; ++i) {
      net.StartTcpFlow(topo.hosts()[41 + i], topo.hosts()[1], 10 * kKB, round * 0.05,
                       [&](packetsim::FlowId, Seconds t) {
                         outcome.scatter_gather = std::max(outcome.scatter_gather, t);
                       });
    }
  }
  net.RunUntilIdle(300);
  outcome.drops = net.total_drops();
  outcome.timeouts = net.total_timeouts();
  outcome.pauses = net.total_pauses();
  return outcome;
}

}  // namespace

int main() {
  PrintHeader("Ablation: PFC on/off for mixed incast + elephant traffic");
  std::printf("%-10s %16s %14s %8s %9s %8s\n", "mode", "scatter-gather(s)", "elephant (s)",
              "drops", "timeouts", "pauses");
  const Outcome off = Run(false);
  const Outcome on = Run(true);
  std::printf("%-10s %16.3f %14.3f %8lld %9lld %8lld\n", "drop-tail", off.scatter_gather,
              off.elephant, static_cast<long long>(off.drops),
              static_cast<long long>(off.timeouts), static_cast<long long>(off.pauses));
  std::printf("%-10s %16.3f %14.3f %8lld %9lld %8lld\n", "pfc", on.scatter_gather,
              on.elephant, static_cast<long long>(on.drops),
              static_cast<long long>(on.timeouts), static_cast<long long>(on.pauses));
  std::printf("\nExpected: PFC makes the scatter-gather lossless and fast (no RTOs), while\n"
              "the elephant finishes later than under drop-tail (head-of-line blocking) —\n"
              "the Section 2 argument for enabling PFC per tenant, guided by CloudTalk.\n");
  return 0;
}
