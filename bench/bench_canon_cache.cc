// ISSUE 8 acceptance: the canonical answer cache must turn repeat
// submissions of a semantically-equivalent query into cheap hits.
//
// Workload: three paper queries (HDFS write pipeline, replica selection,
// reduce placement), each re-submitted 8x per round under deterministic
// alpha-renaming, flow reordering, and arithmetic respelling — the
// spellings differ, the canonical form does not. The first submission of a
// round is answered cold (the cache is invalidated first, as a status
// refresh would); the other 7 must be served from the cache. The bench
// fails unless
//   (a) every repeat actually hits (checked via the canon trace span),
//   (b) hit replies are byte-identical to the round's cold reply after
//       mapping variable names through the canonicalization certificate
//       (binding endpoints, score values, estimate bits, probe counters),
//   (c) the median cold/hit answer-latency ratio is at least 5x.
//
// Output ends with one machine-readable JSON line; pass a path argument to
// also write that line to a file (CI stores it as BENCH_canon.json).
// Exit code: 0 = all three hold, 1 = a bound failed, 2 = setup failure.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/harness/cluster.h"
#include "src/lang/canon.h"
#include "src/lang/parser.h"
#include "src/obs/trace.h"
#include "src/topology/topology.h"

using namespace cloudtalk;

namespace {

constexpr int kVariants = 8;  // Submissions per round: 1 cold + 7 respelled.

std::string PoolText(int first, int last) {
  std::ostringstream pool;
  for (int i = first; i <= last; ++i) {
    pool << (i > first ? " " : "") << "10.0.0." << i;
  }
  return pool.str();
}

// Equivalent spellings of "size 256M" / "size 1G": identical after constant
// folding (binary suffixes are powers of two, so the products are exact).
const char* Size256M(int variant) { return variant % 2 == 0 ? "256M" : "2*128M"; }
const char* Size1G(int variant) { return variant % 2 == 0 ? "1G" : "4*256M"; }

// Declarations stay first (variables must be declared before use); the flow
// statements are rotated and every name carries a per-variant suffix.
std::string Assemble(const std::string& decls, std::vector<std::string> flows, int variant) {
  std::rotate(flows.begin(), flows.begin() + variant % flows.size(), flows.end());
  std::string text = decls;
  for (const std::string& flow : flows) {
    text += flow;
  }
  return text;
}

struct Workload {
  const char* name;
  std::function<std::string(int variant)> spell;
};

std::vector<Workload> MakeWorkloads(int hosts) {
  const std::string pool = PoolText(1, hosts);
  const std::string half_pool = PoolText(1, hosts / 2);
  const std::string client = "10.0.0." + std::to_string(hosts + 1);
  std::vector<Workload> workloads;

  // Section 5.3 HDFS write pipeline: 3 variables, 6 chained flows.
  workloads.push_back({"hdfs_write", [pool, client](int v) {
    const std::string s = v == 0 ? "" : "_" + std::to_string(v);
    const std::string decls = "r1" + s + " = r2" + s + " = r3" + s + " = (" + pool + ")\n";
    const std::string sz = Size256M(v);
    return Assemble(decls,
                    {"f1" + s + " " + client + " -> r1" + s + " size " + sz +
                         " rate r(f2" + s + ")\n",
                     "f2" + s + " r1" + s + " -> disk size " + sz + " rate r(f1" + s + ")\n",
                     "f3" + s + " r1" + s + " -> r2" + s + " size " + sz + " rate r(f4" + s +
                         ") transfer t(f2" + s + ")\n",
                     "f4" + s + " r2" + s + " -> disk size " + sz + " rate r(f3" + s + ")\n",
                     "f5" + s + " r2" + s + " -> r3" + s + " size " + sz + " rate r(f6" + s +
                         ") transfer t(f4" + s + ")\n",
                     "f6" + s + " r3" + s + " -> disk size " + sz + " rate r(f5" + s + ")\n"},
                    v);
  }});

  // Figure 2 replica selection: one variable over the whole cluster.
  workloads.push_back({"replica_read", [pool, client](int v) {
    const std::string s = v == 0 ? "" : "_" + std::to_string(v);
    return std::string("A") + s + " = (" + pool + ")\n" + "get" + s + " A" + s + " -> " +
           client + " size " + Size256M(v) + "\n";
  }});

  // Section 5.3 reduce placement: two variables, incoming shuffle + spill.
  workloads.push_back({"reduce_place", [half_pool](int v) {
    const std::string s = v == 0 ? "" : "_" + std::to_string(v);
    const std::string decls =
        "option noreserve\nx1" + s + " = x2" + s + " = (" + half_pool + ")\n";
    const std::string sz = Size1G(v);
    return Assemble(decls,
                    {"f1" + s + " 0.0.0.0 -> x1" + s + " size " + sz + " rate r(f2" + s + ")\n",
                     "f2" + s + " x1" + s + " -> disk size " + sz + " rate r(f1" + s + ")\n",
                     "f3" + s + " 0.0.0.0 -> x2" + s + " size " + sz + " rate r(f4" + s + ")\n",
                     "f4" + s + " x2" + s + " -> disk size " + sz + " rate r(f3" + s + ")\n"},
                    v);
  }});
  return workloads;
}

// Binding and scores translated into the canonical vocabulary, plus the
// raw bits of the numeric payload — equality here is the "byte-identical
// after name mapping" acceptance check.
struct MappedPayload {
  std::map<std::string, std::string> binding;         // canonical var -> endpoint
  std::map<std::string, uint64_t> scores;             // canonical var -> value bits
  uint64_t makespan_bits = 0;
  uint64_t throughput_bits = 0;
  int probes_sent = 0;
  int probes_answered = 0;

  bool operator==(const MappedPayload& other) const {
    return binding == other.binding && scores == other.scores &&
           makespan_bits == other.makespan_bits && throughput_bits == other.throughput_bits &&
           probes_sent == other.probes_sent && probes_answered == other.probes_answered;
  }
};

uint64_t Bits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

bool MapPayload(const QueryReply& reply, const lang::CanonicalQuery& canon,
                MappedPayload* out) {
  std::map<std::string, std::string> to_canonical(canon.variable_map.begin(),
                                                  canon.variable_map.end());
  for (const auto& [var, endpoint] : reply.binding) {
    const auto it = to_canonical.find(var);
    if (it == to_canonical.end()) {
      return false;
    }
    out->binding[it->second] = endpoint.name;
  }
  for (const auto& [var, score] : reply.scores) {
    const auto it = to_canonical.find(var);
    if (it == to_canonical.end()) {
      return false;
    }
    out->scores[it->second] = Bits(score);
  }
  out->makespan_bits = Bits(reply.estimate.makespan);
  out->throughput_bits = Bits(reply.estimate.aggregate_throughput);
  out->probes_sent = reply.probe_stats.requests_sent;
  out->probes_answered = reply.probe_stats.replies_received;
  return true;
}

struct WorkloadResult {
  const char* name = nullptr;
  double cold_us = 0;
  double hit_us = 0;
  double speedup = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int hosts = 64;
  const int rounds = bench::QuickMode() ? 20 : 80;

  bench::PrintHeader("Canonical answer cache on repeated re-spelled queries");

  SingleSwitchParams params;
  params.num_hosts = hosts + 1;  // Pool hosts plus a client endpoint.
  params.host_caps.nic_up = params.host_caps.nic_down = 1 * kGbps;
  params.host_caps.disk_read = params.host_caps.disk_write = 4 * kGbps;
  ClusterOptions options;
  options.server.eval_threads = 1;
  options.server.answer_cache = true;
  // Reservation-free: a pending pseudo-reservation would (correctly) make
  // the repeats uncacheable, and this bench measures the cache, not the
  // oscillation damper.
  options.server.reservation_hold = 0;
  Cluster cluster(MakeSingleSwitch(params), options);
  cluster.StartStatusSweep();
  cluster.MeasureNow();

  const std::vector<Workload> workloads = MakeWorkloads(hosts);

  // Pre-spell and pre-canonicalize every variant; certificate lookup must
  // not count against the measured answer latency.
  struct Prepared {
    std::vector<std::string> texts;
    std::vector<lang::CanonicalQuery> canons;
  };
  std::vector<Prepared> prepared(workloads.size());
  for (size_t w = 0; w < workloads.size(); ++w) {
    for (int v = 0; v < kVariants; ++v) {
      const std::string text = workloads[w].spell(v);
      const Result<lang::Query> query = lang::Parse(text);
      if (!query.ok()) {
        std::fprintf(stderr, "%s variant %d does not parse: %s\n", workloads[w].name, v,
                     query.error().ToString().c_str());
        return 2;
      }
      Result<lang::CanonicalQuery> canon = lang::Canonicalize(query.value());
      if (!canon.ok()) {
        std::fprintf(stderr, "%s variant %d does not canonicalize: %s\n", workloads[w].name,
                     v, canon.error().ToString().c_str());
        return 2;
      }
      if (v > 0 && canon.value().text != prepared[w].canons[0].text) {
        std::fprintf(stderr, "%s variant %d is not equivalent to variant 0\n",
                     workloads[w].name, v);
        return 2;
      }
      prepared[w].texts.push_back(text);
      prepared[w].canons.push_back(std::move(canon.value()));
    }
  }

  bool identical = true;
  bool all_hits = true;
  std::vector<WorkloadResult> results;
  for (size_t w = 0; w < workloads.size(); ++w) {
    std::vector<double> cold_us;
    std::vector<double> hit_us;
    for (int round = 0; round < rounds; ++round) {
      cluster.cloudtalk().InvalidateAnswerCache();
      MappedPayload cold_payload;
      for (int v = 0; v < kVariants; ++v) {
        const auto begin = std::chrono::steady_clock::now();
        const Result<QueryReply> reply = cluster.cloudtalk().Answer(prepared[w].texts[v]);
        const auto end = std::chrono::steady_clock::now();
        if (!reply.ok()) {
          std::fprintf(stderr, "%s rejected: %s\n", workloads[w].name,
                       reply.error().ToString().c_str());
          return 2;
        }
        const double us = std::chrono::duration<double, std::micro>(end - begin).count();
        (v == 0 ? cold_us : hit_us).push_back(us);
        if (v > 0 &&
            obs::FormatTrace(reply.value().trace).find("cache=hit") == std::string::npos) {
          all_hits = false;
        }
        MappedPayload payload;
        if (!MapPayload(reply.value(), prepared[w].canons[v], &payload)) {
          std::fprintf(stderr, "%s variant %d: binding var missing from certificate\n",
                       workloads[w].name, v);
          return 2;
        }
        if (v == 0) {
          cold_payload = payload;
        } else if (!(payload == cold_payload)) {
          identical = false;
        }
      }
    }
    WorkloadResult result;
    result.name = workloads[w].name;
    result.cold_us = Median(cold_us);
    result.hit_us = Median(hit_us);
    result.speedup = result.hit_us > 0 ? result.cold_us / result.hit_us : 0;
    results.push_back(result);
  }

  double min_speedup = results.empty() ? 0 : results[0].speedup;
  std::printf("%-16s %12s %12s %10s\n", "query", "cold us", "hit us", "speedup");
  for (const WorkloadResult& result : results) {
    std::printf("%-16s %12.1f %12.1f %9.1fx\n", result.name, result.cold_us, result.hit_us,
                result.speedup);
    min_speedup = std::min(min_speedup, result.speedup);
  }
  const bool pass = identical && all_hits && min_speedup >= 5.0;
  std::printf("%-16s %35.1fx  (bound: >=5x; hits %s, payloads %s)\n", "minimum", min_speedup,
              all_hits ? "all served from cache" : "MISSED",
              identical ? "byte-identical" : "DIVERGED");

  std::string json = "{\"bench\":\"canon_cache\",\"hosts\":" + std::to_string(hosts) +
                     ",\"rounds\":" + std::to_string(rounds) + ",\"queries\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    char entry[192];
    std::snprintf(entry, sizeof(entry),
                  "%s{\"name\":\"%s\",\"cold_us\":%.1f,\"hit_us\":%.1f,\"speedup\":%.2f}",
                  i > 0 ? "," : "", results[i].name, results[i].cold_us, results[i].hit_us,
                  results[i].speedup);
    json += entry;
  }
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "],\"min_speedup\":%.2f,\"all_hits\":%s,\"payloads_identical\":%s,"
                "\"pass\":%s}",
                min_speedup, all_hits ? "true" : "false", identical ? "true" : "false",
                pass ? "true" : "false");
  json += tail;
  std::printf("%s\n", json.c_str());
  if (argc > 1) {
    if (std::FILE* f = std::fopen(argv[1], "w")) {
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", argv[1]);
      return 2;
    }
  }
  return pass ? 0 : 1;
}
