// Figure 11 + Section 5.4: optimising web search.
//
// Two parts:
//
//  1. Placement prediction (Section 5.4): on a 1200-server VL2 mirroring
//     EC2, CloudTalk evaluates every aggregator placement for the two-level
//     scatter-gather tree with the packet-level simulator in an idle
//     network. Paper, with 50-packet buffers: single aggregator 1.04 s,
//     worst two-aggregator 0.55 s, best 0.4 s.
//
//  2. Measured behaviour under load (Figure 11): query latency vs offered
//     load for (a) one machine searching its own shard, (b) one aggregator
//     over 100 leaves — collapses past ~35 qps from TCP incast, (c/d) the
//     worst/best two-aggregator deployments from part 1.
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/core/directory.h"
#include "src/core/packet_estimator.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"
#include "src/websearch/search_cluster.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

namespace {

struct Placement {
  NodeId agg1 = kInvalidNode;
  NodeId agg2 = kInvalidNode;
  Seconds predicted = 0;
};

struct Setup {
  Topology topo;
  NodeId frontend;
  std::vector<NodeId> leaves;      // 100 leaf servers.
  std::vector<NodeId> candidates;  // Aggregator candidates, distinct racks.
};

Setup BuildSetup() {
  Vl2Params params;
  params.num_racks = 25;
  params.hosts_per_rack = 48;
  params.host_link = 1 * kGbps;
  // The simulated fabric mirrors the *measured* EC2 topology (Section 3 /
  // Figure 1), whose rack uplinks were oversubscribed — that is what makes
  // aggregator placement matter: an aggregator co-located with its leaves
  // keeps the response burst under its ToR.
  params.tor_uplink = 2 * kGbps;
  Setup setup{MakeVl2(params), kInvalidNode, {}, {}};
  const auto& hosts = setup.topo.hosts();
  setup.frontend = hosts[0];  // Rack 0.
  // 100 leaves: five per rack in racks 2..21 ("sorted according to
  // proximity": consecutive leaves share racks).
  for (int rack = 2; rack < 22; ++rack) {
    for (int i = 0; i < 5; ++i) {
      setup.leaves.push_back(hosts[rack * 48 + i]);
    }
  }
  // Ten candidate aggregator hosts in ten different racks.
  const int num_candidates = QuickMode() ? 5 : 10;
  for (int c = 0; c < num_candidates; ++c) {
    setup.candidates.push_back(hosts[(2 + 2 * c) * 48 + 40]);
  }
  return setup;
}

// Builds the Section 5.4 two-aggregator query and predicts its delay for a
// concrete placement using the packet-level estimator.
Seconds PredictTwoAgg(const Setup& setup, const Directory& directory, NodeId agg1,
                      NodeId agg2) {
  std::ostringstream query;
  const size_t half = setup.leaves.size() / 2;
  auto emit_side = [&](const char* var, size_t begin, size_t end) {
    std::string first_flow;
    for (size_t i = begin; i < end; ++i) {
      const std::string flow = "f" + std::to_string(i) + "a";
      query << flow << " " << setup.topo.IpOf(setup.leaves[i]) << " -> " << var
            << " size 10KB\n";
      if (first_flow.empty()) {
        first_flow = flow;
        query << "f" << i << "b " << var << " -> " << setup.topo.IpOf(setup.frontend)
              << " size " << static_cast<long long>((end - begin) * 10 * kKB)
              << " transfer t(" << flow << ")\n";
      }
    }
  };
  query << "AGG1 = (" << setup.topo.IpOf(agg1) << ")\n";
  query << "AGG2 = (" << setup.topo.IpOf(agg2) << ")\n";
  emit_side("AGG1", 0, half);
  emit_side("AGG2", half, setup.leaves.size());

  auto parsed = lang::Parse(query.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "query error: %s\n", parsed.error().ToString().c_str());
    return -1;
  }
  auto compiled = lang::CompiledQuery::Compile(parsed.value());
  PacketLevelEstimator estimator(&setup.topo, &directory);
  Binding binding{{"AGG1", lang::Endpoint::Address(setup.topo.IpOf(agg1))},
                  {"AGG2", lang::Endpoint::Address(setup.topo.IpOf(agg2))}};
  auto estimate = estimator.EstimateQuery(compiled.value(), binding, {});
  return estimate.ok() ? estimate.value().makespan : -1;
}

Seconds PredictSingleAgg(const Setup& setup, const Directory& directory, NodeId agg) {
  std::ostringstream query;
  std::string first_flow;
  for (size_t i = 0; i < setup.leaves.size(); ++i) {
    const std::string flow = "f" + std::to_string(i);
    query << flow << " " << setup.topo.IpOf(setup.leaves[i]) << " -> "
          << setup.topo.IpOf(agg) << " size 10KB\n";
    if (first_flow.empty()) {
      first_flow = flow;
      query << "fm " << setup.topo.IpOf(agg) << " -> " << setup.topo.IpOf(setup.frontend)
            << " size " << static_cast<long long>(setup.leaves.size() * 10 * kKB)
            << " transfer t(" << flow << ")\n";
    }
  }
  auto parsed = lang::Parse(query.str());
  auto compiled = lang::CompiledQuery::Compile(parsed.value());
  PacketLevelEstimator estimator(&setup.topo, &directory);
  auto estimate = estimator.EstimateQuery(compiled.value(), {}, {});
  (void)first_flow;
  return estimate.ok() ? estimate.value().makespan : -1;
}

void MeasureUnderLoad(const Setup& setup, const char* label, const SearchDeployment& deploy) {
  SearchParams params;
  const std::vector<double> loads =
      QuickMode() ? std::vector<double>{5, 20, 40, 60, 80}
                  : std::vector<double>{1, 10, 20, 30, 35, 40, 50, 60, 80};
  SearchCluster cluster(&setup.topo, deploy, params);
  std::printf("  %-18s", label);
  for (double qps : loads) {
    const SearchStats stats = cluster.RunLoad(qps, QuickMode() ? 1.5 : 3.0, 99);
    if (stats.completed == 0) {
      std::printf(" %11s", "collapse");
      continue;
    }
    const double completion = 100.0 * stats.completed / stats.issued;
    std::printf(" %6.2f/%3.0f%%", Percentile(stats.latencies, 95), completion);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Setup setup = BuildSetup();
  TopologyDirectory directory(&setup.topo);

  PrintHeader("Section 5.4: packet-level placement prediction (idle 1200-server VL2)");
  const Seconds single = PredictSingleAgg(setup, directory, setup.candidates[0]);
  std::printf("single aggregator predicted delay: %.3f s (paper: 1.04 s)\n", single);

  Placement best{kInvalidNode, kInvalidNode, std::numeric_limits<double>::infinity()};
  Placement worst{kInvalidNode, kInvalidNode, 0};
  int evaluated = 0;
  for (NodeId a1 : setup.candidates) {
    for (NodeId a2 : setup.candidates) {
      if (a1 == a2) {
        continue;
      }
      const Seconds t = PredictTwoAgg(setup, directory, a1, a2);
      ++evaluated;
      if (t > 0 && t < best.predicted) {
        best = {a1, a2, t};
      }
      if (t > worst.predicted) {
        worst = {a1, a2, t};
      }
    }
  }
  std::printf("evaluated %d two-aggregator placements:\n", evaluated);
  std::printf("  best  %.3f s (paper: 0.40 s)\n", best.predicted);
  std::printf("  worst %.3f s (paper: 0.55 s)\n", worst.predicted);

  PrintHeader("Figure 11: p95 latency (s) / completion rate vs offered load (qps)");
  const std::vector<double> loads =
      QuickMode() ? std::vector<double>{5, 20, 40, 60, 80}
                  : std::vector<double>{1, 10, 20, 30, 35, 40, 50, 60, 80};
  std::printf("  %-18s", "config \\ qps");
  for (double qps : loads) {
    std::printf(" %11.0f", qps);
  }
  std::printf("\n");
  // (a) one machine searching its own shard: no network, just compute.
  std::printf("  %-18s", "single machine");
  for (size_t i = 0; i < loads.size(); ++i) {
    std::printf(" %6.2f/100%%", SearchParams{}.leaf_compute);
  }
  std::printf("\n");

  std::vector<NodeId> participants = setup.leaves;
  participants.push_back(setup.frontend);
  for (NodeId c : setup.candidates) {
    participants.push_back(c);
  }
  MeasureUnderLoad(setup, "one aggregator",
                   SingleAggregatorDeployment(setup.leaves, setup.frontend,
                                              setup.candidates[0]));
  MeasureUnderLoad(setup, "two aggs (worst)",
                   TwoAggregatorDeployment(setup.leaves, setup.frontend, worst.agg1,
                                           worst.agg2));
  MeasureUnderLoad(setup, "two aggs (best)",
                   TwoAggregatorDeployment(setup.leaves, setup.frontend, best.agg1,
                                           best.agg2));

  std::printf("\npaper shape: the single-aggregator setup collapses past ~35 qps (incast);\n"
              "two-level trees stay close to the single-machine baseline, best < worst.\n");
  return 0;
}
