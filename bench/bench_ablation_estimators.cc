// Ablation: flow-level vs packet-level estimation (Section 4).
//
// "The flow-level estimator ... is accurate for large transfers and much
// faster than the packet level simulator, but doesn't work very well for
// short flows." The packet-level simulator "is very accurate and captures
// packet-level effects such as incast, but it is also quite slow."
//
// The bench treats the packet simulator as ground truth and sweeps the
// per-flow size of a 32-wide scatter-gather: the flow-level estimate tracks
// truth for elephants and diverges wildly once RTOs dominate (short flows),
// while costing microseconds instead of milliseconds.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench/experiments.h"
#include "src/core/directory.h"
#include "src/core/estimator.h"
#include "src/core/packet_estimator.h"
#include "src/lang/analysis.h"
#include "src/lang/parser.h"

using namespace cloudtalk;
using namespace cloudtalk::bench;

int main() {
  SingleSwitchParams params;
  params.num_hosts = 34;
  params.link_delay = 50 * kMicrosecond;
  const Topology topo = MakeSingleSwitch(params);
  TopologyDirectory directory(&topo);
  for (int i = 0; i < 34; ++i) {
    directory.AddAlias("h" + std::to_string(i), topo.hosts()[i]);
  }

  // Status snapshot for the flow-level estimator: everything idle.
  StatusByAddress status;
  for (int i = 0; i < 34; ++i) {
    status["h" + std::to_string(i)] = StatusReport::Idle(topo.hosts()[i], HostCaps{});
  }

  PrintHeader("Ablation: flow-level vs packet-level completion estimates");
  std::printf("(32 senders -> 1 receiver, per-flow size swept; packet level = truth)\n\n");
  std::printf("%12s %14s %14s %10s %14s\n", "flow size", "flow-level (s)", "packet (s)",
              "error", "cost flow/pkt");

  for (const Bytes size : std::vector<Bytes>{10 * kKB, 100 * kKB, 1 * kMB, 10 * kMB,
                                             64 * kMB}) {
    std::ostringstream text;
    for (int i = 1; i <= 32; ++i) {
      text << "f" << i << " h" << i << " -> h0 size "
           << static_cast<long long>(size) << "\n";
    }
    auto query = lang::Parse(text.str());
    auto compiled = lang::CompiledQuery::Compile(query.value());

    FlowLevelEstimator flow_estimator;
    const auto flow_begin = std::chrono::steady_clock::now();
    auto flow_estimate = flow_estimator.EstimateQuery(compiled.value(), {}, status);
    const double flow_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - flow_begin)
                               .count();

    PacketLevelEstimator packet_estimator(&topo, &directory);
    const auto packet_begin = std::chrono::steady_clock::now();
    auto packet_estimate = packet_estimator.EstimateQuery(compiled.value(), {}, status);
    const double packet_us = std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - packet_begin)
                                 .count();

    if (!flow_estimate.ok() || !packet_estimate.ok()) {
      std::printf("%12.0f estimation failed\n", size);
      continue;
    }
    const double f = flow_estimate.value().makespan;
    const double p = packet_estimate.value().makespan;
    std::printf("%9.0f KB %14.4f %14.4f %9.1f%% %7.0fus/%.0fms\n", size / 1024.0, f, p,
                100.0 * std::abs(p - f) / p, flow_us, packet_us / 1000.0);
  }
  std::printf("\npaper shape: the flow-level estimate is accurate (and ~1000x cheaper) for\n"
              "large transfers; for short incast-prone flows only the packet simulator\n"
              "sees the RTO-dominated truth.\n");
  return 0;
}
