#include "bench/experiments.h"

#include "src/mapred/mini_mapreduce.h"

namespace cloudtalk {
namespace bench {

ReduceExperimentResult RunReduceExperiment(const ReduceExperimentParams& params) {
  ReduceExperimentResult result;
  const int total_hosts = params.cluster_size + params.sender_count;
  ClusterOptions options;
  options.seed = params.seed;
  Topology topo =
      params.ec2 ? Ec2Cluster(total_hosts) : LocalGigabitCluster(total_hosts);
  Cluster cluster(std::move(topo), options);
  cluster.StartStatusSweep();

  // Hadoop runs on the first cluster_size hosts; the rest blast UDP at a
  // random subset of the cluster nodes.
  std::vector<NodeId> hadoop_nodes;
  for (int i = 0; i < params.cluster_size; ++i) {
    hadoop_nodes.push_back(cluster.host(i));
  }
  Rng rng(params.seed * 101 + 9);
  const int targets =
      std::max(1, static_cast<int>(params.udp_target_fraction * params.cluster_size + 0.5));
  const std::vector<int> victims =
      rng.SampleWithoutReplacement(params.cluster_size, targets);
  const Bps line_rate = cluster.topology().host_caps(cluster.host(0)).nic_down;
  for (size_t i = 0; i < victims.size(); ++i) {
    const NodeId sender = cluster.host(params.cluster_size + (static_cast<int>(i) %
                                                              params.sender_count));
    cluster.AddBackgroundPair(sender, cluster.host(victims[i]), line_rate * 0.95);
  }
  cluster.RunUntil(0.5);

  // Input: randomwriter output, replicas inside the Hadoop cluster.
  HdfsOptions hdfs_options;
  hdfs_options.block_size = params.split_size;
  hdfs_options.datanodes = hadoop_nodes;
  MiniHdfs hdfs(&cluster, hdfs_options);
  const int blocks = static_cast<int>(params.input_per_node * params.cluster_size /
                                      params.split_size);
  std::vector<std::vector<NodeId>> replicas(blocks);
  for (int b = 0; b < blocks; ++b) {
    for (int r = 0; r < 3; ++r) {
      replicas[b].push_back(hadoop_nodes[(b + r * 3) % params.cluster_size]);
    }
  }
  hdfs.InstallFile("input", static_cast<Bytes>(blocks) * params.split_size,
                   std::move(replicas));

  MapRedOptions mr_options;
  mr_options.cloudtalk_reduce = params.cloudtalk;
  mr_options.nodes = hadoop_nodes;
  // Output writes are "not optimised during these experiments" (Section
  // 5.3), so the MiniHdfs policy stays baseline.
  MiniMapReduce mr(&cluster, &hdfs, mr_options);
  JobStats stats;
  bool done = false;
  mr.RunJob("input", params.cluster_size / 2, [&](const JobStats& s) {
    stats = s;
    done = true;
  });
  cluster.RunUntil(cluster.now() + 3600 * 2);
  result.finished = done;
  if (done) {
    result.job_time = stats.finished - stats.started;
    result.avg_shuffle = Mean(stats.shuffle_durations);
    result.p99_shuffle = Percentile(stats.shuffle_durations, 99);
  }
  return result;
}

}  // namespace bench
}  // namespace cloudtalk
