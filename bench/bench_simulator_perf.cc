// Simulator micro-performance (google-benchmark).
//
// Not a paper figure — operational numbers for users of the library: how
// fast the fluid engine recomputes allocations, how many packet events the
// packet simulator processes per second, and end-to-end HDFS simulation
// throughput. These bound the experiment scales the repo can handle.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/fluidsim/fluid_simulation.h"
#include "src/harness/cluster.h"
#include "src/harness/profiles.h"
#include "src/packetsim/network.h"
#include "src/topology/topology.h"

using namespace cloudtalk;

namespace {

void BM_FluidMaxMinRecompute(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  const Topology topo = Ec2Cluster(100);
  FluidSimulation sim(&topo);
  Rng rng(1);
  for (int i = 0; i < flows; ++i) {
    const NodeId src = topo.hosts()[rng.UniformInt(0, 99)];
    NodeId dst = src;
    while (dst == src) {
      dst = topo.hosts()[rng.UniformInt(0, 99)];
    }
    GroupSpec spec;
    FluidFlow flow;
    flow.resources = sim.resources().NetworkPath(topo, src, dst);
    flow.size = 1e15;
    spec.flows.push_back(std::move(flow));
    sim.AddGroup(std::move(spec));
  }
  sim.RunUntil(1e-6);
  for (auto _ : state) {
    // Force a fresh allocation by perturbing background load.
    sim.AddBackground(sim.resources().NicUp(topo.hosts()[0]), 1.0);
    benchmark::DoNotOptimize(sim.Usage(sim.resources().NicUp(topo.hosts()[0])));
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FluidMaxMinRecompute)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMicrosecond);

void BM_PacketSimEventsPerSecond(benchmark::State& state) {
  SingleSwitchParams params;
  params.num_hosts = 32;
  const Topology topo = MakeSingleSwitch(params);
  for (auto _ : state) {
    packetsim::PacketNetwork net(&topo, packetsim::NetworkParams{});
    for (int i = 1; i < 32; ++i) {
      net.StartTcpFlow(topo.hosts()[i], topo.hosts()[0], 256 * kKB, 0);
    }
    net.RunUntilIdle(60);
    state.SetIterationTime(0);  // Use wall time; report events/s below.
    benchmark::DoNotOptimize(net.events().processed());
    state.counters["events"] = static_cast<double>(net.events().processed());
  }
}
BENCHMARK(BM_PacketSimEventsPerSecond)->Unit(benchmark::kMillisecond)->UseRealTime();

// The estimator hot loop (ISSUE 1): run a 3-hop transfer chain, Reset(),
// repeat on the same simulation — vs constructing a fresh simulation per
// iteration. The delta is the per-binding saving of the prepared scratch.
void BM_FluidRunAndReset(benchmark::State& state) {
  SingleSwitchParams params;
  params.num_hosts = 20;
  const Topology topo = MakeSingleSwitch(params);
  FluidSimulation sim(&topo);
  for (auto _ : state) {
    GroupSpec spec;
    for (int i = 0; i < 3; ++i) {
      FluidFlow flow;
      flow.resources =
          sim.resources().NetworkPath(topo, topo.hosts()[i], topo.hosts()[i + 1]);
      flow.size = 100 * kMB;
      spec.flows.push_back(std::move(flow));
    }
    sim.AddGroup(std::move(spec));
    sim.RunUntilIdle();
    sim.Reset();
    benchmark::DoNotOptimize(sim.recompute_count());
  }
}
BENCHMARK(BM_FluidRunAndReset)->Unit(benchmark::kMicrosecond);

void BM_FluidRunFreshSim(benchmark::State& state) {
  SingleSwitchParams params;
  params.num_hosts = 20;
  const Topology topo = MakeSingleSwitch(params);
  for (auto _ : state) {
    FluidSimulation sim(&topo);
    GroupSpec spec;
    for (int i = 0; i < 3; ++i) {
      FluidFlow flow;
      flow.resources =
          sim.resources().NetworkPath(topo, topo.hosts()[i], topo.hosts()[i + 1]);
      flow.size = 100 * kMB;
      spec.flows.push_back(std::move(flow));
    }
    sim.AddGroup(std::move(spec));
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.now());
  }
}
BENCHMARK(BM_FluidRunFreshSim)->Unit(benchmark::kMicrosecond);

void BM_HdfsWriteSimulated(benchmark::State& state) {
  // End-to-end cost of simulating one 3-replica 256 MB pipelined write.
  for (auto _ : state) {
    state.PauseTiming();
    Cluster cluster(LocalGigabitCluster(20));
    state.ResumeTiming();
    GroupSpec spec;
    FluidSimulation& sim = cluster.sim();
    NodeId prev = cluster.host(0);
    for (int r = 1; r <= 3; ++r) {
      FluidFlow net;
      net.resources = sim.resources().NetworkPath(cluster.topology(), prev, cluster.host(r));
      net.size = 256 * kMB;
      spec.flows.push_back(std::move(net));
      FluidFlow disk;
      disk.resources = {sim.resources().DiskWrite(cluster.host(r))};
      disk.size = 256 * kMB;
      spec.flows.push_back(std::move(disk));
      prev = cluster.host(r);
    }
    sim.AddGroup(std::move(spec));
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(sim.now());
  }
}
BENCHMARK(BM_HdfsWriteSimulated)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
